module slidb

go 1.24

// slint (the project vettool, cmd/slint) builds on the go/analysis framework.
// The container has no network access, so the x/tools subset the tool needs
// is vendored from the Go distribution under third_party/ (BSD license
// included there) and wired in with a directory replace — no download, no
// go.sum entry.
require golang.org/x/tools v0.28.1

replace golang.org/x/tools => ./third_party/golang.org/x/tools
