module slidb

go 1.24
