package slidb_test

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"slidb"
	"slidb/internal/wal"
)

// accountsSchema and friends model a TPC-B-style bank: branches hold the
// aggregate balance of their accounts, and every committed transfer appends
// a history row.
var (
	accountsSchema = slidb.MustSchema(
		slidb.Column{Name: "aid", Type: slidb.TypeInt},
		slidb.Column{Name: "bid", Type: slidb.TypeInt},
		slidb.Column{Name: "balance", Type: slidb.TypeInt},
	)
	branchesSchema = slidb.MustSchema(
		slidb.Column{Name: "bid", Type: slidb.TypeInt},
		slidb.Column{Name: "balance", Type: slidb.TypeInt},
	)
	historySchema = slidb.MustSchema(
		slidb.Column{Name: "hid", Type: slidb.TypeInt},
		slidb.Column{Name: "aid", Type: slidb.TypeInt},
		slidb.Column{Name: "delta", Type: slidb.TypeInt},
	)
)

func setupBank(t *testing.T, db *slidb.Engine, branches, accounts int) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.CreateTable("accounts", accountsSchema, []string{"aid"}))
	must(db.CreateTable("branches", branchesSchema, []string{"bid"}))
	must(db.CreateTable("history", historySchema, []string{"hid"}))
	must(db.CreateIndex("accounts_by_branch", "accounts", []string{"bid"}, false))
	must(db.Exec(func(tx *slidb.Tx) error {
		for b := 0; b < branches; b++ {
			if err := tx.Insert("branches", slidb.Row{slidb.Int(int64(b)), slidb.Int(0)}); err != nil {
				return err
			}
		}
		for a := 0; a < accounts; a++ {
			row := slidb.Row{slidb.Int(int64(a)), slidb.Int(int64(a % branches)), slidb.Int(0)}
			if err := tx.Insert("accounts", row); err != nil {
				return err
			}
		}
		return nil
	}))
}

// transfer applies one TPC-B-style transaction: adjust an account, its
// branch, and append a history row. When crashAfterWrites is set the
// transaction does all its writes and then aborts, making it a loser whose
// effects must be invisible after recovery.
func transfer(tx *slidb.Tx, hid, aid, bid, delta int64, crashAfterWrites bool) error {
	add := func(table string, key slidb.Value) error {
		return tx.Update(table, []slidb.Value{key}, func(r slidb.Row) (slidb.Row, error) {
			r[len(r)-1] = slidb.Int(r[len(r)-1].AsInt() + delta)
			return r, nil
		})
	}
	if err := add("accounts", slidb.Int(aid)); err != nil {
		return err
	}
	if err := add("branches", slidb.Int(bid)); err != nil {
		return err
	}
	if err := tx.Insert("history", slidb.Row{slidb.Int(hid), slidb.Int(aid), slidb.Int(delta)}); err != nil {
		return err
	}
	if crashAfterWrites {
		return errDeliberateAbort
	}
	return nil
}

var errDeliberateAbort = errors.New("deliberate mid-flight abort")

// bankState reads the recovered database back.
type bankState struct {
	accountTotal int64
	branchTotal  int64
	history      map[int64]int64 // hid -> delta
}

func readBank(t *testing.T, db *slidb.Engine) bankState {
	t.Helper()
	st := bankState{history: make(map[int64]int64)}
	err := db.Exec(func(tx *slidb.Tx) error {
		if err := tx.ScanTable("accounts", func(r slidb.Row) bool {
			st.accountTotal += r[2].AsInt()
			return true
		}); err != nil {
			return err
		}
		if err := tx.ScanTable("branches", func(r slidb.Row) bool {
			st.branchTotal += r[1].AsInt()
			return true
		}); err != nil {
			return err
		}
		return tx.ScanTable("history", func(r slidb.Row) bool {
			st.history[r[0].AsInt()] = r[2].AsInt()
			return true
		})
	})
	if err != nil {
		t.Fatalf("read bank: %v", err)
	}
	return st
}

// TestOpenAtCleanRestart covers the non-crash path: write, Close, reopen.
func TestOpenAtCleanRestart(t *testing.T) {
	dir := t.TempDir()
	db, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	setupBank(t, db, 2, 10)
	if err := db.Exec(func(tx *slidb.Tx) error {
		return transfer(tx, 1, 3, 1, 42, false)
	}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st := readBank(t, db2)
	if st.accountTotal != 42 || st.branchTotal != 42 {
		t.Fatalf("recovered totals = %d/%d, want 42/42", st.accountTotal, st.branchTotal)
	}
	if len(st.history) != 1 || st.history[1] != 42 {
		t.Fatalf("recovered history = %v, want {1:42}", st.history)
	}
	if got := db2.RecoveryStats(); got.Winners == 0 {
		t.Fatalf("expected winners in recovery stats, got %+v", got)
	}
	// The secondary index must be rebuilt and queryable.
	rows, err2 := execLookup(db2, "accounts_by_branch", slidb.Int(1))
	if err2 != nil {
		t.Fatal(err2)
	}
	if len(rows) != 5 {
		t.Fatalf("index lookup returned %d rows, want 5", len(rows))
	}
}

func execLookup(db *slidb.Engine, index string, key slidb.Value) ([]slidb.Row, error) {
	var rows []slidb.Row
	err := db.Exec(func(tx *slidb.Tx) error {
		var lerr error
		rows, lerr = tx.LookupIndex(index, key)
		return lerr
	})
	return rows, err
}

// TestCrashRecoveryTorture runs a concurrent TPC-B-style workload with
// deliberate mid-flight aborts and a checkpoint in the middle, "crashes" by
// abandoning the engine without Close, reopens the directory, and asserts
// that exactly the committed transactions survived: balances conserved,
// every acknowledged history row present, no loser row visible.
func TestCrashRecoveryTorture(t *testing.T) {
	runCrashRecoveryTorture(t, slidb.Config{})
}

// TestCrashRecoveryTorturePreallocated is the same torture with the PR-7 log
// tail fully enabled: preallocated segment files (the crash abandons a live
// segment carrying a zero tail at its full rotation size), the adaptive
// group-commit controller, and the relaxed publish fence. Recovery must be
// indistinguishable from the unallocated layout's.
func TestCrashRecoveryTorturePreallocated(t *testing.T) {
	runCrashRecoveryTorture(t, slidb.Config{
		PreallocateSegments: true,
		AdaptiveGroupCommit: true,
	})
}

func runCrashRecoveryTorture(t *testing.T, cfg slidb.Config) {
	const (
		branches   = 4
		accounts   = 64
		workers    = 8
		perWorker  = 150
		checkpoint = 300 // committed-transfer count that triggers the checkpoint
	)
	dir := t.TempDir()
	cfg.Agents = workers
	cfg.SegmentBytes = 32 << 10
	db, err := slidb.OpenAt(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	setupBank(t, db, branches, accounts)

	var (
		mu        sync.Mutex
		committed = make(map[int64]int64) // hid -> delta, acknowledged commits
		aborted   = make(map[int64]bool)  // hid of deliberate losers
		ckptOnce  sync.Once
		ckptErr   error
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			for i := 0; i < perWorker; i++ {
				hid := int64(w)*1_000_000 + int64(i)
				aid := rng.Int63n(accounts)
				bid := aid % branches
				delta := rng.Int63n(1000) - 500
				loser := rng.Intn(10) == 0
				err := db.Exec(func(tx *slidb.Tx) error {
					return transfer(tx, hid, aid, bid, delta, loser)
				})
				mu.Lock()
				switch {
				case err == nil && !loser:
					committed[hid] = delta
				case loser && errors.Is(err, errDeliberateAbort):
					aborted[hid] = true
				case err != nil && !loser:
					t.Errorf("transfer %d failed: %v", hid, err)
				}
				n := len(committed)
				mu.Unlock()
				if n >= checkpoint {
					ckptOnce.Do(func() { ckptErr = db.Checkpoint() })
				}
			}
		}(w)
	}
	wg.Wait()
	if ckptErr != nil {
		t.Fatalf("checkpoint: %v", ckptErr)
	}
	if got := db.UndoFailures(); got != 0 {
		t.Fatalf("UndoFailures = %d, want 0 (a rollback corrupted in-memory state)", got)
	}
	// CRASH: abandon db without Close. Unflushed log buffer contents and all
	// in-memory state are lost; only what the WAL and checkpoint captured
	// survives into the reopened engine.
	db = nil

	recfg := cfg
	recfg.Agents = 2
	db2, err := slidb.OpenAt(dir, recfg)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db2.Close()

	st := readBank(t, db2)
	var wantTotal int64
	for _, d := range committed {
		wantTotal += d
	}
	if st.accountTotal != wantTotal {
		t.Errorf("sum(accounts) = %d, want %d (balance not conserved)", st.accountTotal, wantTotal)
	}
	if st.branchTotal != wantTotal {
		t.Errorf("sum(branches) = %d, want %d (balance not conserved)", st.branchTotal, wantTotal)
	}
	for hid, delta := range committed {
		got, ok := st.history[hid]
		if !ok {
			t.Errorf("committed transfer %d missing after recovery", hid)
		} else if got != delta {
			t.Errorf("transfer %d recovered delta %d, want %d", hid, got, delta)
		}
	}
	for hid := range st.history {
		if _, ok := committed[hid]; !ok {
			t.Errorf("history row %d visible after recovery but never committed (aborted=%v)", hid, aborted[hid])
		}
	}
	stats := db2.RecoveryStats()
	if stats.CheckpointLSN == 0 {
		t.Errorf("recovery ignored the checkpoint: %+v", stats)
	}
	if stats.Losers == 0 {
		t.Errorf("expected loser transactions in the log tail: %+v", stats)
	}

	// The recovered engine must remain fully usable and durable.
	if err := db2.Exec(func(tx *slidb.Tx) error {
		return transfer(tx, 9_999_999, 1, 1, 7, false)
	}); err != nil {
		t.Fatalf("post-recovery transfer: %v", err)
	}
	if err := db2.Close(); err != nil {
		t.Fatal(err)
	}
	db3, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	st3 := readBank(t, db3)
	if st3.accountTotal != wantTotal+7 {
		t.Errorf("second restart: sum(accounts) = %d, want %d", st3.accountTotal, wantTotal+7)
	}
}

// TestELRCrashInPreCommitWindow injects a crash into the window Early Lock
// Release opens: transactions have appended their commit record, released
// their locks, and exposed their writes to other transactions — but the
// commit record has not been forced to disk. A crash there must roll every
// such transaction back as a loser while keeping every durably-acked
// transaction intact.
func TestELRCrashInPreCommitWindow(t *testing.T) {
	const (
		durableTransfers = 20
		windowTransfers  = 10
	)
	dir := t.TempDir()
	db, err := slidb.OpenAt(dir, slidb.Config{
		Agents:           4,
		EarlyLockRelease: true,
		AsyncCommit:      true,
		// A long group-commit window (relative to the milliseconds the crash
		// below takes to land) guarantees the phase-2 commit records never
		// reach the disk.
		GroupCommitWindow: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupBank(t, db, 2, 16)

	// Phase 1: transfers we wait out — durably acked, must survive. They are
	// submitted as one batch so they share group-commit windows.
	durable := make(map[int64]int64)
	var phase1 []<-chan error
	for i := 0; i < durableTransfers; i++ {
		hid, delta := int64(i), int64(i+1)
		phase1 = append(phase1, db.ExecAsync(func(tx *slidb.Tx) error {
			return transfer(tx, hid, hid%16, hid%2, delta, false)
		}))
		durable[hid] = delta
	}
	for i, fut := range phase1 {
		if err := <-fut; err != nil {
			t.Fatalf("phase-1 transfer %d: %v", i, err)
		}
	}

	// Phase 2: transfers we do NOT wait for. Their futures resolve only when
	// the 500ms group-commit window closes; we crash long before that.
	var futures []<-chan error
	for i := 0; i < windowTransfers; i++ {
		hid, delta := int64(1000+i), int64(7)
		futures = append(futures, db.ExecAsync(func(tx *slidb.Tx) error {
			return transfer(tx, hid, hid%16, hid%2, delta, false)
		}))
	}
	// Wait until every phase-2 transaction is pre-committed: its locks are
	// released and its history row is visible to a read-only transaction
	// (read-only transactions never wait for a flush).
	deadline := time.Now().Add(5 * time.Second)
	for {
		visible := 0
		if err := db.Exec(func(tx *slidb.Tx) error {
			return tx.ScanTable("history", func(r slidb.Row) bool {
				if r[0].AsInt() >= 1000 {
					visible++
				}
				return true
			})
		}); err != nil {
			t.Fatal(err)
		}
		if visible == windowTransfers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d pre-committed transfers became visible", visible, windowTransfers)
		}
		time.Sleep(time.Millisecond)
	}

	// CRASH inside the window: commit records appended, nothing synced.
	db.SimulateCrash()
	for i, fut := range futures {
		select {
		case err := <-fut:
			if err == nil {
				t.Fatalf("phase-2 future %d acked durable despite crash before flush", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("phase-2 future %d never resolved after crash", i)
		}
	}

	db2, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer db2.Close()
	st := readBank(t, db2)

	var wantTotal int64
	for _, d := range durable {
		wantTotal += d
	}
	if st.accountTotal != wantTotal || st.branchTotal != wantTotal {
		t.Errorf("recovered totals = %d/%d, want %d/%d (pre-committed losers leaked or winners lost)",
			st.accountTotal, st.branchTotal, wantTotal, wantTotal)
	}
	for hid, delta := range durable {
		if got, ok := st.history[hid]; !ok || got != delta {
			t.Errorf("durably-acked transfer %d not recovered intact (got %d, present=%v)", hid, got, ok)
		}
	}
	for hid := range st.history {
		if hid >= 1000 {
			t.Errorf("pre-committed (never durable) transfer %d survived the crash", hid)
		}
	}
}

// TestCrashDuringAbortTorture exercises every crash point inside a
// compensation-logged rollback. A transaction under ELR + AsyncCommit
// inserts, updates and deletes, then aborts; the resulting log — data
// records, the CLR chain, the abort record — is replayed into a fresh data
// directory truncated at every record boundary, simulating a crash that
// lost the tail at exactly that point. Whatever the cut, slidb.OpenAt must
// recover the pre-transaction state: rollback work whose CLR reached disk
// is redone verbatim and never undone a second time (double-undo of the
// delete would duplicate the re-inserted row; double-undo of the insert
// would fail the recovery outright), while uncompensated work is completed
// by the restart undo pass.
func TestCrashDuringAbortTorture(t *testing.T) {
	srcDir := t.TempDir()
	db, err := slidb.OpenAt(srcDir, slidb.Config{
		Agents:                 2,
		EarlyLockRelease:       true,
		EarlyLockReleaseAborts: true,
		AsyncCommit:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.CreateTable("accounts", accountsSchema, []string{"aid"}))
	must(db.Exec(func(tx *slidb.Tx) error {
		for aid := int64(0); aid < 3; aid++ {
			if err := tx.Insert("accounts", slidb.Row{slidb.Int(aid), slidb.Int(0), slidb.Int(100)}); err != nil {
				return err
			}
		}
		return nil
	}))
	// The aborting transaction: one of each mutation kind, then rollback.
	err = db.Exec(func(tx *slidb.Tx) error {
		if err := tx.Insert("accounts", slidb.Row{slidb.Int(50), slidb.Int(0), slidb.Int(1)}); err != nil {
			return err
		}
		if err := tx.Update("accounts", []slidb.Value{slidb.Int(0)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(r[2].AsInt() + 10)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.Delete("accounts", slidb.Int(2)); err != nil {
			return err
		}
		return errDeliberateAbort
	})
	if !errors.Is(err, errDeliberateAbort) {
		t.Fatalf("aborting tx returned %v, want errDeliberateAbort", err)
	}
	if got := db.ELRAborts(); got != 1 {
		t.Fatalf("ELRAborts = %d, want 1", got)
	}
	if got := db.UndoFailures(); got != 0 {
		t.Fatalf("UndoFailures = %d, want 0", got)
	}
	// Close drains the log: the full CLR chain and abort record reach disk.
	must(db.Close())

	segs, err := wal.OpenSegments(srcDir, wal.DefaultSegmentBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	var recs []wal.Record
	must(segs.Iterate(1, func(r wal.Record) error {
		recs = append(recs, r)
		return nil
	}))
	must(segs.Close())

	// The aborting transaction has the highest XID; its first record marks
	// the earliest interesting cut point.
	var abortXID uint64
	for _, r := range recs {
		if r.XID > abortXID {
			abortXID = r.XID
		}
	}
	base := -1
	for i, r := range recs {
		if r.XID == abortXID {
			base = i
			break
		}
	}
	if base < 0 {
		t.Fatal("aborting transaction not found in the log")
	}

	for cut := base; cut <= len(recs); cut++ {
		kept := recs[:cut]
		// Predict the undo pass's workload from the kept tail: each durable
		// CLR compensates one data record; a durable abort record (or a CLR
		// closing the chain) leaves nothing to undo.
		dataN, clrN, complete := 0, 0, false
		for _, r := range kept {
			if r.XID != abortXID {
				continue
			}
			switch r.Type {
			case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
				dataN++
			case wal.RecCLR:
				clrN++
				complete = r.UndoNext == 0
			case wal.RecAbort:
				complete = true
			}
		}
		wantUndone := dataN - clrN
		if complete {
			wantUndone = 0
		}

		dir := t.TempDir()
		out, err := wal.OpenSegments(dir, wal.DefaultSegmentBytes, false)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range kept {
			must(out.WriteRecord(r, r.Encode()))
		}
		must(out.Sync())
		must(out.Close())

		db2, err := slidb.OpenAt(dir, slidb.Config{})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		rows := make(map[int64]int64)
		count := 0
		if err := db2.Exec(func(tx *slidb.Tx) error {
			return tx.ScanTable("accounts", func(r slidb.Row) bool {
				rows[r[0].AsInt()] = r[2].AsInt()
				count++
				return true
			})
		}); err != nil {
			t.Fatalf("cut %d: read: %v", cut, err)
		}
		if count != 3 {
			t.Errorf("cut %d: %d heap rows, want 3 (double-undo duplicates or lost rows): %v", cut, count, rows)
		}
		for aid := int64(0); aid < 3; aid++ {
			if rows[aid] != 100 {
				t.Errorf("cut %d: account %d balance = %d, want 100", cut, aid, rows[aid])
			}
		}
		if _, leaked := rows[50]; leaked {
			t.Errorf("cut %d: aborted insert leaked through recovery", cut)
		}
		st := db2.RecoveryStats()
		if st.RecordsUndone != wantUndone {
			t.Errorf("cut %d: RecordsUndone = %d, want %d (stats %+v)", cut, st.RecordsUndone, wantUndone, st)
		}
		if clrN > 0 && !complete && st.RollbacksResumed != 1 {
			t.Errorf("cut %d: RollbacksResumed = %d, want 1 (partial CLR chain)", cut, st.RollbacksResumed)
		}
		if complete && dataN > 0 && st.RollbacksComplete == 0 {
			t.Errorf("cut %d: rollback fully logged but not classified complete (stats %+v)", cut, st)
		}
		// The recovered engine stays usable: commit a transfer and verify.
		if err := db2.Exec(func(tx *slidb.Tx) error {
			return tx.Update("accounts", []slidb.Value{slidb.Int(1)}, func(r slidb.Row) (slidb.Row, error) {
				r[2] = slidb.Int(r[2].AsInt() + 5)
				return r, nil
			})
		}); err != nil {
			t.Fatalf("cut %d: post-recovery update: %v", cut, err)
		}
		if got := db2.UndoFailures(); got != 0 {
			t.Errorf("cut %d: UndoFailures = %d, want 0", cut, got)
		}
		must(db2.Close())
	}
}

// TestRestartUndoIsLoggedExactlyOnce is the regression test for restart
// undo re-execution: recovery that rolls back an interrupted loser must log
// that rollback (CLRs + abort record) into the new log, because otherwise a
// LATER restart still sees the loser as interrupted and re-applies the old
// undo on top of work committed after the first recovery — silently
// reverting durable commits.
func TestRestartUndoIsLoggedExactlyOnce(t *testing.T) {
	srcDir := t.TempDir()
	db, err := slidb.OpenAt(srcDir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(db.CreateTable("accounts", accountsSchema, []string{"aid"}))
	must(db.Exec(func(tx *slidb.Tx) error {
		return tx.Insert("accounts", slidb.Row{slidb.Int(1), slidb.Int(0), slidb.Int(100)})
	}))
	// The soon-to-be loser: an update and an insert, committed for now —
	// the commit record is dropped below to simulate a lost tail.
	must(db.Exec(func(tx *slidb.Tx) error {
		if err := tx.Update("accounts", []slidb.Value{slidb.Int(1)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(200)
			return r, nil
		}); err != nil {
			return err
		}
		return tx.Insert("accounts", slidb.Row{slidb.Int(2), slidb.Int(0), slidb.Int(1)})
	}))
	must(db.Close())

	// Rewrite the log without the final commit record: the second
	// transaction's data records are durable but its outcome is not.
	segs, err := wal.OpenSegments(srcDir, wal.DefaultSegmentBytes, false)
	must(err)
	var recs []wal.Record
	must(segs.Iterate(1, func(r wal.Record) error {
		recs = append(recs, r)
		return nil
	}))
	must(segs.Close())
	if recs[len(recs)-1].Type != wal.RecCommit {
		t.Fatalf("last record is %v, want COMMIT", recs[len(recs)-1].Type)
	}
	dir := t.TempDir()
	out, err := wal.OpenSegments(dir, wal.DefaultSegmentBytes, false)
	must(err)
	for _, r := range recs[:len(recs)-1] {
		must(out.WriteRecord(r, r.Encode()))
	}
	must(out.Sync())
	must(out.Close())

	// Restart 1: the loser is undone (row 1 back to 100, row 2 gone).
	db1, err := slidb.OpenAt(dir, slidb.Config{})
	must(err)
	if st := db1.RecoveryStats(); st.TxUndone != 1 || st.RecordsUndone != 2 {
		t.Fatalf("restart 1: TxUndone=%d RecordsUndone=%d, want 1/2 (stats %+v)", st.TxUndone, st.RecordsUndone, st)
	}
	// New work commits on top of the undone state.
	must(db1.Exec(func(tx *slidb.Tx) error {
		if err := tx.Update("accounts", []slidb.Value{slidb.Int(1)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(300)
			return r, nil
		}); err != nil {
			return err
		}
		return tx.Insert("accounts", slidb.Row{slidb.Int(2), slidb.Int(0), slidb.Int(55)})
	}))
	must(db1.Close())

	// Restart 2: the stale loser must be seen as fully rolled back; the
	// committed 300/55 must survive, not be reverted by a re-run undo.
	db2, err := slidb.OpenAt(dir, slidb.Config{})
	must(err)
	defer db2.Close()
	if st := db2.RecoveryStats(); st.RecordsUndone != 0 || st.TxUndone != 0 {
		t.Errorf("restart 2 re-ran the undo: %+v", st)
	}
	rows := map[int64]int64{}
	count := 0
	must(db2.Exec(func(tx *slidb.Tx) error {
		return tx.ScanTable("accounts", func(r slidb.Row) bool {
			rows[r[0].AsInt()] = r[2].AsInt()
			count++
			return true
		})
	}))
	if count != 2 || rows[1] != 300 || rows[2] != 55 {
		t.Fatalf("state after second restart = %v (%d rows), want {1:300 2:55}", rows, count)
	}
}

// TestCheckpointTruncatesSegments asserts the operational property the
// checkpoint exists for: old segments are deleted and the next restart only
// scans the short tail.
func TestCheckpointTruncatesSegments(t *testing.T) {
	dir := t.TempDir()
	db, err := slidb.OpenAt(dir, slidb.Config{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	setupBank(t, db, 2, 20)
	for i := 0; i < 400; i++ {
		if err := db.Exec(func(tx *slidb.Tx) error {
			return transfer(tx, int64(i), int64(i%20), int64(i%2), 1, false)
		}); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segsBefore) < 3 {
		t.Fatalf("expected several segments before checkpoint, got %d", len(segsBefore))
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("checkpoint kept %d of %d segments", len(segsAfter), len(segsBefore))
	}
	// A few post-checkpoint transactions, then crash without Close.
	for i := 400; i < 410; i++ {
		if err := db.Exec(func(tx *slidb.Tx) error {
			return transfer(tx, int64(i), int64(i%20), int64(i%2), 1, false)
		}); err != nil {
			t.Fatal(err)
		}
	}
	db = nil // crash

	db2, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	stats := db2.RecoveryStats()
	if stats.CheckpointLSN == 0 {
		t.Fatalf("restart did not use the checkpoint: %+v", stats)
	}
	// 410 transfers ran; only the ~10 after the checkpoint may need redo.
	if stats.RecordsRedone > 100 {
		t.Errorf("checkpoint failed to bound redo work: %d records redone (%+v)", stats.RecordsRedone, stats)
	}
	st := readBank(t, db2)
	if st.accountTotal != 410 {
		t.Errorf("sum(accounts) = %d, want 410", st.accountTotal)
	}
	if len(st.history) != 410 {
		t.Errorf("history has %d rows, want 410", len(st.history))
	}
}

// TestCheckpointRequiresDataDir pins the ErrNotDurable contract.
func TestCheckpointRequiresDataDir(t *testing.T) {
	db := slidb.Open(slidb.Config{})
	defer db.Close()
	if err := db.Checkpoint(); !errors.Is(err, slidb.ErrNotDurable) {
		t.Fatalf("Checkpoint on volatile engine = %v, want ErrNotDurable", err)
	}
}

// TestReopenFlushBelowStartLSNAcksImmediately pins the WAL clamp-then-
// recheck reopen edge through the public API: right after OpenAt on an
// existing directory the log's next LSN equals its recovered StartLSN with
// nothing appended, so any durability subscription at or below the
// recovered prefix (Checkpoint's "flush everything appended so far" is
// exactly that) must acknowledge immediately instead of parking a waiter
// that no flush cycle ever satisfies — which would hang Checkpoint and
// Close forever.
func TestReopenFlushBelowStartLSNAcksImmediately(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	db, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	setupBank(t, db, 2, 10)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Checkpoint flushes up to LastLSN == StartLSN-1 before snapshotting:
		// the subscription below StartLSN that used to be able to hang.
		if err := db2.Checkpoint(); err != nil {
			done <- err
			return
		}
		done <- db2.Close()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Checkpoint/Close after reopen hung: flush subscription below StartLSN never acked")
	}

	// The directory is still recoverable after the checkpoint.
	db3, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db3.Close()
	rows := 0
	err = db3.Exec(func(tx *slidb.Tx) error {
		return tx.ScanTable("accounts", func(slidb.Row) bool { rows++; return true })
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows != 10 {
		t.Fatalf("accounts after checkpointed reopen = %d, want 10", rows)
	}
}

// TestOldFormatDirectoryFailsLoudly is the upgrade-path acceptance test for
// the byte-offset LSN format: a data directory written by a pre-upgrade
// build — old headerless segment files, or an old checkpoint — must make
// slidb.OpenAt fail with ErrLogFormat instead of silently truncating the
// unreadable log as a torn tail and coming up empty.
func TestOldFormatDirectoryFailsLoudly(t *testing.T) {
	t.Run("v1-segments", func(t *testing.T) {
		dir := t.TempDir()
		// A v1 segment is a bare frame stream with no header; its first byte
		// is a frame length prefix, not the segment magic.
		v1 := append(wal.Record{XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("old-row")}.Encode(),
			wal.Record{XID: 1, Type: wal.RecCommit}.Encode()...)
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.seg"), v1, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := slidb.OpenAt(dir, slidb.Config{})
		if !errors.Is(err, slidb.ErrLogFormat) {
			t.Fatalf("OpenAt on v1 segments: err = %v, want ErrLogFormat", err)
		}
	})
	t.Run("v1-checkpoint", func(t *testing.T) {
		dir := t.TempDir()
		// An old checkpoint: correct v1 magic, arbitrary payload. The format
		// gate must fire on the magic, before any payload validation.
		old := append([]byte("SLDBCKP1"), make([]byte, 12)...)
		if err := os.WriteFile(filepath.Join(dir, "checkpoint.db"), old, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := slidb.OpenAt(dir, slidb.Config{})
		if !errors.Is(err, slidb.ErrLogFormat) {
			t.Fatalf("OpenAt on v1 checkpoint: err = %v, want ErrLogFormat", err)
		}
	})
	t.Run("current-format-reopens", func(t *testing.T) {
		// Control arm: a directory this build wrote reopens cleanly.
		dir := t.TempDir()
		db, err := slidb.OpenAt(dir, slidb.Config{})
		if err != nil {
			t.Fatal(err)
		}
		setupBank(t, db, 1, 2)
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
		db2, err := slidb.OpenAt(dir, slidb.Config{})
		if err != nil {
			t.Fatalf("reopen of current-format directory: %v", err)
		}
		db2.Close()
	})
}

// TestCheckpointBoundaryReplayExact is the regression test for the dense-LSN
// "+1" assumptions that used to sit at the checkpoint boundary (replay from
// snap.LSN+1, restart allocation at MaxLSN+1): with byte-offset LSNs the
// checkpoint stores the durable watermark and replay resumes at exactly that
// frame boundary. Commits made after the checkpoint — and only those — must
// be redone on reopen, with none skipped and none applied twice.
func TestCheckpointBoundaryReplayExact(t *testing.T) {
	dir := t.TempDir()
	db, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	setupBank(t, db, 1, 4)
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint work: deposit 7 into each account, twice.
	for round := 0; round < 2; round++ {
		for aid := 0; aid < 4; aid++ {
			if err := db.Exec(func(tx *slidb.Tx) error {
				return tx.Update("accounts", []slidb.Value{slidb.Int(int64(aid))}, func(r slidb.Row) (slidb.Row, error) {
					r[2] = slidb.Int(r[2].AsInt() + 7)
					return r, nil
				})
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	db.SimulateCrash()

	db2, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	st := db2.RecoveryStats()
	if st.CheckpointLSN == 0 {
		t.Fatal("restart did not use the checkpoint")
	}
	// Exactly the 8 post-checkpoint updates replay: a boundary error would
	// either skip the first (7 redone) or double-apply records the snapshot
	// already holds.
	if st.RecordsRedone != 8 {
		t.Fatalf("RecordsRedone = %d, want exactly the 8 post-checkpoint updates (stats %+v)", st.RecordsRedone, st)
	}
	for aid := 0; aid < 4; aid++ {
		var bal int64
		if err := db2.Exec(func(tx *slidb.Tx) error {
			row, ok, err := tx.Get("accounts", slidb.Int(int64(aid)))
			if err != nil || !ok {
				t.Fatalf("account %d missing after recovery (err=%v)", aid, err)
			}
			bal = row[2].AsInt()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if bal != 14 {
			t.Fatalf("account %d balance = %d, want 14 (0 seed + 2x7)", aid, bal)
		}
	}
}

// TestSavepointCrashRecovery drives the savepoint machinery through a real
// crash: a transaction updates, partially rolls back to a savepoint,
// continues, and commits; a second transaction does the same but crashes
// before its commit record is forced. Recovery must keep the first
// transaction's exact post-savepoint state and erase the second entirely —
// including its continuation records, which sit ABOVE its CLR chain in the
// log.
func TestSavepointCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	db, err := slidb.OpenAt(dir, slidb.Config{
		Agents:                 2,
		EarlyLockRelease:       true,
		EarlyLockReleaseAborts: true,
		AsyncCommit:            true,
		// A long window keeps the second transaction's commit record off
		// disk until the crash lands.
		GroupCommitWindow: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	setupBank(t, db, 1, 3)

	// Transaction 1: savepoint dance, committed and durable.
	if err := db.Exec(func(tx *slidb.Tx) error {
		if err := tx.Update("accounts", []slidb.Value{slidb.Int(0)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(r[2].AsInt() + 100)
			return r, nil
		}); err != nil {
			return err
		}
		sp := tx.Savepoint()
		if err := tx.Update("accounts", []slidb.Value{slidb.Int(1)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(-1)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.RollbackTo(sp); err != nil {
			return err
		}
		return tx.Update("accounts", []slidb.Value{slidb.Int(2)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(r[2].AsInt() + 5)
			return r, nil
		})
	}); err != nil {
		t.Fatal(err)
	}

	// Transaction 2: same shape, but pre-committed only — its commit record
	// sits in the group-commit window when the machine dies.
	pending := db.ExecAsync(func(tx *slidb.Tx) error {
		if err := tx.Update("accounts", []slidb.Value{slidb.Int(0)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(r[2].AsInt() + 1000)
			return r, nil
		}); err != nil {
			return err
		}
		sp := tx.Savepoint()
		if err := tx.Update("accounts", []slidb.Value{slidb.Int(1)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(-2)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.RollbackTo(sp); err != nil {
			return err
		}
		if err := tx.Update("accounts", []slidb.Value{slidb.Int(2)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(r[2].AsInt() + 2000)
			return r, nil
		}); err != nil {
			return err
		}
		// A SECOND savepoint rollback: the crash now leaves two separate
		// compensated spans in this loser's log, the shape that a
		// watermark-based analysis would double-undo (restart would then
		// subtract 2000 from account 2 twice — or fail outright).
		sp2 := tx.Savepoint()
		if err := tx.Update("accounts", []slidb.Value{slidb.Int(1)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(-3)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.RollbackTo(sp2); err != nil {
			return err
		}
		return tx.Update("accounts", []slidb.Value{slidb.Int(0)}, func(r slidb.Row) (slidb.Row, error) {
			r[2] = slidb.Int(r[2].AsInt() + 4000)
			return r, nil
		})
	})
	// Give the pre-commit a moment to append (the window holds the force).
	time.Sleep(50 * time.Millisecond)
	db.SimulateCrash()
	<-pending // resolves with the crash error; ignore it

	db2, err := slidb.OpenAt(dir, slidb.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	want := map[int64]int64{0: 100, 1: 0, 2: 5}
	for aid, wantBal := range want {
		if err := db2.Exec(func(tx *slidb.Tx) error {
			row, ok, err := tx.Get("accounts", slidb.Int(aid))
			if err != nil || !ok {
				t.Fatalf("account %d missing (err=%v)", aid, err)
			}
			if got := row[2].AsInt(); got != wantBal {
				t.Errorf("account %d = %d, want %d", aid, got, wantBal)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if got := db2.UndoFailures(); got != 0 {
		t.Fatalf("UndoFailures = %d, want 0", got)
	}
}
