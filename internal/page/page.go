// Package page implements fixed-size slotted data pages. A slotted page
// stores variable-length records identified by a stable slot number, with a
// slot directory growing from the end of the page towards the record area.
// Pages are the unit of buffering, I/O and page-level locking.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Size is the size of every data page in bytes.
const Size = 8192

// Page header layout (little endian):
//
//	offset 0: uint16 slot count (including tombstones)
//	offset 2: uint16 free-space start (offset of first unused record byte)
//	offset 4: uint16 live record count
//	offset 6: reserved
//
// Slot directory entries are 4 bytes each, stored from the end of the page
// growing downwards: entry i lives at Size-4*(i+1) and holds
// {uint16 offset, uint16 length}. A tombstoned slot has offset == 0xFFFF.
const (
	headerSize    = 8
	slotEntrySize = 4
	tombstone     = 0xFFFF
)

// Errors returned by page operations.
var (
	// ErrPageFull indicates the record does not fit in the page's free space.
	ErrPageFull = errors.New("page: not enough free space")
	// ErrNoSlot indicates the slot does not exist or has been deleted.
	ErrNoSlot = errors.New("page: no such slot")
	// ErrTooLarge indicates the record can never fit in an empty page.
	ErrTooLarge = errors.New("page: record larger than page capacity")
)

// MaxRecordSize is the largest record that fits in an empty page.
const MaxRecordSize = Size - headerSize - slotEntrySize

// Page is a slotted page over a fixed byte buffer.
type Page struct {
	buf [Size]byte
}

// New returns an initialized empty page.
func New() *Page {
	p := &Page{}
	p.Init()
	return p
}

// Init formats the page as empty.
func (p *Page) Init() {
	for i := range p.buf {
		p.buf[i] = 0
	}
	p.setSlotCount(0)
	p.setFreeStart(headerSize)
	p.setLiveCount(0)
}

// Bytes returns the raw page image (for the buffer pool and I/O layer).
func (p *Page) Bytes() []byte { return p.buf[:] }

// Load replaces the page contents with a previously serialized image.
func (p *Page) Load(data []byte) error {
	if len(data) != Size {
		return fmt.Errorf("page: image is %d bytes, want %d", len(data), Size)
	}
	copy(p.buf[:], data)
	return nil
}

func (p *Page) slotCount() int         { return int(binary.LittleEndian.Uint16(p.buf[0:])) }
func (p *Page) setSlotCount(n int)     { binary.LittleEndian.PutUint16(p.buf[0:], uint16(n)) }
func (p *Page) freeStart() int         { return int(binary.LittleEndian.Uint16(p.buf[2:])) }
func (p *Page) setFreeStart(n int)     { binary.LittleEndian.PutUint16(p.buf[2:], uint16(n)) }
func (p *Page) liveCount() int         { return int(binary.LittleEndian.Uint16(p.buf[4:])) }
func (p *Page) setLiveCount(n int)     { binary.LittleEndian.PutUint16(p.buf[4:], uint16(n)) }
func (p *Page) slotEntryPos(i int) int { return Size - slotEntrySize*(i+1) }

func (p *Page) slotEntry(i int) (offset, length int) {
	pos := p.slotEntryPos(i)
	return int(binary.LittleEndian.Uint16(p.buf[pos:])), int(binary.LittleEndian.Uint16(p.buf[pos+2:]))
}

func (p *Page) setSlotEntry(i, offset, length int) {
	pos := p.slotEntryPos(i)
	binary.LittleEndian.PutUint16(p.buf[pos:], uint16(offset))
	binary.LittleEndian.PutUint16(p.buf[pos+2:], uint16(length))
}

// NumSlots returns the number of allocated slots, including deleted ones.
func (p *Page) NumSlots() int { return p.slotCount() }

// NumRecords returns the number of live (non-deleted) records.
func (p *Page) NumRecords() int { return p.liveCount() }

// FreeSpace returns the number of payload bytes that can still be inserted
// (accounting for the slot-directory entry a new record would need).
func (p *Page) FreeSpace() int {
	free := Size - slotEntrySize*p.slotCount() - p.freeStart() - slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// HasRoomFor reports whether a record of n bytes fits.
func (p *Page) HasRoomFor(n int) bool { return n <= p.FreeSpace() }

// Insert stores the record and returns its slot number. Deleted slots are
// reused (their slot numbers are recycled) before new slots are allocated.
func (p *Page) Insert(rec []byte) (int, error) {
	if len(rec) > MaxRecordSize {
		return 0, ErrTooLarge
	}
	// Find a reusable tombstoned slot first.
	slot := -1
	for i := 0; i < p.slotCount(); i++ {
		if off, _ := p.slotEntry(i); off == tombstone {
			slot = i
			break
		}
	}
	needDirectory := 0
	if slot == -1 {
		needDirectory = slotEntrySize
	}
	if len(rec)+needDirectory > Size-slotEntrySize*p.slotCount()-p.freeStart() {
		return 0, ErrPageFull
	}
	off := p.freeStart()
	copy(p.buf[off:], rec)
	p.setFreeStart(off + len(rec))
	if slot == -1 {
		slot = p.slotCount()
		p.setSlotCount(slot + 1)
	}
	p.setSlotEntry(slot, off, len(rec))
	p.setLiveCount(p.liveCount() + 1)
	return slot, nil
}

// Get returns the record stored in the given slot. The returned slice
// aliases the page buffer and must not be modified or retained after the
// page latch is released; callers that need to keep it must copy it.
func (p *Page) Get(slot int) ([]byte, error) {
	if slot < 0 || slot >= p.slotCount() {
		return nil, ErrNoSlot
	}
	off, length := p.slotEntry(slot)
	if off == tombstone {
		return nil, ErrNoSlot
	}
	return p.buf[off : off+length], nil
}

// Update replaces the record in the given slot. If the new record is no
// larger than the old one it is updated in place; otherwise it is appended
// to the free area (the old bytes become dead space until compaction).
func (p *Page) Update(slot int, rec []byte) error {
	if slot < 0 || slot >= p.slotCount() {
		return ErrNoSlot
	}
	off, length := p.slotEntry(slot)
	if off == tombstone {
		return ErrNoSlot
	}
	if len(rec) <= length {
		copy(p.buf[off:], rec)
		p.setSlotEntry(slot, off, len(rec))
		return nil
	}
	if len(rec) > Size-slotEntrySize*p.slotCount()-p.freeStart() {
		return ErrPageFull
	}
	newOff := p.freeStart()
	copy(p.buf[newOff:], rec)
	p.setFreeStart(newOff + len(rec))
	p.setSlotEntry(slot, newOff, len(rec))
	return nil
}

// Delete tombstones the record in the given slot. The slot number may be
// reused by later inserts; the record bytes become dead space until
// compaction.
func (p *Page) Delete(slot int) error {
	if slot < 0 || slot >= p.slotCount() {
		return ErrNoSlot
	}
	off, _ := p.slotEntry(slot)
	if off == tombstone {
		return ErrNoSlot
	}
	p.setSlotEntry(slot, tombstone, 0)
	p.setLiveCount(p.liveCount() - 1)
	return nil
}

// ForEach calls fn for every live record in slot order. fn must not modify
// the page. Iteration stops early if fn returns false.
func (p *Page) ForEach(fn func(slot int, rec []byte) bool) {
	for i := 0; i < p.slotCount(); i++ {
		off, length := p.slotEntry(i)
		if off == tombstone {
			continue
		}
		if !fn(i, p.buf[off:off+length]) {
			return
		}
	}
}

// Compact rewrites the record area to reclaim dead space left by deletes and
// grown updates. Slot numbers are preserved.
func (p *Page) Compact() {
	type live struct {
		slot int
		data []byte
	}
	var records []live
	for i := 0; i < p.slotCount(); i++ {
		off, length := p.slotEntry(i)
		if off == tombstone {
			continue
		}
		cp := make([]byte, length)
		copy(cp, p.buf[off:off+length])
		records = append(records, live{i, cp})
	}
	freeStart := headerSize
	for _, r := range records {
		copy(p.buf[freeStart:], r.data)
		p.setSlotEntry(r.slot, freeStart, len(r.data))
		freeStart += len(r.data)
	}
	p.setFreeStart(freeStart)
}
