package page

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertGetRoundTrip(t *testing.T) {
	p := New()
	recs := [][]byte{[]byte("alpha"), []byte("b"), []byte("charlie delta")}
	slots := make([]int, len(recs))
	for i, r := range recs {
		s, err := p.Insert(r)
		if err != nil {
			t.Fatal(err)
		}
		slots[i] = s
	}
	if p.NumRecords() != 3 || p.NumSlots() != 3 {
		t.Fatalf("counts = %d/%d, want 3/3", p.NumRecords(), p.NumSlots())
	}
	for i, s := range slots {
		got, err := p.Get(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, recs[i]) {
			t.Fatalf("slot %d = %q, want %q", s, got, recs[i])
		}
	}
}

func TestGetErrors(t *testing.T) {
	p := New()
	if _, err := p.Get(0); !errors.Is(err, ErrNoSlot) {
		t.Fatal("Get on empty page should fail")
	}
	if _, err := p.Get(-1); !errors.Is(err, ErrNoSlot) {
		t.Fatal("negative slot should fail")
	}
	s, _ := p.Insert([]byte("x"))
	if err := p.Delete(s); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(s); !errors.Is(err, ErrNoSlot) {
		t.Fatal("Get on deleted slot should fail")
	}
	if err := p.Delete(s); !errors.Is(err, ErrNoSlot) {
		t.Fatal("double delete should fail")
	}
	if err := p.Update(s, []byte("y")); !errors.Is(err, ErrNoSlot) {
		t.Fatal("update of deleted slot should fail")
	}
}

func TestUpdateInPlaceAndGrow(t *testing.T) {
	p := New()
	s, _ := p.Insert([]byte("hello world"))
	if err := p.Update(s, []byte("bye")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(s)
	if string(got) != "bye" {
		t.Fatalf("after shrink update: %q", got)
	}
	if err := p.Update(s, bytes.Repeat([]byte("z"), 100)); err != nil {
		t.Fatal(err)
	}
	got, _ = p.Get(s)
	if len(got) != 100 || got[0] != 'z' {
		t.Fatalf("after grow update: %d bytes", len(got))
	}
}

func TestDeleteReusesSlots(t *testing.T) {
	p := New()
	a, _ := p.Insert([]byte("aaa"))
	b, _ := p.Insert([]byte("bbb"))
	if err := p.Delete(a); err != nil {
		t.Fatal(err)
	}
	c, err := p.Insert([]byte("ccc"))
	if err != nil {
		t.Fatal(err)
	}
	if c != a {
		t.Fatalf("tombstoned slot not reused: got %d, want %d", c, a)
	}
	if p.NumSlots() != 2 || p.NumRecords() != 2 {
		t.Fatalf("counts = %d/%d, want 2/2", p.NumSlots(), p.NumRecords())
	}
	got, _ := p.Get(b)
	if string(got) != "bbb" {
		t.Fatal("unrelated record damaged by delete/reinsert")
	}
}

func TestPageFillsAndReportsFull(t *testing.T) {
	p := New()
	rec := bytes.Repeat([]byte("x"), 100)
	inserted := 0
	for {
		_, err := p.Insert(rec)
		if errors.Is(err, ErrPageFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		inserted++
		if inserted > Size {
			t.Fatal("page never fills")
		}
	}
	// 8 KiB page with 100-byte records + 4-byte slots: expect ~78 records.
	if inserted < 70 || inserted > 82 {
		t.Fatalf("inserted %d records, expected roughly 78", inserted)
	}
	if p.HasRoomFor(100) {
		t.Fatal("HasRoomFor(100) should be false on a full page")
	}
	if !p.HasRoomFor(0) && p.FreeSpace() > 0 {
		t.Fatal("inconsistent free space reporting")
	}
}

func TestTooLargeRecordRejected(t *testing.T) {
	p := New()
	if _, err := p.Insert(make([]byte, MaxRecordSize+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatal("oversized record accepted")
	}
	if _, err := p.Insert(make([]byte, MaxRecordSize)); err != nil {
		t.Fatalf("max-size record rejected: %v", err)
	}
}

func TestCompactReclaimsSpace(t *testing.T) {
	p := New()
	var slots []int
	rec := bytes.Repeat([]byte("y"), 200)
	for {
		s, err := p.Insert(rec)
		if err != nil {
			break
		}
		slots = append(slots, s)
	}
	// Delete every other record; free space counted from the frontier does
	// not grow until compaction.
	for i := 0; i < len(slots); i += 2 {
		if err := p.Delete(slots[i]); err != nil {
			t.Fatal(err)
		}
	}
	before := p.FreeSpace()
	p.Compact()
	after := p.FreeSpace()
	if after <= before {
		t.Fatalf("compaction did not reclaim space: before=%d after=%d", before, after)
	}
	// Survivors must be intact and keep their slot numbers.
	for i := 1; i < len(slots); i += 2 {
		got, err := p.Get(slots[i])
		if err != nil || !bytes.Equal(got, rec) {
			t.Fatalf("record %d damaged by compaction: %v", slots[i], err)
		}
	}
	// And the reclaimed space is usable.
	if _, err := p.Insert(rec); err != nil {
		t.Fatalf("insert after compaction failed: %v", err)
	}
}

func TestForEachVisitsLiveRecordsInOrder(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		if _, err := p.Insert([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	p.Delete(3)
	p.Delete(7)
	var seen []int
	p.ForEach(func(slot int, rec []byte) bool {
		seen = append(seen, int(rec[0]))
		return true
	})
	want := []int{0, 1, 2, 4, 5, 6, 8, 9}
	if fmt.Sprint(seen) != fmt.Sprint(want) {
		t.Fatalf("ForEach visited %v, want %v", seen, want)
	}
	// Early termination.
	count := 0
	p.ForEach(func(int, []byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early termination visited %d, want 3", count)
	}
}

func TestLoadBytesRoundTrip(t *testing.T) {
	p := New()
	s, _ := p.Insert([]byte("persist me"))
	img := append([]byte(nil), p.Bytes()...)

	q := New()
	if err := q.Load(img); err != nil {
		t.Fatal(err)
	}
	got, err := q.Get(s)
	if err != nil || string(got) != "persist me" {
		t.Fatalf("loaded page lost data: %q, %v", got, err)
	}
	if err := q.Load(make([]byte, 10)); err == nil {
		t.Fatal("short image accepted")
	}
}

// TestPageAgainstReferenceModel drives a page with random operations and
// compares against a map-based reference model.
func TestPageAgainstReferenceModel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New()
		ref := map[int][]byte{}
		for op := 0; op < 300; op++ {
			switch rng.Intn(4) {
			case 0, 1: // insert
				rec := make([]byte, 1+rng.Intn(64))
				rng.Read(rec)
				slot, err := p.Insert(rec)
				if err != nil {
					continue
				}
				if _, exists := ref[slot]; exists {
					t.Logf("slot %d reused while live", slot)
					return false
				}
				ref[slot] = rec
			case 2: // delete a random live slot
				for slot := range ref {
					if err := p.Delete(slot); err != nil {
						t.Logf("delete failed: %v", err)
						return false
					}
					delete(ref, slot)
					break
				}
			case 3: // update a random live slot
				for slot := range ref {
					rec := make([]byte, 1+rng.Intn(80))
					rng.Read(rec)
					if err := p.Update(slot, rec); err == nil {
						ref[slot] = rec
					}
					break
				}
			}
			if p.NumRecords() != len(ref) {
				t.Logf("live count %d != reference %d", p.NumRecords(), len(ref))
				return false
			}
		}
		for slot, want := range ref {
			got, err := p.Get(slot)
			if err != nil || !bytes.Equal(got, want) {
				t.Logf("slot %d mismatch", slot)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
