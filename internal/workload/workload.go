// Package workload implements the benchmark driver: closed-loop clients
// submitting transactions drawn from a weighted mix, warm-up handling,
// throughput and latency measurement, and collection of the profiler and
// lock-manager statistics needed to regenerate the paper's figures.
package workload

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"slidb/internal/core"
	"slidb/internal/lockmgr"
	"slidb/internal/profiler"
)

// TxFunc is one transaction body. It returns core.Abort (or an error
// wrapping it) for expected, input-dependent failures — e.g. the NDBB
// transactions that fail on invalid input — which the driver counts
// separately from unexpected errors.
type TxFunc = func(*core.Tx) error

// Generator produces the next transaction to run. Implementations must be
// safe for concurrent use; Next receives a per-client random source.
type Generator interface {
	// Next returns the transaction's name and body.
	Next(rng *rand.Rand) (string, TxFunc)
}

// MixEntry is one transaction type with its relative weight.
type MixEntry struct {
	// Name identifies the transaction type in reports.
	Name string
	// Weight is the relative frequency (any positive scale).
	Weight float64
	// Make builds one instance of the transaction with random parameters.
	Make func(rng *rand.Rand) TxFunc
}

// Mix is a weighted set of transaction types; it implements Generator.
type Mix []MixEntry

// Next picks an entry proportionally to the weights.
func (m Mix) Next(rng *rand.Rand) (string, TxFunc) {
	total := 0.0
	for _, e := range m {
		total += e.Weight
	}
	r := rng.Float64() * total
	for _, e := range m {
		if r < e.Weight {
			return e.Name, e.Make(rng)
		}
		r -= e.Weight
	}
	last := m[len(m)-1]
	return last.Name, last.Make(rng)
}

// WithAbortRate wraps gen so that the given fraction of transactions perform
// their full body and then return core.Abort, forcing a complete rollback of
// every modification they made. It is the driver for high-abort-rate
// experiments: the aborted transactions pay the whole forward cost (locks,
// heap and index mutations, log appends) plus the undo and CLR-logging cost
// of the abort path, exactly like a conflict-victim retry would. A rate <= 0
// returns gen unchanged; rates are clamped to 1.
func WithAbortRate(gen Generator, rate float64) Generator {
	if rate <= 0 {
		return gen
	}
	if rate > 1 {
		rate = 1
	}
	return abortingGenerator{gen: gen, rate: rate}
}

type abortingGenerator struct {
	gen  Generator
	rate float64
}

func (g abortingGenerator) Next(rng *rand.Rand) (string, TxFunc) {
	name, fn := g.gen.Next(rng)
	if rng.Float64() >= g.rate {
		return name, fn
	}
	return name, func(tx *core.Tx) error {
		if err := fn(tx); err != nil {
			return err
		}
		return core.Abort
	}
}

// Options controls a benchmark run.
type Options struct {
	// Clients is the number of closed-loop client goroutines. If zero it
	// defaults to the engine's agent count (or 1).
	Clients int
	// Duration is the measured interval (after warm-up).
	Duration time.Duration
	// Warmup is run before measurement starts and is not counted.
	Warmup time.Duration
	// Seed seeds the per-client random sources (clients use Seed+clientID).
	Seed int64
}

// Result is the outcome of one benchmark run.
type Result struct {
	// Duration is the measured wall-clock interval.
	Duration time.Duration
	// Committed counts transactions that committed successfully during the
	// measured interval.
	Committed uint64
	// Failed counts transactions that completed with an expected,
	// input-dependent failure (core.Abort) and were rolled back — e.g. the
	// NDBB transactions that fail on invalid input or TPC-C New Order with an
	// invalid item. They count towards throughput, as in the paper.
	Failed uint64
	// Errors counts transactions that returned an unexpected error.
	Errors uint64
	// Throughput is completed (committed + failed) transactions per second.
	Throughput float64
	// AvgLatency is the mean client-observed latency of completed
	// transactions.
	AvgLatency time.Duration
	// Breakdown is the profiler delta over the measured interval (empty if
	// profiling is disabled).
	Breakdown profiler.Breakdown
	// LockStats is the lock-manager counter delta over the measured interval.
	LockStats lockmgr.StatsSnapshot
	// PerTx aggregates committed counts per transaction name.
	PerTx map[string]uint64
}

// Run drives the engine with the generator according to opts and returns the
// measured result.
func Run(e *core.Engine, gen Generator, opts Options) Result {
	clients := opts.Clients
	if clients <= 0 {
		clients = e.Concurrency()
		if clients <= 0 {
			clients = 1
		}
	}
	if opts.Duration <= 0 {
		opts.Duration = time.Second
	}

	var (
		measuring  atomic.Bool
		stop       atomic.Bool
		committed  atomic.Uint64
		failed     atomic.Uint64
		errCount   atomic.Uint64
		latencySum atomic.Int64
		perTxMu    sync.Mutex
		perTx      = map[string]uint64{}
	)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(id)*104729 + 1))
			for !stop.Load() {
				name, fn := gen.Next(rng)
				start := time.Now()
				err := e.Exec(fn)
				elapsed := time.Since(start)
				if !measuring.Load() {
					continue
				}
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, core.Abort):
					// Expected, input-dependent failure: the transaction was
					// rolled back; it still counts as a completed request.
					failed.Add(1)
				default:
					errCount.Add(1)
					continue
				}
				latencySum.Add(int64(elapsed))
				perTxMu.Lock()
				perTx[name]++
				perTxMu.Unlock()
			}
		}(c)
	}

	if opts.Warmup > 0 {
		time.Sleep(opts.Warmup)
	}
	// Start the measurement interval: reset the profiler and snapshot the
	// lock-manager counters so the result reflects only this interval.
	e.Profiler().Reset()
	lockBefore := e.LockStats()
	measuring.Store(true)
	start := time.Now()
	time.Sleep(opts.Duration)
	measuring.Store(false)
	elapsed := time.Since(start)
	breakdown := e.Profiler().Aggregate()
	lockAfter := e.LockStats()
	stop.Store(true)
	wg.Wait()

	completed := committed.Load() + failed.Load()
	res := Result{
		Duration:   elapsed,
		Committed:  committed.Load(),
		Failed:     failed.Load(),
		Errors:     errCount.Load(),
		Breakdown:  breakdown,
		LockStats:  lockAfter.Diff(lockBefore),
		PerTx:      perTx,
		Throughput: float64(completed) / elapsed.Seconds(),
	}
	if completed > 0 {
		res.AvgLatency = time.Duration(latencySum.Load() / int64(completed))
	}
	return res
}

// Completed returns the number of transactions that finished (committed or
// failed in the expected, input-dependent way) during measurement.
func (r Result) Completed() uint64 { return r.Committed + r.Failed }

// FailureRate returns the fraction of completed transactions that reported
// an expected application-level failure (the paper's per-transaction failure
// rates, e.g. 76.1% for GET_NEW_DESTINATION).
func (r Result) FailureRate() float64 {
	if r.Completed() == 0 {
		return 0
	}
	return float64(r.Failed) / float64(r.Completed())
}
