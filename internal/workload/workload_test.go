package workload

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"slidb/internal/core"
	"slidb/internal/record"
)

func testEngine(t *testing.T) *core.Engine {
	t.Helper()
	e := core.Open(core.Config{Agents: 2, Profile: true})
	t.Cleanup(func() { e.Close() })
	schema := record.MustSchema(
		record.Column{Name: "id", Type: record.TypeInt},
		record.Column{Name: "v", Type: record.TypeInt},
	)
	if err := e.CreateTable("t", schema, []string{"id"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *core.Tx) error {
		for i := 0; i < 100; i++ {
			if err := tx.Insert("t", record.Row{record.Int(int64(i)), record.Int(0)}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestMixPicksAccordingToWeights(t *testing.T) {
	mix := Mix{
		{Name: "a", Weight: 90, Make: func(*rand.Rand) TxFunc { return func(*core.Tx) error { return nil } }},
		{Name: "b", Weight: 10, Make: func(*rand.Rand) TxFunc { return func(*core.Tx) error { return nil } }},
	}
	rng := rand.New(rand.NewSource(1))
	counts := map[string]int{}
	for i := 0; i < 10000; i++ {
		name, fn := mix.Next(rng)
		if fn == nil {
			t.Fatal("nil transaction")
		}
		counts[name]++
	}
	ratio := float64(counts["a"]) / 10000
	if ratio < 0.85 || ratio > 0.95 {
		t.Fatalf("weight-90 entry picked %.1f%% of the time", 100*ratio)
	}
	if counts["a"]+counts["b"] != 10000 {
		t.Fatal("mix produced unknown entries")
	}
}

func TestRunMeasuresThroughputAndFailures(t *testing.T) {
	e := testEngine(t)
	gen := Mix{
		{Name: "read", Weight: 3, Make: func(rng *rand.Rand) TxFunc {
			id := rng.Int63n(100)
			return func(tx *core.Tx) error {
				_, _, err := tx.Get("t", record.Int(id))
				return err
			}
		}},
		{Name: "fail", Weight: 1, Make: func(rng *rand.Rand) TxFunc {
			return func(tx *core.Tx) error { return core.Abort }
		}},
	}
	res := Run(e, gen, Options{Clients: 4, Duration: 200 * time.Millisecond, Warmup: 50 * time.Millisecond})
	if res.Committed == 0 {
		t.Fatal("no transactions committed")
	}
	if res.Errors != 0 {
		t.Fatalf("unexpected errors: %d", res.Errors)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
	if res.AvgLatency <= 0 {
		t.Fatal("latency not computed")
	}
	if res.FailureRate() < 0.1 || res.FailureRate() > 0.45 {
		t.Fatalf("failure rate %.2f outside expected ~0.25 band", res.FailureRate())
	}
	if len(res.PerTx) != 2 {
		t.Fatalf("per-transaction counts missing: %v", res.PerTx)
	}
	if res.LockStats.Transactions == 0 {
		t.Fatal("lock stats not collected")
	}
	if res.Breakdown.Total() == 0 {
		t.Fatal("profiler breakdown empty despite profiling enabled")
	}
}

func TestRunCountsUnexpectedErrors(t *testing.T) {
	e := testEngine(t)
	boom := errors.New("boom")
	gen := Mix{{Name: "bad", Weight: 1, Make: func(*rand.Rand) TxFunc {
		return func(tx *core.Tx) error { return boom }
	}}}
	res := Run(e, gen, Options{Clients: 1, Duration: 100 * time.Millisecond})
	if res.Errors == 0 {
		t.Fatal("errors not counted")
	}
	if res.Committed != 0 {
		t.Fatal("failing transactions counted as committed")
	}
	if res.FailureRate() != 0 {
		t.Fatal("failure rate should be 0 when nothing commits")
	}
}

func TestRunDefaultsClientsToAgents(t *testing.T) {
	e := testEngine(t)
	gen := Mix{{Name: "noop", Weight: 1, Make: func(*rand.Rand) TxFunc {
		return func(tx *core.Tx) error { return nil }
	}}}
	res := Run(e, gen, Options{Duration: 50 * time.Millisecond})
	if res.Committed == 0 {
		t.Fatal("no transactions committed with defaulted client count")
	}
}
