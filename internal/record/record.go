// Package record defines typed tuples (rows), table schemas, and the binary
// encodings used to store rows in slotted pages and to build order-preserving
// index keys. It is the lowest layer of the storage manager's data model and
// has no dependencies on the rest of the engine.
package record

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
)

// Type is the type of a column or value.
type Type uint8

// Supported column types.
const (
	// TypeInt is a 64-bit signed integer.
	TypeInt Type = iota + 1
	// TypeFloat is a 64-bit IEEE float.
	TypeFloat
	// TypeString is a variable-length UTF-8 string.
	TypeString
)

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "BIGINT"
	case TypeFloat:
		return "DOUBLE"
	case TypeString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Value is a dynamically typed column value. The zero Value is "null-ish"
// and has type 0; the engine does not support SQL NULL semantics beyond
// round-tripping the zero value.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
}

// Int returns an integer value.
func Int(v int64) Value { return Value{typ: TypeInt, i: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{typ: TypeFloat, f: v} }

// String returns a string value.
func String(v string) Value { return Value{typ: TypeString, s: v} }

// Type returns the value's type.
func (v Value) Type() Type { return v.typ }

// AsInt returns the integer payload (0 for non-integer values).
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload; integer values are converted.
func (v Value) AsFloat() float64 {
	if v.typ == TypeInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string payload ("" for non-string values).
func (v Value) AsString() string { return v.s }

// Equal reports whether two values have the same type and payload.
func (v Value) Equal(o Value) bool { return v == o }

// GoString renders the value for debugging.
func (v Value) GoString() string {
	switch v.typ {
	case TypeInt:
		return fmt.Sprintf("%d", v.i)
	case TypeFloat:
		return fmt.Sprintf("%g", v.f)
	case TypeString:
		return fmt.Sprintf("%q", v.s)
	default:
		return "<nil>"
	}
}

// Compare orders two values of the same type: -1, 0, or +1. Values of
// different types order by type tag (stable but arbitrary), which lets mixed
// keys still sort deterministically.
func (v Value) Compare(o Value) int {
	if v.typ != o.typ {
		switch {
		case v.typ < o.typ:
			return -1
		default:
			return 1
		}
	}
	switch v.typ {
	case TypeInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	case TypeFloat:
		switch {
		case v.f < o.f:
			return -1
		case v.f > o.f:
			return 1
		}
		return 0
	case TypeString:
		return strings.Compare(v.s, o.s)
	default:
		return 0
	}
}

// Row is one tuple.
type Row []Value

// Clone returns a copy of the row (values are immutable, so a shallow copy
// of the slice suffices, but the backing array is new).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// Column describes one column of a table.
type Column struct {
	// Name is the column name, unique within the schema.
	Name string
	// Type is the column type.
	Type Type
}

// Schema describes the columns of a table.
type Schema struct {
	cols    []Column
	byName  map[string]int
	rowSize int // rough estimate, for free-space planning
}

// NewSchema builds a schema from the given columns. Column names must be
// unique and non-empty.
func NewSchema(cols ...Column) (*Schema, error) {
	if len(cols) == 0 {
		return nil, errors.New("record: schema needs at least one column")
	}
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("record: column %d has empty name", i)
		}
		if c.Type != TypeInt && c.Type != TypeFloat && c.Type != TypeString {
			return nil, fmt.Errorf("record: column %q has invalid type %v", c.Name, c.Type)
		}
		if _, dup := s.byName[c.Name]; dup {
			return nil, fmt.Errorf("record: duplicate column %q", c.Name)
		}
		s.byName[c.Name] = i
		switch c.Type {
		case TypeString:
			s.rowSize += 24
		default:
			s.rowSize += 9
		}
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; intended for statically
// known benchmark and test schemas.
func MustSchema(cols ...Column) *Schema {
	s, err := NewSchema(cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Columns returns the schema's columns.
func (s *Schema) Columns() []Column { return s.cols }

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.cols) }

// ColumnIndex returns the position of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	i, ok := s.byName[name]
	if !ok {
		return -1
	}
	return i
}

// EstimatedRowSize returns a rough per-row byte estimate used for page
// free-space planning.
func (s *Schema) EstimatedRowSize() int { return s.rowSize }

// Validate checks that the row matches the schema's arity and column types.
func (s *Schema) Validate(r Row) error {
	if len(r) != len(s.cols) {
		return fmt.Errorf("record: row has %d values, schema has %d columns", len(r), len(s.cols))
	}
	for i, v := range r {
		if v.typ != s.cols[i].Type {
			return fmt.Errorf("record: column %q expects %v, got %v", s.cols[i].Name, s.cols[i].Type, v.typ)
		}
	}
	return nil
}

// Encode serializes a row (which must match the schema) into a byte slice.
// The format is: for each column, a type tag byte followed by the payload
// (8-byte little-endian for ints and floats, uvarint length + bytes for
// strings).
func (s *Schema) Encode(r Row) ([]byte, error) {
	if err := s.Validate(r); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, s.rowSize)
	var scratch [binary.MaxVarintLen64]byte
	for _, v := range r {
		buf = append(buf, byte(v.typ))
		switch v.typ {
		case TypeInt:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v.i))
		case TypeFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.f))
		case TypeString:
			n := binary.PutUvarint(scratch[:], uint64(len(v.s)))
			buf = append(buf, scratch[:n]...)
			buf = append(buf, v.s...)
		}
	}
	return buf, nil
}

// Decode deserializes a row previously produced by Encode with the same
// schema.
func (s *Schema) Decode(data []byte) (Row, error) {
	row := make(Row, 0, len(s.cols))
	pos := 0
	for i := range s.cols {
		if pos >= len(data) {
			return nil, fmt.Errorf("record: truncated row at column %d", i)
		}
		typ := Type(data[pos])
		pos++
		if typ != s.cols[i].Type {
			return nil, fmt.Errorf("record: column %q encoded as %v, schema says %v", s.cols[i].Name, typ, s.cols[i].Type)
		}
		switch typ {
		case TypeInt:
			if pos+8 > len(data) {
				return nil, errors.New("record: truncated int")
			}
			row = append(row, Int(int64(binary.LittleEndian.Uint64(data[pos:]))))
			pos += 8
		case TypeFloat:
			if pos+8 > len(data) {
				return nil, errors.New("record: truncated float")
			}
			row = append(row, Float(math.Float64frombits(binary.LittleEndian.Uint64(data[pos:]))))
			pos += 8
		case TypeString:
			n, used := binary.Uvarint(data[pos:])
			if used <= 0 || pos+used+int(n) > len(data) {
				return nil, errors.New("record: truncated string")
			}
			pos += used
			row = append(row, String(string(data[pos:pos+int(n)])))
			pos += int(n)
		default:
			return nil, fmt.Errorf("record: unknown type tag %d", typ)
		}
	}
	if pos != len(data) {
		return nil, fmt.Errorf("record: %d trailing bytes after row", len(data)-pos)
	}
	return row, nil
}

// EncodeKey builds an order-preserving (memcomparable) byte-string key from
// the given values, suitable for B+tree indexes: comparing the resulting
// strings with < gives the same order as comparing the value tuples
// column-by-column with Value.Compare.
//
// Integers are encoded big-endian with the sign bit flipped; floats use the
// standard IEEE-754 total-order trick; strings are escaped so that embedded
// zero bytes cannot collide with the column terminator.
func EncodeKey(vals ...Value) string {
	var b []byte
	for _, v := range vals {
		switch v.typ {
		case TypeInt:
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], uint64(v.i)^(1<<63))
			b = append(b, byte(TypeInt))
			b = append(b, tmp[:]...)
		case TypeFloat:
			bits := math.Float64bits(v.f)
			if bits&(1<<63) != 0 {
				bits = ^bits
			} else {
				bits ^= 1 << 63
			}
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], bits)
			b = append(b, byte(TypeFloat))
			b = append(b, tmp[:]...)
		case TypeString:
			b = append(b, byte(TypeString))
			for i := 0; i < len(v.s); i++ {
				c := v.s[i]
				if c == 0x00 {
					b = append(b, 0x00, 0xff)
				} else {
					b = append(b, c)
				}
			}
			b = append(b, 0x00, 0x00)
		default:
			b = append(b, 0)
		}
	}
	return string(b)
}
