package record

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema(
		Column{Name: "id", Type: TypeInt},
		Column{Name: "balance", Type: TypeFloat},
		Column{Name: "name", Type: TypeString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaConstruction(t *testing.T) {
	s := testSchema(t)
	if s.NumColumns() != 3 {
		t.Fatalf("columns = %d, want 3", s.NumColumns())
	}
	if s.ColumnIndex("balance") != 1 || s.ColumnIndex("missing") != -1 {
		t.Fatal("ColumnIndex wrong")
	}
	if s.EstimatedRowSize() <= 0 {
		t.Fatal("estimated row size must be positive")
	}
	if len(s.Columns()) != 3 {
		t.Fatal("Columns() wrong length")
	}
}

func TestSchemaRejectsBadDefinitions(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := NewSchema(Column{Name: "", Type: TypeInt}); err == nil {
		t.Fatal("empty column name accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: Type(99)}); err == nil {
		t.Fatal("invalid type accepted")
	}
	if _, err := NewSchema(Column{Name: "a", Type: TypeInt}, Column{Name: "a", Type: TypeInt}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema should panic on invalid schema")
		}
	}()
	MustSchema()
}

func TestValueAccessors(t *testing.T) {
	if Int(42).AsInt() != 42 || Int(42).Type() != TypeInt {
		t.Fatal("Int accessor broken")
	}
	if Float(2.5).AsFloat() != 2.5 || Int(3).AsFloat() != 3.0 {
		t.Fatal("Float accessor broken")
	}
	if String("hi").AsString() != "hi" {
		t.Fatal("String accessor broken")
	}
	if !Int(1).Equal(Int(1)) || Int(1).Equal(Int(2)) || Int(1).Equal(String("1")) {
		t.Fatal("Equal broken")
	}
	for _, v := range []Value{Int(1), Float(1.5), String("x"), {}} {
		if v.GoString() == "" {
			t.Fatal("GoString empty")
		}
	}
	if TypeInt.String() == "" || TypeFloat.String() == "" || TypeString.String() == "" || Type(9).String() == "" {
		t.Fatal("Type.String empty")
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1}, {Int(2), Int(2), 0}, {Int(3), Int(2), 1},
		{Float(1.5), Float(2.5), -1}, {Float(2.5), Float(2.5), 0},
		{String("a"), String("b"), -1}, {String("b"), String("b"), 0},
		{Int(1), String("a"), -1}, {String("a"), Int(1), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%#v,%#v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := testSchema(t)
	row := Row{Int(-17), Float(3.25), String("hello, world")}
	data, err := s.Encode(row)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, got) {
		t.Fatalf("round trip mismatch: %v vs %v", row, got)
	}
}

func TestEncodeRejectsWrongRows(t *testing.T) {
	s := testSchema(t)
	if _, err := s.Encode(Row{Int(1)}); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := s.Encode(Row{Int(1), Int(2), String("x")}); err == nil {
		t.Fatal("wrong type accepted")
	}
}

func TestDecodeRejectsCorruptData(t *testing.T) {
	s := testSchema(t)
	row := Row{Int(1), Float(2), String("abc")}
	data, _ := s.Encode(row)
	for cut := 1; cut < len(data); cut++ {
		if _, err := s.Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := s.Decode(append(append([]byte{}, data...), 0x01)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] = 0x7f // unknown/mismatched type tag
	if _, err := s.Decode(bad); err == nil {
		t.Fatal("type-tag mismatch accepted")
	}
}

// TestEncodeDecodeQuick round-trips random rows through the codec.
func TestEncodeDecodeQuick(t *testing.T) {
	s := testSchema(t)
	f := func(id int64, bal float64, name string) bool {
		row := Row{Int(id), Float(bal), String(name)}
		data, err := s.Encode(row)
		if err != nil {
			return false
		}
		got, err := s.Decode(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(row, got)
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRowClone(t *testing.T) {
	r := Row{Int(1), String("x")}
	c := r.Clone()
	c[0] = Int(2)
	if r[0].AsInt() != 1 {
		t.Fatal("Clone did not copy the backing array")
	}
}

// TestEncodeKeyOrderPreservingInts verifies the memcomparable property for
// integer keys, including negative numbers.
func TestEncodeKeyOrderPreservingInts(t *testing.T) {
	vals := []int64{-1 << 62, -100000, -2, -1, 0, 1, 2, 7, 100000, 1 << 62}
	for i := 1; i < len(vals); i++ {
		a, b := EncodeKey(Int(vals[i-1])), EncodeKey(Int(vals[i]))
		if !(a < b) {
			t.Fatalf("key order broken: %d !< %d", vals[i-1], vals[i])
		}
	}
}

func TestEncodeKeyOrderPreservingQuick(t *testing.T) {
	f := func(a, b int64) bool {
		ka, kb := EncodeKey(Int(a)), EncodeKey(Int(b))
		switch {
		case a < b:
			return ka < kb
		case a > b:
			return ka > kb
		default:
			return ka == kb
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyStringsAndComposite(t *testing.T) {
	// Composite (int, string) keys must sort first by int then by string,
	// and a string containing a zero byte must not break the ordering.
	type pair struct {
		i int64
		s string
	}
	pairs := []pair{
		{1, "a"}, {1, "ab"}, {1, "b"}, {2, ""}, {2, "a\x00b"}, {2, "a\x01"}, {3, "zzz"},
	}
	rng := rand.New(rand.NewSource(1))
	shuffled := append([]pair(nil), pairs...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	sort.Slice(shuffled, func(i, j int) bool {
		return EncodeKey(Int(shuffled[i].i), String(shuffled[i].s)) < EncodeKey(Int(shuffled[j].i), String(shuffled[j].s))
	})
	if !reflect.DeepEqual(pairs, shuffled) {
		t.Fatalf("composite key order wrong:\nwant %v\ngot  %v", pairs, shuffled)
	}
}

func TestEncodeKeyFloats(t *testing.T) {
	vals := []float64{-1e300, -2.5, -0.0, 0.0, 0.25, 3.75, 1e300}
	for i := 1; i < len(vals); i++ {
		a, b := EncodeKey(Float(vals[i-1])), EncodeKey(Float(vals[i]))
		if a > b {
			t.Fatalf("float key order broken at %g vs %g", vals[i-1], vals[i])
		}
	}
}

func TestEncodeKeyPrefixSafety(t *testing.T) {
	// "ab" followed by another column must never sort between "a" and "ab".
	k1 := EncodeKey(String("a"), Int(9))
	k2 := EncodeKey(String("ab"), Int(0))
	if !(k1 < k2) {
		t.Fatal("string terminator does not preserve prefix ordering")
	}
	if strings.HasPrefix(k2, EncodeKey(String("ab"))) == false {
		// sanity: EncodeKey of a prefix of columns is a string prefix
		t.Fatal("composite key should extend the single-column key")
	}
}
