// Package buffer implements the buffer pool: a fixed set of in-memory frames
// caching data pages, with clock eviction, dirty-page writeback, and an
// optional artificial per-I/O latency.
//
// The artificial latency reproduces the paper's experimental setup (§5.2):
// the database lives on an in-memory store but every page miss or writeback
// pays a configurable delay (the paper uses 6 ms) to simulate a large disk
// array where "all requests can proceed in parallel but must each still pay
// the cost of a disk seek". I/O happens outside the pool's metadata latch so
// concurrent misses overlap their delays, exactly as the paper intends.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"slidb/internal/latch"
	"slidb/internal/page"
	"slidb/internal/profiler"
)

// PageID identifies a data page globally: table (store) plus page number
// within the table.
type PageID struct {
	Table uint32
	Page  uint64
}

// String renders the page ID for debugging.
func (id PageID) String() string { return fmt.Sprintf("%d.%d", id.Table, id.Page) }

// Store is the backing storage the buffer pool reads from and writes to.
type Store interface {
	// Read copies the page image into buf and reports whether the page
	// exists in the store.
	Read(id PageID, buf []byte) (bool, error)
	// Write persists the page image.
	Write(id PageID, data []byte) error
}

// MemStore is an in-memory Store, standing in for the paper's in-memory file
// system.
type MemStore struct {
	mu    sync.RWMutex
	pages map[PageID][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{pages: make(map[PageID][]byte)} }

// Read implements Store.
func (s *MemStore) Read(id PageID, buf []byte) (bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.pages[id]
	if !ok {
		return false, nil
	}
	copy(buf, data)
	return true, nil
}

// Write implements Store.
func (s *MemStore) Write(id PageID, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.pages[id] = cp
	s.mu.Unlock()
	return nil
}

// Len returns the number of pages in the store.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.pages)
}

// Frame is one buffer-pool slot holding a page. Callers access the page
// content under the frame's Latch and must keep the frame pinned while they
// hold a reference to it.
type Frame struct {
	// Latch protects the page contents (readers share, writers exclude).
	Latch latch.RWLatch

	id      PageID
	pg      *page.Page
	pins    atomic.Int32
	refbit  atomic.Bool
	dirty   atomic.Bool
	valid   bool          // has ever been mapped to a page
	loading chan struct{} // non-nil while the page image is being read in
}

// ID returns the page the frame currently holds.
func (f *Frame) ID() PageID { return f.id }

// Page returns the slotted page held by the frame. Access it only while the
// frame is pinned and the Latch is held in the appropriate mode.
func (f *Frame) Page() *page.Page { return f.pg }

// MarkDirty records that the page content was modified and must be written
// back before eviction.
func (f *Frame) MarkDirty() { f.dirty.Store(true) }

// Stats holds buffer pool counters.
type Stats struct {
	Hits       atomic.Uint64
	Misses     atomic.Uint64
	Evictions  atomic.Uint64
	Writebacks atomic.Uint64
}

// StatsSnapshot is a plain copy of Stats.
type StatsSnapshot struct {
	Hits, Misses, Evictions, Writebacks uint64
}

// Config configures a buffer pool.
type Config struct {
	// Frames is the number of page frames (default 4096 ≈ 32 MiB).
	Frames int
	// IODelay is the artificial latency charged to every page read from or
	// write to the store (the paper's simulated disk seek). Zero disables it.
	IODelay time.Duration
}

// ErrNoFrames is returned when every frame is pinned and no page can be
// brought in.
var ErrNoFrames = errors.New("buffer: all frames pinned")

// Pool is the buffer pool.
type Pool struct {
	cfg   Config
	store Store

	mu     latch.Mutex
	table  map[PageID]*Frame
	frames []*Frame
	clock  int

	stats Stats
}

// NewPool creates a buffer pool over the given store.
func NewPool(store Store, cfg Config) *Pool {
	if cfg.Frames <= 0 {
		cfg.Frames = 4096
	}
	return &Pool{
		cfg:   cfg,
		store: store,
		table: make(map[PageID]*Frame, cfg.Frames),
	}
}

// Stats returns a snapshot of the pool's counters.
func (p *Pool) Stats() StatsSnapshot {
	return StatsSnapshot{
		Hits:       p.stats.Hits.Load(),
		Misses:     p.stats.Misses.Load(),
		Evictions:  p.stats.Evictions.Load(),
		Writebacks: p.stats.Writebacks.Load(),
	}
}

// Capacity returns the configured number of frames.
func (p *Pool) Capacity() int { return p.cfg.Frames }

// Fetch pins and returns the frame holding the given page, reading it from
// the store (or initializing an empty page) on a miss. The caller must call
// Unpin exactly once when done. h may be nil.
func (p *Pool) Fetch(h *profiler.Handle, id PageID) (*Frame, error) {
	workStart := time.Now()
	contended, wait := p.mu.Lock()
	if contended {
		h.Add(profiler.BufferContention, wait)
	}
	if f, ok := p.table[id]; ok {
		f.pins.Add(1)
		f.refbit.Store(true)
		loading := f.loading
		p.mu.Unlock()
		p.stats.Hits.Add(1)
		if loading != nil {
			ioStart := time.Now()
			<-loading
			h.Add(profiler.IOWait, time.Since(ioStart))
		}
		h.Add(profiler.BufferWork, time.Since(workStart)-wait)
		return f, nil
	}

	victim := p.victimLocked()
	if victim == nil {
		p.mu.Unlock()
		// Even the pool-exhausted miss spent wall time under the table lock;
		// attribute it (found by the proftimer analyzer).
		h.Add(profiler.BufferWork, time.Since(workStart)-wait)
		return nil, ErrNoFrames
	}
	oldID, oldValid, oldDirty := victim.id, victim.valid, victim.dirty.Load()
	if oldValid {
		delete(p.table, oldID)
		p.stats.Evictions.Add(1)
	}
	victim.id = id
	victim.valid = true
	victim.pins.Store(1)
	victim.refbit.Store(true)
	victim.dirty.Store(false)
	ch := make(chan struct{})
	victim.loading = ch
	p.table[id] = victim
	p.mu.Unlock()
	p.stats.Misses.Add(1)
	h.Add(profiler.BufferWork, time.Since(workStart)-wait)

	// I/O happens outside the pool latch so concurrent misses overlap.
	ioStart := time.Now()
	if oldValid && oldDirty {
		if err := p.store.Write(oldID, victim.pg.Bytes()); err != nil {
			// Propagate the error but leave the frame usable as a fresh page.
			victim.pg.Init()
			p.finishLoad(victim, ch)
			h.Add(profiler.IOWait, time.Since(ioStart))
			return nil, fmt.Errorf("buffer: writeback of %v failed: %w", oldID, err)
		}
		p.stats.Writebacks.Add(1)
		p.simulateIO()
	}
	found, err := p.store.Read(id, victim.pg.Bytes())
	if err != nil {
		victim.pg.Init()
		p.finishLoad(victim, ch)
		h.Add(profiler.IOWait, time.Since(ioStart))
		return nil, fmt.Errorf("buffer: read of %v failed: %w", id, err)
	}
	if found {
		p.simulateIO()
	} else {
		victim.pg.Init()
	}
	p.finishLoad(victim, ch)
	h.Add(profiler.IOWait, time.Since(ioStart))
	return victim, nil
}

func (p *Pool) finishLoad(f *Frame, ch chan struct{}) {
	p.mu.Lock()
	f.loading = nil
	p.mu.Unlock()
	close(ch)
}

func (p *Pool) simulateIO() {
	if p.cfg.IODelay > 0 {
		time.Sleep(p.cfg.IODelay)
	}
}

// victimLocked returns an unpinned frame to reuse, allocating a new frame
// while the pool is below capacity. Must be called with p.mu held.
func (p *Pool) victimLocked() *Frame {
	if len(p.frames) < p.cfg.Frames {
		f := &Frame{pg: page.New()}
		p.frames = append(p.frames, f)
		return f
	}
	for scanned := 0; scanned < 2*len(p.frames); scanned++ {
		f := p.frames[p.clock]
		p.clock = (p.clock + 1) % len(p.frames)
		if f.pins.Load() != 0 || f.loading != nil {
			continue
		}
		if f.refbit.Load() {
			f.refbit.Store(false)
			continue
		}
		return f
	}
	return nil
}

// Unpin releases a pin taken by Fetch. Set dirty if the caller modified the
// page content.
func (p *Pool) Unpin(f *Frame, dirty bool) {
	if dirty {
		f.dirty.Store(true)
	}
	if n := f.pins.Add(-1); n < 0 {
		panic("buffer: unpin without matching pin")
	}
}

// FlushAll writes every dirty page back to the store (e.g. at checkpoint or
// shutdown). Pages stay cached.
func (p *Pool) FlushAll(h *profiler.Handle) error {
	p.mu.Lock()
	frames := make([]*Frame, len(p.frames))
	copy(frames, p.frames)
	p.mu.Unlock()
	for _, f := range frames {
		if !f.dirty.Load() {
			continue
		}
		f.pins.Add(1)
		f.Latch.RLock()
		err := p.store.Write(f.id, f.pg.Bytes())
		f.Latch.RUnlock()
		if err == nil {
			f.dirty.Store(false)
			p.stats.Writebacks.Add(1)
			ioStart := time.Now()
			p.simulateIO()
			h.Add(profiler.IOWait, time.Since(ioStart))
		}
		p.pinsRelease(f)
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *Pool) pinsRelease(f *Frame) { f.pins.Add(-1) }

// CachedPages returns the number of pages currently mapped in the pool.
func (p *Pool) CachedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.table)
}
