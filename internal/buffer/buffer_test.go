package buffer

import (
	"errors"
	"sync"
	"testing"
	"time"

	"slidb/internal/profiler"
)

func TestFetchCreatesAndCachesPages(t *testing.T) {
	p := NewPool(NewMemStore(), Config{Frames: 8})
	id := PageID{Table: 1, Page: 0}
	f, err := p.Fetch(nil, id)
	if err != nil {
		t.Fatal(err)
	}
	if f.ID() != id {
		t.Fatalf("frame id = %v, want %v", f.ID(), id)
	}
	if _, err := f.Page().Insert([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	p.Unpin(f, true)

	// Second fetch must be a hit and see the data.
	f2, err := p.Fetch(nil, id)
	if err != nil {
		t.Fatal(err)
	}
	if f2 != f {
		t.Fatal("second fetch returned a different frame (not cached)")
	}
	rec, err := f2.Page().Get(0)
	if err != nil || string(rec) != "hello" {
		t.Fatalf("cached page lost data: %q, %v", rec, err)
	}
	p.Unpin(f2, false)
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", s)
	}
}

func TestEvictionWritesBackDirtyPages(t *testing.T) {
	store := NewMemStore()
	p := NewPool(store, Config{Frames: 2})
	// Dirty page 0.
	f0, _ := p.Fetch(nil, PageID{1, 0})
	f0.Page().Insert([]byte("zero"))
	p.Unpin(f0, true)
	// Fill the pool and force eviction of page 0.
	for i := uint64(1); i <= 3; i++ {
		f, err := p.Fetch(nil, PageID{1, i})
		if err != nil {
			t.Fatal(err)
		}
		p.Unpin(f, false)
	}
	if store.Len() == 0 {
		t.Fatal("dirty page was evicted without writeback")
	}
	// Re-fetch page 0: must come back with its data.
	f0b, err := p.Fetch(nil, PageID{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f0b.Page().Get(0)
	if err != nil || string(rec) != "zero" {
		t.Fatalf("page 0 lost data after eviction round trip: %q %v", rec, err)
	}
	p.Unpin(f0b, false)
	if p.Stats().Writebacks == 0 || p.Stats().Evictions == 0 {
		t.Fatalf("stats missing evictions/writebacks: %+v", p.Stats())
	}
}

func TestAllFramesPinnedReturnsError(t *testing.T) {
	p := NewPool(NewMemStore(), Config{Frames: 2})
	f1, _ := p.Fetch(nil, PageID{1, 1})
	f2, _ := p.Fetch(nil, PageID{1, 2})
	if _, err := p.Fetch(nil, PageID{1, 3}); !errors.Is(err, ErrNoFrames) {
		t.Fatalf("err = %v, want ErrNoFrames", err)
	}
	p.Unpin(f1, false)
	if _, err := p.Fetch(nil, PageID{1, 3}); err != nil {
		t.Fatalf("fetch after unpin failed: %v", err)
	}
	p.Unpin(f2, false)
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	p := NewPool(NewMemStore(), Config{Frames: 2})
	f, _ := p.Fetch(nil, PageID{1, 1})
	p.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double unpin")
		}
	}()
	p.Unpin(f, false)
}

func TestFlushAllPersistsDirtyPages(t *testing.T) {
	store := NewMemStore()
	p := NewPool(store, Config{Frames: 8})
	for i := uint64(0); i < 4; i++ {
		f, _ := p.Fetch(nil, PageID{7, i})
		f.Page().Insert([]byte{byte(i)})
		p.Unpin(f, true)
	}
	if err := p.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 4 {
		t.Fatalf("store has %d pages after flush, want 4", store.Len())
	}
	// Flushing again writes nothing new (pages are clean now).
	before := p.Stats().Writebacks
	if err := p.FlushAll(nil); err != nil {
		t.Fatal(err)
	}
	if p.Stats().Writebacks != before {
		t.Fatal("clean pages were written again")
	}
}

func TestIODelayCharged(t *testing.T) {
	store := NewMemStore()
	// Pre-populate the page so the fetch is a real read.
	img := make([]byte, 8192)
	if err := store.Write(PageID{1, 0}, img); err != nil {
		t.Fatal(err)
	}
	p := NewPool(store, Config{Frames: 2, IODelay: 5 * time.Millisecond})
	prof := profiler.New(true)
	h := prof.NewHandle()
	start := time.Now()
	f, err := p.Fetch(h, PageID{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	p.Unpin(f, false)
	if elapsed < 4*time.Millisecond {
		t.Fatalf("fetch took %v, expected >= ~5ms artificial delay", elapsed)
	}
	if prof.Aggregate().Get(profiler.IOWait) < 4*time.Millisecond {
		t.Fatal("IO wait not attributed to the profiler")
	}
	// A hit must not pay the delay.
	start = time.Now()
	f, _ = p.Fetch(h, PageID{1, 0})
	if time.Since(start) > 2*time.Millisecond {
		t.Fatal("buffer hit paid the artificial I/O delay")
	}
	p.Unpin(f, false)
}

func TestConcurrentFetchSamePage(t *testing.T) {
	p := NewPool(NewMemStore(), Config{Frames: 16})
	id := PageID{3, 3}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := p.Fetch(nil, id)
			if err != nil {
				errs <- err
				return
			}
			f.Latch.RLock()
			_ = f.Page().NumRecords()
			f.Latch.RUnlock()
			p.Unpin(f, false)
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.CachedPages() != 1 {
		t.Fatalf("cached pages = %d, want 1", p.CachedPages())
	}
}

func TestConcurrentFetchManyPagesWithEviction(t *testing.T) {
	store := NewMemStore()
	p := NewPool(store, Config{Frames: 8})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := PageID{Table: uint32(g % 2), Page: uint64(i % 32)}
				f, err := p.Fetch(nil, id)
				if err != nil {
					errs <- err
					return
				}
				f.Latch.Lock()
				if f.Page().NumRecords() == 0 {
					f.Page().Insert([]byte{byte(g)})
				}
				f.Latch.Unlock()
				p.Unpin(f, true)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.CachedPages() > 8 {
		t.Fatalf("pool exceeded capacity: %d cached pages", p.CachedPages())
	}
}

func TestMemStoreReadWriteIsolation(t *testing.T) {
	s := NewMemStore()
	buf := make([]byte, 4)
	found, err := s.Read(PageID{1, 1}, buf)
	if err != nil || found {
		t.Fatal("read of missing page should report not found")
	}
	data := []byte{1, 2, 3, 4}
	if err := s.Write(PageID{1, 1}, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // the store must have copied
	found, _ = s.Read(PageID{1, 1}, buf)
	if !found || buf[0] != 1 {
		t.Fatalf("store did not isolate written data: %v", buf)
	}
	if (PageID{1, 1}).String() == "" {
		t.Fatal("PageID.String empty")
	}
}
