package core

import (
	"errors"
	"fmt"
	"math/bits"

	"slidb/internal/btree"
	"slidb/internal/heap"
	"slidb/internal/lockmgr"
	"slidb/internal/profiler"
	"slidb/internal/record"
	"slidb/internal/wal"
	"time"
)

// ErrNotFound is returned by lookups that match no row.
var ErrNotFound = errors.New("core: row not found")

// ErrDuplicateKey is returned when an insert violates a primary-key or
// unique-index constraint.
var ErrDuplicateKey = errors.New("core: duplicate key")

// ErrPrimaryKeyChange is returned when an update attempts to modify a
// primary-key column.
var ErrPrimaryKeyChange = errors.New("core: updates may not modify primary key columns")

// Abort is a sentinel error transaction bodies can return to abort without
// reporting a failure to the caller of Exec: Exec returns Abort itself, so
// callers can distinguish business-rule aborts (e.g. the NDBB transactions
// that fail on invalid input) from unexpected errors.
var Abort = errors.New("core: transaction aborted by application")

// indexTree wraps the generic B+tree used by all indexes.
type indexTree struct {
	t *btree.Tree[heap.RID]
}

func newIndexTree() *indexTree { return &indexTree{t: btree.New[heap.RID]()} }

func (it *indexTree) insert(key string, rid heap.RID) bool { return it.t.InsertIfAbsent(key, rid) }
func (it *indexTree) remove(key string) bool               { return it.t.Delete(key) }
func (it *indexTree) get(key string) (heap.RID, bool)      { return it.t.Get(key) }
func (it *indexTree) scanRange(lo, hi string, fn func(key string, rid heap.RID) bool) {
	it.t.AscendRange(lo, hi, fn)
}

// indexKey builds the B+tree key for an index entry. Unique indexes (and the
// primary key) use the column values alone; non-unique indexes append the
// RID so that duplicate column values remain distinct entries.
func indexKey(vals []record.Value, rid heap.RID, unique bool) string {
	k := record.EncodeKey(vals...)
	if unique {
		return k
	}
	return k + record.EncodeKey(record.Int(int64(rid.Page)), record.Int(int64(rid.Slot)))
}

// undoAction rolls back one data modification during abort.
type undoAction func(tx *Tx) error

// undoEntry is one registered rollback action: the in-memory undo of a
// logged data modification, the LSN of the original record (the CLR chain's
// UndoNext pointer targets it), and the redo-only compensation record that
// tx.abort logs after applying the undo. shard is the log shard the original
// record went to — the compensation must land on the same shard so the
// row's history stays totally ordered there, and its UndoNext must point at
// the next-older entry on that shard (per-shard CLR chains). seq is the
// entry's birth stamp within the transaction, used to detect stale
// savepoints: after a RollbackTo truncates the stack, later entries reuse
// the same positions but carry new stamps.
type undoEntry struct {
	lsn   wal.LSN
	shard int
	seq   uint64
	apply undoAction
	clr   wal.Record
}

// Tx is a transaction handle passed to the function given to Engine.Exec.
// It is only valid for the duration of that function and must not be used
// from other goroutines.
type Tx struct {
	e     *Engine
	xid   uint64
	owner *lockmgr.Owner
	prof  *profiler.Handle

	undo    []undoEntry
	undoSeq uint64 // birth stamps for undo entries (see undoEntry.seq)
	lastLSN wal.LSN
	logged  bool

	// Sharded-log state (nil/zero on single-shard engines, which keep the
	// lastLSN fast path above): shardLast is the per-shard counterpart of
	// lastLSN, began the bitmask of shards holding this transaction's begin
	// record, and readMask the shards of rows the transaction read while
	// Early Lock Release is on — those shards join the commit's participant
	// set so a dependent commit is never acknowledged before the commit that
	// exposed the data it read (see preCommitSharded).
	shardLast []wal.LSN
	began     uint64
	readMask  uint64
}

// pushUndo registers one rollback entry, stamping it for savepoint
// validation.
func (tx *Tx) pushUndo(ent undoEntry) {
	tx.undoSeq++
	ent.seq = tx.undoSeq
	tx.undo = append(tx.undo, ent)
}

// XID returns the transaction identifier.
func (tx *Tx) XID() uint64 { return tx.xid }

// appendTimed appends one WAL record, splitting the elapsed time into the
// profiler's log categories: blocked time entering the reservation critical
// section (reserve-wait), blocked time waiting for the flusher to drain a
// full buffer (buffer-full-wait), and the remainder — the reserve arithmetic
// plus encoding the record into the shared buffer — as useful log work,
// attributed to workCat so the abort path's CLR appends are reported apart
// from forward-path logging.
func (tx *Tx) appendTimed(l *wal.Log, rec wal.Record, workCat profiler.Category) (wal.LSN, error) {
	if tx.prof == nil {
		// No accounting consumer: take the clock-free append path.
		return l.Append(rec)
	}
	start := time.Now()
	lsn, waits, err := l.AppendTimed(rec)
	total := time.Since(start)
	tx.prof.Add(profiler.LogReserveWait, waits.Reserve)
	tx.prof.Add(profiler.LogBufferFullWait, waits.BufferFull)
	tx.prof.Add(workCat, total-waits.Reserve-waits.BufferFull)
	return lsn, err
}

// logAppend appends a WAL record to the given log shard, lazily writing the
// per-shard begin record first and tracking the shard's last LSN for commit.
// Single-shard engines keep the original one-log path untouched.
func (tx *Tx) logAppend(shard int, rec wal.Record) error {
	rec.XID = tx.xid
	if tx.e.nShards == 1 {
		if !tx.logged {
			if _, err := tx.appendTimed(tx.e.log, wal.Record{XID: tx.xid, Type: wal.RecBegin}, profiler.LogWork); err != nil {
				return err
			}
			tx.logged = true
		}
		lsn, err := tx.appendTimed(tx.e.log, rec, profiler.LogWork)
		if err != nil {
			return err
		}
		tx.lastLSN = lsn
		return nil
	}
	bit := uint64(1) << uint(shard)
	l := tx.e.logs[shard]
	if tx.began&bit == 0 {
		if _, err := tx.appendTimed(l, wal.Record{XID: tx.xid, Type: wal.RecBegin}, profiler.LogWork); err != nil {
			return err
		}
		tx.began |= bit
		tx.logged = true
	}
	lsn, err := tx.appendTimed(l, rec, profiler.LogWork)
	if err != nil {
		return err
	}
	tx.shardLast[shard] = lsn
	return nil
}

// trackReads reports whether the transaction must record the shards of rows
// it reads: only multi-shard engines under Early Lock Release need it, to
// order a dependent commit's acknowledgement after its dependency's (see
// Tx.readMask).
func (tx *Tx) trackReads() bool {
	return tx.e.nShards > 1 && tx.e.cfg.EarlyLockRelease
}

// preCommit finishes the transaction up to (but not including) durability.
// It appends the commit record and releases the transaction's locks,
// applying SLI to eligible locks. The returned ack channel, when non-nil,
// resolves once the commit record is durable; the caller (or the worker's
// pipeline) must wait on it before acknowledging the commit.
//
// With Early Lock Release the locks are released as soon as the commit
// record is appended — before the group-commit fsync — so lock hold times
// exclude the entire flush latency. This is safe with a single totally
// ordered log: any transaction that observed this transaction's (pre-
// committed, not yet durable) writes appends its own commit record at a
// higher LSN, and the flusher acknowledges commits in LSN order, so a
// dependent transaction is never reported durable before its dependency.
// After a crash inside that window, recovery classifies the transaction as
// a loser (no durable commit record) and none of its effects survive.
//
// Without ELR the paper-faithful baseline is preserved: the transaction
// blocks on the flush while still holding every lock, and only then
// releases them.
func (tx *Tx) preCommit() (<-chan error, error) {
	if !tx.logged {
		// Read-only: nothing to make durable.
		tx.owner.ReleaseAll()
		tx.undo = nil
		return nil, nil
	}
	if tx.e.nShards > 1 {
		return tx.preCommitSharded()
	}
	if err := tx.logAppend(0, wal.Record{Type: wal.RecCommit}); err != nil {
		tx.abort()
		return nil, err
	}
	if tx.e.cfg.EarlyLockRelease {
		ack := tx.e.log.FlushAsync(tx.lastLSN)
		tx.owner.ReleaseAllEarly()
		tx.undo = nil
		return ack, nil
	}
	flushStart := time.Now()
	if err := tx.e.log.Flush(tx.lastLSN); err != nil {
		// The failed flush still spent wall time in LogFlush — attribute it
		// before bailing, or the category under-reports exactly when the
		// log wedges (found by the proftimer analyzer).
		tx.prof.Add(profiler.LogFlush, time.Since(flushStart))
		tx.abort()
		return nil, err
	}
	tx.prof.Add(profiler.LogFlush, time.Since(flushStart))
	tx.owner.ReleaseAll()
	tx.undo = nil
	return nil, nil
}

// preCommitSharded is the multi-log commit rendezvous. One commit record is
// appended to every participant shard — the shards the transaction wrote
// (began), plus under ELR the shards of rows it read — each carrying the
// full participant bitmask, so recovery treats the transaction as committed
// only when every participant's commit record survived the crash (see
// recovery.GlobalWinners). A single-participant transaction's commit record
// carries no mask and is byte-identical to the single-log format.
//
// Early Lock Release stays confined to single-participant transactions: for
// them the one log's LSN-ordered acks give the usual guarantee (a dependent
// that read exposed data commits at a higher LSN on the same shard, so it
// is never acknowledged first). A transaction that touched several shards
// instead holds its locks across the rendezvous — its per-shard commit
// records are forced in parallel (one FlushAsync subscription per shard,
// then wait for all), but nothing can observe its writes until every record
// is durable, so no cross-log ordering between dependents can arise.
func (tx *Tx) preCommitSharded() (<-chan error, error) {
	participants := tx.began | tx.readMask
	mask := wal.EncodeShardMask(participants)
	if participants&(participants-1) != 0 {
		tx.e.crossShardCommits.Add(1)
	}
	for s := 0; s < tx.e.nShards; s++ {
		if participants&(1<<uint(s)) == 0 {
			continue
		}
		lsn, err := tx.appendTimed(tx.e.logs[s], wal.Record{XID: tx.xid, Type: wal.RecCommit, After: mask}, profiler.LogWork)
		if err != nil {
			tx.abort()
			return nil, err
		}
		tx.shardLast[s] = lsn
	}
	if tx.e.cfg.EarlyLockRelease && participants&(participants-1) == 0 {
		s := bits.TrailingZeros64(participants)
		ack := tx.e.logs[s].FlushAsync(tx.shardLast[s])
		tx.owner.ReleaseAllEarly()
		tx.undo = nil
		return ack, nil
	}
	// Cross-shard (or ELR off): subscribe every participant first so the
	// shard flushers overlap, then wait for all of them with locks held.
	acks := make([]<-chan error, 0, bits.OnesCount64(participants))
	for s := 0; s < tx.e.nShards; s++ {
		if participants&(1<<uint(s)) == 0 {
			continue
		}
		acks = append(acks, tx.e.logs[s].FlushAsync(tx.shardLast[s]))
	}
	flushStart := time.Now()
	var err error
	for _, ack := range acks {
		if aerr := <-ack; aerr != nil && err == nil {
			err = aerr
		}
	}
	tx.prof.Add(profiler.LogFlush, time.Since(flushStart))
	if err != nil {
		tx.abort()
		return nil, err
	}
	tx.owner.ReleaseAll()
	tx.undo = nil
	return nil, nil
}

// abort rolls back every modification (in reverse order) and releases locks.
//
// Rollback is compensation-logged, ARIES-style: each undo action is applied
// in memory and then logged as a redo-only CLR whose UndoNext points at the
// transaction's next still-to-be-undone record, so a restart that finds a
// partial CLR chain resumes the rollback where it stopped instead of
// re-undoing compensated work. Once the chain is complete an abort record is
// appended; a durable abort record marks the rollback as fully logged.
//
// Lock release mirrors preCommit, governed by its own knob
// (Config.EarlyLockReleaseAborts) so the abort-elr ablation can isolate the
// abort-side policy from commit-side ELR. Under ELR-for-aborts the locks are
// released (with SLI inheritance) as soon as the abort record is appended —
// before any flush — which is safe for the same log-ordering reason as
// commit-side ELR: the undo is fully applied before release, so any
// transaction that observed the restored values logs at a higher LSN than
// the abort record; if that dependent's commit becomes durable, the entire
// CLR chain and abort record below it are durable too, and if the tail is
// lost both sides roll back together. Without it the transaction holds its
// locks until the abort record is durable — the strict baseline whose flush
// wait the high-abort ablation measures.
func (tx *Tx) abort() {
	logOK := tx.logged
	for i := len(tx.undo) - 1; i >= 0; i-- {
		ent := tx.undo[i]
		// Failures are counted by applyUndo; rollback continues regardless,
		// since locks are still held and memory must stay as consistent as
		// possible.
		//slint:ignore errwedge failures are counted in UndoFailures by applyUndo; rollback must continue under held locks
		_ = tx.applyUndo(ent)
		if logOK {
			if _, err := tx.logCLR(ent, i); err != nil {
				// The log is wedged or crashed: keep applying the in-memory
				// undo (locks are still held, memory must stay consistent)
				// but stop logging — recovery will finish the rollback from
				// the durable prefix.
				logOK = false
			}
		}
	}
	if logOK && tx.e.nShards > 1 {
		tx.finishAbortSharded()
		return
	}
	if logOK {
		lsn, err := tx.appendTimed(tx.e.log, wal.Record{XID: tx.xid, Type: wal.RecAbort}, profiler.AbortLogWork)
		if err == nil {
			tx.lastLSN = lsn
			if tx.e.cfg.EarlyLockReleaseAborts {
				// ELR for aborts: the rollback is applied and fully logged;
				// release now and let the abort record reach disk with the
				// next group commit. The subscription's ack is discarded —
				// nothing waits on an abort's durability — but it must still
				// be registered: the flusher only wakes for subscriptions (or
				// a full buffer), so without it an abort on an otherwise idle
				// engine would sit in the volatile buffer indefinitely.
				//slint:ignore errwedge nothing waits on an abort's durability; the subscription only forces a flusher wakeup
				_ = tx.e.log.FlushAsync(tx.lastLSN)
				tx.e.elrAborts.Add(1)
				tx.owner.ReleaseAllEarly()
				tx.undo = nil
				return
			}
			flushStart := time.Now()
			//slint:ignore errwedge abort is already the failure path; a wedged log here surfaces on the next append
			_ = tx.e.log.Flush(tx.lastLSN)
			tx.prof.Add(profiler.LogFlush, time.Since(flushStart))
		}
	}
	tx.owner.ReleaseAll()
	tx.undo = nil
}

// finishAbortSharded closes a multi-log rollback: the CLR chain is already
// applied and logged (per shard, by logCLR), so one abort record goes to
// every shard holding this transaction's begin record — recovery marks the
// rollback complete on a shard only when that shard's abort record is
// durable, and an incomplete shard resumes from its own CLR chain. Lock
// release mirrors the single-log abort path: under ELR-for-aborts the locks
// drop at append (the restored values are deterministic, so recovery
// reproduces them whether or not the abort records survive); otherwise the
// abort records on all shards are forced — in parallel — first.
func (tx *Tx) finishAbortSharded() {
	appended := uint64(0)
	ok := true
	for s := 0; s < tx.e.nShards; s++ {
		if tx.began&(1<<uint(s)) == 0 {
			continue
		}
		lsn, err := tx.appendTimed(tx.e.logs[s], wal.Record{XID: tx.xid, Type: wal.RecAbort}, profiler.AbortLogWork)
		if err != nil {
			// The log is wedged: stop logging; recovery finishes the
			// rollback from each shard's durable prefix.
			ok = false
			break
		}
		tx.shardLast[s] = lsn
		appended |= 1 << uint(s)
	}
	if ok {
		if tx.e.cfg.EarlyLockReleaseAborts {
			for s := 0; s < tx.e.nShards; s++ {
				if appended&(1<<uint(s)) == 0 {
					continue
				}
				// As in the single-log path: nothing waits on an abort's
				// durability, but the subscription must be registered so each
				// shard's flusher wakes for it.
				//slint:ignore errwedge nothing waits on an abort's durability; the subscription only forces a flusher wakeup
				_ = tx.e.logs[s].FlushAsync(tx.shardLast[s])
			}
			tx.e.elrAborts.Add(1)
			tx.owner.ReleaseAllEarly()
			tx.undo = nil
			return
		}
		acks := make([]<-chan error, 0, bits.OnesCount64(appended))
		for s := 0; s < tx.e.nShards; s++ {
			if appended&(1<<uint(s)) == 0 {
				continue
			}
			acks = append(acks, tx.e.logs[s].FlushAsync(tx.shardLast[s]))
		}
		flushStart := time.Now()
		for _, ack := range acks {
			// Abort is already the failure path; a wedged shard surfaces on
			// the next append.
			<-ack
		}
		tx.prof.Add(profiler.LogFlush, time.Since(flushStart))
	}
	tx.owner.ReleaseAll()
	tx.undo = nil
}

// applyUndo applies one registered undo action in memory, attributing its
// time to the UndoWork profiler category and counting failures (which mean
// the in-memory state may be corrupt — torture tests fail loudly on them).
func (tx *Tx) applyUndo(ent undoEntry) error {
	var undoStart time.Time
	if tx.prof != nil {
		undoStart = time.Now()
	}
	err := ent.apply(tx)
	if err != nil {
		tx.e.undoFailures.Add(1)
	}
	if tx.prof != nil {
		tx.prof.Add(profiler.UndoWork, time.Since(undoStart))
	}
	return err
}

// logCLR appends the compensation record for undo entry i of tx.undo, to
// the same log shard the original record went to. Its UndoNext points at
// the next-older registered entry's LSN on that shard (0 when this
// compensation closes the shard's chain): CLR chains are per shard, since
// an LSN is meaningless on any other shard's log. On single-shard engines
// every entry has shard 0, which reduces to the classic single chain.
func (tx *Tx) logCLR(ent undoEntry, i int) (wal.LSN, error) {
	clr := ent.clr
	clr.Type = wal.RecCLR
	clr.XID = tx.xid
	for j := i - 1; j >= 0; j-- {
		if tx.undo[j].shard == ent.shard {
			clr.UndoNext = tx.undo[j].lsn
			break
		}
	}
	lsn, err := tx.appendTimed(tx.e.logs[ent.shard], clr, profiler.AbortLogWork)
	if err != nil {
		return 0, err
	}
	if tx.e.nShards == 1 {
		tx.lastLSN = lsn
	} else {
		tx.shardLast[ent.shard] = lsn
	}
	return lsn, nil
}

// Savepoint marks the transaction's current rollback position. A later
// RollbackTo(sp) undoes every modification made after the mark while keeping
// the transaction (and all its locks) alive, so it can continue and commit.
type Savepoint struct {
	n   int    // length of tx.undo at the time of the mark
	seq uint64 // birth stamp of the entry just below the mark (0 at n == 0)
}

// Savepoint returns a savepoint at the transaction's current position.
func (tx *Tx) Savepoint() Savepoint {
	sp := Savepoint{n: len(tx.undo)}
	if sp.n > 0 {
		sp.seq = tx.undo[sp.n-1].seq
	}
	return sp
}

// ErrBadSavepoint is returned by RollbackTo when the savepoint does not
// belong to this transaction's current undo chain — it was taken above work
// that a previous RollbackTo already rolled back, even if later writes have
// since regrown the chain past its position (the birth stamp of the entry
// below the mark distinguishes the two). Savepoints below the rolled-back
// span stay valid, so nested savepoint patterns work.
var ErrBadSavepoint = errors.New("core: invalid savepoint")

// RollbackTo rolls the transaction back to sp: every modification registered
// after the savepoint is undone in memory and compensation-logged exactly as
// an abort would — one redo-only CLR per record, newest first, chained
// through UndoNext past the rolled-back span — but the transaction keeps its
// locks and remains open. Work done before the savepoint, and work done
// after RollbackTo returns, commits or aborts with the transaction as usual;
// a crash at any point is handled by recovery, which resumes from the last
// durable CLR and also undoes records logged after it (the post-savepoint
// continuation).
//
// On a wedged or crashed log the in-memory rollback still completes (the
// transaction's locks protect the data, so memory must stay consistent) but
// the error is returned; the caller should abort the transaction.
func (tx *Tx) RollbackTo(sp Savepoint) error {
	if sp.n < 0 || sp.n > len(tx.undo) {
		return ErrBadSavepoint
	}
	if sp.n > 0 && tx.undo[sp.n-1].seq != sp.seq {
		// The stack regrew past sp.n after an earlier RollbackTo truncated
		// below it: positionally plausible, but the mark's span is gone.
		return ErrBadSavepoint
	}
	var retErr, logErr error
	for i := len(tx.undo) - 1; i >= sp.n; i-- {
		ent := tx.undo[i]
		// An in-memory undo failure is counted (UndoFailures) and reported,
		// but — exactly like abort() — it must NOT stop the CLR logging:
		// the remaining entries' compensations still have to reach the log,
		// or a later durable abort record would mark the rollback complete
		// with uncompensated records in it. Only a log failure stops
		// appending (the log is wedged; recovery finishes the rollback from
		// the durable prefix).
		if err := tx.applyUndo(ent); err != nil && retErr == nil {
			retErr = err
		}
		if logErr == nil {
			if _, err := tx.logCLR(ent, i); err != nil {
				logErr = err
				if retErr == nil {
					retErr = err
				}
			}
		}
		// The entry is undone in memory either way; drop it so a later abort
		// (or RollbackTo) never double-undoes it.
		tx.undo = tx.undo[:i]
	}
	return retErr
}

// lockRecord acquires a record lock (and, implicitly, intention locks on the
// record's page, table and the database).
func (tx *Tx) lockRecord(tableID uint32, rid heap.RID, mode lockmgr.Mode) error {
	return tx.owner.Lock(lockmgr.RecordLock(databaseID, tableID, rid.Page, rid.Slot), mode)
}

// lockTable acquires an explicit table-level lock.
func (tx *Tx) lockTable(tableID uint32, mode lockmgr.Mode) error {
	return tx.owner.Lock(lockmgr.TableLock(databaseID, tableID), mode)
}

// Insert adds a row to the table, returning ErrDuplicateKey if the primary
// key (or a unique secondary index key) already exists.
func (tx *Tx) Insert(table string, row record.Row) error {
	rt, err := tx.e.tableRuntime(table)
	if err != nil {
		return err
	}
	if err := rt.meta.Schema.Validate(row); err != nil {
		return err
	}
	// Announce write intent on the table before touching pages.
	if err := tx.lockTable(rt.meta.ID, lockmgr.IX); err != nil {
		return err
	}
	pkKey := record.EncodeKey(rt.meta.PrimaryKeyOf(row)...)
	if _, exists := rt.pk.tree.get(pkKey); exists {
		return fmt.Errorf("%w: %s in %s", ErrDuplicateKey, pkKey, table)
	}
	data, err := rt.meta.Schema.Encode(row)
	if err != nil {
		return err
	}
	rid, err := rt.hf.Insert(tx.prof, data)
	if err != nil {
		return err
	}
	if err := tx.lockRecord(rt.meta.ID, rid, lockmgr.X); err != nil {
		// The row is not yet visible through any index; undo the heap insert.
		_ = rt.hf.Delete(tx.prof, rid)
		return err
	}
	if !rt.pk.tree.insert(pkKey, rid) {
		// Lost a race with a concurrent insert of the same key.
		_ = rt.hf.Delete(tx.prof, rid)
		return fmt.Errorf("%w: %s in %s", ErrDuplicateKey, pkKey, table)
	}
	secKeys := make([]string, len(rt.secs))
	for i, sec := range rt.secs {
		secKeys[i] = indexKey(sec.meta.KeyOf(row), rid, sec.meta.Unique)
		if !sec.tree.insert(secKeys[i], rid) {
			// Unique violation: roll back what we did so far.
			for j := 0; j < i; j++ {
				rt.secs[j].tree.remove(secKeys[j])
			}
			rt.pk.tree.remove(pkKey)
			_ = rt.hf.Delete(tx.prof, rid)
			return fmt.Errorf("%w: index %s", ErrDuplicateKey, rt.secs[i].meta.Name)
		}
	}
	undo := func(tx *Tx) error {
		for i, sec := range rt.secs {
			sec.tree.remove(secKeys[i])
		}
		rt.pk.tree.remove(pkKey)
		return rt.hf.Delete(tx.prof, rid)
	}
	shard := tx.e.shardOf(rt.meta.ID, pkKey)
	if err := tx.logAppend(shard, wal.Record{Type: wal.RecInsert, Table: rt.meta.ID, Page: rid.Page, Slot: rid.Slot, After: data}); err != nil {
		// The row is already in the heap and indexes but nothing reached the
		// log: roll the mutation back inline so a wedged log cannot leave a
		// phantom row with no registered undo.
		if uerr := undo(tx); uerr != nil {
			tx.e.undoFailures.Add(1)
		}
		return err
	}
	tx.pushUndo(undoEntry{
		lsn:   tx.lastShardLSN(shard),
		shard: shard,
		apply: undo,
		// Compensating an insert is a delete: Before carries the row image.
		clr: wal.Record{Table: rt.meta.ID, Page: rid.Page, Slot: rid.Slot, Before: data},
	})
	return nil
}

// lastShardLSN returns the LSN of the record just appended to the given
// shard (the single-shard engine keeps it in lastLSN).
func (tx *Tx) lastShardLSN(shard int) wal.LSN {
	if tx.e.nShards == 1 {
		return tx.lastLSN
	}
	return tx.shardLast[shard]
}

// Get returns the row with the given primary key, locking it in share mode.
// The boolean result reports whether the row exists.
func (tx *Tx) Get(table string, key ...record.Value) (record.Row, bool, error) {
	row, _, found, err := tx.get(table, lockmgr.S, key...)
	return row, found, err
}

// GetForUpdate returns the row with the given primary key, locking it
// exclusively so it can subsequently be updated or deleted.
func (tx *Tx) GetForUpdate(table string, key ...record.Value) (record.Row, bool, error) {
	row, _, found, err := tx.get(table, lockmgr.X, key...)
	return row, found, err
}

func (tx *Tx) get(table string, mode lockmgr.Mode, key ...record.Value) (record.Row, heap.RID, bool, error) {
	rt, err := tx.e.tableRuntime(table)
	if err != nil {
		return nil, heap.RID{}, false, err
	}
	pkKey := record.EncodeKey(key...)
	if tx.trackReads() {
		// The shard is part of the commit's participant set whether the row
		// is found or not: observing a row's absence can equally depend on a
		// pre-committed (deleting) transaction on that shard.
		tx.readMask |= 1 << uint(tx.e.shardOf(rt.meta.ID, pkKey))
	}
	rid, ok := rt.pk.tree.get(pkKey)
	if !ok {
		// Lock the table in intention mode so the read of "not there" is at
		// least protected against drops; record-level locking cannot lock a
		// missing key (no next-key locking in this engine).
		if err := tx.lockTable(rt.meta.ID, lockmgr.ParentMode(mode)); err != nil {
			return nil, heap.RID{}, false, err
		}
		return nil, heap.RID{}, false, nil
	}
	if err := tx.lockRecord(rt.meta.ID, rid, mode); err != nil {
		return nil, heap.RID{}, false, err
	}
	data, err := rt.hf.Get(tx.prof, rid)
	if err != nil {
		if errors.Is(err, heap.ErrNotFound) {
			return nil, heap.RID{}, false, nil
		}
		return nil, heap.RID{}, false, err
	}
	row, err := rt.meta.Schema.Decode(data)
	if err != nil {
		return nil, heap.RID{}, false, err
	}
	return row, rid, true, nil
}

// Update looks up the row by primary key, locks it exclusively, applies
// mutate to it and writes the result back. mutate receives a copy it may
// modify in place and return. Primary-key columns must not change.
func (tx *Tx) Update(table string, key []record.Value, mutate func(record.Row) (record.Row, error)) error {
	rt, err := tx.e.tableRuntime(table)
	if err != nil {
		return err
	}
	oldRow, rid, found, err := tx.get(table, lockmgr.X, key...)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	newRow, err := mutate(oldRow.Clone())
	if err != nil {
		return err
	}
	if err := rt.meta.Schema.Validate(newRow); err != nil {
		return err
	}
	oldPK := record.EncodeKey(rt.meta.PrimaryKeyOf(oldRow)...)
	newPK := record.EncodeKey(rt.meta.PrimaryKeyOf(newRow)...)
	if oldPK != newPK {
		return ErrPrimaryKeyChange
	}
	oldData, err := rt.meta.Schema.Encode(oldRow)
	if err != nil {
		return err
	}
	newData, err := rt.meta.Schema.Encode(newRow)
	if err != nil {
		return err
	}
	if err := rt.hf.Update(tx.prof, rid, newData); err != nil {
		return err
	}
	// Maintain secondary indexes whose key changed.
	type secChange struct {
		sec      *index
		old, new string
	}
	var changes []secChange
	for _, sec := range rt.secs {
		oldKey := indexKey(sec.meta.KeyOf(oldRow), rid, sec.meta.Unique)
		newKey := indexKey(sec.meta.KeyOf(newRow), rid, sec.meta.Unique)
		if oldKey == newKey {
			continue
		}
		sec.tree.remove(oldKey)
		sec.tree.insert(newKey, rid)
		changes = append(changes, secChange{sec, oldKey, newKey})
	}
	undo := func(tx *Tx) error {
		for _, ch := range changes {
			ch.sec.tree.remove(ch.new)
			ch.sec.tree.insert(ch.old, rid)
		}
		return rt.hf.Update(tx.prof, rid, oldData)
	}
	shard := tx.e.shardOf(rt.meta.ID, oldPK)
	if err := tx.logAppend(shard, wal.Record{Type: wal.RecUpdate, Table: rt.meta.ID, Page: rid.Page, Slot: rid.Slot, Before: oldData, After: newData}); err != nil {
		// Heap and index already carry the new image; restore the old one
		// inline since no undo was registered for this mutation.
		if uerr := undo(tx); uerr != nil {
			tx.e.undoFailures.Add(1)
		}
		return err
	}
	tx.pushUndo(undoEntry{
		lsn:   tx.lastShardLSN(shard),
		shard: shard,
		apply: undo,
		// Compensating an update restores the before-image: update the row
		// matching Before's primary key back to After.
		clr: wal.Record{Table: rt.meta.ID, Page: rid.Page, Slot: rid.Slot, Before: newData, After: oldData},
	})
	return nil
}

// Delete removes the row with the given primary key. It returns ErrNotFound
// if the row does not exist.
func (tx *Tx) Delete(table string, key ...record.Value) error {
	rt, err := tx.e.tableRuntime(table)
	if err != nil {
		return err
	}
	oldRow, rid, found, err := tx.get(table, lockmgr.X, key...)
	if err != nil {
		return err
	}
	if !found {
		return ErrNotFound
	}
	oldData, err := rt.meta.Schema.Encode(oldRow)
	if err != nil {
		return err
	}
	pkKey := record.EncodeKey(rt.meta.PrimaryKeyOf(oldRow)...)
	for _, sec := range rt.secs {
		sec.tree.remove(indexKey(sec.meta.KeyOf(oldRow), rid, sec.meta.Unique))
	}
	rt.pk.tree.remove(pkKey)
	if err := rt.hf.Delete(tx.prof, rid); err != nil {
		// The heap still holds the row at rid; re-insert the index entries
		// removed above so the indexes stay consistent with the heap.
		rt.pk.tree.insert(pkKey, rid)
		for _, sec := range rt.secs {
			sec.tree.insert(indexKey(sec.meta.KeyOf(oldRow), rid, sec.meta.Unique), rid)
		}
		return err
	}
	// The undo re-inserts the row at a fresh RID and rebuilds every index key
	// from it; the RIDs the original row occupied are not reserved.
	undo := func(tx *Tx) error {
		newRID, uerr := rt.hf.Insert(tx.prof, oldData)
		if uerr != nil {
			return uerr
		}
		rt.pk.tree.insert(pkKey, newRID)
		for _, sec := range rt.secs {
			sec.tree.insert(indexKey(sec.meta.KeyOf(oldRow), newRID, sec.meta.Unique), newRID)
		}
		return nil
	}
	shard := tx.e.shardOf(rt.meta.ID, pkKey)
	if err := tx.logAppend(shard, wal.Record{Type: wal.RecDelete, Table: rt.meta.ID, Page: rid.Page, Slot: rid.Slot, Before: oldData}); err != nil {
		// The row is already gone from heap and indexes; put it back inline
		// since no undo was registered for this mutation.
		if uerr := undo(tx); uerr != nil {
			tx.e.undoFailures.Add(1)
		}
		return err
	}
	tx.pushUndo(undoEntry{
		lsn:   tx.lastShardLSN(shard),
		shard: shard,
		apply: undo,
		// Compensating a delete re-inserts the row: After carries the image.
		clr: wal.Record{Table: rt.meta.ID, Page: rid.Page, Slot: rid.Slot, After: oldData},
	})
	return nil
}

// LookupIndex returns every row whose indexed columns equal key, locking
// each returned row in share mode.
func (tx *Tx) LookupIndex(indexName string, key ...record.Value) ([]record.Row, error) {
	return tx.lookupIndex(indexName, lockmgr.S, key...)
}

// LookupIndexForUpdate is LookupIndex with exclusive row locks.
func (tx *Tx) LookupIndexForUpdate(indexName string, key ...record.Value) ([]record.Row, error) {
	return tx.lookupIndex(indexName, lockmgr.X, key...)
}

func (tx *Tx) lookupIndex(indexName string, mode lockmgr.Mode, key ...record.Value) ([]record.Row, error) {
	tx.e.mu.RLock()
	idx, ok := tx.e.secs[indexName]
	tx.e.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: unknown index %q", indexName)
	}
	tbl, _ := tx.e.cat.TableByID(idx.meta.TableID)
	tx.e.mu.RLock()
	hf := tx.e.heaps[idx.meta.TableID]
	tx.e.mu.RUnlock()

	prefix := record.EncodeKey(key...)
	var rids []heap.RID
	if idx.meta.Unique {
		if rid, ok := idx.tree.get(prefix); ok {
			rids = append(rids, rid)
		}
	} else {
		idx.tree.scanRange(prefix, prefix+"\xff", func(k string, rid heap.RID) bool {
			rids = append(rids, rid)
			return true
		})
	}
	var rows []record.Row
	for _, rid := range rids {
		if err := tx.lockRecord(idx.meta.TableID, rid, mode); err != nil {
			return nil, err
		}
		data, err := hf.Get(tx.prof, rid)
		if err != nil {
			if errors.Is(err, heap.ErrNotFound) {
				continue
			}
			return nil, err
		}
		row, err := tbl.Schema.Decode(data)
		if err != nil {
			return nil, err
		}
		if tx.trackReads() {
			tx.readMask |= 1 << uint(tx.e.shardOf(idx.meta.TableID, record.EncodeKey(tbl.PrimaryKeyOf(row)...)))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ScanRange visits every row whose primary key is in [lo, hi] in key order,
// locking each visited row in share mode. Iteration stops early if fn
// returns false.
func (tx *Tx) ScanRange(table string, lo, hi []record.Value, fn func(record.Row) bool) error {
	return tx.scanRange(table, lockmgr.S, lo, hi, fn)
}

// ScanRangeForUpdate is ScanRange with exclusive row locks, for transactions
// that will modify or delete the rows they visit (SELECT ... FOR UPDATE).
// Locking exclusively up front avoids share-to-exclusive conversion
// deadlocks between concurrent writers.
func (tx *Tx) ScanRangeForUpdate(table string, lo, hi []record.Value, fn func(record.Row) bool) error {
	return tx.scanRange(table, lockmgr.X, lo, hi, fn)
}

func (tx *Tx) scanRange(table string, mode lockmgr.Mode, lo, hi []record.Value, fn func(record.Row) bool) error {
	rt, err := tx.e.tableRuntime(table)
	if err != nil {
		return err
	}
	loKey := record.EncodeKey(lo...)
	hiKey := ""
	if len(hi) > 0 {
		hiKey = record.EncodeKey(hi...) + "\xff"
	}
	type hit struct {
		rid heap.RID
	}
	var hits []hit
	rt.pk.tree.scanRange(loKey, hiKey, func(k string, rid heap.RID) bool {
		hits = append(hits, hit{rid})
		return true
	})
	for _, hh := range hits {
		if err := tx.lockRecord(rt.meta.ID, hh.rid, mode); err != nil {
			return err
		}
		data, err := rt.hf.Get(tx.prof, hh.rid)
		if err != nil {
			if errors.Is(err, heap.ErrNotFound) {
				continue
			}
			return err
		}
		row, err := rt.meta.Schema.Decode(data)
		if err != nil {
			return err
		}
		if tx.trackReads() {
			tx.readMask |= 1 << uint(tx.e.shardOf(rt.meta.ID, record.EncodeKey(rt.meta.PrimaryKeyOf(row)...)))
		}
		if !fn(row) {
			return nil
		}
	}
	return nil
}

// ScanTable visits every row of the table under a table-level share lock
// (no per-row locks), as a coarse-grained reader would.
func (tx *Tx) ScanTable(table string, fn func(record.Row) bool) error {
	rt, err := tx.e.tableRuntime(table)
	if err != nil {
		return err
	}
	if err := tx.lockTable(rt.meta.ID, lockmgr.S); err != nil {
		return err
	}
	if tx.trackReads() {
		// A table scan observes every row (and every absence) in the table,
		// whose rows hash across all shards: the commit must rendezvous with
		// all of them.
		tx.readMask |= (uint64(1) << uint(tx.e.nShards)) - 1
	}
	err = rt.hf.Scan(tx.prof, func(rid heap.RID, rec []byte) bool {
		row, derr := rt.meta.Schema.Decode(rec)
		if derr != nil {
			err = derr
			return false
		}
		return fn(row)
	})
	return err
}
