package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"slidb/internal/record"
	"slidb/internal/wal"
)

// shardTestSetup creates two account tables and seeds rows rows in each at
// balance 1000; with several rows per table the rows hash across all log
// shards.
func shardTestSetup(t *testing.T, e *Engine, rows int) {
	t.Helper()
	schema := record.MustSchema(
		record.Column{Name: "id", Type: record.TypeInt},
		record.Column{Name: "balance", Type: record.TypeInt},
	)
	for _, tbl := range []string{"checking", "savings"} {
		if err := e.CreateTable(tbl, schema, []string{"id"}); err != nil {
			t.Fatalf("create %s: %v", tbl, err)
		}
	}
	if err := e.Exec(func(tx *Tx) error {
		for i := 0; i < rows; i++ {
			for _, tbl := range []string{"checking", "savings"} {
				if err := tx.Insert(tbl, record.Row{record.Int(int64(i)), record.Int(1000)}); err != nil {
					return err
				}
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("seed: %v", err)
	}
}

// addBalance mutates the balance column of one row.
func addBalance(amount int64) func(record.Row) (record.Row, error) {
	return func(r record.Row) (record.Row, error) {
		r[1] = record.Int(r[1].AsInt() + amount)
		return r, nil
	}
}

// transfer moves amount between two accounts — a transaction whose two rows
// usually live on different log shards, exercising the cross-shard commit
// rendezvous.
func transfer(e *Engine, from, to int, amount int64) error {
	return e.Exec(func(tx *Tx) error {
		if err := tx.Update("checking", []record.Value{record.Int(int64(from))}, addBalance(-amount)); err != nil {
			return err
		}
		return tx.Update("savings", []record.Value{record.Int(int64(to))}, addBalance(amount))
	})
}

// totalBalance sums both tables; transfers preserve it.
func totalBalance(t *testing.T, e *Engine) int64 {
	t.Helper()
	var total int64
	if err := e.Exec(func(tx *Tx) error {
		for _, tbl := range []string{"checking", "savings"} {
			if err := tx.ScanTable(tbl, func(r record.Row) bool {
				total += r[1].AsInt()
				return true
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return total
}

// TestShardedVolatileEngine runs cross-shard transactions on an in-memory
// multi-log engine under each lock-release policy.
func TestShardedVolatileEngine(t *testing.T) {
	for _, elr := range []bool{false, true} {
		t.Run(fmt.Sprintf("elr=%v", elr), func(t *testing.T) {
			e := Open(Config{LogShards: 4, Agents: 4, EarlyLockRelease: elr, AsyncCommit: elr})
			defer e.Close()
			if got := e.LogShards(); got != 4 {
				t.Fatalf("LogShards = %d, want 4", got)
			}
			const rows = 32
			shardTestSetup(t, e, rows)
			for i := 0; i < 200; i++ {
				if err := transfer(e, i%rows, (i+7)%rows, 5); err != nil {
					t.Fatalf("transfer %d: %v", i, err)
				}
			}
			if total := totalBalance(t, e); total != 2*rows*1000 {
				t.Fatalf("balance not conserved: %d, want %d", total, 2*rows*1000)
			}
		})
	}
}

// TestShardedDurableReopen commits cross-shard transactions on a 3-shard
// durable engine, closes it cleanly, and reopens with LogShards=0
// (auto-detect) — every committed transfer must survive, and the directory
// must contain the shard-NN layout.
func TestShardedDurableReopen(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenAt(dir, Config{LogShards: 3})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const rows = 16
	shardTestSetup(t, e, rows)
	for i := 0; i < 50; i++ {
		if err := transfer(e, i%rows, (i+3)%rows, 10); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	want := totalBalance(t, e)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for s := 0; s < 3; s++ {
		if _, err := os.Stat(filepath.Join(dir, wal.ShardDirName(s))); err != nil {
			t.Fatalf("missing shard directory %d: %v", s, err)
		}
	}

	re, err := OpenAt(dir, Config{}) // LogShards=0 auto-detects 3
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.LogShards(); got != 3 {
		t.Fatalf("auto-detected LogShards = %d, want 3", got)
	}
	if got := totalBalance(t, re); got != want {
		t.Fatalf("balance after reopen = %d, want %d", got, want)
	}
}

// TestShardedCrashRecovery drives concurrent cross-shard transfers under the
// full ELR pipeline, crashes without draining the logs, and reopens: the
// invariant (total balance conserved) must hold — recovery may roll back
// transactions caught in flight, but never keep one shard's half of a
// transfer without the other.
func TestShardedCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenAt(dir, Config{
		LogShards:              3,
		Agents:                 4,
		EarlyLockRelease:       true,
		EarlyLockReleaseAborts: true,
		AsyncCommit:            true,
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const rows = 16
	shardTestSetup(t, e, rows)

	acks := make([]<-chan error, 0, 120)
	for i := 0; i < 120; i++ {
		from, to := i%rows, (i+5)%rows
		acks = append(acks, e.ExecAsync(func(tx *Tx) error {
			if err := tx.Update("checking", []record.Value{record.Int(int64(from))}, addBalance(-1)); err != nil {
				return err
			}
			return tx.Update("savings", []record.Value{record.Int(int64(to))}, addBalance(1))
		}))
	}
	// Crash mid-stream: some acks resolve durable, the rest fail.
	e.SimulateCrash()
	acked := 0
	for _, ack := range acks {
		if err := <-ack; err == nil {
			acked++
		}
	}

	re, err := OpenAt(dir, Config{LogShards: 3, Agents: 1})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	if re.UndoFailures() != 0 {
		t.Fatalf("undo failures during recovery: %d", re.UndoFailures())
	}
	if got, want := totalBalance(t, re), int64(2*rows*1000); got != want {
		t.Fatalf("balance after crash recovery = %d, want %d (acked %d)", got, want, acked)
	}
}

// TestShardedFormatMismatch checks the loud-failure paths: a flat (pre-shard)
// directory refuses LogShards>1, and a sharded directory refuses a mismatched
// shard count.
func TestShardedFormatMismatch(t *testing.T) {
	flat := t.TempDir()
	e, err := OpenAt(flat, Config{})
	if err != nil {
		t.Fatalf("open flat: %v", err)
	}
	shardTestSetup(t, e, 4)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := OpenAt(flat, Config{LogShards: 4}); !errors.Is(err, wal.ErrLogFormat) {
		t.Fatalf("flat dir with LogShards=4: err = %v, want ErrLogFormat", err)
	}

	sharded := t.TempDir()
	e2, err := OpenAt(sharded, Config{LogShards: 2})
	if err != nil {
		t.Fatalf("open sharded: %v", err)
	}
	shardTestSetup(t, e2, 4)
	if err := e2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := OpenAt(sharded, Config{LogShards: 1}); !errors.Is(err, wal.ErrLogFormat) {
		t.Fatalf("sharded dir with LogShards=1: err = %v, want ErrLogFormat", err)
	}
	if _, err := OpenAt(sharded, Config{LogShards: 3}); !errors.Is(err, wal.ErrLogFormat) {
		t.Fatalf("sharded dir with LogShards=3: err = %v, want ErrLogFormat", err)
	}
}

// TestShardedCheckpoint checkpoints a multi-shard engine mid-stream and
// reopens from the vectorized (SLDBCKP3) checkpoint plus each shard's tail.
func TestShardedCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e, err := OpenAt(dir, Config{LogShards: 2})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const rows = 8
	shardTestSetup(t, e, rows)
	for i := 0; i < 20; i++ {
		if err := transfer(e, i%rows, (i+1)%rows, 2); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	// Post-checkpoint tail on top of the restored image.
	for i := 0; i < 10; i++ {
		if err := transfer(e, (i+2)%rows, i%rows, 3); err != nil {
			t.Fatalf("post-ckpt transfer %d: %v", i, err)
		}
	}
	want := totalBalance(t, e)
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, err := OpenAt(dir, Config{LogShards: 2})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.RecoveryStats().CheckpointLSN == 0 {
		t.Fatalf("reopen did not start from the checkpoint")
	}
	if got := totalBalance(t, re); got != want {
		t.Fatalf("balance after checkpointed reopen = %d, want %d", got, want)
	}
}
