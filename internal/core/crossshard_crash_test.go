package core

import (
	"io"
	"math/bits"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slidb/internal/record"
	"slidb/internal/wal"
)

// copyTree duplicates a data directory so each crash scenario starts from
// the same pristine image.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

// truncateShardAt cuts shard's virtual log at offset c: the record starting
// at c and everything after it vanish, exactly as if the crash hit after
// the previous byte became durable. Because LSNs are byte offsets, the cut
// is pure file arithmetic: a segment named wal-<first> keeps
// segHeaderSize + (c - first) bytes; segments at or past c are deleted.
func truncateShardAt(t *testing.T, dir string, shard int, c wal.LSN) {
	t.Helper()
	shardDir := filepath.Join(dir, wal.ShardDirName(shard))
	entries, err := os.ReadDir(shardDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".seg") {
			continue
		}
		hexPart := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".seg")
		first := wal.LSN(0)
		if _, err := fmtSscanHex(hexPart, &first); err != nil {
			t.Fatalf("parse segment name %s: %v", name, err)
		}
		path := filepath.Join(shardDir, name)
		if first >= c {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
			continue
		}
		keep := int64(16) + c.Distance(first) // segment header + payload prefix
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() > keep {
			if err := os.Truncate(path, keep); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// fmtSscanHex parses a fixed-width hex segment-name suffix.
func fmtSscanHex(s string, out *wal.LSN) (int, error) {
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		default:
			return 0, os.ErrInvalid
		}
	}
	*out = wal.LSN(v)
	return len(s), nil
}

// shardCommit locates one cross-shard commit record: the shard it lives on,
// its offset there, and the full participant mask it carries.
type shardCommit struct {
	shard int
	lsn   wal.LSN
	mask  uint64
}

// TestCrossShardCommitAtomicity is the tentpole's torture test: for every
// cross-shard commit record on every participant shard, simulate a crash in
// which that one record (and that shard's subsequent log) never became
// durable while the other participants' commit records did. Recovery must
// treat each such transaction as all-or-nothing — the conserved-balance
// invariant breaks by exactly the transfer amount if either half of a
// transfer survives alone.
func TestCrossShardCommitAtomicity(t *testing.T) {
	const nShards = 3
	dir := t.TempDir()
	e, err := OpenAt(dir, Config{LogShards: nShards})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	const rows = 12
	shardTestSetup(t, e, rows)
	for i := 0; i < 10; i++ {
		if err := transfer(e, i%rows, (i+4)%rows, int64(i+1)); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	const conserved = int64(2 * rows * 1000)

	// Collect every cross-shard commit record by replaying each shard's
	// segments offline.
	var commits []shardCommit
	for s := 0; s < nShards; s++ {
		segs, err := wal.OpenSegments(filepath.Join(dir, wal.ShardDirName(s)), wal.DefaultSegmentBytes, false)
		if err != nil {
			t.Fatalf("open shard %d segments: %v", s, err)
		}
		err = segs.Iterate(0, func(rec wal.Record) error {
			if rec.Type != wal.RecCommit {
				return nil
			}
			mask, err := wal.DecodeShardMask(rec.After)
			if err != nil {
				return err
			}
			if bits.OnesCount64(mask) > 1 {
				commits = append(commits, shardCommit{shard: s, lsn: rec.LSN, mask: mask})
			}
			return nil
		})
		if cerr := segs.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatalf("scan shard %d: %v", s, err)
		}
	}
	if len(commits) == 0 {
		t.Fatal("no cross-shard commit records found; transfers all routed to one shard")
	}

	for _, c := range commits {
		scenario := t.TempDir()
		copyTree(t, dir, scenario)
		truncateShardAt(t, scenario, c.shard, c.lsn)
		re, err := OpenAt(scenario, Config{LogShards: nShards})
		if err != nil {
			t.Fatalf("shard %d cut at %d: reopen: %v", c.shard, c.lsn, err)
		}
		if re.UndoFailures() != 0 {
			t.Errorf("shard %d cut at %d: %d undo failures", c.shard, c.lsn, re.UndoFailures())
		}
		// All-or-nothing, per transaction. A torn transfer leaves the full
		// row set with a non-conserved total; a torn seed insert leaves a
		// partial row set. The two consistent outcomes are "every row, total
		// conserved" (seed survived) and "no rows at all" (the cut hit the
		// seed's own commit, rolling it — and every later transfer — back).
		got, n := balanceAndRows(t, re)
		switch {
		case n == 2*rows && got == conserved:
		case n == 0 && got == 0:
		default:
			t.Errorf("shard %d cut at %d (mask %b): %d rows, balance %d — a transaction survived on one shard only",
				c.shard, c.lsn, c.mask, n, got)
		}
		re.Close()
	}
}

// balanceAndRows sums both tables and counts their rows.
func balanceAndRows(t *testing.T, e *Engine) (int64, int) {
	t.Helper()
	var total int64
	var n int
	if err := e.Exec(func(tx *Tx) error {
		for _, tbl := range []string{"checking", "savings"} {
			if err := tx.ScanTable(tbl, func(r record.Row) bool {
				total += r[1].AsInt()
				n++
				return true
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return total, n
}
