package core

import (
	"net/http"
	"time"

	"slidb/internal/obs"
	"slidb/internal/profiler"
)

// LogErr returns the error that wedged the write-ahead log — the first
// durable-sink failure after which no further append can become durable —
// or nil while every log shard is healthy. It distinguishes "commits are
// slow" (DurableLag growing, LogErr nil) from "the log is dead" (LogErr
// non-nil) without callers having to infer the difference from Exec
// failures; slidbd's /readyz flips unready on it.
func (e *Engine) LogErr() error {
	for _, l := range e.logs {
		if err := l.Err(); err != nil {
			return err
		}
	}
	return nil
}

// LogTail returns the log tail's self-tuning snapshot summed across every
// log shard: the group-commit window controllers' state from the WAL plus
// the segment sinks' physical-write counters (zero for in-memory engines).
// CurWindowSeconds, the only non-cumulative field, is the mean of the
// shards' live windows. It feeds the slidb_group_commit_window_seconds /
// slidb_log_* metric families and the benchmark harness's writes-per-cycle
// efficiency stat; LogTailAt exposes one shard's view.
func (e *Engine) LogTail() obs.LogTailStats {
	var lt obs.LogTailStats
	for s := range e.logs {
		one := e.LogTailAt(s)
		lt.FlushCycles += one.FlushCycles
		lt.WindowedCycles += one.WindowedCycles
		lt.WindowWaitSeconds += one.WindowWaitSeconds
		lt.CurWindowSeconds += one.CurWindowSeconds
		lt.FenceWaitSeconds += one.FenceWaitSeconds
		lt.ReserveWaitSeconds += one.ReserveWaitSeconds
		lt.BufferFullWaitSeconds += one.BufferFullWaitSeconds
		lt.BufferBytes += one.BufferBytes
		lt.BufferGrows += one.BufferGrows
		lt.SinkWrites += one.SinkWrites
		lt.Rotations += one.Rotations
		lt.Preallocs += one.Preallocs
		lt.PreallocFallbacks += one.PreallocFallbacks
	}
	lt.CurWindowSeconds /= float64(len(e.logs))
	return lt
}

// LogTailAt returns one log shard's tail snapshot (shard 0 is the only
// shard on unsharded engines). The per-shard view is what the log-shards
// benchmark ablation records: reserve-wait and writes-per-cycle per shard
// show whether the routing spread the append and fsync load.
func (e *Engine) LogTailAt(s int) obs.LogTailStats {
	ts := e.logs[s].TailStats()
	lt := obs.LogTailStats{
		FlushCycles:           ts.FlushCycles,
		WindowedCycles:        ts.WindowedCycles,
		WindowWaitSeconds:     ts.WindowTotal.Seconds(),
		CurWindowSeconds:      ts.CurWindow.Seconds(),
		FenceWaitSeconds:      ts.FenceWait.Seconds(),
		ReserveWaitSeconds:    ts.ReserveWait.Seconds(),
		BufferFullWaitSeconds: ts.BufferFullWait.Seconds(),
		BufferBytes:           ts.BufferBytes,
		BufferGrows:           ts.BufferGrows,
	}
	if len(e.segs) > 0 {
		ss := e.segs[s].Stats()
		lt.SinkWrites = ss.Writes
		lt.Rotations = ss.Rotations
		lt.Preallocs = ss.Preallocs
		lt.PreallocFallbacks = ss.PreallocFallbacks
	}
	return lt
}

// ProfileLifetime returns the engine-lifetime per-category profiler
// breakdown: monotonic across Profiler.Reset calls (the benchmark harness
// resets the interval view around each measurement), which is what lets the
// metrics exporter publish the categories as Prometheus counters.
func (e *Engine) ProfileLifetime() profiler.Breakdown { return e.prof.Lifetime() }

// TxCompletion describes one finished transaction attempt, delivered to the
// observability hook installed by Observe. Attempts are reported when their
// outcome is decided — for a commit under Early Lock Release that is the
// commit-record append, so Duration excludes any asynchronous durable-ack
// wait; deadlock-victim retries report one completion per attempt.
type TxCompletion struct {
	// XID is the attempt's transaction identifier.
	XID uint64
	// Start is when the attempt began executing.
	Start time.Time
	// Duration is Start to outcome decided.
	Duration time.Duration
	// Committed is true when the attempt (pre-)committed, false when it
	// aborted.
	Committed bool
	// Breakdown is the attempt's per-category profiler attribution
	// (zero when the engine runs with Config.Profile off).
	Breakdown profiler.Breakdown
}

// Observe returns the engine's observability surface — the metrics registry
// with the engine collector registered, the transaction-duration histogram
// and the slow-transaction tracer — creating it with default options on
// first call. Creating the observer installs the per-transaction completion
// hook; until then the commit path pays a single nil atomic-pointer load per
// transaction and nothing else.
func (e *Engine) Observe() *obs.Observer { return e.ObserveWith(obs.ObserverOptions{}) }

// ObserveWith is Observe with explicit options. The first call wins: the
// observer is created once per engine and later calls (with any options)
// return the existing one.
func (e *Engine) ObserveWith(o obs.ObserverOptions) *obs.Observer {
	e.obsOnce.Do(func() {
		e.obs = obs.NewObserver(e, o)
		hook := func(c TxCompletion) {
			e.obs.ObserveTx(c.XID, c.Start, c.Duration, c.Committed, c.Breakdown)
		}
		e.txHook.Store(&hook)
	})
	return e.obs
}

// ObsHandler returns the engine's observability HTTP handler, serving
// /metrics (Prometheus text exposition format) and /debug/slowtx (JSON),
// creating the observer on first call. Health endpoints are a process
// property, not an engine one — cmd/slidbd mounts this handler next to its
// /healthz and /readyz.
func (e *Engine) ObsHandler() http.Handler { return e.Observe() }
