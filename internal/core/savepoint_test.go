package core

import (
	"errors"
	"testing"

	"slidb/internal/record"
	"slidb/internal/wal"
)

func savepointEngine(t *testing.T) *Engine {
	t.Helper()
	e := Open(Config{})
	t.Cleanup(func() { e.Close() })
	schema := record.MustSchema(
		record.Column{Name: "id", Type: record.TypeInt},
		record.Column{Name: "v", Type: record.TypeInt},
	)
	if err := e.CreateTable("t", schema, []string{"id"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Tx) error {
		return tx.Insert("t", record.Row{record.Int(1), record.Int(10)})
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

func readAll(t *testing.T, e *Engine) map[int64]int64 {
	t.Helper()
	rows := make(map[int64]int64)
	if err := e.Exec(func(tx *Tx) error {
		return tx.ScanTable("t", func(r record.Row) bool {
			rows[r[0].AsInt()] = r[1].AsInt()
			return true
		})
	}); err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestSavepointRollbackThenCommit is the core savepoint contract: work after
// the savepoint is rolled back (heap, indexes, and compensation-logged),
// work before it and after the rollback commits normally.
func TestSavepointRollbackThenCommit(t *testing.T) {
	e := savepointEngine(t)
	if err := e.Exec(func(tx *Tx) error {
		// Pre-savepoint work: survives.
		if err := tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
			r[1] = record.Int(11)
			return r, nil
		}); err != nil {
			return err
		}
		sp := tx.Savepoint()
		// Post-savepoint work: rolled back.
		if err := tx.Insert("t", record.Row{record.Int(2), record.Int(20)}); err != nil {
			return err
		}
		if err := tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
			r[1] = record.Int(99)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.RollbackTo(sp); err != nil {
			return err
		}
		// Mid-transaction reads see the restored state.
		row, ok, err := tx.Get("t", record.Int(1))
		if err != nil || !ok || row[1].AsInt() != 11 {
			t.Errorf("post-rollback read = %v/%v/%v, want v=11", row, ok, err)
		}
		if _, ok, _ := tx.Get("t", record.Int(2)); ok {
			t.Error("post-rollback read still sees rolled-back insert")
		}
		// Continuation after the partial rollback: commits with the tx.
		return tx.Insert("t", record.Row{record.Int(3), record.Int(30)})
	}); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, e); len(got) != 2 || got[1] != 11 || got[3] != 30 {
		t.Fatalf("committed state = %v, want {1:11 3:30}", got)
	}
	if got := e.UndoFailures(); got != 0 {
		t.Fatalf("UndoFailures = %d, want 0", got)
	}

	// The log must show the savepoint span compensated: CLRs for the two
	// post-savepoint records (newest first), UndoNext chaining past them to
	// the pre-savepoint update, then the continuation insert, then commit.
	if err := e.log.Flush(e.log.LastLSN()); err != nil {
		t.Fatal(err)
	}
	var xid uint64
	for _, r := range e.log.Records() {
		if r.XID > xid {
			xid = r.XID
		}
	}
	var types []wal.RecType
	var txRecs []wal.Record
	for _, r := range e.log.Records() {
		if r.XID == xid {
			types = append(types, r.Type)
			txRecs = append(txRecs, r)
		}
	}
	want := []wal.RecType{
		wal.RecBegin, wal.RecUpdate, // pre-savepoint
		wal.RecInsert, wal.RecUpdate, // post-savepoint
		wal.RecCLR, wal.RecCLR, // rollback, newest first
		wal.RecInsert, wal.RecCommit, // continuation
	}
	if len(types) != len(want) {
		t.Fatalf("tx logged %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("record %d is %v, want %v (%v)", i, types[i], want[i], types)
		}
	}
	// First CLR compensates the post-savepoint update and points at the
	// post-savepoint insert; the second points past the span at the
	// PRE-savepoint update, keeping the chain intact for a full abort.
	if txRecs[4].UndoNext != txRecs[2].LSN {
		t.Errorf("CLR 1 UndoNext = %d, want %d", txRecs[4].UndoNext, txRecs[2].LSN)
	}
	if txRecs[5].UndoNext != txRecs[1].LSN {
		t.Errorf("CLR 2 UndoNext = %d, want pre-savepoint update %d", txRecs[5].UndoNext, txRecs[1].LSN)
	}
}

// TestSavepointThenAbort pins the interaction of a partial rollback with a
// later full abort: the abort must undo the continuation and the
// pre-savepoint work but never the already-compensated span.
func TestSavepointThenAbort(t *testing.T) {
	e := savepointEngine(t)
	boom := errors.New("boom")
	err := e.Exec(func(tx *Tx) error {
		if err := tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
			r[1] = record.Int(11)
			return r, nil
		}); err != nil {
			return err
		}
		sp := tx.Savepoint()
		if err := tx.Insert("t", record.Row{record.Int(2), record.Int(20)}); err != nil {
			return err
		}
		if err := tx.RollbackTo(sp); err != nil {
			return err
		}
		if err := tx.Insert("t", record.Row{record.Int(3), record.Int(30)}); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := readAll(t, e); len(got) != 1 || got[1] != 10 {
		t.Fatalf("aborted state = %v, want {1:10}", got)
	}
	if got := e.UndoFailures(); got != 0 {
		t.Fatalf("UndoFailures = %d, want 0", got)
	}
}

// TestSavepointValidation pins RollbackTo's argument checking: a savepoint
// invalidated by an earlier RollbackTo (its span no longer exists) and a
// no-op savepoint both behave sanely.
func TestSavepointValidation(t *testing.T) {
	e := savepointEngine(t)
	if err := e.Exec(func(tx *Tx) error {
		sp0 := tx.Savepoint()
		if err := tx.RollbackTo(sp0); err != nil {
			t.Errorf("empty-span RollbackTo: %v", err)
		}
		if err := tx.Insert("t", record.Row{record.Int(5), record.Int(50)}); err != nil {
			return err
		}
		spLater := tx.Savepoint()
		if err := tx.RollbackTo(sp0); err != nil {
			t.Errorf("RollbackTo(sp0): %v", err)
		}
		// spLater's position no longer exists.
		if err := tx.RollbackTo(spLater); !errors.Is(err, ErrBadSavepoint) {
			t.Errorf("stale savepoint: err = %v, want ErrBadSavepoint", err)
		}
		// Regrow the undo chain past spLater's position: the savepoint is
		// positionally plausible again but marks a span that was rolled
		// back — the birth-stamp check must still reject it.
		for i := int64(6); i < 9; i++ {
			if err := tx.Insert("t", record.Row{record.Int(i), record.Int(i * 10)}); err != nil {
				return err
			}
		}
		if err := tx.RollbackTo(spLater); !errors.Is(err, ErrBadSavepoint) {
			t.Errorf("stale savepoint after regrow: err = %v, want ErrBadSavepoint", err)
		}
		// A savepoint below every truncation stays valid and rolls back the
		// regrown entries.
		if err := tx.RollbackTo(sp0); err != nil {
			t.Errorf("RollbackTo(sp0) after regrow: %v", err)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, e); len(got) != 1 {
		t.Fatalf("state = %v, want only the seed row", got)
	}
}
