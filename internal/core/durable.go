package core

import (
	"errors"
	"fmt"

	"slidb/internal/catalog"
	"slidb/internal/heap"
	"slidb/internal/record"
	"slidb/internal/recovery"
	"slidb/internal/wal"
)

// ErrNotDurable is returned by durability operations on engines opened
// without a data directory.
var ErrNotDurable = errors.New("core: engine has no data directory (opened with Open, not OpenAt)")

// RecoveryStats describes the restart work OpenAt performed.
type RecoveryStats struct {
	// CheckpointLSN is the LSN of the checkpoint the restart started from
	// (0 when the directory had no checkpoint).
	CheckpointLSN uint64
	// TablesRestored / RowsRestored count the checkpoint image.
	TablesRestored int
	RowsRestored   int
	// LogRecordsScanned is the size of the log tail analyzed.
	LogRecordsScanned int
	// Winners and Losers count the transactions the analysis pass
	// classified by the durability of their commit record.
	Winners int
	Losers  int
	// RollbacksComplete counts losers whose rollback was fully logged
	// before the crash (durable abort record, or a CLR chain ending at
	// UndoNext 0): redo repeats their history verbatim and the undo pass
	// skips them.
	RollbacksComplete int
	// RecordsRedone counts data records replayed by the repeat-history redo
	// pass (winners and losers alike); CLRsRedone counts the compensation
	// records replayed alongside them.
	RecordsRedone int
	CLRsRedone    int
	// RecordsUndone counts loser data records rolled back by the restart
	// undo pass; TxUndone counts the transactions it completed, and
	// RollbacksResumed the subset whose partially-logged rollback was
	// resumed from its last durable CLR's UndoNext instead of restarted.
	RecordsUndone    int
	TxUndone         int
	RollbacksResumed int
	// DDLReplayed counts CREATE TABLE / CREATE INDEX records replayed.
	DDLReplayed int
}

// RecoveryStats returns the restart statistics recorded by OpenAt; the zero
// value for engines created with Open.
func (e *Engine) RecoveryStats() RecoveryStats { return e.recStats }

// DataDir returns the engine's data directory ("" for volatile engines).
func (e *Engine) DataDir() string { return e.cfg.Dir }

// OpenAt opens a disk-backed engine rooted at dir, creating the directory on
// first use and running crash recovery over whatever a previous incarnation
// left behind: the most recent checkpoint is restored, then the durable log
// tail is analyzed (winners vs. losers) and the winners' effects are redone.
// Transactions whose commit record never reached disk — in flight at the
// crash, or aborted — leave no trace in the recovered state.
func OpenAt(dir string, cfg Config) (*Engine, error) {
	if dir == "" {
		return nil, errors.New("core: OpenAt requires a data directory")
	}
	cfg.Dir = dir
	cfg = cfg.withDefaults()

	snap, haveCkpt, err := recovery.ReadCheckpoint(dir)
	if err != nil {
		return nil, err
	}
	segsList, err := wal.OpenShardedSegments(dir, cfg.LogShards, cfg.SegmentBytes, cfg.PreallocateSegments)
	if err != nil {
		return nil, err
	}
	n := len(segsList)
	closeAll := func() {
		for _, sg := range segsList {
			sg.Close()
		}
	}

	// The checkpoint boundary vector holds each shard's durable watermark
	// the snapshot covered — exclusive end offsets, i.e. exactly the frame
	// boundaries replay resumes at. Byte-offset LSNs make both the resume
	// points and the restart of LSN allocation pure boundary arithmetic: no
	// "+1 past the last record" — dense-LSN counting — survives here.
	from := make([]wal.LSN, n)
	if haveCkpt {
		vec, verr := snap.Vector(n)
		if verr != nil {
			closeAll()
			return nil, verr
		}
		copy(from, vec)
	}
	iterFor := func(s int) recovery.Iterator {
		return func(fn func(wal.Record) error) error {
			return segsList[s].Iterate(from[s], fn)
		}
	}
	// Per-shard analysis, merged into the global commit verdict: a
	// transaction is committed only if every shard named in its commit
	// records' participant masks holds a durable commit record.
	per := make([]*recovery.Analysis, n)
	for s := range per {
		if per[s], err = recovery.Analyze(iterFor(s)); err != nil {
			closeAll()
			return nil, err
		}
	}
	committed, err := recovery.GlobalWinners(per)
	if err != nil {
		closeAll()
		return nil, err
	}

	startLSNs := make([]wal.LSN, n)
	for s := range startLSNs {
		startLSNs[s] = segsList[s].End()
		if haveCkpt && from[s] > startLSNs[s] {
			startLSNs[s] = from[s]
		}
	}
	e := newEngine(cfg, segsList, startLSNs)
	if haveCkpt {
		if err := e.restoreSnapshot(snap); err != nil {
			closeAll()
			return nil, err
		}
		e.recStats.CheckpointLSN = uint64(snap.LSN)
		e.recStats.TablesRestored = len(snap.Tables)
		for _, t := range snap.Tables {
			e.recStats.RowsRestored += len(t.Rows)
		}
		if snap.NextXID > e.nextXID.Load() {
			e.nextXID.Store(snap.NextXID)
		}
	}
	// Redo repeats history shard by shard, shard 0 first: DDL always routes
	// to shard 0, so replayed data records never reference missing tables.
	// Rows never span shards (records are routed by primary key), so each
	// shard's sequential replay preserves every row's update order.
	for s := 0; s < n; s++ {
		redo, rerr := recovery.Redo(iterFor(s), per[s], engineApplier{e})
		if rerr != nil {
			closeAll()
			return nil, rerr
		}
		e.recStats.RecordsRedone += redo.Redone
		e.recStats.CLRsRedone += redo.CLRs
		e.recStats.DDLReplayed += redo.DDL
	}
	// The undo pass logs its work into the new incarnation's logs — one CLR
	// per record undone plus an abort record per completed rollback, each on
	// the shard the original record lives on — so the next restart sees
	// these losers as fully rolled back instead of re-undoing them on top of
	// whatever commits in the meantime. A shard rolls a transaction back
	// when it was a loser there, or a demoted winner: its commit record
	// survived on this shard but a participant shard's did not.
	for s := 0; s < n; s++ {
		an := per[s]
		needs := func(xid uint64) bool {
			if _, ok := committed[xid]; ok {
				return false
			}
			if _, rolledBack := an.RolledBack[xid]; rolledBack {
				return false
			}
			if _, lost := an.Losers[xid]; lost {
				return true
			}
			_, won := an.Winners[xid]
			return won
		}
		shardLog := e.logs[s]
		undo, uerr := recovery.UndoWith(iterFor(s), an, engineApplier{e}, func(rec wal.Record) error {
			_, aerr := shardLog.Append(rec)
			return aerr
		}, needs)
		if uerr != nil {
			closeAll()
			return nil, uerr
		}
		e.recStats.RecordsUndone += undo.Undone
		e.recStats.TxUndone += undo.TxUndone
		e.recStats.RollbacksResumed += undo.Resumed
	}
	for _, an := range per {
		if an.MaxXID > e.nextXID.Load() {
			// Resume XID allocation above every XID in any shard's log tail,
			// so a new transaction can never share an XID with a stale loser
			// record.
			e.nextXID.Store(an.MaxXID)
		}
		e.recStats.LogRecordsScanned += an.Scanned
		e.recStats.Winners += len(an.Winners)
		e.recStats.Losers += len(an.Losers)
		e.recStats.RollbacksComplete += len(an.RolledBack)
	}

	e.SetConcurrency(cfg.Agents)
	return e, nil
}

// restoreSnapshot loads a checkpoint image: catalog, heap rows and indexes.
func (e *Engine) restoreSnapshot(snap *recovery.Snapshot) error {
	for _, ts := range snap.Tables {
		tbl, err := e.cat.RestoreTable(ts.Meta)
		if err != nil {
			return err
		}
		e.installTable(tbl)
		e.mu.RLock()
		hf, pk := e.heaps[tbl.ID], e.pkTrees[tbl.ID]
		e.mu.RUnlock()
		for _, data := range ts.Rows {
			row, err := tbl.Schema.Decode(data)
			if err != nil {
				return fmt.Errorf("core: checkpoint row of %q: %w", tbl.Name, err)
			}
			rid, err := hf.Insert(nil, data)
			if err != nil {
				return err
			}
			pk.tree.insert(record.EncodeKey(tbl.PrimaryKeyOf(row)...), rid)
		}
	}
	for _, im := range snap.Indexes {
		ix, err := e.cat.RestoreIndex(im)
		if err != nil {
			return err
		}
		if err := e.installIndex(ix); err != nil {
			return err
		}
	}
	return nil
}

// redoRuntime bundles the structures the redo appliers operate on.
type redoRuntime struct {
	tbl  *catalog.Table
	hf   *heap.File
	pk   *index
	secs []*index
}

func (e *Engine) redoRuntime(tableID uint32) (*redoRuntime, error) {
	tbl, ok := e.cat.TableByID(tableID)
	if !ok {
		return nil, fmt.Errorf("core: redo references unknown table %d", tableID)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	rt := &redoRuntime{tbl: tbl, hf: e.heaps[tableID], pk: e.pkTrees[tableID]}
	for _, ix := range e.cat.TableIndexes(tableID) {
		rt.secs = append(rt.secs, e.secs[ix.Name])
	}
	return rt, nil
}

// engineApplier adapts the engine's heap files and B+trees to the recovery
// package's redo interface. Redo runs single-threaded before the agent pool
// starts, so no locks or log appends are taken.
type engineApplier struct{ e *Engine }

func (a engineApplier) CreateTable(m catalog.TableMeta) error {
	if _, ok := a.e.cat.TableByID(m.ID); ok {
		// Already present — restored from the checkpoint; DDL redo is
		// idempotent because checkpointing and DDL logging can overlap.
		return nil
	}
	tbl, err := a.e.cat.RestoreTable(m)
	if err != nil {
		return err
	}
	a.e.installTable(tbl)
	return nil
}

func (a engineApplier) CreateIndex(m catalog.IndexMeta) error {
	if _, ok := a.e.cat.Index(m.Name); ok {
		return nil
	}
	ix, err := a.e.cat.RestoreIndex(m)
	if err != nil {
		return err
	}
	return a.e.installIndex(ix)
}

func (a engineApplier) Insert(tableID uint32, after []byte) error {
	rt, err := a.e.redoRuntime(tableID)
	if err != nil {
		return err
	}
	row, err := rt.tbl.Schema.Decode(after)
	if err != nil {
		return err
	}
	rid, err := rt.hf.Insert(nil, after)
	if err != nil {
		return err
	}
	rt.pk.tree.insert(record.EncodeKey(rt.tbl.PrimaryKeyOf(row)...), rid)
	for _, sec := range rt.secs {
		sec.tree.insert(indexKey(sec.meta.KeyOf(row), rid, sec.meta.Unique), rid)
	}
	return nil
}

func (a engineApplier) Update(tableID uint32, before, after []byte) error {
	rt, err := a.e.redoRuntime(tableID)
	if err != nil {
		return err
	}
	newRow, err := rt.tbl.Schema.Decode(after)
	if err != nil {
		return err
	}
	rid, ok := rt.pk.tree.get(record.EncodeKey(rt.tbl.PrimaryKeyOf(newRow)...))
	if !ok {
		return fmt.Errorf("core: redo update of missing row in table %d", tableID)
	}
	if err := rt.hf.Update(nil, rid, after); err != nil {
		return err
	}
	if len(rt.secs) > 0 {
		oldRow, derr := rt.tbl.Schema.Decode(before)
		if derr != nil {
			return derr
		}
		for _, sec := range rt.secs {
			oldKey := indexKey(sec.meta.KeyOf(oldRow), rid, sec.meta.Unique)
			newKey := indexKey(sec.meta.KeyOf(newRow), rid, sec.meta.Unique)
			if oldKey == newKey {
				continue
			}
			sec.tree.remove(oldKey)
			sec.tree.insert(newKey, rid)
		}
	}
	return nil
}

func (a engineApplier) Delete(tableID uint32, before []byte) error {
	rt, err := a.e.redoRuntime(tableID)
	if err != nil {
		return err
	}
	oldRow, err := rt.tbl.Schema.Decode(before)
	if err != nil {
		return err
	}
	pkKey := record.EncodeKey(rt.tbl.PrimaryKeyOf(oldRow)...)
	rid, ok := rt.pk.tree.get(pkKey)
	if !ok {
		return fmt.Errorf("core: redo delete of missing row in table %d", tableID)
	}
	for _, sec := range rt.secs {
		sec.tree.remove(indexKey(sec.meta.KeyOf(oldRow), rid, sec.meta.Unique))
	}
	rt.pk.tree.remove(pkKey)
	return rt.hf.Delete(nil, rid)
}

// Checkpoint persists a point-in-time image of the database and truncates
// the write-ahead log, bounding the work a future restart has to do. It
// briefly quiesces transaction execution (new transactions wait, in-flight
// ones drain), forces the log, snapshots the catalog and every table's rows
// to the checkpoint file, and deletes log segments the snapshot covers.
// Calling Checkpoint from inside a transaction body deadlocks.
func (e *Engine) Checkpoint() error {
	if e.closed.Load() {
		return ErrClosed
	}
	if len(e.segs) == 0 {
		return ErrNotDurable
	}
	e.execGate.Lock()
	defer e.execGate.Unlock()

	// Force every shard and capture the per-shard durable boundary vector.
	// The gate quiesces execution, so no transaction's records straddle it:
	// the table images reflect everything below the vector on every shard.
	vec := make([]wal.LSN, e.nShards)
	for s, l := range e.logs {
		if err := l.Flush(l.LastLSN()); err != nil {
			return err
		}
		vec[s] = l.DurableLSN()
	}

	snap := &recovery.Snapshot{LSN: vec[0], NextXID: e.nextXID.Load()}
	if e.nShards > 1 {
		snap.LSNs = vec
	}
	for _, tbl := range e.cat.Tables() {
		e.mu.RLock()
		hf := e.heaps[tbl.ID]
		e.mu.RUnlock()
		ts := recovery.TableSnapshot{Meta: catalog.TableMetaOf(tbl)}
		err := hf.Scan(nil, func(rid heap.RID, rec []byte) bool {
			ts.Rows = append(ts.Rows, rec)
			return true
		})
		if err != nil {
			return err
		}
		snap.Tables = append(snap.Tables, ts)
		for _, ix := range e.cat.TableIndexes(tbl.ID) {
			snap.Indexes = append(snap.Indexes, catalog.IndexMetaOf(ix))
		}
	}
	if err := recovery.WriteCheckpoint(e.cfg.Dir, snap); err != nil {
		return err
	}
	for s, sg := range e.segs {
		if err := sg.Checkpoint(vec[s]); err != nil {
			return err
		}
	}
	return nil
}
