package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"slidb/internal/profiler"
	"slidb/internal/record"
	"slidb/internal/wal"
)

// TestAbortLogsCLRChain pins the compensation-logging contract: an aborted
// transaction's rollback appends one redo-only CLR per undo action, in
// reverse order of the original records, chained through UndoNext, and ends
// with an abort record.
func TestAbortLogsCLRChain(t *testing.T) {
	e := Open(Config{})
	defer e.Close()
	schema := record.MustSchema(
		record.Column{Name: "id", Type: record.TypeInt},
		record.Column{Name: "v", Type: record.TypeInt},
	)
	if err := e.CreateTable("t", schema, []string{"id"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Tx) error {
		return tx.Insert("t", record.Row{record.Int(1), record.Int(10)})
	}); err != nil {
		t.Fatal(err)
	}

	boom := errors.New("boom")
	err := e.Exec(func(tx *Tx) error {
		if err := tx.Insert("t", record.Row{record.Int(2), record.Int(20)}); err != nil {
			return err
		}
		if err := tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
			r[1] = record.Int(11)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.Delete("t", record.Int(1)); err != nil {
			return err
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := e.log.Flush(e.log.LastLSN()); err != nil {
		t.Fatal(err)
	}

	// Collect the aborted transaction's records (the highest XID in the log).
	var aborted []wal.Record
	var xid uint64
	for _, r := range e.log.Records() {
		if r.XID > xid {
			xid = r.XID
		}
	}
	for _, r := range e.log.Records() {
		if r.XID == xid {
			aborted = append(aborted, r)
		}
	}
	wantTypes := []wal.RecType{
		wal.RecBegin, wal.RecInsert, wal.RecUpdate, wal.RecDelete,
		wal.RecCLR, wal.RecCLR, wal.RecCLR, wal.RecAbort,
	}
	if len(aborted) != len(wantTypes) {
		t.Fatalf("aborted tx has %d records, want %d: %+v", len(aborted), len(wantTypes), aborted)
	}
	for i, want := range wantTypes {
		if aborted[i].Type != want {
			t.Fatalf("record %d is %v, want %v", i, aborted[i].Type, want)
		}
	}
	// The CLR chain walks the data records newest-first: the first CLR
	// compensates the delete and points at the update, the second points at
	// the insert, and the last one closes the chain with UndoNext 0.
	insertLSN, updateLSN := aborted[1].LSN, aborted[2].LSN
	clrs := aborted[4:7]
	if clrs[0].UndoNext != updateLSN {
		t.Errorf("first CLR UndoNext = %d, want update LSN %d", clrs[0].UndoNext, updateLSN)
	}
	if clrs[1].UndoNext != insertLSN {
		t.Errorf("second CLR UndoNext = %d, want insert LSN %d", clrs[1].UndoNext, insertLSN)
	}
	if clrs[2].UndoNext != 0 {
		t.Errorf("last CLR UndoNext = %d, want 0 (rollback complete)", clrs[2].UndoNext)
	}
	// CLR image shapes: undo-delete re-inserts (After only), undo-update
	// restores (Before+After), undo-insert removes (Before only).
	if len(clrs[0].After) == 0 || len(clrs[0].Before) != 0 {
		t.Errorf("undo-delete CLR images: before=%d after=%d bytes", len(clrs[0].Before), len(clrs[0].After))
	}
	if len(clrs[1].Before) == 0 || len(clrs[1].After) == 0 {
		t.Errorf("undo-update CLR images: before=%d after=%d bytes", len(clrs[1].Before), len(clrs[1].After))
	}
	if len(clrs[2].Before) == 0 || len(clrs[2].After) != 0 {
		t.Errorf("undo-insert CLR images: before=%d after=%d bytes", len(clrs[2].Before), len(clrs[2].After))
	}
	if got := e.UndoFailures(); got != 0 {
		t.Fatalf("UndoFailures = %d, want 0", got)
	}
}

// TestELRAbortReleasesLocksBeforeDurable is the abort-side analogue of
// TestELRLockHoldExcludesFlushWait: N conflicting transactions each update
// the same row and then abort. Without ELR every rollback holds the row's X
// lock across the abort record's force (LogFlushDelay each); with ELR the
// lock is released at abort-record append, so the whole run finishes in a
// small multiple of one delay.
func TestELRAbortReleasesLocksBeforeDurable(t *testing.T) {
	const (
		n     = 20
		delay = 30 * time.Millisecond
	)
	e := openELREngine(t, Config{
		Agents:                 4,
		EarlyLockRelease:       true,
		EarlyLockReleaseAborts: true,
		AsyncCommit:            true,
		LogFlushDelay:          delay,
		Profile:                true,
	})

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := e.Exec(func(tx *Tx) error {
				if err := tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
					r[1] = record.Int(r[1].AsInt() + 1)
					return r, nil
				}); err != nil {
					return err
				}
				return Abort
			})
			if !errors.Is(err, Abort) {
				t.Errorf("err = %v, want Abort", err)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Serialized lock-held abort flushes would need n*delay = 600ms.
	if elapsed >= time.Duration(n)*delay {
		t.Errorf("run took %v, want well under %v (locks appear to be held across abort flushes)", elapsed, time.Duration(n)*delay)
	}
	if got := e.ELRAborts(); got < n {
		t.Errorf("ELRAborts = %d, want >= %d", got, n)
	}
	if got := e.UndoFailures(); got != 0 {
		t.Fatalf("UndoFailures = %d, want 0", got)
	}
	// Every rollback was applied: the row still has its initial value.
	var final int64
	if err := e.Exec(func(tx *Tx) error {
		row, _, err := tx.Get("t", record.Int(1))
		final = row[1].AsInt()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if final != 0 {
		t.Fatalf("row value = %d after %d aborted increments, want 0", final, n)
	}
	// The abort path must kick the flusher itself: even with no later
	// commit subscribing, the CLR chains and abort records drain to disk
	// and the durable lag returns to zero.
	deadline := time.Now().Add(5 * time.Second)
	for e.DurableLag() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("durable lag stuck at %d: ELR aborts never flushed", e.DurableLag())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStrictAbortWaitsForDurability pins the baseline the high-abort
// ablation measures against: without ELR an aborting transaction blocks on
// the force of its abort record while still holding its locks, and that
// wait is attributed to the LogFlush profiler category.
func TestStrictAbortWaitsForDurability(t *testing.T) {
	const delay = 20 * time.Millisecond
	e := openELREngine(t, Config{
		Agents:        1,
		LogFlushDelay: delay,
		Profile:       true,
	})
	before := e.Profiler().Aggregate().Get(profiler.LogFlush)
	err := e.Exec(func(tx *Tx) error {
		if err := tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
			r[1] = record.Int(99)
			return r, nil
		}); err != nil {
			return err
		}
		return Abort
	})
	if !errors.Is(err, Abort) {
		t.Fatalf("err = %v, want Abort", err)
	}
	flushWait := e.Profiler().Aggregate().Get(profiler.LogFlush) - before
	if flushWait < delay/2 {
		t.Errorf("abort-path LogFlush = %v, want >= %v (strict abort must wait for durability)", flushWait, delay/2)
	}
	if got := e.ELRAborts(); got != 0 {
		t.Errorf("ELRAborts = %d, want 0 without EarlyLockRelease", got)
	}
}

// TestLogAppendFailureRollsBackInline is the regression test for the
// undo-registration ordering bug: Insert/Update/Delete apply their heap and
// index mutations before appending to the WAL, so a failed append (wedged or
// crashed log) used to leave the mutation applied with nothing registered to
// undo it. Each path must now roll the mutation back inline.
func TestLogAppendFailureRollsBackInline(t *testing.T) {
	setup := func(t *testing.T) *Engine {
		e := Open(Config{})
		t.Cleanup(func() { e.Close() })
		schema := record.MustSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "v", Type: record.TypeInt},
		)
		if err := e.CreateTable("t", schema, []string{"id"}); err != nil {
			t.Fatal(err)
		}
		if err := e.CreateIndex("t_by_v", "t", []string{"v"}, false); err != nil {
			t.Fatal(err)
		}
		if err := e.Exec(func(tx *Tx) error {
			return tx.Insert("t", record.Row{record.Int(1), record.Int(10)})
		}); err != nil {
			t.Fatal(err)
		}
		return e
	}

	// readState returns the rows visible to a read-only transaction (which
	// never touches the log, so it works on a crashed-log engine).
	readState := func(t *testing.T, e *Engine) map[int64]int64 {
		t.Helper()
		rows := make(map[int64]int64)
		if err := e.Exec(func(tx *Tx) error {
			return tx.ScanTable("t", func(r record.Row) bool {
				rows[r[0].AsInt()] = r[1].AsInt()
				return true
			})
		}); err != nil {
			t.Fatal(err)
		}
		return rows
	}
	wantSeed := map[int64]int64{1: 10}

	t.Run("insert", func(t *testing.T) {
		e := setup(t)
		// The first insert succeeds and registers an undo; the log then
		// crashes and the second insert must roll itself back inline. The
		// abort also undoes the first insert (its CLR append fails, which is
		// fine — the log is gone anyway).
		err := e.Exec(func(tx *Tx) error {
			if err := tx.Insert("t", record.Row{record.Int(2), record.Int(20)}); err != nil {
				return err
			}
			e.log.Crash()
			return tx.Insert("t", record.Row{record.Int(3), record.Int(30)})
		})
		if err == nil {
			t.Fatal("insert on crashed log succeeded")
		}
		if got := readState(t, e); len(got) != 1 || got[1] != wantSeed[1] {
			t.Fatalf("rows after failed insert = %v, want %v", got, wantSeed)
		}
		if rows, err2 := lookupByV(e, 30); err2 != nil || len(rows) != 0 {
			t.Fatalf("secondary index still sees the failed insert: rows=%v err=%v", rows, err2)
		}
		if got := e.UndoFailures(); got != 0 {
			t.Fatalf("UndoFailures = %d, want 0", got)
		}
	})

	t.Run("update", func(t *testing.T) {
		e := setup(t)
		e.log.Crash()
		err := e.Exec(func(tx *Tx) error {
			return tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
				r[1] = record.Int(77)
				return r, nil
			})
		})
		if err == nil {
			t.Fatal("update on crashed log succeeded")
		}
		if got := readState(t, e); got[1] != 10 {
			t.Fatalf("row value after failed update = %d, want 10", got[1])
		}
		if rows, err2 := lookupByV(e, 10); err2 != nil || len(rows) != 1 {
			t.Fatalf("secondary index lost the old key: rows=%v err=%v", rows, err2)
		}
		if got := e.UndoFailures(); got != 0 {
			t.Fatalf("UndoFailures = %d, want 0", got)
		}
	})

	t.Run("delete", func(t *testing.T) {
		e := setup(t)
		e.log.Crash()
		err := e.Exec(func(tx *Tx) error {
			return tx.Delete("t", record.Int(1))
		})
		if err == nil {
			t.Fatal("delete on crashed log succeeded")
		}
		if got := readState(t, e); len(got) != 1 || got[1] != 10 {
			t.Fatalf("rows after failed delete = %v, want %v", got, wantSeed)
		}
		if rows, err2 := lookupByV(e, 10); err2 != nil || len(rows) != 1 {
			t.Fatalf("secondary index lost the deleted row's key: rows=%v err=%v", rows, err2)
		}
		if got := e.UndoFailures(); got != 0 {
			t.Fatalf("UndoFailures = %d, want 0", got)
		}
	})
}

// lookupByV reads the non-unique secondary index in a read-only transaction.
func lookupByV(e *Engine, v int64) ([]record.Row, error) {
	var rows []record.Row
	err := e.Exec(func(tx *Tx) error {
		var lerr error
		rows, lerr = tx.LookupIndex("t_by_v", record.Int(v))
		return lerr
	})
	return rows, err
}
