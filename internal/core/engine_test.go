package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"slidb/internal/lockmgr"
	"slidb/internal/record"
)

func accountSchema() *record.Schema {
	return record.MustSchema(
		record.Column{Name: "id", Type: record.TypeInt},
		record.Column{Name: "owner", Type: record.TypeString},
		record.Column{Name: "balance", Type: record.TypeFloat},
	)
}

// newBankEngine creates an engine with an accounts table and n accounts of
// 100.0 each.
func newBankEngine(t testing.TB, cfg Config, n int) *Engine {
	t.Helper()
	e := Open(cfg)
	t.Cleanup(func() { e.Close() })
	if err := e.CreateTable("accounts", accountSchema(), []string{"id"}); err != nil {
		t.Fatal(err)
	}
	if err := e.CreateIndex("accounts_by_owner", "accounts", []string{"owner"}, false); err != nil {
		t.Fatal(err)
	}
	err := e.Exec(func(tx *Tx) error {
		for i := 0; i < n; i++ {
			row := record.Row{record.Int(int64(i)), record.String(fmt.Sprintf("owner-%d", i%10)), record.Float(100)}
			if err := tx.Insert("accounts", row); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInsertAndGet(t *testing.T) {
	e := newBankEngine(t, Config{Agents: 2}, 10)
	err := e.Exec(func(tx *Tx) error {
		row, found, err := tx.Get("accounts", record.Int(3))
		if err != nil {
			return err
		}
		if !found {
			return errors.New("account 3 missing")
		}
		if row[2].AsFloat() != 100 {
			return fmt.Errorf("balance = %v, want 100", row[2].AsFloat())
		}
		if _, found, _ := tx.Get("accounts", record.Int(9999)); found {
			return errors.New("found a row that was never inserted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Committed() == 0 {
		t.Fatal("commit counter not incremented")
	}
}

func TestDuplicateKeyRejected(t *testing.T) {
	e := newBankEngine(t, Config{}, 5)
	err := e.Exec(func(tx *Tx) error {
		return tx.Insert("accounts", record.Row{record.Int(3), record.String("x"), record.Float(1)})
	})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("err = %v, want ErrDuplicateKey", err)
	}
	if e.Aborted() == 0 {
		t.Fatal("aborted counter not incremented")
	}
}

func TestUpdateAndReadBack(t *testing.T) {
	e := newBankEngine(t, Config{Agents: 1}, 5)
	err := e.Exec(func(tx *Tx) error {
		return tx.Update("accounts", []record.Value{record.Int(2)}, func(r record.Row) (record.Row, error) {
			r[2] = record.Float(r[2].AsFloat() + 50)
			return r, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Exec(func(tx *Tx) error {
		row, _, err := tx.Get("accounts", record.Int(2))
		if err != nil {
			return err
		}
		if row[2].AsFloat() != 150 {
			return fmt.Errorf("balance = %v, want 150", row[2].AsFloat())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUpdateMissingRowAndPKChangeRejected(t *testing.T) {
	e := newBankEngine(t, Config{}, 3)
	err := e.Exec(func(tx *Tx) error {
		return tx.Update("accounts", []record.Value{record.Int(77)}, func(r record.Row) (record.Row, error) { return r, nil })
	})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	err = e.Exec(func(tx *Tx) error {
		return tx.Update("accounts", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
			r[0] = record.Int(999)
			return r, nil
		})
	})
	if !errors.Is(err, ErrPrimaryKeyChange) {
		t.Fatalf("err = %v, want ErrPrimaryKeyChange", err)
	}
}

func TestDeleteAndNotFound(t *testing.T) {
	e := newBankEngine(t, Config{}, 3)
	if err := e.Exec(func(tx *Tx) error { return tx.Delete("accounts", record.Int(1)) }); err != nil {
		t.Fatal(err)
	}
	err := e.Exec(func(tx *Tx) error {
		if _, found, _ := tx.Get("accounts", record.Int(1)); found {
			return errors.New("deleted row still visible")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Tx) error { return tx.Delete("accounts", record.Int(1)) }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v, want ErrNotFound", err)
	}
}

func TestAbortRollsBackEverything(t *testing.T) {
	e := newBankEngine(t, Config{}, 3)
	sentinel := errors.New("boom")
	err := e.Exec(func(tx *Tx) error {
		if err := tx.Insert("accounts", record.Row{record.Int(50), record.String("new"), record.Float(1)}); err != nil {
			return err
		}
		if err := tx.Update("accounts", []record.Value{record.Int(0)}, func(r record.Row) (record.Row, error) {
			r[2] = record.Float(0)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.Delete("accounts", record.Int(2)); err != nil {
			return err
		}
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	err = e.Exec(func(tx *Tx) error {
		if _, found, _ := tx.Get("accounts", record.Int(50)); found {
			return errors.New("aborted insert visible")
		}
		row, _, _ := tx.Get("accounts", record.Int(0))
		if row[2].AsFloat() != 100 {
			return fmt.Errorf("aborted update visible: balance %v", row[2].AsFloat())
		}
		if _, found, _ := tx.Get("accounts", record.Int(2)); !found {
			return errors.New("aborted delete visible (row missing)")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSecondaryIndexLookup(t *testing.T) {
	e := newBankEngine(t, Config{}, 30)
	err := e.Exec(func(tx *Tx) error {
		rows, err := tx.LookupIndex("accounts_by_owner", record.String("owner-3"))
		if err != nil {
			return err
		}
		if len(rows) != 3 {
			return fmt.Errorf("owner-3 has %d accounts, want 3", len(rows))
		}
		for _, r := range rows {
			if r[1].AsString() != "owner-3" {
				return fmt.Errorf("wrong row returned: %v", r)
			}
		}
		none, err := tx.LookupIndex("accounts_by_owner", record.String("nobody"))
		if err != nil {
			return err
		}
		if len(none) != 0 {
			return errors.New("lookup of missing key returned rows")
		}
		if _, err := tx.LookupIndex("no_such_index", record.Int(1)); err == nil {
			return errors.New("unknown index accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSecondaryIndexFollowsUpdates(t *testing.T) {
	e := newBankEngine(t, Config{}, 5)
	// Move account 4 to a new owner and check both index sides.
	err := e.Exec(func(tx *Tx) error {
		return tx.Update("accounts", []record.Value{record.Int(4)}, func(r record.Row) (record.Row, error) {
			r[1] = record.String("new-owner")
			return r, nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Exec(func(tx *Tx) error {
		rows, _ := tx.LookupIndex("accounts_by_owner", record.String("new-owner"))
		if len(rows) != 1 || rows[0][0].AsInt() != 4 {
			return fmt.Errorf("new owner lookup = %v", rows)
		}
		rows, _ = tx.LookupIndex("accounts_by_owner", record.String("owner-4"))
		for _, r := range rows {
			if r[0].AsInt() == 4 {
				return errors.New("stale index entry for old owner")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScanRangeAndScanTable(t *testing.T) {
	e := newBankEngine(t, Config{}, 20)
	err := e.Exec(func(tx *Tx) error {
		var ids []int64
		if err := tx.ScanRange("accounts", []record.Value{record.Int(5)}, []record.Value{record.Int(9)}, func(r record.Row) bool {
			ids = append(ids, r[0].AsInt())
			return true
		}); err != nil {
			return err
		}
		if len(ids) != 5 || ids[0] != 5 || ids[4] != 9 {
			return fmt.Errorf("range scan ids = %v", ids)
		}
		count := 0
		if err := tx.ScanTable("accounts", func(r record.Row) bool {
			count++
			return true
		}); err != nil {
			return err
		}
		if count != 20 {
			return fmt.Errorf("full scan saw %d rows, want 20", count)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnknownTableErrors(t *testing.T) {
	e := Open(Config{})
	defer e.Close()
	err := e.Exec(func(tx *Tx) error {
		if err := tx.Insert("nope", record.Row{record.Int(1)}); err == nil {
			return errors.New("insert into unknown table accepted")
		}
		if _, _, err := tx.Get("nope", record.Int(1)); err == nil {
			return errors.New("get from unknown table accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CreateTable("", accountSchema(), []string{"id"}); err == nil {
		t.Fatal("empty table name accepted")
	}
	if err := e.CreateIndex("ix", "nope", []string{"id"}, false); err == nil {
		t.Fatal("index on unknown table accepted")
	}
}

func TestClosedEngineRejectsWork(t *testing.T) {
	e := Open(Config{Agents: 1})
	e.Close()
	if err := e.Exec(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := e.CreateTable("t", accountSchema(), []string{"id"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestCreateIndexBackfillsExistingRows(t *testing.T) {
	e := newBankEngine(t, Config{}, 12)
	if err := e.CreateIndex("by_balance", "accounts", []string{"balance"}, false); err != nil {
		t.Fatal(err)
	}
	err := e.Exec(func(tx *Tx) error {
		rows, err := tx.LookupIndex("by_balance", record.Float(100))
		if err != nil {
			return err
		}
		if len(rows) != 12 {
			return fmt.Errorf("backfilled index returned %d rows, want 12", len(rows))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// transferMoney is the classic concurrent-transfer invariant test: total
// balance must be conserved under concurrent random transfers, both with and
// without SLI.
func transferMoney(t *testing.T, sli bool) {
	t.Helper()
	const accounts = 20
	const workers = 8
	const transfersPerWorker = 100
	e := newBankEngine(t, Config{Agents: 4, SLI: sli}, accounts)
	var wg sync.WaitGroup
	errCh := make(chan error, workers*transfersPerWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < transfersPerWorker; i++ {
				from := int64((w*7 + i) % accounts)
				to := int64((w*13 + i*3 + 1) % accounts)
				if from == to {
					continue
				}
				err := e.Exec(func(tx *Tx) error {
					// Lock in a canonical order to avoid deadlocks.
					first, second := from, to
					if first > second {
						first, second = second, first
					}
					for _, id := range []int64{first, second} {
						delta := -10.0
						if id == to {
							delta = 10.0
						}
						if err := tx.Update("accounts", []record.Value{record.Int(id)}, func(r record.Row) (record.Row, error) {
							r[2] = record.Float(r[2].AsFloat() + delta)
							return r, nil
						}); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					errCh <- err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Verify conservation.
	err := e.Exec(func(tx *Tx) error {
		total := 0.0
		if err := tx.ScanTable("accounts", func(r record.Row) bool {
			total += r[2].AsFloat()
			return true
		}); err != nil {
			return err
		}
		if total != accounts*100 {
			return fmt.Errorf("total balance = %v, want %v", total, accounts*100)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransfersConserveMoneyBaseline(t *testing.T) { transferMoney(t, false) }
func TestConcurrentTransfersConserveMoneySLI(t *testing.T)      { transferMoney(t, true) }

func TestSLIEngineTogglesAndStats(t *testing.T) {
	e := newBankEngine(t, Config{Agents: 2, SLI: true, Profile: true}, 50)
	if !e.SLIEnabled() {
		t.Fatal("SLI should be enabled")
	}
	// Force the hot path: mark table + db locks hot, then run many
	// single-row reads through the agent pool.
	tbl, _ := e.Catalog().Table("accounts")
	e.LockManager().ForceHot(lockmgr.TableLock(databaseID, tbl.ID))
	e.LockManager().ForceHot(lockmgr.DatabaseLock(databaseID))
	for i := 0; i < 300; i++ {
		id := int64(i % 50)
		if err := e.Exec(func(tx *Tx) error {
			_, _, err := tx.Get("accounts", record.Int(id))
			return err
		}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.LockStats()
	if s.SLIPassed == 0 || s.SLIReclaimed == 0 {
		t.Fatalf("SLI never engaged: %+v", s)
	}
	if e.Profiler().Aggregate().Total() == 0 {
		t.Fatal("profiler collected nothing")
	}
	e.SetSLI(false)
	if e.SLIEnabled() {
		t.Fatal("SetSLI(false) did not disable")
	}
	if e.BufferStats().Hits == 0 {
		t.Fatal("buffer pool reported no hits")
	}
}

func TestSetConcurrencyResizesPool(t *testing.T) {
	e := newBankEngine(t, Config{Agents: 2}, 10)
	if e.Concurrency() != 2 {
		t.Fatalf("concurrency = %d, want 2", e.Concurrency())
	}
	e.SetConcurrency(6)
	if e.Concurrency() != 6 {
		t.Fatalf("concurrency = %d, want 6", e.Concurrency())
	}
	e.SetConcurrency(1)
	if e.Concurrency() != 1 {
		t.Fatalf("concurrency = %d, want 1", e.Concurrency())
	}
	// Work still executes after resizing.
	if err := e.Exec(func(tx *Tx) error {
		_, _, err := tx.Get("accounts", record.Int(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
	e.SetConcurrency(-5)
	if e.Concurrency() != 0 {
		t.Fatal("negative concurrency should clamp to zero")
	}
	// Inline execution still works with zero agents.
	if err := e.Exec(func(tx *Tx) error {
		_, _, err := tx.Get("accounts", record.Int(1))
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestGetForUpdateBlocksConflictingWriter(t *testing.T) {
	e := newBankEngine(t, Config{Agents: 4}, 5)
	// Two transactions updating the same account concurrently must serialize
	// and both apply.
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := e.Exec(func(tx *Tx) error {
				return tx.Update("accounts", []record.Value{record.Int(0)}, func(r record.Row) (record.Row, error) {
					r[2] = record.Float(r[2].AsFloat() + 1)
					return r, nil
				})
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	err := e.Exec(func(tx *Tx) error {
		row, _, err := tx.Get("accounts", record.Int(0))
		if err != nil {
			return err
		}
		if row[2].AsFloat() != 110 {
			return fmt.Errorf("balance = %v, want 110 (lost updates)", row[2].AsFloat())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWALRecordsWritten(t *testing.T) {
	e := newBankEngine(t, Config{}, 3)
	appends, _, _ := e.log.StatsSnapshot()
	if appends == 0 {
		t.Fatal("no WAL records were appended during setup")
	}
	recs := e.log.Records()
	if len(recs) == 0 {
		t.Fatal("no WAL records were flushed at commit")
	}
	sawCommit := false
	for _, r := range recs {
		if r.Type.String() == "COMMIT" {
			sawCommit = true
		}
	}
	if !sawCommit {
		t.Fatal("no commit record in the WAL")
	}
}
