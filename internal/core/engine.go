// Package core implements the storage-manager engine: it composes the lock
// manager (with Speculative Lock Inheritance), write-ahead log, buffer pool,
// heap files, B+tree indexes and catalog into a transactional embedded
// database, and executes transactions on a pool of agent threads exactly as
// Shore-MT does — one agent goroutine runs one transaction at a time, and
// SLI passes hot locks from a committing transaction to the next transaction
// on the same agent.
//
// The top-level package slidb re-exports this engine as the public API.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"slidb/internal/buffer"
	"slidb/internal/catalog"
	"slidb/internal/heap"
	"slidb/internal/lockmgr"
	"slidb/internal/obs"
	"slidb/internal/profiler"
	"slidb/internal/record"
	"slidb/internal/wal"
)

// databaseID is the single database (volume) ID used by the engine.
const databaseID uint32 = 1

// Config configures an Engine.
type Config struct {
	// SLI enables Speculative Lock Inheritance (the paper's contribution).
	SLI bool
	// SLIHotThreshold is the contention ratio above which a lock is "hot"
	// (criterion 2 of §4.2). Zero uses the lock manager default (0.25).
	SLIHotThreshold float64
	// SLIMinLevel is the finest lock level eligible for inheritance; zero
	// uses the default (page level, per criterion 1).
	SLIMinLevel lockmgr.Level
	// Agents is the number of agent worker goroutines ("hardware contexts"
	// in the paper's terms). Zero means transactions run inline on the
	// calling goroutine without an agent (no SLI).
	Agents int
	// BufferFrames is the buffer pool size in pages (default 4096).
	BufferFrames int
	// IODelay is the artificial latency per page read/write, simulating the
	// paper's 6 ms disk-seek penalty. Zero disables it (in-memory dataset).
	IODelay time.Duration
	// LogFlushDelay simulates the latency of forcing the log at commit.
	LogFlushDelay time.Duration
	// GroupCommitWindow batches concurrent commits (see wal.Config). Under
	// AdaptiveGroupCommit it is only the controller's starting point.
	GroupCommitWindow time.Duration
	// AdaptiveGroupCommit turns the fixed group-commit window into a
	// self-tuning one: the WAL flusher grows and shrinks the window between
	// GroupCommitMin and GroupCommitMax from observed commit arrival and
	// durable lag, and wakes early once the pending subscription set is
	// satisfiable (see wal.Config.AdaptiveGroupCommit).
	AdaptiveGroupCommit bool
	// GroupCommitMin and GroupCommitMax bound the adaptive window; zero
	// values default to 10µs and 2ms. Ignored unless AdaptiveGroupCommit.
	GroupCommitMin time.Duration
	GroupCommitMax time.Duration
	// StrictFence selects the in-order publish fence in the WAL buffer (each
	// appender spins until every earlier byte is published) instead of the
	// default completion-tracking publish. It exists as the baseline arm of
	// the log-tail ablation; leave it off otherwise.
	StrictFence bool
	// EarlyLockRelease makes a committing transaction release its locks (and
	// perform SLI inheritance) as soon as its commit record is appended to
	// the log, instead of holding them across the group-commit fsync. Lock
	// hold times then exclude the entire flush latency. Safe with the single
	// totally-ordered log: commits are acknowledged in LSN order, so a
	// transaction that read ELR-exposed data is never durable before the
	// transaction that exposed it. Off by default (the paper-faithful
	// baseline holds locks until the commit is durable). This knob governs
	// the commit path only; the abort path has its own knob below, so the
	// abort-elr ablation can difference the two policies independently.
	EarlyLockRelease bool
	// EarlyLockReleaseAborts applies the same policy to rollbacks: an
	// aborting transaction releases its locks (with SLI inheritance) as soon
	// as its compensation-logged rollback has appended its abort record,
	// instead of holding them across the force of that record. Independent
	// of EarlyLockRelease — enable both for the full ELR pipeline.
	EarlyLockReleaseAborts bool
	// AsyncCommit lets each agent worker start its next transaction while up
	// to PipelineDepth earlier transactions are still waiting for their
	// commit records to be forced to disk (flush pipelining). Exec still
	// blocks its caller until the transaction is durable; only the agent is
	// freed. It requires EarlyLockRelease: without it a committing
	// transaction must hold its locks until the force completes, so the
	// flush happens synchronously and there is nothing to pipeline —
	// AsyncCommit alone is a no-op.
	AsyncCommit bool
	// PipelineDepth bounds the in-flight pre-committed transactions per
	// worker under AsyncCommit (default 32).
	PipelineDepth int
	// Profile enables the per-component time breakdown used by the figure
	// harness. It adds a small overhead per operation.
	Profile bool
	// LockTimeout bounds lock waits; zero uses the default (10s).
	LockTimeout time.Duration
	// MaxDeadlockRetries is how many times Exec re-runs a transaction that
	// was chosen as a deadlock victim before giving up (default 10).
	MaxDeadlockRetries int
	// DropLogAfterFlush discards flushed log records instead of retaining
	// them in memory; enable for long benchmark runs.
	DropLogAfterFlush bool
	// MutexLog selects the legacy centralized WAL append path (one mutex per
	// Append, per-record encode at flush) instead of the consolidated
	// reserve/fill/publish log buffer. It exists as the baseline arm of the
	// log-buffer ablation; leave it off otherwise.
	MutexLog bool
	// LatchedLog keeps the consolidated log buffer but reserves under a
	// short mutex (the PR-3 protocol) instead of the lock-free fetch-and-add
	// on the virtual head. It exists as the baseline arm of the log-lsn
	// ablation; leave it off otherwise. Ignored under MutexLog.
	LatchedLog bool
	// LogBufferBytes sizes the consolidated log buffer; zero uses the WAL
	// default (4 MiB).
	LogBufferBytes int64
	// AutoSizeLogBuffer lets each log shard's flusher grow its buffer
	// (power-of-two, up to LogBufferMaxBytes) when appenders spend a
	// significant fraction of wall time blocked on a full buffer. The
	// profiler's log-buffer-full-wait signal drives the decision; see
	// wal.Config.AutoSizeBuffer.
	AutoSizeLogBuffer bool
	// LogBufferMaxBytes caps the auto-sizer; zero uses the WAL default
	// (64 MiB). Ignored unless AutoSizeLogBuffer.
	LogBufferMaxBytes int64
	// LogShards splits the write-ahead log into this many independent
	// virtual logs, each with its own reserve/fill/publish buffer, flusher
	// goroutine and segment directory (shard-NN/). Records are routed by the
	// row's table and primary key, so one row's history lives entirely on
	// one shard; a transaction touching several shards commits with one
	// commit record per touched shard (carrying the participant set) and is
	// treated as committed by recovery only when every participant's commit
	// record survived. Zero or one keeps the single totally-ordered log —
	// byte-identical to the pre-shard format. For durable engines the value
	// must match the directory's existing layout (OpenAt fails loudly with
	// wal.ErrLogFormat on a mismatch); zero auto-detects it.
	LogShards int
	// Dir is the data directory backing the engine's durability subsystem
	// (WAL segments and checkpoints). It is set by OpenAt; Open ignores it
	// and runs fully in memory.
	Dir string
	// SegmentBytes is the on-disk WAL segment rotation size for durable
	// engines; zero uses wal.DefaultSegmentBytes.
	SegmentBytes int64
	// PreallocateSegments extends each new WAL segment file to SegmentBytes
	// at creation (fallocate, degrading to truncate where unsupported), so
	// group commits write into already-allocated blocks instead of growing
	// the file. Durable engines only.
	PreallocateSegments bool
}

func (c Config) withDefaults() Config {
	if c.BufferFrames <= 0 {
		c.BufferFrames = 4096
	}
	if c.MaxDeadlockRetries <= 0 {
		c.MaxDeadlockRetries = 10
	}
	if c.PipelineDepth <= 0 {
		c.PipelineDepth = 32
	}
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = wal.DefaultSegmentBytes
	}
	if c.LogShards > wal.MaxLogShards {
		c.LogShards = wal.MaxLogShards
	}
	return c
}

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("core: engine is closed")

// Engine is the storage manager.
type Engine struct {
	cfg Config
	cat *catalog.Catalog
	lm  *lockmgr.Manager
	// logs holds one virtual log per shard; log aliases logs[0] so the
	// single-shard hot paths (and DDL, which always routes to shard 0) pay
	// no indirection. nShards == len(logs) >= 1.
	logs    []*wal.Log
	log     *wal.Log
	nShards int
	segs    []*wal.Segments // empty for in-memory (volatile) engines
	pool    *buffer.Pool
	prof    *profiler.Profiler

	// execGate serializes checkpoints against running transactions: every
	// transaction attempt holds it for read, Checkpoint takes it for write.
	execGate sync.RWMutex
	recStats RecoveryStats

	mu      sync.RWMutex
	heaps   map[uint32]*heap.File
	pkTrees map[uint32]*index
	secs    map[string]*index

	nextXID atomic.Uint64

	jobs      chan job
	stopping  chan struct{} // closed by Close/SimulateCrash; unblocks Exec senders
	workersMu sync.Mutex
	workers   []*worker
	closed    atomic.Bool

	// obs is the engine's observability surface, created lazily by Observe
	// (see obs.go). txHook is the per-transaction completion hook it
	// installs; nil until then, so the only cost a non-observed engine pays
	// is one atomic pointer load per transaction attempt.
	obsOnce sync.Once
	obs     *obs.Observer
	txHook  atomic.Pointer[func(TxCompletion)]

	committed atomic.Uint64
	aborted   atomic.Uint64
	// elrAborts counts aborting transactions that released their locks at
	// abort-record append (before the flush) under EarlyLockReleaseAborts.
	elrAborts atomic.Uint64
	// undoFailures counts undo actions (abort-time or inline after a failed
	// log append) that returned an error — each one means the in-memory
	// state may no longer match the pre-transaction state. Always zero in a
	// healthy engine; torture tests fail when it is not.
	undoFailures atomic.Uint64
	// crossShardCommits counts committed transactions whose participant set
	// spanned more than one log shard — the commits that paid the two-phase
	// flush rendezvous instead of a single-log group commit.
	crossShardCommits atomic.Uint64
}

type job struct {
	fn   func(*Tx) error
	done chan error
}

// pendingCommit is one pre-committed transaction a worker has handed to its
// ack pipeline: the WAL's durability ack on one side, the Exec caller's done
// channel on the other.
type pendingCommit struct {
	ack  <-chan error
	done chan error
}

type worker struct {
	agent *lockmgr.Agent
	prof  *profiler.Handle
	quit  chan struct{}
	done  chan struct{}

	// inflight carries pre-committed transactions to the worker's acker
	// goroutine under AsyncCommit; its capacity is the worker's pipelining
	// window. nil when pipelining is off.
	inflight  chan pendingCommit
	ackerDone chan struct{}
	// ackProf is the acker goroutine's own profiler handle. The acker runs
	// concurrently with the worker's next transaction; attributing its
	// LogFlush waits to w.prof would corrupt runOnce's wall-vs-accounted
	// TxWork attribution for that transaction.
	ackProf *profiler.Handle
}

// Open creates an in-memory (volatile) engine with the given configuration.
// For a disk-backed engine with crash recovery, use OpenAt.
func Open(cfg Config) *Engine {
	cfg.Dir = ""
	e := newEngine(cfg.withDefaults(), nil, nil)
	e.SetConcurrency(e.cfg.Agents)
	return e
}

// newEngine builds an engine without starting its agent pool. A non-empty
// durable slice makes the write-ahead log disk-backed with one virtual log
// per segment directory (its length overrides cfg.LogShards); startLSNs
// (when non-nil) resumes each shard's LSN allocation above its recovered
// log prefix.
func newEngine(cfg Config, durable []*wal.Segments, startLSNs []wal.LSN) *Engine {
	nShards := cfg.LogShards
	if len(durable) > 0 {
		nShards = len(durable)
	}
	if nShards < 1 {
		nShards = 1
	}
	e := &Engine{
		cfg:      cfg,
		cat:      catalog.New(),
		nShards:  nShards,
		segs:     durable,
		prof:     profiler.New(cfg.Profile),
		heaps:    make(map[uint32]*heap.File),
		pkTrees:  make(map[uint32]*index),
		secs:     make(map[string]*index),
		jobs:     make(chan job),
		stopping: make(chan struct{}),
	}
	e.lm = lockmgr.New(lockmgr.Config{
		SLI:             cfg.SLI,
		SLIHotThreshold: cfg.SLIHotThreshold,
		SLIMinLevel:     cfg.SLIMinLevel,
		LockTimeout:     cfg.LockTimeout,
	})
	dropAfterFlush := cfg.DropLogAfterFlush
	if len(durable) > 0 {
		// The disk holds the records; retaining them in memory as well would
		// grow without bound.
		dropAfterFlush = true
	}
	e.logs = make([]*wal.Log, nShards)
	for s := range e.logs {
		var sink wal.DurableSink
		if len(durable) > 0 {
			sink = durable[s]
		}
		var startLSN wal.LSN
		if startLSNs != nil {
			startLSN = startLSNs[s]
		}
		e.logs[s] = wal.New(wal.Config{
			FlushDelay:          cfg.LogFlushDelay,
			GroupCommitWindow:   cfg.GroupCommitWindow,
			AdaptiveGroupCommit: cfg.AdaptiveGroupCommit,
			GroupCommitMin:      cfg.GroupCommitMin,
			GroupCommitMax:      cfg.GroupCommitMax,
			StrictFence:         cfg.StrictFence,
			DropAfterFlush:      dropAfterFlush,
			Durable:             sink,
			StartLSN:            startLSN,
			MutexLog:            cfg.MutexLog,
			LatchedLog:          cfg.LatchedLog,
			BufferBytes:         cfg.LogBufferBytes,
			AutoSizeBuffer:      cfg.AutoSizeLogBuffer,
			BufferMaxBytes:      cfg.LogBufferMaxBytes,
		})
	}
	e.log = e.logs[0]
	e.pool = buffer.NewPool(buffer.NewMemStore(), buffer.Config{
		Frames:  cfg.BufferFrames,
		IODelay: cfg.IODelay,
	})
	return e
}

// shardOf routes a row — identified by its table and encoded primary key —
// to a log shard. Every record of one row (data, CLRs) lands on the same
// shard, so per-shard redo and undo see each row's full ordered history.
// FNV-1a over the table ID and key keeps the placement stable across
// restarts without any shared state on the append path.
func (e *Engine) shardOf(table uint32, pkKey string) int {
	if e.nShards == 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(table >> (8 * i)))
		h *= prime64
	}
	for i := 0; i < len(pkKey); i++ {
		h ^= uint64(pkKey[i])
		h *= prime64
	}
	return int(h % uint64(e.nShards))
}

// LogShards returns the number of log shards the engine runs with.
func (e *Engine) LogShards() int { return e.nShards }

// Close stops the agent pool and flushes the log and buffer pool. For
// durable engines it also drains the log to its segment files and closes
// them, so a Close-d engine reopens via OpenAt without any redo work left.
func (e *Engine) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.stopping)
	e.SetConcurrency(0)
	// Run every teardown step even when an earlier one fails — the segment
	// files in particular must be synced and closed regardless — and report
	// the first error.
	err := e.pool.FlushAll(nil)
	for _, l := range e.logs {
		if lerr := l.Close(); err == nil {
			err = lerr
		}
	}
	for _, sg := range e.segs {
		if serr := sg.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// Catalog exposes the schema catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// LockManager exposes the lock manager (for statistics and SLI control).
func (e *Engine) LockManager() *lockmgr.Manager { return e.lm }

// Profiler exposes the component-time profiler.
func (e *Engine) Profiler() *profiler.Profiler { return e.prof }

// BufferStats returns buffer pool counters.
func (e *Engine) BufferStats() buffer.StatsSnapshot { return e.pool.Stats() }

// LockStats returns a snapshot of the lock manager's counters.
func (e *Engine) LockStats() lockmgr.StatsSnapshot { return e.lm.Stats().Snapshot() }

// Committed returns the number of committed transactions.
func (e *Engine) Committed() uint64 { return e.committed.Load() }

// Aborted returns the number of aborted transactions (after retries).
func (e *Engine) Aborted() uint64 { return e.aborted.Load() }

// ELRAborts returns the number of aborting transactions whose locks were
// released at abort-record append — before the abort record was forced to
// disk — under EarlyLockReleaseAborts.
func (e *Engine) ELRAborts() uint64 { return e.elrAborts.Load() }

// UndoFailures returns the number of rollback undo actions that failed.
// Any non-zero value indicates in-memory corruption: an aborted
// transaction's effects could not be fully rolled back.
func (e *Engine) UndoFailures() uint64 { return e.undoFailures.Load() }

// CrossShardCommits returns the number of committed transactions whose
// participant set spanned more than one log shard, each paying the
// two-phase flush rendezvous (one commit record per touched shard) instead
// of a single-log group commit. The ratio against Committed is the
// cross-shard fraction of the workload — the knob that bounds how much of
// the sharded log's contention win a workload can actually collect.
func (e *Engine) CrossShardCommits() uint64 { return e.crossShardCommits.Load() }

// DurableLag returns the number of log BYTES appended but not yet durable —
// the depth of the commit pipeline at this instant. With byte-offset LSNs
// the lag is the distance between the log's virtual end and the durable
// watermark; record counts no longer exist (LSNs are ordered, not dense).
// It is zero whenever the flush daemon has caught up (always, between
// bursts) and grows with AsyncCommit under load.
func (e *Engine) DurableLag() uint64 {
	var lag uint64
	for _, l := range e.logs {
		last, durable := l.LastLSN(), l.DurableLSN()
		if last > durable {
			lag += uint64(last.Distance(durable))
		}
	}
	return lag
}

// SimulateCrash abandons the engine the way a machine failure would, for
// crash-recovery testing: the WAL's append buffer is discarded and its
// flusher stops without draining, in-flight durability acks fail, the
// segment files are closed without a final sync, and the agent workers shut
// down. Effects of transactions whose commit record never reached a
// completed sync — in particular transactions caught between pre-commit
// (locks released under EarlyLockRelease) and the flush — are lost; the data
// directory can then be reopened with OpenAt to exercise recovery rolling
// them back. On volatile engines it is just an abrupt Close.
func (e *Engine) SimulateCrash() {
	if e.closed.Swap(true) {
		return
	}
	close(e.stopping)
	for _, l := range e.logs {
		l.Crash()
	}
	for _, sg := range e.segs {
		sg.Crash()
	}
	e.SetConcurrency(0)
}

// SetSLI toggles Speculative Lock Inheritance at runtime.
func (e *Engine) SetSLI(enabled bool) { e.lm.SetSLI(enabled) }

// SLIEnabled reports whether SLI is active.
func (e *Engine) SLIEnabled() bool { return e.lm.SLIEnabled() }

// Concurrency returns the current number of agent workers.
func (e *Engine) Concurrency() int {
	e.workersMu.Lock()
	defer e.workersMu.Unlock()
	return len(e.workers)
}

// SetConcurrency resizes the agent pool to n workers. It blocks until
// removed workers have drained their current transaction.
func (e *Engine) SetConcurrency(n int) {
	if n < 0 {
		n = 0
	}
	e.workersMu.Lock()
	defer e.workersMu.Unlock()
	for len(e.workers) < n {
		w := &worker{
			agent: e.lm.NewAgent(),
			prof:  e.prof.NewHandle(),
			quit:  make(chan struct{}),
			done:  make(chan struct{}),
		}
		// Pipelining needs EarlyLockRelease: without it preCommit flushes
		// synchronously and never yields an ack to pipeline.
		if e.cfg.AsyncCommit && e.cfg.EarlyLockRelease {
			w.inflight = make(chan pendingCommit, e.cfg.PipelineDepth)
			w.ackerDone = make(chan struct{})
			w.ackProf = e.prof.NewHandle()
			go e.ackerLoop(w)
		}
		e.workers = append(e.workers, w)
		go e.workerLoop(w)
	}
	var stopped []*worker
	for len(e.workers) > n {
		w := e.workers[len(e.workers)-1]
		e.workers = e.workers[:len(e.workers)-1]
		close(w.quit)
		stopped = append(stopped, w)
	}
	for _, w := range stopped {
		<-w.done
	}
}

// workerLoop is one agent thread. Under AsyncCommit the worker only carries
// a transaction to its pre-commit (commit record appended, locks released)
// and hands the durability wait to its acker goroutine, immediately starting
// the next transaction — flush pipelining. The inflight channel's capacity
// bounds how many pre-committed transactions a worker may have outstanding;
// when the window is full the worker blocks here until acks drain.
func (e *Engine) workerLoop(w *worker) {
	defer func() {
		if w.inflight != nil {
			close(w.inflight)
			<-w.ackerDone
		}
		close(w.done)
	}()
	for {
		select {
		case <-w.quit:
			return
		case j := <-e.jobs:
			ack, err := e.runTxn(w, j.fn)
			switch {
			case ack == nil:
				j.done <- err
			case w.inflight != nil:
				w.inflight <- pendingCommit{ack: ack, done: j.done}
			default:
				j.done <- e.waitDurable(w.prof, ack)
			}
		}
	}
}

// ackerLoop drains a worker's in-flight pre-committed transactions in
// pre-commit order, waiting for each commit's durability ack and completing
// the Exec caller. Progress is guaranteed by the WAL's dedicated flusher:
// acks resolve without any engine worker having to call Flush.
func (e *Engine) ackerLoop(w *worker) {
	defer close(w.ackerDone)
	for p := range w.inflight {
		p.done <- e.waitDurable(w.ackProf, p.ack)
	}
}

// waitDurable blocks until the WAL acknowledges the commit as durable,
// attributing the wait to the LogFlush profiler category and settling the
// committed/aborted counters.
func (e *Engine) waitDurable(prof *profiler.Handle, ack <-chan error) error {
	start := time.Now()
	err := <-ack
	prof.Add(profiler.LogFlush, time.Since(start))
	if err == nil {
		e.committed.Add(1)
	} else {
		e.aborted.Add(1)
	}
	return err
}

// Exec runs fn as one transaction and returns once its outcome is decided
// and durable. If the engine has agent workers the transaction is queued to
// the pool (and benefits from SLI); otherwise it runs inline on the calling
// goroutine. Deadlock victims are retried up to MaxDeadlockRetries times. A
// non-nil error returned by fn aborts the transaction and is returned to the
// caller. Exec returns ErrClosed — rather than blocking forever — when the
// engine is closed before a worker picks the transaction up.
func (e *Engine) Exec(fn func(*Tx) error) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.Concurrency() == 0 {
		ack, err := e.runTxn(nil, fn)
		if err != nil {
			return err
		}
		if ack == nil {
			return nil
		}
		return e.waitDurable(nil, ack)
	}
	done := make(chan error, 1)
	select {
	case e.jobs <- job{fn: fn, done: done}:
		return <-done
	case <-e.stopping:
		return ErrClosed
	}
}

// ExecAsync runs fn as one transaction and returns a durable-ack future: the
// channel receives exactly one value — nil once the transaction has
// committed AND its commit record is durable, or the error that aborted it.
// Futures are acknowledged in commit (LSN) order, so a resolved future
// implies every transaction it could have depended on is durable too.
// ExecAsync never blocks the caller waiting for other transactions; the
// bounded pipelining window applies to the agent workers instead.
func (e *Engine) ExecAsync(fn func(*Tx) error) <-chan error {
	done := make(chan error, 1)
	if e.closed.Load() {
		done <- ErrClosed
		return done
	}
	if e.Concurrency() == 0 {
		ack, err := e.runTxn(nil, fn)
		if err != nil {
			done <- err
		} else if ack == nil {
			done <- nil
		} else {
			go func() { done <- e.waitDurable(nil, ack) }()
		}
		return done
	}
	go func() {
		select {
		case e.jobs <- job{fn: fn, done: done}:
		case <-e.stopping:
			done <- ErrClosed
		}
	}()
	return done
}

// runTxn executes fn with deadlock retries on the given worker (nil for
// inline). On success it returns the transaction's durability ack channel:
// nil means the transaction is already fully complete (read-only, or the
// flush happened synchronously); non-nil means the commit record is appended
// and locks are released, but the caller must wait for the ack before
// acknowledging the commit.
func (e *Engine) runTxn(w *worker, fn func(*Tx) error) (<-chan error, error) {
	var lastErr error
	for attempt := 0; attempt <= e.cfg.MaxDeadlockRetries; attempt++ {
		ack, err := e.runOnce(w, fn)
		if err == nil {
			if ack == nil {
				e.committed.Add(1)
			}
			return ack, nil
		}
		lastErr = err
		if !errors.Is(err, lockmgr.ErrDeadlock) && !errors.Is(err, lockmgr.ErrLockTimeout) {
			e.aborted.Add(1)
			return nil, err
		}
	}
	e.aborted.Add(1)
	return nil, lastErr
}

func (e *Engine) runOnce(w *worker, fn func(*Tx) error) (<-chan error, error) {
	// Hold the checkpoint gate for the duration of the attempt: Checkpoint
	// waits for in-flight transactions and blocks new ones, so its snapshot
	// is action-consistent.
	e.execGate.RLock()
	defer e.execGate.RUnlock()
	var agent *lockmgr.Agent
	var prof *profiler.Handle
	if w != nil {
		agent, prof = w.agent, w.prof
	}
	start := time.Now()
	before := prof.Snapshot()

	tx := &Tx{
		e:     e,
		xid:   e.nextXID.Add(1),
		owner: e.lm.NewOwner(agent, prof),
		prof:  prof,
	}
	if e.nShards > 1 {
		tx.shardLast = make([]wal.LSN, e.nShards)
	}
	var ack <-chan error
	err := fn(tx)
	if err == nil {
		ack, err = tx.preCommit()
	} else {
		tx.abort()
	}

	// Attribute the transaction-body time not already accounted to a
	// component as "other work" (TxWork), reproducing the figures' "work
	// other" category. The durable-ack wait (if any) happens after this
	// window, so under ELR neither lock hold time nor TxWork includes the
	// flush latency.
	wall := time.Since(start)
	var delta profiler.Breakdown
	if prof != nil {
		delta = prof.Snapshot().Sub(before)
		accounted := time.Duration(0)
		for c := profiler.Category(0); c < profiler.Category(len(delta)); c++ {
			accounted += delta.Get(c)
		}
		if wall > accounted {
			prof.Add(profiler.TxWork, wall-accounted)
			delta[profiler.TxWork] += wall - accounted
		}
	}
	// The observability completion hook (duration histogram, slow-tx
	// tracer). One atomic pointer load when no observer is installed; the
	// hook itself is wait-free unless the attempt enters the slow set — no
	// lock is added to the commit path either way.
	if hook := e.txHook.Load(); hook != nil {
		(*hook)(TxCompletion{
			XID:       tx.xid,
			Start:     start,
			Duration:  wall,
			Committed: err == nil,
			Breakdown: delta,
		})
	}
	return ack, err
}

// index pairs catalog metadata with its B+tree. Non-unique indexes append
// the RID to the key to keep entries distinct.
type index struct {
	meta *catalog.Index // nil for primary-key indexes
	tree *indexTree
}

// CreateTable creates a table with the given schema and primary key. It must
// be called before any transaction uses the table; DDL is not transactional.
// On durable engines the DDL is logged and forced to disk before returning.
func (e *Engine) CreateTable(name string, schema *record.Schema, primaryKey []string) error {
	if e.closed.Load() {
		return ErrClosed
	}
	tbl, err := e.cat.CreateTable(name, schema, primaryKey)
	if err != nil {
		return err
	}
	e.installTable(tbl)
	if err := e.logDDL(wal.RecCreateTable, catalog.TableMetaOf(tbl).Encode()); err != nil {
		// The DDL record could not be made durable: undo the in-memory
		// creation so the failed call leaves no half-created table that a
		// restart would not know about.
		e.cat.RemoveTable(tbl.ID)
		e.mu.Lock()
		delete(e.heaps, tbl.ID)
		delete(e.pkTrees, tbl.ID)
		e.mu.Unlock()
		return err
	}
	return nil
}

// installTable wires a catalog table descriptor into the engine's runtime
// structures (heap file and primary-key tree).
func (e *Engine) installTable(tbl *catalog.Table) {
	e.mu.Lock()
	e.heaps[tbl.ID] = heap.NewFile(tbl.ID, e.pool)
	e.pkTrees[tbl.ID] = &index{tree: newIndexTree()}
	e.mu.Unlock()
}

// CreateIndex creates a secondary index on an existing (empty or populated)
// table. Existing rows are indexed immediately. On durable engines the DDL
// is logged and forced to disk before returning.
func (e *Engine) CreateIndex(name, table string, columns []string, unique bool) error {
	if e.closed.Load() {
		return ErrClosed
	}
	ix, err := e.cat.CreateIndex(name, table, columns, unique)
	if err != nil {
		return err
	}
	if err := e.installIndex(ix); err == nil {
		err = e.logDDL(wal.RecCreateIndex, catalog.IndexMetaOf(ix).Encode())
	}
	if err != nil {
		e.cat.RemoveIndex(ix.Name)
		e.mu.Lock()
		delete(e.secs, ix.Name)
		e.mu.Unlock()
		return err
	}
	return nil
}

// installIndex builds the runtime B+tree for a catalog index descriptor and
// backfills it from the table's existing rows.
func (e *Engine) installIndex(ix *catalog.Index) error {
	tbl, _ := e.cat.TableByID(ix.TableID)
	idx := &index{meta: ix, tree: newIndexTree()}
	e.mu.Lock()
	e.secs[ix.Name] = idx
	hf := e.heaps[ix.TableID]
	e.mu.Unlock()
	var err error
	serr := hf.Scan(nil, func(rid heap.RID, rec []byte) bool {
		row, derr := tbl.Schema.Decode(rec)
		if derr != nil {
			err = derr
			return false
		}
		idx.tree.insert(indexKey(ix.KeyOf(row), rid, ix.Unique), rid)
		return true
	})
	if err == nil {
		err = serr
	}
	return err
}

// logDDL appends a DDL record and forces it to disk on durable engines; DDL
// must be durable before data records referencing it can commit. Volatile
// engines skip DDL logging entirely, matching the original in-memory
// behavior. DDL always routes to shard 0, and sharded recovery replays
// shard 0 before the others, so replayed data records never reference a
// table whose DDL has not been applied yet.
func (e *Engine) logDDL(typ wal.RecType, meta []byte) error {
	if len(e.segs) == 0 {
		return nil
	}
	lsn, err := e.log.Append(wal.Record{Type: typ, After: meta})
	if err != nil {
		return err
	}
	return e.log.Flush(lsn)
}

// table bundle lookups used by Tx.
type tableRuntime struct {
	meta *catalog.Table
	hf   *heap.File
	pk   *index
	secs []*index
}

func (e *Engine) tableRuntime(name string) (*tableRuntime, error) {
	tbl, ok := e.cat.Table(name)
	if !ok {
		return nil, fmt.Errorf("core: unknown table %q", name)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	rt := &tableRuntime{meta: tbl, hf: e.heaps[tbl.ID], pk: e.pkTrees[tbl.ID]}
	for _, ix := range e.cat.TableIndexes(tbl.ID) {
		rt.secs = append(rt.secs, e.secs[ix.Name])
	}
	return rt, nil
}
