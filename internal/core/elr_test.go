package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"slidb/internal/profiler"
	"slidb/internal/record"
)

func openELREngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	e := Open(cfg)
	t.Cleanup(func() { e.Close() })
	schema := record.MustSchema(
		record.Column{Name: "id", Type: record.TypeInt},
		record.Column{Name: "v", Type: record.TypeInt},
	)
	if err := e.CreateTable("t", schema, []string{"id"}); err != nil {
		t.Fatal(err)
	}
	if err := e.Exec(func(tx *Tx) error {
		return tx.Insert("t", record.Row{record.Int(1), record.Int(0)})
	}); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestELRReaderObservesPreCommittedData pins the ELR anomaly window: with a
// long group-commit window, a writer's locks are released at commit-record
// append, so a reader sees the new value while the writer's durable ack is
// still pending. Without ELR the reader would block behind the writer's X
// lock for the whole window.
func TestELRReaderObservesPreCommittedData(t *testing.T) {
	e := openELREngine(t, Config{
		Agents:            2,
		EarlyLockRelease:  true,
		AsyncCommit:       true,
		GroupCommitWindow: 300 * time.Millisecond,
	})

	writerDone := e.ExecAsync(func(tx *Tx) error {
		return tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
			r[1] = record.Int(42)
			return r, nil
		})
	})

	// The reader is read-only: it never appends a log record, so it resolves
	// without waiting for any flush. It must observe the pre-committed value
	// quickly — the writer's X lock was released at pre-commit.
	var observed int64
	readStart := time.Now()
	deadline := time.After(5 * time.Second)
	for observed != 42 {
		select {
		case <-deadline:
			t.Fatalf("reader never observed pre-committed value (last saw %d)", observed)
		default:
		}
		if err := e.Exec(func(tx *Tx) error {
			row, ok, err := tx.Get("t", record.Int(1))
			if err != nil || !ok {
				return err
			}
			observed = row[1].AsInt()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	readElapsed := time.Since(readStart)

	// The writer's commit must still be inside the group-commit window: its
	// durable ack is pending even though its data is already visible.
	if readElapsed < 250*time.Millisecond {
		select {
		case err := <-writerDone:
			t.Fatalf("writer durable ack resolved before the group-commit window elapsed (err=%v)", err)
		default:
		}
	}
	if err := <-writerDone; err != nil {
		t.Fatalf("writer durable ack: %v", err)
	}
	if got := e.LockStats().ELRReleases; got == 0 {
		t.Fatal("EarlyLockRelease active but no early releases counted")
	}
}

// TestELRLockHoldExcludesFlushWait asserts the acceptance property: with ELR
// on, no transaction holds its locks across a WAL fsync. N conflicting
// writers serialize on one row's X lock; without ELR the lock is held across
// each LogFlushDelay, so the run needs at least N*delay. With ELR the lock
// is held only for the in-memory part, flushes batch in the background, and
// the whole run finishes in a small multiple of one delay. The flush wait
// still happens — it just lands in the LogFlush profiler category instead of
// inside the lock hold window.
func TestELRLockHoldExcludesFlushWait(t *testing.T) {
	const (
		n     = 20
		delay = 30 * time.Millisecond
	)
	e := openELREngine(t, Config{
		Agents:           4,
		EarlyLockRelease: true,
		AsyncCommit:      true,
		LogFlushDelay:    delay,
		Profile:          true,
	})

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- e.Exec(func(tx *Tx) error {
				return tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
					r[1] = record.Int(r[1].AsInt() + 1)
					return r, nil
				})
			})
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)

	// Serialized lock-held flushes would need n*delay = 600ms. Allow a wide
	// margin for slow CI while still distinguishing the two regimes.
	if elapsed >= time.Duration(n)*delay {
		t.Errorf("run took %v, want well under %v (locks appear to be held across flushes)", elapsed, time.Duration(n)*delay)
	}
	b := e.Profiler().Aggregate()
	if b.Get(profiler.LogFlush) == 0 {
		t.Error("no time attributed to LogFlush; the flush wait went unaccounted")
	}
	if got := e.LockStats().ELRReleases; got < n {
		t.Errorf("ELRReleases = %d, want >= %d", got, n)
	}
	var final int64
	if err := e.Exec(func(tx *Tx) error {
		row, _, err := tx.Get("t", record.Int(1))
		final = row[1].AsInt()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if final != n {
		t.Fatalf("final value = %d, want %d", final, n)
	}
}

// TestExecAsyncAckOrderingUnderLoad hammers ExecAsync from many goroutines
// with conflicting increments (run under -race). Every future must resolve
// nil, the final value must count every ack, and a resolved future implies
// durability: after each ack the engine's durable lag cannot exceed the
// records appended after that commit.
func TestExecAsyncAckOrderingUnderLoad(t *testing.T) {
	const writers, perWriter = 8, 25
	e := openELREngine(t, Config{
		Agents:            4,
		EarlyLockRelease:  true,
		AsyncCommit:       true,
		PipelineDepth:     8,
		GroupCommitWindow: 200 * time.Microsecond,
		Profile:           true,
	})

	var pending [writers * perWriter]<-chan error
	var idx atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				fut := e.ExecAsync(func(tx *Tx) error {
					return tx.Update("t", []record.Value{record.Int(1)}, func(r record.Row) (record.Row, error) {
						r[1] = record.Int(r[1].AsInt() + 1)
						return r, nil
					})
				})
				pending[idx.Add(1)-1] = fut
			}
		}()
	}
	wg.Wait()
	for i, fut := range pending {
		if err := <-fut; err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	var final int64
	if err := e.Exec(func(tx *Tx) error {
		row, _, err := tx.Get("t", record.Int(1))
		final = row[1].AsInt()
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if want := int64(writers * perWriter); final != want {
		t.Fatalf("final value = %d, want %d", final, want)
	}
	if e.Committed() < writers*perWriter {
		t.Fatalf("committed = %d, want >= %d", e.Committed(), writers*perWriter)
	}
}

// TestExecDoesNotHangOnConcurrentClose is the regression test for the
// Exec/Close race: Exec used to check closed and then block forever sending
// on the jobs channel if Close drained the workers in between. Now it must
// return ErrClosed (or complete normally if a worker picked it up first).
func TestExecDoesNotHangOnConcurrentClose(t *testing.T) {
	e := Open(Config{Agents: 1})
	schema := record.MustSchema(record.Column{Name: "id", Type: record.TypeInt})
	if err := e.CreateTable("t", schema, []string{"id"}); err != nil {
		t.Fatal(err)
	}

	// Occupy the single worker so further Execs block on the jobs channel.
	blockerStarted := make(chan struct{})
	release := make(chan struct{})
	blockerDone := make(chan error, 1)
	go func() {
		blockerDone <- e.Exec(func(tx *Tx) error {
			close(blockerStarted)
			<-release
			return nil
		})
	}()
	<-blockerStarted

	// This Exec cannot be picked up: the only worker is busy.
	stuck := make(chan error, 1)
	go func() {
		stuck <- e.Exec(func(tx *Tx) error { return nil })
	}()

	// Close concurrently, then release the blocker so the worker can drain.
	closeDone := make(chan error, 1)
	go func() { closeDone <- e.Close() }()
	time.Sleep(10 * time.Millisecond)
	close(release)

	for name, ch := range map[string]chan error{"stuck Exec": stuck, "blocker": blockerDone, "Close": closeDone} {
		select {
		case err := <-ch:
			if name == "stuck Exec" && err != nil && !errors.Is(err, ErrClosed) {
				t.Fatalf("%s returned unexpected error: %v", name, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s did not return within 5s (Exec/Close race)", name)
		}
	}
	// Exec on the closed engine fails fast.
	if err := e.Exec(func(tx *Tx) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Exec after Close = %v, want ErrClosed", err)
	}
}
