package figures

import (
	"fmt"

	"slidb/internal/profiler"
)

// Figure1 reproduces Figure 1: the fraction of transaction CPU time spent in
// the lock manager (useful work vs contention) as offered load grows, for
// the NDBB mix with SLI disabled.
func Figure1(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Figure 1: lock manager overhead and contention vs load (NDBB mix, baseline)",
		Columns: []string{"agents", "tps", "lockmgr-work-%", "lockmgr-contention-%", "other-%"},
	}
	for _, agents := range o.AgentCounts {
		res, err := o.measure(WLNDBBMix, false, agents)
		if err != nil {
			return t, err
		}
		s := res.Breakdown.GroupedShares()
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d", agents),
			Values: []float64{
				float64(agents), res.Throughput,
				100 * s.LockMgrWork, 100 * s.LockMgrContention,
				100 * (s.OtherWork + s.OtherContention + s.SLI),
			},
		})
	}
	return t, nil
}

// breakdownFigure implements Figures 6 and 10: per-workload execution-time
// breakdowns at high load, with SLI off (Figure 6) or on (Figure 10).
func breakdownFigure(o Options, sli bool, title string) (Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   title,
		Columns: []string{"tps", "lockmgr-work-%", "lockmgr-cont-%", "sli-%", "other-work-%", "other-cont-%", "log-flush-%"},
	}
	for _, wl := range o.selectedWorkloads() {
		res, err := o.measure(wl, sli, o.PeakAgents)
		if err != nil {
			return t, err
		}
		s := res.Breakdown.GroupedShares()
		t.Rows = append(t.Rows, Row{
			Label: wl,
			Values: []float64{
				res.Throughput,
				100 * s.LockMgrWork, 100 * s.LockMgrContention, 100 * s.SLI,
				100 * s.OtherWork, 100 * s.OtherContention, 100 * s.LogFlush,
			},
		})
	}
	return t, nil
}

// Figure6 reproduces Figure 6: baseline work/contention breakdowns at peak
// load for every transaction and mix.
func Figure6(o Options) (Table, error) {
	return breakdownFigure(o, false, "Figure 6: execution time breakdown at peak load (baseline, SLI off)")
}

// Figure10 reproduces Figure 10: the same breakdowns with SLI enabled on a
// fully loaded system.
func Figure10(o Options) (Table, error) {
	return breakdownFigure(o, true, "Figure 10: execution time breakdown under full load with SLI enabled")
}

// Figure7 reproduces Figure 7: throughput as load increases, for the NDBB
// mix, TPC-B and TPC-C Payment (baseline system).
func Figure7(o Options) (Table, error) {
	o = o.withDefaults()
	workloads := []string{WLNDBBMix, WLTPCB, WLPayment}
	t := Table{
		Title:   "Figure 7: throughput vs offered load (baseline, SLI off)",
		Columns: append([]string{"agents"}, workloads...),
	}
	for _, agents := range o.AgentCounts {
		row := Row{Label: fmt.Sprintf("%d", agents), Values: []float64{float64(agents)}}
		for _, wl := range workloads {
			res, err := o.measure(wl, false, agents)
			if err != nil {
				return t, err
			}
			row.Values = append(row.Values, res.Throughput)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Figure8 reproduces Figure 8: the breakdown of lock acquisitions by
// SLI-related characteristics (hot/cold × heritable/row/exclusive) and the
// average number of locks acquired per transaction.
func Figure8(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Figure 8: lock acquisition breakdown by SLI-related characteristics (baseline)",
		Columns: []string{"locks-per-xct", "hot-heritable-%", "hot-other-%", "cold-heritable-%", "cold-other-%", "row-locks-%"},
	}
	for _, wl := range o.selectedWorkloads() {
		res, err := o.measure(wl, false, o.PeakAgents)
		if err != nil {
			return t, err
		}
		ls := res.LockStats
		total := float64(ls.TotalAcquires())
		if total == 0 {
			total = 1
		}
		t.Rows = append(t.Rows, Row{
			Label: wl,
			Values: []float64{
				ls.LocksPerTransaction(),
				100 * float64(ls.HotHeritable) / total,
				100 * float64(ls.HotNonHeritable) / total,
				100 * float64(ls.ColdHeritable) / total,
				100 * float64(ls.ColdOther) / total,
				100 * float64(ls.AcquiresByLevel[3]) / total,
			},
		})
	}
	return t, nil
}

// Figure9 reproduces Figure 9: the outcomes of locks SLI chose to pass
// between transactions — reclaimed (used), invalidated, or discarded unused.
func Figure9(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Figure 9: outcomes of SLI-inherited locks (SLI on)",
		Columns: []string{"passed-per-1k-xct", "reclaimed-%", "invalidated-%", "discarded-%"},
	}
	for _, wl := range o.selectedWorkloads() {
		res, err := o.measure(wl, true, o.PeakAgents)
		if err != nil {
			return t, err
		}
		ls := res.LockStats
		resolved := float64(ls.SLIReclaimed + ls.SLIInvalidated + ls.SLIDiscarded)
		if resolved == 0 {
			resolved = 1
		}
		perKXct := 0.0
		if ls.Transactions > 0 {
			perKXct = 1000 * float64(ls.SLIPassed) / float64(ls.Transactions)
		}
		t.Rows = append(t.Rows, Row{
			Label: wl,
			Values: []float64{
				perKXct,
				100 * float64(ls.SLIReclaimed) / resolved,
				100 * float64(ls.SLIInvalidated) / resolved,
				100 * float64(ls.SLIDiscarded) / resolved,
			},
		})
	}
	return t, nil
}

// Figure11 reproduces Figure 11: throughput of SLI relative to the baseline
// for every workload at peak load (the paper reports 10-40% improvements for
// short transactions and ~0% for the large TPC-C transactions).
func Figure11(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Figure 11: throughput improvement due to SLI at peak load",
		Columns: []string{"baseline-tps", "sli-tps", "speedup-%"},
	}
	for _, wl := range o.selectedWorkloads() {
		base, err := o.measure(wl, false, o.PeakAgents)
		if err != nil {
			return t, err
		}
		withSLI, err := o.measure(wl, true, o.PeakAgents)
		if err != nil {
			return t, err
		}
		speedup := 0.0
		if base.Throughput > 0 {
			speedup = 100 * (withSLI.Throughput - base.Throughput) / base.Throughput
		}
		t.Rows = append(t.Rows, Row{
			Label:  wl,
			Values: []float64{base.Throughput, withSLI.Throughput, speedup},
		})
	}
	return t, nil
}

// LockManagerShare is a convenience helper returning the lock manager's
// total share (work + contention) of a breakdown, used by tests and benches.
func LockManagerShare(b profiler.Breakdown) float64 {
	s := b.GroupedShares()
	return s.LockMgrWork + s.LockMgrContention
}

// Figure returns the named figure (1, 6, 7, 8, 9, 10 or 11).
func Figure(n int, o Options) (Table, error) {
	switch n {
	case 1:
		return Figure1(o)
	case 6:
		return Figure6(o)
	case 7:
		return Figure7(o)
	case 8:
		return Figure8(o)
	case 9:
		return Figure9(o)
	case 10:
		return Figure10(o)
	case 11:
		return Figure11(o)
	default:
		return Table{}, fmt.Errorf("figures: the paper has no reproducible figure %d (use 1, 6, 7, 8, 9, 10 or 11)", n)
	}
}
