package figures

import (
	"strings"
	"testing"
	"time"
)

// tinyOptions keeps figure smoke tests fast.
func tinyOptions() Options {
	o := DefaultOptions().Quick()
	o.AgentCounts = []int{1, 4}
	o.PeakAgents = 4
	o.Duration = 80 * time.Millisecond
	o.Warmup = 10 * time.Millisecond
	o.TM1Subscribers = 300
	o.TPCBBranches = 2
	o.TPCBAccountsPerBranch = 100
	o.Workloads = []string{WLGetSub, WLTPCB}
	return o
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o = o.withDefaults()
	if o.PeakAgents <= 0 || o.Duration <= 0 || len(o.AgentCounts) == 0 || o.TM1Subscribers <= 0 {
		t.Fatalf("defaults not applied: %+v", o)
	}
	if len(AllWorkloads()) < 10 {
		t.Fatal("workload list unexpectedly short")
	}
	if len(ShortWorkloads()) == 0 || len(Ablations()) != 10 {
		t.Fatal("helper listings wrong")
	}
	p := PaperOptions()
	if p.PeakAgents != 64 || p.IODelay == 0 {
		t.Fatalf("paper options wrong: %+v", p)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    []Row{{Label: "x", Values: []float64{1, 2}}},
	}
	s := tbl.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "x") {
		t.Fatalf("rendering missing pieces: %q", s)
	}
	if tbl.Value("x", "b") != 2 {
		t.Fatal("Value lookup wrong")
	}
	if tbl.Value("x", "missing") != 0 || tbl.Value("missing", "a") != 0 {
		t.Fatal("Value should return 0 for unknown label/column")
	}
}

func TestFigure1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	o := tinyOptions()
	tbl, err := Figure1(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(o.AgentCounts) {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), len(o.AgentCounts))
	}
	for _, r := range tbl.Rows {
		if r.Values[1] <= 0 {
			t.Fatalf("agent count %s produced no throughput", r.Label)
		}
	}
}

func TestFigure11AndBreakdownSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	o := tinyOptions()
	for _, n := range []int{6, 8, 9, 10, 11} {
		tbl, err := Figure(n, o)
		if err != nil {
			t.Fatalf("figure %d: %v", n, err)
		}
		if len(tbl.Rows) != len(o.Workloads) {
			t.Fatalf("figure %d rows = %d, want %d", n, len(tbl.Rows), len(o.Workloads))
		}
	}
	if _, err := Figure(3, o); err == nil {
		t.Fatal("figure 3 should be rejected")
	}
}

func TestFigure7Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation is slow")
	}
	o := tinyOptions()
	tbl, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Columns) != 4 {
		t.Fatalf("columns = %v", tbl.Columns)
	}
	if len(tbl.Rows) != len(o.AgentCounts) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAblationsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	o := tinyOptions()
	for _, name := range []string{"levels", "bimodal", "roving-hotspot", "sli-elr"} {
		tbl, err := Ablation(name, o)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) < 2 {
			t.Fatalf("%s produced %d rows", name, len(tbl.Rows))
		}
	}
	if _, err := Ablation("nope", o); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

// TestAblationLogTailSmoke runs the log-tail grid durably (real segment
// files) at tiny scale: all eight cells must produce rows, and the durable
// vectored flush path must stay near one physical write per flush cycle.
func TestAblationLogTailSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	o := tinyOptions()
	o.PeakAgents = 2
	o.DataDir = t.TempDir()
	tbl, err := AblationLogTail(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("log-tail grid produced %d rows, want 8", len(tbl.Rows))
	}
	wpcCol := -1
	for i, c := range tbl.Columns {
		if c == "writes/cycle" {
			wpcCol = i
		}
	}
	if wpcCol < 0 {
		t.Fatalf("no writes/cycle column in %v", tbl.Columns)
	}
	for _, r := range tbl.Rows {
		wpc := r.Values[wpcCol]
		// Exactly one vectored submission per data-carrying cycle, plus a
		// handful of segment creations over a short run.
		if wpc <= 0 || wpc > 1.5 {
			t.Fatalf("%s: writes/cycle = %.2f, want ~1 on the vectored durable path", r.Label, wpc)
		}
	}
}

func TestBuildEngineRejectsBadKeys(t *testing.T) {
	o := tinyOptions()
	if _, _, err := o.buildEngine("garbage", false, 1); err == nil {
		t.Fatal("bad key accepted")
	}
	if _, _, err := o.buildEngine("nosuch/benchmark", false, 1); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := o.measure("ndbb/nosuchtx", false, 1); err == nil {
		t.Fatal("unknown transaction accepted")
	}
}
