// Package figures regenerates the paper's evaluation figures. Each FigureN
// function builds the appropriate engine(s) and dataset, drives the workload
// the paper uses for that figure, and returns a Table whose rows correspond
// to the bars or series of the figure. The cmd/slibench CLI prints these
// tables, and the repository's top-level benchmarks (bench_test.go) report
// the headline numbers as benchmark metrics.
//
// Absolute numbers will differ from the paper's Niagara II / Shore-MT
// results; what these reproductions preserve is the shape of each figure
// (see EXPERIMENTS.md).
package figures

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"slidb/internal/bench/tm1"
	"slidb/internal/bench/tpcb"
	"slidb/internal/bench/tpcc"
	"slidb/internal/core"
	"slidb/internal/workload"
)

// Options controls dataset scale and measurement length for all figures.
type Options struct {
	// AgentCounts is the load sweep (the paper's "hardware contexts") used by
	// Figures 1 and 7.
	AgentCounts []int
	// PeakAgents is the fully loaded configuration used by Figures 6, 8, 9,
	// 10 and 11 (the paper uses 64).
	PeakAgents int
	// Duration is the measured interval per data point.
	Duration time.Duration
	// Warmup precedes each measurement.
	Warmup time.Duration
	// TM1Subscribers, TPCBBranches/TPCBAccountsPerBranch and TPCCWarehouses
	// size the datasets.
	TM1Subscribers        int
	TPCBBranches          int
	TPCBAccountsPerBranch int
	TPCCWarehouses        int
	// IODelay is the artificial per-I/O latency for the disk-resident
	// workloads (TPC-B, TPC-C); the paper uses 6ms. NDBB stays in memory.
	IODelay time.Duration
	// BufferFrames sizes the buffer pool.
	BufferFrames int
	// Workloads optionally restricts the per-transaction figures (6, 8, 9,
	// 10, 11) to a subset of workload keys; nil means all.
	Workloads []string
	// Seed seeds workload randomness.
	Seed int64
	// DataDir, when non-empty, makes every engine durable (core.OpenAt
	// rooted at a per-run subdirectory): commits pay a real fsync and the
	// run leaves a recoverable data directory behind. Empty keeps the
	// paper's in-memory configuration.
	DataDir string
	// EarlyLockRelease and AsyncCommit enable the scalable commit pipeline
	// (locks released at commit-record append; agents pipeline flush waits).
	// EarlyLockReleaseAborts applies the release-at-append policy to the
	// abort path independently (see core.Config).
	EarlyLockRelease       bool
	EarlyLockReleaseAborts bool
	AsyncCommit            bool
	// GroupCommitWindow and LogFlushDelay configure the engine's commit
	// force cost (see core.Config). Non-zero values make the fsync latency
	// that ELR removes from the lock hold time visible on in-memory engines.
	GroupCommitWindow time.Duration
	LogFlushDelay     time.Duration
	// MutexLog selects the legacy centralized WAL append path instead of the
	// consolidated reserve/fill/publish log buffer (the baseline arm of the
	// log-buffer ablation). LatchedLog keeps the consolidated buffer but
	// reserves under the PR-3 latch instead of the fetch-and-add (the
	// baseline arm of the log-lsn ablation).
	MutexLog   bool
	LatchedLog bool
	// AdaptiveGroupCommit replaces the fixed group-commit window with the
	// self-tuning controller, bounded by GroupCommitMin/GroupCommitMax
	// (engine defaults apply when zero). StrictFence keeps the in-order
	// spin publish fence instead of the relaxed completion-tracking fence
	// (the baseline arm of the log-tail ablation). PreallocateSegments
	// preallocates durable segment files at creation (see core.Config).
	AdaptiveGroupCommit bool
	GroupCommitMin      time.Duration
	GroupCommitMax      time.Duration
	StrictFence         bool
	PreallocateSegments bool
	// LogShards splits the write-ahead log into that many independent
	// virtual logs (see core.Config.LogShards); 0 or 1 keeps the single
	// log. AutoSizeLogBuffer lets each shard's ring grow itself from the
	// buffer-full-wait profiler signal instead of staying at the configured
	// size (see core.Config.AutoSizeLogBuffer).
	LogShards         int
	AutoSizeLogBuffer bool
	// Clients is the number of closed-loop client goroutines driving the
	// engine; zero means one per agent. Overcommitting clients (> agents)
	// is required to exercise AsyncCommit's flush pipelining: with exactly
	// one blocking client per agent the per-worker in-flight window can
	// never hold more than one transaction.
	Clients int
	// AbortRate, when positive, makes that fraction of generated
	// transactions perform their full body and then abort, exercising the
	// compensation-logged rollback path (see workload.WithAbortRate). Zero
	// keeps every transaction committing.
	AbortRate float64
	// OnEngine, when non-nil, is called with every engine the sweep builds,
	// after its dataset is loaded and before the workload starts. Figure
	// sweeps open and close many engines; the hook lets a harness attach
	// per-engine state — cmd/slibench uses it to point its -metricsaddr
	// exporter at whichever engine is currently measuring.
	OnEngine func(*core.Engine)
}

// DefaultOptions returns a laptop-scale configuration: small datasets and
// sub-second measurements, suitable for tests and quick runs.
func DefaultOptions() Options {
	return Options{
		AgentCounts:           []int{1, 2, 4, 8, 16, 32},
		PeakAgents:            16,
		Duration:              250 * time.Millisecond,
		Warmup:                50 * time.Millisecond,
		TM1Subscribers:        2000,
		TPCBBranches:          10,
		TPCBAccountsPerBranch: 500,
		TPCCWarehouses:        2,
		IODelay:               0,
		BufferFrames:          8192,
		Seed:                  1,
	}
}

// PaperOptions returns a configuration closer to the paper's setup: larger
// datasets, 64 "contexts", multi-second measurements and the 6 ms simulated
// I/O penalty for the disk-resident workloads. Expect a full figure sweep to
// take tens of minutes.
func PaperOptions() Options {
	o := DefaultOptions()
	o.AgentCounts = []int{1, 2, 4, 8, 16, 24, 32, 40, 48, 56, 64}
	o.PeakAgents = 64
	o.Duration = 10 * time.Second
	o.Warmup = 2 * time.Second
	o.TM1Subscribers = 100000
	o.TPCBBranches = 100
	o.TPCBAccountsPerBranch = 10000
	o.TPCCWarehouses = 8
	o.IODelay = 6 * time.Millisecond
	return o
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if len(o.AgentCounts) == 0 {
		o.AgentCounts = d.AgentCounts
	}
	if o.PeakAgents <= 0 {
		o.PeakAgents = d.PeakAgents
	}
	if o.Duration <= 0 {
		o.Duration = d.Duration
	}
	if o.TM1Subscribers <= 0 {
		o.TM1Subscribers = d.TM1Subscribers
	}
	if o.TPCBBranches <= 0 {
		o.TPCBBranches = d.TPCBBranches
	}
	if o.TPCBAccountsPerBranch <= 0 {
		o.TPCBAccountsPerBranch = d.TPCBAccountsPerBranch
	}
	if o.TPCCWarehouses <= 0 {
		o.TPCCWarehouses = d.TPCCWarehouses
	}
	if o.BufferFrames <= 0 {
		o.BufferFrames = d.BufferFrames
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Row is one bar or series point of a figure.
type Row struct {
	// Label names the bar/series point (e.g. a transaction name or an agent
	// count).
	Label string
	// Values holds the numeric columns.
	Values []float64
}

// Table is the data behind one figure.
type Table struct {
	// Title describes the figure.
	Title string
	// Columns names the value columns (not counting the label).
	Columns []string
	// Rows are the figure's bars or points.
	Rows []Row
}

// String renders the table as aligned plain text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%-28s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(&b, "%18s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-28s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, "%18.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Value returns the value of the named column in the row with the given
// label, or 0 if not present.
func (t Table) Value(label, column string) float64 {
	ci := -1
	for i, c := range t.Columns {
		if c == column {
			ci = i
		}
	}
	if ci < 0 {
		return 0
	}
	for _, r := range t.Rows {
		if r.Label == label && ci < len(r.Values) {
			return r.Values[ci]
		}
	}
	return 0
}

// Workload keys used across the per-transaction figures; they combine the
// benchmark name and transaction/mix name.
const (
	WLNDBBMix     = "ndbb/mix"
	WLNDBBForward = "ndbb/forward"
	WLGetSub      = "ndbb/getSub"
	WLGetDest     = "ndbb/getDest"
	WLGetAccess   = "ndbb/getAccess"
	WLUpdateSub   = "ndbb/updateSub"
	WLUpdateLoc   = "ndbb/updateLoc"
	WLTPCB        = "tpcb/tpcb"
	WLNewOrder    = "tpcc/NewOrder"
	WLPayment     = "tpcc/Payment"
	WLOrderStatus = "tpcc/OrderStatus"
	WLDelivery    = "tpcc/Delivery"
	WLStockLevel  = "tpcc/StockLevel"
	WLSmallMix    = "tpcc/small-mix"
	WLTPCCMix     = "tpcc/tpcc-mix"
)

// AllWorkloads lists every workload key in the order the paper's figures
// present them.
func AllWorkloads() []string {
	return []string{
		WLGetSub, WLGetDest, WLGetAccess, WLUpdateSub, WLUpdateLoc,
		WLNDBBForward, WLNDBBMix,
		WLTPCB,
		WLPayment, WLNewOrder, WLOrderStatus, WLDelivery, WLStockLevel,
		WLSmallMix, WLTPCCMix,
	}
}

// ShortWorkloads is the subset of workloads dominated by short transactions
// (the ones the paper expects SLI to speed up by 10-40%).
func ShortWorkloads() []string {
	return []string{WLGetSub, WLGetDest, WLGetAccess, WLUpdateSub, WLUpdateLoc, WLNDBBForward, WLNDBBMix, WLTPCB, WLPayment}
}

func (o Options) selectedWorkloads() []string {
	if len(o.Workloads) == 0 {
		return AllWorkloads()
	}
	return o.Workloads
}

// buildEngine creates an engine for the given workload key with SLI on or
// off, loads its dataset and returns the engine plus a workload generator.
func (o Options) buildEngine(key string, sli bool, agents int) (*core.Engine, workload.Generator, error) {
	parts := strings.SplitN(key, "/", 2)
	if len(parts) != 2 {
		return nil, nil, fmt.Errorf("figures: bad workload key %q", key)
	}
	benchName, txName := parts[0], parts[1]
	cfg := core.Config{
		SLI:                    sli,
		Agents:                 agents,
		Profile:                true,
		BufferFrames:           o.BufferFrames,
		EarlyLockRelease:       o.EarlyLockRelease,
		EarlyLockReleaseAborts: o.EarlyLockReleaseAborts,
		AsyncCommit:            o.AsyncCommit,
		GroupCommitWindow:      o.GroupCommitWindow,
		LogFlushDelay:          o.LogFlushDelay,
		MutexLog:               o.MutexLog,
		LatchedLog:             o.LatchedLog,
		AdaptiveGroupCommit:    o.AdaptiveGroupCommit,
		GroupCommitMin:         o.GroupCommitMin,
		GroupCommitMax:         o.GroupCommitMax,
		StrictFence:            o.StrictFence,
		PreallocateSegments:    o.PreallocateSegments,
		LogShards:              o.LogShards,
		AutoSizeLogBuffer:      o.AutoSizeLogBuffer,
	}
	// NDBB is the in-memory dataset; TPC-B and TPC-C are "disk-resident" and
	// pay the artificial I/O penalty (paper §5.2).
	if benchName != "ndbb" {
		cfg.IODelay = o.IODelay
	}
	var e *core.Engine
	if o.DataDir != "" {
		// One subdirectory per engine build: figure sweeps open many engines
		// and each needs its own log.
		dir, err := os.MkdirTemp(o.DataDir, strings.ReplaceAll(key, "/", "_")+"-*")
		if err != nil {
			return nil, nil, err
		}
		e, err = core.OpenAt(dir, cfg)
		if err != nil {
			return nil, nil, err
		}
	} else {
		e = core.Open(cfg)
	}
	var gen workload.Generator
	var err error
	switch benchName {
	case "ndbb":
		bcfg := tm1.Config{Subscribers: o.TM1Subscribers, Seed: o.Seed}
		if err = tm1.Load(e, bcfg); err == nil {
			gen, err = tm1.NewGenerator(bcfg, txName)
		}
	case "tpcb":
		bcfg := tpcb.Config{Branches: o.TPCBBranches, AccountsPerBranch: o.TPCBAccountsPerBranch, Seed: o.Seed}
		if err = tpcb.Load(e, bcfg); err == nil {
			gen, err = tpcb.NewGenerator(bcfg, tpcb.TxAccountUpdate)
		}
	case "tpcc":
		bcfg := tpcc.Config{Warehouses: o.TPCCWarehouses, Seed: o.Seed}
		if err = tpcc.Load(e, bcfg); err == nil {
			gen, err = tpcc.NewGenerator(bcfg, txName)
		}
	default:
		err = fmt.Errorf("figures: unknown benchmark %q", benchName)
	}
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	if o.AbortRate > 0 {
		gen = workload.WithAbortRate(gen, o.AbortRate)
	}
	if o.OnEngine != nil {
		o.OnEngine(e)
	}
	return e, gen, nil
}

func (o Options) run(e *core.Engine, gen workload.Generator, clients int) workload.Result {
	if o.Clients > 0 {
		clients = o.Clients
	}
	return workload.Run(e, gen, workload.Options{
		Clients:  clients,
		Duration: o.Duration,
		Warmup:   o.Warmup,
		Seed:     o.Seed,
	})
}

// measure builds, runs and tears down one workload configuration.
func (o Options) measure(key string, sli bool, agents int) (workload.Result, error) {
	e, gen, err := o.buildEngine(key, sli, agents)
	if err != nil {
		return workload.Result{}, err
	}
	defer e.Close()
	return o.run(e, gen, agents), nil
}

// EngineStats carries engine-side counters sampled the moment a RunWorkload
// measurement ends, complementing the interval-scoped workload.Result.
type EngineStats struct {
	// DurableLag is the number of log bytes appended but not yet forced —
	// the visible depth of the asynchronous commit pipeline. (Bytes, not
	// records: byte-offset LSNs have no record count.)
	DurableLag uint64
	// ELRAborts counts aborting transactions that released their locks at
	// abort-record append (before the force) under EarlyLockReleaseAborts.
	ELRAborts uint64
	// UndoFailures counts rollback undo actions that failed; non-zero means
	// the run corrupted in-memory state.
	UndoFailures uint64
	// FlushCycles counts group-commit flusher cycles over the engine's
	// lifetime; SinkWrites counts physical writes the durable segment sink
	// issued (zero for in-memory engines). SinkWrites/FlushCycles is the
	// writes-per-cycle efficiency stat: ~1 on the vectored flush path.
	FlushCycles uint64
	SinkWrites  uint64
	// AvgWindow is the mean group-commit window over the run's windowed
	// cycles; FinalWindow is the controller's window when the run ended
	// (equal to the configured window when the controller is off).
	// FenceWait is cumulative time publishers spent blocked in the publish
	// fence.
	AvgWindow   time.Duration
	FinalWindow time.Duration
	FenceWait   time.Duration
	// LogShards is the number of sharded virtual logs the engine ran with
	// (1 on unsharded engines), and CrossShardCommits the number of commits
	// whose participant set spanned more than one of them — the commits that
	// paid the two-phase flush rendezvous. Committed is the engine-lifetime
	// commit count (warmup included, unlike the interval-scoped
	// workload.Result), so CrossShardCommits/Committed is the workload's
	// cross-shard fraction with both counters over the same span.
	LogShards         int
	CrossShardCommits uint64
	Committed         uint64
	// ShardReserveWait and ShardWritesPerCycle are the per-shard views of
	// the reservation-wait and sink-efficiency stats, indexed by shard. A
	// routing skew shows up here as one hot entry, even when the summed
	// totals look balanced.
	ShardReserveWait    []time.Duration
	ShardWritesPerCycle []float64
}

// WritesPerCycle returns physical sink writes per flusher cycle, or 0 for
// in-memory runs.
func (es EngineStats) WritesPerCycle() float64 {
	if es.FlushCycles == 0 {
		return 0
	}
	return float64(es.SinkWrites) / float64(es.FlushCycles)
}

// RunWorkload builds, runs and tears down one workload configuration,
// additionally reporting engine-side counters (durable lag, abort-path ELR
// releases, undo failures) sampled the moment the measurement ended. It is
// the entry point used by cmd/slibench for single-workload and comparison
// runs.
func RunWorkload(key string, o Options, sli bool, agents int) (workload.Result, EngineStats, error) {
	o = o.withDefaults()
	if agents <= 0 {
		agents = o.PeakAgents
	}
	e, gen, err := o.buildEngine(key, sli, agents)
	if err != nil {
		return workload.Result{}, EngineStats{}, err
	}
	defer e.Close()
	res := o.run(e, gen, agents)
	es := EngineStats{
		DurableLag:   e.DurableLag(),
		ELRAborts:    e.ELRAborts(),
		UndoFailures: e.UndoFailures(),
	}
	lt := e.LogTail()
	es.FlushCycles = lt.FlushCycles
	es.SinkWrites = lt.SinkWrites
	es.FinalWindow = time.Duration(lt.CurWindowSeconds * float64(time.Second))
	es.FenceWait = time.Duration(lt.FenceWaitSeconds * float64(time.Second))
	if lt.WindowedCycles > 0 {
		es.AvgWindow = time.Duration(lt.WindowWaitSeconds / float64(lt.WindowedCycles) * float64(time.Second))
	}
	es.LogShards = e.LogShards()
	es.CrossShardCommits = e.CrossShardCommits()
	es.Committed = e.Committed()
	for s := 0; s < es.LogShards; s++ {
		one := e.LogTailAt(s)
		es.ShardReserveWait = append(es.ShardReserveWait,
			time.Duration(one.ReserveWaitSeconds*float64(time.Second)))
		wpc := 0.0
		if one.FlushCycles > 0 {
			wpc = float64(one.SinkWrites) / float64(one.FlushCycles)
		}
		es.ShardWritesPerCycle = append(es.ShardWritesPerCycle, wpc)
	}
	return res, es, nil
}

// sortedKeys returns map keys in deterministic order (helper for summaries).
func sortedKeys(m map[string]uint64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
