package figures

import (
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"time"

	"slidb/internal/bench/tm1"
	"slidb/internal/bench/tpcb"
	"slidb/internal/core"
	"slidb/internal/lockmgr"
	"slidb/internal/profiler"
	"slidb/internal/record"
	"slidb/internal/workload"
)

// AblationHotThreshold varies the SLI hot-lock detection threshold
// (§4.2 criterion 2) on the NDBB mix and reports throughput and the share of
// SLI speculations that paid off. Threshold 1.01 effectively disables hot
// detection ("never hot"); 0.01 inherits almost everything touched.
func AblationHotThreshold(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Ablation: SLI hot-lock threshold (NDBB mix)",
		Columns: []string{"threshold", "tps", "passed-per-1k-xct", "reclaimed-%"},
	}
	for _, threshold := range []float64{0.01, 0.1, 0.25, 0.5, 0.9} {
		e, gen, err := buildNDBBWithEngineConfig(o, core.Config{
			SLI:             true,
			SLIHotThreshold: threshold,
			Agents:          o.PeakAgents,
			Profile:         true,
			BufferFrames:    o.BufferFrames,
		})
		if err != nil {
			return t, err
		}
		res := o.run(e, gen, o.PeakAgents)
		e.Close()
		ls := res.LockStats
		resolved := float64(ls.SLIReclaimed + ls.SLIInvalidated + ls.SLIDiscarded)
		if resolved == 0 {
			resolved = 1
		}
		perK := 0.0
		if ls.Transactions > 0 {
			perK = 1000 * float64(ls.SLIPassed) / float64(ls.Transactions)
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("%.2f", threshold),
			Values: []float64{threshold, res.Throughput, perK, 100 * float64(ls.SLIReclaimed) / resolved},
		})
	}
	return t, nil
}

// AblationEligibleLevels compares inheriting only table-and-above locks with
// the paper's page-and-above rule (§4.2 criterion 1), on the NDBB mix.
func AblationEligibleLevels(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Ablation: SLI minimum eligible lock level (NDBB mix)",
		Columns: []string{"tps", "passed-per-1k-xct"},
	}
	levels := []struct {
		name  string
		level lockmgr.Level
	}{
		{"table-and-above", lockmgr.LevelTable},
		{"page-and-above (paper)", lockmgr.LevelPage},
	}
	for _, lv := range levels {
		e, gen, err := buildNDBBWithEngineConfig(o, core.Config{
			SLI:          true,
			SLIMinLevel:  lv.level,
			Agents:       o.PeakAgents,
			Profile:      true,
			BufferFrames: o.BufferFrames,
		})
		if err != nil {
			return t, err
		}
		res := o.run(e, gen, o.PeakAgents)
		e.Close()
		perK := 0.0
		if res.LockStats.Transactions > 0 {
			perK = 1000 * float64(res.LockStats.SLIPassed) / float64(res.LockStats.Transactions)
		}
		t.Rows = append(t.Rows, Row{Label: lv.name, Values: []float64{res.Throughput, perK}})
	}
	return t, nil
}

// AblationBimodal reproduces the §4.4 "bimodal workload" discussion: two
// transaction groups touching disjoint tables, with transactions either
// assigned to agents at random (the paper's "do nothing" option 3) or run on
// a system with twice the agents so each group effectively has its own
// agents (approximating option 1, affinity-based assignment).
func AblationBimodal(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Ablation: bimodal workload (two disjoint transaction groups), §4.4",
		Columns: []string{"tps", "reclaimed-%", "discarded-%"},
	}

	build := func() (*core.Engine, error) {
		e := core.Open(core.Config{SLI: true, Agents: o.PeakAgents, Profile: true, BufferFrames: o.BufferFrames})
		schema := record.MustSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "v", Type: record.TypeInt},
		)
		for _, tbl := range []string{"group_a", "group_b"} {
			if err := e.CreateTable(tbl, schema, []string{"id"}); err != nil {
				e.Close()
				return nil, err
			}
		}
		err := e.Exec(func(tx *core.Tx) error {
			for i := 0; i < 1000; i++ {
				if err := tx.Insert("group_a", record.Row{record.Int(int64(i)), record.Int(0)}); err != nil {
					return err
				}
				if err := tx.Insert("group_b", record.Row{record.Int(int64(i)), record.Int(0)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			e.Close()
			return nil, err
		}
		return e, nil
	}

	read := func(table string) func(rng *rand.Rand) workload.TxFunc {
		return func(rng *rand.Rand) workload.TxFunc {
			id := rng.Int63n(1000)
			return func(tx *core.Tx) error {
				_, _, err := tx.Get(table, record.Int(id))
				return err
			}
		}
	}

	cases := []struct {
		name string
		gen  workload.Generator
	}{
		{"random assignment (paper's choice)", workload.Mix{
			{Name: "a", Weight: 1, Make: read("group_a")},
			{Name: "b", Weight: 1, Make: read("group_b")},
		}},
		{"single-group affinity (upper bound)", workload.Mix{
			{Name: "a", Weight: 1, Make: read("group_a")},
		}},
	}
	for _, c := range cases {
		e, err := build()
		if err != nil {
			return t, err
		}
		res := o.run(e, c.gen, o.PeakAgents)
		e.Close()
		ls := res.LockStats
		resolved := float64(ls.SLIReclaimed + ls.SLIInvalidated + ls.SLIDiscarded)
		if resolved == 0 {
			resolved = 1
		}
		t.Rows = append(t.Rows, Row{Label: c.name, Values: []float64{
			res.Throughput,
			100 * float64(ls.SLIReclaimed) / resolved,
			100 * float64(ls.SLIDiscarded) / resolved,
		}})
	}
	return t, nil
}

// AblationRovingHotspot reproduces the §4.4 "roving hotspot" discussion: an
// append-heavy history table whose hot page keeps moving. SLI's "short
// memory" should keep discarded inheritances bounded while still passing the
// table-level locks.
func AblationRovingHotspot(o Options) (Table, error) {
	o = o.withDefaults()
	t := Table{
		Title:   "Ablation: roving hotspot (append-heavy history table), §4.4",
		Columns: []string{"tps", "passed-per-1k-xct", "invalidated-%", "discarded-%"},
	}
	for _, sli := range []bool{false, true} {
		e := core.Open(core.Config{SLI: sli, Agents: o.PeakAgents, Profile: true, BufferFrames: o.BufferFrames})
		schema := record.MustSchema(
			record.Column{Name: "id", Type: record.TypeInt},
			record.Column{Name: "payload", Type: record.TypeString},
		)
		if err := e.CreateTable("history", schema, []string{"id"}); err != nil {
			e.Close()
			return t, err
		}
		var next atomic.Int64
		gen := workload.Mix{{Name: "append", Weight: 1, Make: func(rng *rand.Rand) workload.TxFunc {
			return func(tx *core.Tx) error {
				id := next.Add(1)*1000 + rng.Int63n(1000)
				return tx.Insert("history", record.Row{record.Int(id), record.String("event payload......")})
			}
		}}}
		res := o.run(e, gen, o.PeakAgents)
		e.Close()
		ls := res.LockStats
		resolved := float64(ls.SLIReclaimed + ls.SLIInvalidated + ls.SLIDiscarded)
		if resolved == 0 {
			resolved = 1
		}
		perK := 0.0
		if ls.Transactions > 0 {
			perK = 1000 * float64(ls.SLIPassed) / float64(ls.Transactions)
		}
		label := "baseline (SLI off)"
		if sli {
			label = "SLI on"
		}
		t.Rows = append(t.Rows, Row{Label: label, Values: []float64{
			res.Throughput, perK,
			100 * float64(ls.SLIInvalidated) / resolved,
			100 * float64(ls.SLIDiscarded) / resolved,
		}})
	}
	return t, nil
}

// AblationSLIELR measures the SLI × Early-Lock-Release grid on TPC-B with a
// non-zero group-commit window and flush delay, so every commit pays a
// realistic log-force latency. SLI removes the lock manager from the
// critical path; ELR (+ flush pipelining) removes the log force from the
// lock hold time. The grid separates the two effects and shows they
// compose: the hot branch-row locks that SLI passes between transactions
// are, under ELR, released at commit-record append instead of after the
// fsync.
func AblationSLIELR(o Options) (Table, error) {
	o = o.withDefaults()
	if o.LogFlushDelay == 0 {
		o.LogFlushDelay = 500 * time.Microsecond
	}
	if o.GroupCommitWindow == 0 {
		o.GroupCommitWindow = 100 * time.Microsecond
	}
	if o.Clients == 0 {
		// Overcommit clients so the SLI+ELR row can actually fill the
		// AsyncCommit pipeline; with one blocking client per agent the
		// in-flight window never exceeds one.
		o.Clients = 4 * o.PeakAgents
	}
	t := Table{
		Title:   "Ablation: SLI x Early Lock Release grid (TPC-B, non-zero log force latency)",
		Columns: []string{"tps", "log-flush-%", "lock-wait-ms/xct", "elr/1k-xct", "sli-passed/1k"},
	}
	grid := []struct {
		name     string
		sli, elr bool
	}{
		{"baseline", false, false},
		{"SLI", true, false},
		{"ELR", false, true},
		{"SLI+ELR", true, true},
	}
	for _, g := range grid {
		e, gen, err := buildTPCBWithEngineConfig(o, core.Config{
			SLI:                    g.sli,
			EarlyLockRelease:       g.elr,
			EarlyLockReleaseAborts: g.elr,
			AsyncCommit:            g.elr,
			Agents:                 o.PeakAgents,
			Profile:                true,
			BufferFrames:           o.BufferFrames,
			GroupCommitWindow:      o.GroupCommitWindow,
			LogFlushDelay:          o.LogFlushDelay,
			// TPC-B is disk-resident in the paper (§5.2); keep the same
			// per-I/O penalty the per-workload figures apply.
			IODelay: o.IODelay,
		})
		if err != nil {
			return t, err
		}
		res := o.run(e, gen, o.PeakAgents)
		e.Close()
		ls := res.LockStats
		perK := func(v uint64) float64 {
			if ls.Transactions == 0 {
				return 0
			}
			return 1000 * float64(v) / float64(ls.Transactions)
		}
		lockWaitMs := 0.0
		if n := res.Completed(); n > 0 {
			lockWaitMs = res.Breakdown.Get(profiler.LockWait).Seconds() * 1000 / float64(n)
		}
		t.Rows = append(t.Rows, Row{Label: g.name, Values: []float64{
			res.Throughput,
			100 * res.Breakdown.GroupedShares().LogFlush,
			lockWaitMs,
			perK(ls.ELRReleases),
			perK(ls.SLIPassed),
		}})
	}
	return t, nil
}

// AblationAbortELR isolates Early Lock Release on the ABORT path: TPC-B
// with a forced conflict-style abort rate (each chosen transaction does its
// full account/branch/history work and then rolls back) and a non-zero log
// force latency. Both arms run the identical commit pipeline — SLI +
// commit-side ELR + AsyncCommit — and differ only in
// Config.EarlyLockReleaseAborts, so the measured difference is purely the
// abort-side release policy (the knob split fixed the previous confound
// where one flag governed both paths). Without abort-side ELR a rollback
// undoes, logs its CLR chain, and then holds every lock across the force of
// its abort record — at a 30% abort rate that flush wait shows up directly
// in lock-wait-ms/xct — while with it every rollback releases at
// abort-record append and the lock-wait column collapses.
func AblationAbortELR(o Options) (Table, error) {
	o = o.withDefaults()
	if o.LogFlushDelay == 0 {
		o.LogFlushDelay = 500 * time.Microsecond
	}
	if o.GroupCommitWindow == 0 {
		o.GroupCommitWindow = 100 * time.Microsecond
	}
	if o.Clients == 0 {
		// Overcommit clients so the ELR arm can fill the AsyncCommit
		// pipeline (see AblationSLIELR).
		o.Clients = 4 * o.PeakAgents
	}
	if o.AbortRate == 0 {
		o.AbortRate = 0.3
	}
	t := Table{
		Title:   fmt.Sprintf("Ablation: ELR for aborts (TPC-B, %.0f%% forced aborts, non-zero log force latency)", 100*o.AbortRate),
		Columns: []string{"tps", "abort-%", "lock-wait-ms/xct", "log-flush-%", "elr-aborts/1k"},
	}
	for _, abortELR := range []bool{false, true} {
		e, gen, err := buildTPCBWithEngineConfig(o, core.Config{
			SLI:                    true,
			EarlyLockRelease:       true,
			EarlyLockReleaseAborts: abortELR,
			AsyncCommit:            true,
			Agents:                 o.PeakAgents,
			Profile:                true,
			BufferFrames:           o.BufferFrames,
			GroupCommitWindow:      o.GroupCommitWindow,
			LogFlushDelay:          o.LogFlushDelay,
			IODelay:                o.IODelay,
		})
		if err != nil {
			return t, err
		}
		gen = workload.WithAbortRate(gen, o.AbortRate)
		res := o.run(e, gen, o.PeakAgents)
		elrAborts, undoFailures := e.ELRAborts(), e.UndoFailures()
		e.Close()
		if undoFailures != 0 {
			return t, fmt.Errorf("figures: abort-elr ablation recorded %d undo failures (abortELR=%v)", undoFailures, abortELR)
		}
		lockWaitMs := 0.0
		if n := res.Completed(); n > 0 {
			lockWaitMs = res.Breakdown.Get(profiler.LockWait).Seconds() * 1000 / float64(n)
		}
		perK := 0.0
		if res.LockStats.Transactions > 0 {
			perK = 1000 * float64(elrAborts) / float64(res.LockStats.Transactions)
		}
		label := "strict aborts (hold until durable)"
		if abortELR {
			label = "ELR aborts (release at append)"
		}
		t.Rows = append(t.Rows, Row{Label: label, Values: []float64{
			res.Throughput,
			100 * res.FailureRate(),
			lockWaitMs,
			100 * res.Breakdown.GroupedShares().LogFlush,
			perK,
		}})
	}
	return t, nil
}

// AblationLogBuffer measures the consolidated reserve/fill/publish log
// buffer against the legacy mutex-per-append log on TPC-B, crossed with the
// SLI + ELR commit pipeline, at one agent and at the peak agent count. The
// log is the last centralized service on the commit path once SLI and ELR
// have decentralized the lock side, so the interesting cell is the peak-
// agent SLI+ELR row: there every append contends on the log and the
// consolidated buffer's short reservation latch replaces the full mutex-
// across-encode critical section. The reserve-wait column shows exactly
// that serialization cost; buffer-full-wait is backpressure from an
// undersized buffer, not latch contention.
func AblationLogBuffer(o Options) (Table, error) {
	o = o.withDefaults()
	if o.LogFlushDelay == 0 {
		o.LogFlushDelay = 500 * time.Microsecond
	}
	if o.GroupCommitWindow == 0 {
		o.GroupCommitWindow = 100 * time.Microsecond
	}
	userClients := o.Clients != 0
	if !userClients {
		// Overcommit clients so the SLI+ELR rows can fill the AsyncCommit
		// pipeline (see AblationSLIELR).
		o.Clients = 4 * o.PeakAgents
	}
	t := Table{
		Title:   "Ablation: consolidated log buffer vs mutex log, x SLI+ELR (TPC-B)",
		Columns: []string{"agents", "tps", "reserve-us/xct", "buffull-us/xct", "log-flush-%"},
	}
	grid := []struct {
		name     string
		mutexLog bool
		pipeline bool // SLI + ELR + AsyncCommit
	}{
		{"mutex-log", true, false},
		{"consolidated", false, false},
		{"mutex-log +SLI+ELR", true, true},
		{"consolidated +SLI+ELR", false, true},
	}
	for _, agents := range []int{1, o.PeakAgents} {
		for _, g := range grid {
			oo := o
			if agents == 1 && !userClients {
				// Scale the default overcommit down with the agent count; an
				// explicit -clients setting applies to every cell unchanged.
				oo.Clients = 4
			}
			e, gen, err := buildTPCBWithEngineConfig(oo, core.Config{
				SLI:                    g.pipeline,
				EarlyLockRelease:       g.pipeline,
				EarlyLockReleaseAborts: g.pipeline,
				AsyncCommit:            g.pipeline,
				MutexLog:               g.mutexLog,
				Agents:                 agents,
				Profile:                true,
				BufferFrames:           oo.BufferFrames,
				GroupCommitWindow:      oo.GroupCommitWindow,
				LogFlushDelay:          oo.LogFlushDelay,
				IODelay:                oo.IODelay,
			})
			if err != nil {
				return t, err
			}
			res := oo.run(e, gen, agents)
			e.Close()
			perXct := func(c profiler.Category) float64 {
				n := res.Completed()
				if n == 0 {
					return 0
				}
				return res.Breakdown.Get(c).Seconds() * 1e6 / float64(n)
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s a=%d", g.name, agents),
				Values: []float64{
					float64(agents),
					res.Throughput,
					perXct(profiler.LogReserveWait),
					perXct(profiler.LogBufferFullWait),
					100 * res.Breakdown.GroupedShares().LogFlush,
				},
			})
		}
	}
	return t, nil
}

// AblationLogLSN measures what byte-offset LSNs buy on the reservation path:
// the same consolidated reserve/fill/publish buffer, with the reservation
// performed either under the PR-3 latch (LSN and offset assigned inside a
// short mutex) or as the lock-free fetch-and-add that byte-offset LSNs make
// possible (the LSN IS the offset, so one CAS on the virtual head does
// both). Run on TPC-B with the full SLI+ELR pipeline — the configuration in
// which PR 3 showed the log to be the last centralized service on the
// commit path — at one agent and at the peak agent count. The reserve-wait
// column is the direct measurement: it contains the latch acquisition (or
// CAS retries plus the in-order publish fence), so the latched arm's growth
// with agent count is exactly the serialization the fetch-and-add removes.
// Honors Options.DataDir, so `slibench -ablation log-lsn -datadir ...`
// measures it with real fsyncs on real segment files.
func AblationLogLSN(o Options) (Table, error) {
	o = o.withDefaults()
	if o.LogFlushDelay == 0 {
		o.LogFlushDelay = 500 * time.Microsecond
	}
	if o.GroupCommitWindow == 0 {
		o.GroupCommitWindow = 100 * time.Microsecond
	}
	userClients := o.Clients != 0
	if !userClients {
		// Overcommit clients so the pipeline stays full (see AblationSLIELR).
		o.Clients = 4 * o.PeakAgents
	}
	t := Table{
		Title:   "Ablation: log reservation protocol — latched (PR-3) vs fetch-and-add byte-offset LSNs (TPC-B, SLI+ELR)",
		Columns: []string{"agents", "tps", "reserve-us/xct", "buffull-us/xct", "log-flush-%"},
	}
	arms := []struct {
		name    string
		latched bool
	}{
		{"latched", true},
		{"fetch-and-add", false},
	}
	for _, agents := range []int{1, o.PeakAgents} {
		for _, a := range arms {
			oo := o
			if agents == 1 && !userClients {
				oo.Clients = 4
			}
			e, gen, err := buildTPCBWithEngineConfig(oo, core.Config{
				SLI:                    true,
				EarlyLockRelease:       true,
				EarlyLockReleaseAborts: true,
				AsyncCommit:            true,
				LatchedLog:             a.latched,
				Agents:                 agents,
				Profile:                true,
				BufferFrames:           oo.BufferFrames,
				GroupCommitWindow:      oo.GroupCommitWindow,
				LogFlushDelay:          oo.LogFlushDelay,
				IODelay:                oo.IODelay,
			})
			if err != nil {
				return t, err
			}
			res := oo.run(e, gen, agents)
			e.Close()
			perXct := func(c profiler.Category) float64 {
				n := res.Completed()
				if n == 0 {
					return 0
				}
				return res.Breakdown.Get(c).Seconds() * 1e6 / float64(n)
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s a=%d", a.name, agents),
				Values: []float64{
					float64(agents),
					res.Throughput,
					perXct(profiler.LogReserveWait),
					perXct(profiler.LogBufferFullWait),
					100 * res.Breakdown.GroupedShares().LogFlush,
				},
			})
		}
	}
	return t, nil
}

// AblationLogTail measures the self-tuning log tail on TPC-B with the full
// SLI+ELR pipeline: fixed vs adaptive group-commit window crossed with the
// strict (in-order spin) vs relaxed (completion-tracking) publish fence, at
// one agent and at the peak agent count. The adaptive controller should match
// the fixed window at a single agent (it shrinks toward GroupCommitMin, so a
// lone committer is not held for a full fixed window) and at peak load (it
// widens only while subscriptions keep arriving); the fence-us/xct column
// shows the serialization the relaxed fence removes when out-of-order fillers
// would otherwise spin. Honors Options.DataDir, where the writes/cycle column
// becomes meaningful: the vectored flush path lands a whole cycle in one
// segment write, so the value should sit near 1.
func AblationLogTail(o Options) (Table, error) {
	o = o.withDefaults()
	if o.LogFlushDelay == 0 {
		o.LogFlushDelay = 500 * time.Microsecond
	}
	if o.GroupCommitWindow == 0 {
		o.GroupCommitWindow = 100 * time.Microsecond
	}
	userClients := o.Clients != 0
	if !userClients {
		// Overcommit clients so the pipeline stays full (see AblationSLIELR).
		o.Clients = 4 * o.PeakAgents
	}
	t := Table{
		Title:   "Ablation: log tail — fixed vs adaptive group commit, x strict vs relaxed publish fence (TPC-B, SLI+ELR)",
		Columns: []string{"agents", "tps", "avg-window-us", "final-window-us", "writes/cycle", "fence-us/xct"},
	}
	grid := []struct {
		name     string
		adaptive bool
		strict   bool
	}{
		{"fixed+strict", false, true},
		{"fixed+relaxed", false, false},
		{"adaptive+strict", true, true},
		{"adaptive+relaxed", true, false},
	}
	for _, agents := range []int{1, o.PeakAgents} {
		for _, g := range grid {
			oo := o
			if agents == 1 && !userClients {
				oo.Clients = 4
			}
			e, gen, err := buildTPCBWithEngineConfig(oo, core.Config{
				SLI:                    true,
				EarlyLockRelease:       true,
				EarlyLockReleaseAborts: true,
				AsyncCommit:            true,
				Agents:                 agents,
				Profile:                true,
				BufferFrames:           oo.BufferFrames,
				GroupCommitWindow:      oo.GroupCommitWindow,
				AdaptiveGroupCommit:    g.adaptive,
				GroupCommitMin:         oo.GroupCommitMin,
				GroupCommitMax:         oo.GroupCommitMax,
				StrictFence:            g.strict,
				PreallocateSegments:    oo.PreallocateSegments,
				LogFlushDelay:          oo.LogFlushDelay,
				IODelay:                oo.IODelay,
			})
			if err != nil {
				return t, err
			}
			res := oo.run(e, gen, agents)
			lt := e.LogTail()
			e.Close()
			avgWindowUs := 0.0
			if lt.WindowedCycles > 0 {
				avgWindowUs = lt.WindowWaitSeconds / float64(lt.WindowedCycles) * 1e6
			}
			writesPerCycle := 0.0
			if lt.FlushCycles > 0 {
				writesPerCycle = float64(lt.SinkWrites) / float64(lt.FlushCycles)
			}
			fencePerXct := 0.0
			if n := res.Completed(); n > 0 {
				fencePerXct = lt.FenceWaitSeconds * 1e6 / float64(n)
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("%s a=%d", g.name, agents),
				Values: []float64{
					float64(agents),
					res.Throughput,
					avgWindowUs,
					lt.CurWindowSeconds * 1e6,
					writesPerCycle,
					fencePerXct,
				},
			})
		}
	}
	return t, nil
}

// AblationLogShards measures sharded virtual logs in both routing regimes.
// The TPC-B arm is the adversarial case: every transfer touches four tables,
// so nearly every commit is cross-shard (the xshard-commits/xct column sits
// near 1.0) and pays the two-phase flush rendezvous — which also forfeits
// the single-participant async/ELR fast path, so sharding LOSES throughput
// there by design. The TM-1 updateLoc arm is the favorable case: each
// transaction updates one subscriber row, every commit routes to a single
// shard (xshard-commits/xct = 0), and extra shards divide reserve pressure
// and fsync queueing without ever paying the rendezvous. A single shard must
// stay within noise of the unsharded engine in both arms (the code paths
// are identical until nShards > 1). Honors Options.DataDir, where
// writes/cycle becomes meaningful per shard.
func AblationLogShards(o Options) (Table, error) {
	o = o.withDefaults()
	if o.LogFlushDelay == 0 {
		o.LogFlushDelay = 500 * time.Microsecond
	}
	if o.GroupCommitWindow == 0 {
		o.GroupCommitWindow = 100 * time.Microsecond
	}
	userClients := o.Clients != 0
	if !userClients {
		// Overcommit clients so the pipeline stays full (see AblationSLIELR).
		o.Clients = 4 * o.PeakAgents
	}
	t := Table{
		Title:   "Ablation: log shards — sharded virtual logs with cross-log group commit (SLI+ELR)",
		Columns: []string{"shards", "agents", "tps", "reserve-us/xct", "buffull-us/xct", "writes/cycle", "xshard-commits/xct"},
	}
	for _, agents := range []int{1, o.PeakAgents} {
		for _, nShards := range []int{1, 2, 4} {
			oo := o
			if agents == 1 && !userClients {
				oo.Clients = 4
			}
			e, gen, err := buildTPCBWithEngineConfig(oo, core.Config{
				SLI:                    true,
				EarlyLockRelease:       true,
				EarlyLockReleaseAborts: true,
				AsyncCommit:            true,
				Agents:                 agents,
				Profile:                true,
				BufferFrames:           oo.BufferFrames,
				GroupCommitWindow:      oo.GroupCommitWindow,
				AdaptiveGroupCommit:    true,
				GroupCommitMin:         oo.GroupCommitMin,
				GroupCommitMax:         oo.GroupCommitMax,
				PreallocateSegments:    oo.PreallocateSegments,
				AutoSizeLogBuffer:      oo.AutoSizeLogBuffer,
				LogFlushDelay:          oo.LogFlushDelay,
				IODelay:                oo.IODelay,
				LogShards:              nShards,
			})
			if err != nil {
				return t, err
			}
			res := oo.run(e, gen, agents)
			lt := e.LogTail()
			xshard := e.CrossShardCommits()
			e.Close()
			perXct := func(sec float64) float64 {
				if n := res.Completed(); n > 0 {
					return sec * 1e6 / float64(n)
				}
				return 0
			}
			writesPerCycle := 0.0
			if lt.FlushCycles > 0 {
				writesPerCycle = float64(lt.SinkWrites) / float64(lt.FlushCycles)
			}
			xshardPerXct := 0.0
			if n := res.Completed(); n > 0 {
				xshardPerXct = float64(xshard) / float64(n)
			}
			t.Rows = append(t.Rows, Row{
				Label: fmt.Sprintf("tpcb shards=%d a=%d", nShards, agents),
				Values: []float64{
					float64(nShards),
					float64(agents),
					res.Throughput,
					perXct(lt.ReserveWaitSeconds),
					perXct(lt.BufferFullWaitSeconds),
					writesPerCycle,
					xshardPerXct,
				},
			})
		}
	}
	// Shard-local arm: TM-1 updateLoc at peak agents. One row update per
	// transaction means one participant shard per commit — the regime where
	// the sharded log collects its contention win without rendezvous cost.
	for _, nShards := range []int{1, 2, 4} {
		oo := o
		oo.EarlyLockRelease = true
		oo.EarlyLockReleaseAborts = true
		oo.AsyncCommit = true
		oo.AdaptiveGroupCommit = true
		oo.LogShards = nShards
		e, gen, err := oo.buildEngine(WLUpdateLoc, true, oo.PeakAgents)
		if err != nil {
			return t, err
		}
		res := oo.run(e, gen, oo.PeakAgents)
		lt := e.LogTail()
		xshard := e.CrossShardCommits()
		e.Close()
		perXct := func(sec float64) float64 {
			if n := res.Completed(); n > 0 {
				return sec * 1e6 / float64(n)
			}
			return 0
		}
		writesPerCycle := 0.0
		if lt.FlushCycles > 0 {
			writesPerCycle = float64(lt.SinkWrites) / float64(lt.FlushCycles)
		}
		xshardPerXct := 0.0
		if n := res.Completed(); n > 0 {
			xshardPerXct = float64(xshard) / float64(n)
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("updateLoc shards=%d a=%d", nShards, o.PeakAgents),
			Values: []float64{
				float64(nShards),
				float64(o.PeakAgents),
				res.Throughput,
				perXct(lt.ReserveWaitSeconds),
				perXct(lt.BufferFullWaitSeconds),
				writesPerCycle,
				xshardPerXct,
			},
		})
	}
	return t, nil
}

// buildTPCBWithEngineConfig loads the TPC-B dataset into an engine with a
// custom configuration (used by the commit-pipeline ablations). When
// Options.DataDir is set the engine is disk-backed (real WAL segments and
// fsyncs) in a fresh subdirectory, matching Options.buildEngine.
func buildTPCBWithEngineConfig(o Options, cfg core.Config) (*core.Engine, workload.Generator, error) {
	var e *core.Engine
	if o.DataDir != "" {
		dir, err := os.MkdirTemp(o.DataDir, "ablation-tpcb-*")
		if err != nil {
			return nil, nil, err
		}
		e, err = core.OpenAt(dir, cfg)
		if err != nil {
			return nil, nil, err
		}
	} else {
		e = core.Open(cfg)
	}
	bcfg := tpcb.Config{Branches: o.TPCBBranches, AccountsPerBranch: o.TPCBAccountsPerBranch, Seed: o.Seed}
	if err := tpcb.Load(e, bcfg); err != nil {
		e.Close()
		return nil, nil, err
	}
	gen, err := tpcb.NewGenerator(bcfg, tpcb.TxAccountUpdate)
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	return e, gen, nil
}

// buildNDBBWithEngineConfig loads the NDBB dataset into an engine with a
// custom configuration (used by the ablations that vary lock-manager knobs).
func buildNDBBWithEngineConfig(o Options, cfg core.Config) (*core.Engine, workload.Generator, error) {
	e := core.Open(cfg)
	bcfg := tm1.Config{Subscribers: o.TM1Subscribers, Seed: o.Seed}
	if err := tm1.Load(e, bcfg); err != nil {
		e.Close()
		return nil, nil, err
	}
	gen, err := tm1.NewGenerator(bcfg, tm1.MixNDBB)
	if err != nil {
		e.Close()
		return nil, nil, err
	}
	return e, gen, nil
}

// Ablation returns the named ablation table.
func Ablation(name string, o Options) (Table, error) {
	switch name {
	case "hot-threshold":
		return AblationHotThreshold(o)
	case "levels":
		return AblationEligibleLevels(o)
	case "bimodal":
		return AblationBimodal(o)
	case "roving-hotspot":
		return AblationRovingHotspot(o)
	case "sli-elr":
		return AblationSLIELR(o)
	case "log-buffer":
		return AblationLogBuffer(o)
	case "log-lsn":
		return AblationLogLSN(o)
	case "log-tail":
		return AblationLogTail(o)
	case "log-shards":
		return AblationLogShards(o)
	case "abort-elr":
		return AblationAbortELR(o)
	default:
		return Table{}, fmt.Errorf("figures: unknown ablation %q (use hot-threshold, levels, bimodal, roving-hotspot, sli-elr, log-buffer, log-lsn, log-tail, log-shards, abort-elr)", name)
	}
}

// Ablations lists the available ablation study names.
func Ablations() []string {
	return []string{"hot-threshold", "levels", "bimodal", "roving-hotspot", "sli-elr", "log-buffer", "log-lsn", "log-tail", "log-shards", "abort-elr"}
}

// quickOptions shrinks an Options for smoke tests; exported for reuse from
// the repository-level benchmarks.
func (o Options) Quick() Options {
	o = o.withDefaults()
	o.AgentCounts = []int{1, 4, 8}
	o.PeakAgents = 8
	o.Duration = 200 * time.Millisecond
	o.Warmup = 30 * time.Millisecond
	o.TM1Subscribers = 500
	o.TPCBBranches = 8
	o.TPCBAccountsPerBranch = 200
	o.TPCCWarehouses = 2
	return o
}
