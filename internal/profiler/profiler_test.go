package profiler

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestHandleAddAndSnapshot(t *testing.T) {
	var h Handle
	h.Add(LockMgrWork, 10*time.Millisecond)
	h.Add(LockMgrWork, 5*time.Millisecond)
	h.Add(TxWork, 20*time.Millisecond)
	h.Add(LockMgrContention, -time.Second) // negative ignored
	b := h.Snapshot()
	if b.Get(LockMgrWork) != 15*time.Millisecond {
		t.Fatalf("LockMgrWork = %v, want 15ms", b.Get(LockMgrWork))
	}
	if b.Get(TxWork) != 20*time.Millisecond {
		t.Fatalf("TxWork = %v, want 20ms", b.Get(TxWork))
	}
	if b.Get(LockMgrContention) != 0 {
		t.Fatalf("negative add must be ignored, got %v", b.Get(LockMgrContention))
	}
}

func TestNilHandleIsSafe(t *testing.T) {
	var h *Handle
	h.Add(LockMgrWork, time.Second) // must not panic
	h.Timed(TxWork, func() {})
	h.Reset()
	if h.Snapshot().Total() != 0 {
		t.Fatal("nil handle must report empty breakdown")
	}
}

func TestTimedAttributesElapsed(t *testing.T) {
	var h Handle
	h.Timed(BufferWork, func() { time.Sleep(2 * time.Millisecond) })
	if h.Snapshot().Get(BufferWork) < time.Millisecond {
		t.Fatalf("Timed recorded %v, want >= 1ms", h.Snapshot().Get(BufferWork))
	}
}

func TestBreakdownTotalExcludesWaits(t *testing.T) {
	var b Breakdown
	b[LockMgrWork] = 10 * time.Millisecond
	b[TxWork] = 30 * time.Millisecond
	b[LockWait] = time.Hour // excluded
	b[IOWait] = time.Hour   // excluded
	if b.Total() != 40*time.Millisecond {
		t.Fatalf("Total = %v, want 40ms", b.Total())
	}
}

func TestGroupedSharesSumToOne(t *testing.T) {
	var b Breakdown
	b[LockMgrWork] = 10 * time.Millisecond
	b[LockMgrContention] = 40 * time.Millisecond
	b[SLIWork] = 5 * time.Millisecond
	b[LogWork] = 15 * time.Millisecond
	b[BufferContention] = 10 * time.Millisecond
	b[TxWork] = 20 * time.Millisecond
	s := b.GroupedShares()
	sum := s.LockMgrWork + s.LockMgrContention + s.SLI + s.OtherWork + s.OtherContention
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum = %v, want 1", sum)
	}
	if s.LockMgrContention <= s.LockMgrWork {
		t.Fatal("expected contention share to dominate work share in this synthetic breakdown")
	}
}

func TestGroupedSharesEmpty(t *testing.T) {
	var b Breakdown
	s := b.GroupedShares()
	if s != (Shares{}) {
		t.Fatalf("empty breakdown should produce zero shares, got %+v", s)
	}
}

func TestBreakdownAddSub(t *testing.T) {
	var a, b Breakdown
	a[TxWork] = 10 * time.Millisecond
	b[TxWork] = 4 * time.Millisecond
	b[LogWork] = 100 * time.Millisecond
	sum := a.Add(b)
	if sum[TxWork] != 14*time.Millisecond || sum[LogWork] != 100*time.Millisecond {
		t.Fatalf("Add wrong: %+v", sum)
	}
	diff := a.Sub(b)
	if diff[TxWork] != 6*time.Millisecond {
		t.Fatalf("Sub wrong: %v", diff[TxWork])
	}
	if diff[LogWork] != 0 {
		t.Fatalf("Sub must clamp at zero, got %v", diff[LogWork])
	}
}

func TestProfilerDisabledReturnsNilHandles(t *testing.T) {
	p := New(false)
	if p.NewHandle() != nil {
		t.Fatal("disabled profiler must hand out nil handles")
	}
	if p.Enabled() {
		t.Fatal("profiler should report disabled")
	}
	var nilP *Profiler
	if nilP.NewHandle() != nil || nilP.Enabled() {
		t.Fatal("nil profiler must behave as disabled")
	}
	nilP.Reset()
	if nilP.Aggregate().Total() != 0 {
		t.Fatal("nil profiler aggregate should be empty")
	}
}

func TestProfilerAggregateAndReset(t *testing.T) {
	p := New(true)
	h1 := p.NewHandle()
	h2 := p.NewHandle()
	h1.Add(LockMgrWork, 5*time.Millisecond)
	h2.Add(LockMgrWork, 7*time.Millisecond)
	h2.Add(LockWait, time.Second)
	agg := p.Aggregate()
	if agg.Get(LockMgrWork) != 12*time.Millisecond {
		t.Fatalf("aggregate LockMgrWork = %v, want 12ms", agg.Get(LockMgrWork))
	}
	if agg.Get(LockWait) != time.Second {
		t.Fatalf("aggregate LockWait = %v, want 1s", agg.Get(LockWait))
	}
	p.Reset()
	if p.Aggregate().Total() != 0 {
		t.Fatal("aggregate after reset should be zero")
	}
}

func TestConcurrentHandleUse(t *testing.T) {
	p := New(true)
	h := p.NewHandle()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				h.Add(LockMgrWork, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := p.Aggregate().Get(LockMgrWork); got != 8*1000*time.Microsecond {
		t.Fatalf("concurrent adds lost updates: %v", got)
	}
}

func TestCategoryString(t *testing.T) {
	seen := map[string]bool{}
	for c := Category(0); c < numCategories; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("category %d has empty or duplicate name %q", c, s)
		}
		seen[s] = true
	}
	if Category(99).String() == "" {
		t.Fatal("unknown category should still produce a name")
	}
}
