// Package profiler implements the work/contention time accounting used to
// reproduce the execution-time breakdowns of the paper (Figures 1, 6 and 10).
//
// The paper obtained its breakdowns from the Solaris profiler; on a pure-Go
// reproduction we instead instrument the storage-manager components directly:
// every agent thread owns a Handle and each component (lock manager, SLI,
// log, buffer pool, transaction body) reports the wall-clock time it spent
// doing useful work or waiting on contended latches. The distinction between
// "work" (useful) and "contention" (useless: spinning or blocked on a latch)
// follows the paper's definition in §1.1; time blocked on true lock conflicts
// or I/O is tracked separately and excluded from the contention figures, just
// as the paper excludes it.
package profiler

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Category identifies which component a slice of time is attributed to and
// whether it was useful work or contention.
type Category int

// Categories of accounted time. The mapping to the paper's stacked-bar
// figures is:
//
//	"work lock mgr"       = LockMgrWork
//	"contention lock mgr" = LockMgrContention
//	"work SLI"            = SLIWork (Figure 10 only)
//	"contention SLI"      = SLIContention (Figure 10 only)
//	"work other"          = LogWork + AbortLogWork + UndoWork + BufferWork +
//	                        TxWork
//	"contention other"    = LogReserveWait + LogBufferFullWait +
//	                        BufferContention + LatchContention
//	"log flush"           = LogFlush (commit-fsync wait, reported separately)
//
// LockWait (blocked on a logical lock conflict) and IOWait are excluded from
// the breakdown bars, matching the paper ("not counting time spent blocked on
// I/O or true lock conflicts").
//
// LogFlush is the time a committing transaction spends waiting for the
// group-commit force of its commit record — fsync latency, not log-latch
// contention. Keeping it separate lets the figures show exactly what Early
// Lock Release removes from the lock hold time (the locks are released
// before this wait when ELR is on).
//
// The old catch-all LogContention category is split in two so the log-buffer
// ablation can show what the consolidated reserve/fill/publish buffer
// removes: LogReserveWait is the time spent entering the log's reservation
// critical section (the whole centralized log mutex under MutexLog; the
// short reservation latch under the consolidated buffer) — the contention
// the consolidated buffer attacks — while LogBufferFullWait is the time
// blocked because the buffer had no space and the flusher had to drain it
// first, a sizing/backpressure signal rather than latch contention.
//
// The abort path gets its own attribution so the high-abort-rate ablation
// can show what ELR-for-aborts removes from lock hold times: UndoWork is the
// time spent applying in-memory undo actions during rollback, and
// AbortLogWork is the encode/reserve work of appending the rollback's CLR
// and abort records (the abort-path share of what LogWork measures on the
// forward path; reserve and buffer-full waits still land in their own
// categories). The strict abort's wait for the abort record to become
// durable is attributed to LogFlush, exactly like a commit's force — that is
// the wait ELR-for-aborts moves out of the lock hold window.
const (
	LockMgrWork Category = iota
	LockMgrContention
	SLIWork
	SLIContention
	LogWork
	LogReserveWait
	LogBufferFullWait
	LogFlush
	BufferWork
	BufferContention
	LatchContention
	TxWork
	UndoWork
	AbortLogWork
	LockWait
	IOWait
	numCategories
)

// String returns a short human-readable name for the category.
func (c Category) String() string {
	switch c {
	case LockMgrWork:
		return "lockmgr-work"
	case LockMgrContention:
		return "lockmgr-contention"
	case SLIWork:
		return "sli-work"
	case SLIContention:
		return "sli-contention"
	case LogWork:
		return "log-work"
	case LogReserveWait:
		return "log-reserve-wait"
	case LogBufferFullWait:
		return "log-buffer-full-wait"
	case LogFlush:
		return "log-flush"
	case BufferWork:
		return "buffer-work"
	case BufferContention:
		return "buffer-contention"
	case LatchContention:
		return "latch-contention"
	case TxWork:
		return "tx-work"
	case UndoWork:
		return "undo-work"
	case AbortLogWork:
		return "abort-log-work"
	case LockWait:
		return "lock-wait"
	case IOWait:
		return "io-wait"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Handle accumulates time for a single agent thread. A Handle may be shared
// across goroutines (the counters are atomic) but is normally owned by one
// agent.
type Handle struct {
	nanos [numCategories]atomic.Int64
}

// Add attributes d to category c. Negative durations are ignored.
func (h *Handle) Add(c Category, d time.Duration) {
	if h == nil || d <= 0 {
		return
	}
	h.nanos[c].Add(int64(d))
}

// Timed runs fn and attributes its elapsed time to category c.
func (h *Handle) Timed(c Category, fn func()) {
	if h == nil {
		fn()
		return
	}
	start := time.Now()
	fn()
	h.nanos[c].Add(int64(time.Since(start)))
}

// Snapshot returns the per-category durations accumulated so far.
func (h *Handle) Snapshot() Breakdown {
	var b Breakdown
	if h == nil {
		return b
	}
	for c := Category(0); c < numCategories; c++ {
		b[c] = time.Duration(h.nanos[c].Load())
	}
	return b
}

// Reset zeroes all counters.
func (h *Handle) Reset() {
	if h == nil {
		return
	}
	for c := Category(0); c < numCategories; c++ {
		h.nanos[c].Store(0)
	}
}

// Breakdown is a per-category accounting of time.
type Breakdown [numCategories]time.Duration

// Get returns the time attributed to category c.
func (b Breakdown) Get(c Category) time.Duration { return b[c] }

// Add returns the element-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	var r Breakdown
	for i := range b {
		r[i] = b[i] + o[i]
	}
	return r
}

// Sub returns the element-wise difference b - o, clamped at zero.
func (b Breakdown) Sub(o Breakdown) Breakdown {
	var r Breakdown
	for i := range b {
		r[i] = b[i] - o[i]
		if r[i] < 0 {
			r[i] = 0
		}
	}
	return r
}

// Total returns the sum of all categories except the excluded wait
// categories (LockWait and IOWait), i.e. the denominator used for the
// paper-style normalized breakdown.
func (b Breakdown) Total() time.Duration {
	var t time.Duration
	for c := Category(0); c < numCategories; c++ {
		if c == LockWait || c == IOWait {
			continue
		}
		t += b[c]
	}
	return t
}

// GroupedShares folds the detailed categories into the four (or six, with
// SLI) stacked-bar groups used by the paper's figures and returns each
// group's share of the total. The shares sum to 1 when the total is nonzero.
func (b Breakdown) GroupedShares() Shares {
	total := b.Total()
	if total == 0 {
		return Shares{}
	}
	f := func(d time.Duration) float64 { return float64(d) / float64(total) }
	return Shares{
		LockMgrWork:       f(b[LockMgrWork]),
		LockMgrContention: f(b[LockMgrContention]),
		SLI:               f(b[SLIWork] + b[SLIContention]),
		OtherWork:         f(b[LogWork] + b[AbortLogWork] + b[UndoWork] + b[BufferWork] + b[TxWork]),
		OtherContention:   f(b[LogReserveWait] + b[LogBufferFullWait] + b[BufferContention] + b[LatchContention]),
		LogFlush:          f(b[LogFlush]),
	}
}

// Shares is the normalized (fraction-of-total) form of a Breakdown, folded
// into the groups the paper plots, plus the commit-flush wait the scalable
// commit pipeline tracks separately.
type Shares struct {
	LockMgrWork       float64
	LockMgrContention float64
	SLI               float64
	OtherWork         float64
	OtherContention   float64
	LogFlush          float64
}

// String formats the shares as percentages, in the order the paper's legends
// use.
func (s Shares) String() string {
	return fmt.Sprintf("lockmgr-work=%.1f%% lockmgr-cont=%.1f%% sli=%.1f%% other-work=%.1f%% other-cont=%.1f%% log-flush=%.1f%%",
		100*s.LockMgrWork, 100*s.LockMgrContention, 100*s.SLI, 100*s.OtherWork, 100*s.OtherContention, 100*s.LogFlush)
}

// Profiler owns the Handles of all agent threads in an engine instance and
// aggregates them into system-wide breakdowns.
type Profiler struct {
	mu      sync.Mutex
	handles []*Handle
	enabled bool
	// base accumulates the time folded out of the handles by Reset, so that
	// Lifetime stays monotonic across measurement-interval resets — the
	// snapshot-diff that lets the metrics exporter publish the categories as
	// Prometheus counters while benchmark harnesses keep resetting the
	// per-interval view.
	base Breakdown
}

// New creates a Profiler. When enabled is false, NewHandle returns nil
// handles, which silently discard all accounting (zero overhead beyond a nil
// check).
func New(enabled bool) *Profiler {
	return &Profiler{enabled: enabled}
}

// Enabled reports whether the profiler is collecting data.
func (p *Profiler) Enabled() bool { return p != nil && p.enabled }

// NewHandle registers and returns a new per-agent Handle, or nil if the
// profiler is disabled or nil.
func (p *Profiler) NewHandle() *Handle {
	if p == nil || !p.enabled {
		return nil
	}
	h := &Handle{}
	p.mu.Lock()
	p.handles = append(p.handles, h)
	p.mu.Unlock()
	return h
}

// Aggregate sums the breakdowns of every registered handle.
func (p *Profiler) Aggregate() Breakdown {
	var b Breakdown
	if p == nil {
		return b
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range p.handles {
		b = b.Add(h.Snapshot())
	}
	return b
}

// Reset zeroes every registered handle, folding the accumulated time into
// the lifetime baseline first so Lifetime never goes backwards. Increments
// that land between a handle's snapshot and its zeroing are lost from both
// views — an accepted sliver of undercount, never a double count.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range p.handles {
		p.base = p.base.Add(h.Snapshot())
		h.Reset()
	}
}

// Lifetime returns the total per-category time accumulated since the
// profiler was created, unaffected by Reset: the sum of everything Reset has
// folded into the baseline plus the live handles. It is the monotonic view
// the metrics exporter publishes; Aggregate remains the interval-scoped view
// the benchmark harness resets around each measurement.
func (p *Profiler) Lifetime() Breakdown {
	var b Breakdown
	if p == nil {
		return b
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	b = p.base
	for _, h := range p.handles {
		b = b.Add(h.Snapshot())
	}
	return b
}
