//go:build linux

package wal

import (
	"os"
	"runtime"
	"syscall"
	"unsafe"
)

// maxIovecs bounds one pwritev submission; Linux caps a vector at IOV_MAX
// (1024) entries. A group-commit cycle is at most a handful of ranges, so
// the bound only matters for defensive completeness.
const maxIovecs = 1024

// writevAt lands every buffer at consecutive file offsets starting at off
// with pwritev(2) — the whole group-commit cycle in one syscall — retrying
// partial writes and EINTR. The raw syscall keeps the package free of
// golang.org/x/sys; on 64-bit Linux pwritev takes the position as (pos_l,
// pos_h) with pos_h zero.
func writevAt(f *os.File, bufs [][]byte, off int64) error {
	// Work on a private header slice: partial-write bookkeeping below
	// re-slices entries, and the caller reuses its batch.
	bufs = append([][]byte(nil), bufs...)
	iovs := make([]syscall.Iovec, 0, min(len(bufs), maxIovecs))
	for len(bufs) > 0 {
		iovs = iovs[:0]
		for _, b := range bufs {
			if len(b) == 0 {
				continue
			}
			if len(iovs) == maxIovecs {
				break
			}
			iovs = append(iovs, syscall.Iovec{Base: &b[0], Len: uint64(len(b))})
		}
		if len(iovs) == 0 {
			return nil
		}
		n, _, errno := syscall.Syscall6(syscall.SYS_PWRITEV, f.Fd(),
			uintptr(unsafe.Pointer(&iovs[0])), uintptr(len(iovs)),
			uintptr(off), 0, 0)
		runtime.KeepAlive(bufs)
		if errno != 0 {
			if errno == syscall.EINTR || errno == syscall.EAGAIN {
				continue
			}
			if errno == syscall.ENOSYS {
				return writevFallback(f, bufs, off)
			}
			return errno
		}
		written := int64(n)
		off += written
		for written > 0 {
			if b := int64(len(bufs[0])); b <= written {
				written -= b
				bufs = bufs[1:]
			} else {
				bufs[0] = bufs[0][written:]
				written = 0
			}
		}
		for len(bufs) > 0 && len(bufs[0]) == 0 {
			bufs = bufs[1:]
		}
	}
	return nil
}
