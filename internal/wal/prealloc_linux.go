//go:build linux

package wal

import (
	"os"
	"syscall"
)

// sysPreallocImpl extends f to size bytes with fallocate(2), mode 0: the
// file size grows and the blocks are really allocated, so later writes into
// the region never block on file-system allocation. File systems that do not
// support fallocate return ENOTSUP/EOPNOTSUPP, which the caller downgrades
// to a plain truncate.
func sysPreallocImpl(f *os.File, size int64) error {
	return syscall.Fallocate(int(f.Fd()), 0, 0, size)
}
