package wal

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// captureSink is an in-memory DurableSink + RangeSink that records exactly
// the bytes it was handed, so tests can assert that the consolidated
// buffer's range writes are byte-identical to the records' encodings laid
// out at their byte-offset LSNs.
type captureSink struct {
	mu     sync.Mutex
	data   bytes.Buffer
	ranges int
	syncs  int
}

func (c *captureSink) WriteRecord(rec Record, encoded []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Write(encoded)
	return nil
}

func (c *captureSink) WriteRange(encoded []byte, first LSN) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Write(encoded)
	c.ranges++
	return nil
}

func (c *captureSink) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncs++
	return nil
}

func (c *captureSink) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.data.Bytes()...)
}

// recordSink is a DurableSink WITHOUT the range fast path (no WriteRange
// method at all), forcing the flusher's per-record compatibility path.
type recordSink struct {
	mu   sync.Mutex
	recs []Record
}

func (r *recordSink) WriteRecord(rec Record, encoded []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, rec)
	return nil
}

func (r *recordSink) Sync() error { return nil }

func (r *recordSink) records() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Record(nil), r.recs...)
}

// decodeAll decodes every frame in data — a contiguous slice of the virtual
// log starting at offset base — assigning each record its byte-offset LSN,
// and failing the test on any error or trailing garbage.
func decodeAll(t *testing.T, data []byte, base LSN) []Record {
	t.Helper()
	var out []Record
	reader := bytes.NewReader(data)
	at := base
	for {
		rec, pad, frame, err := decodeCounted(reader)
		if err != nil {
			break
		}
		rec.LSN = at.Advance(int64(pad))
		at = at.Advance(int64(pad + frame))
		out = append(out, rec)
	}
	if reader.Len() != 0 {
		t.Fatalf("%d undecodable trailing bytes in sink stream", reader.Len())
	}
	return out
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	cases := []Record{
		{},
		{XID: 1, Type: RecBegin},
		{XID: 1 << 50, Type: RecUpdate, Table: 1 << 20, Page: 1 << 55, Slot: 1 << 30,
			Before: bytes.Repeat([]byte{0xab}, 300), After: bytes.Repeat([]byte{0xcd}, 7)},
		sampleRecord(),
	}
	for i, rec := range cases {
		enc := rec.Encode()
		if got := rec.EncodedSize(); got != len(enc) {
			t.Fatalf("case %d: EncodedSize = %d, Encode produced %d bytes", i, got, len(enc))
		}
		buf := make([]byte, rec.EncodedSize())
		if n := rec.EncodeTo(buf); n != len(enc) || !bytes.Equal(buf[:n], enc) {
			t.Fatalf("case %d: EncodeTo produced different bytes than Encode", i)
		}
	}
}

// verifyStream checks that the sink stream decodes to exactly the appended
// records, each at the byte-offset LSN Append returned, with nothing extra.
func verifyStream(t *testing.T, data []byte, want map[LSN]Record) {
	t.Helper()
	got := decodeAll(t, data, 1)
	if len(got) != len(want) {
		t.Fatalf("sink decoded %d records, want %d", len(got), len(want))
	}
	for _, rec := range got {
		w, ok := want[rec.LSN]
		if !ok {
			t.Fatalf("no record was appended at offset %d", rec.LSN)
		}
		if !reflect.DeepEqual(rec, w) {
			t.Fatalf("LSN %d round-trip mismatch:\nwant %+v\ngot  %+v", rec.LSN, w, rec)
		}
		if !bytes.Equal(rec.Encode(), w.Encode()) {
			t.Fatalf("LSN %d not byte-identical through the shared buffer", rec.LSN)
		}
	}
}

// TestConsolidatedConcurrentAppendsRoundTrip is the core reserve/fill/publish
// correctness test for the fetch-and-add protocol: many appenders race into a
// small buffer (forcing ring wraparound padding and buffer-full waits), and
// the stream handed to the sink must decode to exactly the records appended,
// each at the byte offset its Append returned.
func TestConsolidatedConcurrentAppendsRoundTrip(t *testing.T) {
	for _, latched := range []bool{false, true} {
		t.Run(fmt.Sprintf("latched=%v", latched), func(t *testing.T) {
			sink := &captureSink{}
			l := New(Config{Durable: sink, DropAfterFlush: true, BufferBytes: 8 << 10, LatchedLog: latched})
			const (
				appenders  = 8
				perAppend  = 200
				totalRecs  = appenders * perAppend
				maxPayload = 200
			)
			var mu sync.Mutex
			want := make(map[LSN]Record, totalRecs)
			var wg sync.WaitGroup
			for g := 0; g < appenders; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perAppend; i++ {
						rec := Record{
							XID:   uint64(g + 1),
							Type:  RecUpdate,
							Table: uint32(g),
							Page:  uint64(i),
							Slot:  uint32(i % 7),
							After: bytes.Repeat([]byte{byte(g)}, 1+(g*31+i*17)%maxPayload),
						}
						lsn, err := l.Append(rec)
						if err != nil {
							t.Errorf("append: %v", err)
							return
						}
						rec.LSN = lsn
						mu.Lock()
						want[lsn] = rec
						mu.Unlock()
						// Subscribe occasionally so flushing interleaves with appends.
						if i%32 == 0 {
							//slint:ignore errwedge the subscription only interleaves flushing with appends; the ack is irrelevant
							l.FlushAsync(lsn)
						}
					}
				}(g)
			}
			wg.Wait()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			verifyStream(t, sink.bytes(), want)
			if got, wantEnd := l.DurableLSN(), l.LastLSN(); got != wantEnd {
				t.Fatalf("DurableLSN = %d, want the drained end %d", got, wantEnd)
			}
		})
	}
}

// TestConsolidatedBackpressureDrainsWithoutSubscriptions pins the pressure
// path: a single appender writing more bytes than the buffer holds — with no
// durability subscription anywhere — must not deadlock; blocked reservations
// kick the flusher directly.
func TestConsolidatedBackpressureDrainsWithoutSubscriptions(t *testing.T) {
	sink := &captureSink{}
	l := New(Config{Durable: sink, DropAfterFlush: true, BufferBytes: 4 << 10})
	payload := bytes.Repeat([]byte{0x5a}, 512)
	const n = 64 // 64 * ~520B is several times the buffer
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if _, err := l.Append(Record{XID: 1, Type: RecInsert, After: payload}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("appends deadlocked on a full buffer with no flush subscription")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := decodeAll(t, sink.bytes(), 1); len(got) != n {
		t.Fatalf("sink decoded %d records, want %d", len(got), n)
	}
}

// TestConsolidatedMatchesPerRecordSink runs the same appends through a
// range-capable sink and a records-only sink. The range stream carries the
// wraparound padding bytes (they are part of the virtual log); the record
// stream elides them but delivers every record with its byte-offset LSN —
// decoding both must yield the identical record sequence at identical
// addresses.
func TestConsolidatedMatchesPerRecordSink(t *testing.T) {
	fast := &captureSink{}
	slow := &recordSink{}
	lf := New(Config{Durable: fast, DropAfterFlush: true, BufferBytes: 4 << 10})
	ls := New(Config{Durable: slow, DropAfterFlush: true, BufferBytes: 4 << 10})
	for i := 0; i < 300; i++ {
		rec := Record{XID: uint64(i % 5), Type: RecUpdate, Table: 2, Page: uint64(i),
			Before: bytes.Repeat([]byte{1}, i%90), After: bytes.Repeat([]byte{2}, (i*3)%50)}
		if _, err := lf.Append(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := ls.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	if fast.ranges == 0 {
		t.Fatal("range fast path never used despite RangeSink implementation")
	}
	fromRanges := decodeAll(t, fast.bytes(), 1)
	fromRecords := slow.records()
	if !reflect.DeepEqual(fromRanges, fromRecords) {
		t.Fatalf("range-written stream decodes differently from per-record stream:\nranges:  %d recs\nrecords: %d recs", len(fromRanges), len(fromRecords))
	}
}

// TestMutexLogModeMatchesConsolidated pins the ablation baselines: the
// legacy mutex-per-append path and the PR-3 latched reservation must both
// produce the same on-disk byte stream as the fetch-and-add buffer. (The
// buffer is large enough that no wraparound padding occurs; the mutex path,
// having no ring, never pads.)
func TestMutexLogModeMatchesConsolidated(t *testing.T) {
	legacy := &captureSink{}
	latched := &captureSink{}
	cons := &captureSink{}
	ll := New(Config{Durable: legacy, DropAfterFlush: true, MutexLog: true})
	lt := New(Config{Durable: latched, DropAfterFlush: true, LatchedLog: true})
	lc := New(Config{Durable: cons, DropAfterFlush: true})
	for i := 0; i < 100; i++ {
		rec := Record{XID: 9, Type: RecInsert, Table: 1, Page: uint64(i), After: []byte("payload")}
		for _, l := range []*Log{ll, lt, lc} {
			if _, err := l.Append(rec); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, l := range []*Log{ll, lt, lc} {
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if legacy.ranges != 0 {
		t.Fatal("MutexLog mode must not use the range fast path")
	}
	if !bytes.Equal(legacy.bytes(), cons.bytes()) {
		t.Fatal("MutexLog byte stream differs from fetch-and-add byte stream")
	}
	if !bytes.Equal(latched.bytes(), cons.bytes()) {
		t.Fatal("latched-reservation byte stream differs from fetch-and-add byte stream")
	}
}

// TestLatchedMatchesFetchAndAddAcrossWraparound extends the byte-identity
// pin to a tiny ring: a deterministic single-threaded append sequence makes
// identical reservation decisions — including wraparound padding placement —
// under both protocols, so even the padding bytes must line up.
func TestLatchedMatchesFetchAndAddAcrossWraparound(t *testing.T) {
	faa := &captureSink{}
	lat := &captureSink{}
	lf := New(Config{Durable: faa, DropAfterFlush: true, BufferBytes: 4 << 10})
	ll := New(Config{Durable: lat, DropAfterFlush: true, BufferBytes: 4 << 10, LatchedLog: true})
	for i := 0; i < 400; i++ {
		rec := Record{XID: uint64(i), Type: RecUpdate, Table: 3, Page: uint64(i),
			After: bytes.Repeat([]byte{byte(i)}, (i*37)%257)}
		if _, err := lf.Append(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := ll.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ll.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(faa.bytes(), lat.bytes()) {
		t.Fatal("fetch-and-add and latched reservation produced different byte streams")
	}
}

// TestFlushAsyncReopenEdge pins the clamp-then-recheck fix: on a log
// reopened at StartLSN with nothing appended yet, subscriptions at or below
// the recovered durable prefix — and subscriptions beyond the last append,
// which clamp down to it — must acknowledge immediately instead of
// registering a waiter that no flush cycle ever satisfies.
func TestFlushAsyncReopenEdge(t *testing.T) {
	for _, mutexLog := range []bool{false, true} {
		t.Run(fmt.Sprintf("mutexLog=%v", mutexLog), func(t *testing.T) {
			l := New(Config{StartLSN: 100, MutexLog: mutexLog})
			for _, upTo := range []LSN{0, 1, 50, 99, 100, 1000} {
				select {
				case err := <-l.FlushAsync(upTo):
					if err != nil {
						t.Fatalf("FlushAsync(%d) on reopened empty log: %v", upTo, err)
					}
				case <-time.After(2 * time.Second):
					t.Fatalf("FlushAsync(%d) on reopened empty log never acked (head == StartLSN edge)", upTo)
				}
			}
			// The log still works normally past the recovered prefix.
			lsn, err := l.Append(Record{XID: 1, Type: RecCommit})
			if err != nil {
				t.Fatal(err)
			}
			if lsn != 100 {
				t.Fatalf("first LSN after reopen = %d, want 100", lsn)
			}
			if err := l.Flush(lsn); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestCloseRacingAppendsNeverLosesAcceptedRecord pins Close's contract
// against the lock-free reservation: an Append racing Close either fails
// (and leaves no record — the claim, if any, is padded out) or succeeds and
// its record is in the sink when Close returns. The race window is a few
// instructions wide (between reserveAtomic's wedge check and its CAS), so
// hammer it.
func TestCloseRacingAppendsNeverLosesAcceptedRecord(t *testing.T) {
	for round := 0; round < 50; round++ {
		sink := &captureSink{}
		l := New(Config{Durable: sink, DropAfterFlush: true, BufferBytes: 8 << 10})
		const appenders = 4
		accepted := make([]map[LSN]Record, appenders)
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < appenders; g++ {
			accepted[g] = make(map[LSN]Record)
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					rec := Record{XID: uint64(g + 1), Type: RecInsert, Page: uint64(i), After: []byte{byte(g), byte(i)}}
					lsn, err := l.Append(rec)
					if err != nil {
						return
					}
					rec.LSN = lsn
					accepted[g][lsn] = rec
					select {
					case <-stop:
						return
					default:
					}
				}
			}(g)
		}
		// Let the appenders get going, then slam the door.
		time.Sleep(200 * time.Microsecond)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		got := decodeAll(t, sink.bytes(), 1)
		have := make(map[LSN]Record, len(got))
		for _, r := range got {
			have[r.LSN] = r
		}
		for g := range accepted {
			for lsn, want := range accepted[g] {
				r, ok := have[lsn]
				if !ok {
					t.Fatalf("round %d: Append returned (lsn=%d, nil) but Close did not drain the record", round, lsn)
				}
				if !reflect.DeepEqual(r, want) {
					t.Fatalf("round %d: drained record at %d differs: %+v vs %+v", round, lsn, r, want)
				}
			}
		}
	}
}

// stuckSink parks the flusher inside its first write until released, keeping
// the buffer full so tests can observe reservers blocked on space.
type stuckSink struct {
	release chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (s *stuckSink) WriteRecord(rec Record, encoded []byte) error {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return nil
}

func (s *stuckSink) WriteRange(encoded []byte, first LSN) error {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return nil
}

func (s *stuckSink) Sync() error { return nil }

// TestConsolidatedCrashFailsBlockedReservers: a reserver blocked on a full
// buffer must wake with the crash error, not hang — even while the flusher
// is wedged inside a sink write and can never drain. The CAS-loop design
// makes this clean: a waiting reserver holds no claim, so failing it leaves
// no hole in the publish fence.
func TestConsolidatedCrashFailsBlockedReservers(t *testing.T) {
	for _, latched := range []bool{false, true} {
		t.Run(fmt.Sprintf("latched=%v", latched), func(t *testing.T) {
			sink := &stuckSink{release: make(chan struct{}), entered: make(chan struct{})}
			defer close(sink.release)
			l := New(Config{BufferBytes: 4 << 10, Durable: sink, DropAfterFlush: true, LatchedLog: latched})
			payload := bytes.Repeat([]byte{1}, 1024)
			errc := make(chan error, 1)
			go func() {
				for i := 0; i < 16; i++ {
					if _, err := l.Append(Record{XID: 1, Type: RecInsert, After: payload}); err != nil {
						errc <- err
						return
					}
				}
				errc <- nil
			}()
			// Wait for the flusher to wedge in the sink, then give the appender time
			// to refill the buffer and block on space that will never be released.
			select {
			case <-sink.entered:
			case <-time.After(5 * time.Second):
				t.Fatal("flusher never reached the sink")
			}
			time.Sleep(50 * time.Millisecond)
			l.Crash()
			select {
			case err := <-errc:
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("blocked reserver got %v, want ErrCrashed", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("reserver stayed blocked across Crash")
			}
		})
	}
}
