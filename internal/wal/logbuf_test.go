package wal

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// captureSink is an in-memory DurableSink + RangeSink that records exactly
// the bytes it was handed, so tests can assert that the consolidated
// buffer's range writes are byte-identical to per-record encoding.
type captureSink struct {
	mu     sync.Mutex
	data   bytes.Buffer
	ranges int
	syncs  int
}

func (c *captureSink) WriteRecord(rec Record, encoded []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Write(encoded)
	return nil
}

func (c *captureSink) WriteRange(encoded []byte, first, last LSN) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data.Write(encoded)
	c.ranges++
	return nil
}

func (c *captureSink) Sync() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncs++
	return nil
}

func (c *captureSink) bytes() []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.data.Bytes()...)
}

// recordSink is a DurableSink WITHOUT the range fast path (no WriteRange
// method at all), forcing the flusher's per-record compatibility path.
type recordSink struct {
	mu   sync.Mutex
	data bytes.Buffer
}

func (r *recordSink) WriteRecord(rec Record, encoded []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.data.Write(encoded)
	return nil
}

func (r *recordSink) Sync() error { return nil }

func (r *recordSink) bytes() []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]byte(nil), r.data.Bytes()...)
}

// decodeAll decodes every frame in data, failing the test on any error.
func decodeAll(t *testing.T, data []byte) []Record {
	t.Helper()
	var out []Record
	reader := bytes.NewReader(data)
	for {
		rec, err := DecodeFrom(reader)
		if err != nil {
			break
		}
		out = append(out, rec)
	}
	if reader.Len() != 0 {
		t.Fatalf("%d undecodable trailing bytes in sink stream", reader.Len())
	}
	return out
}

func TestEncodedSizeMatchesEncode(t *testing.T) {
	cases := []Record{
		{},
		{LSN: 1, XID: 1, Type: RecBegin},
		{LSN: 1 << 40, XID: 1 << 50, Type: RecUpdate, Table: 1 << 20, Page: 1 << 55, Slot: 1 << 30,
			Before: bytes.Repeat([]byte{0xab}, 300), After: bytes.Repeat([]byte{0xcd}, 7)},
		sampleRecord(),
	}
	for i, rec := range cases {
		enc := rec.Encode()
		if got := rec.EncodedSize(); got != len(enc) {
			t.Fatalf("case %d: EncodedSize = %d, Encode produced %d bytes", i, got, len(enc))
		}
		buf := make([]byte, rec.EncodedSize())
		if n := rec.EncodeTo(buf); n != len(enc) || !bytes.Equal(buf[:n], enc) {
			t.Fatalf("case %d: EncodeTo produced different bytes than Encode", i)
		}
	}
}

// TestConsolidatedConcurrentAppendsRoundTrip is the core reserve/fill/publish
// correctness test: many appenders race into a small buffer (forcing ring
// wraparound, padding, and buffer-full waits), and the stream handed to the
// sink must decode to exactly the records appended, in contiguous LSN order,
// byte-identical to their individual encodings.
func TestConsolidatedConcurrentAppendsRoundTrip(t *testing.T) {
	sink := &captureSink{}
	l := New(Config{Durable: sink, DropAfterFlush: true, BufferBytes: 8 << 10})
	const (
		appenders  = 8
		perAppend  = 200
		totalRecs  = appenders * perAppend
		maxPayload = 200
	)
	var mu sync.Mutex
	want := make(map[LSN]Record, totalRecs)
	var wg sync.WaitGroup
	for g := 0; g < appenders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perAppend; i++ {
				rec := Record{
					XID:   uint64(g + 1),
					Type:  RecUpdate,
					Table: uint32(g),
					Page:  uint64(i),
					Slot:  uint32(i % 7),
					After: bytes.Repeat([]byte{byte(g)}, 1+(g*31+i*17)%maxPayload),
				}
				lsn, err := l.Append(rec)
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				rec.LSN = lsn
				mu.Lock()
				want[lsn] = rec
				mu.Unlock()
				// Subscribe occasionally so flushing interleaves with appends.
				if i%32 == 0 {
					l.FlushAsync(lsn)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got := decodeAll(t, sink.bytes())
	if len(got) != totalRecs {
		t.Fatalf("sink decoded %d records, want %d", len(got), totalRecs)
	}
	for i, rec := range got {
		if rec.LSN != LSN(i+1) {
			t.Fatalf("record %d has LSN %d: stream not in contiguous LSN order", i, rec.LSN)
		}
		w, ok := want[rec.LSN]
		if !ok {
			t.Fatalf("LSN %d was never appended", rec.LSN)
		}
		if !reflect.DeepEqual(rec, w) {
			t.Fatalf("LSN %d round-trip mismatch:\nwant %+v\ngot  %+v", rec.LSN, w, rec)
		}
		if !bytes.Equal(rec.Encode(), w.Encode()) {
			t.Fatalf("LSN %d not byte-identical through the shared buffer", rec.LSN)
		}
	}
	if l.DurableLSN() != LSN(totalRecs) {
		t.Fatalf("DurableLSN = %d, want %d", l.DurableLSN(), totalRecs)
	}
}

// TestConsolidatedBackpressureDrainsWithoutSubscriptions pins the pressure
// path: a single appender writing more bytes than the buffer holds — with no
// durability subscription anywhere — must not deadlock; blocked reservations
// kick the flusher directly.
func TestConsolidatedBackpressureDrainsWithoutSubscriptions(t *testing.T) {
	sink := &captureSink{}
	l := New(Config{Durable: sink, DropAfterFlush: true, BufferBytes: 4 << 10})
	payload := bytes.Repeat([]byte{0x5a}, 512)
	const n = 64 // 64 * ~520B is several times the buffer
	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if _, err := l.Append(Record{XID: 1, Type: RecInsert, After: payload}); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("appends deadlocked on a full buffer with no flush subscription")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := decodeAll(t, sink.bytes()); len(got) != n {
		t.Fatalf("sink decoded %d records, want %d", len(got), n)
	}
}

// TestConsolidatedMatchesPerRecordSink runs the same appends through a
// range-capable sink and a records-only sink: the byte streams must be
// identical, proving the range fast path changes no on-disk bytes.
func TestConsolidatedMatchesPerRecordSink(t *testing.T) {
	fast := &captureSink{}
	slow := &recordSink{}
	lf := New(Config{Durable: fast, DropAfterFlush: true, BufferBytes: 4 << 10})
	ls := New(Config{Durable: slow, DropAfterFlush: true, BufferBytes: 4 << 10})
	for i := 0; i < 300; i++ {
		rec := Record{XID: uint64(i % 5), Type: RecUpdate, Table: 2, Page: uint64(i),
			Before: bytes.Repeat([]byte{1}, i%90), After: bytes.Repeat([]byte{2}, (i*3)%50)}
		if _, err := lf.Append(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := ls.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := lf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ls.Close(); err != nil {
		t.Fatal(err)
	}
	if fast.ranges == 0 {
		t.Fatal("range fast path never used despite RangeSink implementation")
	}
	if !bytes.Equal(fast.bytes(), slow.bytes()) {
		t.Fatal("range-written stream differs from per-record stream")
	}
}

// TestMutexLogModeMatchesConsolidated pins the ablation baseline: the legacy
// mutex-per-append path must produce the same on-disk byte stream as the
// consolidated buffer.
func TestMutexLogModeMatchesConsolidated(t *testing.T) {
	legacy := &captureSink{}
	cons := &captureSink{}
	ll := New(Config{Durable: legacy, DropAfterFlush: true, MutexLog: true})
	lc := New(Config{Durable: cons, DropAfterFlush: true})
	for i := 0; i < 100; i++ {
		rec := Record{XID: 9, Type: RecInsert, Table: 1, Page: uint64(i), After: []byte("payload")}
		if _, err := ll.Append(rec); err != nil {
			t.Fatal(err)
		}
		if _, err := lc.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := ll.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lc.Close(); err != nil {
		t.Fatal(err)
	}
	if legacy.ranges != 0 {
		t.Fatal("MutexLog mode must not use the range fast path")
	}
	if !bytes.Equal(legacy.bytes(), cons.bytes()) {
		t.Fatal("MutexLog byte stream differs from consolidated byte stream")
	}
}

// TestFlushAsyncReopenEdge pins the clamp-then-recheck fix: on a log
// reopened at StartLSN with nothing appended yet, subscriptions at or below
// the recovered durable prefix — and subscriptions beyond the last append,
// which clamp down to it — must acknowledge immediately instead of
// registering a waiter that no flush cycle ever satisfies.
func TestFlushAsyncReopenEdge(t *testing.T) {
	for _, mutexLog := range []bool{false, true} {
		t.Run(fmt.Sprintf("mutexLog=%v", mutexLog), func(t *testing.T) {
			l := New(Config{StartLSN: 100, MutexLog: mutexLog})
			for _, upTo := range []LSN{0, 1, 50, 99, 100, 1000} {
				select {
				case err := <-l.FlushAsync(upTo):
					if err != nil {
						t.Fatalf("FlushAsync(%d) on reopened empty log: %v", upTo, err)
					}
				case <-time.After(2 * time.Second):
					t.Fatalf("FlushAsync(%d) on reopened empty log never acked (nextLSN == StartLSN edge)", upTo)
				}
			}
			// The log still works normally past the recovered prefix.
			lsn, err := l.Append(Record{XID: 1, Type: RecCommit})
			if err != nil {
				t.Fatal(err)
			}
			if lsn != 100 {
				t.Fatalf("first LSN after reopen = %d, want 100", lsn)
			}
			if err := l.Flush(lsn); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// stuckSink parks the flusher inside its first write until released, keeping
// the buffer full so tests can observe reservers blocked on space.
type stuckSink struct {
	release chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (s *stuckSink) WriteRecord(rec Record, encoded []byte) error {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return nil
}

func (s *stuckSink) WriteRange(encoded []byte, first, last LSN) error {
	s.once.Do(func() { close(s.entered) })
	<-s.release
	return nil
}

func (s *stuckSink) Sync() error { return nil }

// TestConsolidatedCrashFailsBlockedReservers: a reserver blocked on a full
// buffer must wake with the crash error, not hang — even while the flusher
// is wedged inside a sink write and can never drain.
func TestConsolidatedCrashFailsBlockedReservers(t *testing.T) {
	sink := &stuckSink{release: make(chan struct{}), entered: make(chan struct{})}
	defer close(sink.release)
	l := New(Config{BufferBytes: 4 << 10, Durable: sink, DropAfterFlush: true})
	payload := bytes.Repeat([]byte{1}, 1024)
	errc := make(chan error, 1)
	go func() {
		for i := 0; i < 16; i++ {
			if _, err := l.Append(Record{XID: 1, Type: RecInsert, After: payload}); err != nil {
				errc <- err
				return
			}
		}
		errc <- nil
	}()
	// Wait for the flusher to wedge in the sink, then give the appender time
	// to refill the buffer and block on space that will never be released.
	select {
	case <-sink.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("flusher never reached the sink")
	}
	time.Sleep(50 * time.Millisecond)
	l.Crash()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("blocked reserver got %v, want ErrCrashed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reserver stayed blocked across Crash")
	}
}
