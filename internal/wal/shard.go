package wal

// Sharded virtual logs. Config.LogShards (a core-level knob) splits the
// write-ahead log into independent virtual address spaces, each with its own
// reserve/fill/publish buffer, fetch-and-add head, flusher goroutine and
// segment directory. This file holds the pieces the shards share:
//
//   - ShardAddr, the shard-qualified log address (shard id + byte-offset
//     LSN). Offsets from different shards live in unrelated address spaces;
//     mixing them in arithmetic or comparisons is always a bug, and the
//     densearith analyzer (cmd/slint) flags it at compile time.
//   - The participant mask carried by cross-shard commit records: a commit
//     touching more than one shard appends a commit record to every
//     participant, each carrying the full participant set in its After
//     image, so recovery can treat the transaction as committed iff every
//     participant's commit record survived.
//   - The on-disk layout: shard-NN/ subdirectories of the data directory,
//     one per shard, each holding an ordinary segment directory. A
//     single-shard log keeps the flat pre-shard layout, so LogShards=1
//     directories remain byte-compatible with earlier versions.

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// MaxLogShards bounds the shard count so a participant set always fits one
// 64-bit mask.
const MaxLogShards = 64

// ShardAddr is a shard-qualified log address: the byte offset Off in shard
// Shard's virtual log. Each shard is its own address space starting at
// offset 1; offsets from different shards are unrelated numbers, so every
// method that combines two addresses requires them to name the same shard.
// Raw arithmetic or comparisons mixing Off fields across distinct ShardAddr
// values is flagged by the densearith analyzer.
type ShardAddr struct {
	// Shard is the log shard index, in [0, MaxLogShards).
	Shard int
	// Off is the byte offset within the shard's virtual log.
	Off LSN
}

// Advance returns the address n encoded bytes further into the same shard's
// virtual log.
func (a ShardAddr) Advance(n int64) ShardAddr {
	a.Off = a.Off.Advance(n)
	return a
}

// Next returns the smallest address strictly above a within the same shard —
// the flush watermark that covers the frame starting at a (see LSN.Next).
func (a ShardAddr) Next() ShardAddr {
	a.Off = a.Off.Next()
	return a
}

// Distance returns how many bytes of virtual log separate a from from. Both
// addresses must name the same shard: cross-shard distances do not exist.
func (a ShardAddr) Distance(from ShardAddr) int64 {
	if a.Shard != from.Shard {
		panic(fmt.Sprintf("wal: Distance across log shards %d and %d", a.Shard, from.Shard))
	}
	return a.Off.Distance(from.Off)
}

// Before reports whether a precedes b in the shared shard's address space.
// Both addresses must name the same shard: offsets from different shards are
// unordered.
func (a ShardAddr) Before(b ShardAddr) bool {
	if a.Shard != b.Shard {
		panic(fmt.Sprintf("wal: ordering across log shards %d and %d", a.Shard, b.Shard))
	}
	return a.Off < b.Off
}

// EncodeShardMask serializes a cross-shard commit's participant set for the
// commit record's After image. A single-participant commit carries no mask
// (nil) — its frame stays byte-identical to a pre-shard commit record.
func EncodeShardMask(mask uint64) []byte {
	if mask == 0 || mask&(mask-1) == 0 {
		// Zero or one participant: no mask needed.
		return nil
	}
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, mask)
	return buf
}

// DecodeShardMask parses a commit record's participant set from its After
// image. An empty image means "this shard only" (mask 0: the caller
// substitutes its own shard bit); anything else must be the 8-byte mask.
func DecodeShardMask(b []byte) (uint64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	if len(b) != 8 {
		return 0, fmt.Errorf("wal: malformed commit participant mask (%d bytes)", len(b))
	}
	return binary.LittleEndian.Uint64(b), nil
}

// ShardDirName returns the data-directory subdirectory of log shard i.
func ShardDirName(i int) string { return fmt.Sprintf("shard-%02d", i) }

// parseShardDir reports whether name is a shard directory and which shard.
func parseShardDir(name string) (int, bool) {
	rest, ok := strings.CutPrefix(name, "shard-")
	if !ok || len(rest) == 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 || n >= MaxLogShards {
		return 0, false
	}
	return n, true
}

// OpenShardedSegments opens the segment directories of a (possibly sharded)
// data directory. configured is the requested shard count: 0 means "adopt
// whatever the directory already uses" (1 for a fresh or flat directory),
// letting recovery tools reopen any directory without knowing its layout.
//
// Layout rules, enforced loudly with ErrLogFormat rather than risking silent
// misreads:
//
//   - one shard → the flat pre-shard layout: wal-*.seg directly in dir;
//   - n > 1 shards → shard-00/ … shard-NN/ subdirectories, no root segments;
//   - an existing directory's shard count is authoritative: asking for a
//     different count (including opening a sharded directory as flat, or a
//     flat directory holding segments as sharded) is a format error.
func OpenShardedSegments(dir string, configured int, segBytes int64, preallocate bool) ([]*Segments, error) {
	if configured < 0 || configured > MaxLogShards {
		return nil, fmt.Errorf("wal: log shard count %d out of range [0, %d]", configured, MaxLogShards)
	}
	var shardDirs []int
	rootSegs := false
	entries, err := os.ReadDir(dir)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() {
			if n, ok := parseShardDir(e.Name()); ok {
				shardDirs = append(shardDirs, n)
			}
			continue
		}
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			rootSegs = true
		}
	}
	sort.Ints(shardDirs)
	for i, n := range shardDirs {
		if n != i {
			return nil, fmt.Errorf("%w: log shard directories are not contiguous (missing %s)",
				ErrLogFormat, ShardDirName(i))
		}
	}

	n := configured
	switch {
	case len(shardDirs) > 0:
		if rootSegs {
			return nil, fmt.Errorf("%w: data directory mixes root log segments with shard directories", ErrLogFormat)
		}
		if configured == 0 {
			n = len(shardDirs)
		} else if configured != len(shardDirs) {
			return nil, fmt.Errorf("%w: directory has %d log shards but %d were configured (the shard count is fixed at creation)",
				ErrLogFormat, len(shardDirs), configured)
		}
	default:
		if n == 0 {
			n = 1
		}
		if n > 1 && rootSegs {
			return nil, fmt.Errorf("%w: pre-shard (flat) log directory cannot be opened with %d log shards (reopen with LogShards<=1)",
				ErrLogFormat, n)
		}
	}

	if n == 1 {
		segs, err := OpenSegments(dir, segBytes, preallocate)
		if err != nil {
			return nil, err
		}
		return []*Segments{segs}, nil
	}
	out := make([]*Segments, n)
	for i := range out {
		segs, err := OpenSegments(filepath.Join(dir, ShardDirName(i)), segBytes, preallocate)
		if err != nil {
			for _, s := range out[:i] {
				//slint:ignore errwedge best-effort cleanup while failing the open; the open's error is what matters
				_ = s.Close()
			}
			return nil, fmt.Errorf("log shard %d: %w", i, err)
		}
		out[i] = segs
	}
	return out, nil
}
