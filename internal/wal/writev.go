package wal

import "os"

// writevFallback is the portable vectored write: coalesce the buffers into
// one contiguous allocation and land it with a single positional write.
// Still one syscall per group-commit cycle — the copy trades a memcpy for
// the per-range syscalls the vectored path exists to remove — so the
// writes-per-cycle stat reads the same on every platform.
func writevFallback(f *os.File, bufs [][]byte, off int64) error {
	var total int
	for _, b := range bufs {
		total += len(b)
	}
	joined := make([]byte, 0, total)
	for _, b := range bufs {
		joined = append(joined, b...)
	}
	_, err := f.WriteAt(joined, off)
	return err
}
