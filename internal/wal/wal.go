// Package wal implements the write-ahead log: log sequence numbers, typed
// log records with binary encoding, an append buffer, and group commit.
//
// The log is the other classic centralized service of a storage manager
// (besides the lock manager this paper targets); it is implemented here so
// that transactions pay a realistic logging cost — append per update plus a
// group-commit flush at commit — and so that aborts can be rolled back from
// the recorded before-images.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// LSN is a log sequence number. LSN 0 is "no LSN".
type LSN uint64

// RecType identifies the kind of a log record.
type RecType uint8

// Log record types.
const (
	// RecBegin marks the start of a transaction.
	RecBegin RecType = iota + 1
	// RecInsert records a newly inserted record (after-image only).
	RecInsert
	// RecUpdate records an update (before- and after-image).
	RecUpdate
	// RecDelete records a deletion (before-image only).
	RecDelete
	// RecCommit marks a transaction commit; it must be durable before the
	// transaction's effects are acknowledged.
	RecCommit
	// RecAbort marks a transaction abort after its undo completed.
	RecAbort
)

// String returns the record type name.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one write-ahead log record.
type Record struct {
	// LSN is assigned by the log at append time.
	LSN LSN
	// XID is the transaction that produced the record.
	XID uint64
	// Type is the record type.
	Type RecType
	// Table, Page and Slot locate the affected record for data records.
	Table uint32
	Page  uint64
	Slot  uint32
	// Before is the before-image (updates and deletes).
	Before []byte
	// After is the after-image (inserts and updates).
	After []byte
}

// Encode serializes the record to a compact binary form.
func (r Record) Encode() []byte {
	buf := make([]byte, 0, 64+len(r.Before)+len(r.After))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(r.LSN))
	put(r.XID)
	buf = append(buf, byte(r.Type))
	put(uint64(r.Table))
	put(r.Page)
	put(uint64(r.Slot))
	put(uint64(len(r.Before)))
	buf = append(buf, r.Before...)
	put(uint64(len(r.After)))
	buf = append(buf, r.After...)
	// Frame it with a length prefix so records can be streamed.
	frame := make([]byte, 0, len(buf)+binary.MaxVarintLen64)
	n := binary.PutUvarint(tmp[:], uint64(len(buf)))
	frame = append(frame, tmp[:n]...)
	frame = append(frame, buf...)
	return frame
}

// ErrCorrupt is returned when a log record cannot be decoded.
var ErrCorrupt = errors.New("wal: corrupt log record")

// ByteReader is the reader interface required by DecodeFrom; *bufio.Reader
// and *bytes.Reader both satisfy it.
type ByteReader interface {
	io.Reader
	io.ByteReader
}

// DecodeFrom reads one framed record from r.
func DecodeFrom(r ByteReader) (Record, error) {
	length, err := binary.ReadUvarint(r)
	if err != nil {
		return Record{}, err
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, ErrCorrupt
	}
	return decodeBody(body)
}

// Decode parses a record from a byte slice produced by Encode and returns
// the record and the number of bytes consumed.
func Decode(data []byte) (Record, int, error) {
	length, n := binary.Uvarint(data)
	if n <= 0 || int(length) > len(data)-n {
		return Record{}, 0, ErrCorrupt
	}
	rec, err := decodeBody(data[n : n+int(length)])
	return rec, n + int(length), err
}

func decodeBody(body []byte) (Record, error) {
	var rec Record
	pos := 0
	get := func() (uint64, bool) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	lsn, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	xid, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	if pos >= len(body) {
		return rec, ErrCorrupt
	}
	typ := RecType(body[pos])
	pos++
	table, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	pageNo, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	slot, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	beforeLen, ok := get()
	if !ok || pos+int(beforeLen) > len(body) {
		return rec, ErrCorrupt
	}
	before := append([]byte(nil), body[pos:pos+int(beforeLen)]...)
	pos += int(beforeLen)
	afterLen, ok := get()
	if !ok || pos+int(afterLen) > len(body) {
		return rec, ErrCorrupt
	}
	after := append([]byte(nil), body[pos:pos+int(afterLen)]...)
	pos += int(afterLen)
	if pos != len(body) {
		return rec, ErrCorrupt
	}
	rec = Record{
		LSN: LSN(lsn), XID: xid, Type: typ,
		Table: uint32(table), Page: pageNo, Slot: uint32(slot),
		Before: before, After: after,
	}
	if len(rec.Before) == 0 {
		rec.Before = nil
	}
	if len(rec.After) == 0 {
		rec.After = nil
	}
	return rec, nil
}

// Config configures the log.
type Config struct {
	// FlushDelay simulates the latency of forcing the log to stable storage
	// (one per group-commit batch, not per transaction). Zero disables it.
	FlushDelay time.Duration
	// GroupCommitWindow is how long the flusher waits to batch commits.
	// Zero means flush requests are served immediately (still batched with
	// any concurrent requests).
	GroupCommitWindow time.Duration
	// Sink, if non-nil, receives the encoded bytes of every record at flush
	// time (e.g. an os.File). The log also keeps records in memory for
	// recovery and inspection.
	Sink io.Writer
	// KeepInMemory controls whether flushed records are retained in memory
	// (needed for Records() and recovery tests). Default true.
	DropAfterFlush bool
}

// Stats holds log counters.
type Stats struct {
	Appends atomic.Uint64
	Flushes atomic.Uint64
	Synced  atomic.Uint64 // records made durable
}

// Log is the write-ahead log.
type Log struct {
	cfg Config

	mu       sync.Mutex
	cond     *sync.Cond
	records  []Record // records appended but possibly not yet flushed
	flushed  []Record // records already flushed (retained unless DropAfterFlush)
	nextLSN  LSN
	flushLSN LSN // highest LSN known durable
	closed   bool
	flushing bool

	stats Stats
}

// New creates a write-ahead log.
func New(cfg Config) *Log {
	l := &Log{cfg: cfg, nextLSN: 1}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Append adds a record to the log buffer and returns its LSN. The record is
// not durable until Flush (directly or via group commit) covers its LSN.
func (l *Log) Append(rec Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: log closed")
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	l.records = append(l.records, rec)
	l.stats.Appends.Add(1)
	return rec.LSN, nil
}

// DurableLSN returns the highest LSN known to be durable.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLSN
}

// Flush makes every record with LSN <= upTo durable and returns once it is.
// Concurrent callers are batched into a single physical flush (group
// commit): only one goroutine performs the flush while the others wait for
// the flushed LSN to advance past their target.
func (l *Log) Flush(upTo LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.flushLSN < upTo {
		if l.closed {
			return errors.New("wal: log closed")
		}
		if l.flushing {
			// Another goroutine is flushing; wait for it and re-check.
			l.cond.Wait()
			continue
		}
		l.flushing = true
		// Snapshot everything appended so far: the whole group commits together.
		batch := l.records
		l.records = nil
		target := l.nextLSN - 1
		window := l.cfg.GroupCommitWindow
		l.mu.Unlock()

		if window > 0 {
			time.Sleep(window)
		}
		var err error
		if l.cfg.Sink != nil {
			for _, r := range batch {
				if _, werr := l.cfg.Sink.Write(r.Encode()); werr != nil {
					err = werr
					break
				}
			}
		}
		if l.cfg.FlushDelay > 0 {
			time.Sleep(l.cfg.FlushDelay)
		}

		l.mu.Lock()
		// Records appended during the window are NOT covered by this flush;
		// they were snapshotted only if appended before the snapshot.
		if !l.cfg.DropAfterFlush {
			l.flushed = append(l.flushed, batch...)
		}
		if err == nil {
			l.flushLSN = target
			l.stats.Synced.Add(uint64(len(batch)))
		}
		l.stats.Flushes.Add(1)
		l.flushing = false
		l.cond.Broadcast()
		if err != nil {
			return err
		}
	}
	return nil
}

// Records returns a copy of every record that has been flushed, in LSN
// order, for recovery and tests. Records still in the append buffer are not
// included.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.flushed))
	copy(out, l.flushed)
	return out
}

// PendingRecords returns the number of appended-but-unflushed records.
func (l *Log) PendingRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// StatsSnapshot returns a copy of the log counters.
func (l *Log) StatsSnapshot() (appends, flushes, synced uint64) {
	return l.stats.Appends.Load(), l.stats.Flushes.Load(), l.stats.Synced.Load()
}

// Close flushes any pending records and shuts the log down.
func (l *Log) Close() error {
	l.mu.Lock()
	last := l.nextLSN - 1
	l.mu.Unlock()
	if err := l.Flush(last); err != nil {
		return err
	}
	l.mu.Lock()
	l.closed = true
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}
