// Package wal implements the write-ahead log: log sequence numbers, typed
// log records with binary encoding, an append buffer, and group commit.
//
// The log is the other classic centralized service of a storage manager
// (besides the lock manager this paper targets); it is implemented here so
// that transactions pay a realistic logging cost — append per update plus a
// group-commit flush at commit — and so that aborts can be rolled back from
// the recorded before-images.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LSN is a log sequence number. Since the byte-offset refactor it is not a
// record counter but the byte offset of the record's frame in the virtual
// log — the single monotonically growing byte address space that the log
// buffer, the on-disk segment files and the recovery passes all share. The
// virtual log begins at offset 1, so LSN 0 remains the "no LSN" sentinel.
//
// Making the LSN the byte offset is what collapses log reservation to a
// single fetch-and-add (Aether's design): assigning an LSN and assigning
// buffer space become the same operation. The cost is that LSNs are ordered
// but not dense — consumers may compare LSNs, never count them. Frames do
// not embed their LSN; a record's address is implied by its position, and
// every decoder that reads a positioned stream (the segment scanner, the
// flusher) assigns LSNs from offsets.
type LSN uint64

// The three methods below are the only sanctioned spellings of LSN
// arithmetic; everything else is flagged by the densearith analyzer
// (cmd/slint). Keeping the byte math behind named helpers is what lets the
// analyzer distinguish "moving through the virtual address space" from the
// dense-LSN bugs the PR 5 sweep hunted down.

// Advance returns the LSN n bytes further into the virtual log: the address
// of the frame that starts n encoded bytes past l.
func (l LSN) Advance(n int64) LSN { return l + LSN(n) }

// Next returns the smallest LSN strictly above l. It is NOT "the next
// record" — no record starts at l.Next() — but it is exactly the flush
// watermark that covers the frame starting at l, since watermarks only stop
// at frame boundaries.
func (l LSN) Next() LSN { return l + 1 }

// Distance returns how many bytes of virtual log separate l from from
// (negative when from is above l).
func (l LSN) Distance(from LSN) int64 { return int64(l) - int64(from) }

// RecType identifies the kind of a log record.
type RecType uint8

// Log record types.
const (
	// RecBegin marks the start of a transaction.
	RecBegin RecType = iota + 1
	// RecInsert records a newly inserted record (after-image only).
	RecInsert
	// RecUpdate records an update (before- and after-image).
	RecUpdate
	// RecDelete records a deletion (before-image only).
	RecDelete
	// RecCommit marks a transaction commit; it must be durable before the
	// transaction's effects are acknowledged.
	RecCommit
	// RecAbort marks a transaction abort after its undo completed.
	RecAbort
	// RecCreateTable records table DDL (After holds the encoded table
	// metadata). DDL is non-transactional: XID is 0 and redo applies it
	// unconditionally.
	RecCreateTable
	// RecCreateIndex records secondary-index DDL (After holds the encoded
	// index metadata).
	RecCreateIndex
	// RecCLR is an ARIES-style compensation log record: the redo-only record
	// of one undo action performed during rollback. Its images describe the
	// compensating operation directly — Before+After means "update the row
	// matching Before's primary key back to After", After alone means
	// "re-insert After" (compensating a delete), Before alone means "delete
	// the row matching Before" (compensating an insert) — and UndoNext holds
	// the LSN of the next original record of the same transaction still to
	// be undone (0 when the rollback is complete). Restart redo replays CLRs
	// like any other data record; restart undo resumes an interrupted
	// rollback from the last durable CLR's UndoNext instead of re-undoing
	// work the CLR chain already compensated.
	RecCLR
)

// String returns the record type name.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCreateTable:
		return "CREATE-TABLE"
	case RecCreateIndex:
		return "CREATE-INDEX"
	case RecCLR:
		return "CLR"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one write-ahead log record.
type Record struct {
	// LSN is the record's byte offset in the virtual log, assigned by the log
	// at append time. It is not serialized into the frame — the address is
	// implied by position — so decoders of positioned streams fill it in from
	// offsets, and Decode/DecodeFrom (which see bytes without an address)
	// leave it zero.
	LSN LSN
	// XID is the transaction that produced the record.
	XID uint64
	// Type is the record type.
	Type RecType
	// Table, Page and Slot locate the affected record for data records.
	Table uint32
	Page  uint64
	Slot  uint32
	// UndoNext is the rollback resume point carried by RecCLR records: the
	// LSN of the transaction's next still-to-be-undone data record, or 0
	// when this CLR compensated the transaction's first action (rollback
	// complete). Zero on every other record type.
	UndoNext LSN
	// Before is the before-image (updates and deletes).
	Before []byte
	// After is the after-image (inserts and updates).
	After []byte
}

// uvarintLen returns the number of bytes binary.PutUvarint uses for v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// bodySize returns the size of the record body — everything inside the
// length-prefixed frame. The LSN is NOT part of the body: it is the frame's
// byte offset, implied by position.
func (r Record) bodySize() int {
	return uvarintLen(r.XID) + 1 +
		uvarintLen(uint64(r.Table)) + uvarintLen(r.Page) + uvarintLen(uint64(r.Slot)) +
		uvarintLen(uint64(r.UndoNext)) +
		uvarintLen(uint64(len(r.Before))) + len(r.Before) +
		uvarintLen(uint64(len(r.After))) + len(r.After)
}

// EncodedSize returns the exact number of bytes Encode and EncodeTo produce
// for the record, including the length-prefix frame. It does not depend on
// the LSN (frames carry no LSN), which is what lets the log buffer size a
// reservation before knowing its address — the precondition for reserving
// with a single fetch-and-add.
func (r Record) EncodedSize() int {
	body := r.bodySize()
	return uvarintLen(uint64(body)) + body
}

// EncodeTo serializes the record — body and length-prefix frame together —
// into buf, which must be at least EncodedSize() bytes, and returns the
// number of bytes written. It allocates nothing, so appenders can encode
// directly into the shared log buffer.
func (r Record) EncodeTo(buf []byte) int {
	pos := 0
	put := func(v uint64) { pos += binary.PutUvarint(buf[pos:], v) }
	put(uint64(r.bodySize()))
	put(r.XID)
	buf[pos] = byte(r.Type)
	pos++
	put(uint64(r.Table))
	put(r.Page)
	put(uint64(r.Slot))
	put(uint64(r.UndoNext))
	put(uint64(len(r.Before)))
	pos += copy(buf[pos:], r.Before)
	put(uint64(len(r.After)))
	pos += copy(buf[pos:], r.After)
	return pos
}

// Encode serializes the record to a compact binary form in a single
// pre-sized allocation.
func (r Record) Encode() []byte {
	buf := make([]byte, r.EncodedSize())
	return buf[:r.EncodeTo(buf)]
}

// ErrCorrupt is returned when a log record cannot be decoded.
var ErrCorrupt = errors.New("wal: corrupt log record")

// maxFrameBytes bounds a single record frame. Legitimate records are a few
// page-sized images plus headers — far below this — so any larger length
// prefix is corruption (e.g. garbage at a torn segment tail) and must not
// drive an allocation.
const maxFrameBytes = 1 << 20

// ByteReader is the reader interface required by DecodeFrom; *bufio.Reader
// and *bytes.Reader both satisfy it.
type ByteReader interface {
	io.Reader
	io.ByteReader
}

// DecodeFrom reads one framed record from r, skipping any padding bytes that
// precede it. It returns io.EOF only at a clean frame boundary; a partial or
// oversized frame decodes as ErrCorrupt. The returned record's LSN is zero —
// a raw byte stream carries no address; positioned readers (the segment
// scanner) assign LSNs from offsets.
func DecodeFrom(r ByteReader) (Record, error) {
	rec, _, _, err := decodeCounted(r)
	return rec, err
}

// decodeCounted reads one framed record, also reporting how many padding
// bytes preceded the frame and the frame's own size. It is the single
// streaming decoder for the on-disk format, shared by DecodeFrom and the
// segment scanner. Padding bytes are single 0x00 bytes — a zero-length frame
// — written by the log buffer at ring wraparound so that every byte of the
// virtual log, padding included, has a stable offset on disk; io.EOF after
// only padding is a clean boundary.
func decodeCounted(r ByteReader) (rec Record, pad, frame int64, err error) {
	var length uint64
	for {
		lengthBytes := 0
		length, err = readUvarintCounted(r, &lengthBytes)
		if err != nil {
			if err == io.EOF && lengthBytes == 0 {
				return Record{}, pad, 0, io.EOF
			}
			return Record{}, pad, 0, ErrCorrupt
		}
		if length != 0 {
			frame = int64(lengthBytes)
			break
		}
		pad++
	}
	if length > maxFrameBytes {
		return Record{}, pad, 0, ErrCorrupt
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, pad, 0, ErrCorrupt
	}
	rec, err = decodeBody(body)
	if err != nil {
		return Record{}, pad, 0, err
	}
	return rec, pad, frame + int64(length), nil
}

// readUvarintCounted is binary.ReadUvarint tracking consumed bytes.
func readUvarintCounted(r io.ByteReader, n *int) (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		*n++
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, ErrCorrupt
			}
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, ErrCorrupt
}

// Decode parses a record from a byte slice produced by Encode, skipping any
// leading padding bytes, and returns the record and the number of bytes
// consumed (padding included). The record's LSN is zero; see DecodeFrom.
func Decode(data []byte) (Record, int, error) {
	skip := 0
	for skip < len(data) && data[skip] == 0 {
		skip++
	}
	length, n := binary.Uvarint(data[skip:])
	// The frame cap also guards the uint64→int conversion below: a garbage
	// length beyond 2^63 would convert negative and panic the slice bounds.
	if n <= 0 || length > maxFrameBytes || int(length) > len(data)-skip-n {
		return Record{}, 0, ErrCorrupt
	}
	rec, err := decodeBody(data[skip+n : skip+n+int(length)])
	return rec, skip + n + int(length), err
}

func decodeBody(body []byte) (Record, error) {
	var rec Record
	pos := 0
	get := func() (uint64, bool) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	xid, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	if pos >= len(body) {
		return rec, ErrCorrupt
	}
	typ := RecType(body[pos])
	pos++
	table, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	pageNo, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	slot, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	undoNext, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	// Compare image lengths in uint64 space: converting a garbage length to
	// int first could wrap negative and panic the slice expressions.
	beforeLen, ok := get()
	if !ok || beforeLen > uint64(len(body)-pos) {
		return rec, ErrCorrupt
	}
	before := append([]byte(nil), body[pos:pos+int(beforeLen)]...)
	pos += int(beforeLen)
	afterLen, ok := get()
	if !ok || afterLen > uint64(len(body)-pos) {
		return rec, ErrCorrupt
	}
	after := append([]byte(nil), body[pos:pos+int(afterLen)]...)
	pos += int(afterLen)
	if pos != len(body) {
		return rec, ErrCorrupt
	}
	rec = Record{
		XID: xid, Type: typ,
		Table: uint32(table), Page: pageNo, Slot: uint32(slot),
		UndoNext: LSN(undoNext),
		Before:   before, After: after,
	}
	if len(rec.Before) == 0 {
		rec.Before = nil
	}
	if len(rec.After) == 0 {
		rec.After = nil
	}
	return rec, nil
}

// DurableSink is a stable-storage destination for flushed records. The log
// writes every record of a group-commit batch (with WriteRecord, or whole
// byte ranges at a time when the sink also implements RangeSink) and then
// calls Sync once per batch — the single physical "force" of the group
// commit. Records are only counted as durable (and DurableLSN advanced)
// after Sync returns nil. Segments implements DurableSink on a directory of
// on-disk segment files.
type DurableSink interface {
	// WriteRecord persists the encoded form of rec. encoded is the output of
	// rec.Encode; it must not be retained after the call returns.
	WriteRecord(rec Record, encoded []byte) error
	// Sync forces previously written records to stable storage.
	Sync() error
}

// RangeSink is the optional fast path of a DurableSink: the flusher hands it
// whole byte ranges of the consolidated log buffer — many already-encoded
// frames (and any wraparound padding bytes) in LSN order — instead of one
// record at a time, so the sink pays one write call per range rather than
// per record. first is the virtual byte offset of encoded[0]; because LSNs
// are byte offsets, the sink can place and address every frame in the range
// from first alone. encoded must not be retained after the call returns.
type RangeSink interface {
	WriteRange(encoded []byte, first LSN) error
}

// vectorSink is the vectored fast path above RangeSink: the flusher hands it
// every contiguous range of one group-commit cycle in a single call, so the
// sink can land the whole cycle in one pwritev-style submission instead of
// one write per range. Segments implements it.
type vectorSink interface {
	WriteRanges(ranges []flushRange) error
}

// Config configures the log.
type Config struct {
	// FlushDelay simulates the latency of forcing the log to stable storage
	// (one per group-commit batch, not per transaction). Zero disables it.
	FlushDelay time.Duration
	// GroupCommitWindow is how long the flusher waits to batch commits.
	// Zero means flush requests are served immediately (still batched with
	// any concurrent requests). Under AdaptiveGroupCommit it is only the
	// controller's starting point.
	GroupCommitWindow time.Duration
	// AdaptiveGroupCommit replaces the fixed group-commit window with a
	// controller that retunes it every flush cycle from what the cycle
	// observed: the window halves when it closed with at most one
	// subscriber (it only added latency) or when the durable lag has grown
	// past a quarter of the log buffer (the flusher is behind — flush more,
	// wait less), and widens by 25% when subscriptions were still arriving
	// as the window closed (the batch was still widening). The window also
	// ends early once the pending subscription set is satisfiable — as many
	// subscribers as a typical recent batch, all of their bytes published —
	// so a correct window costs no idle tail.
	AdaptiveGroupCommit bool
	// GroupCommitMin and GroupCommitMax bound the adaptive window. Zero
	// values default to 10µs and 2ms. Ignored unless AdaptiveGroupCommit.
	GroupCommitMin time.Duration
	GroupCommitMax time.Duration
	// StrictFence selects the in-order publish fence (each appender spins
	// until every earlier byte is published) instead of the default
	// completion-tracking publish, under which a preempted filler delays
	// only the watermark and never another publisher. It exists as the
	// baseline arm of the log-tail ablation (cmd/slibench -ablation
	// log-tail); leave it off otherwise. Ignored under MutexLog.
	StrictFence bool
	// Sink, if non-nil, receives the encoded bytes of every record at flush
	// time (e.g. an os.File). It is a best-effort mirror with no durability
	// contract: a write error is returned from the Flush that observed it
	// but does not wedge the log or hold back DurableLSN. The log also
	// keeps records in memory for recovery and inspection.
	Sink io.Writer
	// Durable, if non-nil, receives every flushed record followed by one
	// Sync per group-commit batch; DurableLSN only advances past records the
	// sink has accepted and synced. A write or sync error wedges the log:
	// every subsequent Append and Flush fails, because the durable prefix
	// can no longer grow.
	Durable DurableSink
	// StartLSN is the virtual byte offset the log starts issuing at, used
	// when reopening a log whose prefix (every byte below StartLSN) is
	// already durable on disk. Zero means start at offset 1 (offset 0 is the
	// "no LSN" sentinel).
	StartLSN LSN
	// KeepInMemory controls whether flushed records are retained in memory
	// (needed for Records() and recovery tests). Default true.
	DropAfterFlush bool
	// MutexLog selects the legacy centralized append path — every Append
	// takes the single log mutex and the flusher re-encodes record by
	// record — instead of the consolidated reserve/fill/publish buffer. It
	// exists as the baseline arm of the log-buffer ablation
	// (cmd/slibench -ablation log-buffer); leave it off otherwise.
	MutexLog bool
	// LatchedLog keeps the consolidated buffer but performs its reservation
	// under a short mutex (the PR-3 protocol) instead of the lock-free
	// fetch-and-add on the virtual head. It exists as the baseline arm of
	// the log-lsn ablation (cmd/slibench -ablation log-lsn); leave it off
	// otherwise. Ignored under MutexLog.
	LatchedLog bool
	// BufferBytes sizes the consolidated log buffer (default 4 MiB). A
	// reservation that does not fit blocks until the flusher drains the
	// buffer, reported as AppendWaits.BufferFull. A single record frame
	// larger than half the buffer (or than the decoder's 1 MiB frame limit,
	// which would corrupt the log for every reader) is rejected at Append.
	// Ignored under MutexLog.
	BufferBytes int64
	// AutoSizeBuffer lets the flusher grow the buffer from the buffer-full
	// wait signal: when reservers spent more than a threshold fraction of a
	// flush cycle blocked on a full buffer, the ring is doubled (at a
	// drained instant, so no bytes move), up to BufferMaxBytes. BufferBytes
	// then only sets the starting size. Ignored under MutexLog.
	AutoSizeBuffer bool
	// BufferMaxBytes caps AutoSizeBuffer growth (default 64 MiB). Ignored
	// unless AutoSizeBuffer is set.
	BufferMaxBytes int64
}

// noCopy triggers go vet's copylocks check when a struct embedding it is
// copied by value. The typed atomics inside these structs carry their own
// no-copy guard, but the explicit field keeps the protection (and the
// intent) even if a field is ever downgraded to a plain integer.
type noCopy struct{}

func (*noCopy) Lock()   {}
func (*noCopy) Unlock() {}

// Stats holds log counters. It is updated concurrently by appenders and the
// flusher and must never be copied by value — read it through
// StatsSnapshot.
type Stats struct {
	noCopy  noCopy
	Appends atomic.Uint64
	Flushes atomic.Uint64
	Synced  atomic.Uint64 // records made durable
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCrashed is returned to flush waiters when Crash is injected.
var ErrCrashed = errors.New("wal: simulated crash")

// flushWaiter is one registered durability subscription: ch receives exactly
// one value once the durable watermark reaches the target end offset upTo
// (nil) or the log can no longer get there (the wedging error).
type flushWaiter struct {
	upTo LSN // target durable watermark (an exclusive end offset)
	ch   chan error
}

// Log is the write-ahead log. Appends go through the consolidated
// reserve/fill/publish buffer (see logbuf.go): the only centralized section
// on the append path is the O(1) reservation latch, and records are encoded
// into the shared buffer concurrently. Durability is driven by a single
// dedicated flusher goroutine: committers subscribe to their commit LSN with
// FlushAsync (or block in Flush) and the flusher consumes the contiguous
// published prefix, performs one physical write+sync per group-commit batch
// (handing whole byte ranges to a RangeSink), advances the durable-LSN
// watermark, and acknowledges every satisfied subscription in LSN order.
// Config.MutexLog restores the legacy single-mutex append path for ablation.
type Log struct {
	cfg Config
	lb  *logBuffer // consolidated buffer; nil under MutexLog

	mu            sync.Mutex
	flushWork     *sync.Cond // signals the flusher goroutine that work arrived
	records       []Record   // MutexLog-mode append buffer
	flushed       []Record   // records already flushed (retained unless DropAfterFlush)
	nextLSN       LSN        // MutexLog mode: next byte offset to assign; the consolidated buffer owns its own
	flushLSN      LSN        // exclusive end of the durable prefix (first non-durable byte offset)
	closed        bool
	flusherActive bool          // the flusher goroutine has been started
	waiters       []flushWaiter // pending durability subscriptions
	failed        error         // first durable-sink error; wedges the log

	fastRange  bool // cfg.Durable also implements RangeSink
	fastVector bool // cfg.Durable also implements vectorSink

	// Group-commit window state. window is the live value (fixed, or driven
	// by the adaptive controller between winMin and winMax); the sum/count
	// pair averages the time actually waited per windowed cycle; ewmaBatch
	// is the flusher-private estimate of subscriptions per batch that the
	// early-wake check compares against.
	window         atomic.Int64 // current window in nanoseconds
	winMin, winMax time.Duration
	windowNanos    atomic.Int64 // total window time actually waited
	windowedCycles atomic.Uint64
	ewmaBatch      float64 // flusher-private; no lock needed
	ewmaFlush      float64 // flusher-private EWMA of flush-cycle cost, in nanoseconds

	draining atomic.Bool // Close/Crash started: no new appends can arrive

	// Auto-sizing state, all flusher-private: the buffer-full wait total at
	// the last grow check, the wall clock of that check, and the size a
	// requested (but not yet performed) grow is aiming for.
	bufMax        int64
	lastFullNanos int64
	lastGrowCheck time.Time
	growTarget    int64

	stats Stats
}

// New creates a write-ahead log.
func New(cfg Config) *Log {
	start := cfg.StartLSN
	if start == 0 {
		start = 1
	}
	l := &Log{cfg: cfg, nextLSN: start, flushLSN: start}
	l.flushWork = sync.NewCond(&l.mu)
	if !cfg.MutexLog {
		var maxBytes int64
		if cfg.AutoSizeBuffer {
			maxBytes = cfg.BufferMaxBytes
			if maxBytes <= 0 {
				maxBytes = DefaultLogBufferMaxBytes
			}
		}
		l.lb = newLogBuffer(cfg.BufferBytes, maxBytes, start, cfg.LatchedLog, cfg.StrictFence)
		l.bufMax = maxBytes
	}
	if cfg.Durable != nil {
		_, l.fastRange = cfg.Durable.(RangeSink)
		_, l.fastVector = cfg.Durable.(vectorSink)
	}
	l.winMin, l.winMax = cfg.GroupCommitMin, cfg.GroupCommitMax
	if cfg.AdaptiveGroupCommit {
		if l.winMin <= 0 {
			l.winMin = 10 * time.Microsecond
		}
		if l.winMax < l.winMin {
			l.winMax = 2 * time.Millisecond
		}
		if l.winMax < l.winMin {
			l.winMax = l.winMin
		}
		initial := cfg.GroupCommitWindow
		if initial < l.winMin {
			initial = l.winMin
		}
		if initial > l.winMax {
			initial = l.winMax
		}
		l.window.Store(int64(initial))
	} else {
		l.window.Store(int64(cfg.GroupCommitWindow))
	}
	return l
}

// Append adds a record to the log buffer and returns its LSN. The record is
// not durable until Flush (directly or via group commit) covers its LSN.
// Unlike AppendTimed it reads no clocks, so non-profiled callers pay nothing
// for wait accounting on the hot path.
func (l *Log) Append(rec Record) (LSN, error) {
	lsn, _, err := l.append(rec, false)
	return lsn, err
}

// AppendTimed is Append, additionally reporting where the call spent blocked
// time so callers can attribute reserve waits and buffer-full waits to the
// right profiler categories (and exclude them from useful log work).
func (l *Log) AppendTimed(rec Record) (LSN, AppendWaits, error) {
	return l.append(rec, true)
}

func (l *Log) append(rec Record, timed bool) (LSN, AppendWaits, error) {
	if l.lb == nil {
		return l.appendMutex(rec, timed)
	}
	s, w, err := l.lb.reserve(rec, l.kickFlusher, timed)
	if err != nil {
		return 0, w, err
	}
	fence := l.lb.fill(rec, s, timed)
	if timed {
		// The in-order publish fence is serialization cost, like the
		// reservation itself: attribute it to reserve-wait so the log-lsn
		// ablation's latched-vs-fetch-and-add comparison captures the whole
		// ordering overhead of each protocol.
		w.Reserve += fence
	}
	l.stats.Appends.Add(1)
	return LSN(s.off), w, nil
}

// appendMutex is the legacy centralized append path (Config.MutexLog): one
// mutex serializes LSN assignment and the copy into the record slice, and
// encoding happens later, record by record, in the flusher. Offsets advance
// by each record's encoded size so the byte stream it produces is addressed
// identically to the consolidated buffer's.
func (l *Log) appendMutex(rec Record, timed bool) (LSN, AppendWaits, error) {
	var w AppendWaits
	var lockStart time.Time
	if timed {
		lockStart = time.Now()
	}
	l.mu.Lock()
	if timed {
		w.Reserve = time.Since(lockStart)
	}
	defer l.mu.Unlock()
	if l.closed {
		return 0, w, ErrClosed
	}
	if l.failed != nil {
		return 0, w, l.failed
	}
	rec.LSN = l.nextLSN
	l.nextLSN = l.nextLSN.Advance(int64(rec.EncodedSize()))
	l.records = append(l.records, rec)
	l.stats.Appends.Add(1)
	return rec.LSN, w, nil
}

// kickFlusher starts (if necessary) and wakes the flusher goroutine. It is
// how a reserver blocked on a full buffer forces a drain even before any
// durability subscription exists.
func (l *Log) kickFlusher() {
	l.mu.Lock()
	if !l.closed && l.failed == nil {
		l.startFlusherLocked()
	}
	l.flushWork.Signal()
	l.mu.Unlock()
}

// endLSNLocked returns the virtual end offset of the log — the LSN the next
// appended record would receive; every existing record's LSN is strictly
// below it. Callers must hold l.mu in MutexLog mode; the consolidated
// buffer's head is read lock-free.
func (l *Log) endLSNLocked() LSN {
	if l.lb != nil {
		return LSN(l.lb.head.Load())
	}
	return l.nextLSN
}

// DurableLSN returns the exclusive end of the durable prefix: every byte of
// the virtual log below it has been handed to the configured sinks and —
// when a DurableSink is configured — covered by a successful Sync. A record
// is durable iff its LSN is strictly below DurableLSN. Bytes at or above it
// may exist only in the in-memory append buffer and are lost on a crash.
// The watermark advances monotonically, one group-commit batch at a time.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLSN
}

// LastLSN returns the virtual end offset of the log (durable or not): the
// LSN the next record would be appended at. Flush(LastLSN()) therefore means
// "force everything appended so far".
func (l *Log) LastLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.endLSNLocked()
}

// Flush makes the record at LSN upTo (and every record below it) durable and
// returns once it is. Concurrent callers are batched into a single physical
// flush (group commit) performed by the dedicated flusher goroutine.
func (l *Log) Flush(upTo LSN) error {
	return <-l.FlushAsync(upTo)
}

// FlushAsync subscribes to the durability of the record at LSN upTo (and,
// by the contiguity of the durable prefix, every record below it) and
// returns immediately. The returned channel receives exactly one value: nil
// once the flusher's durable watermark has passed upTo, or the error that
// permanently prevents it (a wedged or closed log). Acknowledgements are
// delivered in LSN order, so a commit whose ack arrives implies every
// lower-LSN commit is durable too — the invariant Early Lock Release relies
// on.
func (l *Log) FlushAsync(upTo LSN) <-chan error {
	ch := make(chan error, 1)
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.failed != nil:
		ch <- l.failed
	case l.flushLSN > upTo:
		// The durable watermark is exclusive-end and always sits at a frame
		// boundary, so being past the frame's start offset means the whole
		// frame is durable.
		ch <- nil
	case l.closed:
		ch <- ErrClosed
	default:
		// The waiter's target is an end offset: the smallest durable
		// watermark that covers the frame starting at upTo. Any watermark
		// above upTo covers it (watermarks only stop at frame boundaries), so
		// upTo.Next() is exact; an offset at or beyond the log's end can never be
		// reached by flushing, so clamp the target to "everything appended so
		// far". The clamp also resolves the reopen edge where nothing has
		// been appended yet (head == flushLSN == StartLSN): the target clamps
		// to the already-durable watermark and is acknowledged immediately
		// instead of parking a waiter no flush cycle would satisfy.
		target := upTo.Next()
		if end := l.endLSNLocked(); target > end {
			target = end
		}
		if l.flushLSN >= target {
			ch <- nil
			return ch
		}
		l.waiters = append(l.waiters, flushWaiter{upTo: target, ch: ch})
		l.startFlusherLocked()
		l.flushWork.Signal()
	}
	return ch
}

// startFlusherLocked launches the flusher goroutine on first use. Lazy start
// keeps Logs that never flush (pure decode/encode users, short tests) free of
// goroutines.
func (l *Log) startFlusherLocked() {
	if l.flusherActive {
		return
	}
	l.flusherActive = true
	go l.flusherLoop()
}

// pendingFlushLocked reports whether any subscription is still waiting for
// the durable watermark to advance.
func (l *Log) pendingFlushLocked() bool {
	for _, w := range l.waiters {
		if w.upTo > l.flushLSN {
			return true
		}
	}
	return false
}

// pendingWaitersLocked returns the unsatisfied subscription count and the
// highest target among them — the group-commit pause's early-wake inputs.
func (l *Log) pendingWaitersLocked() (n int, maxTarget LSN) {
	for _, w := range l.waiters {
		if w.upTo > l.flushLSN {
			n++
			if w.upTo > maxTarget {
				maxTarget = w.upTo
			}
		}
	}
	return n, maxTarget
}

// workPendingLocked reports whether the flusher has anything actionable:
// an unsatisfied durability subscription, or — consolidated mode only —
// reservers blocked on a full buffer (which must be drained even when no
// commit has subscribed yet, e.g. a large loading transaction).
func (l *Log) workPendingLocked() bool {
	if l.pendingFlushLocked() {
		return true
	}
	return l.lb != nil && l.lb.fullWaiters.Load() > 0
}

// flusherLoop is the dedicated flush daemon: one group-commit cycle per
// wakeup, batching every record published up to the moment the physical
// write starts (commits arriving during the group-commit window join the
// batch).
func (l *Log) flusherLoop() {
	for {
		l.mu.Lock()
		for !l.closed && l.failed == nil && !l.workPendingLocked() {
			l.flushWork.Wait()
		}
		if l.failed != nil {
			err := l.failed
			l.failWaitersLocked(err)
			l.flusherActive = false
			l.mu.Unlock()
			if l.lb != nil {
				// Fail reservers blocked on a full buffer too: no one will
				// ever drain it again.
				l.lb.close(err)
			}
			return
		}
		if l.closed && !l.workPendingLocked() {
			l.flusherActive = false
			l.mu.Unlock()
			return
		}
		// The group-commit window exists to widen commit batches; when the
		// only pending work is reservers blocked on a full buffer (no
		// durability subscription yet), drain immediately instead of
		// stalling bulk appends one buffer per window.
		subscriptionsPending := l.pendingFlushLocked()
		l.mu.Unlock()

		var arrived bool
		if window := time.Duration(l.window.Load()); window > 0 && subscriptionsPending {
			var crashed bool
			arrived, crashed = l.groupCommitPause(window)
			if crashed {
				// Crashed or wedged while the window was open: nothing from
				// this cycle (or the append buffer) may reach the sink.
				continue
			}
		}
		flush := l.flushMutexBatch
		if l.lb != nil {
			flush = l.flushConsolidated
		}
		flushStart := time.Now()
		progressed, acked := flush()
		if progressed {
			l.ewmaFlush = 0.75*l.ewmaFlush + 0.25*float64(time.Since(flushStart))
		}
		if !progressed {
			// Work is pending but nothing was consumable: a lower-LSN
			// reservation is still being filled (a concurrent memcpy, gone in
			// microseconds). Yield instead of spinning on the buffer latch.
			runtime.Gosched()
		} else if l.cfg.AdaptiveGroupCommit && subscriptionsPending {
			l.tuneWindow(acked, arrived)
		}
		l.maybeGrowBuffer()
	}
}

// maybeGrowBuffer is the flusher-side half of the auto-sizing protocol
// (Config.AutoSizeBuffer). Each cycle it compares the buffer-full wait
// accumulated since its last check against the wall clock that elapsed: when
// reservers spent more than growWaitFraction of the interval blocked on a
// full buffer, the flusher requests a grow (reservers stand aside at their
// next reserve) and then retries the swap every cycle until the ring drains;
// tryGrow performs it. Growth doubles the ring and caps at Config's
// BufferMaxBytes, so a mis-sized LogBufferBytes fixes itself in a few cycles
// instead of showing up as a permanent log-buffer-full-wait plateau in the
// profile.
func (l *Log) maybeGrowBuffer() {
	lb := l.lb
	if lb == nil || !lb.resizable {
		return
	}
	if lb.resizeWanted.Load() {
		lb.tryGrow(l.growTarget)
		return
	}
	// The grow threshold: buffer-full wait above 10% of wall time between
	// checks means the ring, not the sink schedule, is the bottleneck.
	const growWaitFraction = 0.10
	now := time.Now()
	full := lb.fullNanos.Load()
	if l.lastGrowCheck.IsZero() {
		l.lastGrowCheck = now
		l.lastFullNanos = full
		return
	}
	wall := now.Sub(l.lastGrowCheck)
	delta := full - l.lastFullNanos
	l.lastGrowCheck = now
	l.lastFullNanos = full
	if wall <= 0 || float64(delta) < float64(wall)*growWaitFraction {
		return
	}
	newSize := lb.size * 2 // lb.size is stable here: only tryGrow (this goroutine) writes it
	if newSize > l.bufMax {
		newSize = l.bufMax
	}
	if newSize <= lb.size {
		return // already at the cap
	}
	l.growTarget = newSize
	lb.resizeWanted.Store(true)
	lb.tryGrow(newSize)
}

// groupCommitPause waits out the group-commit window in short slices so the
// flusher can wake as soon as waiting longer cannot widen the batch: the log
// is draining (Close/Crash — no new appends can arrive), reservers are
// blocked on a full buffer (nothing widens until we drain), or — adaptive
// mode — the pending subscription set is already satisfiable: every target
// offset published and a typical recent batch's worth of subscribers
// waiting. arrived — the controller's grow
// signal — reports that the window expired at its deadline with the batch
// still widening in the final slice; crashed reports the log failed.
func (l *Log) groupCommitPause(window time.Duration) (arrived, crashed bool) {
	l.mu.Lock()
	startWaiters, _ := l.pendingWaitersLocked()
	l.mu.Unlock()
	// A typical batch, per the EWMA the controller maintains; only the
	// flusher goroutine touches ewmaBatch so the read is unsynchronized.
	satisfiable := int(l.ewmaBatch + 0.5)
	if satisfiable < 2 {
		satisfiable = 2
	}
	slice := window / 8
	const sliceMin, sliceMax = 20 * time.Microsecond, 250 * time.Microsecond
	if slice < sliceMin {
		slice = sliceMin
	}
	if slice > sliceMax {
		slice = sliceMax
	}
	deadline := time.Now().Add(window)
	waited := time.Now()
	prevN := startWaiters
	arrivedLast := false
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			// Deadline expiry with a subscriber still arriving in the final
			// slice is the controller's only grow signal: the window closed
			// on a batch that was still widening. Any early wake below means
			// the window was already long enough.
			arrived = arrivedLast
			break
		}
		step := slice
		if remaining < step {
			step = remaining
		}
		if step < sliceMin {
			// Sub-timer-resolution wait: a timed sleep here would overshoot
			// by more than the whole window (the OS timer floor is tens of
			// microseconds), erasing everything the controller shrank the
			// window for. Yield-spin so a 10µs window costs ~10µs.
			for spin := time.Now(); time.Since(spin) < step; {
				runtime.Gosched()
			}
		} else {
			time.Sleep(step)
		}
		l.mu.Lock()
		n, maxTarget := l.pendingWaitersLocked()
		crashed = l.failed != nil
		l.mu.Unlock()
		arrivedLast = n > prevN
		prevN = n
		if crashed {
			break
		}
		if l.draining.Load() || (l.lb != nil && (l.lb.wedged.Load() || l.lb.fullWaiters.Load() > 0)) {
			break
		}
		if l.cfg.AdaptiveGroupCommit && n >= satisfiable && l.targetsPublished(maxTarget) {
			// The pending set is satisfiable — every subscriber's bytes are
			// published and the batch already holds a typical recent cycle's
			// worth of subscribers — so waiting longer buys latency, not
			// batching. (Waking on a merely quiet slice instead was a
			// throughput trap: at peak load the commit inter-arrival time
			// exceeds a slice, so "no arrival this slice" routinely fires
			// mid-batch and halves the cycle.)
			break
		}
	}
	l.windowNanos.Add(int64(time.Since(waited)))
	l.windowedCycles.Add(1)
	return arrived, crashed
}

// targetsPublished reports whether every byte below target is already
// published (consolidated mode) or buffered (mutex mode) — i.e. a flush
// starting now would satisfy a subscription with that target.
func (l *Log) targetsPublished(target LSN) bool {
	if l.lb != nil {
		return LSN(l.lb.published.Load()) >= target
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN >= target
}

// tuneWindow is the adaptive group-commit controller, run once per windowed
// flush cycle. acked is how many subscriptions the cycle satisfied; arrived
// reports whether new subscriptions showed up while the window was open.
// Multiplicative decrease on a wasted window (≤1 subscriber: the window only
// added latency) or on high durable lag (more than a quarter of the log
// buffer unflushed: stop waiting, start writing); multiplicative increase
// while batches are still widening when the window closes.
func (l *Log) tuneWindow(acked int, arrived bool) {
	w := time.Duration(l.window.Load())
	l.ewmaBatch = 0.75*l.ewmaBatch + 0.25*float64(acked)
	lagHigh := false
	if l.lb != nil {
		lag := l.lb.head.Load() - l.lb.published.Load()
		if pending := l.PendingBytes(); pending > lag {
			lag = pending
		}
		lagHigh = lag > l.lb.size/4
	}
	switch {
	case acked <= 1 || lagHigh:
		w /= 2
	case arrived:
		// arrived is deliberately narrow (deadline expiry with the batch
		// still widening in the final slice; see groupCommitPause): growing
		// on any mid-window arrival pegs the window at the cap under steady
		// load even when the extra wait stopped adding subscribers.
		w += w / 4
	}
	// The force itself is a batching window: commits arriving while the
	// flush runs join the next cycle for free, so a cycle's batch already
	// spans one flush cost with a zero window. Keep the explicit window a
	// bounded fraction of the cycle (half the flush cost's EWMA): it still
	// widens batches under load, but its latency cost can never exceed a
	// third of the cycle no matter what the grow rule does.
	if cap := time.Duration(l.ewmaFlush) / 2; cap > 0 && w > cap {
		w = cap
	}
	if w < l.winMin {
		w = l.winMin
	}
	if w > l.winMax {
		w = l.winMax
	}
	l.window.Store(int64(w))
}

// flushMutexBatch is one legacy-mode group-commit cycle: snapshot the append
// buffer, encode and write record by record, sync once. It returns the
// number of subscriptions the cycle acknowledged.
func (l *Log) flushMutexBatch() (bool, int) {
	l.mu.Lock()
	// Snapshot everything appended so far: the whole group commits together,
	// including records that arrived during the window.
	batch := l.records
	l.records = nil
	target := l.nextLSN
	l.mu.Unlock()

	var durableErr, sinkErr error
	for _, r := range batch {
		enc := r.Encode()
		if l.cfg.Durable != nil {
			if werr := l.cfg.Durable.WriteRecord(r, enc); werr != nil {
				durableErr = werr
				break
			}
		}
		if l.cfg.Sink != nil && sinkErr == nil {
			// The Sink is a best-effort mirror: its failure is reported
			// but does not affect durability or stop the log.
			if _, werr := l.cfg.Sink.Write(enc); werr != nil {
				sinkErr = werr
			}
		}
	}
	return true, l.finishCycle(batch, len(batch), target, durableErr, sinkErr)
}

// flushConsolidated is one consolidated-mode group-commit cycle: consume the
// contiguous published prefix of the log buffer and hand whole byte ranges
// to the sinks — no per-record re-encode, no per-record write call on the
// RangeSink fast path, and a single vectored submission for the whole cycle
// when the sink supports it. It returns false when nothing was consumable,
// plus the number of subscriptions the cycle acknowledged.
func (l *Log) flushConsolidated() (bool, int) {
	// Per-record structures are only materialized when something needs them:
	// in-memory retention for Records(), or a durable sink without the
	// range-write fast path.
	keepRecs := !l.cfg.DropAfterFlush || (l.cfg.Durable != nil && !l.fastRange && !l.fastVector)
	ranges, recs, count, end := l.lb.consume(keepRecs)
	if end == 0 {
		return false, 0
	}

	// The best-effort Sink mirror trails the durable sink: a chunk only
	// reaches the mirror once the durable sink accepted it, so after a wedge
	// the mirror stream never contains records that missed stable storage.
	var durableErr, sinkErr error
	mirror := func(data []byte) {
		if l.cfg.Sink == nil || sinkErr != nil {
			return
		}
		if _, werr := l.cfg.Sink.Write(data); werr != nil {
			sinkErr = werr
		}
	}
	switch {
	case l.cfg.Durable != nil && l.fastVector:
		// The vectored fast path: the whole cycle — every contiguous range —
		// in one submission, so the sink pays one write syscall per group
		// commit instead of one per range.
		if werr := l.cfg.Durable.(vectorSink).WriteRanges(ranges); werr != nil {
			durableErr = werr
		} else {
			for _, r := range ranges {
				mirror(r.data)
			}
		}
	case l.cfg.Durable != nil && l.fastRange:
		rs := l.cfg.Durable.(RangeSink)
		for _, r := range ranges {
			if werr := rs.WriteRange(r.data, r.first); werr != nil {
				durableErr = werr
				break
			}
			mirror(r.data)
		}
	case l.cfg.Durable != nil:
		// Compatibility path for DurableSinks that only take records:
		// re-encode each one, exactly like the legacy flusher. Each record
		// carries its byte-offset LSN, so a positioning sink (Segments) can
		// restore any wraparound padding the per-record stream elides.
		for _, rec := range recs {
			enc := rec.Encode()
			if werr := l.cfg.Durable.WriteRecord(rec, enc); werr != nil {
				durableErr = werr
				break
			}
			mirror(enc)
		}
	default:
		for _, r := range ranges {
			mirror(r.data)
		}
	}
	// The physical writes above are the last readers of the consumed bytes
	// (Sync forces the OS, it never touches the buffer), so the space goes
	// back to reservers before the sync latency is paid.
	l.lb.release(end)

	return true, l.finishCycle(recs, count, LSN(end), durableErr, sinkErr)
}

// finishCycle is the shared tail of a group-commit cycle: the single
// physical force, retention, the durable-watermark advance, and the LSN-
// ordered acknowledgements — or the wedge/crash handling that replaces them.
// It returns the number of subscriptions acknowledged, the adaptive
// controller's batch-size signal.
func (l *Log) finishCycle(recs []Record, count int, target LSN, durableErr, sinkErr error) int {
	if durableErr == nil && l.cfg.Durable != nil {
		// The single physical force of the group commit.
		durableErr = l.cfg.Durable.Sync()
	}
	if l.cfg.FlushDelay > 0 {
		time.Sleep(l.cfg.FlushDelay)
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.cfg.DropAfterFlush {
		l.flushed = append(l.flushed, recs...)
	}
	l.stats.Flushes.Add(1)
	if l.failed != nil {
		// Crashed while the batch was in flight: even if the sync succeeded,
		// never acknowledge — crash semantics allow un-acked records to
		// survive, never the reverse. The loop top fails the waiters.
		return 0
	}
	if durableErr != nil {
		// The durable prefix can no longer grow contiguously: wedge the log
		// so no later record is ever reported durable past the gap. The loop
		// top fails the waiters and exits.
		l.failed = durableErr
		return 0
	}
	if l.flushLSN < target {
		l.flushLSN = target
	}
	l.stats.Synced.Add(uint64(count))
	return l.notifyWaitersLocked(sinkErr)
}

// notifyWaitersLocked acknowledges every subscription satisfied by the
// current durable watermark, in ascending LSN order, returning how many it
// acknowledged. sinkErr, when non-nil, is the best-effort mirror's write
// error; it is reported to this batch's waiters without affecting
// durability.
func (l *Log) notifyWaitersLocked(sinkErr error) int {
	var remaining []flushWaiter
	var done []flushWaiter
	for _, w := range l.waiters {
		if w.upTo <= l.flushLSN {
			done = append(done, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].upTo < done[j].upTo })
	for _, w := range done {
		w.ch <- sinkErr
	}
	l.waiters = remaining
	return len(done)
}

// failWaitersLocked delivers err to every pending subscription.
func (l *Log) failWaitersLocked(err error) {
	for _, w := range l.waiters {
		w.ch <- err
	}
	l.waiters = nil
}

// Err returns the error that wedged the log — the first durable-sink write
// or sync failure (or the injected crash) after which the durable prefix can
// no longer grow and every Append/Flush fails — or nil while the log is
// healthy. A cleanly closed log is not wedged: Err stays nil after Close.
// It lets callers distinguish "the log is slow" (DurableLag growing, Err nil)
// from "the log is dead" (Err non-nil) without inferring it from Exec
// failures; readiness probes flip unready on it.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed
}

// Records returns a copy of every record that has been flushed, in LSN
// order, for recovery and tests. Records still in the append buffer are not
// included.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.flushed))
	copy(out, l.flushed)
	return out
}

// PendingBytes returns the number of appended-but-not-yet-durable bytes of
// the virtual log. With byte-offset LSNs this is simply the distance between
// the log's end and the durable watermark; it is zero whenever the flusher
// has caught up.
func (l *Log) PendingBytes() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	end := l.endLSNLocked()
	if end <= l.flushLSN {
		return 0
	}
	return end.Distance(l.flushLSN)
}

// StatsSnapshot returns a copy of the log counters.
func (l *Log) StatsSnapshot() (appends, flushes, synced uint64) {
	return l.stats.Appends.Load(), l.stats.Flushes.Load(), l.stats.Synced.Load()
}

// TailStats is a point-in-time snapshot of the log tail's self-tuning state:
// how many group-commit cycles ran, how much group-commit window time they
// actually waited (early wakes make this less than cycles×window), the
// controller's live window, and the cumulative time appenders spent blocked
// on the publish fence.
//
// Unlike Stats, this is a plain value snapshot built from atomic loads —
// it contains no atomics (the atomicmix analyzer verifies that) and is safe
// to copy, return and compare freely.
type TailStats struct {
	FlushCycles    uint64        // group-commit cycles completed
	WindowedCycles uint64        // cycles that opened a group-commit window
	WindowTotal    time.Duration // window time actually waited across those cycles
	CurWindow      time.Duration // live window (the fixed value when not adaptive)
	FenceWait      time.Duration // cumulative publish-fence block time
	ReserveWait    time.Duration // cumulative reserve wait (profiled appends only)
	BufferFullWait time.Duration // cumulative buffer-full wait (timed unconditionally)
	BufferBytes    int64         // current log buffer size (grows under AutoSizeBuffer)
	BufferGrows    uint64        // auto-size ring growths performed
}

// AvgWindow returns the average group-commit window time actually waited per
// windowed cycle.
func (ts TailStats) AvgWindow() time.Duration {
	if ts.WindowedCycles == 0 {
		return 0
	}
	return ts.WindowTotal / time.Duration(ts.WindowedCycles)
}

// TailStats returns the log tail's self-tuning snapshot.
func (l *Log) TailStats() TailStats {
	ts := TailStats{
		FlushCycles:    l.stats.Flushes.Load(),
		WindowedCycles: l.windowedCycles.Load(),
		WindowTotal:    time.Duration(l.windowNanos.Load()),
		CurWindow:      time.Duration(l.window.Load()),
	}
	if l.lb != nil {
		ts.FenceWait = time.Duration(l.lb.fenceNanos.Load())
		ts.ReserveWait = time.Duration(l.lb.reserveNanos.Load())
		ts.BufferFullWait = time.Duration(l.lb.fullNanos.Load())
		ts.BufferBytes = l.lb.sizeNow()
		ts.BufferGrows = uint64(l.lb.grows.Load())
	}
	return ts
}

// Window returns the group-commit window currently in effect — the adaptive
// controller's live value, or the configured fixed window.
func (l *Log) Window() time.Duration {
	return time.Duration(l.window.Load())
}

// Close drains every pending record to the sinks and shuts the log down.
// It re-checks for records appended concurrently with the drain, so when
// Close returns nil the sink has received (and, for a DurableSink, synced)
// every record ever accepted by Append. The flusher goroutine exits once the
// drain completes. Close is idempotent.
func (l *Log) Close() error {
	// No new appends from here on: the group-commit pause wakes immediately
	// instead of letting each drain cycle pay a full window.
	l.draining.Store(true)
	if l.lb != nil {
		// Refuse new reservations first so the drain below is complete;
		// records already reserved still fill, publish and drain.
		l.lb.close(ErrClosed)
	}
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return nil
		}
		end := l.endLSNLocked()
		if l.flushLSN >= end && len(l.records) == 0 {
			l.closed = true
			l.flushWork.Broadcast()
			l.mu.Unlock()
			return nil
		}
		l.mu.Unlock()
		if err := l.Flush(end); err != nil {
			return err
		}
	}
}

// Crash simulates losing the machine for crash-recovery tests: the append
// buffer (records never handed to the sink) is discarded, every pending and
// future flush subscription fails with ErrCrashed, and the flusher goroutine
// stops without draining. A group-commit batch already in flight is not
// acknowledged even if its sync happens to complete — crash semantics allow
// un-acked records to survive on disk, never an acked record to be lost.
func (l *Log) Crash() {
	l.draining.Store(true)
	l.mu.Lock()
	if l.failed == nil {
		l.failed = ErrCrashed
	}
	err := l.failed
	l.closed = true
	l.records = nil
	if !l.flusherActive {
		// No flusher to deliver the failure; fail the waiters directly.
		l.failWaitersLocked(err)
	}
	l.flushWork.Broadcast()
	l.mu.Unlock()
	if l.lb != nil {
		// Discard the consolidated buffer: reservations fail from here on and
		// blocked reservers wake with the crash error.
		l.lb.close(err)
	}
}
