// Package wal implements the write-ahead log: log sequence numbers, typed
// log records with binary encoding, an append buffer, and group commit.
//
// The log is the other classic centralized service of a storage manager
// (besides the lock manager this paper targets); it is implemented here so
// that transactions pay a realistic logging cost — append per update plus a
// group-commit flush at commit — and so that aborts can be rolled back from
// the recorded before-images.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// LSN is a log sequence number. LSN 0 is "no LSN".
type LSN uint64

// RecType identifies the kind of a log record.
type RecType uint8

// Log record types.
const (
	// RecBegin marks the start of a transaction.
	RecBegin RecType = iota + 1
	// RecInsert records a newly inserted record (after-image only).
	RecInsert
	// RecUpdate records an update (before- and after-image).
	RecUpdate
	// RecDelete records a deletion (before-image only).
	RecDelete
	// RecCommit marks a transaction commit; it must be durable before the
	// transaction's effects are acknowledged.
	RecCommit
	// RecAbort marks a transaction abort after its undo completed.
	RecAbort
	// RecCreateTable records table DDL (After holds the encoded table
	// metadata). DDL is non-transactional: XID is 0 and redo applies it
	// unconditionally.
	RecCreateTable
	// RecCreateIndex records secondary-index DDL (After holds the encoded
	// index metadata).
	RecCreateIndex
)

// String returns the record type name.
func (t RecType) String() string {
	switch t {
	case RecBegin:
		return "BEGIN"
	case RecInsert:
		return "INSERT"
	case RecUpdate:
		return "UPDATE"
	case RecDelete:
		return "DELETE"
	case RecCommit:
		return "COMMIT"
	case RecAbort:
		return "ABORT"
	case RecCreateTable:
		return "CREATE-TABLE"
	case RecCreateIndex:
		return "CREATE-INDEX"
	default:
		return fmt.Sprintf("rectype(%d)", uint8(t))
	}
}

// Record is one write-ahead log record.
type Record struct {
	// LSN is assigned by the log at append time.
	LSN LSN
	// XID is the transaction that produced the record.
	XID uint64
	// Type is the record type.
	Type RecType
	// Table, Page and Slot locate the affected record for data records.
	Table uint32
	Page  uint64
	Slot  uint32
	// Before is the before-image (updates and deletes).
	Before []byte
	// After is the after-image (inserts and updates).
	After []byte
}

// Encode serializes the record to a compact binary form.
func (r Record) Encode() []byte {
	buf := make([]byte, 0, 64+len(r.Before)+len(r.After))
	var tmp [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		n := binary.PutUvarint(tmp[:], v)
		buf = append(buf, tmp[:n]...)
	}
	put(uint64(r.LSN))
	put(r.XID)
	buf = append(buf, byte(r.Type))
	put(uint64(r.Table))
	put(r.Page)
	put(uint64(r.Slot))
	put(uint64(len(r.Before)))
	buf = append(buf, r.Before...)
	put(uint64(len(r.After)))
	buf = append(buf, r.After...)
	// Frame it with a length prefix so records can be streamed.
	frame := make([]byte, 0, len(buf)+binary.MaxVarintLen64)
	n := binary.PutUvarint(tmp[:], uint64(len(buf)))
	frame = append(frame, tmp[:n]...)
	frame = append(frame, buf...)
	return frame
}

// ErrCorrupt is returned when a log record cannot be decoded.
var ErrCorrupt = errors.New("wal: corrupt log record")

// maxFrameBytes bounds a single record frame. Legitimate records are a few
// page-sized images plus headers — far below this — so any larger length
// prefix is corruption (e.g. garbage at a torn segment tail) and must not
// drive an allocation.
const maxFrameBytes = 1 << 20

// ByteReader is the reader interface required by DecodeFrom; *bufio.Reader
// and *bytes.Reader both satisfy it.
type ByteReader interface {
	io.Reader
	io.ByteReader
}

// DecodeFrom reads one framed record from r. It returns io.EOF only at a
// clean frame boundary; a partial or oversized frame decodes as ErrCorrupt.
func DecodeFrom(r ByteReader) (Record, error) {
	rec, _, err := decodeCounted(r)
	return rec, err
}

// decodeCounted reads one framed record, also reporting the frame's size in
// bytes. It is the single streaming decoder for the on-disk format, shared
// by DecodeFrom and the segment scanner.
func decodeCounted(r ByteReader) (Record, int64, error) {
	lengthBytes := 0
	length, err := readUvarintCounted(r, &lengthBytes)
	if err != nil {
		if err == io.EOF && lengthBytes == 0 {
			return Record{}, 0, io.EOF
		}
		return Record{}, 0, ErrCorrupt
	}
	if length > maxFrameBytes {
		return Record{}, 0, ErrCorrupt
	}
	body := make([]byte, length)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, 0, ErrCorrupt
	}
	rec, err := decodeBody(body)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, int64(lengthBytes) + int64(length), nil
}

// readUvarintCounted is binary.ReadUvarint tracking consumed bytes.
func readUvarintCounted(r io.ByteReader, n *int) (uint64, error) {
	var x uint64
	var shift uint
	for i := 0; i < 10; i++ {
		b, err := r.ReadByte()
		if err != nil {
			return 0, err
		}
		*n++
		if b < 0x80 {
			if i == 9 && b > 1 {
				return 0, ErrCorrupt
			}
			return x | uint64(b)<<shift, nil
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, ErrCorrupt
}

// Decode parses a record from a byte slice produced by Encode and returns
// the record and the number of bytes consumed.
func Decode(data []byte) (Record, int, error) {
	length, n := binary.Uvarint(data)
	if n <= 0 || int(length) > len(data)-n {
		return Record{}, 0, ErrCorrupt
	}
	rec, err := decodeBody(data[n : n+int(length)])
	return rec, n + int(length), err
}

func decodeBody(body []byte) (Record, error) {
	var rec Record
	pos := 0
	get := func() (uint64, bool) {
		v, n := binary.Uvarint(body[pos:])
		if n <= 0 {
			return 0, false
		}
		pos += n
		return v, true
	}
	lsn, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	xid, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	if pos >= len(body) {
		return rec, ErrCorrupt
	}
	typ := RecType(body[pos])
	pos++
	table, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	pageNo, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	slot, ok := get()
	if !ok {
		return rec, ErrCorrupt
	}
	beforeLen, ok := get()
	if !ok || pos+int(beforeLen) > len(body) {
		return rec, ErrCorrupt
	}
	before := append([]byte(nil), body[pos:pos+int(beforeLen)]...)
	pos += int(beforeLen)
	afterLen, ok := get()
	if !ok || pos+int(afterLen) > len(body) {
		return rec, ErrCorrupt
	}
	after := append([]byte(nil), body[pos:pos+int(afterLen)]...)
	pos += int(afterLen)
	if pos != len(body) {
		return rec, ErrCorrupt
	}
	rec = Record{
		LSN: LSN(lsn), XID: xid, Type: typ,
		Table: uint32(table), Page: pageNo, Slot: uint32(slot),
		Before: before, After: after,
	}
	if len(rec.Before) == 0 {
		rec.Before = nil
	}
	if len(rec.After) == 0 {
		rec.After = nil
	}
	return rec, nil
}

// DurableSink is a stable-storage destination for flushed records. The log
// writes every record of a group-commit batch with WriteRecord and then calls
// Sync once per batch — the single physical "force" of the group commit.
// Records are only counted as durable (and DurableLSN advanced) after Sync
// returns nil. Segments implements DurableSink on a directory of on-disk
// segment files.
type DurableSink interface {
	// WriteRecord persists the encoded form of rec. encoded is the output of
	// rec.Encode; it must not be retained after the call returns.
	WriteRecord(rec Record, encoded []byte) error
	// Sync forces previously written records to stable storage.
	Sync() error
}

// Config configures the log.
type Config struct {
	// FlushDelay simulates the latency of forcing the log to stable storage
	// (one per group-commit batch, not per transaction). Zero disables it.
	FlushDelay time.Duration
	// GroupCommitWindow is how long the flusher waits to batch commits.
	// Zero means flush requests are served immediately (still batched with
	// any concurrent requests).
	GroupCommitWindow time.Duration
	// Sink, if non-nil, receives the encoded bytes of every record at flush
	// time (e.g. an os.File). It is a best-effort mirror with no durability
	// contract: a write error is returned from the Flush that observed it
	// but does not wedge the log or hold back DurableLSN. The log also
	// keeps records in memory for recovery and inspection.
	Sink io.Writer
	// Durable, if non-nil, receives every flushed record followed by one
	// Sync per group-commit batch; DurableLSN only advances past records the
	// sink has accepted and synced. A write or sync error wedges the log:
	// every subsequent Append and Flush fails, because the durable prefix
	// can no longer grow.
	Durable DurableSink
	// StartLSN is the LSN the log starts issuing at, used when reopening a
	// log whose prefix (LSN < StartLSN) is already durable on disk. Zero
	// means start at LSN 1.
	StartLSN LSN
	// KeepInMemory controls whether flushed records are retained in memory
	// (needed for Records() and recovery tests). Default true.
	DropAfterFlush bool
}

// Stats holds log counters.
type Stats struct {
	Appends atomic.Uint64
	Flushes atomic.Uint64
	Synced  atomic.Uint64 // records made durable
}

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrCrashed is returned to flush waiters when Crash is injected.
var ErrCrashed = errors.New("wal: simulated crash")

// flushWaiter is one registered durability subscription: ch receives exactly
// one value once every LSN <= upTo is durable (nil) or the log can no longer
// get there (the wedging error).
type flushWaiter struct {
	upTo LSN
	ch   chan error
}

// Log is the write-ahead log. Durability is driven by a single dedicated
// flusher goroutine: committers subscribe to their commit LSN with FlushAsync
// (or block in Flush) and the flusher performs one physical write+sync per
// group-commit batch, advances the durable-LSN watermark, and acknowledges
// every satisfied subscription in LSN order.
type Log struct {
	cfg Config

	mu            sync.Mutex
	flushWork     *sync.Cond // signals the flusher goroutine that work arrived
	records       []Record   // records appended but possibly not yet flushed
	flushed       []Record   // records already flushed (retained unless DropAfterFlush)
	nextLSN       LSN
	flushLSN      LSN // highest LSN known durable
	closed        bool
	flusherActive bool          // the flusher goroutine has been started
	waiters       []flushWaiter // pending durability subscriptions
	failed        error         // first durable-sink error; wedges the log

	stats Stats
}

// New creates a write-ahead log.
func New(cfg Config) *Log {
	start := cfg.StartLSN
	if start == 0 {
		start = 1
	}
	l := &Log{cfg: cfg, nextLSN: start, flushLSN: start - 1}
	l.flushWork = sync.NewCond(&l.mu)
	return l
}

// Append adds a record to the log buffer and returns its LSN. The record is
// not durable until Flush (directly or via group commit) covers its LSN.
func (l *Log) Append(rec Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.failed != nil {
		return 0, l.failed
	}
	rec.LSN = l.nextLSN
	l.nextLSN++
	l.records = append(l.records, rec)
	l.stats.Appends.Add(1)
	return rec.LSN, nil
}

// DurableLSN returns the highest LSN known to be durable: every record with
// an LSN at or below it has been handed to the configured sinks and — when a
// DurableSink is configured — covered by a successful Sync. Records above it
// may exist only in the in-memory append buffer and are lost on a crash.
// The durable LSN advances monotonically, one group-commit batch at a time.
func (l *Log) DurableLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLSN
}

// LastLSN returns the highest LSN assigned so far (durable or not).
func (l *Log) LastLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Flush makes every record with LSN <= upTo durable and returns once it is.
// Concurrent callers are batched into a single physical flush (group commit)
// performed by the dedicated flusher goroutine.
func (l *Log) Flush(upTo LSN) error {
	return <-l.FlushAsync(upTo)
}

// FlushAsync subscribes to the durability of every record with LSN <= upTo
// and returns immediately. The returned channel receives exactly one value:
// nil once the flusher's durable watermark has passed upTo, or the error that
// permanently prevents it (a wedged or closed log). Acknowledgements are
// delivered in LSN order, so a commit whose ack arrives implies every
// lower-LSN commit is durable too — the invariant Early Lock Release relies
// on.
func (l *Log) FlushAsync(upTo LSN) <-chan error {
	ch := make(chan error, 1)
	l.mu.Lock()
	defer l.mu.Unlock()
	switch {
	case l.failed != nil:
		ch <- l.failed
	case l.flushLSN >= upTo:
		ch <- nil
	case l.closed:
		ch <- ErrClosed
	default:
		// An LSN beyond the last append can never be reached by flushing;
		// clamp so the subscription means "everything appended so far".
		if upTo >= l.nextLSN {
			upTo = l.nextLSN - 1
		}
		if l.flushLSN >= upTo {
			ch <- nil
			return ch
		}
		l.waiters = append(l.waiters, flushWaiter{upTo: upTo, ch: ch})
		l.startFlusherLocked()
		l.flushWork.Signal()
	}
	return ch
}

// startFlusherLocked launches the flusher goroutine on first use. Lazy start
// keeps Logs that never flush (pure decode/encode users, short tests) free of
// goroutines.
func (l *Log) startFlusherLocked() {
	if l.flusherActive {
		return
	}
	l.flusherActive = true
	go l.flusherLoop()
}

// pendingFlushLocked reports whether any subscription is still waiting for
// the durable watermark to advance.
func (l *Log) pendingFlushLocked() bool {
	for _, w := range l.waiters {
		if w.upTo > l.flushLSN {
			return true
		}
	}
	return false
}

// flusherLoop is the dedicated flush daemon: one group-commit cycle per
// wakeup, batching every record appended up to the moment the physical write
// starts (commits arriving during the group-commit window join the batch).
func (l *Log) flusherLoop() {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		for !l.closed && l.failed == nil && !l.pendingFlushLocked() {
			l.flushWork.Wait()
		}
		if l.failed != nil {
			l.failWaitersLocked(l.failed)
			l.flusherActive = false
			return
		}
		if l.closed && !l.pendingFlushLocked() {
			l.flusherActive = false
			return
		}

		window := l.cfg.GroupCommitWindow
		if window > 0 {
			l.mu.Unlock()
			time.Sleep(window)
			l.mu.Lock()
			if l.failed != nil {
				// Crashed or wedged while the window was open: nothing from
				// this cycle (or the append buffer) may reach the sink.
				continue
			}
		}
		// Snapshot everything appended so far: the whole group commits
		// together, including records that arrived during the window.
		batch := l.records
		l.records = nil
		target := l.nextLSN - 1
		l.mu.Unlock()

		var durableErr, sinkErr error
		for _, r := range batch {
			enc := r.Encode()
			if l.cfg.Durable != nil {
				if werr := l.cfg.Durable.WriteRecord(r, enc); werr != nil {
					durableErr = werr
					break
				}
			}
			if l.cfg.Sink != nil && sinkErr == nil {
				// The Sink is a best-effort mirror: its failure is reported
				// but does not affect durability or stop the log.
				if _, werr := l.cfg.Sink.Write(enc); werr != nil {
					sinkErr = werr
				}
			}
		}
		if durableErr == nil && l.cfg.Durable != nil {
			// The single physical force of the group commit.
			durableErr = l.cfg.Durable.Sync()
		}
		if l.cfg.FlushDelay > 0 {
			time.Sleep(l.cfg.FlushDelay)
		}

		l.mu.Lock()
		if !l.cfg.DropAfterFlush {
			l.flushed = append(l.flushed, batch...)
		}
		l.stats.Flushes.Add(1)
		if l.failed != nil {
			// Crashed while the batch was in flight: even if the sync
			// succeeded, report failure — crash semantics allow un-acked
			// records to survive, never the reverse.
			continue
		}
		if durableErr != nil {
			// The durable prefix can no longer grow contiguously: wedge the
			// log so no later record is ever reported durable past the gap.
			if l.failed == nil {
				l.failed = durableErr
			}
			continue // top of loop fails the waiters and exits
		}
		if l.flushLSN < target {
			l.flushLSN = target
		}
		l.stats.Synced.Add(uint64(len(batch)))
		l.notifyWaitersLocked(sinkErr)
	}
}

// notifyWaitersLocked acknowledges every subscription satisfied by the
// current durable watermark, in ascending LSN order. sinkErr, when non-nil,
// is the best-effort mirror's write error; it is reported to this batch's
// waiters without affecting durability.
func (l *Log) notifyWaitersLocked(sinkErr error) {
	var remaining []flushWaiter
	var done []flushWaiter
	for _, w := range l.waiters {
		if w.upTo <= l.flushLSN {
			done = append(done, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].upTo < done[j].upTo })
	for _, w := range done {
		w.ch <- sinkErr
	}
	l.waiters = remaining
}

// failWaitersLocked delivers err to every pending subscription.
func (l *Log) failWaitersLocked(err error) {
	for _, w := range l.waiters {
		w.ch <- err
	}
	l.waiters = nil
}

// Records returns a copy of every record that has been flushed, in LSN
// order, for recovery and tests. Records still in the append buffer are not
// included.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(l.flushed))
	copy(out, l.flushed)
	return out
}

// PendingRecords returns the number of appended-but-unflushed records.
func (l *Log) PendingRecords() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// StatsSnapshot returns a copy of the log counters.
func (l *Log) StatsSnapshot() (appends, flushes, synced uint64) {
	return l.stats.Appends.Load(), l.stats.Flushes.Load(), l.stats.Synced.Load()
}

// Close drains every pending record to the sinks and shuts the log down.
// It re-checks for records appended concurrently with the drain, so when
// Close returns nil the sink has received (and, for a DurableSink, synced)
// every record ever accepted by Append. The flusher goroutine exits once the
// drain completes. Close is idempotent.
func (l *Log) Close() error {
	for {
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return nil
		}
		last := l.nextLSN - 1
		if l.flushLSN >= last && len(l.records) == 0 {
			l.closed = true
			l.flushWork.Broadcast()
			l.mu.Unlock()
			return nil
		}
		l.mu.Unlock()
		if err := l.Flush(last); err != nil {
			return err
		}
	}
}

// Crash simulates losing the machine for crash-recovery tests: the append
// buffer (records never handed to the sink) is discarded, every pending and
// future flush subscription fails with ErrCrashed, and the flusher goroutine
// stops without draining. A group-commit batch already in flight is not
// acknowledged even if its sync happens to complete — crash semantics allow
// un-acked records to survive on disk, never an acked record to be lost.
func (l *Log) Crash() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed == nil {
		l.failed = ErrCrashed
	}
	l.closed = true
	l.records = nil
	if !l.flusherActive {
		// No flusher to deliver the failure; fail the waiters directly.
		l.failWaitersLocked(l.failed)
	}
	l.flushWork.Broadcast()
}
