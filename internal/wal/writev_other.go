//go:build !linux

package wal

import "os"

// writevAt degrades to the coalescing fallback off Linux: one positional
// write per group-commit cycle instead of one pwritev.
func writevAt(f *os.File, bufs [][]byte, off int64) error {
	return writevFallback(f, bufs, off)
}
