package wal

// The consolidated log buffer, byte-offset edition: an Aether-style
// reserve/fill/publish protocol in which the LSN IS the byte offset, so
// reserving a record means nothing more than advancing the virtual head by
// the record's encoded size. An appender
//
//  1. reserves — a single compare-and-swap on the virtual head claims the
//     record's byte range; the range's start offset is the record's LSN.
//     No latch, no critical section: the fetch-and-add is the whole
//     reservation (Config.LatchedLog keeps the PR-3 protocol — the same
//     arithmetic under a short mutex — as the ablation baseline);
//  2. fills   — encodes the record directly into its claimed range, with no
//     lock held, concurrently with every other appender;
//  3. publishes — makes its range consumable by the flusher. The default is
//     completion tracking (Aether's hybrid idea applied to the fence): a
//     filler that finishes out of order deposits its completed range in a
//     small pending set and returns immediately; whichever filler (or
//     successor) holds the watermark merges every contiguous completion
//     forward. A preempted filler therefore delays only the watermark, never
//     another publisher. Config.StrictFence keeps the PR-3 in-order
//     compare-and-swap fence — each filler spins until every earlier byte is
//     published — as the ablation baseline (-ablation log-tail).
//
// The ring never splits a frame across its physical end: a reservation whose
// frame would wrap claims the leftover tail bytes too and fills them with
// zeros. Those padding bytes are real bytes of the virtual log — they flow
// to disk with their neighbors and decoders skip them — which is what keeps
// every LSN equal to its stable on-disk byte offset.
//
// This is the log-side analogue of what SLI does to the lock manager, taken
// to its endpoint: the last centralized section on the append path (PR 3's
// reservation latch) is gone entirely.

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLogBufferBytes is the default size of the consolidated log buffer.
const DefaultLogBufferBytes = 4 << 20

// DefaultLogBufferMaxBytes is the default growth cap under
// Config.AutoSizeBuffer.
const DefaultLogBufferMaxBytes = 64 << 20

// minLogBufferBytes bounds how small a configured buffer may be; tiny buffers
// are allowed (tests use them to force wraparound and buffer-full waits) but
// must still hold a handful of records.
const minLogBufferBytes = 4 << 10

// AppendWaits reports where an Append spent time blocked, so callers can
// attribute it to the profiler's reserve-wait and buffer-full-wait categories
// separately from useful log work.
type AppendWaits struct {
	// Reserve is the serialization cost of the reservation protocol: CAS
	// retries on the virtual head plus the in-order publish fence (or, under
	// LatchedLog/MutexLog, the time spent entering the reservation mutex).
	// This is the contention the fetch-and-add reservation exists to remove.
	Reserve time.Duration
	// BufferFull is the time spent waiting for the flusher to drain the
	// buffer because the reservation did not fit. It indicates an undersized
	// buffer or a saturated sink, not reservation contention.
	BufferFull time.Duration
}

// reservation is one claimed byte range of the virtual log: pad zero bytes
// (at the physical end of the ring) followed by the record's frame. The
// frame's start offset is the record's LSN.
type reservation struct {
	off int64 // virtual start offset of the frame == the record's LSN
	pad int64 // zero bytes claimed before off (the claim began at off-pad)
	n   int64 // frame length in bytes
}

// flushRange is one physically contiguous run of published bytes — whole
// frames plus any wraparound padding, ready to be handed to a RangeSink or
// an io.Writer as-is. first is the virtual offset of data[0].
type flushRange struct {
	data  []byte
	first LSN
}

// logBuffer is the consolidated buffer itself: a byte ring addressed by
// monotonically increasing virtual offsets (phys = off % size). head is the
// next offset to reserve, published the fence below which every fill has
// completed, tail the oldest offset whose space is still in use. Reservers
// synchronize only through head (and published, for the in-order fence);
// the mutex exists for buffer-full waits, close, and the LatchedLog
// ablation arm. The flusher is the single consumer.
type logBuffer struct {
	size    int64
	buf     []byte
	base    int64 // virtual offset mapped to buf[0]; moves only when the ring is regrown
	latched bool  // ablation: reserve under mu instead of a head CAS
	strict  bool  // ablation: in-order spin-CAS publish fence instead of completion tracking

	// Auto-sizing (Config.AutoSizeBuffer): the flusher may replace the ring
	// with a larger one, but only at a drained instant with no claim in
	// flight. resizable is immutable; size/buf/base are plain fields whose
	// writes are ordered against every reader by the protocol below (each
	// reserver either finished — its active decrement precedes the flusher's
	// active==0 read — or started after the swap — its resizeWanted load
	// observes the flusher's store).
	resizable    bool
	maxSize      int64        // growth cap (immutable)
	sizeA        atomic.Int64 // observer mirror of size (stats; hot paths read the plain field)
	active       atomic.Int64 // claims in flight between reserve success and publish
	resizeWanted atomic.Bool  // flusher wants the ring drained for a swap; reservers stand aside
	grows        atomic.Int64 // completed ring growths

	head      atomic.Int64 // next virtual offset to reserve
	published atomic.Int64 // fence: every byte below it is filled
	pubRecs   atomic.Int64 // records published (each fill increments once, after its fence)
	tail      atomic.Int64 // oldest virtual offset still in use (advanced by release)
	consumed  int64        // flusher-private: end of the last consume
	consRecs  int64        // flusher-private: pubRecs already handed out by consume

	fullWaiters atomic.Int32 // reservers blocked on a full buffer (flusher pressure signal)
	wedged      atomic.Bool  // fast-path mirror of err != nil

	fenceNanos   atomic.Int64 // cumulative time appenders spent blocked publishing
	reserveNanos atomic.Int64 // cumulative timed reserve wait (profiled appends only)
	fullNanos    atomic.Int64 // cumulative buffer-full wait, timed unconditionally (auto-size signal)

	// pubMu guards the relaxed fence's completion tracking: pubPending maps a
	// completed-but-unmergeable range's claim offset to its end. Under the
	// relaxed fence every store to published happens with pubMu held (loads
	// stay lock-free), so "published == claim" is an exact handoff test.
	pubMu      sync.Mutex
	pubPending map[int64]int64

	mu      sync.Mutex
	notFull *sync.Cond
	err     error // set once by close: every later reserve fails with it
}

// newLogBuffer builds the ring. maxSize > size enables auto-sizing: the
// flusher may grow the ring (power of two, capped at maxSize) when reservers
// spend a threshold fraction of a flush cycle blocked on a full buffer.
func newLogBuffer(size, maxSize int64, start LSN, latched, strict bool) *logBuffer {
	if size <= 0 {
		size = DefaultLogBufferBytes
	}
	if size < minLogBufferBytes {
		size = minLogBufferBytes
	}
	lb := &logBuffer{size: size, buf: make([]byte, size), latched: latched, strict: strict}
	if maxSize > size {
		lb.resizable = true
		lb.maxSize = maxSize
	}
	lb.sizeA.Store(size)
	lb.notFull = sync.NewCond(&lb.mu)
	lb.pubPending = make(map[int64]int64)
	lb.head.Store(int64(start))
	lb.published.Store(int64(start))
	lb.tail.Store(int64(start))
	lb.consumed = int64(start)
	return lb
}

func (lb *logBuffer) phys(off int64) int64 { return (off - lb.base) % lb.size }

// sizeNow returns the current ring size for paths outside the reservation
// protocol (which must not read the plain field while a grow may be racing).
func (lb *logBuffer) sizeNow() int64 {
	if lb.resizable {
		return lb.sizeA.Load()
	}
	return lb.size
}

// padFor returns the zero bytes a frame of n bytes starting after offset
// head must claim so that it does not wrap the physical end of the ring.
func (lb *logBuffer) padFor(head, n int64) int64 {
	if rem := lb.size - lb.phys(head); rem < n {
		return rem
	}
	return 0
}

// fits reports whether a frame of n bytes can be claimed at the given head
// right now, and the padding the claim must include. It is the single
// statement of the ring's admission rule, shared by the fetch-and-add arm,
// the latched arm, and the full-buffer wait.
func (lb *logBuffer) fits(head, n int64) (pad int64, ok bool) {
	pad = lb.padFor(head, n)
	return pad, head+pad+n-lb.tail.Load() <= lb.size
}

// loadErr returns the wedge error under the mutex.
func (lb *logBuffer) loadErr() error {
	lb.mu.Lock()
	defer lb.mu.Unlock()
	return lb.err
}

// reserve claims rec's byte range; the returned reservation's off is the
// record's LSN. The default path is lock-free: one compare-and-swap on the
// virtual head both assigns the LSN and allocates the buffer space, because
// they are the same number. When the claim does not fit, the reserver counts
// itself as a full-waiter, kicks the flusher (so draining happens even
// before any durability subscription exists) and waits for released space.
// timed gates the wait-clock reads so non-profiled appends pay no time.Now
// on the hot path.
func (lb *logBuffer) reserve(rec Record, kick func(), timed bool) (reservation, AppendWaits, error) {
	var w AppendWaits
	n := int64(rec.EncodedSize())
	if sz := lb.sizeNow(); n > maxFrameBytes || n > sz/2 {
		// A frame past maxFrameBytes is undecodable by every reader (the
		// decoder treats it as corruption), and one past half the buffer
		// could starve forever behind smaller reservations; reject at append
		// time instead of corrupting the log.
		return reservation{}, w, fmt.Errorf("wal: record frame of %d bytes exceeds log buffer capacity (max %d)", n, min(int64(maxFrameBytes), sz/2))
	}
	var start time.Time
	if timed {
		start = time.Now()
	}
	var res reservation
	var err error
	if lb.latched {
		res, err = lb.reserveLatched(n, kick, timed, &w)
	} else {
		res, err = lb.reserveAtomic(n, kick, timed, &w)
	}
	if timed && err == nil {
		w.Reserve = time.Since(start) - w.BufferFull
		lb.reserveNanos.Add(int64(w.Reserve))
	}
	return res, w, err
}

// reserveAtomic is the fetch-and-add reservation: claim [head, head+pad+n)
// with a single CAS. The CAS (rather than a blind Add) is what lets a
// reserver that finds the buffer full wait WITHOUT holding a claim — so a
// closing or crashed log can fail it cleanly instead of leaving a hole that
// would stall the publish fence forever.
//
//slint:hotpath
func (lb *logBuffer) reserveAtomic(n int64, kick func(), timed bool, w *AppendWaits) (reservation, error) {
	for {
		if lb.wedged.Load() {
			return reservation{}, lb.loadErr()
		}
		if lb.resizable {
			// Announce the attempt before checking the resize flag (both
			// sequentially consistent): the flusher stores the flag and THEN
			// reads active, so either we see the flag and stand aside, or it
			// sees our increment and keeps the old ring until we are done.
			// The increment is released by fill/padOut (after publish) or by
			// the retreat paths below.
			lb.active.Add(1)
			if lb.resizeWanted.Load() {
				lb.active.Add(-1)
				if err := lb.waitResize(kick, timed, w); err != nil {
					return reservation{}, err
				}
				continue
			}
		}
		head := lb.head.Load()
		pad, ok := lb.fits(head, n)
		if !ok {
			if lb.resizable {
				lb.active.Add(-1)
			}
			if err := lb.waitForSpace(n, kick, timed, w); err != nil {
				return reservation{}, err
			}
			continue
		}
		if lb.head.CompareAndSwap(head, head+pad+n) {
			s := reservation{off: head + pad, pad: pad, n: n}
			if lb.wedged.Load() {
				// close() may have wedged the buffer between the entry check
				// and the CAS — and Log.Close reads the drain target from
				// head, so a claim that lands after that read would be a
				// record Close never drains despite both calls reporting
				// success. The re-check closes the race (sequential
				// consistency: a CAS that follows Close's head read also
				// follows the wedge store, so it sees wedged here): turn the
				// claim into pure padding — zero bytes every decoder skips —
				// and fail the append. Whether or not a flusher ever drains
				// the padding, no record exists at this address.
				lb.padOut(s)
				return reservation{}, lb.loadErr()
			}
			return s, nil
		}
		if lb.resizable {
			lb.active.Add(-1) // lost the CAS; re-enter the protocol from the top
		}
	}
}

// waitResize parks a reserver while the flusher regrows the ring. The wait is
// charged to the buffer-full category — it is the same backpressure, being
// fixed. Parked reservers count as full-waiters and kick the flusher: the
// swap is the flusher's job, so it must keep cycling (workPendingLocked) as
// long as anyone stands aside.
func (lb *logBuffer) waitResize(kick func(), timed bool, w *AppendWaits) error {
	lb.fullWaiters.Add(1)
	defer lb.fullWaiters.Add(-1)
	kick()
	lb.mu.Lock()
	defer lb.mu.Unlock()
	for lb.err == nil && lb.resizeWanted.Load() {
		start := time.Now()
		lb.notFull.Wait()
		d := time.Since(start)
		lb.fullNanos.Add(int64(d))
		if timed {
			w.BufferFull += d
		}
	}
	return lb.err
}

// tryGrow swaps in a ring of newSize bytes, but only at a fully drained
// instant: no claim in flight (active == 0, latched claims included) and
// every published byte consumed and released (head == published == tail).
// Flusher only, and only after resizeWanted has been set so new reservers
// stand aside. Returns whether the swap happened; the caller retries on the
// next cycle otherwise. On a wedged buffer the pending request is cancelled
// so parked reservers drain out through their error path.
func (lb *logBuffer) tryGrow(newSize int64) bool {
	if lb.active.Load() != 0 {
		return false
	}
	head := lb.head.Load()
	if head != lb.published.Load() || head != lb.tail.Load() {
		return false
	}
	lb.mu.Lock()
	defer lb.mu.Unlock()
	if lb.err != nil {
		lb.resizeWanted.Store(false)
		lb.notFull.Broadcast()
		return false
	}
	head = lb.head.Load()
	if lb.active.Load() != 0 || head != lb.published.Load() || head != lb.tail.Load() {
		return false
	}
	lb.buf = make([]byte, newSize)
	lb.size = newSize
	lb.base = head
	lb.sizeA.Store(newSize)
	lb.grows.Add(1)
	lb.resizeWanted.Store(false)
	lb.notFull.Broadcast()
	return true
}

// padOut fills an already-claimed reservation entirely with padding bytes
// and publishes it, erasing the record that would have lived there. Used
// when the buffer wedged while the claim was in flight.
func (lb *logBuffer) padOut(s reservation) {
	if s.pad > 0 {
		p := lb.phys(s.off - s.pad)
		clear(lb.buf[p : p+s.pad])
	}
	p := lb.phys(s.off)
	clear(lb.buf[p : p+s.n])
	lb.publish(s.off-s.pad, s.off+s.n, false)
	if lb.resizable {
		lb.active.Add(-1)
	}
}

// publish makes the filled claim [claim, end) consumable. Under the strict
// fence it is the in-order CAS: spin until every earlier byte is published.
// Under the relaxed (default) fence it never waits on other fillers: the
// watermark holder merges forward through every contiguous completion already
// deposited, and anyone else deposits its range and leaves — a preempted
// filler stalls the watermark (the flusher simply sees fewer bytes this
// cycle) but no longer stalls later publishers. The returned duration is the
// time spent blocked; the cumulative total feeds the fence-wait stat.
//
//slint:hotpath
func (lb *logBuffer) publish(claim, end int64, timed bool) time.Duration {
	if lb.strict {
		if lb.published.CompareAndSwap(claim, end) {
			return 0
		}
		// Already off the fast path (a predecessor is mid-fill), so the spin
		// is timed unconditionally: the strict arm's fence-wait total stays
		// meaningful even in unprofiled runs.
		fenceStart := time.Now()
		for !lb.published.CompareAndSwap(claim, end) {
			runtime.Gosched()
		}
		d := time.Since(fenceStart)
		lb.fenceNanos.Add(int64(d))
		if timed {
			return d
		}
		return 0
	}
	var fenceStart time.Time
	if timed {
		fenceStart = time.Now()
	}
	//slint:ignore hotblock pubMu is a merge-only critical section (map ops, one store), never held across waits or I/O
	lb.pubMu.Lock()
	if lb.published.Load() == claim {
		for {
			next, ok := lb.pubPending[end]
			if !ok {
				break
			}
			delete(lb.pubPending, end)
			end = next
		}
		lb.published.Store(end)
	} else {
		lb.pubPending[claim] = end
	}
	lb.pubMu.Unlock()
	if timed {
		d := time.Since(fenceStart)
		lb.fenceNanos.Add(int64(d))
		return d
	}
	return 0
}

// reserveLatched is the PR-3 reservation protocol kept as the log-lsn
// ablation baseline: the same offset arithmetic, but serialized on a short
// mutex. Everything downstream (fill, publish fence, consume) is shared, so
// the ablation isolates exactly the reservation protocol.
func (lb *logBuffer) reserveLatched(n int64, kick func(), timed bool, w *AppendWaits) (reservation, error) {
	lb.mu.Lock()
	for {
		if lb.err != nil {
			err := lb.err
			lb.mu.Unlock()
			return reservation{}, err
		}
		if lb.resizable && lb.resizeWanted.Load() {
			// Stand aside for a ring swap (claims under mu would keep the
			// ring permanently non-drained under a steady append load). Count
			// as a full-waiter and kick so the flusher keeps cycling until
			// the swap lands.
			lb.fullWaiters.Add(1)
			lb.mu.Unlock()
			kick()
			lb.mu.Lock()
			if lb.err == nil && lb.resizeWanted.Load() {
				start := time.Now()
				lb.notFull.Wait()
				d := time.Since(start)
				lb.fullNanos.Add(int64(d))
				if timed {
					w.BufferFull += d
				}
			}
			lb.fullWaiters.Add(-1)
			continue
		}
		head := lb.head.Load()
		if pad, ok := lb.fits(head, n); ok {
			lb.head.Store(head + pad + n)
			if lb.resizable {
				// Claimed under mu, so tryGrow (also under mu) either runs
				// before this claim or sees the increment; released by fill.
				lb.active.Add(1)
			}
			lb.mu.Unlock()
			return reservation{off: head + pad, pad: pad, n: n}, nil
		}
		// Full. Wake the flusher without holding the latch, then wait for
		// released space; the re-check under the lock avoids losing a
		// broadcast that landed between kick and re-lock.
		lb.fullWaiters.Add(1)
		lb.mu.Unlock()
		kick()
		lb.mu.Lock()
		if _, ok := lb.fits(lb.head.Load(), n); lb.err == nil && !ok {
			// Timed unconditionally: the wait path already slept, and the
			// cumulative total is the auto-sizing signal even in unprofiled
			// runs.
			fullStart := time.Now()
			lb.notFull.Wait()
			d := time.Since(fullStart)
			lb.fullNanos.Add(int64(d))
			if timed {
				w.BufferFull += d
			}
		}
		lb.fullWaiters.Add(-1)
	}
}

// waitForSpace blocks until a frame of n bytes could fit (space may be
// re-taken by a faster reserver before the caller's CAS — the caller just
// retries) or the buffer wedges. The full-waiter count is raised before the
// kick so the flusher never goes to sleep between our check and our wait.
func (lb *logBuffer) waitForSpace(n int64, kick func(), timed bool, w *AppendWaits) error {
	lb.fullWaiters.Add(1)
	defer lb.fullWaiters.Add(-1)
	kick()
	lb.mu.Lock()
	defer lb.mu.Unlock()
	for {
		if lb.err != nil {
			return lb.err
		}
		if _, ok := lb.fits(lb.head.Load(), n); ok {
			return nil
		}
		// Timed unconditionally (see reserveLatched): this total is the
		// auto-sizing grow signal.
		fullStart := time.Now()
		lb.notFull.Wait()
		d := time.Since(fullStart)
		lb.fullNanos.Add(int64(d))
		if timed {
			w.BufferFull += d
		}
	}
}

// fill writes the reservation's bytes — zeroing any wraparound padding, then
// encoding the record at its offset — entirely outside any latch, and then
// publishes the claim (see publish for the strict/relaxed fence semantics).
// The returned duration is the time spent blocked publishing (zero when
// untimed or uncontended).
//
//slint:hotpath
func (lb *logBuffer) fill(rec Record, s reservation, timed bool) time.Duration {
	if s.pad > 0 {
		pstart := lb.phys(s.off - s.pad)
		clear(lb.buf[pstart : pstart+s.pad])
	}
	start := lb.phys(s.off)
	if n := int64(rec.EncodeTo(lb.buf[start : start+s.n])); n != s.n {
		panic(fmt.Sprintf("wal: reserved %d bytes but encoded %d", s.n, n))
	}
	// Counted before the fence: a consume cycle that sees this record's
	// bytes published (the fence won between its `published` and `pubRecs`
	// loads) must not miss its count — the last cycle before an idle period
	// would otherwise leave the Synced total permanently short. The converse
	// skew (counted now, bytes consumed next cycle) self-corrects through
	// the flusher's running delta.
	lb.pubRecs.Add(1)
	d := lb.publish(s.off-s.pad, s.off+s.n, timed)
	if lb.resizable {
		lb.active.Add(-1)
	}
	return d
}

// consume takes the published-but-unconsumed window of the virtual log and
// returns it as physically contiguous byte ranges (at most two: the window
// never exceeds the ring size, so it splits at most once at the physical
// end), the count of records it contains and — when keepRecs is set — the
// decoded records with their byte-offset LSNs. The ranges alias the buffer:
// the caller must finish reading them and then call release(end) to hand the
// space back to reservers. end == 0 means nothing was consumable. Single
// consumer only. Padding is always published together with the record that
// claimed it, so a non-empty window always holds at least one record.
func (lb *logBuffer) consume(keepRecs bool) (ranges []flushRange, recs []Record, count int, end int64) {
	pub := lb.published.Load()
	if pub == lb.consumed {
		return nil, nil, 0, 0
	}
	// The record count comes from the published-records counter, not a
	// scan: on the fast path (range sink, no retention) consume touches no
	// frame bytes at all. Fills increment pubRecs just before their fence,
	// so the delta can transiently include a record whose bytes land next
	// cycle (never the reverse); the running totals stay exact.
	pr := lb.pubRecs.Load()
	count = int(pr - lb.consRecs)
	lb.consRecs = pr
	for off := lb.consumed; off < pub; {
		p := lb.phys(off)
		runEnd := min(pub, off+(lb.size-p))
		data := lb.buf[p : p+(runEnd-off)]
		ranges = append(ranges, flushRange{data: data, first: LSN(off)})
		// Materialize records only when something needs them (in-memory
		// retention, or a sink without the range fast path). Consume
		// windows never overlap, so even then every byte is decoded
		// exactly once over the log's lifetime.
		for i := int64(0); keepRecs && i < int64(len(data)); {
			if data[i] == 0 { // wraparound padding byte
				i++
				continue
			}
			length, vn := binary.Uvarint(data[i:])
			if vn <= 0 || int64(vn)+int64(length) > int64(len(data))-i {
				panic(fmt.Sprintf("wal: published log buffer frame at offset %d overruns its range", off+i))
			}
			rec, err := decodeBody(data[i+int64(vn) : i+int64(vn)+int64(length)])
			if err != nil {
				panic(fmt.Sprintf("wal: published log buffer bytes undecodable at offset %d: %v", off+i, err))
			}
			rec.LSN = LSN(off + i)
			recs = append(recs, rec)
			i += int64(vn) + int64(length)
		}
		off = runEnd
	}
	lb.consumed = pub
	return ranges, recs, count, pub
}

// release hands consumed buffer space back to reservers once the flusher has
// finished reading it (the physical write; Sync never reads the buffer).
func (lb *logBuffer) release(end int64) {
	lb.mu.Lock()
	if end > lb.tail.Load() {
		lb.tail.Store(end)
	}
	lb.notFull.Broadcast()
	lb.mu.Unlock()
}

// close wedges the buffer: every later reserve fails with err and blocked
// reservers wake. Reservations already claimed still fill and publish, so a
// closing log can drain them.
func (lb *logBuffer) close(err error) {
	lb.mu.Lock()
	if lb.err == nil {
		lb.err = err
	}
	lb.wedged.Store(true)
	lb.notFull.Broadcast()
	lb.mu.Unlock()
}
