package wal

// The consolidated log buffer: an Aether-style reserve/fill/publish protocol
// that decentralizes log insertion. Instead of serializing every appender on
// one mutex for the whole encode-and-copy, an appender
//
//  1. reserves — a short critical section assigns the record's LSN and a
//     contiguous byte range of the shared buffer (O(1) arithmetic, no
//     copying);
//  2. fills   — encodes the record directly into its reserved range with no
//     lock held, concurrently with every other appender;
//  3. publishes — marks the reservation complete.
//
// A single flusher goroutine consumes the contiguous published prefix and
// hands whole byte ranges to the durable sink, so the hot path shrinks from
// "mutex across encode+copy per record" to "a few dozen instructions under a
// latch per record". This is the log-side analogue of what SLI does to the
// lock manager: the last centralized service on the commit path becomes a
// short fixed-cost critical section.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLogBufferBytes is the default size of the consolidated log buffer.
const DefaultLogBufferBytes = 4 << 20

// minLogBufferBytes bounds how small a configured buffer may be; tiny buffers
// are allowed (tests use them to force wraparound and buffer-full waits) but
// must still hold a handful of records.
const minLogBufferBytes = 4 << 10

// rangeTargetBytes caps one flush range handed to the durable sink, so that
// segment rotation (checked once per range) keeps segment files near their
// configured size even when the flusher drains a very full buffer.
const rangeTargetBytes = 512 << 10

// AppendWaits reports where an Append spent time blocked, so callers can
// attribute it to the profiler's reserve-wait and buffer-full-wait categories
// separately from useful log work.
type AppendWaits struct {
	// Reserve is the time spent entering the reservation critical section:
	// the consolidated buffer's short latch, or — in MutexLog mode — the
	// whole centralized log mutex. This is the contention the consolidated
	// buffer exists to shrink.
	Reserve time.Duration
	// BufferFull is the time spent waiting for the flusher to drain the
	// buffer because the reservation did not fit. It indicates an undersized
	// buffer or a saturated sink, not latch contention.
	BufferFull time.Duration
}

// slot describes one reservation in the consolidated buffer, in LSN order.
// Padding slots (pad == true) carry no record; they account for the unusable
// bytes at the physical end of the ring when a frame would otherwise wrap.
type slot struct {
	rec   Record // LSN assigned at reserve time; zero for padding slots
	off   int64  // virtual start offset of the reserved range
	n     int64  // length of the reserved range in bytes
	pad   bool
	ready atomic.Bool // set by publish; pads are born ready
}

// flushRange is one physically contiguous run of published frames, ready to
// be handed to a RangeSink or an io.Writer as-is.
type flushRange struct {
	data        []byte
	first, last LSN
}

// logBuffer is the consolidated buffer itself: a byte ring addressed by
// monotonically increasing virtual offsets (phys = off % size), plus the
// reservation queue. Reservers contend only on mu for the short reserve
// arithmetic; fills happen fully outside it. The flusher is the single
// consumer.
type logBuffer struct {
	size int64
	buf  []byte

	mu      sync.Mutex
	notFull *sync.Cond
	head    int64   // next virtual offset to reserve
	tail    int64   // oldest virtual offset still in use (advanced by release)
	slots   []*slot // reservations not yet consumed, in LSN order
	err     error   // set once by close: every later reserve fails with it

	next        atomic.Uint64 // next LSN to assign; written under mu, read lock-free
	fullWaiters atomic.Int32  // reservers blocked on a full buffer (flusher pressure signal)
}

func newLogBuffer(size int64, start LSN) *logBuffer {
	if size <= 0 {
		size = DefaultLogBufferBytes
	}
	if size < minLogBufferBytes {
		size = minLogBufferBytes
	}
	lb := &logBuffer{size: size, buf: make([]byte, size)}
	lb.notFull = sync.NewCond(&lb.mu)
	lb.next.Store(uint64(start))
	return lb
}

func (lb *logBuffer) phys(off int64) int64 { return off % lb.size }

// lastLSN returns the highest LSN reserved so far.
func (lb *logBuffer) lastLSN() LSN { return LSN(lb.next.Load()) - 1 }

// fitsLocked reports whether a frame of n bytes fits right now, and the
// padding needed to keep it from wrapping across the physical end of the
// ring. It is the single statement of the ring's no-wrap admission rule,
// shared by reserve's admission test and its full-wait recheck.
func (lb *logBuffer) fitsLocked(n int64) (pad int64, fits bool) {
	if rem := lb.size - lb.phys(lb.head); rem < n {
		pad = rem
	}
	return pad, lb.head+pad+n-lb.tail <= lb.size
}

// reserve assigns rec's LSN and a byte range of the buffer. The critical
// section is O(1): LSN assignment, exact-size computation and offset
// arithmetic — no encoding, no copying. When the buffer is full the reserver
// calls kick (with no locks held) so the flusher drains even before any
// durability subscription exists, then waits for space. LSNs are assigned in
// reservation-completion order, so the slot queue is always in LSN order.
// timed gates the wait-clock reads so non-profiled appends pay no time.Now
// on the hot path (and none inside the latch).
func (lb *logBuffer) reserve(rec Record, kick func(), timed bool) (*slot, AppendWaits, error) {
	var w AppendWaits
	var lockStart time.Time
	if timed {
		lockStart = time.Now()
	}
	lb.mu.Lock()
	if timed {
		w.Reserve = time.Since(lockStart)
	}
	for {
		if lb.err != nil {
			err := lb.err
			lb.mu.Unlock()
			return nil, w, err
		}
		// The frame embeds the LSN as a varint, so the exact size is only
		// known once the LSN is; both are computed inside the critical
		// section, which stays O(1).
		rec.LSN = LSN(lb.next.Load())
		n := int64(rec.EncodedSize())
		if n > maxFrameBytes || n > lb.size/2 {
			// A frame past maxFrameBytes is undecodable by every reader
			// (the decoder treats it as corruption), and one past half the
			// buffer could starve forever behind smaller reservations;
			// reject at append time instead of corrupting the log.
			lb.mu.Unlock()
			return nil, w, fmt.Errorf("wal: record frame of %d bytes exceeds log buffer capacity (max %d)", n, min(int64(maxFrameBytes), lb.size/2))
		}
		if pad, fits := lb.fitsLocked(n); fits {
			if pad > 0 {
				p := &slot{off: lb.head, n: pad, pad: true}
				p.ready.Store(true)
				lb.slots = append(lb.slots, p)
				lb.head += pad
			}
			s := &slot{rec: rec, off: lb.head, n: n}
			lb.slots = append(lb.slots, s)
			lb.head += n
			lb.next.Add(1)
			lb.mu.Unlock()
			return s, w, nil
		}
		// Full. Wake the flusher without holding the buffer latch, then wait
		// for released space. The re-check under the lock avoids losing a
		// broadcast that landed between kick and re-lock; the outer loop
		// re-derives the size and padding because the LSN (and therefore the
		// frame size) may have moved while we slept.
		lb.fullWaiters.Add(1)
		lb.mu.Unlock()
		kick()
		if timed {
			lockStart = time.Now()
		}
		lb.mu.Lock()
		if timed {
			// Re-acquisition after the kick is latch contention too.
			w.Reserve += time.Since(lockStart)
		}
		if _, fits := lb.fitsLocked(n); lb.err == nil && !fits {
			var fullStart time.Time
			if timed {
				fullStart = time.Now()
			}
			lb.notFull.Wait()
			if timed {
				w.BufferFull += time.Since(fullStart)
			}
		}
		lb.fullWaiters.Add(-1)
	}
}

// fill encodes the reserved record directly into the shared buffer — outside
// any latch, concurrently with other fillers — and publishes it. Reservations
// never wrap the physical end of the ring (reserve pads instead), so the
// destination is a single contiguous slice.
func (lb *logBuffer) fill(s *slot) {
	start := lb.phys(s.off)
	if n := int64(s.rec.EncodeTo(lb.buf[start : start+s.n])); n != s.n {
		panic(fmt.Sprintf("wal: reserved %d bytes but encoded %d", s.n, n))
	}
	s.ready.Store(true)
}

// consume removes the contiguous published prefix of the reservation queue
// and returns it as physically contiguous byte ranges (split at ring
// wraparound, padding, and rangeTargetBytes), the records it contains (only
// when keepRecs is set), their count, the highest LSN taken, and the new
// consumed watermark. The ranges alias the buffer: the caller must finish
// reading them and then call release(end) to hand the space back to
// reservers. end == 0 means nothing was consumable. Single consumer only.
func (lb *logBuffer) consume(keepRecs bool) (ranges []flushRange, recs []Record, count int, last LSN, end int64) {
	lb.mu.Lock()
	k := 0
	for _, s := range lb.slots {
		if !s.ready.Load() {
			break
		}
		k++
	}
	taken := lb.slots[:k:k]
	lb.slots = lb.slots[k:]
	lb.mu.Unlock()
	if k == 0 {
		return nil, nil, 0, 0, 0
	}

	curStart := int64(-1)
	var curLen int64
	var curFirst, curLast LSN
	flushCur := func() {
		if curStart >= 0 {
			ranges = append(ranges, flushRange{
				data:  lb.buf[curStart : curStart+curLen],
				first: curFirst,
				last:  curLast,
			})
			curStart = -1
		}
	}
	for _, s := range taken {
		end = s.off + s.n
		if s.pad {
			flushCur()
			continue
		}
		start := lb.phys(s.off)
		if curStart >= 0 && (start != curStart+curLen || curLen >= rangeTargetBytes) {
			flushCur()
		}
		if curStart < 0 {
			curStart, curLen, curFirst = start, 0, s.rec.LSN
		}
		curLen += s.n
		curLast = s.rec.LSN
		count++
		last = s.rec.LSN
		if keepRecs {
			recs = append(recs, s.rec)
		}
	}
	flushCur()
	return ranges, recs, count, last, end
}

// release hands consumed buffer space back to reservers once the flusher has
// finished reading it (the physical write; Sync never reads the buffer).
func (lb *logBuffer) release(end int64) {
	lb.mu.Lock()
	if end > lb.tail {
		lb.tail = end
	}
	lb.notFull.Broadcast()
	lb.mu.Unlock()
}

// close wedges the buffer: every later reserve fails with err and blocked
// reservers wake. Reservations already made may still fill and publish, so a
// closing log can drain them.
func (lb *logBuffer) close(err error) {
	lb.mu.Lock()
	if lb.err == nil {
		lb.err = err
	}
	lb.notFull.Broadcast()
	lb.mu.Unlock()
}
