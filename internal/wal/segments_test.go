package wal

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// logTo creates a Log backed by a Segments sink.
func logTo(t *testing.T, dir string, segBytes int64) (*Log, *Segments) {
	t.Helper()
	segs, err := OpenSegments(dir, segBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Durable: segs, DropAfterFlush: true}), segs
}

// appendN appends n records and returns their byte-offset LSNs.
func appendN(t *testing.T, l *Log, xid uint64, n int) []LSN {
	t.Helper()
	lsns := make([]LSN, 0, n)
	for i := 0; i < n; i++ {
		lsn, err := l.Append(Record{XID: xid, Type: RecInsert, Table: 1, After: []byte("payload-payload")})
		if err != nil {
			t.Fatal(err)
		}
		lsns = append(lsns, lsn)
	}
	return lsns
}

func collect(t *testing.T, segs *Segments, from LSN) []Record {
	t.Helper()
	var out []Record
	if err := segs.Iterate(from, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSegmentsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	lsns := appendN(t, l, 7, 10)
	if err := l.Flush(lsns[9]); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, segs, 0)
	if len(recs) != 10 {
		t.Fatalf("iterated %d records, want 10", len(recs))
	}
	for i, r := range recs {
		// Byte-offset LSNs: the iterated record's LSN must be exactly the
		// offset Append returned, recovered from its position on disk.
		if r.LSN != lsns[i] || r.XID != 7 || r.Type != RecInsert {
			t.Fatalf("record %d = %+v, want LSN %d", i, r, lsns[i])
		}
	}
	// Iterate from the middle: addressing is arithmetic, not scanning, so
	// starting at a record's exact byte offset yields that record first.
	if got := collect(t, segs, lsns[5]); len(got) != 5 || got[0].LSN != lsns[5] {
		t.Fatalf("partial iterate = %d records starting at %v, want 5 from %d", len(got), got[0].LSN, lsns[5])
	}
	// End is the offset just past the last frame.
	wantEnd := lsns[9].Advance(int64(recs[9].EncodedSize()))
	if segs.End() != wantEnd {
		t.Fatalf("End = %d, want %d", segs.End(), wantEnd)
	}
}

func TestSegmentsRotationAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 128) // tiny segments force rotation
	lsns := appendN(t, l, 1, 50)
	if err := l.Flush(lsns[49]); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(files))
	}
	if got := collect(t, segs, 0); len(got) != 50 {
		t.Fatalf("iterated %d records across segments, want 50", len(got))
	}
	// Checkpoint at record 25's start offset covers exactly records 0..24
	// (the watermark is an exclusive end): segments holding newer records
	// survive and iteration resumes at the boundary.
	if err := segs.Checkpoint(lsns[25]); err != nil {
		t.Fatal(err)
	}
	got := collect(t, segs, lsns[25])
	if len(got) != 25 || got[0].LSN != lsns[25] {
		t.Fatalf("after partial checkpoint: %d records from LSN %d, want 25 from %d", len(got), got[0].LSN, lsns[25])
	}
	// Checkpoint covering everything deletes every segment.
	if err := segs.Checkpoint(segs.End()); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) != 0 {
		t.Fatalf("full checkpoint left %d segments", len(files))
	}
	// The log keeps appending into a fresh segment afterwards, at offsets
	// above everything checkpointed away.
	more := appendN(t, l, 2, 3)
	if err := l.Flush(more[2]); err != nil {
		t.Fatal(err)
	}
	got = collect(t, segs, 0)
	if len(got) != 3 || got[0].LSN != more[0] || more[0] <= lsns[49] {
		t.Fatalf("post-checkpoint records = %v (first appended at %d)", got, more[0])
	}
}

func TestSegmentsReopenResumesLSN(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	lsns := appendN(t, l, 1, 5)
	if err := l.Flush(lsns[4]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	end := segs.End()
	if err := segs.Close(); err != nil {
		t.Fatal(err)
	}

	segs2, err := OpenSegments(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if segs2.End() != end {
		t.Fatalf("reopened End = %d, want %d", segs2.End(), end)
	}
	l2 := New(Config{Durable: segs2, StartLSN: segs2.End(), DropAfterFlush: true})
	more := appendN(t, l2, 2, 2)
	if more[0] != end {
		t.Fatalf("resumed LSN = %d, want %d (appends continue at the recovered end)", more[0], end)
	}
	if err := l2.Flush(more[1]); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, segs2, 0)
	if len(recs) != 7 {
		t.Fatalf("after reopen+append: %d records, want 7", len(recs))
	}
}

func TestSegmentsTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	lsns := appendN(t, l, 1, 5)
	if err := l.Flush(lsns[4]); err != nil {
		t.Fatal(err)
	}
	end := segs.End()
	segs.Close()

	// Simulate a crash mid-write: garbage half-frame at the segment tail.
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) != 1 {
		t.Fatalf("want 1 segment, got %d", len(files))
	}
	f, err := os.OpenFile(files[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A truncated frame followed by bytes that parse as an absurd length
	// prefix: the scanner must treat both as a torn tail, not allocate.
	if _, err := f.Write([]byte{0x40, 0x01, 0x02, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	segs2, err := OpenSegments(dir, 0, false)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer segs2.Close()
	if segs2.End() != end {
		t.Fatalf("End after torn tail = %d, want %d", segs2.End(), end)
	}
	if got := collect(t, segs2, 0); len(got) != 5 {
		t.Fatalf("iterated %d records, want 5 (torn frame must be dropped)", len(got))
	}
	// Appends after truncation extend a valid log.
	l2 := New(Config{Durable: segs2, StartLSN: segs2.End(), DropAfterFlush: true})
	more := appendN(t, l2, 2, 1)
	if err := l2.Flush(more[0]); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, segs2, 0); len(got) != 6 || got[5].LSN != end {
		t.Fatalf("append after torn-tail truncation: %v", got)
	}
}

// TestTornTailAcrossRotationBoundary covers the crash signature where the
// torn record straddles a segment rotation: the previous segment ends clean
// at a frame boundary and the freshly rotated segment holds only its header
// plus the partial first frame that was mid-write when the machine died.
// Repair must truncate the new segment back to its header (not reject it,
// and not disturb the full previous segments), recover the log end from the
// earlier segments, and let appends resume into a valid log.
func TestTornTailAcrossRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 128) // tiny segments force rotation
	lsns := appendN(t, l, 1, 20)
	if err := l.Flush(lsns[19]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	end := segs.End()
	if err := segs.Close(); err != nil {
		t.Fatal(err)
	}
	if n := segs.SegmentCount(); n < 2 {
		t.Fatalf("setup needs several segments, got %d", n)
	}

	// Simulate the crash: a new segment was created at rotation (header
	// fully written) and the first record's frame only partially reached it.
	// The partial frame is a valid length prefix with a truncated body — the
	// straddle signature.
	torn := Record{XID: 2, Type: RecInsert, Table: 1, After: []byte("payload-payload")}.Encode()
	torn = torn[:len(torn)/2]
	path := filepath.Join(dir, segmentName(end))
	if err := os.WriteFile(path, append(encodeHeader(end), torn...), 0o644); err != nil {
		t.Fatal(err)
	}

	segs2, err := OpenSegments(dir, 128, false)
	if err != nil {
		t.Fatalf("reopen with torn rotated segment: %v", err)
	}
	defer segs2.Close()
	if got := segs2.End(); got != end {
		t.Fatalf("End = %d, want %d (torn first record of rotated segment must not count)", got, end)
	}
	if got := collect(t, segs2, 0); len(got) != 20 {
		t.Fatalf("iterated %d records, want 20", len(got))
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != segHeaderSize {
		t.Fatalf("torn rotated segment not truncated to its header: size=%v err=%v", fi.Size(), err)
	}

	// Appends resume seamlessly above the repaired tail.
	l2 := New(Config{Durable: segs2, StartLSN: segs2.End(), DropAfterFlush: true})
	more := appendN(t, l2, 3, 2)
	if err := l2.Flush(more[1]); err != nil {
		t.Fatal(err)
	}
	got := collect(t, segs2, 0)
	if len(got) != 22 || got[21].LSN != more[1] {
		t.Fatalf("append after straddle repair: %d records, last LSN %d (want %d)", len(got), got[len(got)-1].LSN, more[1])
	}
}

// TestTornHeaderAtRotationRepaired covers the narrower crash window where
// the machine died between creating a rotated segment file and its header
// reaching disk: the file exists but is empty (or holds a partial header).
// Reopen must rewrite the header — not report ErrLogFormat, which is for
// wrong-format files, not torn ones.
func TestTornHeaderAtRotationRepaired(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	lsns := appendN(t, l, 1, 3)
	if err := l.Flush(lsns[2]); err != nil {
		t.Fatal(err)
	}
	end := segs.End()
	segs.Checkpoint(0) // seal the current segment so the next one is fresh
	segs.Close()

	for _, partial := range [][]byte{nil, encodeHeader(end)[:3]} {
		path := filepath.Join(dir, segmentName(end))
		if err := os.WriteFile(path, partial, 0o644); err != nil {
			t.Fatal(err)
		}
		segs2, err := OpenSegments(dir, 0, false)
		if err != nil {
			t.Fatalf("reopen with %d-byte torn header: %v", len(partial), err)
		}
		if segs2.End() != end {
			t.Fatalf("End after torn-header repair = %d, want %d", segs2.End(), end)
		}
		l2 := New(Config{Durable: segs2, StartLSN: segs2.End(), DropAfterFlush: true})
		more := appendN(t, l2, 2, 1)
		if err := l2.Flush(more[0]); err != nil {
			t.Fatal(err)
		}
		if got := collect(t, segs2, 0); len(got) != 4 || got[3].LSN != end {
			t.Fatalf("append after torn-header repair: %v", got)
		}
		segs2.Close()
		os.Remove(path)
	}
}

// TestOldFormatSegmentsFailLoudly pins the format gate: a data directory
// whose segment files predate the byte-offset LSN format (headerless v1
// frames, or a future version byte) must fail OpenSegments with
// ErrLogFormat — never scan as a torn tail and silently truncate.
func TestOldFormatSegmentsFailLoudly(t *testing.T) {
	t.Run("headerless-v1", func(t *testing.T) {
		dir := t.TempDir()
		// A v1 segment is a bare frame stream: no magic, the first byte is a
		// frame length prefix.
		v1 := append(Record{XID: 1, Type: RecInsert, After: []byte("old-format-row")}.Encode(),
			Record{XID: 1, Type: RecCommit}.Encode()...)
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), v1, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenSegments(dir, 0, false)
		if !errors.Is(err, ErrLogFormat) {
			t.Fatalf("OpenSegments on v1 segment: err = %v, want ErrLogFormat", err)
		}
	})
	t.Run("future-version", func(t *testing.T) {
		dir := t.TempDir()
		h := encodeHeader(1)
		h[len(segMagic)] = segVersion + 1
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), h, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := OpenSegments(dir, 0, false)
		if !errors.Is(err, ErrLogFormat) {
			t.Fatalf("OpenSegments on future-version segment: err = %v, want ErrLogFormat", err)
		}
	})
	t.Run("iterate-rejects-too", func(t *testing.T) {
		dir := t.TempDir()
		l, segs := logTo(t, dir, 0)
		lsns := appendN(t, l, 1, 1)
		if err := l.Flush(lsns[0]); err != nil {
			t.Fatal(err)
		}
		// Corrupt the magic in place after opening: Iterate re-reads files.
		files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
		data, err := os.ReadFile(files[0])
		if err != nil {
			t.Fatal(err)
		}
		data[0] = 'X'
		if err := os.WriteFile(files[0], data, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := segs.Iterate(0, func(Record) error { return nil }); !errors.Is(err, ErrLogFormat) {
			t.Fatalf("Iterate on clobbered magic: err = %v, want ErrLogFormat", err)
		}
		segs.Close()
	})
}

// TestRangeWriteRotationMatchesPerRecord pins WriteRange's rotation rule: a
// frame goes to the current segment iff the segment is under the rotation
// size when the frame starts — the same rule WriteRecord applies — so range
// writes never split a frame across segment files, and every record comes
// back at exactly the byte offset it was placed at.
func TestRangeWriteRotationMatchesPerRecord(t *testing.T) {
	dir := t.TempDir()
	segs, err := OpenSegments(dir, 256, false)
	if err != nil {
		t.Fatal(err)
	}
	defer segs.Close()
	// One large range of many frames starting at offset 1: rotation must
	// slice it at frame boundaries into several segments.
	var rng []byte
	var want []LSN
	at := LSN(1)
	for i := 1; i <= 40; i++ {
		rec := Record{XID: 7, Type: RecInsert, Table: 1, After: []byte("0123456789abcdef")}
		want = append(want, at)
		enc := rec.Encode()
		rng = append(rng, enc...)
		at = at.Advance(int64(len(enc)))
	}
	if err := segs.WriteRange(rng, 1); err != nil {
		t.Fatal(err)
	}
	if err := segs.Sync(); err != nil {
		t.Fatal(err)
	}
	if n := segs.SegmentCount(); n < 3 {
		t.Fatalf("range write produced %d segments, want rotation to several", n)
	}
	if got := segs.End(); got != at {
		t.Fatalf("End = %d, want %d", got, at)
	}
	// Every segment must scan clean (no frame split across files) and every
	// record must surface at its original offset.
	got := collect(t, segs, 0)
	if len(got) != 40 {
		t.Fatalf("iterated %d records, want 40", len(got))
	}
	for i, r := range got {
		if r.LSN != want[i] {
			t.Fatalf("record %d has LSN %d, want %d", i, r.LSN, want[i])
		}
	}
}

// TestWriteRecordGapFillsPadding pins the per-record compatibility path: a
// record stream elides the log buffer's wraparound padding, so WriteRecord
// must re-materialize the missing zero bytes to keep every on-disk byte at
// its virtual offset — reading back must see each record at its LSN.
func TestWriteRecordGapFillsPadding(t *testing.T) {
	dir := t.TempDir()
	segs, err := OpenSegments(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer segs.Close()
	r1 := Record{LSN: 1, XID: 1, Type: RecInsert, After: []byte("a")}
	gap := LSN(1 + r1.EncodedSize() + 13) // 13 bytes of elided padding
	r2 := Record{LSN: gap, XID: 1, Type: RecCommit}
	if err := segs.WriteRecord(r1, r1.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := segs.WriteRecord(r2, r2.Encode()); err != nil {
		t.Fatal(err)
	}
	if err := segs.Sync(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, segs, 0)
	if len(got) != 2 || got[0].LSN != 1 || got[1].LSN != gap {
		t.Fatalf("gap-filled stream read back as %+v", got)
	}
	// Writing below the end is corruption, not silently accepted.
	if err := segs.WriteRecord(r1, r1.Encode()); err == nil {
		t.Fatal("overlapping WriteRecord accepted")
	}
}

// TestCloseDrainsPendingRecords pins the Close/Flush contract: records
// appended but never explicitly flushed must still reach the sink before
// Close returns.
func TestCloseDrainsPendingRecords(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	appendN(t, l, 3, 8) // no Flush
	if n := l.PendingBytes(); n == 0 {
		t.Fatal("pending bytes = 0 before Close, want > 0")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if n := l.PendingBytes(); n != 0 {
		t.Fatalf("Close left %d pending bytes", n)
	}
	if got, want := l.DurableLSN(), l.LastLSN(); got != want {
		t.Fatalf("DurableLSN after Close = %d, want %d", got, want)
	}
	if got := collect(t, segs, 0); len(got) != 8 {
		t.Fatalf("sink received %d records, want all 8", len(got))
	}
	if _, err := l.Append(Record{Type: RecBegin}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}
