package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// logTo creates a Log backed by a Segments sink.
func logTo(t *testing.T, dir string, segBytes int64) (*Log, *Segments) {
	t.Helper()
	segs, err := OpenSegments(dir, segBytes)
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Durable: segs, DropAfterFlush: true}), segs
}

func appendN(t *testing.T, l *Log, xid uint64, n int) LSN {
	t.Helper()
	var last LSN
	for i := 0; i < n; i++ {
		lsn, err := l.Append(Record{XID: xid, Type: RecInsert, Table: 1, After: []byte("payload-payload")})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	return last
}

func collect(t *testing.T, segs *Segments, from LSN) []Record {
	t.Helper()
	var out []Record
	if err := segs.Iterate(from, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSegmentsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	last := appendN(t, l, 7, 10)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, segs, 1)
	if len(recs) != 10 {
		t.Fatalf("iterated %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) || r.XID != 7 || r.Type != RecInsert {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Iterate from the middle.
	if got := collect(t, segs, 6); len(got) != 5 || got[0].LSN != 6 {
		t.Fatalf("partial iterate = %d records starting at %v", len(got), got[0].LSN)
	}
	if segs.MaxLSN() != 10 {
		t.Fatalf("MaxLSN = %d, want 10", segs.MaxLSN())
	}
}

func TestSegmentsRotationAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 128) // tiny segments force rotation
	last := appendN(t, l, 1, 50)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(files))
	}
	if got := collect(t, segs, 1); len(got) != 50 {
		t.Fatalf("iterated %d records across segments, want 50", len(got))
	}
	// Checkpoint covering half the log must keep segments with newer records.
	if err := segs.Checkpoint(25); err != nil {
		t.Fatal(err)
	}
	got := collect(t, segs, 26)
	if len(got) != 25 || got[0].LSN != 26 {
		t.Fatalf("after partial checkpoint: %d records from LSN %d", len(got), got[0].LSN)
	}
	// Checkpoint covering everything deletes every segment.
	if err := segs.Checkpoint(50); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) != 0 {
		t.Fatalf("full checkpoint left %d segments", len(files))
	}
	// The log keeps appending into a fresh segment afterwards.
	last = appendN(t, l, 2, 3)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	got = collect(t, segs, 1)
	if len(got) != 3 || got[0].LSN != 51 {
		t.Fatalf("post-checkpoint records = %v", got)
	}
}

func TestSegmentsReopenResumesLSN(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	last := appendN(t, l, 1, 5)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := segs.Close(); err != nil {
		t.Fatal(err)
	}

	segs2, err := OpenSegments(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if segs2.MaxLSN() != 5 {
		t.Fatalf("reopened MaxLSN = %d, want 5", segs2.MaxLSN())
	}
	l2 := New(Config{Durable: segs2, StartLSN: segs2.MaxLSN() + 1, DropAfterFlush: true})
	last = appendN(t, l2, 2, 2)
	if last != 7 {
		t.Fatalf("resumed LSN = %d, want 7", last)
	}
	if err := l2.Flush(last); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, segs2, 1)
	if len(recs) != 7 {
		t.Fatalf("after reopen+append: %d records, want 7", len(recs))
	}
}

func TestSegmentsTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	last := appendN(t, l, 1, 5)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	segs.Close()

	// Simulate a crash mid-write: garbage half-frame at the segment tail.
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) != 1 {
		t.Fatalf("want 1 segment, got %d", len(files))
	}
	f, err := os.OpenFile(files[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A truncated frame followed by bytes that parse as an absurd length
	// prefix: the scanner must treat both as a torn tail, not allocate.
	if _, err := f.Write([]byte{0x40, 0x01, 0x02, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	segs2, err := OpenSegments(dir, 0)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer segs2.Close()
	if segs2.MaxLSN() != 5 {
		t.Fatalf("MaxLSN after torn tail = %d, want 5", segs2.MaxLSN())
	}
	if got := collect(t, segs2, 1); len(got) != 5 {
		t.Fatalf("iterated %d records, want 5 (torn frame must be dropped)", len(got))
	}
	// Appends after truncation extend a valid log.
	l2 := New(Config{Durable: segs2, StartLSN: 6, DropAfterFlush: true})
	last = appendN(t, l2, 2, 1)
	if err := l2.Flush(last); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, segs2, 1); len(got) != 6 || got[5].LSN != 6 {
		t.Fatalf("append after torn-tail truncation: %v", got)
	}
}

// TestTornTailAcrossRotationBoundary covers the crash signature where the
// torn record straddles a segment rotation: the previous segment ends clean
// at a frame boundary and the freshly rotated segment holds only the partial
// first frame that was mid-write when the machine died. Repair must truncate
// the new segment to empty (not reject it, and not disturb the full previous
// segments), recover MaxLSN from the earlier segments, and let appends
// resume into a valid log.
func TestTornTailAcrossRotationBoundary(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 128) // tiny segments force rotation
	last := appendN(t, l, 1, 20)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := segs.Close(); err != nil {
		t.Fatal(err)
	}
	if n := segs.SegmentCount(); n < 2 {
		t.Fatalf("setup needs several segments, got %d", n)
	}

	// Simulate the crash: a new segment was created at rotation and the
	// first record's frame only partially reached it. The partial frame is a
	// valid length prefix with a truncated body — the straddle signature.
	torn := Record{LSN: last + 1, XID: 2, Type: RecInsert, Table: 1, After: []byte("payload-payload")}.Encode()
	torn = torn[:len(torn)/2]
	path := filepath.Join(dir, segmentName(last+1))
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	segs2, err := OpenSegments(dir, 128)
	if err != nil {
		t.Fatalf("reopen with torn rotated segment: %v", err)
	}
	defer segs2.Close()
	if got := segs2.MaxLSN(); got != last {
		t.Fatalf("MaxLSN = %d, want %d (torn first record of rotated segment must not count)", got, last)
	}
	if got := collect(t, segs2, 1); len(got) != int(last) {
		t.Fatalf("iterated %d records, want %d", len(got), last)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("torn rotated segment not truncated to empty: size=%v err=%v", fi.Size(), err)
	}

	// Appends resume seamlessly above the repaired tail.
	l2 := New(Config{Durable: segs2, StartLSN: segs2.MaxLSN() + 1, DropAfterFlush: true})
	lastResumed := appendN(t, l2, 3, 2)
	if err := l2.Flush(lastResumed); err != nil {
		t.Fatal(err)
	}
	got := collect(t, segs2, 1)
	if len(got) != int(last)+2 || got[len(got)-1].LSN != last+2 {
		t.Fatalf("append after straddle repair: %d records, last LSN %d", len(got), got[len(got)-1].LSN)
	}
}

// TestRangeWriteRotationMatchesPerRecord pins WriteRange's rotation rule: a
// frame goes to the current segment iff the segment is under the rotation
// size when the frame starts — the same rule WriteRecord applies — so range
// writes never split a frame across segment files.
func TestRangeWriteRotationMatchesPerRecord(t *testing.T) {
	dir := t.TempDir()
	segs, err := OpenSegments(dir, 256)
	if err != nil {
		t.Fatal(err)
	}
	defer segs.Close()
	// One large range of many frames: rotation must slice it at frame
	// boundaries into several segments.
	var rng []byte
	var first, last LSN
	for i := 1; i <= 40; i++ {
		rec := Record{LSN: LSN(i), XID: 7, Type: RecInsert, Table: 1, After: []byte("0123456789abcdef")}
		if first == 0 {
			first = rec.LSN
		}
		last = rec.LSN
		rng = append(rng, rec.Encode()...)
	}
	if err := segs.WriteRange(rng, first, last); err != nil {
		t.Fatal(err)
	}
	if err := segs.Sync(); err != nil {
		t.Fatal(err)
	}
	if n := segs.SegmentCount(); n < 3 {
		t.Fatalf("range write produced %d segments, want rotation to several", n)
	}
	// Every segment must scan clean (no frame split across files) and the
	// full LSN sequence must be intact.
	got := collect(t, segs, 1)
	if len(got) != 40 {
		t.Fatalf("iterated %d records, want 40", len(got))
	}
	for i, r := range got {
		if r.LSN != LSN(i+1) {
			t.Fatalf("record %d has LSN %d", i, r.LSN)
		}
	}
}

// TestCloseDrainsPendingRecords pins the Close/Flush contract: records
// appended but never explicitly flushed must still reach the sink before
// Close returns.
func TestCloseDrainsPendingRecords(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	appendN(t, l, 3, 8) // no Flush
	if n := l.PendingRecords(); n != 8 {
		t.Fatalf("pending = %d, want 8", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != 8 {
		t.Fatalf("DurableLSN after Close = %d, want 8", got)
	}
	if got := collect(t, segs, 1); len(got) != 8 {
		t.Fatalf("sink received %d records, want all 8", len(got))
	}
	if _, err := l.Append(Record{Type: RecBegin}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}
