package wal

import (
	"os"
	"path/filepath"
	"testing"
)

// logTo creates a Log backed by a Segments sink.
func logTo(t *testing.T, dir string, segBytes int64) (*Log, *Segments) {
	t.Helper()
	segs, err := OpenSegments(dir, segBytes)
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Durable: segs, DropAfterFlush: true}), segs
}

func appendN(t *testing.T, l *Log, xid uint64, n int) LSN {
	t.Helper()
	var last LSN
	for i := 0; i < n; i++ {
		lsn, err := l.Append(Record{XID: xid, Type: RecInsert, Table: 1, After: []byte("payload-payload")})
		if err != nil {
			t.Fatal(err)
		}
		last = lsn
	}
	return last
}

func collect(t *testing.T, segs *Segments, from LSN) []Record {
	t.Helper()
	var out []Record
	if err := segs.Iterate(from, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSegmentsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	last := appendN(t, l, 7, 10)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, segs, 1)
	if len(recs) != 10 {
		t.Fatalf("iterated %d records, want 10", len(recs))
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) || r.XID != 7 || r.Type != RecInsert {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Iterate from the middle.
	if got := collect(t, segs, 6); len(got) != 5 || got[0].LSN != 6 {
		t.Fatalf("partial iterate = %d records starting at %v", len(got), got[0].LSN)
	}
	if segs.MaxLSN() != 10 {
		t.Fatalf("MaxLSN = %d, want 10", segs.MaxLSN())
	}
}

func TestSegmentsRotationAndCheckpoint(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 128) // tiny segments force rotation
	last := appendN(t, l, 1, 50)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(files))
	}
	if got := collect(t, segs, 1); len(got) != 50 {
		t.Fatalf("iterated %d records across segments, want 50", len(got))
	}
	// Checkpoint covering half the log must keep segments with newer records.
	if err := segs.Checkpoint(25); err != nil {
		t.Fatal(err)
	}
	got := collect(t, segs, 26)
	if len(got) != 25 || got[0].LSN != 26 {
		t.Fatalf("after partial checkpoint: %d records from LSN %d", len(got), got[0].LSN)
	}
	// Checkpoint covering everything deletes every segment.
	if err := segs.Checkpoint(50); err != nil {
		t.Fatal(err)
	}
	files, _ = filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) != 0 {
		t.Fatalf("full checkpoint left %d segments", len(files))
	}
	// The log keeps appending into a fresh segment afterwards.
	last = appendN(t, l, 2, 3)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	got = collect(t, segs, 1)
	if len(got) != 3 || got[0].LSN != 51 {
		t.Fatalf("post-checkpoint records = %v", got)
	}
}

func TestSegmentsReopenResumesLSN(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	last := appendN(t, l, 1, 5)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := segs.Close(); err != nil {
		t.Fatal(err)
	}

	segs2, err := OpenSegments(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if segs2.MaxLSN() != 5 {
		t.Fatalf("reopened MaxLSN = %d, want 5", segs2.MaxLSN())
	}
	l2 := New(Config{Durable: segs2, StartLSN: segs2.MaxLSN() + 1, DropAfterFlush: true})
	last = appendN(t, l2, 2, 2)
	if last != 7 {
		t.Fatalf("resumed LSN = %d, want 7", last)
	}
	if err := l2.Flush(last); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, segs2, 1)
	if len(recs) != 7 {
		t.Fatalf("after reopen+append: %d records, want 7", len(recs))
	}
}

func TestSegmentsTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	last := appendN(t, l, 1, 5)
	if err := l.Flush(last); err != nil {
		t.Fatal(err)
	}
	segs.Close()

	// Simulate a crash mid-write: garbage half-frame at the segment tail.
	files, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(files) != 1 {
		t.Fatalf("want 1 segment, got %d", len(files))
	}
	f, err := os.OpenFile(files[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A truncated frame followed by bytes that parse as an absurd length
	// prefix: the scanner must treat both as a torn tail, not allocate.
	if _, err := f.Write([]byte{0x40, 0x01, 0x02, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	segs2, err := OpenSegments(dir, 0)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer segs2.Close()
	if segs2.MaxLSN() != 5 {
		t.Fatalf("MaxLSN after torn tail = %d, want 5", segs2.MaxLSN())
	}
	if got := collect(t, segs2, 1); len(got) != 5 {
		t.Fatalf("iterated %d records, want 5 (torn frame must be dropped)", len(got))
	}
	// Appends after truncation extend a valid log.
	l2 := New(Config{Durable: segs2, StartLSN: 6, DropAfterFlush: true})
	last = appendN(t, l2, 2, 1)
	if err := l2.Flush(last); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, segs2, 1); len(got) != 6 || got[5].LSN != 6 {
		t.Fatalf("append after torn-tail truncation: %v", got)
	}
}

// TestCloseDrainsPendingRecords pins the Close/Flush contract: records
// appended but never explicitly flushed must still reach the sink before
// Close returns.
func TestCloseDrainsPendingRecords(t *testing.T) {
	dir := t.TempDir()
	l, segs := logTo(t, dir, 0)
	appendN(t, l, 3, 8) // no Flush
	if n := l.PendingRecords(); n != 8 {
		t.Fatalf("pending = %d, want 8", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got != 8 {
		t.Fatalf("DurableLSN after Close = %d, want 8", got)
	}
	if got := collect(t, segs, 1); len(got) != 8 {
		t.Fatalf("sink received %d records, want all 8", len(got))
	}
	if _, err := l.Append(Record{Type: RecBegin}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}
