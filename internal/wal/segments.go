package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// DefaultSegmentBytes is the rotation threshold for on-disk log segments.
const DefaultSegmentBytes = 4 << 20

// segPrefix/segSuffix frame segment file names: wal-<first LSN, hex>.seg.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segmentName(first LSN) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, uint64(first), segSuffix)
}

func parseSegmentName(name string) (LSN, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return LSN(v), true
}

// segmentInfo describes one on-disk segment file.
type segmentInfo struct {
	path  string
	first LSN // LSN of the first record written to the segment
}

// Segments is a directory of append-only write-ahead log segment files. It
// implements DurableSink: records are appended to the current segment, a new
// segment is started once the current one exceeds the configured size, and
// Sync (called once per group-commit batch by the Log) forces the current
// segment to stable storage.
//
// Records within and across segments are in strictly increasing, contiguous
// LSN order, because the Log hands every appended record to its sink in
// order. Segment files are named by the LSN of their first record, so the
// set of segments covering a given LSN range can be determined from file
// names alone.
type Segments struct {
	dir      string
	segBytes int64

	mu      sync.Mutex
	cur     *os.File
	curSize int64
	maxLSN  LSN // highest LSN present in any segment
	closed  bool
}

// OpenSegments opens (creating if necessary) the segment directory. Existing
// segments are scanned to find the highest durable LSN; a torn frame at the
// tail of the last segment — the signature of a crash mid-write — is
// truncated away so subsequent appends extend a valid log. segBytes <= 0
// uses DefaultSegmentBytes.
func OpenSegments(dir string, segBytes int64) (*Segments, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create segment dir: %w", err)
	}
	s := &Segments{dir: dir, segBytes: segBytes}
	infos, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	for i, info := range infos {
		last := i == len(infos)-1
		valid, maxLSN, serr := scanSegment(info.path)
		if serr != nil && !last {
			return nil, fmt.Errorf("wal: segment %s: %w", filepath.Base(info.path), serr)
		}
		if maxLSN > s.maxLSN {
			s.maxLSN = maxLSN
		}
		if last {
			if serr != nil {
				// Torn tail: drop the partial frame.
				if terr := os.Truncate(info.path, valid); terr != nil {
					return nil, fmt.Errorf("wal: truncate torn segment tail: %w", terr)
				}
			}
			f, oerr := os.OpenFile(info.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if oerr != nil {
				return nil, fmt.Errorf("wal: reopen segment: %w", oerr)
			}
			s.cur = f
			s.curSize = valid
		}
	}
	return s, nil
}

// listSegments returns the segment files in first-LSN order.
func (s *Segments) listSegments() ([]segmentInfo, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read segment dir: %w", err)
	}
	var infos []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		infos = append(infos, segmentInfo{path: filepath.Join(s.dir, e.Name()), first: first})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].first < infos[j].first })
	return infos, nil
}

// scanSegment decodes every frame in the file, returning the byte offset of
// the end of the last whole frame and the highest LSN seen. A decode failure
// (torn or corrupt frame) is reported alongside the prefix that was valid.
func scanSegment(path string) (validBytes int64, maxLSN LSN, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var off int64
	for {
		rec, n, derr := decodeCounted(r)
		if derr == io.EOF {
			return off, maxLSN, nil
		}
		if derr != nil {
			return off, maxLSN, fmt.Errorf("%w at offset %d", ErrCorrupt, off)
		}
		off += n
		if rec.LSN > maxLSN {
			maxLSN = rec.LSN
		}
	}
}

// WriteRecord appends the encoded record to the current segment, starting a
// new segment when the current one has reached the rotation size. It is part
// of the DurableSink interface and is called by the Log with monotonically
// increasing LSNs.
func (s *Segments) WriteRecord(rec Record, encoded []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: segments closed")
	}
	if s.cur == nil || s.curSize >= s.segBytes {
		if err := s.rotateLocked(rec.LSN); err != nil {
			return err
		}
	}
	n, err := s.cur.Write(encoded)
	s.curSize += int64(n)
	if err != nil {
		return fmt.Errorf("wal: segment write: %w", err)
	}
	if rec.LSN > s.maxLSN {
		s.maxLSN = rec.LSN
	}
	return nil
}

// WriteRange appends a contiguous run of already-encoded frames — the
// consolidated log buffer's published prefix, in LSN order from first to
// last — writing whole multi-frame chunks per write call instead of one
// record at a time. It is the RangeSink fast path of the DurableSink
// interface. Rotation decisions are identical to WriteRecord's: a frame goes
// to the current segment iff the segment is still under the rotation size
// when the frame starts, so a frame is never split across segment files and
// every segment starts at a frame boundary whose LSN names the file.
func (s *Segments) WriteRange(encoded []byte, first, last LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: segments closed")
	}
	lsn := first
	for len(encoded) > 0 {
		if s.cur == nil || s.curSize >= s.segBytes {
			if err := s.rotateLocked(lsn); err != nil {
				return err
			}
		}
		chunk, frames := rangePrefix(encoded, s.segBytes-s.curSize)
		n, err := s.cur.Write(chunk)
		s.curSize += int64(n)
		if err != nil {
			return fmt.Errorf("wal: segment range write: %w", err)
		}
		// The log assigns consecutive LSNs, so the next chunk's first frame
		// (which may name a fresh segment) is lsn + frames.
		lsn += LSN(frames)
		encoded = encoded[len(chunk):]
	}
	if last > s.maxLSN {
		s.maxLSN = last
	}
	return nil
}

// rangePrefix returns the longest prefix of encoded made of whole frames
// that start within the current segment's remaining budget, and the number
// of frames it holds. The first frame is always included (it may overshoot
// the budget, exactly as WriteRecord's rotate-before-write check allows).
func rangePrefix(encoded []byte, room int64) ([]byte, int) {
	off, frames := 0, 0
	for off < len(encoded) && (frames == 0 || int64(off) < room) {
		length, n := binary.Uvarint(encoded[off:])
		if n <= 0 || int(length) > len(encoded)-off-n {
			// The flusher only hands over whole frames; a short parse here
			// would be a log-buffer bug. Take the rest as one chunk rather
			// than loop forever.
			off = len(encoded)
			frames++
			break
		}
		off += n + int(length)
		frames++
	}
	return encoded[:off], frames
}

// rotateLocked closes the current segment (forcing it to disk) and creates a
// fresh one whose name records first, the LSN of its first record.
func (s *Segments) rotateLocked(first LSN) error {
	if s.cur != nil {
		if err := s.cur.Sync(); err != nil {
			return fmt.Errorf("wal: sync segment before rotate: %w", err)
		}
		if err := s.cur.Close(); err != nil {
			return fmt.Errorf("wal: close segment: %w", err)
		}
		s.cur = nil
		s.curSize = 0
	}
	path := filepath.Join(s.dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.cur = f
	s.curSize = 0
	return nil
}

// Sync forces the current segment to stable storage (DurableSink).
func (s *Segments) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: segments closed")
	}
	if s.cur == nil {
		return nil
	}
	if err := s.cur.Sync(); err != nil {
		return fmt.Errorf("wal: segment sync: %w", err)
	}
	return nil
}

// MaxLSN returns the highest LSN present in the segment files.
func (s *Segments) MaxLSN() LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxLSN
}

// SegmentCount returns the number of on-disk segment files.
func (s *Segments) SegmentCount() int {
	infos, err := s.listSegments()
	if err != nil {
		return 0
	}
	return len(infos)
}

// Iterate replays every record with LSN >= from, in LSN order, stopping at
// the first torn frame in the final segment (records past a torn frame were
// never acknowledged as durable). A decode failure in any earlier segment is
// real corruption and is returned as an error. Iteration stops early if fn
// returns an error, which Iterate propagates.
func (s *Segments) Iterate(from LSN, fn func(Record) error) error {
	infos, err := s.listSegments()
	if err != nil {
		return err
	}
	for i, info := range infos {
		// Skip segments that end before from: every record in segment i has
		// an LSN below segment i+1's first.
		if i+1 < len(infos) && infos[i+1].first <= from {
			continue
		}
		last := i == len(infos)-1
		if err := iterateSegment(info.path, last, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func iterateSegment(path string, last bool, from LSN, fn func(Record) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	for {
		rec, _, derr := decodeCounted(r)
		if derr == io.EOF {
			return nil
		}
		if derr != nil {
			if last {
				// Torn tail from a crash mid-write: the valid prefix is the log.
				return nil
			}
			return fmt.Errorf("wal: segment %s: %w", filepath.Base(path), derr)
		}
		if rec.LSN < from {
			continue
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Checkpoint marks every record with LSN <= durable as no longer needed: the
// current segment is sealed (so the next append starts a fresh one) and
// every segment wholly at or below durable is deleted. Called after a
// checkpoint whose snapshot covers LSNs up to durable has been persisted.
func (s *Segments) Checkpoint(durable LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil {
		if err := s.cur.Sync(); err != nil {
			return fmt.Errorf("wal: sync segment at checkpoint: %w", err)
		}
		if err := s.cur.Close(); err != nil {
			return fmt.Errorf("wal: close segment at checkpoint: %w", err)
		}
		s.cur = nil
		s.curSize = 0
	}
	infos, err := s.listSegments()
	if err != nil {
		return err
	}
	for i, info := range infos {
		// A segment is fully covered by the checkpoint when all its records
		// are <= durable: either the next segment starts at or below
		// durable+1, or it is the final segment and nothing above durable
		// was ever written.
		covered := false
		if i+1 < len(infos) {
			covered = infos[i+1].first <= durable+1
		} else {
			covered = s.maxLSN <= durable
		}
		if covered {
			if err := os.Remove(info.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("wal: remove truncated segment: %w", err)
			}
		}
	}
	return syncDir(s.dir)
}

// Crash closes the current segment file WITHOUT a final sync, simulating the
// machine dying for crash-recovery tests: records written but never covered
// by a Sync may or may not survive (here, whatever the OS already holds),
// and any subsequent WriteRecord or Sync fails, wedging the owning Log.
func (s *Segments) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
}

// Close syncs and closes the current segment file.
func (s *Segments) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.cur == nil {
		return nil
	}
	if err := s.cur.Sync(); err != nil {
		s.cur.Close()
		return fmt.Errorf("wal: segment sync at close: %w", err)
	}
	err := s.cur.Close()
	s.cur = nil
	return err
}

// syncDir fsyncs a directory so that file creations and removals inside it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: dir sync: %w", err)
	}
	return nil
}
