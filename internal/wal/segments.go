package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
)

// DefaultSegmentBytes is the rotation threshold for on-disk log segments.
const DefaultSegmentBytes = 4 << 20

// segPrefix/segSuffix frame segment file names: wal-<first offset, hex>.seg.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

// Segment header layout (format version 2, the byte-offset LSN format):
//
//	bytes 0..6   magic "SLDBSEG"
//	byte  7      format version (segVersion)
//	bytes 8..15  first virtual offset covered by the file, little-endian
//
// Version 1 was the headerless dense-LSN format (every frame embedded its
// LSN); its files start with a frame length prefix instead of the magic, so
// opening a pre-upgrade directory fails loudly with ErrLogFormat rather than
// silently truncating what would scan as a torn tail.
const (
	segMagic      = "SLDBSEG"
	segVersion    = byte(2)
	segHeaderSize = 16
)

// ErrLogFormat is returned when a data directory's log segments (or its
// checkpoint) were written in a different, incompatible format version —
// typically a directory created before the byte-offset LSN refactor. The
// data is not corrupt; it is simply not readable by this version, and
// failing loudly beats misreading record addresses.
var ErrLogFormat = errors.New("wal: incompatible log format version (data directory written by a different slidb version)")

func segmentName(first LSN) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, uint64(first), segSuffix)
}

func parseSegmentName(name string) (LSN, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return LSN(v), true
}

// segmentInfo describes one on-disk segment file.
type segmentInfo struct {
	path  string
	first LSN // virtual offset of the segment's first payload byte
}

// encodeHeader returns the 16-byte segment header for a file whose payload
// begins at virtual offset first.
func encodeHeader(first LSN) []byte {
	h := make([]byte, segHeaderSize)
	copy(h, segMagic)
	h[len(segMagic)] = segVersion
	binary.LittleEndian.PutUint64(h[8:], uint64(first))
	return h
}

// readHeader validates a segment file's header against its name. A short
// header is reported as errShortHeader so the caller can distinguish a torn
// creation (repairable on the last segment) from a wrong-format file.
var errShortHeader = errors.New("wal: short segment header")

func readHeader(f io.Reader, name string, want LSN) error {
	h := make([]byte, segHeaderSize)
	n, err := io.ReadFull(f, h)
	if err != nil {
		// Even a partial header must look like the start of our magic;
		// anything else is another format (e.g. a v1 frame stream).
		if n > 0 && !strings.HasPrefix(segMagic, string(h[:min(n, len(segMagic))])) {
			return fmt.Errorf("%w: segment %s has no segment header", ErrLogFormat, name)
		}
		return errShortHeader
	}
	if string(h[:len(segMagic)]) != segMagic {
		return fmt.Errorf("%w: segment %s has no segment header", ErrLogFormat, name)
	}
	if v := h[len(segMagic)]; v != segVersion {
		return fmt.Errorf("%w: segment %s is format version %d, this build reads version %d", ErrLogFormat, name, v, segVersion)
	}
	if got := LSN(binary.LittleEndian.Uint64(h[8:])); got != want {
		return fmt.Errorf("wal: segment %s header offset %d does not match its name (%d): %w", name, got, want, ErrCorrupt)
	}
	return nil
}

// Segments is a directory of append-only write-ahead log segment files. It
// implements DurableSink (and RangeSink): bytes of the virtual log are
// appended to the current segment, a new segment is started once the current
// one exceeds the configured size, and Sync (called once per group-commit
// batch by the Log) forces the current segment to stable storage.
//
// Because LSNs are byte offsets, a segment file IS a slice of the virtual
// log: the file named wal-<first> holds bytes [first, first+payload) and the
// record at LSN L lives in that file at position segHeaderSize + (L - first)
// — segments map an LSN to its location by arithmetic, never by scanning.
// Rotation happens only at frame boundaries, so no frame spans two files.
//
// All writes are positional (pwrite at the tracked size), never O_APPEND:
// with PreallocateSegments the current file is extended to the full rotation
// size at creation — the file system allocates once instead of growing the
// file on every group commit — and appends then land inside the preallocated
// region, so the kernel's notion of "end of file" stops being the log's.
type Segments struct {
	dir      string
	segBytes int64
	prealloc bool

	writes            atomic.Uint64 // physical write submissions (one pwritev counts once)
	rotations         atomic.Uint64
	preallocs         atomic.Uint64 // segments preallocated via fallocate
	preallocFallbacks atomic.Uint64 // segments preallocated via truncate (fallocate unsupported)

	mu      sync.Mutex
	cur     *os.File
	curSize int64 // current segment payload size, header included (not the file size)
	end     LSN   // virtual offset just past the last byte in any segment
	closed  bool
}

// SegmentStats is a snapshot of Segments' physical-write counters. Writes
// counts write submissions (syscalls), not bytes: a whole vectored
// group-commit cycle counts once, which is what the writes-per-cycle
// efficiency stat measures.
type SegmentStats struct {
	Writes            uint64
	Rotations         uint64
	Preallocs         uint64
	PreallocFallbacks uint64
}

// Stats returns a snapshot of the physical-write counters.
func (s *Segments) Stats() SegmentStats {
	return SegmentStats{
		Writes:            s.writes.Load(),
		Rotations:         s.rotations.Load(),
		Preallocs:         s.preallocs.Load(),
		PreallocFallbacks: s.preallocFallbacks.Load(),
	}
}

// OpenSegments opens (creating if necessary) the segment directory. Existing
// segments are validated (a pre-upgrade or otherwise incompatible format
// fails with ErrLogFormat) and scanned to find the end of the durable
// prefix; a torn frame at the tail of the last segment — the signature of a
// crash mid-write — is truncated away so subsequent appends extend a valid
// log. segBytes <= 0 uses DefaultSegmentBytes. preallocate extends each new
// segment file to segBytes at creation (falling back to truncate, and then
// to plain growing writes, where the file system does not support
// fallocate); a preallocated file's zero tail scans identically to a torn
// tail, so directories move freely between preallocating and
// non-preallocating configurations.
func OpenSegments(dir string, segBytes int64, preallocate bool) (*Segments, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create segment dir: %w", err)
	}
	s := &Segments{dir: dir, segBytes: segBytes, prealloc: preallocate}
	infos, err := s.listSegments()
	if err != nil {
		return nil, err
	}
	for i, info := range infos {
		last := i == len(infos)-1
		valid, serr := scanSegment(info.path, info.first)
		if serr != nil {
			if !last || errors.Is(serr, ErrLogFormat) {
				return nil, fmt.Errorf("wal: segment %s: %w", filepath.Base(info.path), serr)
			}
			// Torn tail (possibly a torn header from a crash at rotation):
			// drop the partial bytes; the header is rewritten below if it
			// never fully landed.
			if terr := os.Truncate(info.path, valid); terr != nil {
				return nil, fmt.Errorf("wal: truncate torn segment tail: %w", terr)
			}
		}
		if end := info.first.Advance(valid - segHeaderSize); valid >= segHeaderSize && end > s.end {
			s.end = end
		}
		if last {
			f, oerr := os.OpenFile(info.path, os.O_WRONLY, 0o644)
			if oerr != nil {
				return nil, fmt.Errorf("wal: reopen segment: %w", oerr)
			}
			if valid < segHeaderSize {
				// The crash hit between creating the file and its header
				// reaching disk; rewrite the header so the file is valid.
				if terr := os.Truncate(info.path, 0); terr != nil {
					f.Close()
					return nil, fmt.Errorf("wal: reset torn segment header: %w", terr)
				}
				if _, werr := f.WriteAt(encodeHeader(info.first), 0); werr != nil {
					f.Close()
					return nil, fmt.Errorf("wal: rewrite segment header: %w", werr)
				}
				valid = segHeaderSize
				if s.end < info.first {
					s.end = info.first
				}
			}
			s.cur = f
			s.curSize = valid
			if s.prealloc && valid < segBytes {
				// Re-extend the resumed segment to its full size. Truncate,
				// not fallocate, so any torn garbage past the valid prefix is
				// replaced by zeros — the same state a crash mid-preallocated
				// segment leaves behind.
				if terr := f.Truncate(valid); terr == nil {
					s.preallocLocked(f)
				}
			}
		}
	}
	return s, nil
}

// preallocLocked extends f to the full rotation size, preferring fallocate
// (real block allocation) and degrading to truncate (a sparse zero tail)
// where the file system does not support it. Preallocation is strictly an
// optimization: if both fail the segment simply grows write by write, and
// prealloc is switched off so later rotations stop retrying a file system
// that already said no.
func (s *Segments) preallocLocked(f *os.File) {
	if !s.prealloc {
		return
	}
	err := sysPrealloc(f, s.segBytes)
	if err == nil {
		s.preallocs.Add(1)
		return
	}
	if preallocUnsupported(err) {
		if terr := f.Truncate(s.segBytes); terr == nil {
			s.preallocFallbacks.Add(1)
			return
		}
	}
	s.prealloc = false
}

// sysPrealloc is the platform fallocate hook (see prealloc_linux.go); a
// package variable so tests can simulate an unsupporting file system.
var sysPrealloc = sysPreallocImpl

// preallocUnsupported reports whether err means the file system cannot
// preallocate (as opposed to a real I/O failure) and the truncate fallback
// should be tried.
func preallocUnsupported(err error) bool {
	return errors.Is(err, errors.ErrUnsupported) ||
		errors.Is(err, syscall.ENOTSUP) || errors.Is(err, syscall.EOPNOTSUPP) ||
		errors.Is(err, syscall.ENOSYS) || errors.Is(err, syscall.EINVAL)
}

// listSegments returns the segment files in first-offset order.
func (s *Segments) listSegments() ([]segmentInfo, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read segment dir: %w", err)
	}
	var infos []segmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		first, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		infos = append(infos, segmentInfo{path: filepath.Join(s.dir, e.Name()), first: first})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].first < infos[j].first })
	return infos, nil
}

// scanSegment validates the header and decodes every frame in the file,
// returning the file offset of the end of the last whole frame. A trailing
// zero run — zeros with no frame after them — is the zero-frame cutoff and
// never counts as valid payload: with preallocated segments a zero tail is
// the normal state of the live segment, and it must scan exactly like the
// torn tail it is indistinguishable from. (In-stream padding is still
// counted: wraparound padding is always written together with the frame
// that claimed it, so a healthy log never ends in padding.) A decode failure
// (torn or corrupt frame) is reported alongside the prefix that was valid; a
// wrong-format header is ErrLogFormat.
func scanSegment(path string, first LSN) (validBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if herr := readHeader(f, filepath.Base(path), first); herr != nil {
		if errors.Is(herr, errShortHeader) {
			return 0, fmt.Errorf("%w: short header", ErrCorrupt)
		}
		return 0, herr
	}
	r := bufio.NewReader(f)
	off := int64(segHeaderSize)
	for {
		_, pad, frame, derr := decodeCounted(r)
		if derr == io.EOF {
			return off, nil
		}
		if derr != nil {
			return off, fmt.Errorf("%w at offset %d", ErrCorrupt, off+pad)
		}
		off += pad + frame
	}
}

// prepareLocked rotates to a fresh segment if needed and pad-fills any gap
// between the stored end and at, the virtual offset about to be written.
// Gaps arise on the per-record compatibility path, whose stream elides the
// log buffer's wraparound padding; re-materializing the zeros keeps every
// on-disk byte at exactly its virtual offset.
func (s *Segments) prepareLocked(at LSN) error {
	if s.cur != nil && at > s.end {
		pad := make([]byte, at.Distance(s.end))
		n, err := s.writeCurLocked(pad)
		s.curSize += int64(n)
		s.end = s.end.Advance(int64(n))
		if err != nil {
			return fmt.Errorf("wal: segment pad write: %w", err)
		}
	}
	if s.cur == nil || s.curSize >= s.segBytes {
		if err := s.rotateLocked(at); err != nil {
			return err
		}
	}
	if s.end < at {
		// First write into a fresh directory (or after rotation): the
		// segment starts exactly at the written offset.
		s.end = at
	}
	return nil
}

// WriteRecord appends the encoded record at its byte-offset LSN, starting a
// new segment when the current one has reached the rotation size. It is part
// of the DurableSink interface and is called with monotonically increasing
// LSNs; a gap below rec.LSN is zero-filled (see prepareLocked).
func (s *Segments) WriteRecord(rec Record, encoded []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: segments closed")
	}
	if rec.LSN < s.end {
		return fmt.Errorf("wal: record at offset %d overlaps segment end %d: %w", rec.LSN, s.end, ErrCorrupt)
	}
	if err := s.prepareLocked(rec.LSN); err != nil {
		return err
	}
	n, err := s.writeCurLocked(encoded)
	s.curSize += int64(n)
	s.end = s.end.Advance(int64(n))
	if err != nil {
		return fmt.Errorf("wal: segment write: %w", err)
	}
	return nil
}

// writeCurLocked lands data at the current segment's tracked size with one
// positional write. It is the only plain (non-vectored) payload write path,
// so every physical write submission is counted here or in WriteRanges.
func (s *Segments) writeCurLocked(data []byte) (int, error) {
	s.writes.Add(1)
	return s.cur.WriteAt(data, s.curSize)
}

// WriteRange appends a contiguous run of already-encoded bytes of the
// virtual log — whole frames plus any wraparound padding, starting at
// virtual offset first — writing whole multi-frame chunks per write call
// instead of one record at a time. It is the RangeSink fast path of the
// DurableSink interface. Rotation decisions are identical to WriteRecord's:
// a frame goes to the current segment iff the segment is still under the
// rotation size when the frame starts, so a frame is never split across
// segment files.
func (s *Segments) WriteRange(encoded []byte, first LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: segments closed")
	}
	if first < s.end {
		return fmt.Errorf("wal: range at offset %d overlaps segment end %d: %w", first, s.end, ErrCorrupt)
	}
	at := first
	for len(encoded) > 0 {
		if err := s.prepareLocked(at); err != nil {
			return err
		}
		chunk := rangePrefix(encoded, s.segBytes-s.curSize)
		n, err := s.writeCurLocked(chunk)
		s.curSize += int64(n)
		s.end = s.end.Advance(int64(n))
		if err != nil {
			return fmt.Errorf("wal: segment range write: %w", err)
		}
		at = at.Advance(int64(len(chunk)))
		encoded = encoded[len(chunk):]
	}
	return nil
}

// WriteRanges lands one whole group-commit cycle — every contiguous
// published range the flusher consumed, in virtual-offset order — with a
// single vectored submission per segment file (pwritev on Linux, a coalesced
// single pwrite elsewhere): the vectorSink fast path above WriteRange.
// Boundary decisions are identical to repeated WriteRange calls — the batch
// is split exactly where rotation would split it, once, not per call — so
// the on-disk bytes are byte-for-byte the same as the per-range path's.
func (s *Segments) WriteRanges(ranges []flushRange) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: segments closed")
	}
	// batch accumulates iovecs destined for the current segment at
	// s.curSize; submit is the one syscall that lands them.
	var batch [][]byte
	var batchBytes int64
	submit := func() error {
		if len(batch) == 0 {
			return nil
		}
		s.writes.Add(1)
		if err := writevAt(s.cur, batch, s.curSize); err != nil {
			return fmt.Errorf("wal: segment vectored write: %w", err)
		}
		s.curSize += batchBytes
		s.end = s.end.Advance(batchBytes)
		batch, batchBytes = batch[:0], 0
		return nil
	}
	for _, r := range ranges {
		at := r.first
		pendingEnd := s.end.Advance(batchBytes)
		if at < pendingEnd {
			return fmt.Errorf("wal: range at offset %d overlaps segment end %d: %w", at, pendingEnd, ErrCorrupt)
		}
		if at > pendingEnd && s.cur != nil {
			// Gap below the range (per-record streams elide wraparound
			// padding; range streams shouldn't get here): zero-fill it as one
			// more iovec instead of a separate write.
			gap := at.Distance(pendingEnd)
			batch = append(batch, make([]byte, gap))
			batchBytes += gap
		}
		data := r.data
		for len(data) > 0 {
			if s.cur == nil || s.curSize+batchBytes >= s.segBytes {
				if err := submit(); err != nil {
					return err
				}
				if s.cur == nil || s.curSize >= s.segBytes {
					if err := s.rotateLocked(at); err != nil {
						return err
					}
					s.end = at
				}
			}
			chunk := rangePrefix(data, s.segBytes-(s.curSize+batchBytes))
			batch = append(batch, chunk)
			batchBytes += int64(len(chunk))
			at = at.Advance(int64(len(chunk)))
			data = data[len(chunk):]
		}
	}
	return submit()
}

// rangePrefix returns the longest prefix of encoded made of whole frames
// (and padding bytes) that start within the current segment's remaining
// budget. The first frame is always included — it may overshoot the budget,
// exactly as WriteRecord's rotate-before-write check allows.
func rangePrefix(encoded []byte, room int64) []byte {
	off, frames := 0, 0
	for off < len(encoded) && (frames == 0 || int64(off) < room) {
		if encoded[off] == 0 { // padding byte: a one-byte unit
			off++
			continue
		}
		length, n := binary.Uvarint(encoded[off:])
		if n <= 0 || int(length) > len(encoded)-off-n {
			// The flusher only hands over whole frames; a short parse here
			// would be a log-buffer bug. Take the rest as one chunk rather
			// than loop forever.
			off = len(encoded)
			frames++
			break
		}
		off += n + int(length)
		frames++
	}
	return encoded[:off]
}

// sealCurrentLocked syncs and closes the current segment, first trimming any
// preallocated zero tail back to the payload size so sealed segments are
// byte-identical to ones written without preallocation. Only the live
// segment ever carries a zero tail; recovery relies on that when it treats a
// trailing zero run as end-of-log.
func (s *Segments) sealCurrentLocked(action string) error {
	if s.cur == nil {
		return nil
	}
	if s.prealloc && s.curSize < s.segBytes {
		if err := s.cur.Truncate(s.curSize); err != nil {
			return fmt.Errorf("wal: trim preallocated tail at %s: %w", action, err)
		}
	}
	if err := s.cur.Sync(); err != nil {
		return fmt.Errorf("wal: sync segment at %s: %w", action, err)
	}
	if err := s.cur.Close(); err != nil {
		return fmt.Errorf("wal: close segment at %s: %w", action, err)
	}
	s.cur = nil
	s.curSize = 0
	return nil
}

// rotateLocked closes the current segment (forcing it to disk) and creates a
// fresh one whose name and header record first, the virtual offset of its
// first payload byte. Under PreallocateSegments the new file is extended to
// the full rotation size immediately, so group commits never grow the file.
func (s *Segments) rotateLocked(first LSN) error {
	if err := s.sealCurrentLocked("rotate"); err != nil {
		return err
	}
	path := filepath.Join(s.dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	if _, err := f.WriteAt(encodeHeader(first), 0); err != nil {
		f.Close()
		return fmt.Errorf("wal: write segment header: %w", err)
	}
	s.preallocLocked(f)
	if err := syncDir(s.dir); err != nil {
		f.Close()
		return err
	}
	s.cur = f
	s.curSize = segHeaderSize
	s.rotations.Add(1)
	return nil
}

// Sync forces the current segment to stable storage (DurableSink).
func (s *Segments) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("wal: segments closed")
	}
	if s.cur == nil {
		return nil
	}
	if err := s.cur.Sync(); err != nil {
		return fmt.Errorf("wal: segment sync: %w", err)
	}
	return nil
}

// End returns the virtual offset just past the last byte present in the
// segment files — the offset a reopened log should resume appending at.
func (s *Segments) End() LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.end
}

// SegmentCount returns the number of on-disk segment files.
func (s *Segments) SegmentCount() int {
	infos, err := s.listSegments()
	if err != nil {
		return 0
	}
	return len(infos)
}

// Iterate replays every record with LSN >= from, in LSN order, stopping at
// the first torn frame in the final segment (records past a torn frame were
// never acknowledged as durable) and at the zero-frame cutoff — a trailing
// zero run with no frame after it, which is a preallocated segment's unused
// tail (or a torn pad write) and never payload. Because LSNs are byte
// offsets, the start
// position is computed, not scanned: iteration seeks directly to from inside
// the segment that covers it. from must be a frame (or padding) boundary; 0
// means the beginning of the retained log. A decode failure in any earlier
// segment is real corruption and is returned as an error. Iteration stops
// early if fn returns an error, which Iterate propagates.
func (s *Segments) Iterate(from LSN, fn func(Record) error) error {
	infos, err := s.listSegments()
	if err != nil {
		return err
	}
	for i, info := range infos {
		// Segment i covers [first, next.first): skip it entirely when from
		// is at or past the next segment's start.
		if i+1 < len(infos) && infos[i+1].first <= from {
			continue
		}
		last := i == len(infos)-1
		if err := iterateSegment(info, last, from, fn); err != nil {
			return err
		}
	}
	return nil
}

func iterateSegment(info segmentInfo, last bool, from LSN, fn func(Record) error) error {
	f, err := os.Open(info.path)
	if err != nil {
		return err
	}
	defer f.Close()
	if herr := readHeader(f, filepath.Base(info.path), info.first); herr != nil {
		if errors.Is(herr, errShortHeader) {
			if last {
				return nil // torn creation; nothing durable here
			}
			return fmt.Errorf("wal: segment %s: %w: short header", filepath.Base(info.path), ErrCorrupt)
		}
		return herr
	}
	at := info.first
	if from > at {
		// Direct seek: the byte at virtual offset from lives at file offset
		// segHeaderSize + (from - first).
		if _, err := f.Seek(from.Distance(info.first), io.SeekCurrent); err != nil {
			return fmt.Errorf("wal: seek segment %s: %w", filepath.Base(info.path), err)
		}
		at = from
	}
	r := bufio.NewReader(f)
	for {
		rec, pad, frame, derr := decodeCounted(r)
		if derr == io.EOF {
			return nil
		}
		if derr != nil {
			if last {
				// Torn tail from a crash mid-write: the valid prefix is the log.
				return nil
			}
			return fmt.Errorf("wal: segment %s: %w", filepath.Base(info.path), derr)
		}
		rec.LSN = at.Advance(int64(pad))
		at = at.Advance(int64(pad + frame))
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Checkpoint marks every byte below the durable watermark as no longer
// needed: the current segment is sealed (so the next append starts a fresh
// one) and every segment wholly below durable is deleted. durable is an
// exclusive end offset (Log.DurableLSN), which makes coverage arithmetic:
// segment i is covered exactly when its end — the next segment's first
// offset — is at or below the watermark.
func (s *Segments) Checkpoint(durable LSN) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.sealCurrentLocked("checkpoint"); err != nil {
		return err
	}
	infos, err := s.listSegments()
	if err != nil {
		return err
	}
	for i, info := range infos {
		covered := false
		if i+1 < len(infos) {
			covered = infos[i+1].first <= durable
		} else {
			covered = s.end <= durable
		}
		if covered {
			if err := os.Remove(info.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
				return fmt.Errorf("wal: remove truncated segment: %w", err)
			}
		}
	}
	return syncDir(s.dir)
}

// Crash closes the current segment file WITHOUT a final sync, simulating the
// machine dying for crash-recovery tests: records written but never covered
// by a Sync may or may not survive (here, whatever the OS already holds),
// and any subsequent WriteRecord or Sync fails, wedging the owning Log.
func (s *Segments) Crash() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.cur != nil {
		s.cur.Close()
		s.cur = nil
	}
}

// Close syncs and closes the current segment file (trimming any
// preallocated zero tail first).
func (s *Segments) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.sealCurrentLocked("close"); err != nil {
		if s.cur != nil {
			s.cur.Close()
			s.cur = nil
		}
		return err
	}
	return nil
}

// syncDir fsyncs a directory so that file creations and removals inside it
// are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: dir sync: %w", err)
	}
	return nil
}
