package wal

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// FuzzRecordRoundTrip builds a record from fuzzed fields, encodes it, and
// requires decoding to return the identical record with nothing left over.
// The LSN field is deliberately NOT round-tripped: frames carry no LSN (the
// address is the frame's position), so whatever LSN the record was built
// with, the decoded record's LSN is zero.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(42), byte(RecUpdate), uint32(3), uint64(9), uint32(4), uint64(0), []byte("before"), []byte("after"))
	f.Add(uint64(0), uint64(0), byte(RecBegin), uint32(0), uint64(0), uint32(0), uint64(0), []byte(nil), []byte(nil))
	f.Add(uint64(1<<63), uint64(1<<62), byte(RecCreateTable), uint32(1<<31), uint64(1)<<60, uint32(7), uint64(0), []byte{0, 0xff}, bytes.Repeat([]byte{0xaa}, 300))
	f.Add(uint64(17), uint64(9), byte(RecCLR), uint32(2), uint64(5), uint32(1), uint64(12), []byte("new"), []byte("old"))
	f.Fuzz(func(t *testing.T, lsn, xid uint64, typ byte, table uint32, page uint64, slot uint32, undoNext uint64, before, after []byte) {
		in := Record{
			LSN: LSN(lsn), XID: xid, Type: RecType(typ),
			Table: table, Page: page, Slot: slot,
			UndoNext: LSN(undoNext),
			Before:   before, After: after,
		}
		// The LSN is positional, not data; Decode also normalizes empty
		// images to nil. Mirror both for comparison.
		want := in
		want.LSN = 0
		if len(want.Before) == 0 {
			want.Before = nil
		}
		if len(want.After) == 0 {
			want.After = nil
		}
		enc := in.Encode()
		if got := in.EncodedSize(); got != len(enc) {
			t.Fatalf("EncodedSize %d != len(Encode) %d", got, len(enc))
		}
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)) failed: %v", in, err)
		}
		if n != len(enc) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", want, got)
		}
		// The streaming decoder must agree with the slice decoder.
		got2, err := DecodeFrom(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("DecodeFrom failed: %v", err)
		}
		if !reflect.DeepEqual(got2, want) {
			t.Fatalf("DecodeFrom mismatch: %+v vs %+v", got2, want)
		}
	})
}

// routeShard mirrors the engine's record routing: FNV-1a over the record's
// table and page, reduced modulo the shard count. Deterministic, so the
// differential arms can recompute a record's home shard after the fact.
func routeShard(table uint32, page uint64, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(table))
	mix(page)
	return int(h % uint64(n))
}

// FuzzConcurrentReserveFillPublish drives the consolidated log buffer with
// fuzzed concurrency parameters — appender count, records per appender,
// payload sizes, buffer size, shard count, latched vs fetch-and-add
// reservation — and requires every record to round-trip byte-identically
// from the range-written stream at exactly the byte-offset LSN its Append
// returned, on exactly the shard its routing key names. This is the torture
// harness for the reserve/fill/publish protocol: wraparound padding,
// buffer-full waits, publish-fence ordering and flusher consumption all
// happen here depending on the fuzzed shape. The strict dimension crosses it
// with both publish-fence implementations — the in-order spin fence and the
// relaxed completion-tracking fence must both deliver every record, and
// neither may ever expose unfilled bytes to the flusher (which would surface
// here as a decode failure or mismatch). The shards dimension crosses it
// with a sharded virtual log: appenders route each record by hash across
// independent logs, and every shard's stream must hold exactly its routed
// records — shards share appender goroutines but nothing else.
func FuzzConcurrentReserveFillPublish(f *testing.F) {
	f.Add(uint8(4), uint8(50), uint16(64), uint16(7), uint16(4096), false, false, uint8(0))
	f.Add(uint8(1), uint8(1), uint16(0), uint16(0), uint16(0), false, false, uint8(0))
	f.Add(uint8(8), uint8(30), uint16(900), uint16(333), uint16(5000), false, false, uint8(0))
	f.Add(uint8(8), uint8(30), uint16(900), uint16(333), uint16(5000), true, false, uint8(1))
	f.Add(uint8(8), uint8(30), uint16(900), uint16(333), uint16(5000), false, true, uint8(3))
	f.Add(uint8(6), uint8(40), uint16(200), uint16(90), uint16(4096), false, true, uint8(2))
	f.Add(uint8(5), uint8(20), uint16(128), uint16(48), uint16(4096), false, false, uint8(3))
	f.Fuzz(func(t *testing.T, appenders, perAppender uint8, sizeA, sizeB, bufBytes uint16, latched, strict bool, shards uint8) {
		nApp := int(appenders)%8 + 1
		nRec := int(perAppender)%64 + 1
		nShards := int(shards)%4 + 1
		sinks := make([]*captureSink, nShards)
		logs := make([]*Log, nShards)
		for s := range logs {
			sinks[s] = &captureSink{}
			logs[s] = New(Config{
				Durable:        sinks[s],
				DropAfterFlush: true,
				BufferBytes:    int64(bufBytes), // clamped to the minimum internally
				LatchedLog:     latched,
				StrictFence:    strict,
			})
		}
		var mu sync.Mutex
		want := make([]map[LSN]Record, nShards)
		for s := range want {
			want[s] = make(map[LSN]Record)
		}
		var wg sync.WaitGroup
		for g := 0; g < nApp; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < nRec; i++ {
					// Alternate the fuzzed payload sizes so reservation sizes
					// vary within one run.
					size := int(sizeA) % 1024
					if i%2 == 1 {
						size = int(sizeB) % 1024
					}
					rec := Record{
						XID:   uint64(g)<<32 | uint64(i),
						Type:  RecUpdate,
						Table: uint32(g),
						Page:  uint64(i),
						After: bytes.Repeat([]byte{byte(g*37 + i)}, size),
					}
					s := routeShard(rec.Table, rec.Page, nShards)
					lsn, err := logs[s].Append(rec)
					if err != nil {
						t.Errorf("append: %v", err)
						return
					}
					rec.LSN = lsn
					if len(rec.After) == 0 {
						rec.After = nil // decodeBody normalizes empty to nil
					}
					mu.Lock()
					want[s][lsn] = rec
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		total := 0
		for s, l := range logs {
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			got := decodeAll(t, sinks[s].bytes(), 1)
			if len(got) != len(want[s]) {
				t.Fatalf("shard %d: decoded %d records, want %d", s, len(got), len(want[s]))
			}
			total += len(got)
			for _, rec := range got {
				w, ok := want[s][rec.LSN]
				if !ok {
					t.Fatalf("shard %d: no record appended at offset %d", s, rec.LSN)
				}
				if !reflect.DeepEqual(rec, w) {
					t.Fatalf("shard %d LSN %d mismatch:\nwant %+v\ngot  %+v", s, rec.LSN, w, rec)
				}
				if home := routeShard(rec.Table, rec.Page, nShards); home != s {
					t.Fatalf("record (table %d, page %d) on shard %d, routes to %d", rec.Table, rec.Page, s, home)
				}
			}
		}
		if total != nApp*nRec {
			t.Fatalf("decoded %d records across %d shards, want %d", total, nShards, nApp*nRec)
		}
	})
}

// FuzzReservationProtocolEquivalence is the byte-offset refactor's
// differential fuzz target: a deterministic (single-goroutine) sequence of
// fuzzed record sizes is appended under all three reservation protocols —
// legacy mutex log, PR-3 latched buffer, and the fetch-and-add — and the
// two buffered protocols must emit bit-identical streams (same frames, same
// wraparound padding, same offsets), while the mutex log (which has no ring
// and therefore no padding) must agree on every record and every LSN.
// The shards dimension adds the sharded-log differential arm: the same
// record stream routed by hash across n independent logs must leave each
// shard's stream bit-identical to a fresh single log fed only that shard's
// subsequence — one shard's traffic can never perturb another's bytes.
func FuzzReservationProtocolEquivalence(f *testing.F) {
	f.Add([]byte{1, 2, 3}, uint16(4096), uint8(0))
	f.Add([]byte{255, 0, 17, 99, 200, 5}, uint16(5000), uint8(1))
	f.Add(bytes.Repeat([]byte{251}, 40), uint16(0), uint8(3))
	f.Add([]byte{9, 40, 80, 120, 7, 7, 7, 33}, uint16(4096), uint8(2))
	f.Fuzz(func(t *testing.T, sizes []byte, bufBytes uint16, shards uint8) {
		if len(sizes) > 512 {
			sizes = sizes[:512]
		}
		faaSink, latSink, mtxSink, strSink := &captureSink{}, &captureSink{}, &captureSink{}, &captureSink{}
		faa := New(Config{Durable: faaSink, DropAfterFlush: true, BufferBytes: int64(bufBytes)})
		lat := New(Config{Durable: latSink, DropAfterFlush: true, BufferBytes: int64(bufBytes), LatchedLog: true})
		mtx := New(Config{Durable: mtxSink, DropAfterFlush: true, MutexLog: true})
		str := New(Config{Durable: strSink, DropAfterFlush: true, BufferBytes: int64(bufBytes), StrictFence: true})
		var faaLSNs, latLSNs, mtxLSNs, strLSNs []LSN
		for i, sz := range sizes {
			rec := Record{XID: uint64(i), Type: RecInsert, Table: 1, Page: uint64(sz),
				After: bytes.Repeat([]byte{sz}, int(sz)*3)}
			for _, arm := range []struct {
				l    *Log
				lsns *[]LSN
			}{{faa, &faaLSNs}, {lat, &latLSNs}, {mtx, &mtxLSNs}, {str, &strLSNs}} {
				lsn, err := arm.l.Append(rec)
				if err != nil {
					t.Fatal(err)
				}
				*arm.lsns = append(*arm.lsns, lsn)
			}
		}
		for _, l := range []*Log{faa, lat, mtx, str} {
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if !bytes.Equal(faaSink.bytes(), latSink.bytes()) {
			t.Fatal("latched and fetch-and-add streams differ")
		}
		if !reflect.DeepEqual(faaLSNs, latLSNs) {
			t.Fatal("latched and fetch-and-add LSNs differ")
		}
		// The publish fence orders publication, not reservation: with one
		// appender the strict and relaxed fences must be indistinguishable,
		// down to the bytes on disk.
		if !bytes.Equal(faaSink.bytes(), strSink.bytes()) {
			t.Fatal("strict-fence and relaxed-fence streams differ")
		}
		if !reflect.DeepEqual(faaLSNs, strLSNs) {
			t.Fatal("strict-fence and relaxed-fence LSNs differ")
		}
		// The mutex log elides ring padding, so compare decoded records and
		// confirm its offsets agree wherever no padding intervened (they
		// always agree on the first record; beyond that, padding may shift
		// buffered offsets upward, never downward).
		faaRecs := decodeAll(t, faaSink.bytes(), 1)
		mtxRecs := decodeAll(t, mtxSink.bytes(), 1)
		if len(faaRecs) != len(mtxRecs) {
			t.Fatalf("record counts differ: %d vs %d", len(faaRecs), len(mtxRecs))
		}
		for i := range faaRecs {
			if faaRecs[i].LSN < mtxRecs[i].LSN {
				t.Fatalf("record %d: buffered offset %d below padless offset %d", i, faaRecs[i].LSN, mtxRecs[i].LSN)
			}
			a, b := faaRecs[i], mtxRecs[i]
			a.LSN, b.LSN = 0, 0
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("record %d differs between buffered and mutex streams", i)
			}
		}

		// Sharded arm: route the same stream across nShards logs, then replay
		// each shard's subsequence into a fresh single log. Byte identity per
		// shard proves a shard's stream is a pure function of its own records.
		nShards := int(shards)%4 + 1
		shardSinks := make([]*captureSink, nShards)
		shardLogs := make([]*Log, nShards)
		for s := range shardLogs {
			shardSinks[s] = &captureSink{}
			shardLogs[s] = New(Config{Durable: shardSinks[s], DropAfterFlush: true, BufferBytes: int64(bufBytes)})
		}
		routed := make([][]Record, nShards)
		shardLSNs := make([][]LSN, nShards)
		for i, sz := range sizes {
			rec := Record{XID: uint64(i), Type: RecInsert, Table: 1, Page: uint64(sz),
				After: bytes.Repeat([]byte{sz}, int(sz)*3)}
			s := routeShard(rec.Table, uint64(i), nShards)
			lsn, err := shardLogs[s].Append(rec)
			if err != nil {
				t.Fatal(err)
			}
			routed[s] = append(routed[s], rec)
			shardLSNs[s] = append(shardLSNs[s], lsn)
		}
		for s, l := range shardLogs {
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			baseSink := &captureSink{}
			base := New(Config{Durable: baseSink, DropAfterFlush: true, BufferBytes: int64(bufBytes)})
			for i, rec := range routed[s] {
				lsn, err := base.Append(rec)
				if err != nil {
					t.Fatal(err)
				}
				if lsn != shardLSNs[s][i] {
					t.Fatalf("shard %d record %d: sharded LSN %d, baseline LSN %d", s, i, shardLSNs[s][i], lsn)
				}
			}
			if err := base.Close(); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(shardSinks[s].bytes(), baseSink.bytes()) {
				t.Fatalf("shard %d stream differs from its single-log baseline", s)
			}
		}
		// A one-shard sharded log is the plain log: its stream must match the
		// main fetch-and-add arm exactly.
		if nShards == 1 && !bytes.Equal(shardSinks[0].bytes(), faaSink.bytes()) {
			t.Fatal("single-shard routed stream differs from the unsharded stream")
		}
	})
}

// FuzzRecordDecode feeds arbitrary bytes to the decoder: it must never
// panic, and anything it accepts must re-encode to a decodable record.
func FuzzRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Record{XID: 1, Type: RecCommit}.Encode())
	f.Add(Record{XID: 3, Type: RecCLR, Table: 1, UndoNext: 6, After: []byte("img")}.Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(append(bytes.Repeat([]byte{0}, 9), Record{XID: 1, Type: RecBegin}.Encode()...))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode reported %d consumed bytes of %d", n, len(data))
		}
		re := rec.Encode()
		rec2, _, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed to decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("re-encode changed record: %+v vs %+v", rec, rec2)
		}
	})
}
