package wal

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

// FuzzRecordRoundTrip builds a record from fuzzed fields, encodes it, and
// requires decoding to return the identical record with nothing left over.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(42), byte(RecUpdate), uint32(3), uint64(9), uint32(4), uint64(0), []byte("before"), []byte("after"))
	f.Add(uint64(0), uint64(0), byte(RecBegin), uint32(0), uint64(0), uint32(0), uint64(0), []byte(nil), []byte(nil))
	f.Add(uint64(1<<63), uint64(1<<62), byte(RecCreateTable), uint32(1<<31), uint64(1)<<60, uint32(7), uint64(0), []byte{0, 0xff}, bytes.Repeat([]byte{0xaa}, 300))
	f.Add(uint64(17), uint64(9), byte(RecCLR), uint32(2), uint64(5), uint32(1), uint64(12), []byte("new"), []byte("old"))
	f.Fuzz(func(t *testing.T, lsn, xid uint64, typ byte, table uint32, page uint64, slot uint32, undoNext uint64, before, after []byte) {
		in := Record{
			LSN: LSN(lsn), XID: xid, Type: RecType(typ),
			Table: table, Page: page, Slot: slot,
			UndoNext: LSN(undoNext),
			Before:   before, After: after,
		}
		// Decode normalizes empty images to nil; mirror that for comparison.
		want := in
		if len(want.Before) == 0 {
			want.Before = nil
		}
		if len(want.After) == 0 {
			want.After = nil
		}
		enc := in.Encode()
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)) failed: %v", in, err)
		}
		if n != len(enc) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", want, got)
		}
		// The streaming decoder must agree with the slice decoder.
		got2, err := DecodeFrom(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("DecodeFrom failed: %v", err)
		}
		if !reflect.DeepEqual(got2, want) {
			t.Fatalf("DecodeFrom mismatch: %+v vs %+v", got2, want)
		}
	})
}

// FuzzConcurrentReserveFillPublish drives the consolidated log buffer with
// fuzzed concurrency parameters — appender count, records per appender,
// payload sizes, buffer size — and requires every record to round-trip
// byte-identically through decodeBody from the range-written stream, in
// contiguous LSN order. This is the torture harness for the reserve/fill/
// publish protocol: wraparound padding, buffer-full waits, publish gaps and
// flusher consumption all happen here depending on the fuzzed shape.
func FuzzConcurrentReserveFillPublish(f *testing.F) {
	f.Add(uint8(4), uint8(50), uint16(64), uint16(7), uint16(4096))
	f.Add(uint8(1), uint8(1), uint16(0), uint16(0), uint16(0))
	f.Add(uint8(8), uint8(30), uint16(900), uint16(333), uint16(5000))
	f.Fuzz(func(t *testing.T, appenders, perAppender uint8, sizeA, sizeB, bufBytes uint16) {
		nApp := int(appenders)%8 + 1
		nRec := int(perAppender)%64 + 1
		sink := &captureSink{}
		l := New(Config{
			Durable:        sink,
			DropAfterFlush: true,
			BufferBytes:    int64(bufBytes), // clamped to the minimum internally
		})
		var mu sync.Mutex
		want := make(map[LSN]Record)
		var wg sync.WaitGroup
		for g := 0; g < nApp; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < nRec; i++ {
					// Alternate the fuzzed payload sizes so reservation sizes
					// vary within one run.
					size := int(sizeA) % 1024
					if i%2 == 1 {
						size = int(sizeB) % 1024
					}
					rec := Record{
						XID:   uint64(g)<<32 | uint64(i),
						Type:  RecUpdate,
						Table: uint32(g),
						Page:  uint64(i),
						After: bytes.Repeat([]byte{byte(g*37 + i)}, size),
					}
					lsn, err := l.Append(rec)
					if err != nil {
						t.Errorf("append: %v", err)
						return
					}
					rec.LSN = lsn
					mu.Lock()
					want[lsn] = rec
					mu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		got := decodeAll(t, sink.bytes())
		if len(got) != nApp*nRec {
			t.Fatalf("decoded %d records, want %d", len(got), nApp*nRec)
		}
		for i, rec := range got {
			if rec.LSN != LSN(i+1) {
				t.Fatalf("record %d has LSN %d: not contiguous", i, rec.LSN)
			}
			w := want[rec.LSN]
			// decodeBody normalizes empty images to nil; mirror that.
			if len(w.After) == 0 {
				w.After = nil
			}
			if !reflect.DeepEqual(rec, w) {
				t.Fatalf("LSN %d mismatch:\nwant %+v\ngot  %+v", rec.LSN, w, rec)
			}
		}
	})
}

// FuzzRecordDecode feeds arbitrary bytes to the decoder: it must never
// panic, and anything it accepts must re-encode to a decodable record.
func FuzzRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Record{LSN: 5, XID: 1, Type: RecCommit}.Encode())
	f.Add(Record{LSN: 8, XID: 3, Type: RecCLR, Table: 1, UndoNext: 6, After: []byte("img")}.Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode reported %d consumed bytes of %d", n, len(data))
		}
		re := rec.Encode()
		rec2, _, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed to decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("re-encode changed record: %+v vs %+v", rec, rec2)
		}
	})
}
