package wal

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzRecordRoundTrip builds a record from fuzzed fields, encodes it, and
// requires decoding to return the identical record with nothing left over.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint64(42), byte(RecUpdate), uint32(3), uint64(9), uint32(4), []byte("before"), []byte("after"))
	f.Add(uint64(0), uint64(0), byte(RecBegin), uint32(0), uint64(0), uint32(0), []byte(nil), []byte(nil))
	f.Add(uint64(1<<63), uint64(1<<62), byte(RecCreateTable), uint32(1<<31), uint64(1)<<60, uint32(7), []byte{0, 0xff}, bytes.Repeat([]byte{0xaa}, 300))
	f.Fuzz(func(t *testing.T, lsn, xid uint64, typ byte, table uint32, page uint64, slot uint32, before, after []byte) {
		in := Record{
			LSN: LSN(lsn), XID: xid, Type: RecType(typ),
			Table: table, Page: page, Slot: slot,
			Before: before, After: after,
		}
		// Decode normalizes empty images to nil; mirror that for comparison.
		want := in
		if len(want.Before) == 0 {
			want.Before = nil
		}
		if len(want.After) == 0 {
			want.After = nil
		}
		enc := in.Encode()
		got, n, err := Decode(enc)
		if err != nil {
			t.Fatalf("Decode(Encode(%+v)) failed: %v", in, err)
		}
		if n != len(enc) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(enc))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", want, got)
		}
		// The streaming decoder must agree with the slice decoder.
		got2, err := DecodeFrom(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("DecodeFrom failed: %v", err)
		}
		if !reflect.DeepEqual(got2, want) {
			t.Fatalf("DecodeFrom mismatch: %+v vs %+v", got2, want)
		}
	})
}

// FuzzRecordDecode feeds arbitrary bytes to the decoder: it must never
// panic, and anything it accepts must re-encode to a decodable record.
func FuzzRecordDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Record{LSN: 5, XID: 1, Type: RecCommit}.Encode())
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode reported %d consumed bytes of %d", n, len(data))
		}
		re := rec.Encode()
		rec2, _, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encode of accepted record failed to decode: %v", err)
		}
		if !reflect.DeepEqual(rec, rec2) {
			t.Fatalf("re-encode changed record: %+v vs %+v", rec, rec2)
		}
	})
}
