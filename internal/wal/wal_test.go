package wal

import (
	"bytes"
	"errors"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		XID:    42,
		Type:   RecUpdate,
		Table:  7,
		Page:   123456,
		Slot:   3,
		Before: []byte("old value"),
		After:  []byte("new value"),
	}
}

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	rec := sampleRecord()
	rec.LSN = 99 // not serialized: the LSN is the frame's position, not data
	data := rec.Encode()
	got, n, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
	}
	want := rec
	want.LSN = 0
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestEncodedSizeIndependentOfLSN pins the property the fetch-and-add
// reservation depends on: a frame's size must not vary with its address,
// or reservations could not be sized before the offset is claimed.
func TestEncodedSizeIndependentOfLSN(t *testing.T) {
	rec := sampleRecord()
	base := rec.EncodedSize()
	for _, lsn := range []LSN{0, 1, 1 << 20, 1 << 40, 1<<63 - 1} {
		rec.LSN = lsn
		if got := rec.EncodedSize(); got != base {
			t.Fatalf("EncodedSize at LSN %d = %d, want %d (size must not depend on LSN)", lsn, got, base)
		}
		if got := len(rec.Encode()); got != base {
			t.Fatalf("Encode at LSN %d produced %d bytes, want %d", lsn, got, base)
		}
	}
}

func TestRecordDecodeFromStream(t *testing.T) {
	var buf bytes.Buffer
	recs := []Record{
		{XID: 1, Type: RecBegin},
		{XID: 1, Type: RecInsert, Table: 3, Page: 4, Slot: 5, After: []byte("x")},
		{XID: 1, Type: RecCommit},
	}
	for _, r := range recs {
		buf.Write(r.Encode())
	}
	reader := bytes.NewReader(buf.Bytes())
	for i := range recs {
		got, err := DecodeFrom(reader)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, recs[i]) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got, recs[i])
		}
	}
	if _, err := DecodeFrom(reader); err == nil {
		t.Fatal("expected EOF-ish error at end of stream")
	}
}

// TestDecodeSkipsPadding pins the padding contract: zero bytes between
// frames (the log buffer's ring-wraparound filler, real bytes of the
// virtual log) are skipped by both decoders, and a stream of only padding
// is a clean EOF, not corruption.
func TestDecodeSkipsPadding(t *testing.T) {
	rec := sampleRecord()
	stream := append(bytes.Repeat([]byte{0}, 7), rec.Encode()...)
	got, n, err := Decode(stream)
	if err != nil || n != len(stream) {
		t.Fatalf("Decode over padding: n=%d err=%v", n, err)
	}
	if !reflect.DeepEqual(got, rec) {
		t.Fatalf("padded round trip mismatch: %+v vs %+v", got, rec)
	}
	r := bytes.NewReader(stream)
	got2, pad, frame, err := decodeCounted(r)
	if err != nil || pad != 7 || frame != int64(rec.EncodedSize()) {
		t.Fatalf("decodeCounted over padding: pad=%d frame=%d err=%v", pad, frame, err)
	}
	if !reflect.DeepEqual(got2, rec) {
		t.Fatalf("decodeCounted mismatch: %+v", got2)
	}
	// Trailing padding then EOF is a clean boundary.
	if _, err := DecodeFrom(bytes.NewReader(bytes.Repeat([]byte{0}, 5))); err == nil || errors.Is(err, ErrCorrupt) {
		t.Fatalf("padding-only stream: err = %v, want clean EOF", err)
	}
}

func TestRecordDecodeCorruption(t *testing.T) {
	data := sampleRecord().Encode()
	for cut := 1; cut < len(data)-1; cut++ {
		if _, _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, _, err := Decode(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestDecodeRejectsHugeLengthPrefixes pins the overflow guards found by
// FuzzRecordDecode (regression corpus in testdata/fuzz): a frame length or
// image length near 2^64 used to wrap negative in the int conversion and
// panic the slice expressions; both must decode as ErrCorrupt instead.
func TestDecodeRejectsHugeLengthPrefixes(t *testing.T) {
	// Frame length ≈ 2^63: a valid 10-byte uvarint far beyond the frame cap.
	hugeVarint := []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}
	if _, _, err := Decode(hugeVarint); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge frame length: err = %v, want ErrCorrupt", err)
	}
	// Valid frame whose body claims a ≈2^63-byte before-image.
	body := []byte{1, byte(RecUpdate), 0, 0, 0, 0} // XID, type, table, page, slot, undoNext
	body = append(body, hugeVarint...)             // before-image length
	frame := append([]byte{byte(len(body))}, body...)
	if _, _, err := Decode(frame); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("huge image length: err = %v, want ErrCorrupt", err)
	}
}

func TestRecordEncodeDecodeQuick(t *testing.T) {
	f := func(xid uint64, table uint32, pageNo uint64, slot uint32, before, after []byte) bool {
		rec := Record{XID: xid, Type: RecUpdate, Table: table, Page: pageNo, Slot: slot, Before: before, After: after}
		if len(before) == 0 {
			rec.Before = nil
		}
		if len(after) == 0 {
			rec.After = nil
		}
		got, n, err := Decode(rec.Encode())
		return err == nil && n == len(rec.Encode()) && reflect.DeepEqual(rec, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCLRRoundTrip pins the compensation-record format: UndoNext survives
// both decoders, and a zero UndoNext (rollback complete) is preserved rather
// than conflated with "no field".
func TestCLRRoundTrip(t *testing.T) {
	for _, undoNext := range []LSN{0, 7, 1 << 40} {
		rec := Record{
			XID: 5, Type: RecCLR,
			Table: 2, Page: 9, Slot: 1,
			UndoNext: undoNext,
			Before:   []byte("compensated new"),
			After:    []byte("restored old"),
		}
		enc := rec.Encode()
		got, n, err := Decode(enc)
		if err != nil || n != len(enc) {
			t.Fatalf("Decode: n=%d err=%v", n, err)
		}
		if !reflect.DeepEqual(rec, got) {
			t.Fatalf("CLR round trip mismatch:\nwant %+v\ngot  %+v", rec, got)
		}
		got2, err := DecodeFrom(bytes.NewReader(enc))
		if err != nil || !reflect.DeepEqual(rec, got2) {
			t.Fatalf("DecodeFrom mismatch (err=%v): %+v vs %+v", err, rec, got2)
		}
	}
}

func TestRecTypeStrings(t *testing.T) {
	for _, rt := range []RecType{RecBegin, RecInsert, RecUpdate, RecDelete, RecCommit, RecAbort, RecCreateTable, RecCreateIndex, RecCLR} {
		if rt.String() == "" {
			t.Fatalf("empty name for %d", rt)
		}
	}
	if RecType(99).String() == "" {
		t.Fatal("unknown type should still render")
	}
}

// TestAppendAssignsByteOffsetLSNs pins the new addressing: each record's LSN
// is the byte offset of its frame, so consecutive appends differ by exactly
// the previous record's encoded size (no wraparound in a fresh big buffer).
func TestAppendAssignsByteOffsetLSNs(t *testing.T) {
	l := New(Config{})
	rec := Record{XID: 1, Type: RecInsert}
	want := LSN(1) // the virtual log begins at offset 1
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != want {
			t.Fatalf("append %d: LSN %d, want byte offset %d", i, lsn, want)
		}
		want = want.Advance(int64(rec.EncodedSize()))
	}
	if got := l.PendingBytes(); got != want.Distance(1) {
		t.Fatalf("pending = %d bytes, want %d", got, want.Distance(1))
	}
	if got := l.LastLSN(); got != want {
		t.Fatalf("LastLSN = %d, want end offset %d", got, want)
	}
}

func TestFlushMakesRecordsDurable(t *testing.T) {
	var sink bytes.Buffer
	l := New(Config{Sink: &sink})
	lsn, _ := l.Append(Record{XID: 1, Type: RecBegin})
	lsn2, _ := l.Append(Record{XID: 1, Type: RecCommit})
	if l.DurableLSN() > lsn {
		t.Fatal("nothing should be durable before flush")
	}
	if err := l.Flush(lsn2); err != nil {
		t.Fatal(err)
	}
	if l.DurableLSN() <= lsn2 || l.DurableLSN() <= lsn {
		t.Fatalf("durable watermark = %d, want > %d", l.DurableLSN(), lsn2)
	}
	if got := len(l.Records()); got != 2 {
		t.Fatalf("flushed records = %d, want 2", got)
	}
	if sink.Len() == 0 {
		t.Fatal("sink received no bytes")
	}
	// The sink content must decode back to the same records.
	reader := bytes.NewReader(sink.Bytes())
	r1, err := DecodeFrom(reader)
	if err != nil || r1.Type != RecBegin {
		t.Fatalf("sink record 1: %+v, %v", r1, err)
	}
	r2, err := DecodeFrom(reader)
	if err != nil || r2.Type != RecCommit {
		t.Fatalf("sink record 2: %+v, %v", r2, err)
	}
}

func TestFlushIdempotentAndOrdered(t *testing.T) {
	l := New(Config{})
	lsn1, _ := l.Append(Record{XID: 1, Type: RecBegin})
	if err := l.Flush(lsn1); err != nil {
		t.Fatal(err)
	}
	// Flushing an already-durable LSN returns immediately.
	if err := l.Flush(lsn1); err != nil {
		t.Fatal(err)
	}
	lsn2, _ := l.Append(Record{XID: 2, Type: RecBegin})
	if err := l.Flush(lsn2); err != nil {
		t.Fatal(err)
	}
	recs := l.Records()
	for i := 1; i < len(recs); i++ {
		if recs[i].LSN <= recs[i-1].LSN {
			t.Fatal("flushed records out of LSN order")
		}
	}
}

func TestGroupCommitBatchesConcurrentCommitters(t *testing.T) {
	l := New(Config{FlushDelay: 2 * time.Millisecond, GroupCommitWindow: time.Millisecond})
	const committers = 16
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < committers; i++ {
		wg.Add(1)
		go func(xid uint64) {
			defer wg.Done()
			lsn, err := l.Append(Record{XID: xid, Type: RecCommit})
			if err != nil {
				t.Error(err)
				return
			}
			if err := l.Flush(lsn); err != nil {
				t.Error(err)
			}
		}(uint64(i))
	}
	wg.Wait()
	elapsed := time.Since(start)
	_, flushes, synced := l.StatsSnapshot()
	if synced != committers {
		t.Fatalf("synced = %d, want %d", synced, committers)
	}
	if flushes >= committers {
		t.Fatalf("group commit did not batch: %d flushes for %d committers", flushes, committers)
	}
	// Without batching this would take committers * (delay+window) ≈ 48ms.
	if elapsed > 40*time.Millisecond {
		t.Logf("warning: group commit slower than expected: %v (%d flushes)", elapsed, flushes)
	}
}

func TestCloseFlushesAndRejectsFurtherAppends(t *testing.T) {
	l := New(Config{})
	l.Append(Record{XID: 1, Type: RecBegin})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if l.PendingBytes() != 0 {
		t.Fatal("Close did not flush pending records")
	}
	if _, err := l.Append(Record{XID: 2, Type: RecBegin}); err == nil {
		t.Fatal("append after close accepted")
	}
	if err := l.Flush(1 << 30); err == nil {
		t.Fatal("flush beyond durable watermark after close should fail")
	}
}

func TestDropAfterFlush(t *testing.T) {
	l := New(Config{DropAfterFlush: true})
	lsn, _ := l.Append(Record{XID: 1, Type: RecBegin})
	if err := l.Flush(lsn); err != nil {
		t.Fatal(err)
	}
	if len(l.Records()) != 0 {
		t.Fatal("DropAfterFlush retained records in memory")
	}
}

func TestFlushAsyncAcknowledgesDurability(t *testing.T) {
	l := New(Config{GroupCommitWindow: time.Millisecond})
	lsn1, _ := l.Append(Record{XID: 1, Type: RecCommit})
	lsn2, _ := l.Append(Record{XID: 2, Type: RecCommit})
	ack1 := l.FlushAsync(lsn1)
	ack2 := l.FlushAsync(lsn2)
	if err := <-ack2; err != nil {
		t.Fatal(err)
	}
	// Acks are delivered in LSN order: once lsn2 is acked, lsn1's ack must
	// already be in its buffered channel.
	select {
	case err := <-ack1:
		if err != nil {
			t.Fatal(err)
		}
	default:
		t.Fatal("ack for lower LSN not delivered before higher LSN's ack")
	}
	if l.DurableLSN() <= lsn2 {
		t.Fatalf("durable watermark = %d, want > %d", l.DurableLSN(), lsn2)
	}
	// Subscribing to an already-durable LSN resolves immediately.
	select {
	case err := <-l.FlushAsync(lsn1):
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("FlushAsync on durable LSN did not resolve immediately")
	}
}

func TestCrashFailsWaitersAndDiscardsBuffer(t *testing.T) {
	// A slow group-commit window guarantees the crash lands before the sync.
	l := New(Config{GroupCommitWindow: 200 * time.Millisecond})
	lsn, _ := l.Append(Record{XID: 1, Type: RecCommit})
	ack := l.FlushAsync(lsn)
	l.Crash()
	select {
	case err := <-ack:
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("ack err = %v, want ErrCrashed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("crash did not fail the pending flush subscription")
	}
	if l.DurableLSN() > lsn {
		t.Fatal("crashed log reported the unsynced record durable")
	}
	if _, err := l.Append(Record{XID: 2, Type: RecBegin}); err == nil {
		t.Fatal("append after crash accepted")
	}
	if err := <-l.FlushAsync(lsn); !errors.Is(err, ErrCrashed) {
		t.Fatalf("FlushAsync after crash = %v, want ErrCrashed", err)
	}
}

func TestErrCorruptIsSentinel(t *testing.T) {
	_, _, err := Decode([]byte{0x05, 0x01})
	if err == nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}
