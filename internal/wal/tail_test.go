package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"
)

// swapPrealloc replaces the platform fallocate hook for one test.
func swapPrealloc(t *testing.T, fn func(*os.File, int64) error) {
	t.Helper()
	old := sysPrealloc
	sysPrealloc = fn
	t.Cleanup(func() { sysPrealloc = old })
}

// segFiles returns the segment paths in name (= first-offset) order.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

// TestWriteRangesTwoRotationsMatchesWriteRange pins the vectored path's
// boundary rule: a single WriteRanges call whose batch spans two segment
// rotations must leave byte-for-byte the same files as the per-range path,
// split at exactly the same frame boundaries — and must land each segment's
// share in one submission (writes == segments touched, not frames written).
func TestWriteRangesTwoRotationsMatchesWriteRange(t *testing.T) {
	const segBytes = 256
	// Two contiguous ranges of whole frames, together long enough to cross
	// at least two rotation boundaries.
	var r1, r2 []byte
	at := LSN(1)
	for i := 0; i < 40; i++ {
		enc := Record{XID: 9, Type: RecInsert, Table: 1, After: []byte("0123456789abcdef")}.Encode()
		if i < 15 {
			r1 = append(r1, enc...)
		} else {
			r2 = append(r2, enc...)
		}
		at = at.Advance(int64(len(enc)))
	}
	mid := LSN(1 + len(r1))

	vecDir, refDir := t.TempDir(), t.TempDir()
	vec, err := OpenSegments(vecDir, segBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	defer vec.Close()
	if err := vec.WriteRanges([]flushRange{{data: r1, first: 1}, {data: r2, first: mid}}); err != nil {
		t.Fatal(err)
	}
	ref, err := OpenSegments(refDir, segBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.WriteRange(r1, 1); err != nil {
		t.Fatal(err)
	}
	if err := ref.WriteRange(r2, mid); err != nil {
		t.Fatal(err)
	}

	if vec.End() != at || ref.End() != at {
		t.Fatalf("End: vectored %d, per-range %d, want %d", vec.End(), ref.End(), at)
	}
	vecFiles, refFiles := segFiles(t, vecDir), segFiles(t, refDir)
	if len(vecFiles) < 3 {
		t.Fatalf("batch produced %d segments, want at least two rotations", len(vecFiles))
	}
	if len(vecFiles) != len(refFiles) {
		t.Fatalf("segment counts differ: vectored %d, per-range %d", len(vecFiles), len(refFiles))
	}
	for i := range vecFiles {
		if filepath.Base(vecFiles[i]) != filepath.Base(refFiles[i]) {
			t.Fatalf("segment %d named %s vs %s: rotation split at a different frame",
				i, filepath.Base(vecFiles[i]), filepath.Base(refFiles[i]))
		}
		vb, err := os.ReadFile(vecFiles[i])
		if err != nil {
			t.Fatal(err)
		}
		rb, err := os.ReadFile(refFiles[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(vb, rb) {
			t.Fatalf("segment %s differs between vectored and per-range paths", filepath.Base(vecFiles[i]))
		}
	}
	// One submission per segment file touched: the whole batch cost three
	// writes, not forty.
	if got, want := vec.Stats().Writes, uint64(len(vecFiles)); got != want {
		t.Fatalf("vectored path issued %d writes across %d segments, want one per segment", got, want)
	}
}

// TestPreallocENOTSUPFallsBackToTruncate pins the graceful-degradation chain:
// a file system refusing fallocate must not disable preallocation — the
// segment is extended with truncate instead — and sealing must trim the zero
// tail either way.
func TestPreallocENOTSUPFallsBackToTruncate(t *testing.T) {
	swapPrealloc(t, func(*os.File, int64) error { return syscall.ENOTSUP })
	const segBytes = 4096
	dir := t.TempDir()
	segs, err := OpenSegments(dir, segBytes, true)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{LSN: 1, XID: 1, Type: RecInsert, After: []byte("x")}
	if err := segs.WriteRecord(rec, rec.Encode()); err != nil {
		t.Fatal(err)
	}
	files := segFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("got %d segments, want 1", len(files))
	}
	st, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != segBytes {
		t.Fatalf("live segment is %d bytes, want preallocated %d", st.Size(), segBytes)
	}
	ss := segs.Stats()
	if ss.Preallocs != 0 || ss.PreallocFallbacks == 0 {
		t.Fatalf("stats = %+v, want only truncate fallbacks", ss)
	}
	if err := segs.Close(); err != nil {
		t.Fatal(err)
	}
	// Sealing trims the unused tail: sealed segments are byte-identical to
	// ones written without preallocation.
	st, err = os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() >= segBytes {
		t.Fatalf("sealed segment still %d bytes, want zero tail trimmed", st.Size())
	}
	reopened, err := OpenSegments(dir, segBytes, true)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := collect(t, reopened, 0); len(got) != 1 || got[0].LSN != 1 {
		t.Fatalf("reopen read back %+v", got)
	}
}

// TestPreallocHardFailureDisablesPrealloc pins that a real I/O error (not an
// unsupported-operation errno) switches preallocation off instead of failing
// the write path: preallocation is strictly an optimization.
func TestPreallocHardFailureDisablesPrealloc(t *testing.T) {
	swapPrealloc(t, func(*os.File, int64) error { return syscall.EIO })
	dir := t.TempDir()
	segs, err := OpenSegments(dir, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	defer segs.Close()
	rec := Record{LSN: 1, XID: 1, Type: RecInsert, After: []byte("x")}
	if err := segs.WriteRecord(rec, rec.Encode()); err != nil {
		t.Fatal(err)
	}
	if ss := segs.Stats(); ss.Preallocs != 0 || ss.PreallocFallbacks != 0 {
		t.Fatalf("stats = %+v, want preallocation abandoned", ss)
	}
	if got := collect(t, segs, 0); len(got) != 1 {
		t.Fatalf("read back %d records, want 1", len(got))
	}
}

// TestCrashMidPreallocatedSegmentRecoversIdentically is the zero-frame cutoff
// regression test: a crash leaves the live preallocated segment at its full
// rotation size with a zero tail after the last frame, and recovery must see
// exactly the records an unallocated layout recovers — the zero run is
// end-of-log, never payload.
func TestCrashMidPreallocatedSegmentRecoversIdentically(t *testing.T) {
	const segBytes = 256
	write := func(dir string, prealloc bool) {
		segs, err := OpenSegments(dir, segBytes, prealloc)
		if err != nil {
			t.Fatal(err)
		}
		at := LSN(1)
		for i := 0; i < 20; i++ {
			rec := Record{LSN: at, XID: 5, Type: RecInsert, Table: 2, After: []byte("payload-payload")}
			enc := rec.Encode()
			if err := segs.WriteRecord(rec, enc); err != nil {
				t.Fatal(err)
			}
			at = at.Advance(int64(len(enc)))
		}
		if err := segs.Sync(); err != nil {
			t.Fatal(err)
		}
		segs.Crash() // close without sealing: the zero tail stays
	}
	preDir, refDir := t.TempDir(), t.TempDir()
	write(preDir, true)
	write(refDir, false)

	// The crashed preallocated layout really does carry a zero tail on its
	// live segment — otherwise this test pins nothing.
	preFiles := segFiles(t, preDir)
	if len(preFiles) < 2 {
		t.Fatalf("got %d segments, want rotation before the crash", len(preFiles))
	}
	if st, err := os.Stat(preFiles[len(preFiles)-1]); err != nil || st.Size() != segBytes {
		t.Fatalf("crashed live segment size = %v (err %v), want full %d", st.Size(), err, segBytes)
	}

	pre, err := OpenSegments(preDir, segBytes, true)
	if err != nil {
		t.Fatal(err)
	}
	defer pre.Close()
	ref, err := OpenSegments(refDir, segBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	preRecs, refRecs := collect(t, pre, 0), collect(t, ref, 0)
	if len(preRecs) != 20 {
		t.Fatalf("preallocated recovery found %d records, want 20", len(preRecs))
	}
	if !reflect.DeepEqual(preRecs, refRecs) {
		t.Fatalf("recoveries differ:\npreallocated %+v\nunallocated  %+v", preRecs, refRecs)
	}
	if pre.End() != ref.End() {
		t.Fatalf("End differs: preallocated %d, unallocated %d", pre.End(), ref.End())
	}
	// Appending after recovery resumes inside the re-extended segment and
	// stays readable.
	rec := Record{LSN: pre.End(), XID: 6, Type: RecCommit}
	if err := pre.WriteRecord(rec, rec.Encode()); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, pre, 0); len(got) != 21 || got[20].XID != 6 {
		t.Fatalf("post-recovery append read back %d records", len(got))
	}
}

// TestZeroTailCutoffOnUnpreallocatedSegment pins the scan cutoff in
// isolation: zeros appended past the valid frames of a live segment (a torn
// pad write, or a preallocated tail) never count as payload and are trimmed
// at reopen.
func TestZeroTailCutoffOnUnpreallocatedSegment(t *testing.T) {
	dir := t.TempDir()
	segs, err := OpenSegments(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{LSN: 1, XID: 1, Type: RecInsert, After: []byte("abc")}
	if err := segs.WriteRecord(rec, rec.Encode()); err != nil {
		t.Fatal(err)
	}
	end := segs.End()
	segs.Crash()
	files := segFiles(t, dir)
	f, err := os.OpenFile(files[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	reopened, err := OpenSegments(dir, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if got := reopened.End(); got != end {
		t.Fatalf("End after zero tail = %d, want %d", got, end)
	}
	if got := collect(t, reopened, 0); len(got) != 1 || got[0].LSN != 1 {
		t.Fatalf("read back %+v", got)
	}
}

// TestVectoredFlushOneWritePerCycle is the acceptance check for the vectored
// flush path: with no rotations, every data-carrying group-commit cycle must
// reach the segment sink as exactly one physical write submission.
func TestVectoredFlushOneWritePerCycle(t *testing.T) {
	dir := t.TempDir()
	segs, err := OpenSegments(dir, 0, false) // default (large) rotation size
	if err != nil {
		t.Fatal(err)
	}
	l := New(Config{Durable: segs, DropAfterFlush: true})
	for i := 0; i < 10; i++ {
		lsns := appendN(t, l, uint64(i), 5)
		if err := l.Flush(lsns[4]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	ts, ss := l.TailStats(), segs.Stats()
	if ss.Rotations != 1 { // the initial segment's creation, nothing more
		t.Fatalf("unexpected rotations: %d", ss.Rotations)
	}
	if ts.FlushCycles < 10 {
		t.Fatalf("flush cycles = %d, want at least one per Flush", ts.FlushCycles)
	}
	if ss.Writes != ts.FlushCycles {
		t.Fatalf("writes = %d over %d cycles, want exactly one write per cycle", ss.Writes, ts.FlushCycles)
	}
	if got := collect(t, segs, 0); len(got) != 50 {
		t.Fatalf("read back %d records, want 50", len(got))
	}
}

// TestAdaptiveWindowShrinksToFloor pins the controller's decrease rule: a
// lone committer never benefits from a group-commit window, so repeated
// single-subscription cycles must walk the window down to GroupCommitMin —
// and never below it or above GroupCommitMax.
func TestAdaptiveWindowShrinksToFloor(t *testing.T) {
	sink := &captureSink{}
	min, max := 50*time.Microsecond, 400*time.Microsecond
	l := New(Config{
		Durable:             sink,
		DropAfterFlush:      true,
		AdaptiveGroupCommit: true,
		GroupCommitWindow:   time.Millisecond, // clamped into [min, max]
		GroupCommitMin:      min,
		GroupCommitMax:      max,
	})
	defer l.Close()
	if w := l.Window(); w != max {
		t.Fatalf("initial window = %v, want clamped to max %v", w, max)
	}
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		lsn, err := l.Append(Record{XID: uint64(i), Type: RecCommit})
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Flush(lsn); err != nil {
			t.Fatal(err)
		}
		if w := l.Window(); w < min || w > max {
			t.Fatalf("window %v left bounds [%v, %v]", w, min, max)
		}
		if l.Window() == min {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("window stuck at %v after %d single-commit cycles, want %v", l.Window(), i+1, min)
		}
	}
	ts := l.TailStats()
	if ts.WindowedCycles == 0 || ts.WindowTotal == 0 {
		t.Fatalf("tail stats recorded no windowed cycles: %+v", ts)
	}
}

// TestCloseDrainsWithoutWaitingFullWindow pins the flusher's early wake on
// drain: Close must not sit out the remainder of an open group-commit
// window (PR 6 shipped a flusher that slept the full fixed window even when
// the batch could no longer widen, making Close latency proportional to the
// window).
func TestCloseDrainsWithoutWaitingFullWindow(t *testing.T) {
	sink := &captureSink{}
	l := New(Config{
		Durable:           sink,
		DropAfterFlush:    true,
		GroupCommitWindow: 2 * time.Second, // fixed, enormous
	})
	lsn, err := l.Append(Record{XID: 1, Type: RecCommit})
	if err != nil {
		t.Fatal(err)
	}
	ch := l.FlushAsync(lsn) // opens a 2s group-commit window
	time.Sleep(5 * time.Millisecond)
	start := time.Now()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Close took %v, want the drain wake to cut the 2s window short", elapsed)
	}
	if err := <-ch; err != nil {
		t.Fatalf("subscription failed across Close: %v", err)
	}
}

// TestStrictFenceStatsAndDelivery sanity-checks the ablation baseline: the
// strict in-order fence must deliver everything the relaxed fence delivers
// (the fuzz harness covers the hard interleavings) and its fence-wait stat
// must be wired.
func TestStrictFenceStatsAndDelivery(t *testing.T) {
	sink := &captureSink{}
	l := New(Config{Durable: sink, DropAfterFlush: true, StrictFence: true})
	lsns := appendN(t, l, 3, 25)
	if err := l.Flush(lsns[24]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if ts := l.TailStats(); ts.FenceWait < 0 {
		t.Fatalf("negative fence wait: %v", ts.FenceWait)
	}
	recs := decodeAll(t, sink.bytes(), 1)
	if len(recs) != 25 {
		t.Fatalf("strict fence delivered %d records, want 25", len(recs))
	}
}
