package wal

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"
)

// slowSink is a captureSink whose Sync stalls, keeping the buffer full long
// enough for the auto-sizer's buffer-full signal to cross its threshold.
type slowSink struct {
	captureSink
	delay time.Duration
}

func (s *slowSink) Sync() error {
	time.Sleep(s.delay)
	return s.captureSink.Sync()
}

// TestAutoSizeBufferGrows drives a deliberately undersized buffer against a
// slow sink and checks that the ring grows (power-of-two, capped), that every
// appended record survives byte-identically across the swaps, and that the
// growth is visible in TailStats.
func TestAutoSizeBufferGrows(t *testing.T) {
	for _, latched := range []bool{false, true} {
		t.Run(fmt.Sprintf("latched=%v", latched), func(t *testing.T) {
			sink := &slowSink{delay: 2 * time.Millisecond}
			l := New(Config{
				Durable:        sink,
				DropAfterFlush: true,
				BufferBytes:    minLogBufferBytes,
				AutoSizeBuffer: true,
				BufferMaxBytes: 64 << 10,
				LatchedLog:     latched,
			})
			const (
				appenders = 4
				perApp    = 400
			)
			payload := bytes.Repeat([]byte{0xAB}, 64)
			var wg sync.WaitGroup
			for g := 0; g < appenders; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < perApp; i++ {
						rec := Record{
							XID:   uint64(g)<<32 | uint64(i),
							Type:  RecUpdate,
							Table: uint32(g),
							Page:  uint64(i),
							After: payload,
						}
						if _, err := l.Append(rec); err != nil {
							t.Errorf("append g=%d i=%d: %v", g, i, err)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			if err := l.Flush(l.LastLSN()); err != nil {
				t.Fatalf("flush: %v", err)
			}
			ts := l.TailStats()
			if err := l.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if ts.BufferGrows == 0 {
				t.Fatalf("expected at least one auto-size grow (buffer-full wait %v, buffer %d bytes)",
					ts.BufferFullWait, ts.BufferBytes)
			}
			if ts.BufferBytes <= minLogBufferBytes || ts.BufferBytes > 64<<10 {
				t.Fatalf("grown buffer size %d out of range (%d, %d]", ts.BufferBytes, minLogBufferBytes, 64<<10)
			}
			if ts.BufferBytes&(ts.BufferBytes-1) != 0 {
				t.Fatalf("grown buffer size %d not a power of two", ts.BufferBytes)
			}
			if ts.BufferFullWait == 0 {
				t.Fatalf("buffer-full wait signal never accumulated despite %d grows", ts.BufferGrows)
			}
			recs := decodeAll(t, sink.bytes(), 1)
			if len(recs) != appenders*perApp {
				t.Fatalf("decoded %d records, want %d", len(recs), appenders*perApp)
			}
			for _, rec := range recs {
				if !bytes.Equal(rec.After, payload) {
					t.Fatalf("record %d/%d: payload corrupted across ring growth", rec.XID, rec.LSN)
				}
			}
		})
	}
}

// TestAutoSizeBufferCapped checks the grow never exceeds BufferMaxBytes.
func TestAutoSizeBufferCapped(t *testing.T) {
	sink := &slowSink{delay: 3 * time.Millisecond}
	l := New(Config{
		Durable:        sink,
		DropAfterFlush: true,
		BufferBytes:    minLogBufferBytes,
		AutoSizeBuffer: true,
		BufferMaxBytes: 8 << 10, // one doubling only
	})
	payload := bytes.Repeat([]byte{0x5A}, 128)
	for i := 0; i < 2000; i++ {
		if _, err := l.Append(Record{XID: uint64(i), Type: RecUpdate, After: payload}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Flush(l.LastLSN()); err != nil {
		t.Fatalf("flush: %v", err)
	}
	ts := l.TailStats()
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if ts.BufferBytes > 8<<10 {
		t.Fatalf("buffer grew past its cap: %d > %d", ts.BufferBytes, 8<<10)
	}
	if ts.BufferGrows > 1 {
		t.Fatalf("expected at most one grow under an 8 KiB cap, got %d", ts.BufferGrows)
	}
}
