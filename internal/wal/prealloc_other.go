//go:build !linux

package wal

import (
	"errors"
	"os"
)

// sysPreallocImpl has no portable equivalent of fallocate(2); reporting
// unsupported makes the caller fall back to truncate, which extends the file
// with a (possibly sparse) zero tail — the same recovery semantics, without
// the guaranteed block allocation.
func sysPreallocImpl(_ *os.File, _ int64) error {
	return errors.ErrUnsupported
}
