package tpcb

import (
	"testing"
	"time"

	"slidb/internal/core"
	"slidb/internal/record"
	"slidb/internal/workload"
)

func TestLoadAndBalancesConserved(t *testing.T) {
	e := core.Open(core.Config{Agents: 4})
	defer e.Close()
	cfg := Config{Branches: 3, AccountsPerBranch: 50}
	if err := Load(e, cfg); err != nil {
		t.Fatal(err)
	}
	gen, err := NewGenerator(cfg, TxAccountUpdate)
	if err != nil {
		t.Fatal(err)
	}
	res := workload.Run(e, gen, workload.Options{Clients: 4, Duration: 250 * time.Millisecond, Seed: 11})
	if res.Errors > 0 {
		t.Fatalf("unexpected errors: %d", res.Errors)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	// Invariant: sum(branch balances) == sum(teller balances) == sum(account
	// balances) == sum(history deltas).
	var branchSum, tellerSum, accountSum, historySum float64
	var historyRows int
	err = e.Exec(func(tx *core.Tx) error {
		if err := tx.ScanTable(TableBranches, func(r record.Row) bool { branchSum += r[1].AsFloat(); return true }); err != nil {
			return err
		}
		if err := tx.ScanTable(TableTellers, func(r record.Row) bool { tellerSum += r[2].AsFloat(); return true }); err != nil {
			return err
		}
		if err := tx.ScanTable(TableAccounts, func(r record.Row) bool { accountSum += r[2].AsFloat(); return true }); err != nil {
			return err
		}
		return tx.ScanTable(TableHistory, func(r record.Row) bool { historySum += r[4].AsFloat(); historyRows++; return true })
	})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	if diff := branchSum - tellerSum; diff > eps || diff < -eps {
		t.Fatalf("branch sum %v != teller sum %v", branchSum, tellerSum)
	}
	if diff := branchSum - accountSum; diff > eps || diff < -eps {
		t.Fatalf("branch sum %v != account sum %v", branchSum, accountSum)
	}
	if diff := branchSum - historySum; diff > eps || diff < -eps {
		t.Fatalf("branch sum %v != history sum %v", branchSum, historySum)
	}
	if uint64(historyRows) < res.Committed {
		t.Fatalf("history rows %d < committed transactions %d", historyRows, res.Committed)
	}
}

func TestGeneratorRejectsUnknownName(t *testing.T) {
	if _, err := NewGenerator(Config{}, "nope"); err == nil {
		t.Fatal("unknown transaction accepted")
	}
	if _, err := NewGenerator(Config{}, ""); err != nil {
		t.Fatal("empty name should default to the account-update transaction")
	}
}

func TestSchemasCoverFourTables(t *testing.T) {
	if len(Schemas()) != 4 {
		t.Fatal("TPC-B defines four tables")
	}
}

func TestSLIRunMatchesBaselineInvariants(t *testing.T) {
	e := core.Open(core.Config{Agents: 4, SLI: true})
	defer e.Close()
	cfg := Config{Branches: 2, AccountsPerBranch: 40}
	if err := Load(e, cfg); err != nil {
		t.Fatal(err)
	}
	gen, _ := NewGenerator(cfg, "")
	res := workload.Run(e, gen, workload.Options{Clients: 4, Duration: 200 * time.Millisecond, Seed: 17})
	if res.Errors > 0 || res.Committed == 0 {
		t.Fatalf("SLI run failed: %+v", res)
	}
	var branchSum, accountSum float64
	err := e.Exec(func(tx *core.Tx) error {
		if err := tx.ScanTable(TableBranches, func(r record.Row) bool { branchSum += r[1].AsFloat(); return true }); err != nil {
			return err
		}
		return tx.ScanTable(TableAccounts, func(r record.Row) bool { accountSum += r[2].AsFloat(); return true })
	})
	if err != nil {
		t.Fatal(err)
	}
	if diff := branchSum - accountSum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("SLI broke conservation: branches %v, accounts %v", branchSum, accountSum)
	}
}
