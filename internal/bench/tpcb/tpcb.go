// Package tpcb implements the TPC-B database stress test used in the paper:
// a single short update transaction (a customer deposit/withdrawal) over
// four tables — branches, tellers, accounts and history (paper §5.1).
package tpcb

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"slidb/internal/core"
	"slidb/internal/record"
	"slidb/internal/workload"
)

// Table names.
const (
	TableBranches = "branches"
	TableTellers  = "tellers"
	TableAccounts = "accounts"
	TableHistory  = "history"
)

// TxAccountUpdate is the benchmark's single transaction type.
const TxAccountUpdate = "tpcb"

// Config sizes the TPC-B dataset. The paper uses 1000 branches with the
// standard 100,000 accounts per branch (20 GB); defaults here are scaled so
// tests stay fast, and the ratios stay spec-proportional.
type Config struct {
	// Branches is the scale factor.
	Branches int
	// TellersPerBranch defaults to the spec's 10.
	TellersPerBranch int
	// AccountsPerBranch defaults to 1000 (the spec uses 100,000).
	AccountsPerBranch int
	// Seed seeds the data generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Branches <= 0 {
		c.Branches = 10
	}
	if c.TellersPerBranch <= 0 {
		c.TellersPerBranch = 10
	}
	if c.AccountsPerBranch <= 0 {
		c.AccountsPerBranch = 1000
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	return c
}

// Schemas returns the four TPC-B table schemas.
func Schemas() map[string]*record.Schema {
	return map[string]*record.Schema{
		TableBranches: record.MustSchema(
			record.Column{Name: "b_id", Type: record.TypeInt},
			record.Column{Name: "b_balance", Type: record.TypeFloat},
			record.Column{Name: "filler", Type: record.TypeString},
		),
		TableTellers: record.MustSchema(
			record.Column{Name: "t_id", Type: record.TypeInt},
			record.Column{Name: "b_id", Type: record.TypeInt},
			record.Column{Name: "t_balance", Type: record.TypeFloat},
			record.Column{Name: "filler", Type: record.TypeString},
		),
		TableAccounts: record.MustSchema(
			record.Column{Name: "a_id", Type: record.TypeInt},
			record.Column{Name: "b_id", Type: record.TypeInt},
			record.Column{Name: "a_balance", Type: record.TypeFloat},
			record.Column{Name: "filler", Type: record.TypeString},
		),
		TableHistory: record.MustSchema(
			record.Column{Name: "h_id", Type: record.TypeInt},
			record.Column{Name: "t_id", Type: record.TypeInt},
			record.Column{Name: "b_id", Type: record.TypeInt},
			record.Column{Name: "a_id", Type: record.TypeInt},
			record.Column{Name: "delta", Type: record.TypeFloat},
			record.Column{Name: "filler", Type: record.TypeString},
		),
	}
}

// historyID hands out unique history primary keys; TPC-B's history table has
// no natural key.
var historyID atomic.Int64

// Load creates and populates the TPC-B tables.
func Load(e *core.Engine, cfg Config) error {
	cfg = cfg.withDefaults()
	schemas := Schemas()
	if err := e.CreateTable(TableBranches, schemas[TableBranches], []string{"b_id"}); err != nil {
		return err
	}
	if err := e.CreateTable(TableTellers, schemas[TableTellers], []string{"t_id"}); err != nil {
		return err
	}
	if err := e.CreateTable(TableAccounts, schemas[TableAccounts], []string{"a_id"}); err != nil {
		return err
	}
	if err := e.CreateTable(TableHistory, schemas[TableHistory], []string{"h_id"}); err != nil {
		return err
	}
	filler := "xxxxxxxxxxxxxxxxxxxxxxxx"
	for b := 1; b <= cfg.Branches; b++ {
		bID := int64(b)
		err := e.Exec(func(tx *core.Tx) error {
			if err := tx.Insert(TableBranches, record.Row{record.Int(bID), record.Float(0), record.String(filler)}); err != nil {
				return err
			}
			for t := 0; t < cfg.TellersPerBranch; t++ {
				tID := (bID-1)*int64(cfg.TellersPerBranch) + int64(t) + 1
				if err := tx.Insert(TableTellers, record.Row{record.Int(tID), record.Int(bID), record.Float(0), record.String(filler)}); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("tpcb: loading branch %d: %w", b, err)
		}
		// Accounts go in separate batches to bound transaction size.
		const batch = 1000
		for lo := 0; lo < cfg.AccountsPerBranch; lo += batch {
			hi := lo + batch
			if hi > cfg.AccountsPerBranch {
				hi = cfg.AccountsPerBranch
			}
			err := e.Exec(func(tx *core.Tx) error {
				for a := lo; a < hi; a++ {
					aID := (bID-1)*int64(cfg.AccountsPerBranch) + int64(a) + 1
					if err := tx.Insert(TableAccounts, record.Row{record.Int(aID), record.Int(bID), record.Float(0), record.String(filler)}); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				return fmt.Errorf("tpcb: loading accounts of branch %d: %w", b, err)
			}
		}
	}
	return nil
}

// NewGenerator returns the TPC-B workload generator (there is only one
// transaction type, so name must be TxAccountUpdate or empty).
func NewGenerator(cfg Config, name string) (workload.Generator, error) {
	cfg = cfg.withDefaults()
	if name != "" && name != TxAccountUpdate {
		return nil, fmt.Errorf("tpcb: unknown transaction %q", name)
	}
	return workload.Mix{{
		Name:   TxAccountUpdate,
		Weight: 1,
		Make:   func(rng *rand.Rand) workload.TxFunc { return accountUpdate(cfg, rng) },
	}}, nil
}

// accountUpdate is the TPC-B transaction: adjust an account, its teller and
// its branch by a random delta and append a history row. 85% of accounts
// belong to the teller's home branch, 15% to a remote branch.
func accountUpdate(cfg Config, rng *rand.Rand) workload.TxFunc {
	branch := 1 + rng.Int63n(int64(cfg.Branches))
	teller := (branch-1)*int64(cfg.TellersPerBranch) + int64(rng.Intn(cfg.TellersPerBranch)) + 1
	accountBranch := branch
	if cfg.Branches > 1 && rng.Float64() < 0.15 {
		accountBranch = 1 + rng.Int63n(int64(cfg.Branches))
	}
	account := (accountBranch-1)*int64(cfg.AccountsPerBranch) + rng.Int63n(int64(cfg.AccountsPerBranch)) + 1
	delta := float64(rng.Intn(200000)-100000) / 100.0
	hID := historyID.Add(1)
	return func(tx *core.Tx) error {
		if err := tx.Update(TableAccounts, []record.Value{record.Int(account)}, func(r record.Row) (record.Row, error) {
			r[2] = record.Float(r[2].AsFloat() + delta)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.Update(TableTellers, []record.Value{record.Int(teller)}, func(r record.Row) (record.Row, error) {
			r[2] = record.Float(r[2].AsFloat() + delta)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.Update(TableBranches, []record.Value{record.Int(accountBranch)}, func(r record.Row) (record.Row, error) {
			r[1] = record.Float(r[1].AsFloat() + delta)
			return r, nil
		}); err != nil {
			return err
		}
		return tx.Insert(TableHistory, record.Row{
			record.Int(hID), record.Int(teller), record.Int(accountBranch),
			record.Int(account), record.Float(delta), record.String("h"),
		})
	}
}
