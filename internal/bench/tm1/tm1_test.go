package tm1

import (
	"testing"
	"time"

	"slidb/internal/core"
	"slidb/internal/record"
	"slidb/internal/workload"
)

func loadSmall(t testing.TB, engineCfg core.Config, subscribers int) *core.Engine {
	t.Helper()
	e := core.Open(engineCfg)
	t.Cleanup(func() { e.Close() })
	if err := Load(e, Config{Subscribers: subscribers}); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLoadPopulatesAllTables(t *testing.T) {
	e := loadSmall(t, core.Config{Agents: 1}, 200)
	counts := map[string]int{}
	err := e.Exec(func(tx *core.Tx) error {
		for _, tbl := range []string{TableSubscriber, TableAccessInfo, TableSpecialFacility, TableCallForwarding} {
			n := 0
			if err := tx.ScanTable(tbl, func(record.Row) bool { n++; return true }); err != nil {
				return err
			}
			counts[tbl] = n
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[TableSubscriber] != 200 {
		t.Fatalf("subscribers = %d, want 200", counts[TableSubscriber])
	}
	// 1-4 rows per subscriber, so expect roughly 2.5x subscribers.
	if counts[TableAccessInfo] < 200 || counts[TableAccessInfo] > 800 {
		t.Fatalf("access_info = %d, outside [200,800]", counts[TableAccessInfo])
	}
	if counts[TableSpecialFacility] < 200 || counts[TableSpecialFacility] > 800 {
		t.Fatalf("special_facility = %d, outside [200,800]", counts[TableSpecialFacility])
	}
	if counts[TableCallForwarding] == 0 {
		t.Fatal("call_forwarding empty")
	}
	if len(Schemas()) != 4 {
		t.Fatal("Schemas() should describe 4 tables")
	}
	if len(Transactions()) != 5 || len(Mixes()) != 2 {
		t.Fatal("transaction/mix listings wrong")
	}
}

func TestGeneratorUnknownName(t *testing.T) {
	if _, err := NewGenerator(Config{}, "nope"); err == nil {
		t.Fatal("unknown transaction accepted")
	}
}

// runNamed runs a short burst of the named transaction and returns the result.
func runNamed(t *testing.T, e *core.Engine, name string, d time.Duration) workload.Result {
	t.Helper()
	gen, err := NewGenerator(Config{Subscribers: 500}, name)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Run(e, gen, workload.Options{Clients: 4, Duration: d, Seed: 5})
}

func TestReadOnlyTransactionsRun(t *testing.T) {
	e := loadSmall(t, core.Config{Agents: 4}, 500)
	res := runNamed(t, e, TxGetSubscriberData, 150*time.Millisecond)
	if res.Committed == 0 || res.Errors > 0 {
		t.Fatalf("getSub: %+v", res)
	}
	if res.FailureRate() != 0 {
		t.Fatalf("getSub should never fail, got %.2f", res.FailureRate())
	}

	res = runNamed(t, e, TxGetAccessData, 150*time.Millisecond)
	if res.Errors > 0 || res.Committed == 0 {
		t.Fatalf("getAccess: %+v", res)
	}
	// Spec failure rate 37.5%; allow a generous band.
	if res.FailureRate() < 0.2 || res.FailureRate() > 0.55 {
		t.Fatalf("getAccess failure rate %.2f, expected ~0.375", res.FailureRate())
	}

	res = runNamed(t, e, TxGetNewDestination, 150*time.Millisecond)
	if res.Errors > 0 || res.Committed == 0 {
		t.Fatalf("getDest: %+v", res)
	}
	// Spec failure rate 76.1%.
	if res.FailureRate() < 0.55 || res.FailureRate() > 0.95 {
		t.Fatalf("getDest failure rate %.2f, expected ~0.76", res.FailureRate())
	}
}

func TestUpdateTransactionsRun(t *testing.T) {
	e := loadSmall(t, core.Config{Agents: 4}, 500)
	res := runNamed(t, e, TxUpdateLocation, 150*time.Millisecond)
	if res.Errors > 0 || res.Committed == 0 || res.FailureRate() != 0 {
		t.Fatalf("updateLoc: %+v", res)
	}
	res = runNamed(t, e, TxUpdateSubscriberData, 150*time.Millisecond)
	if res.Errors > 0 || res.Committed == 0 {
		t.Fatalf("updateSub: %+v", res)
	}
	if res.FailureRate() < 0.2 || res.FailureRate() > 0.55 {
		t.Fatalf("updateSub failure rate %.2f, expected ~0.375", res.FailureRate())
	}
}

func TestCallForwardingTransactionsRun(t *testing.T) {
	e := loadSmall(t, core.Config{Agents: 4}, 300)
	res := runNamed(t, e, TxInsertCallForwarding, 150*time.Millisecond)
	if res.Errors > 0 || res.Committed == 0 {
		t.Fatalf("insertCF: %+v", res)
	}
	res = runNamed(t, e, TxDeleteCallForwarding, 150*time.Millisecond)
	if res.Errors > 0 || res.Committed == 0 {
		t.Fatalf("deleteCF: %+v", res)
	}
	if res.FailureRate() < 0.4 {
		t.Fatalf("deleteCF failure rate %.2f, expected ~0.69", res.FailureRate())
	}
}

func TestMixesRunWithAndWithoutSLI(t *testing.T) {
	for _, sli := range []bool{false, true} {
		e := loadSmall(t, core.Config{Agents: 4, SLI: sli}, 500)
		for _, mix := range Mixes() {
			gen, err := NewGenerator(Config{Subscribers: 500}, mix)
			if err != nil {
				t.Fatal(err)
			}
			res := workload.Run(e, gen, workload.Options{Clients: 4, Duration: 200 * time.Millisecond, Seed: 3})
			if res.Errors > 0 {
				t.Fatalf("mix %s (sli=%v): %d unexpected errors", mix, sli, res.Errors)
			}
			if res.Committed == 0 {
				t.Fatalf("mix %s (sli=%v): nothing committed", mix, sli)
			}
		}
		if sli && e.LockStats().SLIPassed == 0 {
			t.Log("note: SLI never engaged in this short run (no hot locks detected)")
		}
	}
}
