// Package tm1 implements the Nokia Network Database Benchmark (NDBB, also
// known as TM1), the telecom workload the paper leans on most heavily: seven
// very short transactions over four Home Location Register tables, many of
// which fail on invalid input by design (paper §5.1).
package tm1

import (
	"errors"
	"fmt"
	"math/rand"

	"slidb/internal/core"
	"slidb/internal/record"
	"slidb/internal/workload"
)

// Table names.
const (
	TableSubscriber      = "subscriber"
	TableAccessInfo      = "access_info"
	TableSpecialFacility = "special_facility"
	TableCallForwarding  = "call_forwarding"
	IndexSubscriberByNbr = "subscriber_by_nbr"
)

// Transaction names, matching the paper's abbreviations.
const (
	TxGetSubscriberData    = "getSub"
	TxGetNewDestination    = "getDest"
	TxGetAccessData        = "getAccess"
	TxUpdateSubscriberData = "updateSub"
	TxUpdateLocation       = "updateLoc"
	TxInsertCallForwarding = "insertCF"
	TxDeleteCallForwarding = "deleteCF"
	// MixNDBB is the full specified mix (35/10/35/2/14/2/2).
	MixNDBB = "mix"
	// MixForward is the 71.4/14.3/14.3 getDest/insertCF/deleteCF mix.
	MixForward = "forward"
)

// Transactions lists the individually runnable transaction names, in the
// order the paper's figures present them.
func Transactions() []string {
	return []string{
		TxGetSubscriberData, TxGetNewDestination, TxGetAccessData,
		TxUpdateSubscriberData, TxUpdateLocation,
	}
}

// Mixes lists the runnable mix names.
func Mixes() []string { return []string{MixForward, MixNDBB} }

// Config sizes the NDBB dataset.
type Config struct {
	// Subscribers is the dataset size (the paper uses 100,000).
	Subscribers int
	// Seed seeds the data generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Subscribers <= 0 {
		c.Subscribers = 1000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func subNbr(sid int64) string { return fmt.Sprintf("%015d", sid) }

// Schemas returns the four NDBB table schemas keyed by table name, mainly
// for documentation and tests.
func Schemas() map[string]*record.Schema {
	return map[string]*record.Schema{
		TableSubscriber: record.MustSchema(
			record.Column{Name: "s_id", Type: record.TypeInt},
			record.Column{Name: "sub_nbr", Type: record.TypeString},
			record.Column{Name: "bit_1", Type: record.TypeInt},
			record.Column{Name: "hex_1", Type: record.TypeInt},
			record.Column{Name: "byte2_1", Type: record.TypeInt},
			record.Column{Name: "msc_location", Type: record.TypeInt},
			record.Column{Name: "vlr_location", Type: record.TypeInt},
		),
		TableAccessInfo: record.MustSchema(
			record.Column{Name: "s_id", Type: record.TypeInt},
			record.Column{Name: "ai_type", Type: record.TypeInt},
			record.Column{Name: "data1", Type: record.TypeInt},
			record.Column{Name: "data2", Type: record.TypeInt},
			record.Column{Name: "data3", Type: record.TypeString},
			record.Column{Name: "data4", Type: record.TypeString},
		),
		TableSpecialFacility: record.MustSchema(
			record.Column{Name: "s_id", Type: record.TypeInt},
			record.Column{Name: "sf_type", Type: record.TypeInt},
			record.Column{Name: "is_active", Type: record.TypeInt},
			record.Column{Name: "error_cntrl", Type: record.TypeInt},
			record.Column{Name: "data_a", Type: record.TypeInt},
			record.Column{Name: "data_b", Type: record.TypeString},
		),
		TableCallForwarding: record.MustSchema(
			record.Column{Name: "s_id", Type: record.TypeInt},
			record.Column{Name: "sf_type", Type: record.TypeInt},
			record.Column{Name: "start_time", Type: record.TypeInt},
			record.Column{Name: "end_time", Type: record.TypeInt},
			record.Column{Name: "numberx", Type: record.TypeString},
		),
	}
}

// Load creates the NDBB tables and populates them according to the spec's
// distributions: 1–4 access_info rows and 1–4 special_facility rows per
// subscriber, 0–3 call_forwarding rows per special facility.
func Load(e *core.Engine, cfg Config) error {
	cfg = cfg.withDefaults()
	schemas := Schemas()
	if err := e.CreateTable(TableSubscriber, schemas[TableSubscriber], []string{"s_id"}); err != nil {
		return err
	}
	if err := e.CreateIndex(IndexSubscriberByNbr, TableSubscriber, []string{"sub_nbr"}, true); err != nil {
		return err
	}
	if err := e.CreateTable(TableAccessInfo, schemas[TableAccessInfo], []string{"s_id", "ai_type"}); err != nil {
		return err
	}
	if err := e.CreateTable(TableSpecialFacility, schemas[TableSpecialFacility], []string{"s_id", "sf_type"}); err != nil {
		return err
	}
	if err := e.CreateTable(TableCallForwarding, schemas[TableCallForwarding], []string{"s_id", "sf_type", "start_time"}); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	const batch = 500
	for lo := 1; lo <= cfg.Subscribers; lo += batch {
		hi := lo + batch - 1
		if hi > cfg.Subscribers {
			hi = cfg.Subscribers
		}
		err := e.Exec(func(tx *core.Tx) error {
			for sid := lo; sid <= hi; sid++ {
				s := int64(sid)
				if err := tx.Insert(TableSubscriber, record.Row{
					record.Int(s), record.String(subNbr(s)),
					record.Int(int64(rng.Intn(2))), record.Int(int64(rng.Intn(16))),
					record.Int(int64(rng.Intn(256))),
					record.Int(rng.Int63n(1 << 31)), record.Int(rng.Int63n(1 << 31)),
				}); err != nil {
					return err
				}
				for _, ai := range pickTypes(rng) {
					if err := tx.Insert(TableAccessInfo, record.Row{
						record.Int(s), record.Int(int64(ai)),
						record.Int(int64(rng.Intn(256))), record.Int(int64(rng.Intn(256))),
						record.String(randString(rng, 3)), record.String(randString(rng, 5)),
					}); err != nil {
						return err
					}
				}
				for _, sf := range pickTypes(rng) {
					active := int64(1)
					if rng.Float64() >= 0.85 {
						active = 0
					}
					if err := tx.Insert(TableSpecialFacility, record.Row{
						record.Int(s), record.Int(int64(sf)), record.Int(active),
						record.Int(int64(rng.Intn(256))), record.Int(int64(rng.Intn(256))),
						record.String(randString(rng, 5)),
					}); err != nil {
						return err
					}
					// 0-3 call forwarding rows with distinct start times.
					starts := []int64{0, 8, 16}
					rng.Shuffle(len(starts), func(i, j int) { starts[i], starts[j] = starts[j], starts[i] })
					for _, st := range starts[:rng.Intn(4)] {
						if err := tx.Insert(TableCallForwarding, record.Row{
							record.Int(s), record.Int(int64(sf)), record.Int(st),
							record.Int(st + int64(rng.Intn(8)) + 1),
							record.String(randString(rng, 15)),
						}); err != nil {
							return err
						}
					}
				}
			}
			return nil
		})
		if err != nil {
			return fmt.Errorf("tm1: loading subscribers %d-%d: %w", lo, hi, err)
		}
	}
	return nil
}

// pickTypes returns 1-4 distinct values from {1,2,3,4}, uniformly sized.
func pickTypes(rng *rand.Rand) []int {
	n := 1 + rng.Intn(4)
	types := []int{1, 2, 3, 4}
	rng.Shuffle(4, func(i, j int) { types[i], types[j] = types[j], types[i] })
	return types[:n]
}

const letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

func randString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = letters[rng.Intn(len(letters))]
	}
	return string(b)
}

// NewGenerator returns a workload generator for the named transaction or mix
// ("mix", "forward", or one of the Tx* names).
func NewGenerator(cfg Config, name string) (workload.Generator, error) {
	cfg = cfg.withDefaults()
	single := func(entry workload.MixEntry) workload.Generator { return workload.Mix{entry} }
	entries := map[string]workload.MixEntry{
		TxGetSubscriberData:    {Name: TxGetSubscriberData, Weight: 35, Make: func(rng *rand.Rand) workload.TxFunc { return getSubscriberData(cfg, rng) }},
		TxGetNewDestination:    {Name: TxGetNewDestination, Weight: 10, Make: func(rng *rand.Rand) workload.TxFunc { return getNewDestination(cfg, rng) }},
		TxGetAccessData:        {Name: TxGetAccessData, Weight: 35, Make: func(rng *rand.Rand) workload.TxFunc { return getAccessData(cfg, rng) }},
		TxUpdateSubscriberData: {Name: TxUpdateSubscriberData, Weight: 2, Make: func(rng *rand.Rand) workload.TxFunc { return updateSubscriberData(cfg, rng) }},
		TxUpdateLocation:       {Name: TxUpdateLocation, Weight: 14, Make: func(rng *rand.Rand) workload.TxFunc { return updateLocation(cfg, rng) }},
		TxInsertCallForwarding: {Name: TxInsertCallForwarding, Weight: 2, Make: func(rng *rand.Rand) workload.TxFunc { return insertCallForwarding(cfg, rng) }},
		TxDeleteCallForwarding: {Name: TxDeleteCallForwarding, Weight: 2, Make: func(rng *rand.Rand) workload.TxFunc { return deleteCallForwarding(cfg, rng) }},
	}
	switch name {
	case MixNDBB:
		var mix workload.Mix
		for _, n := range []string{TxGetSubscriberData, TxGetNewDestination, TxGetAccessData,
			TxUpdateSubscriberData, TxUpdateLocation, TxInsertCallForwarding, TxDeleteCallForwarding} {
			mix = append(mix, entries[n])
		}
		return mix, nil
	case MixForward:
		return workload.Mix{
			{Name: TxGetNewDestination, Weight: 71.4, Make: entries[TxGetNewDestination].Make},
			{Name: TxInsertCallForwarding, Weight: 14.3, Make: entries[TxInsertCallForwarding].Make},
			{Name: TxDeleteCallForwarding, Weight: 14.3, Make: entries[TxDeleteCallForwarding].Make},
		}, nil
	default:
		e, ok := entries[name]
		if !ok {
			return nil, fmt.Errorf("tm1: unknown transaction %q", name)
		}
		return single(e), nil
	}
}

func randSID(cfg Config, rng *rand.Rand) int64 { return 1 + rng.Int63n(int64(cfg.Subscribers)) }

// getSubscriberData retrieves one subscriber row (read-only, never fails).
func getSubscriberData(cfg Config, rng *rand.Rand) workload.TxFunc {
	sid := randSID(cfg, rng)
	return func(tx *core.Tx) error {
		_, found, err := tx.Get(TableSubscriber, record.Int(sid))
		if err != nil {
			return err
		}
		if !found {
			return fmt.Errorf("tm1: subscriber %d missing", sid)
		}
		return nil
	}
}

// getNewDestination retrieves the active call-forwarding destination; it
// fails (by spec, ~76% of the time) when the facility is inactive or no
// forwarding entry covers the requested interval.
func getNewDestination(cfg Config, rng *rand.Rand) workload.TxFunc {
	sid := randSID(cfg, rng)
	sfType := int64(1 + rng.Intn(4))
	startTime := int64(8 * rng.Intn(3))
	endTime := int64(1 + rng.Intn(24))
	return func(tx *core.Tx) error {
		sf, found, err := tx.Get(TableSpecialFacility, record.Int(sid), record.Int(sfType))
		if err != nil {
			return err
		}
		if !found || sf[2].AsInt() != 1 {
			return core.Abort
		}
		got := false
		err = tx.ScanRange(TableCallForwarding,
			[]record.Value{record.Int(sid), record.Int(sfType), record.Int(0)},
			[]record.Value{record.Int(sid), record.Int(sfType), record.Int(23)},
			func(row record.Row) bool {
				if row[2].AsInt() <= startTime && row[3].AsInt() > endTime {
					got = true
					return false
				}
				return true
			})
		if err != nil {
			return err
		}
		if !got {
			return core.Abort
		}
		return nil
	}
}

// getAccessData reads one access_info row; fails (~37.5%) when the requested
// ai_type does not exist for the subscriber.
func getAccessData(cfg Config, rng *rand.Rand) workload.TxFunc {
	sid := randSID(cfg, rng)
	aiType := int64(1 + rng.Intn(4))
	return func(tx *core.Tx) error {
		_, found, err := tx.Get(TableAccessInfo, record.Int(sid), record.Int(aiType))
		if err != nil {
			return err
		}
		if !found {
			return core.Abort
		}
		return nil
	}
}

// updateSubscriberData updates subscriber.bit_1 and special_facility.data_a;
// fails (~37.5%) when the facility row does not exist.
func updateSubscriberData(cfg Config, rng *rand.Rand) workload.TxFunc {
	sid := randSID(cfg, rng)
	sfType := int64(1 + rng.Intn(4))
	bit := int64(rng.Intn(2))
	dataA := int64(rng.Intn(256))
	return func(tx *core.Tx) error {
		if err := tx.Update(TableSubscriber, []record.Value{record.Int(sid)}, func(r record.Row) (record.Row, error) {
			r[2] = record.Int(bit)
			return r, nil
		}); err != nil {
			return err
		}
		err := tx.Update(TableSpecialFacility, []record.Value{record.Int(sid), record.Int(sfType)}, func(r record.Row) (record.Row, error) {
			r[4] = record.Int(dataA)
			return r, nil
		})
		if errors.Is(err, core.ErrNotFound) {
			return core.Abort
		}
		return err
	}
}

// updateLocation updates a subscriber's location, looking the subscriber up
// by its phone number through the secondary index (never fails).
func updateLocation(cfg Config, rng *rand.Rand) workload.TxFunc {
	sid := randSID(cfg, rng)
	nbr := subNbr(sid)
	loc := rng.Int63n(1 << 31)
	return func(tx *core.Tx) error {
		// Lock the subscriber exclusively right away (SELECT ... FOR UPDATE):
		// acquiring S first and upgrading would expose two concurrent
		// UPDATE_LOCATIONs on the same subscriber to a conversion deadlock.
		rows, err := tx.LookupIndexForUpdate(IndexSubscriberByNbr, record.String(nbr))
		if err != nil {
			return err
		}
		if len(rows) != 1 {
			return fmt.Errorf("tm1: subscriber %s not found by number", nbr)
		}
		return tx.Update(TableSubscriber, []record.Value{rows[0][0]}, func(r record.Row) (record.Row, error) {
			r[6] = record.Int(loc)
			return r, nil
		})
	}
}

// insertCallForwarding adds a call-forwarding entry; it fails (~69%) when the
// target special facility does not exist or the entry is a duplicate.
func insertCallForwarding(cfg Config, rng *rand.Rand) workload.TxFunc {
	sid := randSID(cfg, rng)
	nbr := subNbr(sid)
	sfType := int64(1 + rng.Intn(4))
	startTime := int64(8 * rng.Intn(3))
	endTime := startTime + int64(1+rng.Intn(8))
	numberx := randString(rand.New(rand.NewSource(sid)), 15)
	return func(tx *core.Tx) error {
		rows, err := tx.LookupIndex(IndexSubscriberByNbr, record.String(nbr))
		if err != nil {
			return err
		}
		if len(rows) != 1 {
			return core.Abort
		}
		if _, found, err := tx.Get(TableSpecialFacility, record.Int(sid), record.Int(sfType)); err != nil {
			return err
		} else if !found {
			return core.Abort
		}
		err = tx.Insert(TableCallForwarding, record.Row{
			record.Int(sid), record.Int(sfType), record.Int(startTime),
			record.Int(endTime), record.String(numberx),
		})
		if errors.Is(err, core.ErrDuplicateKey) {
			return core.Abort
		}
		return err
	}
}

// deleteCallForwarding removes a call-forwarding entry; it fails (~69%) when
// the entry does not exist.
func deleteCallForwarding(cfg Config, rng *rand.Rand) workload.TxFunc {
	sid := randSID(cfg, rng)
	sfType := int64(1 + rng.Intn(4))
	startTime := int64(8 * rng.Intn(3))
	return func(tx *core.Tx) error {
		err := tx.Delete(TableCallForwarding, record.Int(sid), record.Int(sfType), record.Int(startTime))
		if errors.Is(err, core.ErrNotFound) {
			return core.Abort
		}
		return err
	}
}
