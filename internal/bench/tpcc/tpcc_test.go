package tpcc

import (
	"testing"
	"time"

	"slidb/internal/core"
	"slidb/internal/record"
	"slidb/internal/workload"
)

func smallConfig() Config {
	return Config{Warehouses: 1, DistrictsPerWarehouse: 3, CustomersPerDistrict: 20, Items: 100}
}

func loadSmall(t testing.TB, engineCfg core.Config) (*core.Engine, Config) {
	t.Helper()
	e := core.Open(engineCfg)
	t.Cleanup(func() { e.Close() })
	cfg := smallConfig()
	if err := Load(e, cfg); err != nil {
		t.Fatal(err)
	}
	return e, cfg
}

func TestLoadPopulatesAllNineTables(t *testing.T) {
	e, cfg := loadSmall(t, core.Config{Agents: 1})
	counts := map[string]int{}
	err := e.Exec(func(tx *core.Tx) error {
		for name := range Schemas() {
			n := 0
			if err := tx.ScanTable(name, func(record.Row) bool { n++; return true }); err != nil {
				return err
			}
			counts[name] = n
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counts[TableWarehouse] != cfg.Warehouses {
		t.Fatalf("warehouses = %d", counts[TableWarehouse])
	}
	if counts[TableDistrict] != cfg.Warehouses*cfg.DistrictsPerWarehouse {
		t.Fatalf("districts = %d", counts[TableDistrict])
	}
	if counts[TableCustomer] != cfg.Warehouses*cfg.DistrictsPerWarehouse*cfg.CustomersPerDistrict {
		t.Fatalf("customers = %d", counts[TableCustomer])
	}
	if counts[TableItem] != cfg.Items {
		t.Fatalf("items = %d", counts[TableItem])
	}
	if counts[TableStock] != cfg.Warehouses*cfg.Items {
		t.Fatalf("stock = %d", counts[TableStock])
	}
	if counts[TableOrders] == 0 || counts[TableOrderLine] == 0 || counts[TableNewOrder] == 0 {
		t.Fatalf("order tables empty: %v", counts)
	}
	if len(Transactions()) != 5 || len(Mixes()) != 2 {
		t.Fatal("transaction/mix listings wrong")
	}
}

func TestLastNameSyllables(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Fatalf("LastName(0) = %s", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Fatalf("LastName(371) = %s", LastName(371))
	}
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		seen[LastName(i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("LastName not injective over [0,999]: %d distinct", len(seen))
	}
}

func runTx(t *testing.T, e *core.Engine, cfg Config, name string) workload.Result {
	t.Helper()
	gen, err := NewGenerator(cfg, name)
	if err != nil {
		t.Fatal(err)
	}
	return workload.Run(e, gen, workload.Options{Clients: 3, Duration: 200 * time.Millisecond, Seed: 23})
}

func TestNewOrderAndPaymentRun(t *testing.T) {
	e, cfg := loadSmall(t, core.Config{Agents: 3})
	res := runTx(t, e, cfg, TxNewOrder)
	if res.Errors > 0 || res.Committed == 0 {
		t.Fatalf("NewOrder: %+v", res)
	}
	res = runTx(t, e, cfg, TxPayment)
	if res.Errors > 0 || res.Committed == 0 {
		t.Fatalf("Payment: %+v", res)
	}
}

func TestReadOnlyAndDeliveryTransactionsRun(t *testing.T) {
	e, cfg := loadSmall(t, core.Config{Agents: 3})
	for _, name := range []string{TxOrderStatus, TxStockLevel, TxDelivery} {
		res := runTx(t, e, cfg, name)
		if res.Errors > 0 {
			t.Fatalf("%s: %d unexpected errors", name, res.Errors)
		}
		if res.Committed == 0 {
			t.Fatalf("%s: nothing committed", name)
		}
	}
}

func TestMixesRun(t *testing.T) {
	e, cfg := loadSmall(t, core.Config{Agents: 4, SLI: true})
	for _, mix := range Mixes() {
		gen, err := NewGenerator(cfg, mix)
		if err != nil {
			t.Fatal(err)
		}
		res := workload.Run(e, gen, workload.Options{Clients: 4, Duration: 250 * time.Millisecond, Seed: 31})
		if res.Errors > 0 {
			t.Fatalf("%s: %d unexpected errors", mix, res.Errors)
		}
		if res.Committed == 0 {
			t.Fatalf("%s: nothing committed", mix)
		}
	}
}

func TestNewOrderConsistency(t *testing.T) {
	// After a burst of NewOrder transactions, every order must have exactly
	// o_ol_cnt order lines and district next_o_id must exceed every order id.
	e, cfg := loadSmall(t, core.Config{Agents: 3})
	runTx(t, e, cfg, TxNewOrder)
	err := e.Exec(func(tx *core.Tx) error {
		lineCounts := map[[3]int64]int64{}
		if err := tx.ScanTable(TableOrderLine, func(r record.Row) bool {
			key := [3]int64{r[0].AsInt(), r[1].AsInt(), r[2].AsInt()}
			lineCounts[key]++
			return true
		}); err != nil {
			return err
		}
		bad := 0
		if err := tx.ScanTable(TableOrders, func(r record.Row) bool {
			key := [3]int64{r[0].AsInt(), r[1].AsInt(), r[2].AsInt()}
			if lineCounts[key] != r[6].AsInt() {
				bad++
			}
			return true
		}); err != nil {
			return err
		}
		if bad != 0 {
			t.Errorf("%d orders have mismatched order_line counts", bad)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorUnknownName(t *testing.T) {
	if _, err := NewGenerator(Config{}, "nope"); err == nil {
		t.Fatal("unknown transaction accepted")
	}
}
