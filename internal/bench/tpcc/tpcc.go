// Package tpcc implements the TPC-C order-entry benchmark used in the paper:
// nine tables and five transactions (New Order, Payment, Order Status,
// Delivery, Stock Level), plus the paper's "Small Mix" of the three short
// transactions (§5.1).
//
// Dataset sizes are configurable and default to a scaled-down but
// proportionally faithful population so tests and CI stay fast; the paper's
// 300-warehouse configuration can be requested explicitly.
package tpcc

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"slidb/internal/core"
	"slidb/internal/record"
	"slidb/internal/workload"
)

// Table names.
const (
	TableWarehouse = "warehouse"
	TableDistrict  = "district"
	TableCustomer  = "customer"
	TableHistory   = "history"
	TableOrders    = "orders"
	TableNewOrder  = "new_order"
	TableOrderLine = "order_line"
	TableItem      = "item"
	TableStock     = "stock"

	IndexCustomerByName = "customer_by_name"
	IndexOrdersByCust   = "orders_by_customer"
)

// Transaction and mix names.
const (
	TxNewOrder    = "NewOrder"
	TxPayment     = "Payment"
	TxOrderStatus = "OrderStatus"
	TxDelivery    = "Delivery"
	TxStockLevel  = "StockLevel"
	// MixSmall is Payment/NewOrder/OrderStatus at 46.7/48.9/4.3% (§5.1).
	MixSmall = "small-mix"
	// MixFull is the five transactions at their specified frequencies.
	MixFull = "tpcc-mix"
)

// Transactions lists the individually runnable transactions.
func Transactions() []string {
	return []string{TxNewOrder, TxPayment, TxOrderStatus, TxDelivery, TxStockLevel}
}

// Mixes lists the runnable mixes.
func Mixes() []string { return []string{MixSmall, MixFull} }

// Config sizes the TPC-C dataset.
type Config struct {
	// Warehouses is the scale factor (the paper uses 300).
	Warehouses int
	// DistrictsPerWarehouse defaults to the spec's 10.
	DistrictsPerWarehouse int
	// CustomersPerDistrict defaults to 60 (spec: 3000), scaled for test speed.
	CustomersPerDistrict int
	// Items defaults to 1000 (spec: 100,000).
	Items int
	// InitialOrdersPerDistrict defaults to CustomersPerDistrict, matching the
	// spec's one-order-per-customer initial population.
	InitialOrdersPerDistrict int
	// Seed seeds the data generator.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Warehouses <= 0 {
		c.Warehouses = 2
	}
	if c.DistrictsPerWarehouse <= 0 {
		c.DistrictsPerWarehouse = 10
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 60
	}
	if c.Items <= 0 {
		c.Items = 1000
	}
	if c.InitialOrdersPerDistrict <= 0 {
		c.InitialOrdersPerDistrict = c.CustomersPerDistrict
	}
	if c.Seed == 0 {
		c.Seed = 99
	}
	return c
}

// Schemas returns the nine TPC-C table schemas.
func Schemas() map[string]*record.Schema {
	i := func(n string) record.Column { return record.Column{Name: n, Type: record.TypeInt} }
	f := func(n string) record.Column { return record.Column{Name: n, Type: record.TypeFloat} }
	s := func(n string) record.Column { return record.Column{Name: n, Type: record.TypeString} }
	return map[string]*record.Schema{
		TableWarehouse: record.MustSchema(i("w_id"), s("w_name"), f("w_tax"), f("w_ytd")),
		TableDistrict:  record.MustSchema(i("d_w_id"), i("d_id"), s("d_name"), f("d_tax"), f("d_ytd"), i("d_next_o_id")),
		TableCustomer: record.MustSchema(i("c_w_id"), i("c_d_id"), i("c_id"), s("c_first"), s("c_last"),
			f("c_balance"), f("c_ytd_payment"), i("c_payment_cnt"), i("c_delivery_cnt"), s("c_data"), f("c_discount"), s("c_credit")),
		TableHistory:  record.MustSchema(i("h_id"), i("h_w_id"), i("h_d_id"), i("h_c_id"), f("h_amount"), s("h_data")),
		TableOrders:   record.MustSchema(i("o_w_id"), i("o_d_id"), i("o_id"), i("o_c_id"), i("o_entry_d"), i("o_carrier_id"), i("o_ol_cnt")),
		TableNewOrder: record.MustSchema(i("no_w_id"), i("no_d_id"), i("no_o_id")),
		TableOrderLine: record.MustSchema(i("ol_w_id"), i("ol_d_id"), i("ol_o_id"), i("ol_number"),
			i("ol_i_id"), i("ol_supply_w_id"), i("ol_quantity"), f("ol_amount"), s("ol_dist_info")),
		TableItem:  record.MustSchema(i("i_id"), s("i_name"), f("i_price"), s("i_data")),
		TableStock: record.MustSchema(i("s_w_id"), i("s_i_id"), i("s_quantity"), f("s_ytd"), i("s_order_cnt"), i("s_remote_cnt"), s("s_dist_01")),
	}
}

// lastNameSyllables are the spec's customer last-name syllables.
var lastNameSyllables = []string{"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING"}

// LastName builds a TPC-C customer last name from a number in [0,999].
func LastName(n int) string {
	return lastNameSyllables[(n/100)%10] + lastNameSyllables[(n/10)%10] + lastNameSyllables[n%10]
}

var historyID atomic.Int64

// Load creates the TPC-C tables and populates them.
func Load(e *core.Engine, cfg Config) error {
	cfg = cfg.withDefaults()
	schemas := Schemas()
	ddl := []struct {
		name string
		pk   []string
	}{
		{TableWarehouse, []string{"w_id"}},
		{TableDistrict, []string{"d_w_id", "d_id"}},
		{TableCustomer, []string{"c_w_id", "c_d_id", "c_id"}},
		{TableHistory, []string{"h_id"}},
		{TableOrders, []string{"o_w_id", "o_d_id", "o_id"}},
		{TableNewOrder, []string{"no_w_id", "no_d_id", "no_o_id"}},
		{TableOrderLine, []string{"ol_w_id", "ol_d_id", "ol_o_id", "ol_number"}},
		{TableItem, []string{"i_id"}},
		{TableStock, []string{"s_w_id", "s_i_id"}},
	}
	for _, d := range ddl {
		if err := e.CreateTable(d.name, schemas[d.name], d.pk); err != nil {
			return err
		}
	}
	if err := e.CreateIndex(IndexCustomerByName, TableCustomer, []string{"c_w_id", "c_d_id", "c_last"}, false); err != nil {
		return err
	}
	if err := e.CreateIndex(IndexOrdersByCust, TableOrders, []string{"o_w_id", "o_d_id", "o_c_id"}, false); err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Items.
	const itemBatch = 500
	for lo := 1; lo <= cfg.Items; lo += itemBatch {
		hi := min(lo+itemBatch-1, cfg.Items)
		if err := e.Exec(func(tx *core.Tx) error {
			for i := lo; i <= hi; i++ {
				if err := tx.Insert(TableItem, record.Row{
					record.Int(int64(i)), record.String(fmt.Sprintf("item-%d", i)),
					record.Float(1 + rng.Float64()*99), record.String("data"),
				}); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return fmt.Errorf("tpcc: loading items: %w", err)
		}
	}

	for w := 1; w <= cfg.Warehouses; w++ {
		wID := int64(w)
		if err := e.Exec(func(tx *core.Tx) error {
			return tx.Insert(TableWarehouse, record.Row{
				record.Int(wID), record.String(fmt.Sprintf("wh-%d", w)),
				record.Float(rng.Float64() * 0.2), record.Float(300000),
			})
		}); err != nil {
			return err
		}
		// Stock for every item.
		for lo := 1; lo <= cfg.Items; lo += itemBatch {
			hi := min(lo+itemBatch-1, cfg.Items)
			if err := e.Exec(func(tx *core.Tx) error {
				for i := lo; i <= hi; i++ {
					if err := tx.Insert(TableStock, record.Row{
						record.Int(wID), record.Int(int64(i)), record.Int(int64(10 + rng.Intn(91))),
						record.Float(0), record.Int(0), record.Int(0), record.String("dist"),
					}); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				return fmt.Errorf("tpcc: loading stock of warehouse %d: %w", w, err)
			}
		}
		for d := 1; d <= cfg.DistrictsPerWarehouse; d++ {
			dID := int64(d)
			nextOID := int64(cfg.InitialOrdersPerDistrict + 1)
			if err := e.Exec(func(tx *core.Tx) error {
				return tx.Insert(TableDistrict, record.Row{
					record.Int(wID), record.Int(dID), record.String(fmt.Sprintf("d-%d-%d", w, d)),
					record.Float(rng.Float64() * 0.2), record.Float(30000), record.Int(nextOID),
				})
			}); err != nil {
				return err
			}
			// Customers.
			const custBatch = 100
			for lo := 1; lo <= cfg.CustomersPerDistrict; lo += custBatch {
				hi := min(lo+custBatch-1, cfg.CustomersPerDistrict)
				if err := e.Exec(func(tx *core.Tx) error {
					for c := lo; c <= hi; c++ {
						credit := "GC"
						if rng.Float64() < 0.1 {
							credit = "BC"
						}
						if err := tx.Insert(TableCustomer, record.Row{
							record.Int(wID), record.Int(dID), record.Int(int64(c)),
							record.String(fmt.Sprintf("first-%d", c)), record.String(LastName(nonUniformCustomerName(rng, c))),
							record.Float(-10), record.Float(10), record.Int(1), record.Int(0),
							record.String("customer data"), record.Float(rng.Float64() * 0.5), record.String(credit),
						}); err != nil {
							return err
						}
					}
					return nil
				}); err != nil {
					return fmt.Errorf("tpcc: loading customers: %w", err)
				}
			}
			// Initial orders: one per customer, the most recent third still
			// undelivered (present in new_order), 5-15 lines each.
			const orderBatch = 50
			for lo := 1; lo <= cfg.InitialOrdersPerDistrict; lo += orderBatch {
				hi := min(lo+orderBatch-1, cfg.InitialOrdersPerDistrict)
				if err := e.Exec(func(tx *core.Tx) error {
					for o := lo; o <= hi; o++ {
						oID := int64(o)
						cID := int64(1 + rng.Intn(cfg.CustomersPerDistrict))
						olCnt := int64(5 + rng.Intn(11))
						carrier := int64(1 + rng.Intn(10))
						undelivered := o > cfg.InitialOrdersPerDistrict*2/3
						if undelivered {
							carrier = 0
						}
						if err := tx.Insert(TableOrders, record.Row{
							record.Int(wID), record.Int(dID), record.Int(oID), record.Int(cID),
							record.Int(int64(o)), record.Int(carrier), record.Int(olCnt),
						}); err != nil {
							return err
						}
						if undelivered {
							if err := tx.Insert(TableNewOrder, record.Row{record.Int(wID), record.Int(dID), record.Int(oID)}); err != nil {
								return err
							}
						}
						for ol := int64(1); ol <= olCnt; ol++ {
							if err := tx.Insert(TableOrderLine, record.Row{
								record.Int(wID), record.Int(dID), record.Int(oID), record.Int(ol),
								record.Int(int64(1 + rng.Intn(cfg.Items))), record.Int(wID),
								record.Int(5), record.Float(rng.Float64() * 9999 / 100), record.String("dist-info"),
							}); err != nil {
								return err
							}
						}
					}
					return nil
				}); err != nil {
					return fmt.Errorf("tpcc: loading orders: %w", err)
				}
			}
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// nonUniformCustomerName maps a loading position to a last-name number with
// the spec's NURand-ish skew (simplified).
func nonUniformCustomerName(rng *rand.Rand, c int) int {
	if c <= 1000 {
		return c - 1
	}
	return rng.Intn(1000)
}

// NewGenerator returns a workload generator for the named transaction or mix.
func NewGenerator(cfg Config, name string) (workload.Generator, error) {
	cfg = cfg.withDefaults()
	entries := map[string]workload.MixEntry{
		TxNewOrder:    {Name: TxNewOrder, Weight: 45, Make: func(rng *rand.Rand) workload.TxFunc { return newOrder(cfg, rng) }},
		TxPayment:     {Name: TxPayment, Weight: 43, Make: func(rng *rand.Rand) workload.TxFunc { return payment(cfg, rng) }},
		TxOrderStatus: {Name: TxOrderStatus, Weight: 4, Make: func(rng *rand.Rand) workload.TxFunc { return orderStatus(cfg, rng) }},
		TxDelivery:    {Name: TxDelivery, Weight: 4, Make: func(rng *rand.Rand) workload.TxFunc { return delivery(cfg, rng) }},
		TxStockLevel:  {Name: TxStockLevel, Weight: 4, Make: func(rng *rand.Rand) workload.TxFunc { return stockLevel(cfg, rng) }},
	}
	switch name {
	case MixFull:
		var mix workload.Mix
		for _, n := range Transactions() {
			mix = append(mix, entries[n])
		}
		return mix, nil
	case MixSmall:
		return workload.Mix{
			{Name: TxPayment, Weight: 46.7, Make: entries[TxPayment].Make},
			{Name: TxNewOrder, Weight: 48.9, Make: entries[TxNewOrder].Make},
			{Name: TxOrderStatus, Weight: 4.3, Make: entries[TxOrderStatus].Make},
		}, nil
	default:
		e, ok := entries[name]
		if !ok {
			return nil, fmt.Errorf("tpcc: unknown transaction %q", name)
		}
		return workload.Mix{e}, nil
	}
}
