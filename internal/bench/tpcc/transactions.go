package tpcc

import (
	"errors"
	"math/rand"

	"slidb/internal/core"
	"slidb/internal/record"
	"slidb/internal/workload"
)

// newOrder is the TPC-C New Order transaction: reserve the next order id in
// the district, create the order and its 5-15 order lines, and decrement the
// stock of every ordered item. 1% of transactions reference an invalid item
// and abort (the spec's intentional failure rate).
func newOrder(cfg Config, rng *rand.Rand) workload.TxFunc {
	wID := int64(1 + rng.Intn(cfg.Warehouses))
	dID := int64(1 + rng.Intn(cfg.DistrictsPerWarehouse))
	cID := int64(1 + rng.Intn(cfg.CustomersPerDistrict))
	olCnt := 5 + rng.Intn(11)
	type line struct {
		item     int64
		supplyW  int64
		quantity int64
	}
	lines := make([]line, olCnt)
	invalid := rng.Float64() < 0.01
	for i := range lines {
		item := int64(1 + rng.Intn(cfg.Items))
		if invalid && i == len(lines)-1 {
			item = int64(cfg.Items) + 1000 // unused item id → rollback
		}
		supply := wID
		if cfg.Warehouses > 1 && rng.Float64() < 0.01 {
			supply = int64(1 + rng.Intn(cfg.Warehouses))
		}
		lines[i] = line{item: item, supplyW: supply, quantity: int64(1 + rng.Intn(10))}
	}
	entryD := rng.Int63n(1 << 30)
	return func(tx *core.Tx) error {
		// Warehouse tax (read-only).
		wh, found, err := tx.Get(TableWarehouse, record.Int(wID))
		if err != nil || !found {
			return firstErr(err, errors.New("tpcc: warehouse missing"))
		}
		_ = wh[2].AsFloat()
		// District: read and bump next_o_id.
		var oID int64
		if err := tx.Update(TableDistrict, []record.Value{record.Int(wID), record.Int(dID)}, func(r record.Row) (record.Row, error) {
			oID = r[5].AsInt()
			r[5] = record.Int(oID + 1)
			return r, nil
		}); err != nil {
			return err
		}
		// Customer discount (read-only).
		if _, found, err := tx.Get(TableCustomer, record.Int(wID), record.Int(dID), record.Int(cID)); err != nil || !found {
			return firstErr(err, errors.New("tpcc: customer missing"))
		}
		// Order + NewOrder rows.
		if err := tx.Insert(TableOrders, record.Row{
			record.Int(wID), record.Int(dID), record.Int(oID), record.Int(cID),
			record.Int(entryD), record.Int(0), record.Int(int64(len(lines))),
		}); err != nil {
			return err
		}
		if err := tx.Insert(TableNewOrder, record.Row{record.Int(wID), record.Int(dID), record.Int(oID)}); err != nil {
			return err
		}
		for i, l := range lines {
			item, found, err := tx.Get(TableItem, record.Int(l.item))
			if err != nil {
				return err
			}
			if !found {
				// Invalid item: the spec requires the whole order to roll back;
				// this is an expected failure, not an error.
				return core.Abort
			}
			price := item[2].AsFloat()
			if err := tx.Update(TableStock, []record.Value{record.Int(l.supplyW), record.Int(l.item)}, func(r record.Row) (record.Row, error) {
				q := r[2].AsInt()
				if q >= l.quantity+10 {
					q -= l.quantity
				} else {
					q = q - l.quantity + 91
				}
				r[2] = record.Int(q)
				r[3] = record.Float(r[3].AsFloat() + float64(l.quantity))
				r[4] = record.Int(r[4].AsInt() + 1)
				if l.supplyW != wID {
					r[5] = record.Int(r[5].AsInt() + 1)
				}
				return r, nil
			}); err != nil {
				return err
			}
			if err := tx.Insert(TableOrderLine, record.Row{
				record.Int(wID), record.Int(dID), record.Int(oID), record.Int(int64(i + 1)),
				record.Int(l.item), record.Int(l.supplyW), record.Int(l.quantity),
				record.Float(price * float64(l.quantity)), record.String("dist-info"),
			}); err != nil {
				return err
			}
		}
		return nil
	}
}

// payment is the TPC-C Payment transaction: record a customer payment in the
// warehouse, district and customer rows and append a history row. 60% of
// lookups are by customer id, 40% by last name through the secondary index.
func payment(cfg Config, rng *rand.Rand) workload.TxFunc {
	wID := int64(1 + rng.Intn(cfg.Warehouses))
	dID := int64(1 + rng.Intn(cfg.DistrictsPerWarehouse))
	amount := 1 + rng.Float64()*4999
	byName := rng.Float64() < 0.4
	cID := int64(1 + rng.Intn(cfg.CustomersPerDistrict))
	lastName := LastName(rng.Intn(1000))
	hID := historyID.Add(1)
	return func(tx *core.Tx) error {
		if err := tx.Update(TableWarehouse, []record.Value{record.Int(wID)}, func(r record.Row) (record.Row, error) {
			r[3] = record.Float(r[3].AsFloat() + amount)
			return r, nil
		}); err != nil {
			return err
		}
		if err := tx.Update(TableDistrict, []record.Value{record.Int(wID), record.Int(dID)}, func(r record.Row) (record.Row, error) {
			r[4] = record.Float(r[4].AsFloat() + amount)
			return r, nil
		}); err != nil {
			return err
		}
		targetC := cID
		if byName {
			// Lock matching customers exclusively up front (the spec's
			// SELECT ... FOR UPDATE) to avoid S→X conversion deadlocks
			// between concurrent payments to the same customer.
			rows, err := tx.LookupIndexForUpdate(IndexCustomerByName, record.Int(wID), record.Int(dID), record.String(lastName))
			if err != nil {
				return err
			}
			if len(rows) == 0 {
				// No customer with that name in this (scaled-down) district;
				// treat as an input-dependent failure.
				return core.Abort
			}
			// The spec picks the middle row ordered by first name.
			targetC = rows[len(rows)/2][2].AsInt()
		}
		if err := tx.Update(TableCustomer, []record.Value{record.Int(wID), record.Int(dID), record.Int(targetC)}, func(r record.Row) (record.Row, error) {
			r[5] = record.Float(r[5].AsFloat() - amount)
			r[6] = record.Float(r[6].AsFloat() + amount)
			r[7] = record.Int(r[7].AsInt() + 1)
			return r, nil
		}); err != nil {
			if errors.Is(err, core.ErrNotFound) {
				return core.Abort
			}
			return err
		}
		return tx.Insert(TableHistory, record.Row{
			record.Int(hID), record.Int(wID), record.Int(dID), record.Int(targetC),
			record.Float(amount), record.String("payment"),
		})
	}
}

// orderStatus is the read-only TPC-C Order Status transaction: find the
// customer's most recent order and read its order lines.
func orderStatus(cfg Config, rng *rand.Rand) workload.TxFunc {
	wID := int64(1 + rng.Intn(cfg.Warehouses))
	dID := int64(1 + rng.Intn(cfg.DistrictsPerWarehouse))
	cID := int64(1 + rng.Intn(cfg.CustomersPerDistrict))
	return func(tx *core.Tx) error {
		if _, found, err := tx.Get(TableCustomer, record.Int(wID), record.Int(dID), record.Int(cID)); err != nil || !found {
			return firstErr(err, core.Abort)
		}
		// Most recent order of this customer via the secondary index.
		orders, err := tx.LookupIndex(IndexOrdersByCust, record.Int(wID), record.Int(dID), record.Int(cID))
		if err != nil {
			return err
		}
		if len(orders) == 0 {
			return core.Abort
		}
		latest := orders[0]
		for _, o := range orders[1:] {
			if o[2].AsInt() > latest[2].AsInt() {
				latest = o
			}
		}
		oID := latest[2].AsInt()
		count := 0
		err = tx.ScanRange(TableOrderLine,
			[]record.Value{record.Int(wID), record.Int(dID), record.Int(oID), record.Int(0)},
			[]record.Value{record.Int(wID), record.Int(dID), record.Int(oID), record.Int(99)},
			func(row record.Row) bool {
				count++
				return true
			})
		if err != nil {
			return err
		}
		if count == 0 {
			return core.Abort
		}
		return nil
	}
}

// delivery is the TPC-C Delivery transaction: for every district of the
// warehouse, deliver the oldest undelivered order (remove it from new_order,
// stamp the carrier, sum its lines, and credit the customer).
func delivery(cfg Config, rng *rand.Rand) workload.TxFunc {
	wID := int64(1 + rng.Intn(cfg.Warehouses))
	carrier := int64(1 + rng.Intn(10))
	districts := cfg.DistrictsPerWarehouse
	return func(tx *core.Tx) error {
		delivered := 0
		for d := 1; d <= districts; d++ {
			dID := int64(d)
			// Oldest undelivered order for the district, locked exclusively up
			// front since it is about to be deleted (avoids conversion
			// deadlocks between concurrent deliveries).
			var oID int64 = -1
			err := tx.ScanRangeForUpdate(TableNewOrder,
				[]record.Value{record.Int(wID), record.Int(dID), record.Int(0)},
				[]record.Value{record.Int(wID), record.Int(dID), record.Int(1 << 40)},
				func(row record.Row) bool {
					oID = row[2].AsInt()
					return false // first = oldest (primary key order)
				})
			if err != nil {
				return err
			}
			if oID < 0 {
				continue // nothing to deliver in this district
			}
			if err := tx.Delete(TableNewOrder, record.Int(wID), record.Int(dID), record.Int(oID)); err != nil {
				if errors.Is(err, core.ErrNotFound) {
					continue // another delivery got it first
				}
				return err
			}
			var custID int64
			if err := tx.Update(TableOrders, []record.Value{record.Int(wID), record.Int(dID), record.Int(oID)}, func(r record.Row) (record.Row, error) {
				custID = r[3].AsInt()
				r[5] = record.Int(carrier)
				return r, nil
			}); err != nil {
				return err
			}
			total := 0.0
			if err := tx.ScanRange(TableOrderLine,
				[]record.Value{record.Int(wID), record.Int(dID), record.Int(oID), record.Int(0)},
				[]record.Value{record.Int(wID), record.Int(dID), record.Int(oID), record.Int(99)},
				func(row record.Row) bool {
					total += row[7].AsFloat()
					return true
				}); err != nil {
				return err
			}
			if err := tx.Update(TableCustomer, []record.Value{record.Int(wID), record.Int(dID), record.Int(custID)}, func(r record.Row) (record.Row, error) {
				r[5] = record.Float(r[5].AsFloat() + total)
				r[8] = record.Int(r[8].AsInt() + 1)
				return r, nil
			}); err != nil {
				return err
			}
			delivered++
		}
		if delivered == 0 {
			return core.Abort
		}
		return nil
	}
}

// stockLevel is the read-only TPC-C Stock Level transaction: count the
// distinct items in the district's last 20 orders whose stock is below a
// threshold. It reads on the order of a couple of hundred order lines,
// making it the paper's example of a transaction that amortizes high-level
// locks over many row accesses.
func stockLevel(cfg Config, rng *rand.Rand) workload.TxFunc {
	wID := int64(1 + rng.Intn(cfg.Warehouses))
	dID := int64(1 + rng.Intn(cfg.DistrictsPerWarehouse))
	threshold := int64(10 + rng.Intn(11))
	return func(tx *core.Tx) error {
		district, found, err := tx.Get(TableDistrict, record.Int(wID), record.Int(dID))
		if err != nil || !found {
			return firstErr(err, errors.New("tpcc: district missing"))
		}
		nextOID := district[5].AsInt()
		loOID := nextOID - 20
		if loOID < 1 {
			loOID = 1
		}
		items := map[int64]struct{}{}
		if err := tx.ScanRange(TableOrderLine,
			[]record.Value{record.Int(wID), record.Int(dID), record.Int(loOID), record.Int(0)},
			[]record.Value{record.Int(wID), record.Int(dID), record.Int(nextOID), record.Int(99)},
			func(row record.Row) bool {
				items[row[4].AsInt()] = struct{}{}
				return true
			}); err != nil {
			return err
		}
		low := 0
		for item := range items {
			stock, found, err := tx.Get(TableStock, record.Int(wID), record.Int(item))
			if err != nil {
				return err
			}
			if found && stock[2].AsInt() < threshold {
				low++
			}
		}
		_ = low
		return nil
	}
}

func firstErr(err error, fallback error) error {
	if err != nil {
		return err
	}
	return fallback
}
