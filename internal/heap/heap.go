// Package heap implements heap files: unordered collections of records
// stored in slotted pages managed through the buffer pool, one heap file per
// table. It also implements the free space manager, the centralized
// structure that tracks how much room each page has left — the component the
// paper observes absorbing contention from New Order once SLI removes the
// lock-manager bottleneck (§7.2).
package heap

import (
	"errors"
	"fmt"

	"slidb/internal/buffer"
	"slidb/internal/latch"
	"slidb/internal/page"
	"slidb/internal/profiler"
)

// RID identifies a record within a table: page number plus slot.
type RID struct {
	Page uint64
	Slot uint32
}

// String renders the RID for debugging.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// ErrNotFound is returned when a RID does not refer to a live record.
var ErrNotFound = errors.New("heap: record not found")

// freeSpaceManager tracks per-page free space so inserts can find a page
// with room without scanning the file. It is a single latched structure per
// heap file, mirroring Shore's free space manager.
type freeSpaceManager struct {
	latch     latch.Mutex
	free      map[uint64]int // page -> free bytes (approximate)
	numPages  uint64
	appendPos uint64 // page currently receiving appends
}

// File is a heap file: the records of one table.
type File struct {
	tableID uint32
	pool    *buffer.Pool
	fsm     freeSpaceManager
}

// NewFile creates an empty heap file for the given table.
func NewFile(tableID uint32, pool *buffer.Pool) *File {
	return &File{
		tableID: tableID,
		pool:    pool,
		fsm:     freeSpaceManager{free: make(map[uint64]int)},
	}
}

// TableID returns the table this heap file belongs to.
func (f *File) TableID() uint32 { return f.tableID }

// NumPages returns the number of pages allocated to the file.
func (f *File) NumPages() uint64 {
	f.fsm.latch.Lock()
	defer f.fsm.latch.Unlock()
	return f.fsm.numPages
}

// choosePage picks a page with at least need bytes free, allocating a new
// page if necessary. The returned page number is only a hint: the insert
// re-checks under the page latch and retries on a different page if the hint
// was stale.
func (f *File) choosePage(h *profiler.Handle, need int) uint64 {
	contended, wait := f.fsm.latch.Lock()
	if contended {
		h.Add(profiler.LatchContention, wait)
	}
	defer f.fsm.latch.Unlock()
	// Prefer the current append page (the common case and the paper's
	// "roving hotspot": appends concentrate on the last page until it fills).
	if f.fsm.numPages > 0 {
		if free, ok := f.fsm.free[f.fsm.appendPos]; ok && free >= need {
			return f.fsm.appendPos
		}
		// Otherwise any page with room.
		for p, free := range f.fsm.free {
			if free >= need {
				return p
			}
		}
	}
	p := f.fsm.numPages
	f.fsm.numPages++
	f.fsm.free[p] = page.MaxRecordSize
	f.fsm.appendPos = p
	return p
}

// updateFree records the new free-byte count for a page.
func (f *File) updateFree(pageNo uint64, free int) {
	f.fsm.latch.Lock()
	if free <= 0 {
		delete(f.fsm.free, pageNo)
	} else {
		f.fsm.free[pageNo] = free
	}
	f.fsm.latch.Unlock()
}

// Insert stores rec and returns its RID. h may be nil.
func (f *File) Insert(h *profiler.Handle, rec []byte) (RID, error) {
	if len(rec) > page.MaxRecordSize {
		return RID{}, page.ErrTooLarge
	}
	need := len(rec) + 8
	for attempt := 0; attempt < 1000; attempt++ {
		pageNo := f.choosePage(h, need)
		frame, err := f.pool.Fetch(h, buffer.PageID{Table: f.tableID, Page: pageNo})
		if err != nil {
			return RID{}, err
		}
		contended, wait := frame.Latch.Lock()
		if contended {
			h.Add(profiler.LatchContention, wait)
		}
		slot, ierr := frame.Page().Insert(rec)
		free := frame.Page().FreeSpace()
		frame.Latch.Unlock()
		f.pool.Unpin(frame, ierr == nil)
		f.updateFree(pageNo, free)
		if ierr == nil {
			return RID{Page: pageNo, Slot: uint32(slot)}, nil
		}
		if !errors.Is(ierr, page.ErrPageFull) {
			return RID{}, ierr
		}
		// Page was fuller than the FSM believed; try again with a fresh hint.
	}
	return RID{}, errors.New("heap: could not find a page with free space")
}

// Get returns a copy of the record identified by rid.
func (f *File) Get(h *profiler.Handle, rid RID) ([]byte, error) {
	frame, err := f.pool.Fetch(h, buffer.PageID{Table: f.tableID, Page: rid.Page})
	if err != nil {
		return nil, err
	}
	contended, wait := frame.Latch.RLock()
	if contended {
		h.Add(profiler.LatchContention, wait)
	}
	data, gerr := frame.Page().Get(int(rid.Slot))
	var cp []byte
	if gerr == nil {
		cp = append([]byte(nil), data...)
	}
	frame.Latch.RUnlock()
	f.pool.Unpin(frame, false)
	if gerr != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return cp, nil
}

// Update replaces the record at rid with rec.
func (f *File) Update(h *profiler.Handle, rid RID, rec []byte) error {
	frame, err := f.pool.Fetch(h, buffer.PageID{Table: f.tableID, Page: rid.Page})
	if err != nil {
		return err
	}
	contended, wait := frame.Latch.Lock()
	if contended {
		h.Add(profiler.LatchContention, wait)
	}
	uerr := frame.Page().Update(int(rid.Slot), rec)
	if errors.Is(uerr, page.ErrPageFull) {
		// Make room by compacting the page, then retry once.
		frame.Page().Compact()
		uerr = frame.Page().Update(int(rid.Slot), rec)
	}
	free := frame.Page().FreeSpace()
	frame.Latch.Unlock()
	f.pool.Unpin(frame, uerr == nil)
	f.updateFree(rid.Page, free)
	if errors.Is(uerr, page.ErrNoSlot) {
		return fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return uerr
}

// Delete removes the record at rid.
func (f *File) Delete(h *profiler.Handle, rid RID) error {
	frame, err := f.pool.Fetch(h, buffer.PageID{Table: f.tableID, Page: rid.Page})
	if err != nil {
		return err
	}
	contended, wait := frame.Latch.Lock()
	if contended {
		h.Add(profiler.LatchContention, wait)
	}
	derr := frame.Page().Delete(int(rid.Slot))
	if derr == nil {
		// Reclaim the dead space immediately so the free space manager sees
		// it; deletes are rare in the targeted workloads, so the compaction
		// cost is negligible.
		frame.Page().Compact()
	}
	free := frame.Page().FreeSpace()
	frame.Latch.Unlock()
	f.pool.Unpin(frame, derr == nil)
	f.updateFree(rid.Page, free)
	if errors.Is(derr, page.ErrNoSlot) {
		return fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return derr
}

// Scan calls fn for every live record in the file, in page then slot order.
// fn receives a copy of the record bytes. Iteration stops if fn returns
// false.
func (f *File) Scan(h *profiler.Handle, fn func(rid RID, rec []byte) bool) error {
	numPages := f.NumPages()
	for p := uint64(0); p < numPages; p++ {
		frame, err := f.pool.Fetch(h, buffer.PageID{Table: f.tableID, Page: p})
		if err != nil {
			return err
		}
		contended, wait := frame.Latch.RLock()
		if contended {
			h.Add(profiler.LatchContention, wait)
		}
		type entry struct {
			slot int
			rec  []byte
		}
		var entries []entry
		frame.Page().ForEach(func(slot int, rec []byte) bool {
			entries = append(entries, entry{slot, append([]byte(nil), rec...)})
			return true
		})
		frame.Latch.RUnlock()
		f.pool.Unpin(frame, false)
		for _, e := range entries {
			if !fn(RID{Page: p, Slot: uint32(e.slot)}, e.rec) {
				return nil
			}
		}
	}
	return nil
}
