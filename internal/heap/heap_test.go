package heap

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"slidb/internal/buffer"
)

func newTestFile(t *testing.T, frames int) *File {
	t.Helper()
	pool := buffer.NewPool(buffer.NewMemStore(), buffer.Config{Frames: frames})
	return NewFile(1, pool)
}

func TestInsertGetUpdateDelete(t *testing.T) {
	f := newTestFile(t, 16)
	rid, err := f.Insert(nil, []byte("row one"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Get(nil, rid)
	if err != nil || string(got) != "row one" {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := f.Update(nil, rid, []byte("row one, revised and longer")); err != nil {
		t.Fatal(err)
	}
	got, _ = f.Get(nil, rid)
	if string(got) != "row one, revised and longer" {
		t.Fatalf("after update: %q", got)
	}
	if err := f.Delete(nil, rid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(nil, rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := f.Update(nil, rid, []byte("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Update after delete = %v, want ErrNotFound", err)
	}
	if err := f.Delete(nil, rid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete = %v, want ErrNotFound", err)
	}
	if rid.String() == "" {
		t.Fatal("RID.String empty")
	}
}

func TestInsertSpansMultiplePages(t *testing.T) {
	f := newTestFile(t, 64)
	rec := bytes.Repeat([]byte("x"), 1000)
	var rids []RID
	for i := 0; i < 100; i++ {
		rid, err := f.Insert(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if f.NumPages() < 10 {
		t.Fatalf("expected at least 10 pages for 100 KB of records, got %d", f.NumPages())
	}
	for _, rid := range rids {
		got, err := f.Get(nil, rid)
		if err != nil || len(got) != 1000 {
			t.Fatalf("record %v lost: %v", rid, err)
		}
	}
	if f.TableID() != 1 {
		t.Fatal("TableID wrong")
	}
}

func TestScanVisitsEverything(t *testing.T) {
	f := newTestFile(t, 32)
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		rec := fmt.Sprintf("record-%04d", i)
		if _, err := f.Insert(nil, []byte(rec)); err != nil {
			t.Fatal(err)
		}
		want[rec] = true
	}
	seen := map[string]bool{}
	if err := f.Scan(nil, func(rid RID, rec []byte) bool {
		seen[string(rec)] = true
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("scan saw %d records, want %d", len(seen), len(want))
	}
	// Early termination.
	count := 0
	f.Scan(nil, func(RID, []byte) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early termination visited %d", count)
	}
}

func TestFreeSpaceReusedAfterDelete(t *testing.T) {
	f := newTestFile(t, 8)
	rec := bytes.Repeat([]byte("y"), 2000)
	var rids []RID
	for i := 0; i < 12; i++ {
		rid, err := f.Insert(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pagesBefore := f.NumPages()
	for _, rid := range rids[:6] {
		if err := f.Delete(nil, rid); err != nil {
			t.Fatal(err)
		}
	}
	// New inserts should fit into freed space without growing the file much.
	for i := 0; i < 6; i++ {
		if _, err := f.Insert(nil, rec); err != nil {
			t.Fatal(err)
		}
	}
	if f.NumPages() > pagesBefore+1 {
		t.Fatalf("file grew from %d to %d pages despite freed space", pagesBefore, f.NumPages())
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	f := newTestFile(t, 8)
	if _, err := f.Insert(nil, bytes.Repeat([]byte("z"), 9000)); err == nil {
		t.Fatal("oversized record accepted")
	}
}

func TestUpdateGrowingRecordCompactsPage(t *testing.T) {
	f := newTestFile(t, 8)
	// Fill a page almost completely, then grow one record: the page must
	// compact dead space rather than fail.
	small := bytes.Repeat([]byte("a"), 500)
	var rids []RID
	for i := 0; i < 15; i++ {
		rid, err := f.Insert(nil, small)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	// Shrink one record (leaving dead space), then grow another into it.
	if err := f.Update(nil, rids[0], []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	if err := f.Update(nil, rids[1], bytes.Repeat([]byte("b"), 700)); err != nil {
		t.Fatal(err)
	}
	got, err := f.Get(nil, rids[1])
	if err != nil || len(got) != 700 {
		t.Fatalf("grown record lost: %d bytes, %v", len(got), err)
	}
}

func TestConcurrentInsertsAndReads(t *testing.T) {
	f := newTestFile(t, 256)
	var mu sync.Mutex
	all := map[RID][]byte{}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rec := []byte(fmt.Sprintf("g%d-i%d", g, i))
				rid, err := f.Insert(nil, rec)
				if err != nil {
					errCh <- err
					return
				}
				mu.Lock()
				all[rid] = rec
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if len(all) != 8*200 {
		t.Fatalf("RIDs collided: %d unique for %d inserts", len(all), 8*200)
	}
	for rid, want := range all {
		got, err := f.Get(nil, rid)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("record %v = %q want %q (%v)", rid, got, want, err)
		}
	}
}
