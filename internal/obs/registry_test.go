package obs

import (
	"bytes"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"slidb/internal/obs/obstest"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one family of every shape the engine
// collector uses, with fixed values, so the rendered exposition output is
// deterministic.
func goldenRegistry() *Registry {
	r := NewRegistry()
	ops := r.Counter("golden_ops_total", "Operations performed.")
	ops.Add(41)
	ops.Inc()
	temp := r.Gauge("golden_temperature_celsius", "Current temperature.")
	temp.Set(36.5)
	r.CounterFunc("golden_snapshot_total", "Counter read from a snapshot callback.",
		func() float64 { return 7 })
	r.GaugeFunc("golden_depth", "Gauge read from a snapshot callback.",
		func() float64 { return 3 })
	r.LabeledCounterFunc("golden_events_total",
		"Events with a help line containing a backslash \\ to escape.", "kind",
		func() []Sample {
			return []Sample{
				{Label: "plain", Value: 1},
				{Label: "quote\" slash\\ newline\n", Value: 2},
			}
		})
	h := r.Histogram("golden_latency_seconds", "Observed latencies.",
		[]float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.005, 0.05, 0.5} {
		h.Observe(v)
	}
	return r
}

func TestExpositionGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition output differs from golden file %s\n--- got ---\n%s\n--- want ---\n%s",
			path, buf.Bytes(), want)
	}
	if err := obstest.Validate(buf.Bytes()); err != nil {
		t.Errorf("golden output does not validate: %v", err)
	}
}

func TestHandlerContentType(t *testing.T) {
	rec := httptest.NewRecorder()
	goldenRegistry().Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if got, want := rec.Header().Get("Content-Type"), "text/plain; version=0.0.4; charset=utf-8"; got != want {
		t.Errorf("content type %q, want %q", got, want)
	}
	if err := obstest.Validate(rec.Body.Bytes()); err != nil {
		t.Errorf("handler output does not validate: %v", err)
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter value %v after negative add, want 5", got)
	}
}

func TestHistogramBucketsAndCount(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "h", []float64{1, 2})
	for _, v := range []float64{0.5, 1.5, 3, 2} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="2"} 3`,
		`h_seconds_bucket{le="+Inf"} 4`,
		`h_seconds_sum 7`,
		`h_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if err := obstest.Validate(buf.Bytes()); err != nil {
		t.Error(err)
	}
}

func TestRegistrationPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func(r *Registry)
	}{
		{"invalid name", func(r *Registry) { r.Counter("bad-name", "h") }},
		{"leading digit", func(r *Registry) { r.Counter("0bad", "h") }},
		{"empty name", func(r *Registry) { r.Gauge("", "h") }},
		{"duplicate", func(r *Registry) { r.Counter("dup_total", "h"); r.Gauge("dup_total", "h") }},
		{"invalid label", func(r *Registry) {
			r.LabeledCounterFunc("ok_total", "h", "bad-label", func() []Sample { return nil })
		}},
		{"colon label", func(r *Registry) {
			r.LabeledGaugeFunc("ok2", "h", "a:b", func() []Sample { return nil })
		}},
		{"unsorted buckets", func(r *Registry) { r.Histogram("h_x", "h", []float64{1, 1}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn(NewRegistry())
		})
	}
}

func TestValidatorCatchesBadOutput(t *testing.T) {
	bad := []struct {
		name string
		data string
	}{
		{"sample without help", "orphan_total 1\n"},
		{"missing type", "# HELP x_total h\nx_total 1\n"},
		{"nonmonotone histogram", "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n"},
		{"inf count mismatch", "# HELP h h\n# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n"},
		{"bad metric name", "# HELP bad-name h\n# TYPE bad-name counter\nbad-name 1\n"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if err := obstest.Validate([]byte(tc.data)); err == nil {
				t.Errorf("%s: validator accepted malformed output", tc.name)
			}
		})
	}
}
