// Package obs is slidb's observability subsystem: a dependency-free metrics
// registry that renders the Prometheus text exposition format, an engine
// collector that maps the engine's existing counters, lock-manager statistics
// and profiler categories onto stable metric names, and a slow-transaction
// tracer that keeps the slowest recent transactions with their per-category
// time breakdowns.
//
// The package deliberately imports no third-party code (the container the
// engine ships in bakes nothing in) and nothing from internal/core — core
// imports obs to hang the Observe/ObsHandler surface off the Engine, so obs
// sees the engine only through the small EngineSource interface.
//
// Scrapes are wait-free with respect to the transaction hot path: every
// sample is read from an atomic counter or computed by a snapshot callback at
// scrape time, so collecting metrics never adds a lock acquisition to the
// commit path. Cross-metric consistency is NOT guaranteed (a scrape is not a
// transaction); each individual sample is a consistent atomic read.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Sample is one labeled sample emitted by a labeled collect callback.
type Sample struct {
	// Label is the value of the family's single label for this sample.
	Label string
	// Value is the sample value.
	Value float64
}

// metricKind is the Prometheus metric type of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one named metric family: the HELP/TYPE header plus a writer for
// its sample lines.
type family struct {
	name string
	help string
	kind metricKind
	// write emits the family's sample lines (no HELP/TYPE) to w.
	write func(w *bufio.Writer)
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). Registration happens at setup time and
// panics on invalid or duplicate names — both are programmer errors; scraping
// is safe for concurrent use with itself and with the counters being updated.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// validName reports whether s is a legal Prometheus metric name
// ([a-zA-Z_:][a-zA-Z0-9_:]*).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s is a legal Prometheus label name
// ([a-zA-Z_][a-zA-Z0-9_]*).
func validLabelName(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validName(s)
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote and newline.
func escapeLabelValue(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string: backslash and newline.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatValue renders a sample value. Integral values render without an
// exponent or decimal point, which is what every Prometheus parser expects
// for counters.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// register adds a family, panicking on an invalid or duplicate name.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[f.name]; dup {
		panic(fmt.Sprintf("obs: duplicate metric name %q", f.name))
	}
	r.byName[f.name] = f
	r.families = append(r.families, f)
	sort.Slice(r.families, func(i, j int) bool { return r.families[i].name < r.families[j].name })
}

// Counter is a monotonically increasing float64 metric backed by an atomic.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v; negative increments are ignored (counters
// only go up).
func (c *Counter) Add(v float64) {
	if v <= 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a settable float64 metric backed by an atomic.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Counter registers and returns a settable counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&family{name: name, help: help, kind: kindCounter, write: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(c.Value()))
	}})
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&family{name: name, help: help, kind: kindGauge, write: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(g.Value()))
	}})
	return g
}

// CounterFunc registers a counter whose value is read by fn at scrape time —
// the snapshot pattern used to export the engine's existing atomic counters
// without duplicating them.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindCounter, write: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(fn()))
	}})
}

// GaugeFunc registers a gauge whose value is read by fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&family{name: name, help: help, kind: kindGauge, write: func(w *bufio.Writer) {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(fn()))
	}})
}

// LabeledCounterFunc registers a counter family with a single label whose
// samples are produced by fn at scrape time, in the order fn returns them.
func (r *Registry) LabeledCounterFunc(name, help, label string, fn func() []Sample) {
	r.labeledFunc(name, help, label, kindCounter, fn)
}

// LabeledGaugeFunc is LabeledCounterFunc for a gauge family.
func (r *Registry) LabeledGaugeFunc(name, help, label string, fn func() []Sample) {
	r.labeledFunc(name, help, label, kindGauge, fn)
}

func (r *Registry) labeledFunc(name, help, label string, kind metricKind, fn func() []Sample) {
	if !validLabelName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q", label))
	}
	r.register(&family{name: name, help: help, kind: kind, write: func(w *bufio.Writer) {
		for _, s := range fn() {
			fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", name, label, escapeLabelValue(s.Label), formatValue(s.Value))
		}
	}})
}

// Histogram is a fixed-bucket histogram. Observations are wait-free (atomic
// adds only), so it is safe to feed from the transaction completion hook.
type Histogram struct {
	upper   []float64 // ascending bucket upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (the implicit +Inf bucket is added automatically).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly ascending", name))
		}
	}
	h := &Histogram{upper: append([]float64(nil), buckets...)}
	h.buckets = make([]atomic.Uint64, len(buckets))
	r.register(&family{name: name, help: help, kind: kindHistogram, write: func(w *bufio.Writer) {
		// Per-bucket counts are independent atomics; summing from the lowest
		// bucket up keeps the rendered cumulative counts monotone even when
		// observations land mid-scrape.
		var cum uint64
		for i, ub := range h.upper {
			cum += h.buckets[i].Load()
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, formatValue(ub), cum)
		}
		count := h.count.Load()
		if count < cum {
			// count is incremented after the bucket on the observe path; clamp
			// so le="+Inf" (which must equal _count) never reads below a bucket.
			count = cum
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, count)
		fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(math.Float64frombits(h.sumBits.Load())))
		fmt.Fprintf(w, "%s_count %d\n", name, count)
	}})
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket counts are small (tens) and the scan is branch-
	// predictable; a binary search would not pay for itself here.
	for i, ub := range h.upper {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// WritePrometheus renders every registered family in the text exposition
// format, sorted by family name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	fams := append([]*family(nil), r.families...)
	r.mu.RUnlock()
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		f.write(bw)
	}
	return bw.Flush()
}

// Handler returns an http.Handler serving the registry as a Prometheus
// scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
