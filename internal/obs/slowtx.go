package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"slidb/internal/profiler"
)

// SlowTx is one traced slow transaction, in the JSON shape served by the
// /debug/slowtx endpoint.
type SlowTx struct {
	// XID is the transaction identifier.
	XID uint64 `json:"xid"`
	// Start is when the transaction attempt began.
	Start time.Time `json:"start"`
	// DurationSeconds is the attempt's execution time: from start to outcome
	// decided (commit record appended / rollback complete). Under
	// ELR/AsyncCommit the asynchronous durable-ack wait is not included.
	DurationSeconds float64 `json:"duration_seconds"`
	// Committed reports the attempt's outcome.
	Committed bool `json:"committed"`
	// BreakdownSeconds is the per-category profiler attribution of the
	// attempt (seconds per profiler.Category name). Empty when the engine
	// runs with profiling disabled — the tracer then records durations only.
	BreakdownSeconds map[string]float64 `json:"breakdown_seconds,omitempty"`
}

// slowEntry is the internal min-heap element: the stored trace plus its raw
// duration for ordering.
type slowEntry struct {
	d  time.Duration
	tx SlowTx
}

// slowHeap is a min-heap by duration, so the root is the cheapest entry to
// evict when the tracer is at capacity. It is hand-rolled rather than built
// on container/heap: heap.Push takes its element as `any`, which boxes every
// slowEntry on insert — an allocation on a path reachable from the
// //slint:hotpath ObserveTx (hotalloc flags it).
type slowHeap []slowEntry

func (h slowHeap) less(i, j int) bool { return h[i].d < h[j].d }

func (h *slowHeap) push(e slowEntry) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// popMin removes and returns the root (cheapest) entry.
func (h *slowHeap) popMin() slowEntry {
	s := *h
	n := len(s) - 1
	root := s[0]
	s[0] = s[n]
	s[n] = slowEntry{}
	*h = s[:n]
	(*h).siftDown(0)
	return root
}

func (h slowHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(l, min) {
			min = l
		}
		if r < n && h.less(r, min) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// reinit restores the heap property after bulk mutation (pruning).
func (h slowHeap) reinit() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// SlowTxTracer keeps the N slowest transactions of the recent window
// (entries older than the window are discarded lazily). The hot path is the
// floor check: once the tracer is at capacity, a transaction faster than the
// slowest-set's minimum duration is rejected with a single atomic load — no
// lock is taken on the transaction completion path unless the transaction
// actually belongs in the slow set.
type SlowTxTracer struct {
	capacity int
	window   time.Duration

	// floor is the admission cutoff in nanoseconds: when the set is full, a
	// duration at or below it cannot displace anything. 0 while below
	// capacity (everything is admitted). It may lag behind evictions — a
	// stale-low floor only costs a mutex acquisition, never a lost trace.
	floor atomic.Int64

	mu sync.Mutex
	h  slowHeap
}

// NewSlowTxTracer creates a tracer keeping the capacity slowest transactions
// observed within the trailing window. capacity <= 0 defaults to 32;
// window <= 0 defaults to 5 minutes.
func NewSlowTxTracer(capacity int, window time.Duration) *SlowTxTracer {
	if capacity <= 0 {
		capacity = 32
	}
	if window <= 0 {
		window = 5 * time.Minute
	}
	return &SlowTxTracer{capacity: capacity, window: window}
}

// Observe offers one completed transaction attempt to the tracer.
func (t *SlowTxTracer) Observe(xid uint64, start time.Time, d time.Duration, committed bool, b profiler.Breakdown) {
	if d <= time.Duration(t.floor.Load()) {
		// Fast path: full set, and this attempt is no slower than its
		// cheapest member. One atomic load, no lock.
		return
	}
	tx := SlowTx{
		XID:             xid,
		Start:           start,
		DurationSeconds: d.Seconds(),
		Committed:       committed,
	}
	if bd := breakdownSeconds(b); len(bd) > 0 {
		tx.BreakdownSeconds = bd
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.pruneLocked(time.Now())
	t.h.push(slowEntry{d: d, tx: tx})
	if len(t.h) > t.capacity {
		t.h.popMin()
	}
	t.updateFloorLocked()
}

// pruneLocked drops entries whose start has aged out of the window.
func (t *SlowTxTracer) pruneLocked(now time.Time) {
	cutoff := now.Add(-t.window)
	kept := t.h[:0]
	for _, e := range t.h {
		if e.tx.Start.After(cutoff) {
			kept = append(kept, e)
		}
	}
	if len(kept) != len(t.h) {
		t.h = kept
		t.h.reinit()
	}
}

// updateFloorLocked recomputes the admission cutoff: the heap minimum when
// full, zero (admit everything) when there is still room.
func (t *SlowTxTracer) updateFloorLocked() {
	if len(t.h) >= t.capacity {
		t.floor.Store(int64(t.h[0].d))
	} else {
		t.floor.Store(0)
	}
}

// Snapshot returns the currently traced transactions, slowest first,
// discarding entries that have aged out of the window.
func (t *SlowTxTracer) Snapshot() []SlowTx {
	t.mu.Lock()
	t.pruneLocked(time.Now())
	t.updateFloorLocked()
	out := make([]slowEntry, len(t.h))
	copy(out, t.h)
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].d > out[j].d })
	txs := make([]SlowTx, len(out))
	for i, e := range out {
		txs[i] = e.tx
	}
	return txs
}

// slowTxReport is the JSON document served by the /debug/slowtx endpoint.
type slowTxReport struct {
	// Capacity is the maximum number of traced transactions.
	Capacity int `json:"capacity"`
	// WindowSeconds is the trailing window entries are kept for.
	WindowSeconds float64 `json:"window_seconds"`
	// Slowest lists the traced transactions, slowest first.
	Slowest []SlowTx `json:"slowest"`
}

// ServeHTTP serves the tracer contents as JSON.
func (t *SlowTxTracer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	rep := slowTxReport{
		Capacity:      t.capacity,
		WindowSeconds: t.window.Seconds(),
		Slowest:       t.Snapshot(),
	}
	if rep.Slowest == nil {
		rep.Slowest = []SlowTx{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
}

// breakdownSeconds converts a profiler breakdown to the category-name→seconds
// map used in traces, omitting zero categories (and returning nil for an
// all-zero breakdown, i.e. profiling disabled).
func breakdownSeconds(b profiler.Breakdown) map[string]float64 {
	var m map[string]float64
	for c := profiler.Category(0); int(c) < len(b); c++ {
		if d := b.Get(c); d > 0 {
			if m == nil {
				m = make(map[string]float64)
			}
			m[c.String()] = d.Seconds()
		}
	}
	return m
}
