// Package obstest validates Prometheus text exposition output (format
// version 0.0.4) in tests. It is a strict structural checker, not a full
// client: metric and label names must use the legal charset, every sample
// must belong to a family announced by HELP and TYPE lines, and histogram
// families must render monotone cumulative buckets whose +Inf bucket equals
// their _count. Both the obs package's own tests and the end-to-end scrape
// tests use it, so a formatting regression fails everywhere at once.
package obstest

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// metric kinds the validator accepts in TYPE lines.
var validKinds = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// histBucket is one rendered _bucket sample of a histogram family.
type histBucket struct {
	le  float64 // +Inf as math.Inf(1)
	inf bool
	cum float64
}

// famState tracks one family across its HELP/TYPE header and sample lines.
type famState struct {
	kind      string
	hasType   bool
	samples   int
	buckets   []histBucket
	count     *float64
	hasSum    bool
	infBucket *float64
}

// Validate checks that data is well-formed exposition output and returns an
// error describing the first violation found.
func Validate(data []byte) error {
	families := make(map[string]*famState)
	var current string // family of the most recent HELP line

	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
			}
			if _, dup := families[name]; dup {
				return fmt.Errorf("line %d: duplicate HELP for family %q", lineNo, name)
			}
			families[name] = &famState{}
			current = name
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, kind, ok := strings.Cut(rest, " ")
			if !ok || !validKinds[kind] {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			fam, known := families[name]
			if !known {
				return fmt.Errorf("line %d: TYPE for %q without preceding HELP", lineNo, name)
			}
			if name != current {
				return fmt.Errorf("line %d: TYPE for %q interleaved with family %q", lineNo, name, current)
			}
			if fam.hasType {
				return fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, name)
			}
			fam.kind = kind
			fam.hasType = true
		case strings.HasPrefix(line, "#"):
			// Free-form comment: legal, ignored.
		default:
			if err := validateSample(line, lineNo, current, families); err != nil {
				return err
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	names := make([]string, 0, len(families))
	for name := range families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := families[name]
		if !fam.hasType {
			return fmt.Errorf("family %q has HELP but no TYPE", name)
		}
		if fam.samples == 0 {
			return fmt.Errorf("family %q has no samples", name)
		}
		if fam.kind == "histogram" {
			if err := validateHistogram(name, fam); err != nil {
				return err
			}
		}
	}
	return nil
}

// validateSample parses one sample line and folds it into its family state.
func validateSample(line string, lineNo int, current string, families map[string]*famState) error {
	name, labels, value, err := parseSample(line)
	if err != nil {
		return fmt.Errorf("line %d: %w", lineNo, err)
	}
	if !validMetricName(name) {
		return fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
	}
	fam := families[current]
	if fam == nil {
		return fmt.Errorf("line %d: sample %q before any HELP", lineNo, name)
	}
	base := name
	var suffix string
	if fam.kind == "histogram" || fam.kind == "summary" {
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if name == current+s {
				base, suffix = current, s
				break
			}
		}
	}
	if base != current {
		return fmt.Errorf("line %d: sample %q outside its family (current family %q)", lineNo, name, current)
	}
	fam.samples++
	if fam.kind != "histogram" {
		return nil
	}
	switch suffix {
	case "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("line %d: histogram bucket of %q without le label", lineNo, current)
		}
		b := histBucket{cum: value}
		if le == "+Inf" {
			b.inf = true
			fam.infBucket = &value
		} else if b.le, err = strconv.ParseFloat(le, 64); err != nil {
			return fmt.Errorf("line %d: unparseable le %q: %v", lineNo, le, err)
		}
		fam.buckets = append(fam.buckets, b)
	case "_sum":
		fam.hasSum = true
	case "_count":
		fam.count = &value
	default:
		return fmt.Errorf("line %d: bare sample %q for histogram family", lineNo, name)
	}
	return nil
}

// validateHistogram checks the accumulated bucket structure of one family.
func validateHistogram(name string, fam *famState) error {
	if len(fam.buckets) == 0 || fam.infBucket == nil {
		return fmt.Errorf("histogram %q missing buckets or +Inf bucket", name)
	}
	if !fam.hasSum || fam.count == nil {
		return fmt.Errorf("histogram %q missing _sum or _count", name)
	}
	for i := 1; i < len(fam.buckets); i++ {
		prev, cur := fam.buckets[i-1], fam.buckets[i]
		if !cur.inf && (prev.inf || cur.le <= prev.le) {
			return fmt.Errorf("histogram %q bucket bounds not ascending", name)
		}
		if cur.cum < prev.cum {
			return fmt.Errorf("histogram %q cumulative counts decrease at le=%v (%v -> %v)",
				name, cur.le, prev.cum, cur.cum)
		}
	}
	if !fam.buckets[len(fam.buckets)-1].inf {
		return fmt.Errorf("histogram %q does not end with the +Inf bucket", name)
	}
	if *fam.infBucket != *fam.count {
		return fmt.Errorf("histogram %q +Inf bucket %v != _count %v", name, *fam.infBucket, *fam.count)
	}
	return nil
}

// parseSample splits a sample line into name, labels and value, unescaping
// label values.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, fmt.Errorf("malformed sample %q", line)
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++ // skip escaped char
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				end = i
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label block in %q", line)
		}
		if err := parseLabels(rest[1:end], labels); err != nil {
			return "", nil, 0, fmt.Errorf("%v in %q", err, line)
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	if rest == "+Inf" || rest == "-Inf" || rest == "NaN" {
		return name, labels, 0, nil
	}
	v, perr := strconv.ParseFloat(strings.Fields(rest)[0], 64)
	if perr != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q", rest)
	}
	return name, labels, v, nil
}

// parseLabels parses `k="v",k2="v2"` into dst, validating names and escapes.
func parseLabels(s string, dst map[string]string) error {
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return fmt.Errorf("malformed label pair %q", s)
		}
		key := s[:eq]
		if !validLabelName(key) {
			return fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return fmt.Errorf("unquoted label value for %q", key)
		}
		var val strings.Builder
		i := 1
		closed := false
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return fmt.Errorf("dangling escape in label %q", key)
				}
				i++
				switch s[i] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return fmt.Errorf("bad escape \\%c in label %q", s[i], key)
				}
				continue
			}
			if c == '"' {
				closed = true
				break
			}
			val.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated label value for %q", key)
		}
		dst[key] = val.String()
		s = s[i+1:]
		s = strings.TrimPrefix(s, ",")
	}
	return nil
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	return validMetricName(s) && !strings.ContainsRune(s, ':')
}
