package obs

import (
	"net/http"
	"strconv"
	"time"

	"slidb/internal/lockmgr"
	"slidb/internal/profiler"
)

// EngineSource is the slice of the engine surface the collector maps onto
// metric names. *core.Engine satisfies it; obs depends only on the interface
// so that core can import obs without a cycle.
type EngineSource interface {
	// Committed / Aborted are the engine's transaction outcome counters.
	Committed() uint64
	Aborted() uint64
	// ELRAborts counts aborts whose locks were released at abort-record
	// append under EarlyLockReleaseAborts.
	ELRAborts() uint64
	// UndoFailures counts failed rollback undo actions (non-zero means
	// in-memory corruption).
	UndoFailures() uint64
	// CrossShardCommits counts commits whose participant set spanned more
	// than one log shard (each paid the two-phase flush rendezvous).
	CrossShardCommits() uint64
	// DurableLag is the appended-but-not-durable log bytes at this instant.
	DurableLag() uint64
	// LogErr is the WAL sink error that wedged the log, nil while healthy.
	LogErr() error
	// LockStats is a snapshot of the lock manager's cumulative counters.
	LockStats() lockmgr.StatsSnapshot
	// ProfileLifetime is the engine-lifetime profiler breakdown (monotonic
	// across Profiler.Reset calls — see profiler.Lifetime).
	ProfileLifetime() profiler.Breakdown
	// Concurrency is the current agent worker count.
	Concurrency() int
	// LogTail is the log tail's self-tuning snapshot (group-commit window,
	// flush cycles, physical sink writes, publish-fence waits), summed
	// across every log shard.
	LogTail() LogTailStats
	// LogShards is the number of sharded virtual logs; LogTailAt is one
	// shard's view of the LogTail snapshot, feeding the per-shard metric
	// families.
	LogShards() int
	LogTailAt(s int) LogTailStats
}

// LogTailStats is the log-tail snapshot the collector exports: the adaptive
// group-commit controller's state plus the segment sink's physical-write
// counters. Defined here (not in wal) so core can satisfy EngineSource with
// one struct regardless of which WAL pieces an engine configuration uses;
// in-memory engines report zero sink counters.
type LogTailStats struct {
	// FlushCycles is the number of completed group-commit cycles;
	// WindowedCycles the subset that opened a group-commit window, and
	// WindowWaitSeconds the window time those cycles actually waited (early
	// wakes make this less than cycles × window).
	FlushCycles       uint64
	WindowedCycles    uint64
	WindowWaitSeconds float64
	// CurWindowSeconds is the live group-commit window — the adaptive
	// controller's current value, or the configured fixed one.
	CurWindowSeconds float64
	// FenceWaitSeconds is the cumulative time appenders spent blocked
	// publishing their log-buffer claims.
	FenceWaitSeconds float64
	// SinkWrites counts physical write submissions to the segment files (a
	// vectored group-commit cycle counts once); Rotations, Preallocs and
	// PreallocFallbacks count segment creations, fallocate preallocations
	// and truncate fallbacks respectively.
	SinkWrites        uint64
	Rotations         uint64
	Preallocs         uint64
	PreallocFallbacks uint64
	// ReserveWaitSeconds is the cumulative time appenders spent blocked
	// entering the log buffer's reservation critical section, and
	// BufferFullWaitSeconds the time they spent stalled on a full buffer
	// (the auto-sizer's growth signal).
	ReserveWaitSeconds    float64
	BufferFullWaitSeconds float64
	// BufferBytes is the log buffer's current size and BufferGrows how many
	// times the auto-sizer doubled it.
	BufferBytes int64
	BufferGrows uint64
}

// lockLevelNames maps lockmgr levels to stable label values, indexed like
// StatsSnapshot.AcquiresByLevel.
var lockLevelNames = [4]string{"database", "table", "page", "record"}

// shardLabel formats a log-shard index as a metric label value.
func shardLabel(s int) string { return strconv.Itoa(s) }

// RegisterEngine registers the engine collector's metric families on r. Every
// sample is read from the engine's existing atomic counters (or cheap
// snapshots of them) at scrape time; nothing is double-counted and no state
// is added to the transaction hot path.
func RegisterEngine(r *Registry, e EngineSource) {
	r.CounterFunc("slidb_txns_committed_total",
		"Transactions committed since the engine opened.",
		func() float64 { return float64(e.Committed()) })
	r.CounterFunc("slidb_txns_aborted_total",
		"Transactions aborted (after deadlock retries) since the engine opened.",
		func() float64 { return float64(e.Aborted()) })
	r.CounterFunc("slidb_elr_aborts_total",
		"Aborts whose locks were released at abort-record append (EarlyLockReleaseAborts).",
		func() float64 { return float64(e.ELRAborts()) })
	r.CounterFunc("slidb_undo_failures_total",
		"Rollback undo actions that failed; any non-zero value indicates in-memory corruption.",
		func() float64 { return float64(e.UndoFailures()) })
	r.CounterFunc("slidb_cross_shard_commits_total",
		"Commits whose participant set spanned more than one log shard (two-phase flush rendezvous).",
		func() float64 { return float64(e.CrossShardCommits()) })
	r.GaugeFunc("slidb_durable_lag_bytes",
		"Log bytes appended but not yet forced to stable storage (commit pipeline depth).",
		func() float64 { return float64(e.DurableLag()) })
	r.GaugeFunc("slidb_log_wedged",
		"1 when a WAL sink error has wedged the log (no further appends can become durable), else 0.",
		func() float64 {
			if e.LogErr() != nil {
				return 1
			}
			return 0
		})
	r.GaugeFunc("slidb_agents",
		"Current agent worker count.",
		func() float64 { return float64(e.Concurrency()) })

	// Log-tail self-tuning surface: the live group-commit window (the
	// adaptive controller's output), how much window time flush cycles
	// actually waited, the vectored sink's writes-per-cycle inputs, and the
	// publish-fence wait total.
	r.GaugeFunc("slidb_group_commit_window_seconds",
		"Group-commit window currently in effect (adaptive controller output, or the fixed configured window).",
		func() float64 { return e.LogTail().CurWindowSeconds })
	r.CounterFunc("slidb_group_commit_window_wait_seconds_total",
		"Group-commit window time the flusher actually waited (early wakes make this less than cycles x window).",
		func() float64 { return e.LogTail().WindowWaitSeconds })
	r.CounterFunc("slidb_log_flush_cycles_total",
		"Completed group-commit flush cycles.",
		func() float64 { return float64(e.LogTail().FlushCycles) })
	r.CounterFunc("slidb_log_sink_writes_total",
		"Physical write submissions to the WAL segment files (one per vectored group-commit cycle on the fast path).",
		func() float64 { return float64(e.LogTail().SinkWrites) })
	r.CounterFunc("slidb_log_fence_wait_seconds_total",
		"Cumulative time appenders spent blocked publishing their log-buffer claims.",
		func() float64 { return e.LogTail().FenceWaitSeconds })
	r.CounterFunc("slidb_log_segment_rotations_total",
		"WAL segment file rotations.",
		func() float64 { return float64(e.LogTail().Rotations) })
	r.LabeledCounterFunc("slidb_log_segment_preallocs_total",
		"WAL segment preallocations by method (fallocate, or the truncate fallback where unsupported).", "method",
		func() []Sample {
			lt := e.LogTail()
			return []Sample{
				{Label: "fallocate", Value: float64(lt.Preallocs)},
				{Label: "truncate", Value: float64(lt.PreallocFallbacks)},
			}
		})

	// Per-shard log-tail families (one series per virtual log, labeled by
	// shard index): whether routing balanced the append load shows up as
	// even reserve-wait and sink-write series; a hot shard sticks out.
	shardSamples := func(value func(LogTailStats) float64) func() []Sample {
		return func() []Sample {
			n := e.LogShards()
			out := make([]Sample, 0, n)
			for s := 0; s < n; s++ {
				out = append(out, Sample{Label: shardLabel(s), Value: value(e.LogTailAt(s))})
			}
			return out
		}
	}
	r.LabeledCounterFunc("slidb_log_shard_reserve_wait_seconds_total",
		"Cumulative appender time blocked entering each log shard's reservation critical section.", "shard",
		shardSamples(func(lt LogTailStats) float64 { return lt.ReserveWaitSeconds }))
	r.LabeledCounterFunc("slidb_log_shard_buffer_full_wait_seconds_total",
		"Cumulative appender time stalled on each log shard's full buffer (the auto-sizer's growth signal).", "shard",
		shardSamples(func(lt LogTailStats) float64 { return lt.BufferFullWaitSeconds }))
	r.LabeledCounterFunc("slidb_log_shard_sink_writes_total",
		"Physical write submissions per log shard's segment files.", "shard",
		shardSamples(func(lt LogTailStats) float64 { return float64(lt.SinkWrites) }))
	r.LabeledCounterFunc("slidb_log_shard_flush_cycles_total",
		"Completed group-commit flush cycles per log shard.", "shard",
		shardSamples(func(lt LogTailStats) float64 { return float64(lt.FlushCycles) }))
	r.LabeledGaugeFunc("slidb_log_shard_buffer_bytes",
		"Current log buffer size per shard (grows under AutoSizeLogBuffer).", "shard",
		shardSamples(func(lt LogTailStats) float64 { return float64(lt.BufferBytes) }))

	// Lock manager counters (the paper's Figure 8/9 surface). Each family
	// snapshots the stats once per scrape.
	r.LabeledCounterFunc("slidb_lock_acquires_total",
		"Lock acquisitions by hierarchy level.", "level",
		func() []Sample {
			ls := e.LockStats()
			out := make([]Sample, 0, len(lockLevelNames))
			for i, name := range lockLevelNames {
				out = append(out, Sample{Label: name, Value: float64(ls.AcquiresByLevel[i])})
			}
			return out
		})
	r.LabeledCounterFunc("slidb_lock_acquires_mode_total",
		"Lock acquisitions by mode class (shared = S/IS/IX, exclusive = X/SIX/U).", "mode",
		func() []Sample {
			ls := e.LockStats()
			return []Sample{
				{Label: "shared", Value: float64(ls.SharedAcquires)},
				{Label: "exclusive", Value: float64(ls.ExclusiveAcquires)},
			}
		})
	r.LabeledCounterFunc("slidb_lock_class_total",
		"Lock acquisitions by SLI heritability class (Figure 8).", "class",
		func() []Sample {
			ls := e.LockStats()
			return []Sample{
				{Label: "hot_heritable", Value: float64(ls.HotHeritable)},
				{Label: "hot_non_heritable", Value: float64(ls.HotNonHeritable)},
				{Label: "cold_heritable", Value: float64(ls.ColdHeritable)},
				{Label: "cold_other", Value: float64(ls.ColdOther)},
			}
		})
	r.CounterFunc("slidb_lock_cache_hits_total",
		"Lock acquisitions satisfied from the transaction's private lock cache.",
		func() float64 { return float64(e.LockStats().CacheHits) })
	r.CounterFunc("slidb_lock_conversions_total",
		"Lock mode upgrades (e.g. IS to IX).",
		func() float64 { return float64(e.LockStats().Conversions) })
	r.CounterFunc("slidb_lock_latch_contended_total",
		"Lock-head latch acquisitions that found the latch held (physical contention).",
		func() float64 { return float64(e.LockStats().LatchContended) })
	r.CounterFunc("slidb_lock_waits_total",
		"Lock requests that blocked on a logical conflict.",
		func() float64 { return float64(e.LockStats().Waits) })
	r.CounterFunc("slidb_lock_deadlocks_total",
		"Lock requests aborted by deadlock detection.",
		func() float64 { return float64(e.LockStats().Deadlocks) })
	r.CounterFunc("slidb_lock_deadlock_local_probes_total",
		"Wait-for-graph probes confined to one lock-table partition.",
		func() float64 { return float64(e.LockStats().DeadlockLocalProbes) })
	r.CounterFunc("slidb_lock_deadlock_escalations_total",
		"Deadlock probes escalated to the full cross-partition search.",
		func() float64 { return float64(e.LockStats().DeadlockEscalations) })
	r.CounterFunc("slidb_lock_timeouts_total",
		"Lock requests aborted by wait timeout.",
		func() float64 { return float64(e.LockStats().Timeouts) })
	r.CounterFunc("slidb_lock_transactions_total",
		"Completed transactions observed by the lock manager (ReleaseAll calls).",
		func() float64 { return float64(e.LockStats().Transactions) })
	r.CounterFunc("slidb_elr_releases_total",
		"Commits whose locks were released at commit-record append (EarlyLockRelease).",
		func() float64 { return float64(e.LockStats().ELRReleases) })
	r.LabeledCounterFunc("slidb_sli_events_total",
		"Speculative Lock Inheritance outcomes (Figure 9).", "event",
		func() []Sample {
			ls := e.LockStats()
			return []Sample{
				{Label: "passed", Value: float64(ls.SLIPassed)},
				{Label: "reclaimed", Value: float64(ls.SLIReclaimed)},
				{Label: "invalidated", Value: float64(ls.SLIInvalidated)},
				{Label: "discarded", Value: float64(ls.SLIDiscarded)},
				{Label: "ineligible_waiter", Value: float64(ls.SLIIneligibleWaiter)},
				{Label: "ineligible_mode", Value: float64(ls.SLIIneligibleMode)},
				{Label: "ineligible_parent", Value: float64(ls.SLIIneligibleParent)},
			}
		})

	// One series per profiler category: the paper's time-attribution method
	// (where does a transaction's time go — lock manager, log reserve, flush
	// wait...) as continuous production telemetry instead of a benchmark
	// printout. Every category is emitted even at zero, so dashboards and the
	// acceptance check can rely on the full set being present.
	r.LabeledCounterFunc("slidb_profile_seconds_total",
		"Engine-lifetime profiler time attribution by category (seconds). Zero when profiling is disabled.", "category",
		func() []Sample {
			b := e.ProfileLifetime()
			out := make([]Sample, 0, len(b))
			for c := profiler.Category(0); int(c) < len(b); c++ {
				out = append(out, Sample{Label: c.String(), Value: b.Get(c).Seconds()})
			}
			return out
		})
}

// ObserverOptions configures an Observer. The zero value selects defaults.
type ObserverOptions struct {
	// SlowTxCapacity is how many slow transactions the tracer retains
	// (default 32).
	SlowTxCapacity int
	// SlowTxWindow is the trailing window slow traces are kept for
	// (default 5 minutes).
	SlowTxWindow time.Duration
	// LatencyBuckets are the transaction-duration histogram's bucket upper
	// bounds in seconds (default: exponential 100µs .. 10s).
	LatencyBuckets []float64
}

// DefaultLatencyBuckets is the default transaction-duration histogram
// bucketing: exponential from 100µs to 10s, covering in-memory transactions
// through group-commit-bound durable ones.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Observer bundles an engine's observability surface: the metrics registry
// (with the engine collector registered), the transaction-duration histogram,
// and the slow-transaction tracer. Create one through Engine.Observe.
type Observer struct {
	reg    *Registry
	tracer *SlowTxTracer
	txDur  *Histogram
	mux    *http.ServeMux
}

// NewObserver builds an Observer over the engine: a registry with the engine
// collector registered, plus the histogram and tracer fed by ObserveTx.
func NewObserver(e EngineSource, o ObserverOptions) *Observer {
	if o.LatencyBuckets == nil {
		o.LatencyBuckets = DefaultLatencyBuckets()
	}
	reg := NewRegistry()
	RegisterEngine(reg, e)
	obs := &Observer{
		reg:    reg,
		tracer: NewSlowTxTracer(o.SlowTxCapacity, o.SlowTxWindow),
	}
	obs.txDur = reg.Histogram("slidb_txn_duration_seconds",
		"Transaction attempt execution time (outcome decided; excludes asynchronous durable-ack waits).",
		o.LatencyBuckets)
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/debug/slowtx", obs.tracer)
	obs.mux = mux
	return obs
}

// Registry returns the observer's metrics registry, so embedders (slidbd, a
// benchmark harness) can register their own families alongside the engine's.
func (o *Observer) Registry() *Registry { return o.reg }

// Tracer returns the slow-transaction tracer.
func (o *Observer) Tracer() *SlowTxTracer { return o.tracer }

// ObserveTx feeds one completed transaction attempt into the duration
// histogram and the slow-transaction tracer. It is wait-free unless the
// attempt is slow enough to enter the tracer's slow set.
//
//slint:hotpath
func (o *Observer) ObserveTx(xid uint64, start time.Time, d time.Duration, committed bool, b profiler.Breakdown) {
	o.txDur.Observe(d.Seconds())
	//slint:ignore hotalloc Observe allocates only past the atomic floor check, for attempts slow enough to enter the trace set
	o.tracer.Observe(xid, start, d, committed, b)
}

// ServeHTTP serves /metrics (Prometheus text format) and /debug/slowtx
// (JSON). Unknown paths return 404; embedders wanting health endpoints or
// pprof mount this handler into their own mux (see cmd/slidbd).
func (o *Observer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	o.mux.ServeHTTP(w, req)
}
