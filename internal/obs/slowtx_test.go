package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"slidb/internal/profiler"
)

func TestSlowTxKeepsSlowest(t *testing.T) {
	tr := NewSlowTxTracer(3, time.Hour)
	now := time.Now()
	for i, d := range []time.Duration{10, 50, 20, 40, 30, 5} {
		tr.Observe(uint64(i), now, d*time.Millisecond, true, profiler.Breakdown{})
	}
	got := tr.Snapshot()
	if len(got) != 3 {
		t.Fatalf("snapshot len %d, want 3", len(got))
	}
	wantXIDs := []uint64{1, 3, 4} // 50ms, 40ms, 30ms — slowest first
	for i, tx := range got {
		if tx.XID != wantXIDs[i] {
			t.Errorf("snapshot[%d].XID = %d, want %d", i, tx.XID, wantXIDs[i])
		}
	}
}

func TestSlowTxFloorFastPath(t *testing.T) {
	tr := NewSlowTxTracer(2, time.Hour)
	now := time.Now()
	tr.Observe(1, now, 100*time.Millisecond, true, profiler.Breakdown{})
	tr.Observe(2, now, 200*time.Millisecond, true, profiler.Breakdown{})
	if got := time.Duration(tr.floor.Load()); got != 100*time.Millisecond {
		t.Fatalf("floor %v after filling, want 100ms", got)
	}
	// At or below the floor: rejected by the atomic check, set unchanged.
	tr.Observe(3, now, 100*time.Millisecond, true, profiler.Breakdown{})
	tr.Observe(4, now, 50*time.Millisecond, true, profiler.Breakdown{})
	got := tr.Snapshot()
	if len(got) != 2 || got[0].XID != 2 || got[1].XID != 1 {
		t.Fatalf("slow set changed by fast transactions: %+v", got)
	}
	// Slower than the floor: evicts the cheapest member, floor rises.
	tr.Observe(5, now, 150*time.Millisecond, true, profiler.Breakdown{})
	got = tr.Snapshot()
	if len(got) != 2 || got[0].XID != 2 || got[1].XID != 5 {
		t.Fatalf("eviction wrong: %+v", got)
	}
	if f := time.Duration(tr.floor.Load()); f != 150*time.Millisecond {
		t.Errorf("floor %v after eviction, want 150ms", f)
	}
}

func TestSlowTxWindowExpiry(t *testing.T) {
	tr := NewSlowTxTracer(4, 50*time.Millisecond)
	old := time.Now().Add(-time.Hour)
	tr.Observe(1, old, 500*time.Millisecond, true, profiler.Breakdown{})
	tr.Observe(2, time.Now(), 100*time.Millisecond, false, profiler.Breakdown{})
	got := tr.Snapshot()
	if len(got) != 1 || got[0].XID != 2 {
		t.Fatalf("expired entry not pruned: %+v", got)
	}
}

func TestSlowTxJSONShape(t *testing.T) {
	tr := NewSlowTxTracer(8, time.Hour)
	var b profiler.Breakdown
	b[profiler.LockMgrWork] = 2 * time.Millisecond
	b[profiler.LogFlush] = 5 * time.Millisecond
	tr.Observe(7, time.Now(), 9*time.Millisecond, true, b)
	tr.Observe(8, time.Now(), 3*time.Millisecond, false, profiler.Breakdown{})

	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowtx", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var rep struct {
		Capacity      int      `json:"capacity"`
		WindowSeconds float64  `json:"window_seconds"`
		Slowest       []SlowTx `json:"slowest"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.Bytes())
	}
	if rep.Capacity != 8 || rep.WindowSeconds != 3600 {
		t.Errorf("capacity/window = %d/%v", rep.Capacity, rep.WindowSeconds)
	}
	if len(rep.Slowest) != 2 {
		t.Fatalf("slowest len %d, want 2", len(rep.Slowest))
	}
	slow := rep.Slowest[0]
	if slow.XID != 7 || !slow.Committed || slow.DurationSeconds != 0.009 {
		t.Errorf("slowest[0] = %+v", slow)
	}
	if got := slow.BreakdownSeconds["lockmgr-work"]; got != 0.002 {
		t.Errorf("breakdown lockmgr-work = %v, want 0.002", got)
	}
	if rep.Slowest[1].BreakdownSeconds != nil {
		t.Errorf("zero breakdown should be omitted, got %v", rep.Slowest[1].BreakdownSeconds)
	}
}

func TestSlowTxEmptyReport(t *testing.T) {
	tr := NewSlowTxTracer(0, 0) // defaults
	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slowtx", nil))
	var rep map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if rep["capacity"].(float64) != 32 {
		t.Errorf("default capacity = %v", rep["capacity"])
	}
	if s, ok := rep["slowest"].([]any); !ok || len(s) != 0 {
		t.Errorf("empty tracer should serve an empty array, got %v", rep["slowest"])
	}
}
