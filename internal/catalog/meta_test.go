package catalog

import (
	"reflect"
	"testing"

	"slidb/internal/record"
)

func TestTableMetaRoundTrip(t *testing.T) {
	c := New()
	schema := record.MustSchema(
		record.Column{Name: "id", Type: record.TypeInt},
		record.Column{Name: "region", Type: record.TypeString},
		record.Column{Name: "score", Type: record.TypeFloat},
	)
	tbl, err := c.CreateTable("players", schema, []string{"id", "region"})
	if err != nil {
		t.Fatal(err)
	}
	m := TableMetaOf(tbl)
	got, err := DecodeTableMeta(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n in: %+v\nout: %+v", m, got)
	}
	if _, err := DecodeTableMeta(m.Encode()[:3]); err == nil {
		t.Fatal("truncated metadata decoded without error")
	}
}

func TestIndexMetaRoundTrip(t *testing.T) {
	m := IndexMeta{Name: "players_by_region", TableID: 9, Columns: []string{"region"}, Unique: true}
	got, err := DecodeIndexMeta(m.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip:\n in: %+v\nout: %+v", m, got)
	}
}

func TestRestorePreservesIDsAndAdvancesAllocator(t *testing.T) {
	c := New()
	schema := record.MustSchema(record.Column{Name: "id", Type: record.TypeInt})
	meta := TableMeta{
		ID: 7, Name: "restored",
		Columns:    []record.Column{{Name: "id", Type: record.TypeInt}},
		PrimaryKey: []string{"id"},
	}
	tbl, err := c.RestoreTable(meta)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID != 7 {
		t.Fatalf("restored ID = %d, want 7", tbl.ID)
	}
	if _, err := c.RestoreTable(meta); err == nil {
		t.Fatal("duplicate restore succeeded")
	}
	// New tables must not collide with the restored ID.
	next, err := c.CreateTable("fresh", schema, []string{"id"})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID <= 7 {
		t.Fatalf("allocator did not advance past restored ID: got %d", next.ID)
	}

	ix, err := c.RestoreIndex(IndexMeta{Name: "ix", TableID: 7, Columns: []string{"id"}, Unique: false})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TableIndexes(7); len(got) != 1 || got[0] != ix {
		t.Fatalf("restored index not registered: %v", got)
	}
	if _, err := c.RestoreIndex(IndexMeta{Name: "ix2", TableID: 99, Columns: []string{"id"}}); err == nil {
		t.Fatal("restore against unknown table succeeded")
	}

	// Rollback helpers: removal frees the name and drops index registrations.
	c.RemoveIndex("ix")
	if got := c.TableIndexes(7); len(got) != 0 {
		t.Fatalf("RemoveIndex left %v", got)
	}
	c.RemoveTable(7)
	if _, ok := c.Table("restored"); ok {
		t.Fatal("RemoveTable left the table visible by name")
	}
	if _, err := c.RestoreTable(meta); err != nil {
		t.Fatalf("re-restore after removal: %v", err)
	}
}
