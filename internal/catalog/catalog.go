// Package catalog maintains the schema metadata of a database: tables,
// their schemas and primary keys, and secondary indexes. Table IDs issued by
// the catalog double as lock-hierarchy identifiers (lockmgr.TableLock) and
// buffer PageID table components.
package catalog

import (
	"fmt"
	"sync"

	"slidb/internal/record"
)

// Table describes one table.
type Table struct {
	// ID is the table's unique numeric identifier.
	ID uint32
	// Name is the table's unique name.
	Name string
	// Schema describes the table's columns.
	Schema *record.Schema
	// PrimaryKey lists the columns (by name) forming the primary key.
	PrimaryKey []string

	pkIdx []int
}

// PrimaryKeyIndexes returns the column positions of the primary key.
func (t *Table) PrimaryKeyIndexes() []int { return t.pkIdx }

// PrimaryKeyOf extracts the primary-key values from a row.
func (t *Table) PrimaryKeyOf(row record.Row) []record.Value {
	out := make([]record.Value, len(t.pkIdx))
	for i, idx := range t.pkIdx {
		out[i] = row[idx]
	}
	return out
}

// Index describes a secondary index.
type Index struct {
	// Name is the index's unique name.
	Name string
	// TableID is the indexed table.
	TableID uint32
	// Columns lists the indexed columns in order.
	Columns []string
	// Unique indicates whether duplicate keys are rejected.
	Unique bool

	colIdx []int
}

// ColumnIndexes returns the positions of the indexed columns in the table
// schema.
func (ix *Index) ColumnIndexes() []int { return ix.colIdx }

// KeyOf extracts the index-key values from a row.
func (ix *Index) KeyOf(row record.Row) []record.Value {
	out := make([]record.Value, len(ix.colIdx))
	for i, idx := range ix.colIdx {
		out[i] = row[idx]
	}
	return out
}

// Catalog is the database's schema registry. It is safe for concurrent use;
// DDL (table/index creation) is expected to be rare and coarse-grained.
type Catalog struct {
	mu          sync.RWMutex
	nextTableID uint32
	byName      map[string]*Table
	byID        map[uint32]*Table
	indexes     map[string]*Index   // by index name
	byTable     map[uint32][]*Index // indexes per table
}

// New creates an empty catalog. Table IDs start at 1; ID 0 is reserved.
func New() *Catalog {
	return &Catalog{
		nextTableID: 1,
		byName:      make(map[string]*Table),
		byID:        make(map[uint32]*Table),
		indexes:     make(map[string]*Index),
		byTable:     make(map[uint32][]*Index),
	}
}

// CreateTable registers a table and returns its descriptor. The primary-key
// columns must exist in the schema.
func (c *Catalog) CreateTable(name string, schema *record.Schema, primaryKey []string) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("catalog: empty table name")
	}
	if len(primaryKey) == 0 {
		return nil, fmt.Errorf("catalog: table %q needs a primary key", name)
	}
	pkIdx := make([]int, len(primaryKey))
	for i, col := range primaryKey {
		idx := schema.ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("catalog: primary key column %q not in schema of %q", col, name)
		}
		pkIdx[i] = idx
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.byName[name]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	t := &Table{
		ID:         c.nextTableID,
		Name:       name,
		Schema:     schema,
		PrimaryKey: append([]string(nil), primaryKey...),
		pkIdx:      pkIdx,
	}
	c.nextTableID++
	c.byName[name] = t
	c.byID[t.ID] = t
	return t, nil
}

// CreateIndex registers a secondary index on an existing table.
func (c *Catalog) CreateIndex(name, tableName string, columns []string, unique bool) (*Index, error) {
	if name == "" || len(columns) == 0 {
		return nil, fmt.Errorf("catalog: index needs a name and at least one column")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.byName[tableName]
	if !ok {
		return nil, fmt.Errorf("catalog: unknown table %q", tableName)
	}
	if _, exists := c.indexes[name]; exists {
		return nil, fmt.Errorf("catalog: index %q already exists", name)
	}
	colIdx := make([]int, len(columns))
	for i, col := range columns {
		idx := t.Schema.ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("catalog: column %q not in table %q", col, tableName)
		}
		colIdx[i] = idx
	}
	ix := &Index{
		Name:    name,
		TableID: t.ID,
		Columns: append([]string(nil), columns...),
		Unique:  unique,
		colIdx:  colIdx,
	}
	c.indexes[name] = ix
	c.byTable[t.ID] = append(c.byTable[t.ID], ix)
	return ix, nil
}

// Table returns the table with the given name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.byName[name]
	return t, ok
}

// TableByID returns the table with the given ID.
func (c *Catalog) TableByID(id uint32) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.byID[id]
	return t, ok
}

// Tables returns all tables, in creation order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.byID))
	for id := uint32(1); id < c.nextTableID; id++ {
		if t, ok := c.byID[id]; ok {
			out = append(out, t)
		}
	}
	return out
}

// Index returns the index with the given name.
func (c *Catalog) Index(name string) (*Index, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ix, ok := c.indexes[name]
	return ix, ok
}

// TableIndexes returns the secondary indexes of a table.
func (c *Catalog) TableIndexes(tableID uint32) []*Index {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*Index(nil), c.byTable[tableID]...)
}
