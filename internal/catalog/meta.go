package catalog

import (
	"encoding/binary"
	"errors"
	"fmt"

	"slidb/internal/record"
)

// TableMeta is the serializable description of a table, used by the WAL's
// DDL records and by checkpoint files to recreate the catalog during
// recovery. The ID is included so recovered tables keep the identifiers that
// data log records reference.
type TableMeta struct {
	ID         uint32
	Name       string
	Columns    []record.Column
	PrimaryKey []string
}

// TableMetaOf extracts the metadata of a table descriptor.
func TableMetaOf(t *Table) TableMeta {
	return TableMeta{
		ID:         t.ID,
		Name:       t.Name,
		Columns:    append([]record.Column(nil), t.Schema.Columns()...),
		PrimaryKey: append([]string(nil), t.PrimaryKey...),
	}
}

// IndexMeta is the serializable description of a secondary index.
type IndexMeta struct {
	Name    string
	TableID uint32
	Columns []string
	Unique  bool
}

// IndexMetaOf extracts the metadata of an index descriptor.
func IndexMetaOf(ix *Index) IndexMeta {
	return IndexMeta{
		Name:    ix.Name,
		TableID: ix.TableID,
		Columns: append([]string(nil), ix.Columns...),
		Unique:  ix.Unique,
	}
}

// ErrBadMeta is returned when serialized table or index metadata cannot be
// decoded.
var ErrBadMeta = errors.New("catalog: corrupt metadata")

type metaEncoder struct{ buf []byte }

func (e *metaEncoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *metaEncoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

type metaDecoder struct {
	buf []byte
	pos int
	err error
}

func (d *metaDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.err = ErrBadMeta
		return 0
	}
	d.pos += n
	return v
}

func (d *metaDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if d.pos+int(n) > len(d.buf) {
		d.err = ErrBadMeta
		return ""
	}
	s := string(d.buf[d.pos : d.pos+int(n)])
	d.pos += int(n)
	return s
}

func (d *metaDecoder) finish() error {
	if d.err != nil {
		return d.err
	}
	if d.pos != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrBadMeta, len(d.buf)-d.pos)
	}
	return nil
}

// Encode serializes the table metadata to a compact binary form.
func (m TableMeta) Encode() []byte {
	var e metaEncoder
	e.uvarint(uint64(m.ID))
	e.str(m.Name)
	e.uvarint(uint64(len(m.Columns)))
	for _, c := range m.Columns {
		e.str(c.Name)
		e.uvarint(uint64(c.Type))
	}
	e.uvarint(uint64(len(m.PrimaryKey)))
	for _, col := range m.PrimaryKey {
		e.str(col)
	}
	return e.buf
}

// DecodeTableMeta parses metadata produced by TableMeta.Encode.
func DecodeTableMeta(data []byte) (TableMeta, error) {
	d := metaDecoder{buf: data}
	var m TableMeta
	m.ID = uint32(d.uvarint())
	m.Name = d.str()
	nCols := d.uvarint()
	for i := uint64(0); i < nCols && d.err == nil; i++ {
		name := d.str()
		typ := record.Type(d.uvarint())
		m.Columns = append(m.Columns, record.Column{Name: name, Type: typ})
	}
	nPK := d.uvarint()
	for i := uint64(0); i < nPK && d.err == nil; i++ {
		m.PrimaryKey = append(m.PrimaryKey, d.str())
	}
	if err := d.finish(); err != nil {
		return TableMeta{}, err
	}
	return m, nil
}

// Encode serializes the index metadata to a compact binary form.
func (m IndexMeta) Encode() []byte {
	var e metaEncoder
	e.str(m.Name)
	e.uvarint(uint64(m.TableID))
	e.uvarint(uint64(len(m.Columns)))
	for _, col := range m.Columns {
		e.str(col)
	}
	if m.Unique {
		e.uvarint(1)
	} else {
		e.uvarint(0)
	}
	return e.buf
}

// DecodeIndexMeta parses metadata produced by IndexMeta.Encode.
func DecodeIndexMeta(data []byte) (IndexMeta, error) {
	d := metaDecoder{buf: data}
	var m IndexMeta
	m.Name = d.str()
	m.TableID = uint32(d.uvarint())
	nCols := d.uvarint()
	for i := uint64(0); i < nCols && d.err == nil; i++ {
		m.Columns = append(m.Columns, d.str())
	}
	m.Unique = d.uvarint() != 0
	if err := d.finish(); err != nil {
		return IndexMeta{}, err
	}
	return m, nil
}

// RestoreTable re-registers a table under its original ID during recovery.
// It fails if the name or ID is already taken; the catalog's ID allocator is
// advanced past the restored ID so later CreateTable calls cannot collide.
func (c *Catalog) RestoreTable(m TableMeta) (*Table, error) {
	if m.ID == 0 {
		return nil, fmt.Errorf("catalog: cannot restore table %q with reserved ID 0", m.Name)
	}
	schema, err := record.NewSchema(m.Columns...)
	if err != nil {
		return nil, fmt.Errorf("catalog: restore table %q: %w", m.Name, err)
	}
	if len(m.PrimaryKey) == 0 {
		return nil, fmt.Errorf("catalog: restored table %q needs a primary key", m.Name)
	}
	pkIdx := make([]int, len(m.PrimaryKey))
	for i, col := range m.PrimaryKey {
		idx := schema.ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("catalog: primary key column %q not in schema of restored %q", col, m.Name)
		}
		pkIdx[i] = idx
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.byName[m.Name]; exists {
		return nil, fmt.Errorf("catalog: table %q already exists", m.Name)
	}
	if _, exists := c.byID[m.ID]; exists {
		return nil, fmt.Errorf("catalog: table ID %d already exists", m.ID)
	}
	t := &Table{
		ID:         m.ID,
		Name:       m.Name,
		Schema:     schema,
		PrimaryKey: append([]string(nil), m.PrimaryKey...),
		pkIdx:      pkIdx,
	}
	c.byName[m.Name] = t
	c.byID[m.ID] = t
	if m.ID >= c.nextTableID {
		c.nextTableID = m.ID + 1
	}
	return t, nil
}

// RemoveTable deletes a table and its indexes from the catalog. It exists
// to roll back DDL whose write-ahead log record could not be made durable;
// it must not be used while transactions may reference the table.
func (c *Catalog) RemoveTable(id uint32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.byID[id]
	if !ok {
		return
	}
	for _, ix := range c.byTable[id] {
		delete(c.indexes, ix.Name)
	}
	delete(c.byTable, id)
	delete(c.byID, id)
	delete(c.byName, t.Name)
}

// RemoveIndex deletes a secondary index from the catalog (DDL rollback
// counterpart of RemoveTable).
func (c *Catalog) RemoveIndex(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ix, ok := c.indexes[name]
	if !ok {
		return
	}
	delete(c.indexes, name)
	list := c.byTable[ix.TableID]
	for i, cand := range list {
		if cand == ix {
			c.byTable[ix.TableID] = append(list[:i], list[i+1:]...)
			break
		}
	}
}

// RestoreIndex re-registers a secondary index during recovery. The indexed
// table must have been restored first.
func (c *Catalog) RestoreIndex(m IndexMeta) (*Index, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.byID[m.TableID]
	if !ok {
		return nil, fmt.Errorf("catalog: restored index %q references unknown table %d", m.Name, m.TableID)
	}
	if _, exists := c.indexes[m.Name]; exists {
		return nil, fmt.Errorf("catalog: index %q already exists", m.Name)
	}
	colIdx := make([]int, len(m.Columns))
	for i, col := range m.Columns {
		idx := t.Schema.ColumnIndex(col)
		if idx < 0 {
			return nil, fmt.Errorf("catalog: column %q not in table %q", col, t.Name)
		}
		colIdx[i] = idx
	}
	ix := &Index{
		Name:    m.Name,
		TableID: m.TableID,
		Columns: append([]string(nil), m.Columns...),
		Unique:  m.Unique,
		colIdx:  colIdx,
	}
	c.indexes[m.Name] = ix
	c.byTable[m.TableID] = append(c.byTable[m.TableID], ix)
	return ix, nil
}
