package catalog

import (
	"testing"

	"slidb/internal/record"
)

func subscriberSchema() *record.Schema {
	return record.MustSchema(
		record.Column{Name: "s_id", Type: record.TypeInt},
		record.Column{Name: "sub_nbr", Type: record.TypeString},
		record.Column{Name: "vlr_location", Type: record.TypeInt},
	)
}

func TestCreateTableAndLookup(t *testing.T) {
	c := New()
	tbl, err := c.CreateTable("subscriber", subscriberSchema(), []string{"s_id"})
	if err != nil {
		t.Fatal(err)
	}
	if tbl.ID == 0 {
		t.Fatal("table ID 0 is reserved")
	}
	got, ok := c.Table("subscriber")
	if !ok || got != tbl {
		t.Fatal("Table lookup by name failed")
	}
	got, ok = c.TableByID(tbl.ID)
	if !ok || got != tbl {
		t.Fatal("Table lookup by ID failed")
	}
	if _, ok := c.Table("missing"); ok {
		t.Fatal("lookup of missing table succeeded")
	}
	if len(c.Tables()) != 1 {
		t.Fatal("Tables() wrong length")
	}
}

func TestCreateTableErrors(t *testing.T) {
	c := New()
	if _, err := c.CreateTable("", subscriberSchema(), []string{"s_id"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := c.CreateTable("t", subscriberSchema(), nil); err == nil {
		t.Fatal("missing primary key accepted")
	}
	if _, err := c.CreateTable("t", subscriberSchema(), []string{"nope"}); err == nil {
		t.Fatal("unknown primary key column accepted")
	}
	if _, err := c.CreateTable("t", subscriberSchema(), []string{"s_id"}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t", subscriberSchema(), []string{"s_id"}); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

func TestTableIDsAreDistinct(t *testing.T) {
	c := New()
	ids := map[uint32]bool{}
	for _, name := range []string{"a", "b", "c", "d"} {
		tbl, err := c.CreateTable(name, subscriberSchema(), []string{"s_id"})
		if err != nil {
			t.Fatal(err)
		}
		if ids[tbl.ID] {
			t.Fatalf("duplicate table id %d", tbl.ID)
		}
		ids[tbl.ID] = true
	}
	if got := len(c.Tables()); got != 4 {
		t.Fatalf("Tables() = %d, want 4", got)
	}
}

func TestPrimaryKeyExtraction(t *testing.T) {
	c := New()
	tbl, _ := c.CreateTable("subscriber", subscriberSchema(), []string{"s_id", "sub_nbr"})
	row := record.Row{record.Int(7), record.String("555-0001"), record.Int(99)}
	pk := tbl.PrimaryKeyOf(row)
	if len(pk) != 2 || pk[0].AsInt() != 7 || pk[1].AsString() != "555-0001" {
		t.Fatalf("primary key = %v", pk)
	}
	if len(tbl.PrimaryKeyIndexes()) != 2 {
		t.Fatal("PrimaryKeyIndexes wrong")
	}
}

func TestCreateIndexAndKeyExtraction(t *testing.T) {
	c := New()
	if _, err := c.CreateIndex("ix", "missing", []string{"s_id"}, false); err == nil {
		t.Fatal("index on missing table accepted")
	}
	c.CreateTable("subscriber", subscriberSchema(), []string{"s_id"})
	ix, err := c.CreateIndex("sub_by_nbr", "subscriber", []string{"sub_nbr"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Unique || ix.TableID == 0 {
		t.Fatalf("index metadata wrong: %+v", ix)
	}
	if _, err := c.CreateIndex("sub_by_nbr", "subscriber", []string{"sub_nbr"}, true); err == nil {
		t.Fatal("duplicate index accepted")
	}
	if _, err := c.CreateIndex("bad", "subscriber", []string{"missing"}, false); err == nil {
		t.Fatal("index on missing column accepted")
	}
	if _, err := c.CreateIndex("", "subscriber", nil, false); err == nil {
		t.Fatal("nameless index accepted")
	}

	row := record.Row{record.Int(7), record.String("555-0001"), record.Int(99)}
	key := ix.KeyOf(row)
	if len(key) != 1 || key[0].AsString() != "555-0001" {
		t.Fatalf("index key = %v", key)
	}
	if len(ix.ColumnIndexes()) != 1 {
		t.Fatal("ColumnIndexes wrong")
	}

	got, ok := c.Index("sub_by_nbr")
	if !ok || got != ix {
		t.Fatal("Index lookup failed")
	}
	if _, ok := c.Index("nope"); ok {
		t.Fatal("missing index lookup succeeded")
	}
	tbl, _ := c.Table("subscriber")
	if len(c.TableIndexes(tbl.ID)) != 1 {
		t.Fatal("TableIndexes wrong")
	}
	if len(c.TableIndexes(999)) != 0 {
		t.Fatal("TableIndexes of unknown table should be empty")
	}
}
