package recovery

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"slidb/internal/catalog"
	"slidb/internal/record"
	"slidb/internal/wal"
)

// sliceIter returns an Iterator over an in-memory record slice.
func sliceIter(recs []wal.Record) Iterator {
	return func(fn func(wal.Record) error) error {
		for _, r := range recs {
			if err := fn(r); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestAnalyzeClassifiesWinnersAndLosers(t *testing.T) {
	recs := []wal.Record{
		{LSN: 1, XID: 1, Type: wal.RecBegin},
		{LSN: 2, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("a")},
		{LSN: 3, XID: 2, Type: wal.RecBegin},
		{LSN: 4, XID: 2, Type: wal.RecInsert, Table: 1, After: []byte("b")},
		{LSN: 5, XID: 1, Type: wal.RecCommit},
		{LSN: 6, XID: 3, Type: wal.RecBegin}, // in flight at crash
		{LSN: 7, XID: 3, Type: wal.RecUpdate, Table: 1, Before: []byte("a"), After: []byte("c")},
		{LSN: 8, XID: 2, Type: wal.RecAbort}, // aborted before crash
	}
	an, err := Analyze(sliceIter(recs))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := an.Winners[1]; !ok {
		t.Error("xid 1 committed but not a winner")
	}
	for _, xid := range []uint64{2, 3} {
		if _, ok := an.Winners[xid]; ok {
			t.Errorf("xid %d must not be a winner", xid)
		}
		if _, ok := an.Losers[xid]; !ok {
			t.Errorf("xid %d must be a loser", xid)
		}
	}
	if an.MaxLSN != 8 || an.MaxXID != 3 || an.Scanned != len(recs) {
		t.Errorf("analysis = %+v", an)
	}
}

// fakeApplier records replay calls.
type fakeApplier struct {
	ops []string
}

func (f *fakeApplier) CreateTable(m catalog.TableMeta) error {
	f.ops = append(f.ops, "create-table:"+m.Name)
	return nil
}
func (f *fakeApplier) CreateIndex(m catalog.IndexMeta) error {
	f.ops = append(f.ops, "create-index:"+m.Name)
	return nil
}
func (f *fakeApplier) Insert(table uint32, after []byte) error {
	f.ops = append(f.ops, "insert:"+string(after))
	return nil
}
func (f *fakeApplier) Update(table uint32, before, after []byte) error {
	f.ops = append(f.ops, "update:"+string(before)+"->"+string(after))
	return nil
}
func (f *fakeApplier) Delete(table uint32, before []byte) error {
	f.ops = append(f.ops, "delete:"+string(before))
	return nil
}

func TestRedoReplaysWinnersOnly(t *testing.T) {
	tblMeta := catalog.TableMeta{
		ID: 1, Name: "t",
		Columns:    []record.Column{{Name: "id", Type: record.TypeInt}},
		PrimaryKey: []string{"id"},
	}
	recs := []wal.Record{
		{LSN: 1, Type: wal.RecCreateTable, After: tblMeta.Encode()},
		{LSN: 2, XID: 1, Type: wal.RecBegin},
		{LSN: 3, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("w1")},
		{LSN: 4, XID: 2, Type: wal.RecInsert, Table: 1, After: []byte("loser")},
		{LSN: 5, XID: 1, Type: wal.RecUpdate, Table: 1, Before: []byte("w1"), After: []byte("w2")},
		{LSN: 6, XID: 1, Type: wal.RecCommit},
		{LSN: 7, XID: 3, Type: wal.RecInsert, Table: 1, After: []byte("w3")},
		{LSN: 8, XID: 3, Type: wal.RecDelete, Table: 1, Before: []byte("w3")},
		{LSN: 9, XID: 3, Type: wal.RecCommit},
	}
	an, err := Analyze(sliceIter(recs))
	if err != nil {
		t.Fatal(err)
	}
	ap := &fakeApplier{}
	st, err := Redo(sliceIter(recs), an, ap)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"create-table:t",
		"insert:w1",
		"update:w1->w2",
		"insert:w3",
		"delete:w3",
	}
	if !reflect.DeepEqual(ap.ops, want) {
		t.Errorf("replayed ops = %v, want %v", ap.ops, want)
	}
	if st.Redone != 4 || st.SkippedLoser != 1 || st.DDL != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Absent checkpoint reads as "not there", not an error.
	if _, ok, err := ReadCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}

	snap := &Snapshot{
		LSN:     123,
		NextXID: 456,
		Tables: []TableSnapshot{
			{
				Meta: catalog.TableMeta{
					ID: 1, Name: "accounts",
					Columns: []record.Column{
						{Name: "id", Type: record.TypeInt},
						{Name: "name", Type: record.TypeString},
					},
					PrimaryKey: []string{"id"},
				},
				Rows: [][]byte{[]byte("row-one"), []byte("row-two"), {}},
			},
			{
				Meta: catalog.TableMeta{
					ID: 2, Name: "empty",
					Columns:    []record.Column{{Name: "k", Type: record.TypeFloat}},
					PrimaryKey: []string{"k"},
				},
			},
		},
		Indexes: []catalog.IndexMeta{
			{Name: "accounts_by_name", TableID: 1, Columns: []string{"name"}, Unique: false},
		},
	}
	if err := WriteCheckpoint(dir, snap); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("read back: ok=%v err=%v", ok, err)
	}
	if got.LSN != snap.LSN || got.NextXID != snap.NextXID {
		t.Errorf("header: got %d/%d want %d/%d", got.LSN, got.NextXID, snap.LSN, snap.NextXID)
	}
	if len(got.Tables) != 2 || got.Tables[0].Meta.Name != "accounts" || len(got.Tables[0].Rows) != 3 {
		t.Errorf("tables: %+v", got.Tables)
	}
	if string(got.Tables[0].Rows[1]) != "row-two" {
		t.Errorf("row payload corrupted: %q", got.Tables[0].Rows[1])
	}
	if !reflect.DeepEqual(got.Indexes, snap.Indexes) {
		t.Errorf("indexes: %+v", got.Indexes)
	}

	// Overwriting is atomic: a second checkpoint replaces the first.
	snap2 := &Snapshot{LSN: 999, NextXID: 1}
	if err := WriteCheckpoint(dir, snap2); err != nil {
		t.Fatal(err)
	}
	got2, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok || got2.LSN != 999 {
		t.Fatalf("second checkpoint: %+v ok=%v err=%v", got2, ok, err)
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, &Snapshot{LSN: 7}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, CheckpointFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff // flip a payload byte under the CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(dir); err == nil {
		t.Fatal("corrupt checkpoint read back without error")
	}
}
