package recovery

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"slidb/internal/catalog"
	"slidb/internal/record"
	"slidb/internal/wal"
)

// sliceIter returns an Iterator over an in-memory record slice.
func sliceIter(recs []wal.Record) Iterator {
	return func(fn func(wal.Record) error) error {
		for _, r := range recs {
			if err := fn(r); err != nil {
				return err
			}
		}
		return nil
	}
}

func TestAnalyzeClassifiesWinnersAndLosers(t *testing.T) {
	recs := []wal.Record{
		{LSN: 1, XID: 1, Type: wal.RecBegin},
		{LSN: 2, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("a")},
		{LSN: 3, XID: 2, Type: wal.RecBegin},
		{LSN: 4, XID: 2, Type: wal.RecInsert, Table: 1, After: []byte("b")},
		{LSN: 5, XID: 1, Type: wal.RecCommit},
		{LSN: 6, XID: 3, Type: wal.RecBegin}, // in flight at crash
		{LSN: 7, XID: 3, Type: wal.RecUpdate, Table: 1, Before: []byte("a"), After: []byte("c")},
		{LSN: 8, XID: 2, Type: wal.RecCLR, Table: 1, Before: []byte("b"), UndoNext: 0},
		{LSN: 9, XID: 2, Type: wal.RecAbort},  // aborted before crash
		{LSN: 10, XID: 4, Type: wal.RecBegin}, // crashed mid-rollback
		{LSN: 11, XID: 4, Type: wal.RecInsert, Table: 1, After: []byte("d")},
		{LSN: 12, XID: 4, Type: wal.RecInsert, Table: 1, After: []byte("e")},
		{LSN: 13, XID: 4, Type: wal.RecCLR, Table: 1, Before: []byte("e"), UndoNext: 11},
	}
	an, err := Analyze(sliceIter(recs))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := an.Winners[1]; !ok {
		t.Error("xid 1 committed but not a winner")
	}
	for _, xid := range []uint64{2, 3, 4} {
		if _, ok := an.Winners[xid]; ok {
			t.Errorf("xid %d must not be a winner", xid)
		}
		if _, ok := an.Losers[xid]; !ok {
			t.Errorf("xid %d must be a loser", xid)
		}
	}
	// xid 2's rollback is fully logged: nothing left for the undo pass.
	if _, ok := an.RolledBack[2]; !ok {
		t.Error("xid 2 has a durable abort record but is not classified as rolled back")
	}
	if an.NeedsUndo(2) {
		t.Error("xid 2 must not need restart undo")
	}
	// xid 3 crashed in flight with no CLR: everything needs undoing.
	if !an.NeedsUndo(3) || !reflect.DeepEqual(an.Pending[3], []wal.LSN{7}) {
		t.Errorf("xid 3: NeedsUndo=%v pending=%v, want true/[7]", an.NeedsUndo(3), an.Pending[3])
	}
	// xid 4 crashed mid-rollback: only the record its durable CLR did not
	// compensate is still pending.
	if !an.NeedsUndo(4) || !reflect.DeepEqual(an.Pending[4], []wal.LSN{11}) {
		t.Errorf("xid 4: NeedsUndo=%v pending=%v, want true/[11]", an.NeedsUndo(4), an.Pending[4])
	}
	if an.MaxLSN != 13 || an.MaxXID != 4 || an.Scanned != len(recs) {
		t.Errorf("analysis = %+v", an)
	}
}

// fakeApplier records replay calls.
type fakeApplier struct {
	ops []string
}

func (f *fakeApplier) CreateTable(m catalog.TableMeta) error {
	f.ops = append(f.ops, "create-table:"+m.Name)
	return nil
}
func (f *fakeApplier) CreateIndex(m catalog.IndexMeta) error {
	f.ops = append(f.ops, "create-index:"+m.Name)
	return nil
}
func (f *fakeApplier) Insert(table uint32, after []byte) error {
	f.ops = append(f.ops, "insert:"+string(after))
	return nil
}
func (f *fakeApplier) Update(table uint32, before, after []byte) error {
	f.ops = append(f.ops, "update:"+string(before)+"->"+string(after))
	return nil
}
func (f *fakeApplier) Delete(table uint32, before []byte) error {
	f.ops = append(f.ops, "delete:"+string(before))
	return nil
}

func TestRedoRepeatsHistoryIncludingCLRs(t *testing.T) {
	tblMeta := catalog.TableMeta{
		ID: 1, Name: "t",
		Columns:    []record.Column{{Name: "id", Type: record.TypeInt}},
		PrimaryKey: []string{"id"},
	}
	recs := []wal.Record{
		{LSN: 1, Type: wal.RecCreateTable, After: tblMeta.Encode()},
		{LSN: 2, XID: 1, Type: wal.RecBegin},
		{LSN: 3, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("w1")},
		{LSN: 4, XID: 2, Type: wal.RecInsert, Table: 1, After: []byte("loser")},
		{LSN: 5, XID: 1, Type: wal.RecUpdate, Table: 1, Before: []byte("w1"), After: []byte("w2")},
		{LSN: 6, XID: 1, Type: wal.RecCommit},
		// xid 2 rolled back before the crash: its CLR chain repeats verbatim.
		{LSN: 7, XID: 2, Type: wal.RecCLR, Table: 1, Before: []byte("loser"), UndoNext: 0},
		{LSN: 8, XID: 2, Type: wal.RecAbort},
		{LSN: 9, XID: 3, Type: wal.RecInsert, Table: 1, After: []byte("w3")},
		{LSN: 10, XID: 3, Type: wal.RecDelete, Table: 1, Before: []byte("w3")},
		{LSN: 11, XID: 3, Type: wal.RecCommit},
	}
	an, err := Analyze(sliceIter(recs))
	if err != nil {
		t.Fatal(err)
	}
	ap := &fakeApplier{}
	st, err := Redo(sliceIter(recs), an, ap)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"create-table:t",
		"insert:w1",
		"insert:loser",
		"update:w1->w2",
		"delete:loser", // xid 2's CLR compensates its insert
		"insert:w3",
		"delete:w3",
	}
	if !reflect.DeepEqual(ap.ops, want) {
		t.Errorf("replayed ops = %v, want %v", ap.ops, want)
	}
	if st.Redone != 5 || st.CLRs != 1 || st.DDL != 1 {
		t.Errorf("stats = %+v", st)
	}
	// xid 2's rollback completed via redo alone; the undo pass has nothing.
	ust, err := Undo(sliceIter(recs), an, ap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ust.Undone != 0 || ust.TxUndone != 0 {
		t.Errorf("undo stats = %+v, want all zero", ust)
	}
}

// TestUndoResumesPartialRollback pins the restart-undo contract: a rollback
// interrupted at a CLR boundary is completed from the last durable CLR's
// UndoNext — the already-compensated record is not undone a second time —
// while a loser with no CLR chain is undone in full, newest record first.
func TestUndoResumesPartialRollback(t *testing.T) {
	recs := []wal.Record{
		{LSN: 1, XID: 1, Type: wal.RecBegin},
		{LSN: 2, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("a")},
		{LSN: 3, XID: 1, Type: wal.RecUpdate, Table: 1, Before: []byte("x1"), After: []byte("x2")},
		{LSN: 4, XID: 1, Type: wal.RecDelete, Table: 1, Before: []byte("gone")},
		// Rollback started: the delete at LSN 4 was compensated (row
		// re-inserted), then the crash hit. UndoNext points at LSN 3.
		{LSN: 5, XID: 1, Type: wal.RecCLR, Table: 1, After: []byte("gone"), UndoNext: 3},
		// A second loser with no CLRs at all.
		{LSN: 6, XID: 2, Type: wal.RecInsert, Table: 1, After: []byte("b")},
	}
	an, err := Analyze(sliceIter(recs))
	if err != nil {
		t.Fatal(err)
	}
	ap := &fakeApplier{}
	var logged []wal.Record
	st, err := Undo(sliceIter(recs), an, ap, func(rec wal.Record) error {
		logged = append(logged, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"delete:b",      // xid 2's insert, newest uncompensated record first
		"update:x2->x1", // xid 1 resumes at LSN 3
		"delete:a",      // then its first action
	}
	if !reflect.DeepEqual(ap.ops, want) {
		t.Errorf("undone ops = %v, want %v", ap.ops, want)
	}
	if st.Undone != 3 || st.TxUndone != 2 || st.Resumed != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The restart undo logs itself: a CLR per undone record (UndoNext
	// chaining within each transaction) and an abort record closing each
	// completed rollback, so the next restart treats both transactions as
	// fully rolled back instead of undoing them again.
	wantLog := []wal.Record{
		{Type: wal.RecCLR, XID: 2, Table: 1, Before: []byte("b")},
		{Type: wal.RecAbort, XID: 2},
		{Type: wal.RecCLR, XID: 1, Table: 1, Before: []byte("x2"), After: []byte("x1"), UndoNext: 2},
		{Type: wal.RecCLR, XID: 1, Table: 1, Before: []byte("a")},
		{Type: wal.RecAbort, XID: 1},
	}
	if !reflect.DeepEqual(logged, wantLog) {
		t.Errorf("logged records:\ngot  %+v\nwant %+v", logged, wantLog)
	}
}

// TestUndoAfterSavepointContinuation pins the analysis/undo fix that
// savepoints (tx.RollbackTo) force: a data record logged AFTER a CLR chain
// belongs to a transaction that partially rolled back and kept working. If
// the crash then interrupts it, undo must roll back both the continuation
// records (above the last CLR) and the uncompensated prefix (at or below
// the resume point) — but never the compensated span in between — even when
// the chain had closed at UndoNext 0, which used to classify the whole
// transaction as fully rolled back.
func TestUndoAfterSavepointContinuation(t *testing.T) {
	recs := []wal.Record{
		{LSN: 1, XID: 1, Type: wal.RecBegin},
		{LSN: 2, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("pre")},
		// Savepoint taken here; the next two records are its span.
		{LSN: 3, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("sp1")},
		{LSN: 4, XID: 1, Type: wal.RecUpdate, Table: 1, Before: []byte("p1"), After: []byte("p2")},
		// RollbackTo: the span is compensated, newest first, chaining past
		// it to the pre-savepoint insert at LSN 2.
		{LSN: 5, XID: 1, Type: wal.RecCLR, Table: 1, Before: []byte("p2"), After: []byte("p1"), UndoNext: 3},
		{LSN: 6, XID: 1, Type: wal.RecCLR, Table: 1, Before: []byte("sp1"), UndoNext: 2},
		// The transaction continues and crashes before committing.
		{LSN: 7, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("cont")},
	}
	an, err := Analyze(sliceIter(recs))
	if err != nil {
		t.Fatal(err)
	}
	if !an.NeedsUndo(1) {
		t.Fatal("continuation records must keep the transaction in the undo set")
	}
	ap := &fakeApplier{}
	var logged []wal.Record
	st, err := Undo(sliceIter(recs), an, ap, func(rec wal.Record) error {
		logged = append(logged, rec)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The continuation insert (LSN 7) and the pre-savepoint insert (LSN 2)
	// are undone, newest first; the compensated span (LSNs 3-4) is not.
	want := []string{"delete:cont", "delete:pre"}
	if !reflect.DeepEqual(ap.ops, want) {
		t.Errorf("undone ops = %v, want %v", ap.ops, want)
	}
	if st.Undone != 2 || st.TxUndone != 1 || st.Resumed != 1 {
		t.Errorf("stats = %+v", st)
	}
	// The restart-logged chain bridges the compensated span: the
	// continuation's CLR points at the pre-savepoint insert.
	wantLog := []wal.Record{
		{Type: wal.RecCLR, XID: 1, Table: 1, Before: []byte("cont"), UndoNext: 2},
		{Type: wal.RecCLR, XID: 1, Table: 1, Before: []byte("pre")},
		{Type: wal.RecAbort, XID: 1},
	}
	if !reflect.DeepEqual(logged, wantLog) {
		t.Errorf("logged records:\ngot  %+v\nwant %+v", logged, wantLog)
	}

	// Two RollbackTo calls before the crash leave two SEPARATE interior
	// compensated spans — the case a single resume-point watermark cannot
	// represent (it would re-undo the first span because its records sit
	// below the second chain's UndoNext). The exact Pending simulation must
	// leave only the two uncompensated inserts.
	recsTwice := []wal.Record{
		{LSN: 1, XID: 1, Type: wal.RecBegin},
		{LSN: 2, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("a")},
		{LSN: 3, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("b")}, // span 1
		{LSN: 4, XID: 1, Type: wal.RecCLR, Table: 1, Before: []byte("b"), UndoNext: 2},
		{LSN: 5, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("c")},
		{LSN: 6, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("d")}, // span 2
		{LSN: 7, XID: 1, Type: wal.RecCLR, Table: 1, Before: []byte("d"), UndoNext: 5},
	}
	anT, err := Analyze(sliceIter(recsTwice))
	if err != nil {
		t.Fatal(err)
	}
	if got := anT.Pending[1]; !reflect.DeepEqual(got, []wal.LSN{2, 5}) {
		t.Fatalf("Pending after two partial rollbacks = %v, want [2 5]", got)
	}
	apT := &fakeApplier{}
	stT, err := Undo(sliceIter(recsTwice), anT, apT, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(apT.ops, []string{"delete:c", "delete:a"}) {
		t.Fatalf("undone ops = %v, want [delete:c delete:a] (compensated spans must not be re-undone)", apT.ops)
	}
	if stT.Undone != 2 || stT.TxUndone != 1 {
		t.Fatalf("stats = %+v", stT)
	}

	// The same shape with the chain closed at UndoNext 0 before the
	// continuation: only the continuation record needs undoing, and a
	// re-analysis of the log WITH the new abort record appended must
	// classify the transaction as fully rolled back.
	recs2 := []wal.Record{
		{LSN: 1, XID: 1, Type: wal.RecBegin},
		{LSN: 2, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("sp1")},
		{LSN: 3, XID: 1, Type: wal.RecCLR, Table: 1, Before: []byte("sp1"), UndoNext: 0},
		{LSN: 4, XID: 1, Type: wal.RecInsert, Table: 1, After: []byte("cont")},
	}
	an2, err := Analyze(sliceIter(recs2))
	if err != nil {
		t.Fatal(err)
	}
	if !an2.NeedsUndo(1) {
		t.Fatal("UndoNext 0 followed by a data record must re-open the undo obligation")
	}
	ap2 := &fakeApplier{}
	st2, err := Undo(sliceIter(recs2), an2, ap2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ap2.ops, []string{"delete:cont"}) || st2.Undone != 1 {
		t.Errorf("undone ops = %v (stats %+v), want just delete:cont", ap2.ops, st2)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()

	// Absent checkpoint reads as "not there", not an error.
	if _, ok, err := ReadCheckpoint(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}

	snap := &Snapshot{
		LSN:     123,
		NextXID: 456,
		Tables: []TableSnapshot{
			{
				Meta: catalog.TableMeta{
					ID: 1, Name: "accounts",
					Columns: []record.Column{
						{Name: "id", Type: record.TypeInt},
						{Name: "name", Type: record.TypeString},
					},
					PrimaryKey: []string{"id"},
				},
				Rows: [][]byte{[]byte("row-one"), []byte("row-two"), {}},
			},
			{
				Meta: catalog.TableMeta{
					ID: 2, Name: "empty",
					Columns:    []record.Column{{Name: "k", Type: record.TypeFloat}},
					PrimaryKey: []string{"k"},
				},
			},
		},
		Indexes: []catalog.IndexMeta{
			{Name: "accounts_by_name", TableID: 1, Columns: []string{"name"}, Unique: false},
		},
	}
	if err := WriteCheckpoint(dir, snap); err != nil {
		t.Fatal(err)
	}
	got, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok {
		t.Fatalf("read back: ok=%v err=%v", ok, err)
	}
	if got.LSN != snap.LSN || got.NextXID != snap.NextXID {
		t.Errorf("header: got %d/%d want %d/%d", got.LSN, got.NextXID, snap.LSN, snap.NextXID)
	}
	if len(got.Tables) != 2 || got.Tables[0].Meta.Name != "accounts" || len(got.Tables[0].Rows) != 3 {
		t.Errorf("tables: %+v", got.Tables)
	}
	if string(got.Tables[0].Rows[1]) != "row-two" {
		t.Errorf("row payload corrupted: %q", got.Tables[0].Rows[1])
	}
	if !reflect.DeepEqual(got.Indexes, snap.Indexes) {
		t.Errorf("indexes: %+v", got.Indexes)
	}

	// Overwriting is atomic: a second checkpoint replaces the first.
	snap2 := &Snapshot{LSN: 999, NextXID: 1}
	if err := WriteCheckpoint(dir, snap2); err != nil {
		t.Fatal(err)
	}
	got2, ok, err := ReadCheckpoint(dir)
	if err != nil || !ok || got2.LSN != 999 {
		t.Fatalf("second checkpoint: %+v ok=%v err=%v", got2, ok, err)
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, &Snapshot{LSN: 7}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, CheckpointFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0xff // flip a payload byte under the CRC
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadCheckpoint(dir); err == nil {
		t.Fatal("corrupt checkpoint read back without error")
	}
}
