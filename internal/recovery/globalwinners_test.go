package recovery

import (
	"errors"
	"testing"

	"slidb/internal/wal"
)

// an builds an Analysis from winner/rolled-back XID sets and participant
// masks, with the remaining maps empty.
func an(winners []uint64, rolledBack []uint64, participants map[uint64]uint64) *Analysis {
	a := &Analysis{
		Winners:      make(map[uint64]struct{}),
		Losers:       make(map[uint64]struct{}),
		RolledBack:   make(map[uint64]struct{}),
		UndoNext:     make(map[uint64]wal.LSN),
		Pending:      make(map[uint64][]wal.LSN),
		Participants: make(map[uint64]uint64),
	}
	for _, x := range winners {
		a.Winners[x] = struct{}{}
	}
	for _, x := range rolledBack {
		a.RolledBack[x] = struct{}{}
	}
	for x, m := range participants {
		a.Participants[x] = m
	}
	return a
}

func wantWinners(t *testing.T, got map[uint64]struct{}, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d global winners %v, want %d %v", len(got), got, len(want), want)
	}
	for _, x := range want {
		if _, ok := got[x]; !ok {
			t.Fatalf("xid %d missing from global winners %v", x, got)
		}
	}
}

func TestGlobalWinnersSingleShard(t *testing.T) {
	// Shard-local winners pass through; a rolled-back (demoted, already
	// undone) winner does not.
	got, err := GlobalWinners([]*Analysis{an([]uint64{1, 2}, []uint64{2}, nil)})
	if err != nil {
		t.Fatal(err)
	}
	wantWinners(t, got, 1)
}

func TestGlobalWinnersSingleShardForeignMask(t *testing.T) {
	// A commit record naming shard 1 inside a one-shard directory means the
	// directory was reopened with too few shards: format error, loudly.
	_, err := GlobalWinners([]*Analysis{an([]uint64{1}, nil, map[uint64]uint64{1: 0b11})})
	if !errors.Is(err, wal.ErrLogFormat) {
		t.Fatalf("err = %v, want ErrLogFormat", err)
	}
}

func TestGlobalWinnersAllParticipantsPresent(t *testing.T) {
	// xid 7 committed on both masked shards; xid 9 is maskless (single-
	// participant) on shard 1 only.
	per := []*Analysis{
		an([]uint64{7}, nil, map[uint64]uint64{7: 0b11}),
		an([]uint64{7, 9}, nil, map[uint64]uint64{7: 0b11}),
	}
	got, err := GlobalWinners(per)
	if err != nil {
		t.Fatal(err)
	}
	wantWinners(t, got, 7, 9)
}

func TestGlobalWinnersMissingParticipantDemotes(t *testing.T) {
	// xid 7's commit record survived on shard 0 but not on shard 1: the
	// all-or-nothing rule demotes it to a global loser.
	per := []*Analysis{
		an([]uint64{7}, nil, map[uint64]uint64{7: 0b11}),
		an(nil, nil, nil),
	}
	got, err := GlobalWinners(per)
	if err != nil {
		t.Fatal(err)
	}
	wantWinners(t, got)
}

func TestGlobalWinnersRolledBackAnywhereDemotes(t *testing.T) {
	// Every participant has the commit record, but shard 1 also scanned a
	// completed rollback for the xid (an earlier recovery incarnation undid
	// it): it must stay demoted, or replaying its redo would resurrect it.
	per := []*Analysis{
		an([]uint64{7}, nil, map[uint64]uint64{7: 0b11}),
		an([]uint64{7}, []uint64{7}, map[uint64]uint64{7: 0b11}),
	}
	got, err := GlobalWinners(per)
	if err != nil {
		t.Fatal(err)
	}
	wantWinners(t, got)
}

func TestGlobalWinnersMaskBeyondShardCount(t *testing.T) {
	// A mask naming shard 2 in a two-shard directory is a layout mismatch,
	// never a silent demotion.
	per := []*Analysis{
		an([]uint64{7}, nil, map[uint64]uint64{7: 0b101}),
		an(nil, nil, nil),
	}
	if _, err := GlobalWinners(per); !errors.Is(err, wal.ErrLogFormat) {
		t.Fatalf("err = %v, want ErrLogFormat", err)
	}
}
