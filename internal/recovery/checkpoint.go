package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"slidb/internal/catalog"
	"slidb/internal/wal"
)

// CheckpointFile is the name of the checkpoint inside a data directory.
const CheckpointFile = "checkpoint.db"

// checkpointMagic identifies (and versions) the checkpoint format. Version 2
// is the byte-offset LSN format: Snapshot.LSN is the durable watermark (an
// exclusive end offset) rather than a dense record counter.
var checkpointMagic = []byte("SLDBCKP2")

// checkpointMagicV1 is the pre-byte-offset format; its LSNs are dense record
// numbers and cannot be interpreted by this build, so reading one fails with
// wal.ErrLogFormat instead of a misleading corruption error.
var checkpointMagicV1 = []byte("SLDBCKP1")

// ErrBadCheckpoint is returned when a checkpoint file fails validation.
var ErrBadCheckpoint = errors.New("recovery: corrupt checkpoint")

// Snapshot is a point-in-time logical image of the database: the catalog
// plus every table's encoded rows, consistent as of LSN. Restart restores
// the snapshot and then replays only log records with LSN >= Snapshot.LSN,
// which is how checkpointing bounds recovery work.
type Snapshot struct {
	// LSN is the durable watermark the snapshot covers — the exclusive end
	// offset of the log prefix whose effects are reflected in the table
	// images, and therefore exactly the frame boundary replay resumes at.
	LSN wal.LSN
	// NextXID seeds the engine's transaction-ID allocator so XIDs stay
	// monotonic across restarts.
	NextXID uint64
	// Tables holds each table's metadata and rows, in catalog order.
	Tables []TableSnapshot
	// Indexes holds secondary-index metadata; index contents are rebuilt
	// from the table rows at restore time.
	Indexes []catalog.IndexMeta
}

// TableSnapshot is one table's schema and encoded rows.
type TableSnapshot struct {
	Meta catalog.TableMeta
	Rows [][]byte
}

// encode serializes the snapshot payload (everything after the magic).
func (s *Snapshot) encode() []byte {
	var buf []byte
	put := func(v uint64) { buf = binary.AppendUvarint(buf, v) }
	putBytes := func(b []byte) {
		put(uint64(len(b)))
		buf = append(buf, b...)
	}
	put(uint64(s.LSN))
	put(s.NextXID)
	put(uint64(len(s.Tables)))
	for _, t := range s.Tables {
		putBytes(t.Meta.Encode())
		put(uint64(len(t.Rows)))
		for _, row := range t.Rows {
			putBytes(row)
		}
	}
	put(uint64(len(s.Indexes)))
	for _, ix := range s.Indexes {
		putBytes(ix.Encode())
	}
	return buf
}

func decodeSnapshot(payload []byte) (*Snapshot, error) {
	pos := 0
	get := func() (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, ErrBadCheckpoint
		}
		pos += n
		return v, nil
	}
	getBytes := func() ([]byte, error) {
		n, err := get()
		if err != nil {
			return nil, err
		}
		if pos+int(n) > len(payload) {
			return nil, ErrBadCheckpoint
		}
		b := payload[pos : pos+int(n)]
		pos += int(n)
		return b, nil
	}
	s := &Snapshot{}
	lsn, err := get()
	if err != nil {
		return nil, err
	}
	s.LSN = wal.LSN(lsn)
	if s.NextXID, err = get(); err != nil {
		return nil, err
	}
	nTables, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTables; i++ {
		metaBytes, err := getBytes()
		if err != nil {
			return nil, err
		}
		meta, err := catalog.DecodeTableMeta(metaBytes)
		if err != nil {
			return nil, err
		}
		nRows, err := get()
		if err != nil {
			return nil, err
		}
		t := TableSnapshot{Meta: meta}
		for j := uint64(0); j < nRows; j++ {
			row, err := getBytes()
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, append([]byte(nil), row...))
		}
		s.Tables = append(s.Tables, t)
	}
	nIdx, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nIdx; i++ {
		metaBytes, err := getBytes()
		if err != nil {
			return nil, err
		}
		meta, err := catalog.DecodeIndexMeta(metaBytes)
		if err != nil {
			return nil, err
		}
		s.Indexes = append(s.Indexes, meta)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(payload)-pos)
	}
	return s, nil
}

// WriteCheckpoint atomically persists the snapshot into dir: the file is
// written to a temporary name, fsynced, renamed over CheckpointFile, and the
// directory is fsynced, so a crash at any point leaves either the old or the
// new checkpoint intact — never a torn one. A CRC over the payload guards
// against partial-page corruption on read.
func WriteCheckpoint(dir string, snap *Snapshot) error {
	payload := snap.encode()
	buf := make([]byte, 0, len(checkpointMagic)+len(payload)+12)
	buf = append(buf, checkpointMagic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))

	tmp := filepath.Join(dir, CheckpointFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("recovery: create checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("recovery: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("recovery: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("recovery: close checkpoint: %w", err)
	}
	final := filepath.Join(dir, CheckpointFile)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("recovery: install checkpoint: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("recovery: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("recovery: sync dir: %w", err)
	}
	return nil
}

// ReadCheckpoint loads the checkpoint from dir. The second result is false
// when no checkpoint exists (a fresh or never-checkpointed directory).
func ReadCheckpoint(dir string) (*Snapshot, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("recovery: read checkpoint: %w", err)
	}
	if len(data) < len(checkpointMagic)+12 {
		return nil, false, fmt.Errorf("%w: too short", ErrBadCheckpoint)
	}
	if string(data[:len(checkpointMagic)]) != string(checkpointMagic) {
		if string(data[:len(checkpointMagicV1)]) == string(checkpointMagicV1) {
			return nil, false, fmt.Errorf("%w: checkpoint is format version 1 (dense LSNs)", wal.ErrLogFormat)
		}
		return nil, false, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	rest := data[len(checkpointMagic):]
	payloadLen := binary.LittleEndian.Uint64(rest[:8])
	rest = rest[8:]
	if uint64(len(rest)) != payloadLen+4 {
		return nil, false, fmt.Errorf("%w: length mismatch", ErrBadCheckpoint)
	}
	payload := rest[:payloadLen]
	sum := binary.LittleEndian.Uint32(rest[payloadLen:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false, fmt.Errorf("%w: checksum mismatch", ErrBadCheckpoint)
	}
	snap, err := decodeSnapshot(payload)
	if err != nil {
		return nil, false, err
	}
	return snap, true, nil
}
