package recovery

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"

	"slidb/internal/catalog"
	"slidb/internal/wal"
)

// CheckpointFile is the name of the checkpoint inside a data directory.
const CheckpointFile = "checkpoint.db"

// checkpointMagic identifies (and versions) the checkpoint format. Version 2
// is the byte-offset LSN format: Snapshot.LSN is the durable watermark (an
// exclusive end offset) rather than a dense record counter. Single-shard
// checkpoints are still written as version 2, so LogShards=1 directories
// stay byte-compatible with pre-shard builds.
var checkpointMagic = []byte("SLDBCKP2")

// checkpointMagicV3 is the sharded-log format: the version-2 payload
// prefixed with the per-shard durable boundary vector (one watermark per log
// shard, each the exclusive end offset replay resumes at on that shard).
// Written only when the directory has more than one log shard.
var checkpointMagicV3 = []byte("SLDBCKP3")

// checkpointMagicV1 is the pre-byte-offset format; its LSNs are dense record
// numbers and cannot be interpreted by this build, so reading one fails with
// wal.ErrLogFormat instead of a misleading corruption error.
var checkpointMagicV1 = []byte("SLDBCKP1")

// ErrBadCheckpoint is returned when a checkpoint file fails validation.
var ErrBadCheckpoint = errors.New("recovery: corrupt checkpoint")

// Snapshot is a point-in-time logical image of the database: the catalog
// plus every table's encoded rows, consistent as of LSN. Restart restores
// the snapshot and then replays only log records with LSN >= Snapshot.LSN,
// which is how checkpointing bounds recovery work.
type Snapshot struct {
	// LSN is the durable watermark the snapshot covers — the exclusive end
	// offset of the log prefix whose effects are reflected in the table
	// images, and therefore exactly the frame boundary replay resumes at.
	// Under sharded logs this is shard 0's entry of LSNs, kept for
	// single-shard compatibility.
	LSN wal.LSN
	// LSNs is the per-shard durable boundary vector: LSNs[s] is the
	// exclusive end offset replay resumes at on log shard s. Empty for a
	// single-shard (version 2) checkpoint, whose vector is [LSN]. The engine
	// quiesces execution while checkpointing, so no transaction's records
	// straddle the vector: everything below it on every shard is reflected
	// in the table images, everything at or above it is replayed.
	LSNs []wal.LSN
	// NextXID seeds the engine's transaction-ID allocator so XIDs stay
	// monotonic across restarts.
	NextXID uint64
	// Tables holds each table's metadata and rows, in catalog order.
	Tables []TableSnapshot
	// Indexes holds secondary-index metadata; index contents are rebuilt
	// from the table rows at restore time.
	Indexes []catalog.IndexMeta
}

// TableSnapshot is one table's schema and encoded rows.
type TableSnapshot struct {
	Meta catalog.TableMeta
	Rows [][]byte
}

// Vector returns the snapshot's per-shard boundary vector for a directory
// with n log shards, validating that the checkpoint matches the layout: a
// mismatch means the directory was tampered with or misconfigured and is a
// loud format error, never a silent partial replay.
func (s *Snapshot) Vector(n int) ([]wal.LSN, error) {
	if len(s.LSNs) == 0 {
		if n != 1 {
			return nil, fmt.Errorf("%w: single-shard checkpoint in a %d-shard log directory", wal.ErrLogFormat, n)
		}
		return []wal.LSN{s.LSN}, nil
	}
	if len(s.LSNs) != n {
		return nil, fmt.Errorf("%w: checkpoint records %d log-shard boundaries but the directory has %d shards",
			wal.ErrLogFormat, len(s.LSNs), n)
	}
	return s.LSNs, nil
}

// encode serializes the snapshot payload (everything after the magic).
func (s *Snapshot) encode() []byte {
	var buf []byte
	put := func(v uint64) { buf = binary.AppendUvarint(buf, v) }
	putBytes := func(b []byte) {
		put(uint64(len(b)))
		buf = append(buf, b...)
	}
	put(uint64(s.LSN))
	put(s.NextXID)
	put(uint64(len(s.Tables)))
	for _, t := range s.Tables {
		putBytes(t.Meta.Encode())
		put(uint64(len(t.Rows)))
		for _, row := range t.Rows {
			putBytes(row)
		}
	}
	put(uint64(len(s.Indexes)))
	for _, ix := range s.Indexes {
		putBytes(ix.Encode())
	}
	return buf
}

func decodeSnapshot(payload []byte) (*Snapshot, error) {
	pos := 0
	get := func() (uint64, error) {
		v, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			return 0, ErrBadCheckpoint
		}
		pos += n
		return v, nil
	}
	getBytes := func() ([]byte, error) {
		n, err := get()
		if err != nil {
			return nil, err
		}
		if pos+int(n) > len(payload) {
			return nil, ErrBadCheckpoint
		}
		b := payload[pos : pos+int(n)]
		pos += int(n)
		return b, nil
	}
	s := &Snapshot{}
	lsn, err := get()
	if err != nil {
		return nil, err
	}
	s.LSN = wal.LSN(lsn)
	if s.NextXID, err = get(); err != nil {
		return nil, err
	}
	nTables, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nTables; i++ {
		metaBytes, err := getBytes()
		if err != nil {
			return nil, err
		}
		meta, err := catalog.DecodeTableMeta(metaBytes)
		if err != nil {
			return nil, err
		}
		nRows, err := get()
		if err != nil {
			return nil, err
		}
		t := TableSnapshot{Meta: meta}
		for j := uint64(0); j < nRows; j++ {
			row, err := getBytes()
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, append([]byte(nil), row...))
		}
		s.Tables = append(s.Tables, t)
	}
	nIdx, err := get()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nIdx; i++ {
		metaBytes, err := getBytes()
		if err != nil {
			return nil, err
		}
		meta, err := catalog.DecodeIndexMeta(metaBytes)
		if err != nil {
			return nil, err
		}
		s.Indexes = append(s.Indexes, meta)
	}
	if pos != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadCheckpoint, len(payload)-pos)
	}
	return s, nil
}

// WriteCheckpoint atomically persists the snapshot into dir: the file is
// written to a temporary name, fsynced, renamed over CheckpointFile, and the
// directory is fsynced, so a crash at any point leaves either the old or the
// new checkpoint intact — never a torn one. A CRC over the payload guards
// against partial-page corruption on read.
func WriteCheckpoint(dir string, snap *Snapshot) error {
	payload := snap.encode()
	magic := checkpointMagic
	if len(snap.LSNs) > 1 {
		// Sharded directory: version 3, the version-2 payload prefixed with
		// the per-shard boundary vector.
		magic = checkpointMagicV3
		vec := binary.AppendUvarint(nil, uint64(len(snap.LSNs)))
		for _, l := range snap.LSNs {
			vec = binary.AppendUvarint(vec, uint64(l))
		}
		payload = append(vec, payload...)
	}
	buf := make([]byte, 0, len(magic)+len(payload)+12)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))

	tmp := filepath.Join(dir, CheckpointFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("recovery: create checkpoint: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("recovery: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("recovery: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("recovery: close checkpoint: %w", err)
	}
	final := filepath.Join(dir, CheckpointFile)
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("recovery: install checkpoint: %w", err)
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("recovery: open dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("recovery: sync dir: %w", err)
	}
	return nil
}

// ReadCheckpoint loads the checkpoint from dir. The second result is false
// when no checkpoint exists (a fresh or never-checkpointed directory).
func ReadCheckpoint(dir string) (*Snapshot, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, CheckpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("recovery: read checkpoint: %w", err)
	}
	if len(data) < len(checkpointMagic)+12 {
		return nil, false, fmt.Errorf("%w: too short", ErrBadCheckpoint)
	}
	magic := string(data[:len(checkpointMagic)])
	sharded := magic == string(checkpointMagicV3)
	if magic != string(checkpointMagic) && !sharded {
		if string(data[:len(checkpointMagicV1)]) == string(checkpointMagicV1) {
			return nil, false, fmt.Errorf("%w: checkpoint is format version 1 (dense LSNs)", wal.ErrLogFormat)
		}
		return nil, false, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	rest := data[len(checkpointMagic):]
	payloadLen := binary.LittleEndian.Uint64(rest[:8])
	rest = rest[8:]
	if uint64(len(rest)) != payloadLen+4 {
		return nil, false, fmt.Errorf("%w: length mismatch", ErrBadCheckpoint)
	}
	payload := rest[:payloadLen]
	sum := binary.LittleEndian.Uint32(rest[payloadLen:])
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, false, fmt.Errorf("%w: checksum mismatch", ErrBadCheckpoint)
	}
	var vec []wal.LSN
	if sharded {
		count, n := binary.Uvarint(payload)
		if n <= 0 || count < 2 || count > wal.MaxLogShards {
			return nil, false, fmt.Errorf("%w: bad log-shard boundary vector", ErrBadCheckpoint)
		}
		payload = payload[n:]
		vec = make([]wal.LSN, count)
		for i := range vec {
			v, n := binary.Uvarint(payload)
			if n <= 0 {
				return nil, false, fmt.Errorf("%w: truncated log-shard boundary vector", ErrBadCheckpoint)
			}
			vec[i] = wal.LSN(v)
			payload = payload[n:]
		}
	}
	snap, err := decodeSnapshot(payload)
	if err != nil {
		return nil, false, err
	}
	snap.LSNs = vec
	return snap, true, nil
}
