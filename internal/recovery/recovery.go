// Package recovery implements ARIES-style restart for the slidb storage
// manager: an analysis pass over the durable log tail that separates winner
// transactions (whose commit record reached the log) from losers, and a redo
// pass that replays the winners' data records — plus non-transactional DDL —
// against the storage layer, in log order. It also defines the checkpoint
// file format that bounds how much log the restart has to scan.
//
// Redo here is logical: data records carry full before/after images, and the
// applier locates rows by primary key rather than by the record IDs the
// original run happened to use. Combined with strict two-phase locking at
// run time (conflicting writes are ordered by their commit order in the
// log), replaying the winners' records in LSN order reconstructs exactly the
// committed state. Losers — transactions with no durable commit record,
// whether they were in flight or had already aborted — are simply never
// replayed; undo is therefore unnecessary, which is what lets the engine
// checkpoint logical snapshots instead of physical pages.
package recovery

import (
	"fmt"

	"slidb/internal/catalog"
	"slidb/internal/wal"
)

// Iterator scans a durable log tail in LSN order, invoking fn for every
// record. wal.Segments.Iterate, partially applied with a start LSN, is the
// production implementation.
type Iterator func(fn func(wal.Record) error) error

// Analysis is the result of the analysis pass.
type Analysis struct {
	// Winners holds the XIDs of transactions whose commit record is durable.
	Winners map[uint64]struct{}
	// Losers holds the XIDs of transactions that appear in the log tail but
	// never durably committed (in-flight at the crash, or aborted).
	Losers map[uint64]struct{}
	// MaxLSN is the highest LSN seen in the scan.
	MaxLSN wal.LSN
	// MaxXID is the highest transaction ID seen; the engine resumes its XID
	// allocator above it so stale loser records can never be confused with
	// records of a new transaction in a later recovery.
	MaxXID uint64
	// Scanned counts the log records examined.
	Scanned int
}

// Analyze runs the analysis pass over the log tail.
func Analyze(iter Iterator) (*Analysis, error) {
	an := &Analysis{
		Winners: make(map[uint64]struct{}),
		Losers:  make(map[uint64]struct{}),
	}
	err := iter(func(rec wal.Record) error {
		an.Scanned++
		if rec.LSN > an.MaxLSN {
			an.MaxLSN = rec.LSN
		}
		if rec.XID > an.MaxXID {
			an.MaxXID = rec.XID
		}
		switch rec.Type {
		case wal.RecCommit:
			an.Winners[rec.XID] = struct{}{}
			delete(an.Losers, rec.XID)
		case wal.RecCreateTable, wal.RecCreateIndex:
			// DDL is non-transactional; it belongs to no XID.
		default:
			if rec.XID != 0 {
				if _, won := an.Winners[rec.XID]; !won {
					an.Losers[rec.XID] = struct{}{}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("recovery: analysis: %w", err)
	}
	return an, nil
}

// Applier receives the redo pass's replay calls. The engine implements it on
// top of its heap files and B+tree indexes.
type Applier interface {
	// CreateTable replays table DDL. It must be idempotent with respect to
	// tables already present (e.g. restored from a checkpoint).
	CreateTable(meta catalog.TableMeta) error
	// CreateIndex replays index DDL, backfilling from rows already replayed.
	CreateIndex(meta catalog.IndexMeta) error
	// Insert replays a committed insert; after is the encoded row.
	Insert(table uint32, after []byte) error
	// Update replays a committed update; before/after are encoded rows with
	// an unchanged primary key.
	Update(table uint32, before, after []byte) error
	// Delete replays a committed delete; before is the encoded row.
	Delete(table uint32, before []byte) error
}

// RedoStats summarizes the redo pass.
type RedoStats struct {
	// Redone counts winner data records replayed.
	Redone int
	// SkippedLoser counts loser data records discarded.
	SkippedLoser int
	// DDL counts CREATE TABLE / CREATE INDEX records replayed.
	DDL int
}

// Redo replays the log tail against ap: DDL records unconditionally, data
// records only for transactions the analysis classified as winners, all in
// LSN order.
func Redo(iter Iterator, an *Analysis, ap Applier) (RedoStats, error) {
	var st RedoStats
	err := iter(func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecCreateTable:
			meta, err := catalog.DecodeTableMeta(rec.After)
			if err != nil {
				return fmt.Errorf("LSN %d: %w", rec.LSN, err)
			}
			st.DDL++
			return ap.CreateTable(meta)
		case wal.RecCreateIndex:
			meta, err := catalog.DecodeIndexMeta(rec.After)
			if err != nil {
				return fmt.Errorf("LSN %d: %w", rec.LSN, err)
			}
			st.DDL++
			return ap.CreateIndex(meta)
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
			if _, won := an.Winners[rec.XID]; !won {
				st.SkippedLoser++
				return nil
			}
			st.Redone++
			var err error
			switch rec.Type {
			case wal.RecInsert:
				err = ap.Insert(rec.Table, rec.After)
			case wal.RecUpdate:
				err = ap.Update(rec.Table, rec.Before, rec.After)
			case wal.RecDelete:
				err = ap.Delete(rec.Table, rec.Before)
			}
			if err != nil {
				return fmt.Errorf("LSN %d (%v, xid %d): %w", rec.LSN, rec.Type, rec.XID, err)
			}
			return nil
		default:
			// BEGIN/COMMIT/ABORT carry no redo work.
			return nil
		}
	})
	if err != nil {
		return st, fmt.Errorf("recovery: redo: %w", err)
	}
	return st, nil
}
