// Package recovery implements ARIES-style restart for the slidb storage
// manager: an analysis pass over the durable log tail that classifies every
// transaction by its durable outcome record (committed, fully rolled back,
// or interrupted), a redo pass that repeats history — replaying every data
// record and compensation record (CLR), plus non-transactional DDL, in log
// order — and an undo pass that completes the rollback of transactions
// interrupted mid-flight or mid-rollback. It also defines the checkpoint
// file format that bounds how much log the restart has to scan.
//
// Redo here is logical: data records carry full before/after images, and the
// applier locates rows by primary key rather than by the record IDs the
// original run happened to use. Combined with strict two-phase locking at
// run time (conflicting writes are ordered by their position in the log),
// replaying every record in LSN order reproduces exactly the pre-crash
// sequence of states. Rollbacks are compensation-logged at run time: each
// undo action appends a redo-only CLR whose UndoNext field points at the
// transaction's next still-to-be-undone record, so redo replays completed
// rollback work verbatim and the undo pass resumes each interrupted
// rollback from its last durable CLR instead of re-undoing compensated
// actions. A transaction whose abort record reached the log (or whose CLR
// chain ends with UndoNext 0) is fully rolled back by redo alone and needs
// no restart undo.
package recovery

import (
	"fmt"

	"slidb/internal/catalog"
	"slidb/internal/wal"
)

// Iterator scans a durable log tail in LSN order, invoking fn for every
// record. wal.Segments.Iterate, partially applied with a start LSN, is the
// production implementation.
type Iterator func(fn func(wal.Record) error) error

// Analysis is the result of the analysis pass.
type Analysis struct {
	// Winners holds the XIDs of transactions whose commit record is durable.
	Winners map[uint64]struct{}
	// Losers holds the XIDs of transactions that appear in the log tail but
	// never durably committed — whether interrupted in flight, interrupted
	// mid-rollback, or fully rolled back before the crash.
	Losers map[uint64]struct{}
	// RolledBack holds the subset of Losers whose rollback is completely
	// logged: a durable abort record, or a CLR chain ending at UndoNext 0.
	// Redo repeats their entire history (updates and compensations) and the
	// undo pass skips them.
	RolledBack map[uint64]struct{}
	// UndoNext maps each loser XID with a durable CLR to the UndoNext of
	// its last durable CLR. It is diagnostic (the Resumed statistic); the
	// undo work list itself comes from Pending, which is exact.
	UndoNext map[uint64]wal.LSN
	// Pending maps each XID to the LSNs of its data records that no durable
	// CLR compensates, in log order — exactly the records the undo pass must
	// roll back if the transaction turns out to need it. It is reconstructed
	// by simulating the CLR chain: a data record pushes its LSN, a CLR pops
	// the newest uncompensated one (CLRs are logged newest-first within a
	// rollback). Watermark-based inference cannot represent a transaction
	// that rolled back to a savepoint more than once — each RollbackTo
	// leaves a separate interior compensated span — so the set is tracked
	// explicitly. Winners keep their Pending lists: under sharded logs a
	// shard-local winner can be demoted to a global loser (another
	// participant's commit record did not survive), and its uncompensated
	// records are then exactly what restart undo must roll back here.
	Pending map[uint64][]wal.LSN
	// Participants maps each XID whose commit record carried a cross-shard
	// participant mask to that mask (the union, if several commit records
	// were scanned). A single-shard commit carries no mask and does not
	// appear here; the merge substitutes the scanned shard's own bit.
	Participants map[uint64]uint64
	// MaxLSN is the highest LSN seen in the scan.
	MaxLSN wal.LSN
	// MaxXID is the highest transaction ID seen; the engine resumes its XID
	// allocator above it so stale loser records can never be confused with
	// records of a new transaction in a later recovery.
	MaxXID uint64
	// Scanned counts the log records examined.
	Scanned int
}

// NeedsUndo reports whether the transaction has rollback work left for the
// undo pass: it is a loser whose rollback was not completely logged.
func (an *Analysis) NeedsUndo(xid uint64) bool {
	if _, lost := an.Losers[xid]; !lost {
		return false
	}
	_, done := an.RolledBack[xid]
	return !done
}

// GlobalWinners merges one analysis per log shard into the set of globally
// committed transactions. A transaction is committed iff every shard named in
// its participant mask holds a durable commit record for it — the all-or-
// nothing rule that makes the per-shard commit records plus the flush
// rendezvous a correct two-phase commit — and no shard subsequently rolled it
// back (a demoted winner whose restart undo already completed on an earlier
// incarnation). A commit record without a mask claims only the shard it was
// scanned on. A mask naming a shard beyond len(per) means the directory was
// reopened with too few shards; that is a format error, never a silent
// demotion.
func GlobalWinners(per []*Analysis) (map[uint64]struct{}, error) {
	if len(per) == 1 {
		// Single log: every shard-local winner is global (masks, if any,
		// could only name shard 0).
		out := make(map[uint64]struct{}, len(per[0].Winners))
		for xid := range per[0].Winners {
			if mask := per[0].Participants[xid]; mask&^1 != 0 {
				return nil, fmt.Errorf("%w: commit record for xid %d names log shards %#x but the directory has 1 shard",
					wal.ErrLogFormat, xid, mask)
			}
			if _, rb := per[0].RolledBack[xid]; !rb {
				out[xid] = struct{}{}
			}
		}
		return out, nil
	}
	union := make(map[uint64]uint64)
	for s, an := range per {
		for xid := range an.Winners {
			mask := an.Participants[xid]
			if mask == 0 {
				mask = 1 << uint(s)
			}
			union[xid] |= mask
		}
	}
	out := make(map[uint64]struct{}, len(union))
	for xid, mask := range union {
		if mask>>uint(len(per)) != 0 {
			return nil, fmt.Errorf("%w: commit record for xid %d names log shards %#x but the directory has %d shards",
				wal.ErrLogFormat, xid, mask, len(per))
		}
		committed := true
		for s := range per {
			if mask&(1<<uint(s)) == 0 {
				continue
			}
			if _, won := per[s].Winners[xid]; !won {
				committed = false
				break
			}
		}
		if committed {
			for s := range per {
				if _, rb := per[s].RolledBack[xid]; rb {
					committed = false
					break
				}
			}
		}
		if committed {
			out[xid] = struct{}{}
		}
	}
	return out, nil
}

// Analyze runs the analysis pass over the log tail.
func Analyze(iter Iterator) (*Analysis, error) {
	an := &Analysis{
		Winners:      make(map[uint64]struct{}),
		Losers:       make(map[uint64]struct{}),
		RolledBack:   make(map[uint64]struct{}),
		UndoNext:     make(map[uint64]wal.LSN),
		Pending:      make(map[uint64][]wal.LSN),
		Participants: make(map[uint64]uint64),
	}
	err := iter(func(rec wal.Record) error {
		an.Scanned++
		if rec.LSN > an.MaxLSN {
			an.MaxLSN = rec.LSN
		}
		if rec.XID > an.MaxXID {
			an.MaxXID = rec.XID
		}
		switch rec.Type {
		case wal.RecCommit:
			mask, merr := wal.DecodeShardMask(rec.After)
			if merr != nil {
				return fmt.Errorf("LSN %d (commit, xid %d): %w", rec.LSN, rec.XID, merr)
			}
			if mask != 0 {
				an.Participants[rec.XID] |= mask
			}
			an.Winners[rec.XID] = struct{}{}
			delete(an.Losers, rec.XID)
			// Pending is NOT dropped: a shard-local winner can be demoted by
			// the cross-shard merge, and undo then needs its record list.
			// NeedsUndo still excludes plain winners.
		case wal.RecAbort:
			// The rollback completed and its outcome record is durable; the
			// CLR chain below it is durable too (single totally ordered log).
			an.Losers[rec.XID] = struct{}{}
			an.RolledBack[rec.XID] = struct{}{}
			delete(an.Pending, rec.XID)
		case wal.RecCLR:
			an.Losers[rec.XID] = struct{}{}
			an.UndoNext[rec.XID] = rec.UndoNext
			// The CLR compensates the transaction's newest still-pending
			// data record (rollback proceeds newest-first): pop it. When the
			// pop empties the set, the rollback is — at this point in the
			// log — completely compensated; a later data record (a savepoint
			// rollback the transaction continued past) re-opens it below.
			if s := an.Pending[rec.XID]; len(s) > 0 {
				an.Pending[rec.XID] = s[:len(s)-1]
				if len(s) == 1 {
					an.RolledBack[rec.XID] = struct{}{}
				}
			} else if rec.UndoNext == 0 {
				// No pending record in the scanned tail and the chain closes
				// at 0: fully rolled back (e.g. the chain's data records sit
				// below the checkpoint the scan started at).
				an.RolledBack[rec.XID] = struct{}{}
			}
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
			if rec.XID != 0 {
				if _, won := an.Winners[rec.XID]; !won {
					an.Losers[rec.XID] = struct{}{}
				}
				an.Pending[rec.XID] = append(an.Pending[rec.XID], rec.LSN)
				// New work after a completed CLR chain (tx.RollbackTo, then
				// the transaction kept going) re-opens the undo obligation.
				delete(an.RolledBack, rec.XID)
			}
		case wal.RecCreateTable, wal.RecCreateIndex:
			// DDL is non-transactional; it belongs to no XID.
		default:
			if rec.XID != 0 {
				if _, won := an.Winners[rec.XID]; !won {
					an.Losers[rec.XID] = struct{}{}
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("recovery: analysis: %w", err)
	}
	return an, nil
}

// Applier receives the redo and undo passes' replay calls. The engine
// implements it on top of its heap files and B+tree indexes.
type Applier interface {
	// CreateTable replays table DDL. It must be idempotent with respect to
	// tables already present (e.g. restored from a checkpoint).
	CreateTable(meta catalog.TableMeta) error
	// CreateIndex replays index DDL, backfilling from rows already replayed.
	CreateIndex(meta catalog.IndexMeta) error
	// Insert replays an insert; after is the encoded row.
	Insert(table uint32, after []byte) error
	// Update replays an update; before/after are encoded rows with an
	// unchanged primary key.
	Update(table uint32, before, after []byte) error
	// Delete replays a delete; before is the encoded row.
	Delete(table uint32, before []byte) error
}

// RedoStats summarizes the redo pass.
type RedoStats struct {
	// Redone counts data records replayed (repeating history: winners and
	// losers alike), excluding CLRs.
	Redone int
	// CLRs counts compensation records replayed.
	CLRs int
	// DDL counts CREATE TABLE / CREATE INDEX records replayed.
	DDL int
}

// applyCLR replays one compensation record. The compensating operation is
// carried by the images: Before+After restores a row to After, After alone
// re-inserts a deleted row, Before alone removes an inserted row.
func applyCLR(ap Applier, rec wal.Record) error {
	switch {
	case len(rec.Before) > 0 && len(rec.After) > 0:
		return ap.Update(rec.Table, rec.Before, rec.After)
	case len(rec.After) > 0:
		return ap.Insert(rec.Table, rec.After)
	case len(rec.Before) > 0:
		return ap.Delete(rec.Table, rec.Before)
	default:
		return fmt.Errorf("CLR with no images")
	}
}

// Redo repeats history over the log tail against ap: DDL records and every
// data record — including losers' updates and the CLRs that compensate them
// — in LSN order. Replaying losers verbatim is what lets the undo pass
// resume an interrupted rollback exactly where the durable CLR chain stops.
func Redo(iter Iterator, an *Analysis, ap Applier) (RedoStats, error) {
	var st RedoStats
	err := iter(func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecCreateTable:
			meta, err := catalog.DecodeTableMeta(rec.After)
			if err != nil {
				return fmt.Errorf("LSN %d: %w", rec.LSN, err)
			}
			st.DDL++
			return ap.CreateTable(meta)
		case wal.RecCreateIndex:
			meta, err := catalog.DecodeIndexMeta(rec.After)
			if err != nil {
				return fmt.Errorf("LSN %d: %w", rec.LSN, err)
			}
			st.DDL++
			return ap.CreateIndex(meta)
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete, wal.RecCLR:
			var err error
			switch rec.Type {
			case wal.RecInsert:
				st.Redone++
				err = ap.Insert(rec.Table, rec.After)
			case wal.RecUpdate:
				st.Redone++
				err = ap.Update(rec.Table, rec.Before, rec.After)
			case wal.RecDelete:
				st.Redone++
				err = ap.Delete(rec.Table, rec.Before)
			case wal.RecCLR:
				st.CLRs++
				err = applyCLR(ap, rec)
			}
			if err != nil {
				return fmt.Errorf("LSN %d (%v, xid %d): %w", rec.LSN, rec.Type, rec.XID, err)
			}
			return nil
		default:
			// BEGIN/COMMIT/ABORT carry no redo work.
			return nil
		}
	})
	if err != nil {
		return st, fmt.Errorf("recovery: redo: %w", err)
	}
	return st, nil
}

// UndoStats summarizes the undo pass.
type UndoStats struct {
	// Undone counts loser data records rolled back.
	Undone int
	// TxUndone counts transactions the pass rolled back (fully or resuming
	// a partial rollback).
	TxUndone int
	// Resumed counts the subset of TxUndone whose rollback had already
	// started before the crash (a durable CLR chain was found) and was
	// resumed from its last UndoNext rather than restarted.
	Resumed int
}

// CLRLogger receives the log records describing a restart undo — one
// redo-only CLR per record undone, in undo order, plus the abort record
// that closes each completed rollback — so the caller can append them to
// the new incarnation's log. Logging the restart rollback is what makes it
// happen exactly once: without it, a transaction undone by this restart
// would still look like an interrupted loser to the next restart, which
// would then re-apply the undo on top of whatever committed after this
// restart. The records need no force of their own — they sit at lower LSNs
// than anything the new incarnation logs, so any durable later commit
// implies they are durable too, and if the whole tail is lost the next
// restart simply reruns the same undo against the same state.
type CLRLogger func(wal.Record) error

// Undo completes the rollback of every interrupted loser after redo has
// repeated history: it collects the losers' data records that analysis
// found uncompensated (Analysis.Pending — everything a durable CLR already
// covers is excluded, so an interrupted rollback is completed, never
// repeated) and applies the inverse operations in descending LSN order.
// logRec, when non-nil, receives the CLR chain and abort records that make
// this undo durable-exactly-once (see CLRLogger).
func Undo(iter Iterator, an *Analysis, ap Applier, logRec CLRLogger) (UndoStats, error) {
	return UndoWith(iter, an, ap, logRec, an.NeedsUndo)
}

// UndoWith is Undo with the per-transaction work predicate made explicit.
// Sharded recovery passes a predicate built from the cross-shard merge: a
// transaction needs undo on this shard when it is not globally committed,
// this shard has not already completed its rollback, and the shard holds any
// of its records — which covers both plain shard-local losers and demoted
// winners (this shard's commit record survived but another participant's did
// not).
func UndoWith(iter Iterator, an *Analysis, ap Applier, logRec CLRLogger, needs func(xid uint64) bool) (UndoStats, error) {
	var st UndoStats
	// The exact uncompensated set per transaction needing undo, from the
	// analysis simulation.
	need := make(map[uint64]map[wal.LSN]struct{})
	for xid, lsns := range an.Pending {
		if !needs(xid) || len(lsns) == 0 {
			continue
		}
		set := make(map[wal.LSN]struct{}, len(lsns))
		for _, lsn := range lsns {
			set[lsn] = struct{}{}
		}
		need[xid] = set
	}
	// The common restart has nothing to undo (every transaction committed
	// or fully rolled back); skip the log scan entirely then.
	if len(need) == 0 {
		return st, nil
	}
	var pending []wal.Record
	touched := make(map[uint64]struct{})
	err := iter(func(rec wal.Record) error {
		switch rec.Type {
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
		default:
			return nil
		}
		set, ok := need[rec.XID]
		if !ok {
			return nil
		}
		if _, ok := set[rec.LSN]; !ok {
			return nil
		}
		pending = append(pending, rec)
		touched[rec.XID] = struct{}{}
		return nil
	})
	if err != nil {
		return st, fmt.Errorf("recovery: undo: %w", err)
	}
	// prevOf[i] is the index of the same transaction's next-older pending
	// record — the target of the CLR's UndoNext pointer (-1 closes the
	// chain; a partial pre-crash rollback already compensated everything
	// above the resume point, so the new chain continues seamlessly).
	prevOf := make([]int, len(pending))
	lastIdx := make(map[uint64]int)
	for i, rec := range pending {
		if j, ok := lastIdx[rec.XID]; ok {
			prevOf[i] = j
		} else {
			prevOf[i] = -1
		}
		lastIdx[rec.XID] = i
	}
	// Iterators deliver ascending LSNs; undo applies the inverses newest
	// first, interleaving transactions exactly as ARIES' backward scan does.
	for i := len(pending) - 1; i >= 0; i-- {
		rec := pending[i]
		var uerr error
		clr := wal.Record{Type: wal.RecCLR, XID: rec.XID, Table: rec.Table, Page: rec.Page, Slot: rec.Slot}
		switch rec.Type {
		case wal.RecInsert:
			uerr = ap.Delete(rec.Table, rec.After)
			clr.Before = rec.After
		case wal.RecUpdate:
			uerr = ap.Update(rec.Table, rec.After, rec.Before)
			clr.Before, clr.After = rec.After, rec.Before
		case wal.RecDelete:
			uerr = ap.Insert(rec.Table, rec.Before)
			clr.After = rec.Before
		}
		if uerr != nil {
			return st, fmt.Errorf("recovery: undo LSN %d (%v, xid %d): %w", rec.LSN, rec.Type, rec.XID, uerr)
		}
		st.Undone++
		if logRec != nil {
			if j := prevOf[i]; j >= 0 {
				clr.UndoNext = pending[j].LSN
			}
			if err := logRec(clr); err != nil {
				return st, fmt.Errorf("recovery: undo: logging CLR for xid %d: %w", rec.XID, err)
			}
			if prevOf[i] < 0 {
				// Oldest pending record of the transaction: its rollback is
				// now complete; close it with an abort record.
				if err := logRec(wal.Record{Type: wal.RecAbort, XID: rec.XID}); err != nil {
					return st, fmt.Errorf("recovery: undo: logging abort for xid %d: %w", rec.XID, err)
				}
			}
		}
	}
	st.TxUndone = len(touched)
	for xid := range touched {
		if _, ok := an.UndoNext[xid]; ok {
			st.Resumed++
		}
	}
	return st, nil
}
