// Package latch provides the low-level synchronization primitives ("latches")
// used throughout the storage manager, following the terminology of
// Gray & Reuter: latches protect in-memory state for very short critical
// sections, in contrast with database locks which protect logical database
// content for the duration of a transaction.
//
// The latches in this package are instrumented: every acquisition reports
// whether it was contended (another thread held the latch at the time of the
// request) and how long the caller waited. The lock manager uses the
// contention signal to detect "hot" locks (paper §4.2 criterion 2) and the
// profiler uses the wait durations to build the work-vs-contention breakdowns
// of Figures 1, 6 and 10.
package latch

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats accumulates acquisition statistics for a latch. All counters are
// monotonically increasing and safe for concurrent use.
type Stats struct {
	Acquires  atomic.Uint64 // total successful acquisitions
	Contended atomic.Uint64 // acquisitions that found the latch held
	WaitNanos atomic.Uint64 // total time spent waiting for contended acquisitions
}

// Snapshot returns a point-in-time copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Acquires:  s.Acquires.Load(),
		Contended: s.Contended.Load(),
		WaitNanos: s.WaitNanos.Load(),
	}
}

// StatsSnapshot is a plain-value copy of Stats.
type StatsSnapshot struct {
	Acquires  uint64
	Contended uint64
	WaitNanos uint64
}

// ContentionRatio returns the fraction of acquisitions that were contended,
// or 0 if there have been no acquisitions.
func (s StatsSnapshot) ContentionRatio() float64 {
	if s.Acquires == 0 {
		return 0
	}
	return float64(s.Contended) / float64(s.Acquires)
}

// Mutex is an exclusive latch. It is implemented as a try-then-block wrapper
// around sync.Mutex: the fast path is a single TryLock; on failure the
// acquisition is recorded as contended and the caller blocks on the
// underlying mutex (the Go runtime parks the goroutine, which behaves well
// even when the number of agents greatly exceeds GOMAXPROCS).
//
// The zero value is an unlocked latch.
type Mutex struct {
	mu    sync.Mutex
	stats Stats
}

// Lock acquires the latch, blocking if necessary. It reports whether the
// acquisition was contended and how long the caller waited.
func (m *Mutex) Lock() (contended bool, wait time.Duration) {
	m.stats.Acquires.Add(1)
	if m.mu.TryLock() {
		return false, 0
	}
	m.stats.Contended.Add(1)
	start := time.Now()
	m.mu.Lock()
	wait = time.Since(start)
	m.stats.WaitNanos.Add(uint64(wait))
	return true, wait
}

// TryLock attempts to acquire the latch without blocking.
func (m *Mutex) TryLock() bool {
	if m.mu.TryLock() {
		m.stats.Acquires.Add(1)
		return true
	}
	return false
}

// Unlock releases the latch. It must only be called by the current holder.
func (m *Mutex) Unlock() { m.mu.Unlock() }

// Stats exposes the latch's acquisition counters.
func (m *Mutex) Stats() *Stats { return &m.stats }

// RWLatch is a reader-writer latch used for structures that are read far more
// often than written, such as buffer-pool frames and B+tree nodes. Like
// Mutex it records contention statistics.
//
// The zero value is an unlocked latch.
type RWLatch struct {
	mu    sync.RWMutex
	stats Stats
}

// RLock acquires the latch in shared mode.
func (l *RWLatch) RLock() (contended bool, wait time.Duration) {
	l.stats.Acquires.Add(1)
	if l.mu.TryRLock() {
		return false, 0
	}
	l.stats.Contended.Add(1)
	start := time.Now()
	l.mu.RLock()
	wait = time.Since(start)
	l.stats.WaitNanos.Add(uint64(wait))
	return true, wait
}

// RUnlock releases a shared-mode hold.
func (l *RWLatch) RUnlock() { l.mu.RUnlock() }

// Lock acquires the latch in exclusive mode.
func (l *RWLatch) Lock() (contended bool, wait time.Duration) {
	l.stats.Acquires.Add(1)
	if l.mu.TryLock() {
		return false, 0
	}
	l.stats.Contended.Add(1)
	start := time.Now()
	l.mu.Lock()
	wait = time.Since(start)
	l.stats.WaitNanos.Add(uint64(wait))
	return true, wait
}

// TryLock attempts to acquire the latch in exclusive mode without blocking.
func (l *RWLatch) TryLock() bool {
	if l.mu.TryLock() {
		l.stats.Acquires.Add(1)
		return true
	}
	return false
}

// Unlock releases an exclusive-mode hold.
func (l *RWLatch) Unlock() { l.mu.Unlock() }

// Stats exposes the latch's acquisition counters.
func (l *RWLatch) Stats() *Stats { return &l.stats }

// ContentionWindow tracks the contention outcome of the most recent N
// acquisitions of a latch, as a fixed-size ring of booleans packed into a
// bitmask. The lock manager keeps one window per lock head and declares the
// lock "hot" when the fraction of recent contended acquisitions crosses a
// threshold (paper §4.2: "We detect a 'hot' lock by tracking what fraction of
// the most recent several acquires encountered latch contention").
//
// The window is updated while the corresponding lock head latch is held, so
// it does not need to be thread safe; it is nevertheless cheap enough to be
// updated on every acquisition.
type ContentionWindow struct {
	bits uint64 // 1 bit per recent acquisition, LSB = most recent
	fill uint8  // number of valid bits, saturates at Size
	ones uint8  // population count of the valid bits
}

// WindowSize is the number of recent acquisitions tracked per lock.
const WindowSize = 16

// Record pushes the outcome of one acquisition into the window.
func (w *ContentionWindow) Record(contended bool) {
	evicted := (w.bits >> (WindowSize - 1)) & 1
	w.bits = (w.bits << 1) & ((1 << WindowSize) - 1)
	if contended {
		w.bits |= 1
		w.ones++
	}
	if w.fill < WindowSize {
		w.fill++
	} else if evicted == 1 {
		w.ones--
	}
}

// Ratio returns the fraction of tracked acquisitions that were contended.
// It returns 0 until at least a quarter of the window has been filled, so a
// single early collision does not mark a lock hot.
func (w *ContentionWindow) Ratio() float64 {
	if w.fill < WindowSize/4 {
		return 0
	}
	return float64(w.ones) / float64(w.fill)
}

// Reset clears the window.
func (w *ContentionWindow) Reset() {
	w.bits, w.fill, w.ones = 0, 0, 0
}
