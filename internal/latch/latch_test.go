package latch

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestMutexBasic(t *testing.T) {
	var m Mutex
	contended, wait := m.Lock()
	if contended {
		t.Fatal("first acquisition must not be contended")
	}
	if wait != 0 {
		t.Fatalf("uncontended acquisition reported wait %v", wait)
	}
	m.Unlock()
	if got := m.Stats().Snapshot().Acquires; got != 1 {
		t.Fatalf("acquires = %d, want 1", got)
	}
}

func TestMutexTryLock(t *testing.T) {
	var m Mutex
	if !m.TryLock() {
		t.Fatal("TryLock on free latch failed")
	}
	if m.TryLock() {
		t.Fatal("TryLock on held latch succeeded")
	}
	m.Unlock()
	if !m.TryLock() {
		t.Fatal("TryLock after Unlock failed")
	}
	m.Unlock()
}

func TestMutexContentionDetected(t *testing.T) {
	var m Mutex
	m.Lock()
	done := make(chan struct{})
	go func() {
		contended, wait := m.Lock()
		if !contended {
			t.Error("second acquisition should be contended")
		}
		if wait <= 0 {
			t.Error("contended acquisition should report nonzero wait")
		}
		m.Unlock()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	m.Unlock()
	<-done
	snap := m.Stats().Snapshot()
	if snap.Contended != 1 {
		t.Fatalf("contended = %d, want 1", snap.Contended)
	}
	if snap.ContentionRatio() <= 0 || snap.ContentionRatio() > 1 {
		t.Fatalf("contention ratio out of range: %v", snap.ContentionRatio())
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	var m Mutex
	var counter int
	var wg sync.WaitGroup
	const goroutines = 16
	const iters = 2000
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < iters; j++ {
				m.Lock()
				counter++
				m.Unlock()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*iters {
		t.Fatalf("counter = %d, want %d (lost updates => no mutual exclusion)", counter, goroutines*iters)
	}
}

func TestRWLatchReadersShareWritersExclude(t *testing.T) {
	var l RWLatch
	l.RLock()
	// A second reader must not block.
	done := make(chan struct{})
	go func() {
		l.RLock()
		l.RUnlock()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second reader blocked behind first reader")
	}
	if l.TryLock() {
		t.Fatal("writer TryLock succeeded while reader holds latch")
	}
	l.RUnlock()
	if !l.TryLock() {
		t.Fatal("writer TryLock failed on free latch")
	}
	l.Unlock()
}

func TestRWLatchWriterContention(t *testing.T) {
	var l RWLatch
	l.Lock()
	done := make(chan struct{})
	go func() {
		contended, _ := l.Lock()
		if !contended {
			t.Error("writer behind writer should be contended")
		}
		l.Unlock()
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	l.Unlock()
	<-done
}

func TestRWLatchCounterUnderMixedLoad(t *testing.T) {
	var l RWLatch
	var value int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				l.Lock()
				value++
				l.Unlock()
				l.RLock()
				_ = value
				l.RUnlock()
			}
		}()
	}
	wg.Wait()
	if value != 8*500 {
		t.Fatalf("value = %d, want %d", value, 8*500)
	}
}

func TestContentionWindowBasic(t *testing.T) {
	var w ContentionWindow
	if w.Ratio() != 0 {
		t.Fatal("empty window should report ratio 0")
	}
	// Fill with uncontended acquisitions.
	for i := 0; i < WindowSize; i++ {
		w.Record(false)
	}
	if w.Ratio() != 0 {
		t.Fatalf("all-uncontended ratio = %v, want 0", w.Ratio())
	}
	// Now all contended.
	for i := 0; i < WindowSize; i++ {
		w.Record(true)
	}
	if w.Ratio() != 1 {
		t.Fatalf("all-contended ratio = %v, want 1", w.Ratio())
	}
	// Half and half, sliding.
	for i := 0; i < WindowSize/2; i++ {
		w.Record(false)
	}
	if got := w.Ratio(); got != 0.5 {
		t.Fatalf("half-contended ratio = %v, want 0.5", got)
	}
	w.Reset()
	if w.Ratio() != 0 {
		t.Fatal("reset window should report ratio 0")
	}
}

func TestContentionWindowEarlyQuiet(t *testing.T) {
	var w ContentionWindow
	// Fewer than WindowSize/4 samples: ratio must stay 0 even if contended.
	for i := 0; i < WindowSize/4-1; i++ {
		w.Record(true)
	}
	if w.Ratio() != 0 {
		t.Fatalf("ratio with too few samples = %v, want 0", w.Ratio())
	}
	w.Record(true)
	if w.Ratio() != 1 {
		t.Fatalf("ratio once warmed = %v, want 1", w.Ratio())
	}
}

// TestContentionWindowMatchesReference drives the packed-bitmask window with
// random sequences and checks it against a straightforward slice-based
// reference implementation.
func TestContentionWindowMatchesReference(t *testing.T) {
	f := func(pattern []bool) bool {
		var w ContentionWindow
		var ref []bool
		for _, c := range pattern {
			w.Record(c)
			ref = append(ref, c)
			if len(ref) > WindowSize {
				ref = ref[1:]
			}
			ones := 0
			for _, b := range ref {
				if b {
					ones++
				}
			}
			var want float64
			if len(ref) >= WindowSize/4 {
				want = float64(ones) / float64(len(ref))
			}
			if w.Ratio() != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMutexUncontended(b *testing.B) {
	var m Mutex
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Lock()
		m.Unlock()
	}
}

func BenchmarkMutexContended(b *testing.B) {
	var m Mutex
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Lock()
			m.Unlock()
		}
	})
}
