package slint

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// LockOrder proves a consistent global lock acquisition order at compile
// time, across packages.
//
// Every function gets a summary of the lock-order edges it can perform: an
// edge A → B means the function can acquire B while holding A, where a lock
// is identified by its declaration site ("wal.Log.mu" for a mutex field,
// "core.nameMu" for a package-level mutex). Edges compose transitively
// through calls — if f locks A and calls g, every lock g's summary can
// acquire is acquired while A is held — and the summaries travel between
// packages as object Facts on the called functions.
//
// Per package, the analyzer unions its own functions' edges with every
// imported summary and searches the acquisition graph for cycles. A cycle
// A → B → A is a potential deadlock: one goroutine holds A wanting B, the
// other holds B wanting A. The diagnostic carries both witness paths
// (file:line and function for each direction) so the report is actionable
// without re-deriving the interleaving.
//
// Identity is per-field, not per-instance: two different *lockHead latches
// share the key lockmgr.lockHead.mu, so instance-ordered chains (hand-over-
// hand traversal) would self-loop. Self-edges are therefore excluded;
// instance-level ordering needs a runtime check, not this analyzer.
// RLock counts as an acquisition (reader-writer cycles still deadlock
// against writers); TryLock does not (it cannot block).
var LockOrder = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "build the cross-package lock acquisition graph from per-function Facts and report cycles",
	Run:       runLockOrder,
	FactTypes: []analysis.Fact{(*lockOrderFact)(nil)},
}

// lockEdge is one "acquired To while holding From" observation.
type lockEdge struct {
	From, To string
	Witness  string // "file.go:12 in FuncName"
}

// lockOrderFact summarizes a function for callers: the locks it can
// acquire (transitively) and the order edges it can perform.
type lockOrderFact struct {
	Acquires []string
	Edges    []lockEdge
}

func (*lockOrderFact) AFact() {}

func (f *lockOrderFact) String() string {
	var parts []string
	for _, e := range f.Edges {
		parts = append(parts, e.From+"→"+e.To)
	}
	if len(parts) == 0 {
		return "acquires " + strings.Join(f.Acquires, ", ")
	}
	return "lock edges " + strings.Join(parts, ", ")
}

// lockSummary is the in-progress per-function summary.
type lockSummary struct {
	acquires map[string]bool
	edges    map[lockEdge]bool
}

func newLockSummary() *lockSummary {
	return &lockSummary{acquires: make(map[string]bool), edges: make(map[lockEdge]bool)}
}

func runLockOrder(pass *analysis.Pass) (interface{}, error) {
	idx := buildDirectiveIndex(pass)

	funcs := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				funcs[fn] = fd
			}
		}
	}

	summaries := make(map[*types.Func]*lockSummary)
	for fn := range funcs {
		summaries[fn] = newLockSummary()
	}
	imported := func(fn *types.Func) *lockOrderFact {
		var fact lockOrderFact
		if pass.ImportObjectFact(fn, &fact) {
			return &fact
		}
		return nil
	}

	// Fixpoint: edges and acquire sets only grow.
	for changed := true; changed; {
		changed = false
		for fn, fd := range funcs {
			if summarizeLocks(pass, fn, fd, summaries, imported) {
				changed = true
			}
		}
	}

	for fn, s := range summaries {
		if len(s.acquires) == 0 && len(s.edges) == 0 {
			continue
		}
		fact := &lockOrderFact{}
		for a := range s.acquires {
			fact.Acquires = append(fact.Acquires, a)
		}
		sort.Strings(fact.Acquires)
		for e := range s.edges {
			fact.Edges = append(fact.Edges, e)
		}
		sort.Slice(fact.Edges, func(i, j int) bool {
			a, b := fact.Edges[i], fact.Edges[j]
			if a.From != b.From {
				return a.From < b.From
			}
			if a.To != b.To {
				return a.To < b.To
			}
			return a.Witness < b.Witness
		})
		pass.ExportObjectFact(fn, fact)
	}

	reportLockCycles(pass, idx, summaries)
	return nil, nil
}

// summarizeLocks re-walks fn's body accumulating acquisitions and edges
// into its summary; reports whether anything new was learned.
func summarizeLocks(pass *analysis.Pass, fn *types.Func, fd *ast.FuncDecl, summaries map[*types.Func]*lockSummary, imported func(*types.Func) *lockOrderFact) bool {
	s := summaries[fn]
	before := len(s.acquires) + len(s.edges)

	var held []string
	holding := func(k string) bool {
		for _, h := range held {
			if h == k {
				return true
			}
		}
		return false
	}
	witness := func(n ast.Node) string {
		p := pass.Fset.Position(n.Pos())
		file := p.Filename
		if i := strings.LastIndexByte(file, '/'); i >= 0 {
			file = file[i+1:]
		}
		return fmt.Sprintf("%s:%d in %s", file, p.Line, fn.Name())
	}
	addEdge := func(from, to string, n ast.Node) {
		if from == to {
			return // per-field identity: instance order is out of scope
		}
		s.edges[lockEdge{From: from, To: to, Witness: witness(n)}] = true
	}
	acquire := func(k string, n ast.Node) {
		for _, h := range held {
			addEdge(h, k, n)
		}
		s.acquires[k] = true
		if !holding(k) {
			held = append(held, k)
		}
	}
	release := func(k string) {
		for i, h := range held {
			if h == k {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	// Statement-ordered walk. Deferred unlocks do not release mid-function
	// (they run at return); deferred locks are treated as immediate.
	var inDefer int
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				inDefer++
				walk(n.Call)
				inDefer--
				return false
			case *ast.CallExpr:
				callee, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
				if !ok {
					return true
				}
				if key, op, ok := mutexOp(pass, n, callee); ok {
					switch op {
					case "Lock", "RLock":
						acquire(key, n)
					case "Unlock", "RUnlock":
						if inDefer == 0 {
							release(key)
						}
					}
					return true
				}
				// Compose with the callee's summary: everything it can
				// acquire happens while the current held set is held.
				var acq []string
				var edges []lockEdge
				if cs, ok := summaries[callee]; ok {
					for a := range cs.acquires {
						acq = append(acq, a)
					}
					for e := range cs.edges {
						edges = append(edges, e)
					}
				} else if fact := imported(callee); fact != nil {
					acq = fact.Acquires
					edges = fact.Edges
				}
				for _, a := range acq {
					for _, h := range held {
						addEdge(h, a, n)
					}
					s.acquires[a] = true
				}
				for _, e := range edges {
					if e.From != e.To {
						s.edges[e] = true
					}
				}
			}
			return true
		})
	}
	walk(fd.Body)
	return len(s.acquires)+len(s.edges) != before
}

// mutexOp classifies a call as a sync.Mutex/RWMutex operation on an
// identifiable lock (a struct field or a package-level variable), returning
// the lock key and the operation name.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr, callee *types.Func) (key, op string, ok bool) {
	if !isStdPkg(callee.Pkg(), "sync") {
		return "", "", false
	}
	switch callee.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	if !isMethodOn(callee, "Mutex") && !isMethodOn(callee, "RWMutex") {
		return "", "", false
	}
	sel, okSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	k := lockKey(pass, sel.X)
	if k == "" {
		return "", "", false
	}
	return k, callee.Name(), true
}

// lockKey names the lock by its declaration: pkg.Type.field for a mutex
// field, pkg.var for a package-level mutex. Local mutex variables return ""
// (they cannot participate in cross-goroutine cycles by identity).
func lockKey(pass *analysis.Pass, x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		obj := pass.TypesInfo.ObjectOf(x.Sel)
		v, ok := obj.(*types.Var)
		if !ok || !v.IsField() {
			if ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return pkgBase(v.Pkg()) + "." + v.Name()
			}
			return ""
		}
		// Find the struct type that declares the field via the selection's
		// receiver type.
		if selInfo, ok := pass.TypesInfo.Selections[x]; ok {
			t := derefType(selInfo.Recv())
			return typeKey(t) + "." + v.Name()
		}
		// Qualified package-level var (pkg.Mu) resolves above; embedded
		// cases without a selection fall back to the field's package.
		return pkgBase(v.Pkg()) + "." + v.Name()
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(x)
		if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return pkgBase(v.Pkg()) + "." + v.Name()
		}
	}
	return ""
}

// typeKey renders a named type as pkg.Name.
func typeKey(t types.Type) string {
	t = derefType(t)
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil {
			return pkgBase(obj.Pkg()) + "." + obj.Name()
		}
		return obj.Name()
	}
	return typeBase(t)
}

// pkgBase is the package's base name — stable across the real module and
// the harness's bare fixture paths.
func pkgBase(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// reportLockCycles unions this package's edges with all imported facts and
// reports each cycle that includes an edge witnessed in this package.
func reportLockCycles(pass *analysis.Pass, idx *directiveIndex, summaries map[*types.Func]*lockSummary) {
	edges := make(map[string][]edgeInfo) // From -> outgoing
	addEdge := func(e lockEdge, local bool) {
		for _, ex := range edges[e.From] {
			if ex.edge == e {
				return
			}
		}
		edges[e.From] = append(edges[e.From], edgeInfo{edge: e, local: local})
	}
	// An edge is "local" — eligible to anchor a cycle report here — only if
	// its witness line is in one of this package's files. Edges inherited
	// from callee summaries keep their foreign witness (often deep inside
	// an imported package, or the standard library); those participate in
	// the graph but are some other package's problem to report.
	localFiles := make(map[string]bool)
	for _, f := range pass.Files {
		p := pass.Fset.Position(f.Pos())
		localFiles[filepath.Base(p.Filename)] = true
	}
	witnessedHere := func(e lockEdge) bool {
		file := e.Witness
		if i := strings.IndexByte(file, ':'); i >= 0 {
			file = file[:i]
		}
		return localFiles[file]
	}
	for _, s := range summaries {
		for e := range s.edges {
			addEdge(e, witnessedHere(e))
		}
	}
	for _, of := range pass.AllObjectFacts() {
		if fact, ok := of.Fact.(*lockOrderFact); ok {
			for _, e := range fact.Edges {
				addEdge(e, false)
			}
		}
	}

	// For each local edge u→v, search for a path v ⇝ u; if found, the
	// cycle closes here and this package reports it. Local edges are
	// visited in sorted order so the reporting site is deterministic.
	var locals []lockEdge
	for _, outs := range edges {
		for _, ei := range outs {
			if ei.local {
				locals = append(locals, ei.edge)
			}
		}
	}
	sort.Slice(locals, func(i, j int) bool {
		a, b := locals[i], locals[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Witness < b.Witness
	})
	reported := make(map[string]bool)
	for _, le := range locals {
		path := findPath(edges, le.To, le.From)
		if path == nil {
			continue
		}
		nodes := append([]string{le.From, le.To}, pathNodes(path)...)
		key := canonicalCycle(nodes)
		if reported[key] {
			continue
		}
		reported[key] = true
		var back []string
		for _, e := range path {
			back = append(back, fmt.Sprintf("%s → %s (%s)", e.From, e.To, e.Witness))
		}
		pos := lockEdgePos(pass, le)
		report(pass, idx, pos,
			"lock acquisition cycle: %s → %s (%s), closed by %s — acquiring these locks in inconsistent order can deadlock; pick one global order",
			le.From, le.To, le.Witness, strings.Join(back, ", "))
	}
}

// edgeInfo is one acquisition-graph edge plus whether it was witnessed in
// the current package.
type edgeInfo struct {
	edge  lockEdge
	local bool
}

// findPath does a DFS from start to goal over the edge map, returning the
// edge path or nil.
func findPath(edges map[string][]edgeInfo, start, goal string) []lockEdge {
	type frame struct {
		node string
		path []lockEdge
	}
	seen := map[string]bool{start: true}
	work := []frame{{node: start}}
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if f.node == goal {
			return f.path
		}
		for _, ei := range edges[f.node] {
			if !seen[ei.edge.To] || ei.edge.To == goal {
				seen[ei.edge.To] = true
				np := append(append([]lockEdge(nil), f.path...), ei.edge)
				if ei.edge.To == goal {
					return np
				}
				work = append(work, frame{node: ei.edge.To, path: np})
			}
		}
	}
	return nil
}

func pathNodes(path []lockEdge) []string {
	var out []string
	for _, e := range path {
		out = append(out, e.To)
	}
	return out
}

// canonicalCycle produces a rotation-invariant key for a cycle's node list.
func canonicalCycle(nodes []string) string {
	if len(nodes) == 0 {
		return ""
	}
	// nodes ends with the start node repeated; normalize to the set walk
	// starting from the smallest element.
	uniq := nodes
	if uniq[len(uniq)-1] == uniq[0] {
		uniq = uniq[:len(uniq)-1]
	}
	min := 0
	for i := range uniq {
		if uniq[i] < uniq[min] {
			min = i
		}
	}
	rot := append(append([]string(nil), uniq[min:]...), uniq[:min]...)
	return strings.Join(rot, "→")
}

// lockEdgePos finds an AST node in this package matching the edge's witness
// line, so the diagnostic lands on the acquisition site.
func lockEdgePos(pass *analysis.Pass, e lockEdge) analysis.Range {
	// Witness is "file.go:NN in Func".
	var file string
	var line int
	if i := strings.IndexByte(e.Witness, ':'); i >= 0 {
		file = e.Witness[:i]
		fmt.Sscanf(e.Witness[i+1:], "%d", &line)
	}
	for _, f := range pass.Files {
		p := pass.Fset.Position(f.Pos())
		if !strings.HasSuffix(p.Filename, file) {
			continue
		}
		var best analysis.Range
		ast.Inspect(f, func(n ast.Node) bool {
			if best != nil {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && pass.Fset.Position(call.Pos()).Line == line {
				best = call
			}
			return true
		})
		if best != nil {
			return best
		}
		return f.Name
	}
	return pass.Files[0].Name
}
