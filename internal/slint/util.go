package slint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// fromPkg reports whether pkg is the slidb package with the given base name
// (e.g. "wal", "core", "obs", "profiler"). Matching by base name rather than
// full import path keeps the analyzers honest under the test harness, whose
// fixture stand-ins live at import paths like "wal" instead of
// "slidb/internal/wal".
func fromPkg(pkg *types.Package, base string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == base || strings.HasSuffix(path, "/"+base)
}

// isStdPkg reports whether pkg is exactly the standard-library package path
// (e.g. "sync", "time", "sync/atomic"). Standard packages are matched by
// full path: nothing vendored or fixture-local shadows them.
func isStdPkg(pkg *types.Package, path string) bool {
	return pkg != nil && pkg.Path() == path
}

// enclosingFuncDecl returns the innermost FuncDecl in the ancestor stack
// produced by inspector.WithStack (stack[0] is the *ast.File).
func enclosingFuncDecl(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// report emits a diagnostic unless an //slint:ignore directive for this
// analyzer covers the position (same line, or the line immediately above).
func report(pass *analysis.Pass, idx *directiveIndex, rng analysis.Range, format string, args ...interface{}) {
	if idx.suppressed(pass.Fset, pass.Analyzer.Name, rng.Pos()) {
		return
	}
	pass.ReportRangef(rng, format, args...)
}

// posLine returns the file name and line for a position.
func posLine(fset *token.FileSet, pos token.Pos) (string, int) {
	p := fset.Position(pos)
	return p.Filename, p.Line
}
