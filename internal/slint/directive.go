package slint

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// slint recognizes two comment directives:
//
//	//slint:ignore <analyzer>[,<analyzer>...] <reason>
//	//slint:hotpath
//
// An ignore directive suppresses findings of the named analyzers on the
// directive's own line and on the line immediately following it, so it can
// ride at the end of the offending statement or on its own line above. The
// analyzer field is a comma-separated list so one annotated line does not
// need stacked comments when two analyzers fire on the same site. The
// reason string is mandatory: a suppression with no recorded justification
// is exactly the kind of silent exception these analyzers exist to prevent.
//
// //slint:hotpath goes in a function declaration's doc comment and opts the
// function into the hotblock analyzer (see hotblock.go).

const (
	directivePrefix  = "//slint:"
	directiveIgnore  = "ignore"
	directiveHotpath = "hotpath"
)

// analyzerNames is the set of names //slint:ignore may reference.
var analyzerNames = map[string]bool{
	"densearith": true,
	"atomicmix":  true,
	"proftimer":  true,
	"errwedge":   true,
	"hotblock":   true,
	"metricname": true,
	"directives": true,
	"walorder":   true,
	"lockorder":  true,
	"hotalloc":   true,
	"goroleak":   true,
}

// splitAnalyzerList splits the comma-separated analyzer field of an ignore
// directive. Empty elements (trailing commas, "a,,b") are preserved so the
// validator can reject them.
func splitAnalyzerList(field string) []string {
	parts := strings.Split(field, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// ignoreDirective is one parsed //slint:ignore comment.
type ignoreDirective struct {
	analyzer string
	reason   string
}

// directiveIndex maps file -> line -> ignore directives, for suppression
// lookups. Each analyzer builds one per pass; parsing is a linear scan of
// the comment lists and is cheap next to type checking.
type directiveIndex struct {
	byFile map[string]map[int][]ignoreDirective
}

func buildDirectiveIndex(pass *analysis.Pass) *directiveIndex {
	idx := &directiveIndex{byFile: make(map[string]map[int][]ignoreDirective)}
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				verb, rest, ok := parseDirective(c.Text)
				if !ok || verb != directiveIgnore {
					continue
				}
				field, reason := splitArg(rest)
				if reason == "" {
					continue // the directives analyzer reports these
				}
				for _, name := range splitAnalyzerList(field) {
					if !analyzerNames[name] {
						continue // the directives analyzer reports these
					}
					fname, line := posLine(pass.Fset, c.Pos())
					m := idx.byFile[fname]
					if m == nil {
						m = make(map[int][]ignoreDirective)
						idx.byFile[fname] = m
					}
					m[line] = append(m[line], ignoreDirective{analyzer: name, reason: reason})
				}
			}
		}
	}
	return idx
}

// suppressed reports whether a finding of analyzer at pos is covered by an
// ignore directive on the same line or the line above.
func (idx *directiveIndex) suppressed(fset *token.FileSet, analyzer string, pos token.Pos) bool {
	fname, line := posLine(fset, pos)
	m := idx.byFile[fname]
	if m == nil {
		return false
	}
	for _, l := range [2]int{line, line - 1} {
		for _, d := range m[l] {
			if d.analyzer == analyzer {
				return true
			}
		}
	}
	return false
}

// parseDirective splits a comment into its directive verb and argument
// string. ok is false for ordinary comments.
func parseDirective(text string) (verb, rest string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	body := text[len(directivePrefix):]
	verb, rest = splitArg(body)
	return verb, rest, true
}

// splitArg splits off the first whitespace-separated field.
func splitArg(s string) (first, rest string) {
	s = strings.TrimSpace(s)
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

// Directives validates the slint directives themselves: unknown verbs,
// ignore directives naming no (or an unknown) analyzer, ignores missing the
// mandatory reason string, and hotpath directives that are not attached to a
// function declaration.
var Directives = &analysis.Analyzer{
	Name: "directives",
	Doc:  "check that //slint: directives are well-formed (known analyzer, mandatory reason, hotpath on a function)",
	Run:  runDirectives,
}

func runDirectives(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		// Comments attached as a FuncDecl doc are legal positions for
		// //slint:hotpath.
		hotpathOK := make(map[*ast.Comment]bool)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Doc != nil {
				for _, c := range fd.Doc.List {
					hotpathOK[c] = true
				}
			}
		}
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				verb, rest, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				switch verb {
				case directiveIgnore:
					field, reason := splitArg(rest)
					if field == "" {
						pass.ReportRangef(c, "slint:ignore needs an analyzer name and a reason: //slint:ignore <analyzer>[,<analyzer>...] <reason>")
						continue
					}
					names := splitAnalyzerList(field)
					for _, name := range names {
						switch {
						case name == "":
							pass.ReportRangef(c, "slint:ignore has an empty element in its analyzer list %q", field)
						case !analyzerNames[name]:
							pass.ReportRangef(c, "slint:ignore names unknown analyzer %q", name)
						}
					}
					if reason == "" {
						pass.ReportRangef(c, "slint:ignore %s needs a reason: the justification is part of the suppression", field)
					}
				case directiveHotpath:
					if rest != "" {
						pass.ReportRangef(c, "slint:hotpath takes no arguments")
					} else if !hotpathOK[c] {
						pass.ReportRangef(c, "slint:hotpath must appear in a function declaration's doc comment")
					}
				default:
					pass.ReportRangef(c, "unknown slint directive %q (known: ignore, hotpath)", verb)
				}
			}
		}
	}
	return nil, nil
}
