// Package goroleak exercises the goroleak analyzer: every go statement in
// an engine package needs a provable shutdown edge — a stop-like channel
// or context receive, a channel range, a Cond.Wait loop, or provable
// termination (no unbounded loop).
package goroleak

import (
	"sync"

	"goroleakdep"
)

type worker struct {
	quit     chan struct{}
	inflight chan int
	flush    *sync.Cond
	closed   bool
}

// loopWithQuit selects on a stop channel. // wantfact "shutdown via receive on w.quit"
func (w *worker) loopWithQuit() {
	for {
		select {
		case <-w.quit:
			return
		case job := <-w.inflight:
			_ = job
		}
	}
}

// drainRange ends when the producer closes the channel.
func (w *worker) drainRange() {
	for range w.inflight {
	}
}

// condLoop is the flusher pattern: Cond.Wait under a closed flag.
func (w *worker) condLoop() {
	w.flush.L.Lock()
	for !w.closed {
		w.flush.Wait()
	}
	w.flush.L.Unlock()
}

// spin has no shutdown edge at all.
func (w *worker) spin() {
	for {
		w.step()
	}
}

func (w *worker) step() {}

func (w *worker) Start(p *goroleakdep.Pump) {
	go w.loopWithQuit()
	go w.drainRange()
	go w.condLoop()
	go p.Run() // provable via the imported fact from goroleakdep
	go func() { w.inflight <- 1 }()
	go w.spin() // want `go spin has no provable shutdown edge`
	go func() { // want `go statement spawns a loop with no provable shutdown edge`
		for {
			w.step()
		}
	}()
}

// StartDyn spawns a dynamic function value: unprovable by construction.
func (w *worker) StartDyn(f func()) {
	go f() // want `go statement spawns a dynamic function value`
}

// StartIgnored records a deliberate exception.
func (w *worker) StartIgnored() {
	go w.spin() //slint:ignore goroleak fixture demonstrating a reasoned suppression
}
