// Package atomicmix exercises the atomicmix analyzer: mixed-discipline
// fields and by-value copies of atomic-bearing structs.
package atomicmix

import "sync/atomic"

// stats mixes legacy atomic updates with plain access.
type stats struct {
	appends uint64
	flushes uint64
}

func bump(s *stats) {
	atomic.AddUint64(&s.appends, 1)
	atomic.AddUint64(&s.flushes, 1)
}

func readMixed(s *stats) uint64 {
	return s.appends // want `field appends is updated with atomic\.AddUint64 but accessed plainly`
}

func writeMixed(s *stats) {
	s.flushes = 0 // want `field flushes is updated with atomic\.AddUint64 but accessed plainly`
}

func readAtomically(s *stats) uint64 {
	return atomic.LoadUint64(&s.appends) // sanctioned: same discipline
}

func readSuppressed(s *stats) uint64 {
	//slint:ignore atomicmix single-writer phase, no concurrent updates yet
	return s.appends
}

// counters is atomic-bearing through a typed atomic.
type counters struct {
	ops atomic.Uint64
}

// nested is atomic-bearing transitively, through a struct and an array.
type nested struct {
	name  string
	inner counters
	lanes [4]atomic.Int64
}

func copies(c counters, all []nested) { // want `by-value parameter of counters`
	snapshot := c // want `assignment copies counters`
	_ = snapshot

	for _, n := range all { // want `range value copies nested`
		_ = n.name
	}
}

func copyReturn(n *nested) nested {
	return *n // want `return copies nested`
}

func passByValue(n *nested) {
	sink(*n) // want `argument copies nested`
}

func sink(n nested) {} // want `by-value parameter of nested`

// pointersAndSnapshotsAreFine shows the sanctioned spellings.
func pointersAndSnapshotsAreFine(n *nested) (uint64, *nested) {
	type view struct {
		ops   uint64
		lane0 int64
	}
	v := view{ops: n.inner.ops.Load(), lane0: n.lanes[0].Load()}
	_ = v
	fresh := nested{name: "fresh"} // composite literal, not a copy of shared state
	_ = fresh
	return n.inner.ops.Load(), n
}
