// Package hotallocdep buries an allocation two frames below its exported
// entry point, so the allocation fact chain must carry the witness into
// the importing package's hot paths.
package hotallocdep

// Sample is a recorded measurement.
type Sample struct {
	Name string
	V    float64
}

var sink []Sample

// Record is the exported entry point; the allocation is two calls down. // wantfact "allocates: Record → store → appendSample: append"
func Record(name string, v float64) { store(name, v) }

func store(name string, v float64) { appendSample(Sample{Name: name, V: v}) }

func appendSample(s Sample) {
	sink = append(sink, s)
}
