// Package walorder exercises the walorder analyzer: once a Tx method has
// applied an in-memory mutation, every non-panic return must have either
// registered the undo (pushUndo) or rolled the mutation back inline, and
// pushUndo must always follow the log append that set tx.lastLSN.
package walorder

import (
	"errors"

	"heap"
)

// LSN and Record stand in for the wal package's types; keeping them local
// makes each fixture function self-contained.
type LSN uint64

type Record struct {
	Page   uint32
	Slot   uint16
	Before []byte
	After  []byte
}

var ErrNotFound = errors.New("not found")

// indexTree mirrors the engine's index wrapper; its insert/remove methods
// are the index-mutation sites walorder tracks.
type indexTree struct{ m map[string]heap.RID }

func (it *indexTree) insert(key string, rid heap.RID) bool {
	if _, ok := it.m[key]; ok {
		return false
	}
	it.m[key] = rid
	return true
}

func (it *indexTree) remove(key string) bool {
	if _, ok := it.m[key]; !ok {
		return false
	}
	delete(it.m, key)
	return true
}

type undoEntry struct {
	lsn   LSN
	apply func(tx *Tx) error
}

// Tx is the transaction handle the analyzer scopes to.
type Tx struct {
	hf       *heap.File
	pk       *indexTree
	lastLSN  LSN
	undoLog  []undoEntry
	failures int
	wedged   bool
}

func (tx *Tx) logAppend(rec Record) error {
	if tx.wedged {
		return errors.New("log wedged")
	}
	tx.lastLSN++
	return nil
}

func (tx *Tx) pushUndo(ent undoEntry) { tx.undoLog = append(tx.undoLog, ent) }

// InsertOK carries the full protocol: mutate, append the record, register
// the undo; the append-failure path rolls the mutation back inline through
// the undo closure, and the unique-violation path compensates the heap
// insert with the inverse delete.
func (tx *Tx) InsertOK(key string, data []byte) error {
	rid, err := tx.hf.Insert(data)
	if err != nil {
		return err // the mutation itself failed: nothing was applied
	}
	if !tx.pk.insert(key, rid) {
		_ = tx.hf.Delete(rid)
		return errors.New("duplicate key")
	}
	undo := func(tx *Tx) error {
		tx.pk.remove(key)
		return tx.hf.Delete(rid)
	}
	if err := tx.logAppend(Record{After: data}); err != nil {
		if uerr := undo(tx); uerr != nil {
			tx.failures++
		}
		return err
	}
	tx.pushUndo(undoEntry{lsn: tx.lastLSN, apply: undo})
	return nil
}

// DeleteOK compensates the index removal inline when the heap delete fails,
// then follows the log-then-register protocol.
func (tx *Tx) DeleteOK(key string, rid heap.RID, oldData []byte) error {
	if !tx.pk.remove(key) {
		return ErrNotFound
	}
	if err := tx.hf.Delete(rid); err != nil {
		tx.pk.insert(key, rid)
		return err
	}
	undo := func(tx *Tx) error {
		newRID, uerr := tx.hf.Insert(oldData)
		if uerr != nil {
			return uerr
		}
		tx.pk.insert(key, newRID)
		return nil
	}
	if err := tx.logAppend(Record{Before: oldData}); err != nil {
		if uerr := undo(tx); uerr != nil {
			tx.failures++
		}
		return err
	}
	tx.pushUndo(undoEntry{lsn: tx.lastLSN, apply: undo})
	return nil
}

// PanicPathOK: a panic after the mutation is not a return path; the
// obligation ends with the process.
func (tx *Tx) PanicPathOK(key string, rid heap.RID) {
	if !tx.pk.insert(key, rid) {
		panic("corrupt index")
	}
	if err := tx.logAppend(Record{}); err != nil {
		panic("log wedged")
	}
	tx.pushUndo(undoEntry{lsn: tx.lastLSN})
}

// InsertNoRollback is the PR 4 undo-registration bug class verbatim: the
// log append fails after the row is in the heap and index, and the error
// path returns with no inline rollback and no registered undo — a wedged
// log leaves a phantom row nothing can roll back.
func (tx *Tx) InsertNoRollback(key string, data []byte) error {
	rid, err := tx.hf.Insert(data)
	if err != nil {
		return err
	}
	if !tx.pk.insert(key, rid) {
		_ = tx.hf.Delete(rid)
		return errors.New("duplicate key")
	}
	if err := tx.logAppend(Record{After: data}); err != nil {
		return err // want `return in InsertNoRollback with the heap insert at line \d+ still applied` `return in InsertNoRollback with the index insert at line \d+ still applied`
	}
	tx.pushUndo(undoEntry{lsn: tx.lastLSN, apply: func(tx *Tx) error {
		tx.pk.remove(key)
		return tx.hf.Delete(rid)
	}})
	return nil
}

// UpdateStaleLSN registers the undo before appending the record: the entry
// captures whatever LSN the previous append set, so recovery would pair the
// undo with the wrong record.
func (tx *Tx) UpdateStaleLSN(rid heap.RID, oldData, newData []byte) error {
	if err := tx.hf.Update(rid, newData); err != nil {
		return err
	}
	undo := func(tx *Tx) error { return tx.hf.Update(rid, oldData) }
	tx.pushUndo(undoEntry{lsn: tx.lastLSN, apply: undo}) // want `pushUndo is reachable without a prior log append`
	return tx.logAppend(Record{Before: oldData, After: newData})
}

// DeleteNoLog never appends a record at all; the registered undo's LSN is
// stale by construction.
func (tx *Tx) DeleteNoLog(key string, rid heap.RID, oldData []byte) error {
	if !tx.pk.remove(key) {
		return ErrNotFound
	}
	tx.pushUndo(undoEntry{lsn: tx.lastLSN, apply: func(tx *Tx) error { // want `pushUndo in DeleteNoLog with no log append in the function`
		newRID, uerr := tx.hf.Insert(oldData)
		if uerr == nil {
			tx.pk.insert(key, newRID)
		}
		return uerr
	}})
	return nil
}

// RemoveUnprotected mutates the index with no protocol at all and falls off
// the end of the function.
func (tx *Tx) RemoveUnprotected(key string) {
	tx.pk.remove(key) // want `index remove in RemoveUnprotected reaches the end of the function`
}

// IgnoredRemove records a deliberate exception with a reasoned directive.
func (tx *Tx) IgnoredRemove(key string) {
	tx.pk.remove(key) //slint:ignore walorder fixture demonstrating a reasoned suppression
}
