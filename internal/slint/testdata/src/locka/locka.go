// Package locka owns two mutexes and, in LockAThenB, establishes the
// canonical order: A before B. The order it performs is exported as a fact
// on LockAThenB; package lockb imports this package, performs the reverse
// order, and is where the cycle closes.
package locka

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
)

var state int

// LockAThenB acquires A then B. // wantfact "lock edges locka.MuA→locka.MuB"
func LockAThenB() {
	MuA.Lock()
	defer MuA.Unlock()
	MuB.Lock()
	defer MuB.Unlock()
	state++
}

// LockJustA holds only one lock: no order edge, just an acquire set.
func LockJustA() {
	MuA.Lock()
	state++
	MuA.Unlock()
}
