// Package densearith exercises the densearith analyzer from outside the
// wal package: consumer code has no LSN-method allowlist at all.
package densearith

import "wal"

func consumer(log *wal.Log, rec *wal.Record) {
	lsn, _ := log.WriteRecord(rec)
	end := lsn + wal.LSN(rec.Size) // want `arithmetic on wal\.LSN`
	_ = end

	gap := lsn - rec.LSN // want `arithmetic on wal\.LSN`
	_ = gap

	lsn -= 8 // want `compound assignment on wal\.LSN`
	lsn--    // want `-- on wal\.LSN is a dense-LSN bug`
	_ = lsn
}

func consumerFine(log *wal.Log, rec *wal.Record) {
	lsn, _ := log.WriteRecord(rec)
	end := lsn.Advance(rec.Size)
	_ = lsn.Distance(rec.LSN)
	if end > lsn {
		_ = end
	}
	// Plain integer math stays invisible to the analyzer.
	n := rec.Size + 8
	_ = n
}

func suppressedConsumer(lsn wal.LSN) wal.LSN {
	return lsn + 1 //slint:ignore densearith fixture keeps one raw add under a recorded reason
}

// shardConsumer exercises the ShardAddr mixing rule from consumer code,
// where no method allowlist applies at all.
func shardConsumer(a, b wal.ShardAddr) {
	_ = a.Off < b.Off         // want `mixing Off offsets of distinct wal\.ShardAddr`
	_ = b.Off - a.Off         // want `mixing Off offsets of distinct wal\.ShardAddr`
	_ = a.Off.Distance(b.Off) // want `LSN helper call mixing Off offsets of distinct wal\.ShardAddr`
	_ = a.Distance(b)         // the ShardAddr method is the blessed spelling
	_ = a.Off < a.Off         // one address, one shard
}
