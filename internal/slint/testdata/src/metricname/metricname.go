// Package metricname exercises the metricname analyzer: constant names
// passed to obs.Registry constructors must satisfy the project rules.
package metricname

import "obs"

func registerGood(r *obs.Registry) {
	r.Counter("slidb_txn_commits_total", "committed transactions")
	r.Gauge("slidb_durable_lag_bytes", "bytes between head and durable LSN")
	r.Histogram("slidbd_request_seconds", "request latency", nil)
	r.CounterFunc("slidb_elr_aborts_total", "early-lock-release aborts", func() float64 { return 0 })
	r.LabeledCounterFunc("slidb_profile_seconds_total", "per-category time", "category", func() []obs.Sample { return nil })
}

func registerBad(r *obs.Registry) {
	r.Counter("txn_commits_total", "no prefix")                                 // want `must carry the project prefix slidb_`
	r.Counter("slidb_txn_commits", "no _total")                                 // want `counters end in _total`
	r.Gauge("slidb_Durable_lag", "upper case")                                  // want `must match \[a-z\]\[a-z0-9_\]\*`
	r.Gauge("slidb_lag:bytes", "colon")                                         // want `must match \[a-z\]\[a-z0-9_\]\*`
	r.Histogram("2slidb_seconds", "digit", nil)                                 // want `must match \[a-z\]\[a-z0-9_\]\*` `must carry the project prefix slidb_`
	r.LabeledGaugeFunc("slidb_lock_waiters", "per-table waiters", "Table", nil) // want `label name "Table" must match`
}

func registerDynamic(r *obs.Registry, suffix string) {
	r.Counter("slidb_"+suffix+"_total", "computed") // want `not a constant string`
}

const promoted = "slidb_restarts_total"

func registerConst(r *obs.Registry) {
	// Constants propagate: still checkable, still fine.
	r.Counter(promoted, "engine restarts")
}

func registerSuppressed(r *obs.Registry) {
	//slint:ignore metricname legacy dashboard name kept for continuity
	r.Counter("legacy_restarts", "grandfathered")
}
