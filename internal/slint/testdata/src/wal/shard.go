package wal

// ShardAddr is the shard-qualified log address stand-in: shard id plus
// byte-offset LSN, exactly like the real type. Its methods are allowlisted
// — they ARE the cross-shard-checked byte math.
type ShardAddr struct {
	Shard int
	Off   LSN
}

// Advance returns the address n bytes further into the same shard's log.
func (a ShardAddr) Advance(n int64) ShardAddr {
	a.Off = a.Off.Advance(n)
	return a
}

// Distance returns the byte distance between two same-shard addresses.
// Mixing a.Off and from.Off here is fine: ShardAddr methods are the
// allowlist, mirroring the real type's runtime shard check.
func (a ShardAddr) Distance(from ShardAddr) int64 {
	return a.Off.Distance(from.Off)
}

// Before reports whether a precedes b within the shared shard.
func (a ShardAddr) Before(b ShardAddr) bool {
	return a.Off < b.Off
}

// shardMixing collects the cross-shard bug class: combining Off offsets of
// two distinct ShardAddr values in any spelling.
func shardMixing(a, b ShardAddr) {
	_ = a.Off - b.Off // want `mixing Off offsets of distinct wal\.ShardAddr`
	_ = a.Off + b.Off // want `mixing Off offsets of distinct wal\.ShardAddr`
	// Comparisons are legal on plain LSNs but meaningless across shards.
	_ = a.Off < b.Off  // want `mixing Off offsets of distinct wal\.ShardAddr`
	_ = a.Off == b.Off // want `mixing Off offsets of distinct wal\.ShardAddr`
	// Dropping to the LSN helper smuggles the mix past the runtime check.
	_ = a.Off.Distance(b.Off) // want `LSN helper call mixing Off offsets of distinct wal\.ShardAddr`
}

// shardFine shows the shard-safe spellings.
func shardFine(a, b ShardAddr, n int64) {
	_ = a.Advance(n)
	_ = a.Distance(b)
	_ = a.Before(b)
	_ = a.Off < a.Off     // same address value: same shard by construction
	_ = a.Off.Advance(n)  // single-address helper use
	_ = a.Off.Distance(a.Off)
	_ = a.Shard == b.Shard // shard ids are plain ints
}

// shardSuppressed records a deliberate exception with its reason.
func shardSuppressed(a, b ShardAddr) bool {
	//slint:ignore densearith test fixture exercising the suppression path
	return a.Off < b.Off
}

// use keeps the fixture helpers referenced.
var _ = shardMixing
var _ = shardFine
var _ = shardSuppressed
