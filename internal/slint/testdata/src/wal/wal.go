// Package wal is a minimal stand-in for slidb/internal/wal used by the
// slint analyzer tests. The bare import path "wal" is what the analyzers'
// base-name package matching keys on.
package wal

// LSN is a byte offset into the virtual log address space: ordered, not
// dense, exactly like the real type.
type LSN uint64

// Advance returns the LSN n bytes further into the virtual log. Methods on
// LSN are the densearith allowlist: they ARE the byte math.
func (l LSN) Advance(n int64) LSN { return l + LSN(n) }

// Next returns the LSN one encoded record past l.
func (l LSN) Next(size int64) LSN { return l.Advance(size) }

// Distance returns how many bytes separate l from from.
func (l LSN) Distance(from LSN) int64 { return int64(l) - int64(from) }

// Record is a stand-in log record.
type Record struct {
	LSN  LSN
	Size int64
}

// Log is a stand-in write-ahead log with the durability API surface the
// errwedge analyzer matches on.
type Log struct {
	head    LSN
	wedged  bool
	durable LSN
}

func (l *Log) WriteRecord(r *Record) (LSN, error) {
	lsn := l.head
	l.head = l.head.Advance(r.Size)
	return lsn, nil
}

func (l *Log) WriteRange(p []byte, off int64) error { return nil }

func (l *Log) WriteRanges(bufs [][]byte, off int64) error { return nil }

func (l *Log) Flush(upTo LSN) error { return nil }

func (l *Log) FlushAsync(upTo LSN) <-chan error {
	ch := make(chan error, 1)
	ch <- nil
	return ch
}

func (l *Log) Sync() error { return nil }

// writevAt mirrors the raw pwritev syscall wrapper.
func writevAt(bufs [][]byte, off int64) error { return nil }

// use keeps the unexported stand-ins referenced.
var _ = writevAt
