package wal

// nextDense is the PR 5 bug class verbatim: "lsn+1" assumed dense LSNs and
// broke the moment LSNs became byte offsets.
func nextDense(lsn LSN) LSN {
	next := lsn + 1 // want `arithmetic on wal\.LSN`
	return next
}

func moreArith(a, b LSN, n int64) {
	_ = a - b          // want `arithmetic on wal\.LSN`
	_ = a * 2          // want `arithmetic on wal\.LSN`
	_ = a % LSN(n)     // want `arithmetic on wal\.LSN`
	_ = a &^ LSN(4095) // want `arithmetic on wal\.LSN`
	a += LSN(n)        // want `compound assignment on wal\.LSN`
	a++                // want `\+\+ on wal\.LSN is a dense-LSN bug`
}

// helpersAreFine shows the allowlisted spellings: helper methods, ordering
// comparisons, and explicit int64 byte math.
func helpersAreFine(a, b LSN, n int64) {
	_ = a.Advance(n)
	_ = a.Next(128)
	_ = a.Distance(b)
	_ = a < b
	_ = a >= b
	_ = LSN(int64(a) + n) // byte math done in int64 space, then converted
}

// suppressed records a deliberate exception with its reason.
func suppressed(a LSN) LSN {
	//slint:ignore densearith test fixture exercising the suppression path
	return a + 1
}
