// Package directives exercises the directives analyzer: the //slint:
// comments themselves must be well-formed.
package directives

import "time"

// wellFormed carries a valid hotpath annotation.
//
//slint:hotpath
func wellFormed() int { return 1 }

func wellFormedIgnore() {
	//slint:ignore hotblock fixture: a valid directive with analyzer and reason
	_ = time.Now()
}

//slint:ignore
// want@-1 `slint:ignore needs an analyzer name and a reason`

//slint:ignore densearith
// want@-1 `slint:ignore densearith needs a reason`

//slint:ignore speling mistake in the analyzer name
// want@-1 `slint:ignore names unknown analyzer "speling"`

func wellFormedIgnoreList() {
	//slint:ignore errwedge,walorder a valid comma-separated suppression list
	_ = time.Now()
}

//slint:ignore errwedge,walorder
// want@-1 `slint:ignore errwedge,walorder needs a reason`

//slint:ignore errwedge,,walorder trailing comma slipped in
// want@-1 `slint:ignore has an empty element in its analyzer list "errwedge,,walorder"`

//slint:ignore errwedge,speling one good name, one bad
// want@-1 `slint:ignore names unknown analyzer "speling"`

//slint:frobnicate
// want@-1 `unknown slint directive "frobnicate"`

//slint:hotpath with arguments
// want@-1 `slint:hotpath takes no arguments`

func misplacedHotpath() {
	//slint:hotpath
	// want@-1 `slint:hotpath must appear in a function declaration's doc comment`
	_ = time.Now()
}
