// Package hotblock exercises the hotblock analyzer: functions annotated
// //slint:hotpath must not block in their own statements.
package hotblock

import (
	"sync"
	"time"
)

type buf struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	once  sync.Once
	wg    sync.WaitGroup
	ready chan struct{}
	work  chan int
}

// reserve is on the hot path and does everything wrong.
//
//slint:hotpath
func (b *buf) reserve(n int) {
	time.Sleep(time.Microsecond) // want `time\.Sleep in //slint:hotpath function reserve`
	b.mu.Lock()                  // want `sync\.Mutex\.Lock in //slint:hotpath function reserve`
	b.rw.RLock()                 // want `sync\.RWMutex\.RLock in //slint:hotpath function reserve`
	b.once.Do(func() {})         // want `sync\.Once\.Do in //slint:hotpath function reserve`
	b.wg.Wait()                  // want `sync\.WaitGroup\.Wait in //slint:hotpath function reserve`
	b.work <- n                  // want `channel send in //slint:hotpath function reserve`
	<-b.ready                    // want `channel receive in //slint:hotpath function reserve`
}

// drain blocks in fancier ways.
//
//slint:hotpath
func (b *buf) drain() {
	for v := range b.work { // want `range over channel in //slint:hotpath function drain`
		_ = v
	}
	select { // want `select without default in //slint:hotpath function drain`
	case <-b.ready:
	}
}

// publishFast is hot and stays non-blocking: CAS loops, atomic-free reads,
// and a select with a default are all fine.
//
//slint:hotpath
func (b *buf) publishFast(n int) bool {
	select {
	case b.work <- n:
	default:
		return false
	}
	return true
}

// coldPath has no annotation; blocking is its job.
func (b *buf) coldPath(n int) {
	time.Sleep(time.Millisecond)
	b.mu.Lock()
	b.work <- n
	<-b.ready
}

// suppressed records the non-blocking-by-construction argument.
//
//slint:hotpath
func (b *buf) suppressed(n int) {
	//slint:ignore hotblock buffered by construction: capacity equals max outstanding reservations
	b.work <- n
}
