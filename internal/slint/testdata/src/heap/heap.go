// Package heap is a stand-in for slidb/internal/heap: the slotted-page heap
// file whose Insert/Update/Delete methods the walorder analyzer treats as
// in-memory mutations.
package heap

import "errors"

// ErrNotFound mirrors the real heap's missing-row error.
var ErrNotFound = errors.New("heap: not found")

// RID addresses a row by page and slot.
type RID struct {
	Page uint32
	Slot uint16
}

// File is a minimal in-memory heap file.
type File struct {
	rows map[RID][]byte
	next uint32
}

func New() *File { return &File{rows: make(map[RID][]byte)} }

func (f *File) Insert(data []byte) (RID, error) {
	f.next++
	rid := RID{Page: f.next}
	f.rows[rid] = data
	return rid, nil
}

func (f *File) Update(rid RID, data []byte) error {
	if _, ok := f.rows[rid]; !ok {
		return ErrNotFound
	}
	f.rows[rid] = data
	return nil
}

func (f *File) Delete(rid RID) error {
	if _, ok := f.rows[rid]; !ok {
		return ErrNotFound
	}
	delete(f.rows, rid)
	return nil
}

func (f *File) Get(rid RID) ([]byte, error) {
	data, ok := f.rows[rid]
	if !ok {
		return nil, ErrNotFound
	}
	return data, nil
}
