// Package proftimer exercises the proftimer analyzer: profiler timings
// must reach their time.Since stop on every return path.
package proftimer

import (
	"errors"
	"time"

	"profiler"
)

var errBoom = errors.New("boom")

func work() error { return nil }

// leakyFlush is the preCommit bug shape: the error return skips the Add, so
// CatLogFlush under-reports exactly when the flush failed.
func leakyFlush(prof *profiler.Handle) error {
	flushStart := time.Now()
	if err := work(); err != nil {
		return err // want `return without stopping profiler timing "flushStart"`
	}
	prof.Add(profiler.CatLogFlush, time.Since(flushStart))
	return nil
}

// coveredFlush stops the timer on both paths.
func coveredFlush(prof *profiler.Handle) error {
	flushStart := time.Now()
	if err := work(); err != nil {
		prof.Add(profiler.CatLogFlush, time.Since(flushStart))
		return err
	}
	prof.Add(profiler.CatLogFlush, time.Since(flushStart))
	return nil
}

// deferredFlush covers every return path with one defer.
func deferredFlush(prof *profiler.Handle) error {
	flushStart := time.Now()
	defer func() { prof.Add(profiler.CatLogFlush, time.Since(flushStart)) }()
	if err := work(); err != nil {
		return err
	}
	return nil
}

// appendTimed mirrors the real convention: the Since result flows through
// an intermediate before feeding several Add calls, and the early return
// still leaks it.
func appendTimed(prof *profiler.Handle, reserveWait time.Duration) error {
	start := time.Now()
	err := work()
	if err != nil {
		return err // want `return without stopping profiler timing "start"`
	}
	total := time.Since(start)
	prof.Add(profiler.CatLogReserveWait, reserveWait)
	prof.Add(profiler.CatWork, total-reserveWait)
	return nil
}

// conditionalStart is the applyUndo shape: timing only happens when a
// profiler is attached, so path coverage is not the analyzer's business.
func conditionalStart(prof *profiler.Handle) error {
	var start time.Time
	if prof != nil {
		start = time.Now()
	}
	if err := work(); err != nil {
		return err
	}
	if prof != nil {
		prof.Add(profiler.CatWork, time.Since(start))
	}
	return nil
}

// panicPath: a path that cannot return does not need a stop.
func panicPath(prof *profiler.Handle) {
	start := time.Now()
	if err := work(); err != nil {
		panic(err)
	}
	prof.Add(profiler.CatWork, time.Since(start))
}

// plainDeadline never feeds the profiler; not a profiler timing at all.
func plainDeadline() error {
	start := time.Now()
	if err := work(); err != nil {
		return err
	}
	if time.Since(start) > time.Second {
		return errBoom
	}
	return nil
}

// suppressed records the deliberate exception.
func suppressed(prof *profiler.Handle) error {
	start := time.Now()
	if err := work(); err != nil {
		return err //slint:ignore proftimer fixture: abandonment of the sample is intended here
	}
	prof.Add(profiler.CatWork, time.Since(start))
	return nil
}
