// Package core is a stand-in for slidb/internal/core exercising the
// errwedge analyzer: results of log-durability calls must not be dropped.
package core

import "wal"

type entry struct {
	rec wal.Record
}

type tx struct {
	log     *wal.Log
	undo    []entry
	lastLSN wal.LSN
}

func (tx *tx) applyUndo(ent entry) error { return nil }

func (tx *tx) logAppend(rec *wal.Record) (wal.LSN, error) {
	return tx.log.WriteRecord(rec)
}

// abortDroppingUndo is the PR 4 UndoFailures bug class verbatim: rollback
// discarded applyUndo errors and the tree lied about which undos held.
func (tx *tx) abortDroppingUndo() {
	for _, ent := range tx.undo {
		_ = tx.applyUndo(ent) // want `error from core\.applyUndo assigned to _`
	}
}

func (tx *tx) moreDrops(rec *wal.Record) {
	tx.log.Flush(tx.lastLSN)       // want `result of wal\.Flush dropped`
	tx.log.FlushAsync(tx.lastLSN)  // want `result of wal\.FlushAsync dropped`
	_, _ = tx.logAppend(rec)       // want `error from core\.logAppend assigned to _`
	go tx.log.Sync()               // want `go wal\.Sync discards its result`
	defer tx.log.Sync()            // want `defer wal\.Sync discards its result`
	_ = tx.log.WriteRanges(nil, 0) // want `error from wal\.WriteRanges assigned to _`
}

func (tx *tx) handled(rec *wal.Record) error {
	if _, err := tx.logAppend(rec); err != nil {
		return err
	}
	if err := tx.log.Flush(tx.lastLSN); err != nil {
		return err
	}
	errc := tx.log.FlushAsync(tx.lastLSN)
	return <-errc
}

// bestEffort records the deliberate abort-path discards with reasons, the
// sanctioned spelling for what abort() does in the real engine.
func (tx *tx) bestEffort() {
	for _, ent := range tx.undo {
		//slint:ignore errwedge abort path is best-effort; failures surface via UndoFailures counter
		_ = tx.applyUndo(ent)
	}
	_ = tx.log.FlushAsync(tx.lastLSN) //slint:ignore errwedge fire-and-forget durability nudge on abort
}
