// Package hotalloc exercises the hotalloc analyzer: //slint:hotpath
// functions and everything they call must be allocation-free, with
// allocation summaries propagating via Facts.
package hotalloc

import (
	"fmt"

	"hotallocdep"
)

type buf struct {
	data []byte
	pos  int
}

type sink interface{ accept(v any) }

// fillOK copies without allocating; the panic argument is exempt.
//
//slint:hotpath
func fillOK(b *buf, src []byte) int {
	n := copy(b.data[b.pos:], src)
	b.pos += n
	if b.pos > len(b.data) {
		panic(fmt.Sprintf("overrun: pos %d cap %d", b.pos, len(b.data)))
	}
	return n
}

// localClosureOK: a literal assigned to a local and called in place stays
// on the stack (the Record.EncodeTo `put` pattern).
//
//slint:hotpath
func localClosureOK(b *buf, vals []uint64) {
	put := func(v uint64) {
		b.data[b.pos] = byte(v)
		b.pos++
	}
	for _, v := range vals {
		put(v)
	}
}

//slint:hotpath
func growHot(b *buf, v byte) {
	b.data = append(b.data, v) // want `append \(may grow its backing array\) in //slint:hotpath function growHot`
}

//slint:hotpath
func fmtHot(n int) {
	fmt.Println(n) // want `fmt\.Println call in //slint:hotpath function fmtHot`
}

//slint:hotpath
func boxHot(s sink, v int) {
	s.accept(v) // want `interface boxing of int in //slint:hotpath function boxHot`
}

//slint:hotpath
func concatHot(a, b string) string {
	return a + b // want `string concatenation in //slint:hotpath function concatHot`
}

//slint:hotpath
func escapeHot(b *buf) *buf {
	return &buf{data: b.data} // want `escaping composite literal in //slint:hotpath function escapeHot`
}

var callbacks []func()

//slint:hotpath
func closureHot(n int) {
	callbacks = append(callbacks, func() { _ = n }) // want `append \(may grow its backing array\)` `escaping function literal \(closure capture\)`
}

func helperAlloc() *buf { return &buf{} }

//slint:hotpath
func indirectHot() *buf {
	return helperAlloc() // want `call to helperAlloc allocates \(helperAlloc: escaping composite literal\)`
}

// chainHot's allocation is three calls deep in another package; the
// witness chain arrives as a fact.
//
//slint:hotpath
func chainHot() {
	hotallocdep.Record("tx", 1) // want `call to Record allocates \(Record → store → appendSample: append`
}

// coldPath is not annotated: it may allocate freely.
func coldPath() []int {
	return append([]int{}, 1, 2, 3)
}

var samples []int

//slint:hotpath
func ignoredHot(v int) {
	samples = append(samples, v) //slint:ignore hotalloc fixture demonstrating a reasoned suppression
}
