// Package lockorder exercises the intra-package half of the lockorder
// analyzer: field mutexes, transitive acquisition through callees, and an
// in-package cycle between two subsystem locks.
package lockorder

import "sync"

type Engine struct {
	mu sync.RWMutex
}

type Log struct {
	mu sync.Mutex
}

var (
	eng Engine
	wal Log
)

// commit acquires Engine.mu and then, through flush, Log.mu — the edge is
// composed from flush's summary at the call site.
func commit() {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	flush() // want `lock acquisition cycle: lockorder\.Engine\.mu → lockorder\.Log\.mu .* closed by lockorder\.Log\.mu → lockorder\.Engine\.mu`
}

func flush() {
	wal.mu.Lock()
	defer wal.mu.Unlock()
}

// callback reverses the order through its own callee.
func callback() {
	wal.mu.Lock()
	defer wal.mu.Unlock()
	poke()
}

// poke takes a read lock: RLock still participates in cycles.
func poke() {
	eng.mu.RLock()
	defer eng.mu.RUnlock()
}

// sequentialOK releases the first lock before taking the second in both
// orders: no edge, no cycle.
func sequentialOK() {
	eng.mu.Lock()
	eng.mu.Unlock()
	wal.mu.Lock()
	wal.mu.Unlock()
	wal.mu.Lock()
	wal.mu.Unlock()
	eng.mu.Lock()
	eng.mu.Unlock()
}
