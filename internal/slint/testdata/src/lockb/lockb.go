// Package lockb closes a cross-package lock cycle: it acquires locka.MuA
// while holding locka.MuB — the reverse of the order locka.LockAThenB
// documents. locka's edge arrives here as an imported fact, and the cycle
// is reported at this package's acquisition site with both witnesses.
package lockb

import "locka"

// LockBThenA performs B → A, closing the cycle against locka's A → B.
func LockBThenA() {
	locka.MuB.Lock()
	defer locka.MuB.Unlock()
	locka.MuA.Lock() // want `lock acquisition cycle: locka\.MuB → locka\.MuA .* closed by locka\.MuA → locka\.MuB`
	defer locka.MuA.Unlock()
}
