// Package goroleakdep provides a cross-package loop whose shutdown edge
// lives at home, proving the goroleak fact flows into the spawning package.
package goroleakdep

// Pump produces values until stopped.
type Pump struct {
	stop chan struct{}
	out  chan int
}

func New() *Pump {
	return &Pump{stop: make(chan struct{}), out: make(chan int)}
}

// Run loops until the stop channel is closed. // wantfact "shutdown via receive on p.stop"
func (p *Pump) Run() {
	for {
		select {
		case <-p.stop:
			return
		case p.out <- 1:
		}
	}
}

// Close releases Run.
func (p *Pump) Close() { close(p.stop) }
