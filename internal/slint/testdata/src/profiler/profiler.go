// Package profiler is a minimal stand-in for slidb/internal/profiler used
// by the slint analyzer tests.
package profiler

import "time"

// Category indexes a timing bucket.
type Category int

const (
	CatLogFlush Category = iota
	CatLogReserveWait
	CatLogBufferFullWait
	CatWork
)

// Handle accumulates per-category durations.
type Handle struct {
	nanos [4]int64
}

// Add attributes d to category c.
func (h *Handle) Add(c Category, d time.Duration) {
	if h != nil {
		h.nanos[c] += int64(d)
	}
}

// Timed runs f and attributes its wall time to c.
func (h *Handle) Timed(c Category, f func()) {
	start := time.Now()
	f()
	h.Add(c, time.Since(start))
}
