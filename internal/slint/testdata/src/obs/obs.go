// Package obs is a minimal stand-in for slidb/internal/obs used by the
// slint analyzer tests: just the Registry constructor surface metricname
// matches on.
package obs

// Sample is one labeled observation.
type Sample struct {
	Label string
	Value float64
}

type Counter struct{ v uint64 }

func (c *Counter) Add(n uint64) { c.v += n }

type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64) { g.v = v }

type Histogram struct{ sum float64 }

func (h *Histogram) Observe(v float64) { h.sum += v }

// Registry registers metric families.
type Registry struct {
	names []string
}

func (r *Registry) Counter(name, help string) *Counter {
	r.names = append(r.names, name)
	return &Counter{}
}

func (r *Registry) Gauge(name, help string) *Gauge {
	r.names = append(r.names, name)
	return &Gauge{}
}

func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.names = append(r.names, name)
}

func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.names = append(r.names, name)
}

func (r *Registry) LabeledCounterFunc(name, help, label string, fn func() []Sample) {
	r.names = append(r.names, name)
}

func (r *Registry) LabeledGaugeFunc(name, help, label string, fn func() []Sample) {
	r.names = append(r.names, name)
}

func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	r.names = append(r.names, name)
	return &Histogram{}
}
