package slint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"
)

// WalOrder proves the write-ahead ordering protocol on Tx mutation paths.
//
// The engine applies a mutation in memory first (heap insert/update/delete,
// index tree insert/remove), then appends the WAL record, then registers the
// undo entry carrying that record's LSN. The protocol obligation is on the
// paths out of the function: once an in-memory mutation has been applied,
// every non-panic return must have either
//
//   - registered the undo (tx.pushUndo), so abort and recovery can roll the
//     mutation back, or
//   - rolled the mutation back inline — a call through a local rollback
//     closure (the `undo(tx)` pattern on logAppend failure), or the inverse
//     in-memory operation (heap Delete compensating an Insert, tree remove
//     compensating an insert, ...).
//
// A return with neither is the PR 4 bug class: a wedged log left a phantom
// row visible with no registered undo. The one legitimate bare return is the
// mutation's own failure path — if rt.hf.Insert itself errored, nothing was
// applied — which the analyzer recognizes by the return being guarded by a
// condition on the mutation's own results.
//
// Additionally, within any function that both mutates and registers undos,
// the log append must dominate pushUndo: the undo entry's LSN field is
// tx.lastLSN, which only the append sets, so an undo registered before its
// record is appended carries a stale LSN into recovery.
//
// The proof is a control-flow-graph walk per function (panic/Fatal paths
// excluded, as in proftimer); it is intra-procedural by design — Insert,
// Update and Delete each carry the whole protocol locally, which is itself
// an invariant worth keeping.
var WalOrder = &analysis.Analyzer{
	Name: "walorder",
	Doc:  "prove WAL append and undo registration cover every in-memory mutation path in Tx methods",
	Run:  runWalOrder,
}

// mutKind classifies an in-memory mutation call by its inverse.
type mutKind int

const (
	mutHeapInsert mutKind = iota
	mutHeapUpdate
	mutHeapDelete
	mutTreeInsert
	mutTreeRemove
)

// inverseOf maps each mutation kind to the kind that compensates it.
var inverseOf = map[mutKind]mutKind{
	mutHeapInsert: mutHeapDelete,
	mutHeapDelete: mutHeapInsert,
	mutHeapUpdate: mutHeapUpdate, // writing the before-image back is another update
	mutTreeInsert: mutTreeRemove,
	mutTreeRemove: mutTreeInsert,
}

var mutKindName = map[mutKind]string{
	mutHeapInsert: "heap insert",
	mutHeapUpdate: "heap update",
	mutHeapDelete: "heap delete",
	mutTreeInsert: "index insert",
	mutTreeRemove: "index remove",
}

// walMutation is one in-memory mutation site with its guard context.
type walMutation struct {
	call    *ast.CallExpr
	kind    mutKind
	guards  map[types.Object]bool // variables assigned from the mutation's statement
	guardIf *ast.IfStmt           // if the call sits in an if's Init/Cond directly
}

// walCalls is everything walorder cares about in one function body,
// collected without descending into nested function literals (a mutation
// inside the undo closure runs at rollback time, not on this path).
type walCalls struct {
	mutations []*walMutation
	logs      []*ast.CallExpr // tx.logAppend / tx.appendTimed
	pushes    []*ast.CallExpr // tx.pushUndo
	closures  []*ast.CallExpr // calls through local func-typed variables
}

func runWalOrder(pass *analysis.Pass) (interface{}, error) {
	idx := buildDirectiveIndex(pass)
	for _, file := range pass.Files {
		parents := buildParentMap(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isTxMethod(pass, fd) {
				continue
			}
			checkWalOrder(pass, idx, parents, fd)
		}
	}
	return nil, nil
}

// isTxMethod reports whether fd is a method on a type named Tx — the
// transaction handles are where the write-ahead protocol lives.
func isTxMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	return typeBase(derefType(t)) == "Tx"
}

func checkWalOrder(pass *analysis.Pass, idx *directiveIndex, parents map[ast.Node]ast.Node, fd *ast.FuncDecl) {
	calls := collectWalCalls(pass, parents, fd.Body)
	if len(calls.mutations) == 0 {
		return
	}
	g := cfg.New(fd.Body, mayReturn)
	// Pass 1: a mutation that is the inverse of an earlier one on some path
	// is that mutation's inline rollback — it discharges an obligation
	// rather than creating one (the `_ = rt.hf.Delete(rid)` on Insert's
	// error paths). Mark those so pass 2 doesn't demand an undo for them.
	comp := make(map[*ast.CallExpr]bool)
	for _, m := range calls.mutations {
		walkMutationPaths(pass, g, calls, m, comp, nil, nil)
	}
	// Pass 2: every remaining mutation must settle on all paths.
	for _, m := range calls.mutations {
		if comp[m.call] {
			continue
		}
		walkMutationPaths(pass, g, calls, m, nil,
			func(ret *ast.ReturnStmt) {
				if ret.Return >= fd.Body.Rbrace {
					// cfg synthesizes an implicit return at the closing
					// brace when control falls off the end of the body.
					report(pass, idx, m.call,
						"%s in %s reaches the end of the function with no undo registered and no inline rollback",
						mutKindName[m.kind], fd.Name.Name)
					return
				}
				if !guardedReturn(pass, parents, ret, m) {
					report(pass, idx, ret,
						"return in %s with the %s at line %d still applied: no undo was registered (pushUndo) and no inline rollback ran — a wedged log here leaves the mutation visible with nothing to roll it back",
						fd.Name.Name, mutKindName[m.kind], pass.Fset.Position(m.call.Pos()).Line)
				}
			},
			func() {
				report(pass, idx, m.call,
					"%s in %s reaches the end of the function with no undo registered and no inline rollback",
					mutKindName[m.kind], fd.Name.Name)
			})
	}
	if len(calls.pushes) > 0 && len(calls.logs) > 0 {
		checkLogDominatesPush(pass, idx, g, calls)
	} else if len(calls.pushes) > 0 {
		// pushUndo with no log append anywhere in the function: every
		// registration carries a stale LSN.
		for _, p := range calls.pushes {
			report(pass, idx, p,
				"pushUndo in %s with no log append in the function: the undo entry's LSN is whatever the previous record set (WAL rule: append the record, then register its undo)",
				fd.Name.Name)
		}
	}
}

// collectWalCalls gathers the protocol-relevant calls in body, skipping
// nested function literals.
func collectWalCalls(pass *analysis.Pass, parents map[ast.Node]ast.Node, body *ast.BlockStmt) *walCalls {
	calls := &walCalls{}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if kind, ok := mutationKind(pass, call); ok {
				calls.mutations = append(calls.mutations, newWalMutation(pass, parents, call, kind))
				return true
			}
			if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok && isMethodOn(fn, "Tx") {
				switch fn.Name() {
				case "logAppend", "appendTimed":
					calls.logs = append(calls.logs, call)
				case "pushUndo":
					calls.pushes = append(calls.pushes, call)
				}
				return true
			}
			// A call through a local func-typed variable: the inline
			// rollback closure pattern.
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
					if _, isSig := v.Type().Underlying().(*types.Signature); isSig {
						calls.closures = append(calls.closures, call)
					}
				}
			}
			return true
		})
	}
	walk(body)
	return calls
}

// mutationKind classifies call as an in-memory mutation: a heap-package
// Insert/Update/Delete method, or an indexTree insert/remove.
func mutationKind(pass *analysis.Pass, call *ast.CallExpr) (mutKind, bool) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, false
	}
	if fromPkg(fn.Pkg(), "heap") {
		switch fn.Name() {
		case "Insert":
			return mutHeapInsert, true
		case "Update":
			return mutHeapUpdate, true
		case "Delete":
			return mutHeapDelete, true
		}
		return 0, false
	}
	if typeBase(derefType(sig.Recv().Type())) == "indexTree" {
		switch fn.Name() {
		case "insert":
			return mutTreeInsert, true
		case "remove":
			return mutTreeRemove, true
		}
	}
	return 0, false
}

// isMethodOn reports whether fn is a method whose receiver's base type is
// named recvName.
func isMethodOn(fn *types.Func, recvName string) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeBase(derefType(sig.Recv().Type())) == recvName
}

// newWalMutation records the mutation's guard context: which variables its
// enclosing statement assigns (rid, err := rt.hf.Insert(...)), or the if
// statement whose Init/Cond contains the call (if !tree.insert(...) {...}).
// Returns guarded by those are the "mutation itself failed" path.
func newWalMutation(pass *analysis.Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr, kind mutKind) *walMutation {
	m := &walMutation{call: call, kind: kind, guards: make(map[types.Object]bool)}
	for cur := parents[ast.Node(call)]; cur != nil; cur = parents[cur] {
		switch s := cur.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						m.guards[obj] = true
					}
				}
			}
		case *ast.IfStmt:
			if within(call, s.Cond) || (s.Init != nil && within(call, s.Init)) {
				m.guardIf = s
			}
			return m
		case *ast.BlockStmt, *ast.FuncDecl, *ast.FuncLit:
			return m
		}
	}
	return m
}

// within reports whether inner's source range is inside outer's.
func within(inner, outer ast.Node) bool {
	return outer != nil && inner.Pos() >= outer.Pos() && inner.End() <= outer.End()
}

// walkMutationPaths walks the CFG forward from the mutation. A path is
// settled by a pushUndo, a call through a local rollback closure, or the
// inverse in-memory mutation. When mark is non-nil, inverse mutations that
// settle a path are recorded as compensations. When onReturn/onEnd are
// non-nil, they are invoked for returns (and function-end fallthroughs)
// reached on unsettled paths.
func walkMutationPaths(pass *analysis.Pass, g *cfg.CFG, calls *walCalls, m *walMutation, mark map[*ast.CallExpr]bool, onReturn func(*ast.ReturnStmt), onEnd func()) {
	startBlock, startIdx := findNode(g, m.call)
	if startBlock == nil {
		return // dead code; nothing to prove
	}

	// settles reports how CFG node n discharges the obligation (after the
	// mutation itself, for the node holding it): byPush for pushUndo or a
	// rollback-closure call, byInverse for a compensating inverse mutation.
	settles := func(n ast.Node, after ast.Node) (byPush, byInverse bool) {
		minPos := n.Pos()
		if after != nil {
			minPos = after.End()
		}
		for _, p := range calls.pushes {
			if within(p, n) && p.Pos() >= minPos {
				return true, false
			}
		}
		for _, c := range calls.closures {
			if within(c, n) && c.Pos() >= minPos {
				return true, false
			}
		}
		for _, other := range calls.mutations {
			if other.kind == inverseOf[m.kind] && other.call != m.call && within(other.call, n) && other.call.Pos() >= minPos {
				if mark != nil {
					mark[other.call] = true
				}
				byInverse = true
			}
		}
		return false, byInverse
	}

	seen := make(map[*cfg.Block]bool)
	type item struct {
		b *cfg.Block
		i int
	}
	work := []item{{startBlock, startIdx}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		done := false
		for j := it.i; j < len(it.b.Nodes); j++ {
			n := it.b.Nodes[j]
			var after ast.Node
			if it.b == startBlock && j == startIdx {
				after = m.call
			}
			byPush, byInverse := settles(n, after)
			if byPush || (byInverse && mark == nil) {
				done = true
				break
			}
			// In marking mode an inverse settler doesn't stop the walk: a
			// rollback branch may compensate several mutations in sequence
			// (pk restore, then each secondary index in a loop) and every
			// one of them must be marked.
			if ret := returnIn(n); ret != nil {
				if onReturn != nil {
					onReturn(ret)
				}
				done = true
				break
			}
		}
		if done {
			continue
		}
		if len(it.b.Succs) == 0 {
			// A block with no successors is either the fall-off-the-end exit
			// or the tail of a panic/Fatal path (which mayReturn pruned).
			// Only the former ends the function with the mutation live.
			if onEnd != nil && !endsInNoReturnCall(it.b) && it.b.Live {
				onEnd()
			}
			continue
		}
		for _, succ := range it.b.Succs {
			if !seen[succ] {
				seen[succ] = true
				work = append(work, item{succ, 0})
			}
		}
	}
}

// findNode locates the CFG block and node index whose node contains target.
func findNode(g *cfg.CFG, target ast.Node) (*cfg.Block, int) {
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if within(target, n) {
				return b, i
			}
		}
	}
	return nil, -1
}

// returnIn returns the ReturnStmt if n is one.
func returnIn(n ast.Node) *ast.ReturnStmt {
	ret, _ := n.(*ast.ReturnStmt)
	return ret
}

// endsInNoReturnCall reports whether the block's last node is a call the CFG
// builder treats as not returning (panic, Fatal, ...).
func endsInNoReturnCall(b *cfg.Block) bool {
	if len(b.Nodes) == 0 {
		return false
	}
	var last *ast.CallExpr
	ast.Inspect(b.Nodes[len(b.Nodes)-1], func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			last = c
		}
		return true
	})
	return last != nil && !mayReturn(last)
}

// guardedReturn reports whether ret sits under an if whose condition tests
// the mutation's own results — the "mutation itself failed, nothing to roll
// back" path.
func guardedReturn(pass *analysis.Pass, parents map[ast.Node]ast.Node, ret *ast.ReturnStmt, m *walMutation) bool {
	for cur := parents[ast.Node(ret)]; cur != nil; cur = parents[cur] {
		is, ok := cur.(*ast.IfStmt)
		if !ok {
			if _, isFn := cur.(*ast.FuncDecl); isFn {
				return false
			}
			if _, isFn := cur.(*ast.FuncLit); isFn {
				return false
			}
			continue
		}
		if is == m.guardIf {
			return true
		}
		found := false
		ast.Inspect(is.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && m.guards[pass.TypesInfo.ObjectOf(id)] {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// checkLogDominatesPush reports pushUndo calls reachable from function entry
// without passing a log append: the undo entry's LSN field reads tx.lastLSN,
// which only the append sets.
func checkLogDominatesPush(pass *analysis.Pass, idx *directiveIndex, g *cfg.CFG, calls *walCalls) {
	if len(g.Blocks) == 0 {
		return
	}
	reported := make(map[*ast.CallExpr]bool)
	seen := make(map[*cfg.Block]bool)
	work := []*cfg.Block{g.Blocks[0]}
	seen[g.Blocks[0]] = true
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		blocked := false
		for _, n := range b.Nodes {
			// First log append in the node bounds how far the scan reaches.
			var logPos ast.Node
			for _, l := range calls.logs {
				if within(l, n) && (logPos == nil || l.Pos() < logPos.Pos()) {
					logPos = l
				}
			}
			for _, p := range calls.pushes {
				if within(p, n) && (logPos == nil || p.Pos() < logPos.Pos()) && !reported[p] {
					reported[p] = true
					report(pass, idx, p,
						"pushUndo is reachable without a prior log append on this path: the undo entry's LSN predates its record (WAL rule: append the record, then register its undo)")
				}
			}
			if logPos != nil {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		for _, succ := range b.Succs {
			if !seen[succ] {
				seen[succ] = true
				work = append(work, succ)
			}
		}
	}
}
