package slint_test

import (
	"path/filepath"
	"testing"

	"slidb/internal/slint"
	"slidb/internal/slint/slinttest"
)

func testdata(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// TestDenseArith runs both inside the wal stand-in (where LSN methods are
// allowlisted) and from consumer code (where nothing is).
func TestDenseArith(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.DenseArith, "wal", "densearith")
}

func TestAtomicMix(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.AtomicMix, "atomicmix")
}

func TestProfTimer(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.ProfTimer, "proftimer")
}

// TestErrWedge's fixture package is named core on purpose: the unexported
// helpers (applyUndo, logAppend) are matched in their home package, and the
// fixture reproduces the PR 4 dropped-undo-error bug verbatim.
func TestErrWedge(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.ErrWedge, "core")
}

func TestHotBlock(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.HotBlock, "hotblock")
}

func TestMetricName(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.MetricName, "metricname")
}

func TestDirectives(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.Directives, "directives")
}

// TestWalOrder's fixtures carry the PR 4 undo-registration-ordering bug
// class verbatim (InsertNoRollback) next to the fixed protocol shape.
func TestWalOrder(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.WalOrder, "walorder")
}

// TestLockOrder runs over both halves of a cross-package cycle: locka's
// facts flow into lockb's pass, where the cycle closes.
func TestLockOrder(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.LockOrder, "locka", "lockb", "lockorder")
}

// TestHotAlloc includes a dependency package (hotallocdep) whose allocation
// facts must reach the hotpath package for the three-calls-deep case.
func TestHotAlloc(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.HotAlloc, "hotallocdep", "hotalloc")
}

func TestGoroLeak(t *testing.T) {
	slinttest.Run(t, testdata(t), slint.GoroLeak, "goroleakdep", "goroleak")
}
