package slint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// HotAlloc extends the //slint:hotpath contract interprocedurally: an
// annotated function and everything it calls must be allocation-free.
//
// The reserve/fill/publish path is one fetch-and-add and some memcpy; a
// single allocation there shows up as GC pressure exactly at peak commit
// rate. hotblock pins the blocking discipline; this analyzer pins the
// allocation discipline, and unlike hotblock it follows calls: every
// function that allocates (directly or transitively) exports an object
// Fact carrying the witness chain, so an allocation introduced three calls
// below an annotated function still trips the build in the package that
// spawned it.
//
// Direct allocation witnesses:
//
//   - make and new
//   - append (may grow its backing array)
//   - escaping composite literals: slice/map literals, and &T{...} or
//     composite literals used as call arguments, return values, stored
//     into fields/indexes, or sent — a plain `v := T{...}` local stays on
//     the stack and is not flagged
//   - function literals in escaping positions (closure capture); a literal
//     assigned to a local and called in place does not escape
//   - interface boxing: a non-interface value passed for an interface
//     parameter (including variadic ...any) or assigned to an interface
//   - string concatenation with + (non-constant)
//   - any call into fmt
//
// Arguments of panic(...) are exempt: a hot path that is already dying may
// format its last words.
var HotAlloc = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "forbid allocations in //slint:hotpath functions and, via Facts, in everything they call",
	Run:       runHotAlloc,
	FactTypes: []analysis.Fact{(*allocFact)(nil)},
}

// allocFact marks a function as allocating, with a human-readable witness
// chain ("publish → fmt.Sprintf: fmt call").
type allocFact struct {
	Chain string
}

func (*allocFact) AFact()           {}
func (f *allocFact) String() string { return "allocates: " + f.Chain }

// allocWitness is one direct allocation site in a function.
type allocWitness struct {
	node ast.Node
	what string
}

func runHotAlloc(pass *analysis.Pass) (interface{}, error) {
	idx := buildDirectiveIndex(pass)

	type funcInfo struct {
		fd      *ast.FuncDecl
		direct  []allocWitness
		parents map[ast.Node]ast.Node
	}
	funcs := make(map[*types.Func]*funcInfo)
	for _, file := range pass.Files {
		parents := buildParentMap(file)
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			funcs[fn] = &funcInfo{
				fd:      fd,
				direct:  directAllocs(pass, parents, fd.Body),
				parents: parents,
			}
		}
	}

	// Summaries to a fixpoint: a function allocates if it has a direct
	// witness or calls an allocator (same package or via imported Fact).
	chain := make(map[*types.Func]string)
	lookup := func(fn *types.Func) (string, bool) {
		if c, ok := chain[fn]; ok {
			return c, true
		}
		var fact allocFact
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Chain, true
		}
		return "", false
	}
	for fn, fi := range funcs {
		if len(fi.direct) > 0 {
			chain[fn] = fmt.Sprintf("%s: %s", fn.Name(), fi.direct[0].what)
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, fi := range funcs {
			if _, done := chain[fn]; done {
				continue
			}
			ast.Inspect(fi.fd.Body, func(n ast.Node) bool {
				if _, done := chain[fn]; done {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
				if !ok || callee == fn || inPanicArg(fi.parents, call) {
					return true
				}
				if c, ok := lookup(callee); ok {
					chain[fn] = fn.Name() + " → " + c
					changed = true
				}
				return true
			})
		}
	}
	for fn, c := range chain {
		pass.ExportObjectFact(fn, &allocFact{Chain: c})
	}

	// Report inside //slint:hotpath functions: direct witnesses and calls
	// into allocating functions.
	for fn, fi := range funcs {
		if !isHotpath(fi.fd) {
			continue
		}
		name := fn.Name()
		for _, w := range fi.direct {
			report(pass, idx, w.node, "%s in //slint:hotpath function %s: the hot path must not allocate", w.what, name)
		}
		ast.Inspect(fi.fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
			if !ok || callee == fn || inPanicArg(fi.parents, call) {
				return true
			}
			if isStdPkg(callee.Pkg(), "fmt") {
				return true // already a direct witness on this call
			}
			if c, ok := lookup(callee); ok {
				report(pass, idx, call,
					"call to %s allocates (%s) in //slint:hotpath function %s: the hot path must not allocate",
					callee.Name(), c, name)
			}
			return true
		})
	}
	return nil, nil
}

// directAllocs collects direct allocation witnesses in body, exempting
// panic arguments.
func directAllocs(pass *analysis.Pass, parents map[ast.Node]ast.Node, body *ast.BlockStmt) []allocWitness {
	var out []allocWitness
	add := func(n ast.Node, what string) {
		if !inPanicArg(parents, n) {
			out = append(out, allocWitness{node: n, what: what})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if builtinCall(pass, fun) {
					switch fun.Name {
					case "make":
						add(n, "make")
					case "new":
						add(n, "new")
					case "append":
						add(n, "append (may grow its backing array)")
					}
					return true
				}
			}
			if fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func); ok {
				if isStdPkg(fn.Pkg(), "fmt") {
					add(n, "fmt."+fn.Name()+" call")
					return true
				}
				// Interface boxing at the call boundary.
				if sig, ok := fn.Type().(*types.Signature); ok {
					checkBoxing(pass, n, sig, add)
				}
			}
		case *ast.CompositeLit:
			if escapingComposite(pass, parents, n) {
				add(n, "escaping composite literal")
				return false // don't double-report nested literals
			}
		case *ast.FuncLit:
			if escapingFuncLit(parents, n) {
				add(n, "escaping function literal (closure capture)")
			}
			return true
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringConcat(pass, n) {
				add(n, "string concatenation")
			}
		}
		return true
	})
	return out
}

// builtinCall reports whether id resolves to a builtin.
func builtinCall(pass *analysis.Pass, id *ast.Ident) bool {
	_, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok
}

// inPanicArg reports whether n sits inside the argument list of a panic
// call.
func inPanicArg(parents map[ast.Node]ast.Node, n ast.Node) bool {
	for cur := parents[n]; cur != nil; cur = parents[cur] {
		call, ok := cur.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return true
		}
	}
	return false
}

// escapingComposite reports whether a composite literal is heap-bound:
// slice and map literals always carry a backing allocation; struct
// literals only when their address is taken or they leave the local frame
// (argument, return, store into a field/index/channel).
func escapingComposite(pass *analysis.Pass, parents map[ast.Node]ast.Node, lit *ast.CompositeLit) bool {
	if t := pass.TypesInfo.TypeOf(lit); t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
	}
	switch p := parents[ast.Node(lit)].(type) {
	case *ast.UnaryExpr:
		return p.Op == token.AND // &T{...}
	case *ast.CompositeLit:
		// element of an enclosing literal: the enclosing one decides
		return false
	case *ast.KeyValueExpr:
		return false
	case *ast.ReturnStmt:
		return false // returned by value: copied, not boxed
	case *ast.CallExpr:
		// argument passed by value does not allocate unless the parameter
		// is an interface, which checkBoxing already reports
		return false
	}
	return false
}

// escapingFuncLit reports whether a function literal escapes: used as an
// argument, returned, stored into a composite/field/global, or deferred to
// a variable. `f := func(){...}` called locally stays on the stack.
func escapingFuncLit(parents map[ast.Node]ast.Node, lit *ast.FuncLit) bool {
	switch p := parents[ast.Node(lit)].(type) {
	case *ast.CallExpr:
		// go f() / defer f() / f() where lit IS the function being called:
		// immediate invocation, no capture outlives the frame.
		if p.Fun == ast.Expr(lit) {
			return false
		}
		return true // passed as an argument
	case *ast.GoStmt, *ast.DeferStmt:
		return false
	case *ast.ReturnStmt:
		return true
	case *ast.CompositeLit, *ast.KeyValueExpr:
		return true
	case *ast.AssignStmt:
		// local `f := func(){...}` does not escape; a store through a
		// selector or index does.
		for i, rhs := range p.Rhs {
			if rhs == ast.Expr(lit) && i < len(p.Lhs) {
				if _, ok := p.Lhs[i].(*ast.Ident); ok {
					return false
				}
			}
		}
		return true
	}
	return false
}

// checkBoxing reports non-interface arguments bound to interface
// parameters (including variadic interface parameters).
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr, sig *types.Signature, add func(ast.Node, string)) {
	params := sig.Params()
	if params == nil {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			last := params.At(params.Len() - 1)
			if s, ok := last.Type().Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if bt, ok := at.(*types.Basic); ok && bt.Kind() == types.UntypedNil {
			continue
		}
		if _, isPtr := at.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without copying: a word store, no allocation
		}
		add(arg, "interface boxing of "+at.String())
	}
}

// isStringConcat reports whether a + expression builds a non-constant
// string.
func isStringConcat(pass *analysis.Pass, b *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[b]
	if !ok || tv.Value != nil { // constant-folded at compile time
		return false
	}
	bt, ok := tv.Type.Underlying().(*types.Basic)
	return ok && bt.Info()&types.IsString != 0
}
