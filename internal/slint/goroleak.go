package slint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// GoroLeak requires every go statement in the engine packages to have a
// provable shutdown edge, so the slidbd drain path cannot silently strand
// goroutines.
//
// A spawned function is considered shut-downable when one of these is
// reachable from it, directly or transitively through calls:
//
//   - a receive or select case on a stop-like channel (a name containing
//     stop, done, quit, exit, close, shutdown or drain) or on ctx.Done()
//   - a range over a channel (the loop ends when the producer closes it —
//     the ackerLoop pattern)
//   - a sync.Cond Wait loop (the flusher's closed-flag + Wait pattern,
//     where Broadcast on close wakes the loop to observe the flag)
//   - no unbounded `for {}` loop at all: a goroutine that provably falls
//     off its own end (the one-shot completion-forwarding pattern) needs
//     no shutdown edge
//
// Shutdown-ness propagates across packages as an object Fact on the spawned
// function, so `go obs.Collector.loop` in core is provable even though the
// select on the stop channel lives in obs.
//
// The check applies to go statements in the engine packages (core, wal,
// obs, lockmgr, slidbd, and the goroleak fixture stand-in); facts are
// exported from every package so engine spawns of library helpers resolve.
var GoroLeak = &analysis.Analyzer{
	Name:      "goroleak",
	Doc:       "require a provable shutdown edge for every go statement in engine packages",
	Run:       runGoroLeak,
	FactTypes: []analysis.Fact{(*goroShutdownFact)(nil)},
}

// goroShutdownFact marks a function as having a provable shutdown edge.
// Via records what proves it, for diagnostics and // wantfact assertions.
type goroShutdownFact struct {
	Via string
}

func (*goroShutdownFact) AFact()           {}
func (f *goroShutdownFact) String() string { return "shutdown via " + f.Via }

// enginePkgs are the package base names whose go statements are checked.
var enginePkgs = []string{"core", "wal", "obs", "lockmgr", "slidbd", "goroleak"}

func runGoroLeak(pass *analysis.Pass) (interface{}, error) {
	// Phase 1: per-function shutdown summaries for this package, to a
	// fixpoint (shutdown-ness flows from callee to caller).
	funcs := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				funcs[fn] = fd
			}
		}
	}
	via := make(map[*types.Func]string)
	hasShutdown := func(fn *types.Func) (string, bool) {
		if v, ok := via[fn]; ok {
			return v, true
		}
		var fact goroShutdownFact
		if pass.ImportObjectFact(fn, &fact) {
			return fact.Via, true
		}
		return "", false
	}
	for changed := true; changed; {
		changed = false
		for fn, fd := range funcs {
			if _, done := via[fn]; done {
				continue
			}
			if v, ok := shutdownConstruct(pass, fd.Body); ok {
				via[fn] = v
				changed = true
				continue
			}
			// Transitively: calling a shut-downable function counts.
			found := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
				if !ok || callee == fn {
					return true
				}
				if v, ok := hasShutdown(callee); ok {
					via[fn] = fmt.Sprintf("call to %s (%s)", callee.Name(), v)
					found = true
				}
				return true
			})
			if found {
				changed = true
			}
		}
	}
	for fn, v := range via {
		fact := &goroShutdownFact{Via: v}
		pass.ExportObjectFact(fn, fact)
	}

	// Phase 2: check go statements, engine packages only.
	engine := false
	for _, base := range enginePkgs {
		if fromPkg(pass.Pkg, base) {
			engine = true
			break
		}
	}
	if !engine {
		return nil, nil
	}
	idx := buildDirectiveIndex(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, idx, g, via)
			return true
		})
	}
	return nil, nil
}

func checkGoStmt(pass *analysis.Pass, idx *directiveIndex, g *ast.GoStmt, via map[*types.Func]string) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		if _, ok := shutdownConstruct(pass, fun.Body); ok {
			return
		}
		if !hasUnboundedLoop(fun.Body) {
			return // one-shot goroutine: terminates on its own
		}
		// The literal may delegate to a shut-downable function.
		found := false
		ast.Inspect(fun.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if callee, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok {
				if _, ok := via[callee]; ok {
					found = true
				}
				var fact goroShutdownFact
				if pass.ImportObjectFact(callee, &fact) {
					found = true
				}
			}
			return true
		})
		if !found {
			report(pass, idx, g,
				"go statement spawns a loop with no provable shutdown edge: no stop/done channel, context, channel range or Cond.Wait is reachable — a drain leaves this goroutine stranded")
		}
	default:
		callee, ok := typeutil.Callee(pass.TypesInfo, g.Call).(*types.Func)
		if !ok {
			report(pass, idx, g,
				"go statement spawns a dynamic function value: shutdown cannot be proven — spawn a named function with a stop edge instead")
			return
		}
		if _, ok := via[callee]; ok {
			return
		}
		var fact goroShutdownFact
		if pass.ImportObjectFact(callee, &fact) {
			return
		}
		// A callee defined in this package with no summary: shut-downable
		// only if it has no unbounded loop.
		if fd := declOf(pass, callee); fd != nil && !hasUnboundedLoop(fd.Body) {
			return
		}
		report(pass, idx, g,
			"go %s has no provable shutdown edge: no stop/done channel, context, channel range or Cond.Wait is reachable from it — a drain leaves this goroutine stranded",
			callee.Name())
	}
}

// declOf finds the FuncDecl for a same-package function, or nil.
func declOf(pass *analysis.Pass, fn *types.Func) *ast.FuncDecl {
	if fn.Pkg() != pass.Pkg {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && pass.TypesInfo.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// shutdownConstruct scans a body for a direct shutdown edge and describes
// the first one found.
func shutdownConstruct(pass *analysis.Pass, body *ast.BlockStmt) (string, bool) {
	var found string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && stopLikeChan(pass, n.X) {
				found = "receive on " + exprText(n.X)
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = "range over channel " + exprText(n.X)
				}
			}
		case *ast.CallExpr:
			if fn, ok := typeutil.Callee(pass.TypesInfo, n).(*types.Func); ok {
				if fn.Name() == "Wait" && isStdPkg(fn.Pkg(), "sync") && isMethodOn(fn, "Cond") {
					found = "sync.Cond.Wait loop"
				}
			}
		}
		return true
	})
	return found, found != ""
}

// stopLikeChan reports whether the channel expression names a shutdown
// signal: an identifier/field whose name suggests stopping, or ctx.Done().
func stopLikeChan(pass *analysis.Pass, x ast.Expr) bool {
	if t := pass.TypesInfo.TypeOf(x); t != nil {
		if _, isChan := t.Underlying().(*types.Chan); !isChan {
			return false
		}
	}
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return stopLikeName(x.Name)
	case *ast.SelectorExpr:
		return stopLikeName(x.Sel.Name)
	case *ast.CallExpr:
		if fn, ok := typeutil.Callee(pass.TypesInfo, x).(*types.Func); ok {
			return stopLikeName(fn.Name())
		}
	}
	return false
}

var stopWords = []string{"stop", "done", "quit", "exit", "shutdown", "close", "drain"}

func stopLikeName(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range stopWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

// hasUnboundedLoop reports whether the body contains a `for {}`-style loop
// with no condition (the only loop shape that cannot terminate on its own).
func hasUnboundedLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if f, ok := n.(*ast.ForStmt); ok && f.Cond == nil {
			found = true
		}
		return !found
	})
	return found
}

// exprText renders a short source-ish form of a channel expression for
// diagnostics.
func exprText(x ast.Expr) string {
	switch x := ast.Unparen(x).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprText(x.Fun) + "()"
	}
	return "chan"
}
