package slint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// HotBlock enforces the //slint:hotpath contract: a function so annotated
// must not block in its own statements.
//
// The reserve/fill path is the paper's whole point — one fetch-and-add and
// some memcpy, no centralized waits — and PR 6 promised the per-transaction
// completion hook stays lock-free because it runs inside commit publication.
// An innocent-looking time.Sleep, channel operation or mutex acquisition
// added there during a refactor re-centralizes the log. The annotation
// makes the promise explicit, and this analyzer makes it binding.
//
// Flagged inside an annotated function (including its nested literals):
//
//   - time.Sleep calls
//   - sync.Mutex/RWMutex Lock/RLock, sync.Cond.Wait, sync.WaitGroup.Wait,
//     sync.Once.Do
//   - channel send, channel receive, range over a channel
//   - select without a default case
//
// The check is a direct-statement discipline, not an interprocedural one:
// calls into other functions are trusted (annotate those too if they are on
// the path). A genuinely non-blocking use (e.g. a channel send that is
// provably buffered by construction) can be recorded with
// //slint:ignore hotblock <reason>.
var HotBlock = &analysis.Analyzer{
	Name: "hotblock",
	Doc:  "forbid sleeps, channel blocking and mutex acquisition in //slint:hotpath functions",
	Run:  runHotBlock,
}

func runHotBlock(pass *analysis.Pass) (interface{}, error) {
	idx := buildDirectiveIndex(pass)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotpath(fd) {
				continue
			}
			checkHotBody(pass, idx, fd)
		}
	}
	return nil, nil
}

// isHotpath reports whether the function's doc comment carries the
// //slint:hotpath directive.
func isHotpath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if verb, rest, ok := parseDirective(c.Text); ok && verb == directiveHotpath && rest == "" {
			return true
		}
	}
	return false
}

func checkHotBody(pass *analysis.Pass, idx *directiveIndex, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// Send/receive operations that are a select case's communication are
	// governed by the select itself (flagged above when it has no default),
	// not blocking operations in their own right.
	exempt := make(map[ast.Node]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, clause := range sel.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm != nil {
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.SendStmt:
						exempt[m] = true
					case *ast.UnaryExpr:
						if m.Op == token.ARROW {
							exempt[m] = true
						}
					}
					return true
				})
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if what := blockingCall(pass, n); what != "" {
				report(pass, idx, n, "%s in //slint:hotpath function %s: the hot path must not block", what, name)
			}
		case *ast.SendStmt:
			if !exempt[n] {
				report(pass, idx, n, "channel send in //slint:hotpath function %s: the hot path must not block", name)
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !exempt[n] {
				report(pass, idx, n, "channel receive in //slint:hotpath function %s: the hot path must not block", name)
			}
		case *ast.SelectStmt:
			if !hasDefault(n) {
				report(pass, idx, n, "select without default in //slint:hotpath function %s blocks until a case is ready", name)
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					report(pass, idx, n, "range over channel in //slint:hotpath function %s: the hot path must not block", name)
				}
			}
		}
		return true
	})
}

// blockingCall classifies a call as a known blocking primitive, returning a
// human-readable description or "".
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok {
		return ""
	}
	if isStdPkg(fn.Pkg(), "time") && fn.Name() == "Sleep" {
		return "time.Sleep"
	}
	if !isStdPkg(fn.Pkg(), "sync") {
		return ""
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	recvName := typeBase(derefType(recv.Type()))
	// strip any type parameters rendered by TypeString
	if i := strings.IndexByte(recvName, '['); i >= 0 {
		recvName = recvName[:i]
	}
	switch {
	case fn.Name() == "Lock" && (recvName == "Mutex" || recvName == "RWMutex"):
		return "sync." + recvName + ".Lock"
	case fn.Name() == "RLock" && recvName == "RWMutex":
		return "sync.RWMutex.RLock"
	case fn.Name() == "Wait" && (recvName == "Cond" || recvName == "WaitGroup"):
		return "sync." + recvName + ".Wait"
	case fn.Name() == "Do" && recvName == "Once":
		return "sync.Once.Do"
	}
	return ""
}

// derefType unwraps one level of pointer.
func derefType(t types.Type) types.Type {
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// hasDefault reports whether a select statement has a default clause.
func hasDefault(sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
