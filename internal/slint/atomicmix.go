package slint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// AtomicMix enforces a single access discipline per field and per struct:
//
//  1. A struct field that is ever passed by address to a legacy sync/atomic
//     function (atomic.AddUint64(&s.f, ...) and friends) must not also be
//     read or written with plain loads/stores in the same package — mixing
//     the two is a data race that -race only reports when a schedule
//     exposes it.
//
//  2. A struct type that (transitively, through embedded structs and
//     arrays) contains typed atomics (sync/atomic.Int64 etc.) or fields
//     from case 1 must not be copied by value: the copy tears concurrent
//     updates and silently forks the counters. Declared-by-value params,
//     value receivers, copy-assignments and copy-returns are all flagged.
//
// Snapshot structs built field-by-field from atomic loads (wal.TailStats)
// are fine: they contain plain fields, not atomics.
var AtomicMix = &analysis.Analyzer{
	Name:     "atomicmix",
	Doc:      "flag struct fields accessed both atomically and plainly, and by-value copies of atomic-bearing structs",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runAtomicMix,
}

// legacyAtomicOps are the sync/atomic package-level functions whose first
// argument is the address of the value they operate on.
var legacyAtomicOps = map[string]bool{
	"AddInt32": true, "AddInt64": true, "AddUint32": true, "AddUint64": true, "AddUintptr": true,
	"LoadInt32": true, "LoadInt64": true, "LoadUint32": true, "LoadUint64": true, "LoadUintptr": true, "LoadPointer": true,
	"StoreInt32": true, "StoreInt64": true, "StoreUint32": true, "StoreUint64": true, "StoreUintptr": true, "StorePointer": true,
	"SwapInt32": true, "SwapInt64": true, "SwapUint32": true, "SwapUint64": true, "SwapUintptr": true, "SwapPointer": true,
	"CompareAndSwapInt32": true, "CompareAndSwapInt64": true, "CompareAndSwapUint32": true,
	"CompareAndSwapUint64": true, "CompareAndSwapUintptr": true, "CompareAndSwapPointer": true,
}

func runAtomicMix(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	idx := buildDirectiveIndex(pass)

	// Pass 1: find every field whose address feeds a legacy atomic op, and
	// remember the exact selector expressions sanctioned by those calls.
	atomicFields := make(map[*types.Var]string) // field -> op name first seen
	sanctioned := make(map[*ast.SelectorExpr]bool)
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || !isStdPkg(fn.Pkg(), "sync/atomic") || !legacyAtomicOps[fn.Name()] {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		if field, sel := addrOfField(pass, call.Args[0]); field != nil {
			if _, seen := atomicFields[field]; !seen {
				atomicFields[field] = fn.Name()
			}
			sanctioned[sel] = true
		}
	})

	// Pass 2: any other selector resolving to one of those fields is a plain
	// access racing with the atomics.
	if len(atomicFields) > 0 {
		insp.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
			sel := n.(*ast.SelectorExpr)
			if sanctioned[sel] {
				return
			}
			field := selectedField(pass, sel)
			if field == nil {
				return
			}
			if op, ok := atomicFields[field]; ok {
				report(pass, idx, sel,
					"field %s is updated with atomic.%s but accessed plainly here; pick one discipline (a typed atomic ends the ambiguity)",
					field.Name(), op)
			}
		})
	}

	// Pass 3: by-value copies of atomic-bearing structs.
	bearing := newBearingCache(atomicFields)

	flagCopy := func(rng analysis.Range, expr ast.Expr, how string) {
		t := pass.TypesInfo.TypeOf(expr)
		if t == nil || !copiesValue(expr) {
			return
		}
		if name, ok := bearing.check(t); ok {
			report(pass, idx, rng, "%s copies %s, which contains atomic field %s; copying tears concurrent updates — use a pointer or build a plain snapshot struct",
				how, types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
		}
	}

	nodeFilter := []ast.Node{
		(*ast.AssignStmt)(nil),
		(*ast.ReturnStmt)(nil),
		(*ast.CallExpr)(nil),
		(*ast.FuncDecl)(nil),
		(*ast.RangeStmt)(nil),
	}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				// `_ = x` evaluates and discards; nothing retains the copy.
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				flagCopy(n, rhs, "assignment")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				flagCopy(n, res, "return")
			}
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return // conversion, not a call
			}
			for _, arg := range n.Args {
				flagCopy(arg, arg, "argument")
			}
		case *ast.FuncDecl:
			params := []*ast.FieldList{n.Type.Params, n.Recv}
			for _, fl := range params {
				if fl == nil {
					continue
				}
				for _, f := range fl.List {
					t := pass.TypesInfo.TypeOf(f.Type)
					if t == nil {
						continue
					}
					if name, ok := bearing.check(t); ok {
						report(pass, idx, f, "by-value parameter of %s, which contains atomic field %s; pass a pointer",
							types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
					}
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				t := pass.TypesInfo.TypeOf(n.Value)
				if t != nil {
					if name, ok := bearing.check(t); ok {
						report(pass, idx, n.Value, "range value copies %s, which contains atomic field %s; range over indices or pointers instead",
							types.TypeString(t, types.RelativeTo(pass.Pkg)), name)
					}
				}
			}
		}
	})
	return nil, nil
}

// copiesValue reports whether expr reads an existing value (so assigning or
// passing it makes a copy). Fresh composite literals and function results
// are not copies of anything concurrently shared.
func copiesValue(expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// addrOfField unwraps &x.f and returns the field object and selector.
func addrOfField(pass *analysis.Pass, arg ast.Expr) (*types.Var, *ast.SelectorExpr) {
	unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || unary.Op.String() != "&" {
		return nil, nil
	}
	sel, ok := ast.Unparen(unary.X).(*ast.SelectorExpr)
	if !ok {
		return nil, nil
	}
	return selectedField(pass, sel), sel
}

// selectedField resolves a selector expression to the struct field it
// denotes, or nil if it denotes something else (method, package member...).
func selectedField(pass *analysis.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// bearingCache memoizes "does this type transitively contain atomics".
type bearingCache struct {
	atomicFields map[*types.Var]string
	memo         map[types.Type]string // type -> offending field name ("" = clean)
}

func newBearingCache(atomicFields map[*types.Var]string) *bearingCache {
	return &bearingCache{atomicFields: atomicFields, memo: make(map[types.Type]string)}
}

// check reports whether t (a non-pointer struct or array type) transitively
// contains a typed sync/atomic value or a legacy atomic field; it returns a
// path-ish name for the first one found.
func (b *bearingCache) check(t types.Type) (string, bool) {
	name := b.find(t, 0)
	return name, name != ""
}

func (b *bearingCache) find(t types.Type, depth int) string {
	if t == nil || depth > 10 {
		return ""
	}
	t = types.Unalias(t)
	if got, ok := b.memo[t]; ok {
		return got
	}
	b.memo[t] = "" // break cycles; overwritten below on a hit
	var hit string
	switch u := t.Underlying().(type) {
	case *types.Struct:
		if named, ok := t.(*types.Named); ok && isStdPkg(named.Obj().Pkg(), "sync/atomic") {
			hit = typeBase(t)
			break
		}
		for i := 0; i < u.NumFields() && hit == ""; i++ {
			f := u.Field(i)
			if _, legacy := b.atomicFields[f]; legacy {
				hit = f.Name()
				break
			}
			if sub := b.find(f.Type(), depth+1); sub != "" {
				hit = f.Name() + "." + sub
				if isStdPkg(fieldTypePkg(f.Type()), "sync/atomic") {
					hit = f.Name()
				}
			}
		}
	case *types.Array:
		if sub := b.find(u.Elem(), depth+1); sub != "" {
			hit = "[...]" + sub
		}
	}
	b.memo[t] = hit
	return hit
}

// fieldTypePkg returns the defining package of a named type, or nil.
func fieldTypePkg(t types.Type) *types.Package {
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return named.Obj().Pkg()
	}
	return nil
}

// typeBase returns the bare name of a named type ("atomic.Int64" -> "Int64").
func typeBase(t types.Type) string {
	s := types.TypeString(t, nil)
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}
