package slint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// ErrWedge flags discarded results from log-durability calls.
//
// The WAL's error contract is "wedge, never lie": once a sink write fails,
// the log refuses further appends so recovery can trust everything before
// the failure point. That contract only holds if callers look at the error.
// PR 4's UndoFailures class was exactly this — rollback discarded logAppend
// errors and the tree lied about which undos were durable.
//
// Flagged forms, for calls to the functions below:
//
//	f(...)          // expression statement, result dropped
//	_ = f(...)      // assigned entirely to blank
//	_, _ = f(...)   // all results blank
//	go f(...)       // result unobservable
//	defer f(...)    // result unobservable
//
// Deliberate discards (abort-path best-effort flushes) must carry an
// explicit //slint:ignore errwedge <reason> so the decision is recorded at
// the call site.
var ErrWedge = &analysis.Analyzer{
	Name:     "errwedge",
	Doc:      "flag dropped errors from log-durability calls (their contract is wedge-the-log, never ignore)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runErrWedge,
}

func runErrWedge(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	idx := buildDirectiveIndex(pass)

	nodeFilter := []ast.Node{
		(*ast.ExprStmt)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.GoStmt)(nil),
		(*ast.DeferStmt)(nil),
	}
	insp.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := wedgeTarget(pass, call); ok {
					report(pass, idx, n, "result of %s dropped: its error wedges the log and must be handled (or discarded explicitly with //slint:ignore errwedge <reason>)", name)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !allBlank(n.Lhs) {
				return
			}
			if name, ok := wedgeTarget(pass, call); ok {
				report(pass, idx, n, "error from %s assigned to _: its error wedges the log and must be handled (or discarded explicitly with //slint:ignore errwedge <reason>)", name)
			}
		case *ast.GoStmt:
			if name, ok := wedgeTarget(pass, n.Call); ok {
				report(pass, idx, n, "go %s discards its result: run it synchronously or collect the error", name)
			}
		case *ast.DeferStmt:
			if name, ok := wedgeTarget(pass, n.Call); ok {
				report(pass, idx, n, "defer %s discards its result: wrap it in a closure that handles the error", name)
			}
		}
	})
	return nil, nil
}

// allBlank reports whether every left-hand side is the blank identifier.
func allBlank(lhs []ast.Expr) bool {
	for _, e := range lhs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// wedgeTarget reports whether call resolves to one of the log-durability
// functions whose result must not be discarded, and returns a display name.
//
// Exported wal API is matched in the wal package; the unexported helpers
// are matched in their home package (wal or core) so moving a call site
// into another package cannot silently exempt it.
func wedgeTarget(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	obj := typeutil.Callee(pass.TypesInfo, call)
	if obj == nil {
		return "", false
	}
	name := obj.Name()
	pkg := obj.Pkg()
	switch obj.(type) {
	case *types.Func, *types.Var: // sysPrealloc is a func-typed package var
	default:
		return "", false
	}
	switch name {
	// Exported wal durability API.
	case "WriteRecord", "WriteRange", "WriteRanges", "Flush", "FlushAsync", "Sync":
		if fromPkg(pkg, "wal") {
			return displayName(pkg, name), true
		}
	// Unexported append/undo helpers in core: the PR 4 bug class.
	case "logAppend", "logCLR", "appendTimed", "applyUndo":
		if fromPkg(pkg, "core") {
			return displayName(pkg, name), true
		}
	// Raw syscall wrappers in wal.
	case "writevAt", "writevFallback", "sysPrealloc", "sysPreallocImpl":
		if fromPkg(pkg, "wal") {
			return displayName(pkg, name), true
		}
	}
	return "", false
}

func displayName(pkg *types.Package, name string) string {
	if pkg == nil {
		return name
	}
	return pkg.Name() + "." + name
}
