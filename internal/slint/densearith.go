package slint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DenseArith flags arithmetic performed directly on wal.LSN values, and any
// expression mixing log offsets across shards of a sharded log.
//
// Since the byte-offset refactor (PR 5), an LSN is an offset into the
// virtual log address space: ordered, comparable, but NOT dense. "lsn+1" is
// never the next record — record boundaries are only reachable through the
// encoded sizes — so any +, -, *, /, %, bit op, +=, ++ on an LSN outside
// wal's own helper methods is treated as a latent dense-LSN bug. Legitimate
// offset math belongs in the LSN helper methods (Advance, Next, Distance) or
// in plain int64 byte space before converting.
//
// Since the log sharding (PR 10), an LSN on its own does not even name a
// unique log position: each shard is an independent address space, and
// wal.ShardAddr (shard id + offset) is the full address. Two .Off offsets
// taken from syntactically distinct ShardAddr values may belong to different
// shards, so combining them — arithmetic, ordering, equality, or passing one
// as an argument to the other's LSN helper — is flagged even in the spellings
// that are legal on plain LSNs. Shard-safe combination goes through
// ShardAddr's own methods (Advance, Next, Distance, Before), which verify the
// shards match at runtime.
//
// Allowlist: methods declared on the LSN and ShardAddr types themselves
// (they ARE the byte math), and expressions suppressed with
// //slint:ignore densearith <reason>.
var DenseArith = &analysis.Analyzer{
	Name:     "densearith",
	Doc:      "flag arithmetic on wal.LSN outside its helper methods, and offset mixing across wal.ShardAddr shards",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDenseArith,
}

func runDenseArith(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	idx := buildDirectiveIndex(pass)

	isLSN := func(e ast.Expr) bool {
		return isLSNType(pass.TypesInfo.TypeOf(e))
	}

	nodeFilter := []ast.Node{
		(*ast.BinaryExpr)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.IncDecStmt)(nil),
		(*ast.CallExpr)(nil),
	}
	insp.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if fd := enclosingFuncDecl(stack); fd != nil &&
			(recvIsType(pass, fd, isLSNType) || recvIsType(pass, fd, isShardAddrType)) {
			return true // the helper methods are the allowlisted byte math
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			// Cross-shard mixing first: it subsumes (and outranks) the plain
			// LSN-arithmetic diagnostic, and also covers comparisons, which
			// are fine on same-shard LSNs but meaningless across shards.
			if bx, okx := shardOffBase(pass, n.X); okx {
				if by, oky := shardOffBase(pass, n.Y); oky &&
					types.ExprString(bx) != types.ExprString(by) &&
					(arithOp(n.Op) || cmpOp(n.Op)) {
					report(pass, idx, n, "mixing Off offsets of distinct wal.ShardAddr values: each log shard is its own address space — use a ShardAddr method (Advance/Next/Distance/Before), which checks the shards match")
					return true
				}
			}
			if arithOp(n.Op) && (isLSN(n.X) || isLSN(n.Y)) {
				report(pass, idx, n, "arithmetic on wal.LSN: byte-offset LSNs are ordered, not dense — use an LSN helper (Advance/Next/Distance) or do the math in int64 byte space")
			}
		case *ast.AssignStmt:
			if arithAssignOp(n.Tok) && len(n.Lhs) == 1 && (isLSN(n.Lhs[0]) || isLSN(n.Rhs[0])) {
				report(pass, idx, n, "compound assignment on wal.LSN: byte-offset LSNs are ordered, not dense — use an LSN helper (Advance/Next/Distance) or do the math in int64 byte space")
			}
		case *ast.IncDecStmt:
			if isLSN(n.X) {
				report(pass, idx, n, "%s on wal.LSN is a dense-LSN bug: byte-offset LSNs have no successor — use an LSN helper or int64 byte math", n.Tok)
			}
		case *ast.CallExpr:
			// x.Off.Distance(y.Off) and friends smuggle a cross-shard offset
			// past ShardAddr's runtime shard check by dropping to the plain
			// LSN helpers. Flag any LSN-helper call whose receiver and an
			// argument are Off fields of distinct ShardAddr values.
			sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				break
			}
			recvBase, ok := shardOffBase(pass, sel.X)
			if !ok {
				break
			}
			for _, arg := range n.Args {
				if argBase, ok := shardOffBase(pass, arg); ok &&
					types.ExprString(argBase) != types.ExprString(recvBase) {
					report(pass, idx, n, "LSN helper call mixing Off offsets of distinct wal.ShardAddr values: each log shard is its own address space — use the ShardAddr method instead, which checks the shards match")
					break
				}
			}
		}
		return true
	})
	return nil, nil
}

// isLSNType reports whether t is the named type LSN from the wal package.
func isLSNType(t types.Type) bool {
	return isWalNamed(t, "LSN")
}

// isShardAddrType reports whether t is the named type ShardAddr from the wal
// package.
func isShardAddrType(t types.Type) bool {
	return isWalNamed(t, "ShardAddr")
}

func isWalNamed(t types.Type, name string) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && fromPkg(obj.Pkg(), "wal")
}

// shardOffBase matches expressions of the form base.Off where base has type
// wal.ShardAddr (or a pointer to it), returning the base expression. The
// base's types.ExprString is the analyzer's notion of identity: two Off
// selectors with different base spellings may name different shards.
func shardOffBase(pass *analysis.Pass, e ast.Expr) (ast.Expr, bool) {
	sel, ok := unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Off" {
		return nil, false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if !isShardAddrType(t) {
		return nil, false
	}
	return sel.X, true
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// recvIsType reports whether fd is a method whose receiver's (pointer-
// stripped) type satisfies pred.
func recvIsType(pass *analysis.Pass, fd *ast.FuncDecl, pred func(types.Type) bool) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return pred(t)
}

// arithOp reports whether op is an arithmetic or bitwise binary operator.
// Comparisons and logical operators are fine on LSNs (they are ordered).
func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
		return true
	}
	return false
}

// cmpOp reports whether op is a comparison operator. Comparing offsets is
// legal within one shard but meaningless across shards, so these only fire
// in the ShardAddr mixing rule.
func cmpOp(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// arithAssignOp reports whether tok is a compound arithmetic assignment.
func arithAssignOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}
