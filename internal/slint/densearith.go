package slint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// DenseArith flags arithmetic performed directly on wal.LSN values.
//
// Since the byte-offset refactor (PR 5), an LSN is an offset into the
// virtual log address space: ordered, comparable, but NOT dense. "lsn+1" is
// never the next record — record boundaries are only reachable through the
// encoded sizes — so any +, -, *, /, %, bit op, +=, ++ on an LSN outside
// wal's own helper methods is treated as a latent dense-LSN bug. Legitimate
// offset math belongs in the LSN helper methods (Advance, Next, Distance) or
// in plain int64 byte space before converting.
//
// Allowlist: methods declared on the LSN type itself (they ARE the byte
// math), and expressions suppressed with //slint:ignore densearith <reason>.
var DenseArith = &analysis.Analyzer{
	Name:     "densearith",
	Doc:      "flag arithmetic on wal.LSN outside its helper methods (byte-offset LSNs are ordered, not dense)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runDenseArith,
}

func runDenseArith(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	idx := buildDirectiveIndex(pass)

	isLSN := func(e ast.Expr) bool {
		return isLSNType(pass.TypesInfo.TypeOf(e))
	}

	nodeFilter := []ast.Node{
		(*ast.BinaryExpr)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.IncDecStmt)(nil),
	}
	insp.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if fd := enclosingFuncDecl(stack); fd != nil && isLSNMethod(pass, fd) {
			return true // the helper methods are the allowlisted byte math
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if arithOp(n.Op) && (isLSN(n.X) || isLSN(n.Y)) {
				report(pass, idx, n, "arithmetic on wal.LSN: byte-offset LSNs are ordered, not dense — use an LSN helper (Advance/Next/Distance) or do the math in int64 byte space")
			}
		case *ast.AssignStmt:
			if arithAssignOp(n.Tok) && len(n.Lhs) == 1 && (isLSN(n.Lhs[0]) || isLSN(n.Rhs[0])) {
				report(pass, idx, n, "compound assignment on wal.LSN: byte-offset LSNs are ordered, not dense — use an LSN helper (Advance/Next/Distance) or do the math in int64 byte space")
			}
		case *ast.IncDecStmt:
			if isLSN(n.X) {
				report(pass, idx, n, "%s on wal.LSN is a dense-LSN bug: byte-offset LSNs have no successor — use an LSN helper or int64 byte math", n.Tok)
			}
		}
		return true
	})
	return nil, nil
}

// isLSNType reports whether t is the named type LSN from the wal package.
func isLSNType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "LSN" && fromPkg(obj.Pkg(), "wal")
}

// isLSNMethod reports whether fd is a method with an LSN receiver.
func isLSNMethod(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isLSNType(t)
}

// arithOp reports whether op is an arithmetic or bitwise binary operator.
// Comparisons and logical operators are fine on LSNs (they are ordered).
func arithOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.AND, token.OR, token.XOR, token.SHL, token.SHR, token.AND_NOT:
		return true
	}
	return false
}

// arithAssignOp reports whether tok is a compound arithmetic assignment.
func arithAssignOp(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
		token.REM_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN,
		token.SHL_ASSIGN, token.SHR_ASSIGN, token.AND_NOT_ASSIGN:
		return true
	}
	return false
}
