// Package slinttest is a minimal golden-test harness for the slint
// analyzers, in the spirit of golang.org/x/tools/go/analysis/analysistest.
//
// The real analysistest depends on go/packages and `go list`, which need
// module resolution; this harness instead type-checks GOPATH-style fixture
// trees under testdata/src directly, with the standard library imported
// from source. Fixture packages import each other by bare path ("wal",
// "profiler", "obs"), which is exactly why the analyzers match slidb
// packages by base name.
//
// Expectations are comments of the form
//
//	// want "regexp" `another regexp`
//
// matching diagnostics reported on the comment's own line. A relative-line
// marker supports diagnostics that land on a directive comment, where no
// second comment can share the line:
//
//	//slint:ignore
//	// want@-1 "needs an analyzer name"
//
// Facts flow for real: before a package is analyzed, the harness analyzes
// its fixture-package imports with the same analyzer and carries the
// exported object/package facts across, gob-roundtripping each one exactly
// as unitchecker would, so FactTypes that are not gob-serializable fail in
// the harness rather than in CI. A fact exported on an object can be
// asserted with
//
//	// wantfact "regexp"
//
// on the object's declaration line (offsets like // wantfact@-1 work as for
// want); the pattern matches the fact's fmt.Sprintf("%v") rendering.
package slinttest

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run applies the analyzer to each fixture package (a path relative to
// testdata/src) and compares its diagnostics against the // want comments
// in that package's files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(t, filepath.Join(testdata, "src"))
	r := newRunner(l)
	for _, path := range pkgpaths {
		t.Run(a.Name+"/"+path, func(t *testing.T) {
			t.Helper()
			pi := l.load(t, path)
			pr := r.analyze(t, pi, a)
			checkExpectations(t, l.fset, pi, pr.diags, pr.facts)
		})
	}
}

// loader type-checks fixture packages, caching results so stand-ins shared
// between tests (wal, profiler, obs) are only compiled once per Run.
type loader struct {
	srcdir string
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*pkgInfo
	byPkg  map[*types.Package]*pkgInfo
}

type pkgInfo struct {
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(t *testing.T, srcdir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcdir: srcdir,
		fset:   fset,
		// The source importer type-checks the standard library from GOROOT
		// source: no compiled export data needed, works offline.
		std:   importer.ForCompiler(fset, "source", nil),
		pkgs:  make(map[string]*pkgInfo),
		byPkg: make(map[*types.Package]*pkgInfo),
	}
}

func (l *loader) load(t *testing.T, path string) *pkgInfo {
	t.Helper()
	if pi, ok := l.pkgs[path]; ok {
		return pi
	}
	dir := filepath.Join(l.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture package %s: %v", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture package %s has no Go files", path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if fi, err := os.Stat(filepath.Join(l.srcdir, ipath)); err == nil && fi.IsDir() {
				return l.load(t, ipath).pkg, nil
			}
			return l.std.Import(ipath)
		}),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	pi := &pkgInfo{path: path, pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	l.byPkg[pkg] = pi
	return pi
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// factRecord is one object fact exported during analysis, kept for
// // wantfact matching against the object's declaration position.
type factRecord struct {
	pos  token.Pos
	fact analysis.Fact
}

// pkgResult is what analyzing one package with the top-level analyzer
// produced: its diagnostics and the facts exported on its objects.
type pkgResult struct {
	diags []analysis.Diagnostic
	facts []factRecord
}

// runner drives an analyzer over fixture packages in dependency order,
// carrying exported facts from imported fixture packages into the importing
// package's pass the way the real vet driver does.
type runner struct {
	l        *loader
	objFacts []analysis.ObjectFact  // accumulated across packages
	pkgFacts []analysis.PackageFact // accumulated across packages
	done     map[*pkgInfo]*pkgResult
}

func newRunner(l *loader) *runner {
	return &runner{l: l, done: make(map[*pkgInfo]*pkgResult)}
}

// analyze runs a (and, recursively, its Requires) over the package and its
// fixture-package imports, and returns the package's diagnostics and
// exported facts. Each package is analyzed at most once per Run.
func (r *runner) analyze(t *testing.T, pi *pkgInfo, a *analysis.Analyzer) *pkgResult {
	t.Helper()
	if pr, ok := r.done[pi]; ok {
		return pr
	}
	// Dependencies first, so their facts are importable below. Only fixture
	// packages participate; stdlib imports carry no slint facts.
	for _, imp := range pi.pkg.Imports() {
		if dep, ok := r.l.byPkg[imp]; ok {
			r.analyze(t, dep, a)
		}
	}
	pr := &pkgResult{}
	results := make(map[*analysis.Analyzer]interface{})
	var run func(cur *analysis.Analyzer)
	run = func(cur *analysis.Analyzer) {
		if _, done := results[cur]; done {
			return
		}
		resultOf := make(map[*analysis.Analyzer]interface{})
		for _, req := range cur.Requires {
			run(req)
			resultOf[req] = results[req]
		}
		top := cur == a
		pass := &analysis.Pass{
			Analyzer:   cur,
			Fset:       r.l.fset,
			Files:      pi.files,
			Pkg:        pi.pkg,
			TypesInfo:  pi.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				if top {
					pr.diags = append(pr.diags, d)
				}
			},
			ReadFile: os.ReadFile,
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				for _, of := range r.objFacts {
					if of.Object == obj && reflect.TypeOf(of.Fact) == reflect.TypeOf(fact) {
						gobCopy(t, fact, of.Fact)
						return true
					}
				}
				return false
			},
			ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
				for _, pf := range r.pkgFacts {
					if pf.Package == pkg && reflect.TypeOf(pf.Fact) == reflect.TypeOf(fact) {
						gobCopy(t, fact, pf.Fact)
						return true
					}
				}
				return false
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				cp := gobClone(t, fact)
				for i, of := range r.objFacts {
					if of.Object == obj && reflect.TypeOf(of.Fact) == reflect.TypeOf(fact) {
						r.objFacts[i].Fact = cp
						return
					}
				}
				r.objFacts = append(r.objFacts, analysis.ObjectFact{Object: obj, Fact: cp})
				if top {
					pr.facts = append(pr.facts, factRecord{pos: obj.Pos(), fact: cp})
				}
			},
			ExportPackageFact: func(fact analysis.Fact) {
				cp := gobClone(t, fact)
				for i, pf := range r.pkgFacts {
					if pf.Package == pi.pkg && reflect.TypeOf(pf.Fact) == reflect.TypeOf(fact) {
						r.pkgFacts[i].Fact = cp
						return
					}
				}
				r.pkgFacts = append(r.pkgFacts, analysis.PackageFact{Package: pi.pkg, Fact: cp})
			},
			AllPackageFacts: func() []analysis.PackageFact {
				return append([]analysis.PackageFact(nil), r.pkgFacts...)
			},
			AllObjectFacts: func() []analysis.ObjectFact {
				return append([]analysis.ObjectFact(nil), r.objFacts...)
			},
		}
		result, err := cur.Run(pass)
		if err != nil {
			t.Fatalf("%s on %s: %v", cur.Name, pi.path, err)
		}
		results[cur] = result
	}
	run(a)
	r.done[pi] = pr
	return pr
}

// gobClone deep-copies a fact through gob, the same serialization
// unitchecker uses between compilation units. A FactType that cannot make
// this trip would silently drop information in real `go vet` runs, so the
// harness fails the test instead.
func gobClone(t *testing.T, fact analysis.Fact) analysis.Fact {
	t.Helper()
	rv := reflect.TypeOf(fact)
	if rv.Kind() != reflect.Ptr {
		t.Fatalf("fact %T must be a pointer for gob round-tripping", fact)
	}
	cp := reflect.New(rv.Elem()).Interface().(analysis.Fact)
	gobCopy(t, cp, fact)
	return cp
}

// gobCopy encodes src and decodes into dst (both pointers to the same
// concrete fact type).
func gobCopy(t *testing.T, dst, src analysis.Fact) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(src); err != nil {
		t.Fatalf("fact %T does not gob-encode: %v", src, err)
	}
	if err := gob.NewDecoder(&buf).Decode(dst); err != nil {
		t.Fatalf("fact %T does not gob-decode: %v", src, err)
	}
}

// expectation is one parsed // want or // wantfact clause.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`^// want(fact)?(@[+-]?\d+)?\s+(.*)$`)

func checkExpectations(t *testing.T, fset *token.FileSet, pi *pkgInfo, diags []analysis.Diagnostic, facts []factRecord) {
	t.Helper()
	var wants, wantFacts []*expectation
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[2] != "" {
					delta, err := strconv.Atoi(m[2][1:])
					if err != nil {
						t.Fatalf("%s: bad want line offset %q", pos, m[2])
					}
					line += delta
				}
				pats, err := splitPatterns(m[3])
				if err != nil {
					t.Fatalf("%s: %v", pos, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					e := &expectation{file: pos.Filename, line: line, re: re, raw: p}
					if m[1] == "fact" {
						wantFacts = append(wantFacts, e)
					} else {
						wants = append(wants, e)
					}
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}

	// Facts are matched at the owning object's declaration position, against
	// the fact's %v rendering. Unmatched facts are not errors (analyzers
	// export summaries for most functions); unmatched wantfacts are.
	for _, fr := range facts {
		pos := fset.Position(fr.pos)
		text := fmt.Sprintf("%v", fr.fact)
		for _, w := range wantFacts {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(text) {
				w.matched = true
				break
			}
		}
	}
	for _, w := range wantFacts {
		if !w.matched {
			t.Errorf("%s:%d: expected exported fact matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitPatterns parses a sequence of double- or back-quoted regexps.
func splitPatterns(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q in want", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want string %s: %v", s[:end+1], err)
			}
			pats = append(pats, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated `...` in want")
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("want comment has no patterns")
	}
	return pats, nil
}
