// Package slinttest is a minimal golden-test harness for the slint
// analyzers, in the spirit of golang.org/x/tools/go/analysis/analysistest.
//
// The real analysistest depends on go/packages and `go list`, which need
// module resolution; this harness instead type-checks GOPATH-style fixture
// trees under testdata/src directly, with the standard library imported
// from source. Fixture packages import each other by bare path ("wal",
// "profiler", "obs"), which is exactly why the analyzers match slidb
// packages by base name.
//
// Expectations are comments of the form
//
//	// want "regexp" `another regexp`
//
// matching diagnostics reported on the comment's own line. A relative-line
// marker supports diagnostics that land on a directive comment, where no
// second comment can share the line:
//
//	//slint:ignore
//	// want@-1 "needs an analyzer name"
package slinttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run applies the analyzer to each fixture package (a path relative to
// testdata/src) and compares its diagnostics against the // want comments
// in that package's files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(t, filepath.Join(testdata, "src"))
	for _, path := range pkgpaths {
		t.Run(a.Name+"/"+path, func(t *testing.T) {
			t.Helper()
			pi := l.load(t, path)
			diags := runAnalyzer(t, l, pi, a)
			checkExpectations(t, l.fset, pi, diags)
		})
	}
}

// loader type-checks fixture packages, caching results so stand-ins shared
// between tests (wal, profiler, obs) are only compiled once per Run.
type loader struct {
	srcdir string
	fset   *token.FileSet
	std    types.Importer
	pkgs   map[string]*pkgInfo
}

type pkgInfo struct {
	path  string
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

func newLoader(t *testing.T, srcdir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcdir: srcdir,
		fset:   fset,
		// The source importer type-checks the standard library from GOROOT
		// source: no compiled export data needed, works offline.
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*pkgInfo),
	}
}

func (l *loader) load(t *testing.T, path string) *pkgInfo {
	t.Helper()
	if pi, ok := l.pkgs[path]; ok {
		return pi
	}
	dir := filepath.Join(l.srcdir, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture package %s: %v", path, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture package %s has no Go files", path)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(ipath string) (*types.Package, error) {
			if fi, err := os.Stat(filepath.Join(l.srcdir, ipath)); err == nil && fi.IsDir() {
				return l.load(t, ipath).pkg, nil
			}
			return l.std.Import(ipath)
		}),
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", path, err)
	}
	pi := &pkgInfo{path: path, pkg: pkg, files: files, info: info}
	l.pkgs[path] = pi
	return pi
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// runAnalyzer runs a (and, recursively, its Requires) over the package and
// returns the diagnostics reported by a itself.
func runAnalyzer(t *testing.T, l *loader, pi *pkgInfo, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]interface{})
	var run func(a *analysis.Analyzer, top bool)
	run = func(a *analysis.Analyzer, top bool) {
		if _, done := results[a]; done {
			return
		}
		resultOf := make(map[*analysis.Analyzer]interface{})
		for _, req := range a.Requires {
			run(req, false)
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      pi.files,
			Pkg:        pi.pkg,
			TypesInfo:  pi.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				if top {
					diags = append(diags, d)
				}
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		}
		result, err := a.Run(pass)
		if err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pi.path, err)
		}
		results[a] = result
	}
	run(a, true)
	return diags
}

// expectation is one parsed // want clause.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`^// want(@[+-]?\d+)?\s+(.*)$`)

func checkExpectations(t *testing.T, fset *token.FileSet, pi *pkgInfo, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pi.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				line := pos.Line
				if m[1] != "" {
					delta, err := strconv.Atoi(m[1][1:])
					if err != nil {
						t.Fatalf("%s: bad want line offset %q", pos, m[1])
					}
					line += delta
				}
				pats, err := splitPatterns(m[2])
				if err != nil {
					t.Fatalf("%s: %v", pos, err)
				}
				for _, p := range pats {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, p, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: line, re: re, raw: p})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitPatterns parses a sequence of double- or back-quoted regexps.
func splitPatterns(s string) ([]string, error) {
	var pats []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated %q in want", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, fmt.Errorf("bad want string %s: %v", s[:end+1], err)
			}
			pats = append(pats, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated `...` in want")
			}
			pats = append(pats, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
	if len(pats) == 0 {
		return nil, fmt.Errorf("want comment has no patterns")
	}
	return pats, nil
}
