// Package slint implements slidb's project-specific static analyzers.
//
// The engine's hottest code is lock-free reserve/fill/publish machinery
// whose correctness rests on invariants the Go compiler cannot see and
// that -race only catches when a schedule happens to expose them. Each
// analyzer here pins one such invariant at build time, grounded in a bug
// class that has actually occurred in this repository:
//
//   - densearith: arithmetic on wal.LSN outside its helper methods.
//     LSNs are byte offsets into the virtual log, ordered but not dense;
//     "lsn+1" is always a bug (the PR 5 sweep hunted these down once).
//   - atomicmix: a struct field accessed both through sync/atomic calls
//     and through plain reads/writes, and by-value copies of structs
//     that (transitively) contain atomic fields.
//   - proftimer: a profiler timing started with time.Now must reach its
//     time.Since stop on every return path, so no category silently
//     under-reports on an error return.
//   - errwedge: results of log-durability calls (logAppend, WriteRange(s),
//     Flush, FlushAsync, raw syscall wrappers) must not be discarded —
//     their contract is "wedge the log", never ignore (the PR 4
//     UndoFailures bug class).
//   - hotblock: functions annotated //slint:hotpath must not sleep,
//     block on channels, or acquire mutexes in their own statements.
//   - metricname: constant metric names passed to obs.Registry
//     constructors must satisfy the slidb_ naming rules at build time
//     instead of panicking at first scrape.
//
// Two directives tune the analyzers (see directive.go): //slint:hotpath
// marks a function for hotblock, and //slint:ignore <analyzer> <reason>
// suppresses a finding on the same or the following line. The directives
// analyzer validates the directives themselves, so a typo'd analyzer
// name or a missing reason is itself a build error.
package slint

import "golang.org/x/tools/go/analysis"

// Analyzers returns the full slint suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DenseArith,
		AtomicMix,
		ProfTimer,
		ErrWedge,
		HotBlock,
		MetricName,
		Directives,
	}
}
