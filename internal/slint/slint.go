// Package slint implements slidb's project-specific static analyzers.
//
// The engine's hottest code is lock-free reserve/fill/publish machinery
// whose correctness rests on invariants the Go compiler cannot see and
// that -race only catches when a schedule happens to expose them. Each
// analyzer here pins one such invariant at build time, grounded in a bug
// class that has actually occurred in this repository:
//
//   - densearith: arithmetic on wal.LSN outside its helper methods.
//     LSNs are byte offsets into the virtual log, ordered but not dense;
//     "lsn+1" is always a bug (the PR 5 sweep hunted these down once).
//   - atomicmix: a struct field accessed both through sync/atomic calls
//     and through plain reads/writes, and by-value copies of structs
//     that (transitively) contain atomic fields.
//   - proftimer: a profiler timing started with time.Now must reach its
//     time.Since stop on every return path, so no category silently
//     under-reports on an error return.
//   - errwedge: results of log-durability calls (logAppend, WriteRange(s),
//     Flush, FlushAsync, raw syscall wrappers) must not be discarded —
//     their contract is "wedge the log", never ignore (the PR 4
//     UndoFailures bug class).
//   - hotblock: functions annotated //slint:hotpath must not sleep,
//     block on channels, or acquire mutexes in their own statements.
//   - metricname: constant metric names passed to obs.Registry
//     constructors must satisfy the slidb_ naming rules at build time
//     instead of panicking at first scrape.
//
// The second generation is interprocedural, built on the analysis
// framework's Facts (gob-serialized summaries that flow between packages
// through the vet driver), and checks protocols rather than spellings:
//
//   - walorder: a control-flow proof that Tx mutation paths follow the
//     write-ahead protocol — once a heap/index mutation is applied, every
//     non-panic return has registered its undo (pushUndo) or rolled the
//     mutation back inline, and pushUndo always follows the log append
//     (the PR 4 undo-registration bug class, as a CFG invariant).
//   - lockorder: each function exports a Fact summarizing the lock
//     acquisition orders it can perform, transitively through callees;
//     the per-package driver assembles the cross-package acquisition
//     graph and reports any cycle with both witness paths.
//   - hotalloc: //slint:hotpath functions and everything they call must
//     be allocation-free; allocation summaries propagate via Facts so a
//     new allocation three calls deep still trips the build.
//   - goroleak: every go statement in the engine packages needs a
//     provable shutdown edge — a stop/done/quit channel or context
//     receive, a channel range, or a Cond.Wait loop — reachable from the
//     spawned function, directly or through Facts.
//
// Two directives tune the analyzers (see directive.go): //slint:hotpath
// marks a function for hotblock and hotalloc, and
// //slint:ignore <analyzer>[,<analyzer>...] <reason> suppresses findings
// on the same or the following line. The directives analyzer validates
// the directives themselves, so a typo'd analyzer name or a missing
// reason is itself a build error.
package slint

import "golang.org/x/tools/go/analysis"

// Analyzers returns the full slint suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		DenseArith,
		AtomicMix,
		ProfTimer,
		ErrWedge,
		HotBlock,
		MetricName,
		WalOrder,
		LockOrder,
		HotAlloc,
		GoroLeak,
		Directives,
	}
}
