package slint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"
)

// ProfTimer checks that profiler timings are stopped on every return path.
//
// The measurement convention in this codebase is
//
//	start := time.Now()
//	... work ...
//	prof.Add(profiler.CatX, time.Since(start))
//
// (sometimes through an intermediate: total := time.Since(start); then
// total feeds one or more Add calls, as appendTimed does when it splits a
// total into reserve-wait, buffer-full-wait and the work category). If an
// early error return skips the Add, that category silently under-reports
// exactly when something interesting happened — the flush that failed is
// the flush you wanted attributed.
//
// The analyzer considers a timer "owned by the profiler" when some
// time.Since(start) result reaches a profiler.Handle Add or Timed call,
// directly or through one intermediate variable. For each such timer whose
// start is unconditional (not nested in an if/for/switch/select), it walks
// the function's control-flow graph from the start: reaching any return
// statement without passing a time.Since(start) is reported. A deferred
// stop covers all paths. Conditionally-started timers (the applyUndo
// "if tx.prof != nil" pattern) are out of scope — the condition, not the
// path, decides whether timing happens.
var ProfTimer = &analysis.Analyzer{
	Name: "proftimer",
	Doc:  "check every profiler category start reaches its time.Since stop on all return paths",
	Run:  runProfTimer,
}

func runProfTimer(pass *analysis.Pass) (interface{}, error) {
	idx := buildDirectiveIndex(pass)
	for _, file := range pass.Files {
		parents := buildParentMap(file)
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkTimerFunc(pass, idx, parents, fn, fn.Body)
				}
			case *ast.FuncLit:
				checkTimerFunc(pass, idx, parents, fn, fn.Body)
			}
			return true
		})
	}
	return nil, nil
}

// timer is one candidate start := time.Now() in a function body.
type timer struct {
	obj   types.Object    // the start variable
	start *ast.AssignStmt // the statement that starts it
	since []*ast.CallExpr // every time.Since(start) in the body
}

func checkTimerFunc(pass *analysis.Pass, idx *directiveIndex, parents map[ast.Node]ast.Node, fnNode ast.Node, body *ast.BlockStmt) {
	timers := collectTimers(pass, fnNode, body)
	if len(timers) == 0 {
		return
	}

	var g *cfg.CFG // built lazily; several timers share it
	for _, t := range timers {
		if len(t.since) == 0 {
			continue // never stopped at all; out of scope (may be a deadline var)
		}
		if !feedsProfiler(pass, parents, t) {
			continue
		}
		if !unconditionalStart(parents, fnNode, t.start) {
			continue
		}
		if deferredStop(parents, fnNode, t) {
			continue
		}
		if g == nil {
			g = cfg.New(body, mayReturn)
		}
		for _, ret := range leakyReturns(g, t) {
			report(pass, idx, ret,
				"return without stopping profiler timing %q (started at line %d): the category under-reports on this path — add the time.Since/Add before returning or defer it",
				t.obj.Name(), pass.Fset.Position(t.start.Pos()).Line)
		}
	}
}

// collectTimers finds `v := time.Now()` starts and `time.Since(v)` stops in
// body. Starts nested in an inner function literal belong to that literal's
// own scope and are skipped here; stops are collected from anywhere in the
// body (a closure stopping an outer timer still counts as a stop).
func collectTimers(pass *analysis.Pass, fnNode ast.Node, body *ast.BlockStmt) []*timer {
	byObj := make(map[types.Object]*timer)
	var order []*timer
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isTimeCall(pass, call, "Now") {
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil || byObj[obj] != nil {
			return true
		}
		t := &timer{obj: obj, start: as}
		byObj[obj] = t
		order = append(order, t)
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isTimeCall(pass, call, "Since") || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if t := byObj[pass.TypesInfo.ObjectOf(id)]; t != nil {
			t.since = append(t.since, call)
		}
		return true
	})
	return order
}

// feedsProfiler reports whether any Since(start) result reaches a
// profiler Add/Timed call, directly or via one intermediate variable.
func feedsProfiler(pass *analysis.Pass, parents map[ast.Node]ast.Node, t *timer) bool {
	var viaVars []types.Object
	for _, s := range t.since {
		if enclosingProfilerCall(pass, parents, s) != nil {
			return true
		}
		// total := time.Since(start) — remember total.
		if as, ok := parents[s].(*ast.AssignStmt); ok && len(as.Lhs) == 1 && len(as.Rhs) == 1 && as.Rhs[0] == ast.Expr(s) {
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					viaVars = append(viaVars, obj)
				}
			}
		}
	}
	if len(viaVars) == 0 {
		return false
	}
	// Does any profiler call use one of the intermediates in its arguments?
	found := false
	for n := range parents {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(id)
		for _, v := range viaVars {
			if obj == v && enclosingProfilerCall(pass, parents, id) != nil {
				found = true
			}
		}
	}
	return found
}

// enclosingProfilerCall climbs from n and returns a profiler.Handle
// Add/Timed call whose argument list contains n, or nil.
func enclosingProfilerCall(pass *analysis.Pass, parents map[ast.Node]ast.Node, n ast.Node) *ast.CallExpr {
	for cur := n; cur != nil; cur = parents[cur] {
		call, ok := cur.(*ast.CallExpr)
		if !ok {
			continue
		}
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			continue
		}
		if (fn.Name() == "Add" || fn.Name() == "Timed") && fromPkg(fn.Pkg(), "profiler") {
			return call
		}
	}
	return nil
}

// unconditionalStart reports whether the start statement executes on every
// invocation of the function: every ancestor between it and the function
// body is a plain block.
func unconditionalStart(parents map[ast.Node]ast.Node, fnNode ast.Node, start ast.Stmt) bool {
	for cur := parents[ast.Node(start)]; cur != nil; cur = parents[cur] {
		if cur == fnNode {
			return true
		}
		if _, ok := cur.(*ast.BlockStmt); !ok {
			return false
		}
	}
	return false
}

// deferredStop reports whether some Since(start) sits under a defer in this
// function, which covers every return path at once.
func deferredStop(parents map[ast.Node]ast.Node, fnNode ast.Node, t *timer) bool {
	for _, s := range t.since {
		for cur := ast.Node(s); cur != nil && cur != fnNode; cur = parents[cur] {
			if _, ok := cur.(*ast.DeferStmt); ok {
				return true
			}
		}
	}
	return false
}

// leakyReturns walks the CFG from the timer start and returns every return
// statement reachable without passing a time.Since(start).
func leakyReturns(g *cfg.CFG, t *timer) []*ast.ReturnStmt {
	// Locate the start statement's block and index.
	var startBlock *cfg.Block
	startIdx := -1
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == ast.Node(t.start) {
				startBlock, startIdx = b, i
				break
			}
		}
		if startBlock != nil {
			break
		}
	}
	if startBlock == nil {
		return nil // start not in the graph (e.g. dead code); nothing to prove
	}

	containsStop := func(n ast.Node) bool {
		for _, s := range t.since {
			if s.Pos() >= n.Pos() && s.End() <= n.End() {
				return true
			}
		}
		return false
	}

	var leaks []*ast.ReturnStmt
	seen := make(map[*cfg.Block]bool)
	type item struct {
		b *cfg.Block
		i int
	}
	work := []item{{startBlock, startIdx + 1}}
	for len(work) > 0 {
		it := work[len(work)-1]
		work = work[:len(work)-1]
		stopped := false
		for j := it.i; j < len(it.b.Nodes); j++ {
			n := it.b.Nodes[j]
			if containsStop(n) {
				stopped = true
				break
			}
			if ret, ok := n.(*ast.ReturnStmt); ok {
				leaks = append(leaks, ret)
				stopped = true // the path ends here either way
				break
			}
		}
		if stopped {
			continue
		}
		for _, succ := range it.b.Succs {
			if !seen[succ] {
				seen[succ] = true
				work = append(work, item{succ, 0})
			}
		}
	}
	return leaks
}

// isTimeCall reports whether call is time.<name>(...).
func isTimeCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	return ok && fn.Name() == name && isStdPkg(fn.Pkg(), "time")
}

// mayReturn is the CFG builder's intraprocedural "can this call return"
// heuristic: panic and the conventional fatal exits cannot.
func mayReturn(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name != "panic"
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Fatal", "Fatalf", "FailNow", "Exit", "Goexit", "Panic", "Panicf":
			return false
		}
	}
	return true
}

// buildParentMap records each node's syntactic parent within a file.
func buildParentMap(file *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
