package slint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"
)

// MetricName validates metric names handed to obs.Registry constructors at
// build time.
//
// The registry panics on a malformed name — deliberately, because a bad
// metric name is a deploy-time bug — but a panic at first scrape is a much
// worse place to learn about it than a vet failure. For every constant
// string passed to Counter/Gauge/Histogram/CounterFunc/GaugeFunc/
// LabeledCounterFunc/LabeledGaugeFunc on obs.Registry, this analyzer
// checks the project naming rules:
//
//   - names match [a-z][a-z0-9_]* (Prometheus-safe, lower_snake)
//   - names carry the project prefix slidb_ (slidbd_ for daemon-side metrics)
//   - counter names end in _total (Prometheus counter convention)
//   - label names match [a-z_][a-z0-9_]*
//
// Dynamic names cannot be checked and are reported too: registration is
// init-time code, there is no reason for a computed metric name.
// Test files are exempt (harness metrics use neutral names on purpose).
var MetricName = &analysis.Analyzer{
	Name:     "metricname",
	Doc:      "check metric names passed to obs.Registry constructors against the slidb_ naming rules",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runMetricName,
}

// metricCtors maps obs.Registry constructor name to the index of its label
// argument (-1 = unlabeled) and whether it creates a counter.
var metricCtors = map[string]struct {
	labelArg int
	counter  bool
}{
	"Counter":            {-1, true},
	"Gauge":              {-1, false},
	"Histogram":          {-1, false},
	"CounterFunc":        {-1, true},
	"GaugeFunc":          {-1, false},
	"LabeledCounterFunc": {2, true},
	"LabeledGaugeFunc":   {2, false},
}

func runMetricName(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	idx := buildDirectiveIndex(pass)

	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok {
			return
		}
		ctor, ok := metricCtors[fn.Name()]
		if !ok || !isRegistryMethod(fn) || len(call.Args) == 0 {
			return
		}
		if inTestFile(pass, call) {
			return
		}
		name, isConst := constString(pass, call.Args[0])
		if !isConst {
			report(pass, idx, call.Args[0], "metric name passed to obs.Registry.%s is not a constant string: registration is init-time code, use a literal so the name can be vetted", fn.Name())
			return
		}
		for _, problem := range checkMetricName(name, ctor.counter) {
			report(pass, idx, call.Args[0], "metric name %q: %s", name, problem)
		}
		if ctor.labelArg >= 0 && ctor.labelArg < len(call.Args) {
			if label, ok := constString(pass, call.Args[ctor.labelArg]); ok && !validLabelName(label) {
				report(pass, idx, call.Args[ctor.labelArg], "label name %q must match [a-z_][a-z0-9_]*", label)
			}
		}
	})
	return nil, nil
}

// isRegistryMethod reports whether fn is a method on obs.Registry.
func isRegistryMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named, ok := types.Unalias(derefType(recv.Type())).(*types.Named)
	return ok && named.Obj().Name() == "Registry" && fromPkg(named.Obj().Pkg(), "obs")
}

// inTestFile reports whether the node lives in a _test.go file.
func inTestFile(pass *analysis.Pass, n ast.Node) bool {
	return strings.HasSuffix(pass.Fset.Position(n.Pos()).Filename, "_test.go")
}

// constString evaluates e as a compile-time string constant.
func constString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// checkMetricName returns every naming-rule violation for a metric name.
func checkMetricName(name string, counter bool) []string {
	var problems []string
	if !validMetricChars(name) {
		problems = append(problems, "must match [a-z][a-z0-9_]* (lower_snake, no leading digit or underscore)")
	}
	if !strings.HasPrefix(name, "slidb_") && !strings.HasPrefix(name, "slidbd_") {
		problems = append(problems, "must carry the project prefix slidb_ (or slidbd_ for daemon-side metrics)")
	}
	if counter && !strings.HasSuffix(name, "_total") {
		problems = append(problems, "counters end in _total by Prometheus convention")
	}
	return problems
}

func validMetricChars(name string) bool {
	if name == "" {
		return false
	}
	if name[0] < 'a' || name[0] > 'z' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	if (name[0] < 'a' || name[0] > 'z') && name[0] != '_' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_' {
			return false
		}
	}
	return true
}
