// Package lockmgr implements a hierarchical database lock manager in the
// style of Shore-MT (Johnson et al., EDBT'09), together with the paper's
// primary contribution: Speculative Lock Inheritance (SLI), which passes hot
// share-mode locks directly from a committing transaction to the next
// transaction on the same agent thread, bypassing the centralized lock
// manager (Johnson, Pandis & Ailamaki, VLDB'09).
//
// The lock manager provides:
//
//   - Gray/Reuter hierarchical lock modes (NL, IS, IX, S, SIX, U, X) with
//     the standard compatibility and supremum matrices.
//   - A four-level lock hierarchy: database → table → page → record.
//     Requesting a lock automatically acquires the appropriate intention
//     locks on all ancestors.
//   - A partitioned hash lock table. Each active lock is represented by a
//     lock head holding a latch, the aggregate granted mode, and a FIFO
//     queue of requests (granted, converting, waiting, inherited).
//   - Lock conversions (upgrades), FIFO granting, wait-for-graph deadlock
//     detection with a timeout fallback.
//   - Per-lock hot-ness tracking based on latch contention, the trigger for
//     SLI (paper §4.2 criterion 2).
//   - Speculative Lock Inheritance itself: eligibility testing at release
//     time, per-agent inherited lists, compare-and-swap reclaim without
//     entering the lock manager, invalidation by conflicting requests, and
//     lazy garbage collection of invalidated requests.
//
// Transactions interact with the lock manager through an Owner (one per
// transaction), and agent threads through an Agent (one per worker thread),
// mirroring Shore-MT's transaction and agent structures.
package lockmgr

// Mode is a hierarchical lock mode as defined by Gray & Reuter,
// "Transaction Processing: Concepts and Techniques" (and paper §3.1).
type Mode uint8

// The lock modes, in increasing order of strength for the purposes of
// Supremum. NL (no lock) is the identity element.
const (
	// NL is "no lock": the absence of a lock. Compatible with everything.
	NL Mode = iota
	// IS (intention share) signals that the holder has S locks on some of
	// this object's children.
	IS
	// IX (intention exclusive) signals that the holder has X locks on some
	// of this object's children.
	IX
	// S (share) allows the holder to read this object and implicitly all of
	// its children.
	S
	// SIX combines S and IX: read the whole object, update some children.
	SIX
	// U (update) is an asymmetric read lock that can be upgraded to X
	// without deadlocking against other U holders; compatible with S.
	U
	// X (exclusive) allows the holder to read and update this object and all
	// of its children.
	X
	numModes
)

// String returns the conventional two-letter name of the mode.
func (m Mode) String() string {
	switch m {
	case NL:
		return "NL"
	case IS:
		return "IS"
	case IX:
		return "IX"
	case S:
		return "S"
	case SIX:
		return "SIX"
	case U:
		return "U"
	case X:
		return "X"
	default:
		return "?"
	}
}

// Valid reports whether m is one of the defined lock modes.
func (m Mode) Valid() bool { return m < numModes }

// compatible[a][b] is true when a request for mode a can be granted while
// mode b is held by a different transaction. The matrix is symmetric except
// for U, which by construction is compatible with already-granted S but
// blocks new S requests in some textbook variants; we use the symmetric
// simplification (U compatible with S and IS) which is also what Shore uses.
var compatible = [numModes][numModes]bool{
	NL:  {NL: true, IS: true, IX: true, S: true, SIX: true, U: true, X: true},
	IS:  {NL: true, IS: true, IX: true, S: true, SIX: true, U: true, X: false},
	IX:  {NL: true, IS: true, IX: true, S: false, SIX: false, U: false, X: false},
	S:   {NL: true, IS: true, IX: false, S: true, SIX: false, U: true, X: false},
	SIX: {NL: true, IS: true, IX: false, S: false, SIX: false, U: false, X: false},
	U:   {NL: true, IS: true, IX: false, S: true, SIX: false, U: false, X: false},
	X:   {NL: true, IS: false, IX: false, S: false, SIX: false, U: false, X: false},
}

// Compatible reports whether a request for mode a is compatible with an
// existing grant of mode b.
func Compatible(a, b Mode) bool { return compatible[a][b] }

// supremum[a][b] is the least lock mode that covers both a and b, used when
// a transaction converts (upgrades) a lock it already holds.
var supremum = [numModes][numModes]Mode{
	NL:  {NL: NL, IS: IS, IX: IX, S: S, SIX: SIX, U: U, X: X},
	IS:  {NL: IS, IS: IS, IX: IX, S: S, SIX: SIX, U: U, X: X},
	IX:  {NL: IX, IS: IX, IX: IX, S: SIX, SIX: SIX, U: X, X: X},
	S:   {NL: S, IS: S, IX: SIX, S: S, SIX: SIX, U: U, X: X},
	SIX: {NL: SIX, IS: SIX, IX: SIX, S: SIX, SIX: SIX, U: X, X: X},
	U:   {NL: U, IS: U, IX: X, S: U, SIX: X, U: U, X: X},
	X:   {NL: X, IS: X, IX: X, S: X, SIX: X, U: X, X: X},
}

// Supremum returns the least upper bound of two lock modes.
func Supremum(a, b Mode) Mode { return supremum[a][b] }

// Covers reports whether holding mode held is at least as strong as needing
// mode want, i.e. no conversion is required.
func Covers(held, want Mode) bool { return Supremum(held, want) == held }

// parentMode[m] is the intention mode that must be held on an object's
// parent before m can be acquired on the object itself (paper §3.1/§3.2:
// "the manager first ensures the transaction holds higher-level intention
// locks, requesting them automatically if necessary").
var parentMode = [numModes]Mode{
	NL:  NL,
	IS:  IS,
	S:   IS,
	U:   IX, // a U lock may be upgraded to X, so announce write intent
	IX:  IX,
	SIX: IX,
	X:   IX,
}

// ParentMode returns the intention mode required on the parent of an object
// locked in mode m.
func ParentMode(m Mode) Mode { return parentMode[m] }

// Shared reports whether m is one of the "shared" modes that SLI may pass
// between transactions (paper §4.2 criterion 3: "held in a shared mode
// (e.g. S, IS, IX)"). IX qualifies because it is compatible with the other
// intent modes that scalable workloads request on hot, high-level locks.
func (m Mode) Shared() bool { return m == S || m == IS || m == IX }

// Exclusive reports whether m grants (or intends to escalate to) exclusive
// access to the whole object.
func (m Mode) Exclusive() bool { return m == X || m == SIX || m == U }
