package lockmgr

import (
	"sync"
	"sync/atomic"

	"slidb/internal/latch"
)

// lockHead represents one active lock: its identity, a latch protecting the
// request queue, the FIFO queue itself, and the hot-ness tracking window
// (paper Figure 2). Lock heads live in the partitioned lock table and are
// removed when their queue drains.
type lockHead struct {
	id LockID

	// part is the index of the lock-table partition the head lives in,
	// recorded at creation so deadlock probes can tell local wait-for edges
	// (both heads in one partition) from cross-partition ones without
	// re-hashing the LockID on every hop.
	part uint32

	// latch protects the queue, waiters count, hot-ness window and the dead
	// flag. The per-acquisition contention signal it reports drives hot-lock
	// detection.
	latch latch.Mutex

	queue requestQueue

	// waiters is the number of requests in waiting or converting status.
	waiters int

	// window tracks latch contention over the most recent acquisitions; hot
	// caches the threshold decision. hot is atomic because the SLI candidate
	// pass reads it without holding the latch (it is re-verified under the
	// latch before a lock is actually inherited).
	window latch.ContentionWindow
	hot    atomic.Bool

	// dead is set when the head has been removed from the lock table; a
	// requester that latches a dead head must retry its lookup.
	dead bool
}

// recordLatchAcquire folds one latch acquisition outcome into the hot-ness
// window. Must be called with the latch held.
func (h *lockHead) recordLatchAcquire(contended bool, threshold float64) {
	h.window.Record(contended)
	h.hot.Store(h.window.Ratio() >= threshold)
}

// grantedSupremum returns the supremum of the modes of all granted,
// converting (their currently-held mode) and inherited requests, excluding
// the given request. Inherited requests are included because until they are
// invalidated they may be reclaimed at any instant and therefore still
// constrain what can be granted. Must be called with the latch held.
func (h *lockHead) grantedSupremum(except *Request) Mode {
	agg := NL
	h.queue.forEach(func(r *Request) {
		if r == except {
			return
		}
		switch r.status.Load() {
		case statusGranted, statusConverting, statusInherited:
			agg = Supremum(agg, r.mode)
		}
	})
	return agg
}

// hasWaiters reports whether any request is waiting or converting. Must be
// called with the latch held.
func (h *lockHead) hasWaiters() bool { return h.waiters > 0 }

// partition is one shard of the lock table. The partition mutex only covers
// the map itself; lock heads are latched individually.
type partition struct {
	mu    sync.Mutex
	heads map[LockID]*lockHead
}

// lockTable is the partitioned hash table mapping LockIDs to lock heads
// (Figure 2's "hash table" of lock heads).
type lockTable struct {
	parts []partition
	mask  uint64
}

func newLockTable(partitions int) *lockTable {
	if partitions <= 0 {
		partitions = 64
	}
	// Round up to a power of two so we can mask instead of mod.
	n := 1
	for n < partitions {
		n <<= 1
	}
	t := &lockTable{parts: make([]partition, n), mask: uint64(n - 1)}
	for i := range t.parts {
		t.parts[i].heads = make(map[LockID]*lockHead)
	}
	return t
}

func (t *lockTable) partitionIndex(id LockID) uint64 {
	return id.hash() & t.mask
}

func (t *lockTable) partitionFor(id LockID) *partition {
	return &t.parts[t.partitionIndex(id)]
}

// findOrCreate returns the lock head for id, creating it if necessary.
func (t *lockTable) findOrCreate(id LockID) *lockHead {
	idx := t.partitionIndex(id)
	p := &t.parts[idx]
	p.mu.Lock()
	h := p.heads[id]
	if h == nil {
		h = &lockHead{id: id, part: uint32(idx)}
		p.heads[id] = h
	}
	p.mu.Unlock()
	return h
}

// find returns the lock head for id, or nil if the lock is not active.
func (t *lockTable) find(id LockID) *lockHead {
	p := t.partitionFor(id)
	p.mu.Lock()
	h := p.heads[id]
	p.mu.Unlock()
	return h
}

// maybeRemove removes h from the table if its queue is empty. The caller
// must hold h's latch; the head is marked dead so that racing requesters
// that already hold a pointer to it retry their lookup.
func (t *lockTable) maybeRemove(h *lockHead) {
	if !h.queue.empty() || h.dead {
		return
	}
	p := t.partitionFor(h.id)
	p.mu.Lock()
	if cur := p.heads[h.id]; cur == h {
		delete(p.heads, h.id)
		h.dead = true
	}
	p.mu.Unlock()
}

// size returns the total number of active lock heads, for tests and
// monitoring.
func (t *lockTable) size() int {
	n := 0
	for i := range t.parts {
		p := &t.parts[i]
		p.mu.Lock()
		n += len(p.heads)
		p.mu.Unlock()
	}
	return n
}
