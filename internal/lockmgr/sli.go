package lockmgr

import (
	"time"

	"slidb/internal/profiler"
)

// This file implements Speculative Lock Inheritance (paper §4): the decision
// of which locks a committing transaction passes to its agent thread
// (selectSLICandidates + inherit), the lock-manager-free reclaim path used by
// the agent's next transaction (reclaim), and retirement of speculations that
// did not pay off (discardInherited; invalidation by conflicting requesters
// lives in Manager.invalidateIncompatible).

// selectSLICandidates evaluates the five eligibility criteria of §4.2 over
// the owner's held locks and returns the set of requests that should be
// inherited rather than released. Criteria 1 (page level or higher), 2 (hot)
// and 3 (shared mode) are evaluated here; criterion 4 (no waiters) and a
// re-check of 2 happen under the lock-head latch in inherit; criterion 5
// (the parent is also eligible) is enforced by requiring the parent — which
// always precedes its children in the acquisition-ordered held list — to
// already be a candidate.
//
// It returns nil when SLI is disabled, the transaction ran without an agent,
// or nothing is eligible.
func (m *Manager) selectSLICandidates(o *Owner) map[*Request]bool {
	if !m.SLIEnabled() || o.agent == nil || len(o.held) == 0 {
		return nil
	}
	start := time.Now()

	// o.held is in acquisition order and the lock manager always acquires an
	// object's ancestors before the object itself, so by the time a lock is
	// considered here its parent (if held) has already been classified —
	// criterion 5 can be checked with a single cache lookup, no sorting.
	var cands map[*Request]bool
	for _, r := range o.held {
		id := r.id
		if !id.Lvl.CoarserOrEqual(m.cfg.SLIMinLevel) {
			continue // criterion 1: too fine-grained (e.g. row locks)
		}
		hot := r.head.hot.Load()
		if !r.mode.Shared() {
			if hot {
				m.stats.SLIIneligibleMode.Add(1)
			}
			continue // criterion 3: only share-mode locks may be passed on
		}
		if !hot {
			continue // criterion 2: cold locks are not worth tracking
		}
		if parent, ok := id.Parent(); ok {
			pr := o.cache[parent]
			if pr == nil || !cands[pr] {
				m.stats.SLIIneligibleParent.Add(1)
				continue // criterion 5: parent must also be passed on
			}
		}
		if cands == nil {
			cands = make(map[*Request]bool, 4)
		}
		cands[r] = true
	}
	o.prof.Add(profiler.SLIWork, time.Since(start))
	return cands
}

// inherit attempts to pass a granted request to the owner's agent thread
// instead of releasing it. It re-verifies, under the lock-head latch, that
// the lock is still hot and has no waiters (criteria 2 and 4), then flips
// the request from granted to inherited and parks it on the agent.
// It returns false if the lock must be released normally instead.
func (m *Manager) inherit(o *Owner, req *Request) bool {
	start := time.Now()
	h := req.head
	contended, wait := h.latch.Lock()
	if wait > 0 {
		o.prof.Add(profiler.SLIContention, wait)
	}
	if contended {
		m.stats.LatchContended.Add(1)
	}
	ok := false
	switch {
	case h.hasWaiters():
		m.stats.SLIIneligibleWaiter.Add(1) // criterion 4
	case !h.hot.Load():
		// cooled down since the candidate pass; release normally
	case req.status.Load() != statusGranted:
		// cannot happen for requests on the held list, but be defensive
	default:
		if req.status.CompareAndSwap(statusGranted, statusInherited) {
			req.owner.Store(nil)
			req.wasInherited = true
			ok = true
		}
	}
	h.latch.Unlock()
	if ok {
		o.agent.pending = append(o.agent.pending, req)
		m.stats.SLIPassed.Add(1)
	}
	o.prof.Add(profiler.SLIWork, time.Since(start)-wait)
	return ok
}

// reclaim is the SLI fast path (§4.1): the transaction finds an inherited
// request in its lock cache and claims it with a single compare-and-swap,
// "without calling into the lock manager, allocating requests, or updating
// latch-protected lock state". If the inherited mode does not cover the
// wanted mode, or the speculation has already been invalidated, the request
// falls back to the normal acquisition path.
func (m *Manager) reclaim(o *Owner, req *Request, want Mode) error {
	start := time.Now()
	if Covers(req.mode, want) {
		if req.status.CompareAndSwap(statusInherited, statusGranted) {
			req.owner.Store(o)
			delete(o.inherited, req.id)
			o.held = append(o.held, req)
			m.stats.SLIReclaimed.Add(1)
			// Inherited locks are hot by construction (criterion 2).
			m.stats.classify(req.id, want, true)
			o.prof.Add(profiler.SLIWork, time.Since(start))
			return nil
		}
	} else {
		// The transaction needs a stronger mode than it inherited; retire the
		// speculation and make a normal (possibly converting) request.
		if req.status.CompareAndSwap(statusInherited, statusInvalid) {
			m.unlinkInvalid(o, req)
			m.stats.SLIInvalidated.Add(1)
		}
	}
	// Speculation failed: either another transaction invalidated the request
	// or we just did. Fall back to a normal acquisition.
	delete(o.cache, req.id)
	delete(o.inherited, req.id)
	o.prof.Add(profiler.SLIWork, time.Since(start))
	return m.lockSlow(o, req.id, want)
}

// discardInherited retires an inherited request that the finishing
// transaction never used. The cost of the release that the previous
// transaction avoided is paid here (and attributed to SLI, as in the
// paper's Figure 10 accounting).
func (m *Manager) discardInherited(o *Owner, req *Request) {
	start := time.Now()
	if req.status.CompareAndSwap(statusInherited, statusInvalid) {
		m.unlinkInvalid(o, req)
		m.stats.SLIDiscarded.Add(1)
	}
	o.prof.Add(profiler.SLIWork, time.Since(start))
}
