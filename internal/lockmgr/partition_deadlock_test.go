package lockmgr

import (
	"errors"
	"testing"
	"time"
)

// crossDeadlock drives the classic two-owner cycle: A holds ra and wants rb,
// B holds rb and wants ra. It returns once the cycle has been broken and
// both owners have released, failing the test if detection never fires.
func crossDeadlock(t *testing.T, m *Manager, ra, rb LockID) {
	t.Helper()
	a := m.NewOwner(nil, nil)
	b := m.NewOwner(nil, nil)
	if err := a.Lock(ra, X); err != nil {
		t.Fatal(err)
	}
	if err := b.Lock(rb, X); err != nil {
		t.Fatal(err)
	}
	aDone := make(chan error, 1)
	bDone := make(chan error, 1)
	go func() {
		err := a.Lock(rb, X)
		a.ReleaseAll()
		aDone <- err
	}()
	go func() {
		err := b.Lock(ra, X)
		b.ReleaseAll()
		bDone <- err
	}()
	errA, errB := <-aDone, <-bDone
	victims := 0
	for _, err := range []error{errA, errB} {
		switch {
		case err == nil:
		case errors.Is(err, ErrDeadlock):
			victims++
		default:
			t.Fatalf("unexpected lock error: %v", err)
		}
	}
	if victims == 0 {
		t.Fatalf("no deadlock victim (errA=%v errB=%v)", errA, errB)
	}
}

// TestDeadlockLocalPartition pins the sharded probe's fast path: with a
// single-partition lock table every wait-for edge is local, so the cycle is
// found by local probes alone and the global search is never escalated to.
func TestDeadlockLocalPartition(t *testing.T) {
	m := New(Config{
		Partitions:         1,
		DeadlockCheckEvery: time.Millisecond,
		LockTimeout:        30 * time.Second,
	})
	crossDeadlock(t, m, RecordLock(1, 1, 1, 1), RecordLock(1, 1, 1, 2))
	s := m.Stats().Snapshot()
	if s.Deadlocks == 0 {
		t.Fatal("Deadlocks counter not incremented")
	}
	if s.DeadlockLocalProbes == 0 {
		t.Fatal("DeadlockLocalProbes counter not incremented")
	}
	if s.DeadlockEscalations != 0 {
		t.Fatalf("DeadlockEscalations = %d on a single-partition table, want 0", s.DeadlockEscalations)
	}
}

// TestDeadlockCrossPartitionEscalation pins the escalation path: a cycle
// between two rows whose lock heads hash to different partitions is
// invisible to local probes (the edge escapes), so detection must come from
// an escalated cross-partition search.
func TestDeadlockCrossPartitionEscalation(t *testing.T) {
	m := New(Config{
		Partitions:         128,
		DeadlockCheckEvery: time.Millisecond,
		LockTimeout:        30 * time.Second,
	})
	// Find two record locks in different lock-table partitions.
	ra := RecordLock(1, 1, 1, 1)
	rb := ra
	for slot := uint32(2); ; slot++ {
		rb = RecordLock(1, 1, 1, slot)
		if m.table.partitionIndex(rb) != m.table.partitionIndex(ra) {
			break
		}
	}
	crossDeadlock(t, m, ra, rb)
	s := m.Stats().Snapshot()
	if s.Deadlocks == 0 {
		t.Fatal("Deadlocks counter not incremented")
	}
	if s.DeadlockEscalations == 0 {
		t.Fatal("cross-partition cycle resolved without any DeadlockEscalations")
	}
}
