package lockmgr

import (
	"runtime"
	"testing"
	"time"
)

// waitBlocked polls until the owner is parked in waitFor and returns the
// request it is blocked on.
func waitBlocked(t *testing.T, o *Owner) *Request {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r := o.waiting.Load(); r != nil {
			return r
		}
		if time.Now().After(deadline) {
			t.Fatal("owner never blocked")
		}
		runtime.Gosched()
	}
}

// TestBlockersOfConvertingOwnerDeduped pins the blockersOf fix: a converting
// request whose held mode AND target mode both conflict with the probing
// request is one blocker, not two. Before the fix the owner was appended
// twice and every deadlock probe re-walked its whole wait-for subtree.
//
// Setup: B holds IS, A holds IX and converts to X (blocked by B's IS), C
// requests S (blocked by A's held IX and by its pending conversion to X —
// the double-conflict case).
func TestBlockersOfConvertingOwnerDeduped(t *testing.T) {
	// Long probe interval and timeout: the test calls blockersOf directly
	// and unwinds the waits itself.
	m := New(Config{DeadlockCheckEvery: time.Hour, LockTimeout: time.Hour})
	id := TableLock(1, 1)
	a := m.NewOwner(nil, nil)
	b := m.NewOwner(nil, nil)
	c := m.NewOwner(nil, nil)

	if err := b.Lock(id, IS); err != nil {
		t.Fatal(err)
	}
	if err := a.Lock(id, IX); err != nil {
		t.Fatal(err)
	}
	aDone := make(chan error, 1)
	go func() { aDone <- a.Lock(id, X) }()
	aReq := waitBlocked(t, a)
	if aReq.status.Load() != statusConverting {
		t.Fatalf("A should be converting, status = %d", aReq.status.Load())
	}

	cDone := make(chan error, 1)
	go func() { cDone <- c.Lock(id, S) }()
	cReq := waitBlocked(t, c)

	blockers := m.blockersOf(cReq)
	if blockers == nil {
		t.Fatal("blockersOf returned nil (lock-head latch busy) in a quiescent state")
	}
	count := 0
	for _, o := range blockers {
		if o == a {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("converting owner A appears %d times in blockers %v, want exactly 1", count, blockers)
	}
	// B's IS is compatible with C's S; it must not be listed.
	for _, o := range blockers {
		if o == b {
			t.Fatal("owner B (compatible IS holder) listed as a blocker")
		}
	}

	// Unwind: releasing B grants A's conversion; releasing A grants C.
	b.ReleaseAll()
	if err := <-aDone; err != nil {
		t.Fatal(err)
	}
	a.ReleaseAll()
	if err := <-cDone; err != nil {
		t.Fatal(err)
	}
	c.ReleaseAll()
}
